// Floating-point tolerance model for checksum verification.
//
// The predicted checksums (maintained via checksum arithmetic on A and B)
// and the reference checksums (accumulated from the computed C values inside
// the kernels) follow different rounding paths, so they differ by genuine
// floating-point noise even in a fault-free run.  The verifier therefore
// needs a threshold tau with
//
//     fp-noise  <<  tau  <<  smallest error worth correcting.
//
// We bound the noise with a random-walk model: each checksum entry is the
// result of O(K + N) accumulations of values of magnitude at most
//     M_elem = |alpha| * amax(A) * amax(B) * K  +  |beta| * amax(C0),
// giving noise ~ eps * (sqrt(K) + sqrt(N)) * M_elem.  A configurable safety
// factor (default 512, FTGEMM_TOL_FACTOR) sits on top.  Errors smaller than
// tau are mathematically indistinguishable from rounding and are, by the
// same argument, harmless to the result.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/env.hpp"
#include "util/matrix.hpp"

namespace ftgemm {

inline double default_tolerance_factor() {
  return env_double("FTGEMM_TOL_FACTOR", 512.0);
}

/// Type-aware default: float's epsilon is ~2^29 larger than double's, so the
/// same multiplicative factor would make tau comparable to O(1) injected
/// errors at bench sizes.  A smaller factor keeps single-precision
/// detectability useful while the random-walk model still dominates noise.
template <typename T>
double default_tolerance_factor_for() {
  const double base = default_tolerance_factor();
  return sizeof(T) == 4 ? base / 8.0 : base;
}

template <typename T>
struct ToleranceModel {
  double cc_tau = 0.0;  ///< threshold for column-checksum (row-sum) entries
  double cr_tau = 0.0;  ///< threshold for row-checksum (col-sum) entries

  static ToleranceModel compute(index_t m, index_t n, index_t k,
                                double amax_a, double amax_b, double amax_c0,
                                double alpha, double beta, double factor) {
    const double eps = std::numeric_limits<T>::epsilon();
    const double elem = std::abs(alpha) * amax_a * amax_b * double(k) +
                        std::abs(beta) * amax_c0;
    // Guard against all-zero operands: keep an absolute floor so that a
    // denormal-scale mismatch never divides into false positives.
    const double scale = std::max(elem, std::numeric_limits<T>::min() * 1e3);
    const double walk_cc = std::sqrt(double(k)) + std::sqrt(double(n));
    const double walk_cr = std::sqrt(double(k)) + std::sqrt(double(m));
    ToleranceModel t;
    t.cc_tau = factor * eps * walk_cc * scale;
    t.cr_tau = factor * eps * walk_cr * scale;
    return t;
  }
};

}  // namespace ftgemm
