#include "abft/verifier.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>

namespace ftgemm {

namespace {

constexpr std::size_t kMaxMismatches = 512;
constexpr std::size_t kMaxDfsRemainder = 20;
constexpr long kNodeBudget = 1 << 20;

/// DFS: assign each "individual" mismatch (an error value) to a "group"
/// mismatch (whose delta must equal the sum of its assigned values).
/// Returns pairs (group_index, individual_index).
bool assign(const std::vector<Mismatch>& individuals,
            const std::vector<Mismatch>& groups, double slack,
            std::vector<std::pair<int, int>>& pairs) {
  std::vector<double> residual(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g)
    residual[g] = groups[g].delta;

  std::vector<int> owner(individuals.size(), -1);
  long nodes = 0;

  // Largest-magnitude first: prunes the search fastest.
  std::vector<int> order(individuals.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = int(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::abs(individuals[std::size_t(a)].delta) >
           std::abs(individuals[std::size_t(b)].delta);
  });

  auto all_settled = [&]() {
    for (double r : residual)
      if (std::abs(r) > slack) return false;
    return true;
  };

  std::function<bool(std::size_t)> dfs = [&](std::size_t step) -> bool {
    if (++nodes > kNodeBudget) return false;
    if (step == order.size()) return all_settled();
    const int ind = order[step];
    const double value = individuals[std::size_t(ind)].delta;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      // No magnitude-based pruning here: with mixed-sign bursts a group's
      // residual can legitimately be smaller than any member (deltas cancel),
      // so the only sound bound is the node budget.
      residual[g] -= value;
      owner[std::size_t(ind)] = int(g);
      if (dfs(step + 1)) return true;
      residual[g] += value;
      owner[std::size_t(ind)] = -1;
    }
    return false;
  };

  if (!dfs(0)) return false;
  pairs.clear();
  for (std::size_t i = 0; i < individuals.size(); ++i)
    pairs.emplace_back(owner[i], int(i));
  return true;
}

}  // namespace

SolveOutcome solve_error_assignment(const std::vector<Mismatch>& rows,
                                    const std::vector<Mismatch>& cols,
                                    double slack) {
  SolveOutcome outcome;
  if (rows.empty() && cols.empty()) {
    outcome.solved = true;
    return outcome;
  }
  // A mismatch on one axis only cannot be located (it would mean an error
  // whose contributions cancel on the other axis, or a fault in the
  // checksum arithmetic itself).
  if (rows.empty() || cols.empty()) return outcome;
  if (rows.size() > kMaxMismatches || cols.size() > kMaxMismatches)
    return outcome;

  // Stage 1 — peel isolated errors: a row and a column whose deltas match
  // *each other uniquely* identify one error at their intersection.  This
  // resolves arbitrarily many scattered errors in O(R*C) and shrinks the
  // residual problem (burst clusters) to DFS scale.  A coincidental unique
  // match would be repaired by the driver's exact-recheck rounds.
  std::vector<char> row_used(rows.size(), 0);
  std::vector<char> col_used(cols.size(), 0);
  std::vector<std::pair<int, int>> peeled;      // error value = column delta
  std::vector<std::pair<int, int>> burst_cols;  // error value = row delta
  for (bool progress = true; progress;) {
    progress = false;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (row_used[r]) continue;
      int match = -1;
      int match_count = 0;
      for (std::size_t ccol = 0; ccol < cols.size(); ++ccol) {
        if (col_used[ccol]) continue;
        if (std::abs(rows[r].delta - cols[ccol].delta) <= slack) {
          match = int(ccol);
          ++match_count;
        }
      }
      if (match_count != 1) continue;
      // Uniqueness must hold from the column side too.
      int back_count = 0;
      for (std::size_t rr = 0; rr < rows.size(); ++rr) {
        if (row_used[rr]) continue;
        if (std::abs(rows[rr].delta - cols[std::size_t(match)].delta) <=
            slack)
          ++back_count;
      }
      if (back_count != 1) continue;
      peeled.emplace_back(int(r), match);
      row_used[r] = 1;
      col_used[std::size_t(match)] = 1;
      progress = true;
    }
  }

  // Stage 1.5 — burst peel: a row whose delta is explained by *exactly one*
  // small subset of the remaining columns is a row burst (one error per
  // matched column); peel it, and symmetrically for column bursts.  This
  // resolves coexisting independent bursts that no single global hypothesis
  // covers.  An ambiguous row (multiple candidate subsets) is left for the
  // DFS stage.  A wrong peel (coincidental subset) is repaired by the
  // driver's exact-recheck rounds.
  constexpr std::size_t kMaxBurst = 4;
  const auto find_unique_subset = [&](double target,
                                      const std::vector<Mismatch>& pool,
                                      const std::vector<char>& used,
                                      std::vector<int>& subset) -> bool {
    // Enumerate subsets of size 2..kMaxBurst; stop at the second solution.
    std::vector<int> avail;
    for (std::size_t i = 0; i < pool.size(); ++i)
      if (!used[i]) avail.push_back(int(i));
    int found = 0;
    std::vector<int> current, winner;
    const std::function<void(std::size_t, double, std::size_t)> dfs =
        [&](std::size_t at, double sum, std::size_t size) {
          if (found >= 2) return;
          if (size >= 2 && std::abs(sum - target) <= slack) {
            ++found;
            winner = current;
            // Keep searching for a second solution (ambiguity check).
          }
          if (size == kMaxBurst || at == avail.size()) return;
          for (std::size_t i = at; i < avail.size() && found < 2; ++i) {
            current.push_back(avail[i]);
            dfs(i + 1, sum + pool[std::size_t(avail[i])].delta, size + 1);
            current.pop_back();
          }
        };
    dfs(0, 0.0, 0);
    if (found != 1) return false;
    subset = std::move(winner);
    return true;
  };

  for (bool progress = true; progress;) {
    progress = false;
    // Row bursts: several errors sharing one row, one per column.
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (row_used[r]) continue;
      std::vector<int> subset;
      if (!find_unique_subset(rows[r].delta, cols, col_used, subset))
        continue;
      for (const int ci : subset) {
        peeled.emplace_back(int(r), ci);
        col_used[std::size_t(ci)] = 1;
      }
      row_used[r] = 1;
      progress = true;
    }
    // Column bursts: several errors sharing one column, one per row.
    for (std::size_t ccol = 0; ccol < cols.size(); ++ccol) {
      if (col_used[ccol]) continue;
      std::vector<int> subset;
      if (!find_unique_subset(cols[ccol].delta, rows, row_used, subset))
        continue;
      for (const int ri : subset) {
        // Column-burst pairs carry the *row* delta as the error value.
        burst_cols.push_back({ri, int(ccol)});
        row_used[std::size_t(ri)] = 1;
      }
      col_used[ccol] = 1;
      progress = true;
    }
    // Re-run the unique-match peel: bursts removed from the pools may make
    // previously ambiguous singles unique.
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (row_used[r]) continue;
      int match = -1, match_count = 0;
      for (std::size_t ccol = 0; ccol < cols.size(); ++ccol) {
        if (col_used[ccol]) continue;
        if (std::abs(rows[r].delta - cols[ccol].delta) <= slack) {
          match = int(ccol);
          ++match_count;
        }
      }
      if (match_count != 1) continue;
      int back_count = 0;
      for (std::size_t rr = 0; rr < rows.size(); ++rr) {
        if (row_used[rr]) continue;
        if (std::abs(rows[rr].delta - cols[std::size_t(match)].delta) <=
            slack)
          ++back_count;
      }
      if (back_count != 1) continue;
      peeled.emplace_back(int(r), match);
      row_used[r] = 1;
      col_used[std::size_t(match)] = 1;
      progress = true;
    }
  }

  // Collect the remainder (burst clusters whose row/column sums differ).
  std::vector<Mismatch> rem_rows, rem_cols;
  for (std::size_t r = 0; r < rows.size(); ++r)
    if (!row_used[r]) rem_rows.push_back(rows[r]);
  for (std::size_t ccol = 0; ccol < cols.size(); ++ccol)
    if (!col_used[ccol]) rem_cols.push_back(cols[ccol]);

  std::vector<LocatedError> located;
  located.reserve(peeled.size() + burst_cols.size());
  for (const auto& [r, ccol] : peeled) {
    located.push_back({rows[std::size_t(r)].idx,
                       cols[std::size_t(ccol)].idx,
                       cols[std::size_t(ccol)].delta});
  }
  for (const auto& [r, ccol] : burst_cols) {
    located.push_back({rows[std::size_t(r)].idx,
                       cols[std::size_t(ccol)].idx,
                       rows[std::size_t(r)].delta});
  }

  if (rem_rows.empty() && rem_cols.empty()) {
    outcome.solved = true;
    outcome.errors = std::move(located);
    return outcome;
  }
  if (rem_rows.empty() || rem_cols.empty()) return outcome;
  if (rem_rows.size() > kMaxDfsRemainder ||
      rem_cols.size() > kMaxDfsRemainder)
    return outcome;

  // Stage 2 — hypothesis DFS on the (small) remainder.
  // Hypothesis 1: every remaining mismatching column holds exactly one
  // error; the column deltas are individual error values grouped by row.
  std::vector<std::pair<int, int>> pairs;
  if (assign(rem_cols, rem_rows, slack, pairs)) {
    outcome.solved = true;
    for (auto& [rowg, coli] : pairs) {
      located.push_back({rem_rows[std::size_t(rowg)].idx,
                         rem_cols[std::size_t(coli)].idx,
                         rem_cols[std::size_t(coli)].delta});
    }
    outcome.errors = std::move(located);
    return outcome;
  }
  // Hypothesis 2 (symmetric): every remaining mismatching row holds exactly
  // one error; the row deltas are the individual error values.
  if (assign(rem_rows, rem_cols, slack, pairs)) {
    outcome.solved = true;
    for (auto& [colg, rowi] : pairs) {
      located.push_back({rem_rows[std::size_t(rowi)].idx,
                         rem_cols[std::size_t(colg)].idx,
                         rem_rows[std::size_t(rowi)].delta});
    }
    outcome.errors = std::move(located);
    return outcome;
  }
  return outcome;
}

}  // namespace ftgemm
