// Checksum encoders.
//
// Notation follows the paper: for C (M x N),
//   Cc in R^M : "column checksum" vector, Cc = C · e   (row sums),
//   Cr in R^N : "row checksum" vector,    Cr = eᵀ · C  (column sums),
// and for the operands,
//   Ar in R^K : Ar = eᵀ · A  (column sums of A, scaled by alpha),
//   Bc in R^K : Bc = B · e   (row sums of B).
//
// The fused variants here cover the encodings that piggyback on the
// C-scaling pass (C = beta·C) and the upfront A pass; the packing-fused
// encodings live in kernels/packing.hpp.  The standalone variants are used
// by the *unfused* ABFT baseline (classic scheme, extra memory passes) and
// by tests as an independent oracle.
//
// Hot-path callers (core/driver.hpp) do not call scale_encode_c /
// encode_ar_partial directly: they go through the plan's ISA-dispatched
// PackSet (kernels/microkernel.hpp), for which the templates below are the
// scalar fallback and the test oracle.  SIMD implementations reassociate
// the lane sums, so dispatched checksums match these within the
// ToleranceModel bound, not bit-for-bit.
#pragma once

#include <algorithm>
#include <cmath>

#include "kernels/packing.hpp"
#include "util/matrix.hpp"

namespace ftgemm {

/// Width of the lane-accumulator blocks used to keep the encode reductions
/// vectorizable (a scalar `sum += x` chain defeats SIMD; `lane[i % 8]`
/// accumulators auto-vectorize and are reduced once per column).
inline constexpr index_t kEncodeLanes = 8;

/// Fused pass over rows [i0, i0+ilen) of C: scale by beta, and accumulate
/// both checksums of the scaled values.  `cc` is indexed globally; `cr_part`
/// is this thread's private partial (length N).  Returns amax of the
/// *pre-scale* C over the slice (used by the tolerance model).
template <typename T>
double scale_encode_c(T* c, index_t ldc, index_t i0, index_t ilen, index_t n,
                      T beta, T* __restrict__ cc, T* __restrict__ cr_part) {
  T amax_lane[kEncodeLanes] = {};
  for (index_t j = 0; j < n; ++j) {
    T* __restrict__ col = c + i0 + j * ldc;
    T* __restrict__ cc_rows = cc + i0;
    if (beta == T(0)) {
      // Assign zero rather than multiply: C may hold uninitialized data and
      // 0 * NaN would propagate.  Checksums of a zero slice stay zero.
      for (index_t i = 0; i < ilen; ++i) col[i] = T(0);
      continue;
    }
    T sum_lane[kEncodeLanes] = {};
    const index_t tail = ilen - ilen % kEncodeLanes;
    if (beta == T(1)) {
      for (index_t i = 0; i < tail; i += kEncodeLanes) {
        for (index_t l = 0; l < kEncodeLanes; ++l) {
          const T v = col[i + l];
          const T a = std::abs(v);
          amax_lane[l] = amax_lane[l] > a ? amax_lane[l] : a;
          sum_lane[l] += v;
          cc_rows[i + l] += v;
        }
      }
      for (index_t i = tail; i < ilen; ++i) {
        const T v = col[i];
        const T a = std::abs(v);
        amax_lane[0] = amax_lane[0] > a ? amax_lane[0] : a;
        sum_lane[0] += v;
        cc_rows[i] += v;
      }
    } else {
      for (index_t i = 0; i < tail; i += kEncodeLanes) {
        for (index_t l = 0; l < kEncodeLanes; ++l) {
          const T a = std::abs(col[i + l]);
          amax_lane[l] = amax_lane[l] > a ? amax_lane[l] : a;
          const T v = beta * col[i + l];
          col[i + l] = v;
          sum_lane[l] += v;
          cc_rows[i + l] += v;
        }
      }
      for (index_t i = tail; i < ilen; ++i) {
        const T a = std::abs(col[i]);
        amax_lane[0] = amax_lane[0] > a ? amax_lane[0] : a;
        const T v = beta * col[i];
        col[i] = v;
        sum_lane[0] += v;
        cc_rows[i] += v;
      }
    }
    T colsum = T(0);
    for (index_t l = 0; l < kEncodeLanes; ++l) colsum += sum_lane[l];
    cr_part[j] += colsum;
  }
  double amax = 0.0;
  for (index_t l = 0; l < kEncodeLanes; ++l)
    amax = std::max(amax, double(amax_lane[l]));
  return amax;
}

/// Plain scaling pass (no checksums) for the Ori GEMM.  Returns nothing;
/// beta == 1 is a no-op.
template <typename T>
void scale_c(T* c, index_t ldc, index_t i0, index_t ilen, index_t n, T beta) {
  if (beta == T(1)) return;
  for (index_t j = 0; j < n; ++j) {
    T* __restrict__ col = c + i0 + j * ldc;
    if (beta == T(0)) {
      for (index_t i = 0; i < ilen; ++i) col[i] = T(0);
    } else {
      for (index_t i = 0; i < ilen; ++i) col[i] *= beta;
    }
  }
}

/// Partial row-checksum of A over rows [i0, i0+ilen):
///   ar_part[p] += alpha * sum_i A_eff(i, p),  p in [0, K).
/// Also returns amax of the slice of A (unscaled).  Generalized over
/// (StorageT, ComputeT): elements are widened via C(...) — identity for the
/// classic S == C paths — and all sums/amax are carried in C.
template <typename S, typename C = S>
double encode_ar_partial(const OperandView<S>& a, index_t i0, index_t ilen,
                         index_t k, C alpha, C* __restrict__ ar_part) {
  C amax_lane[kEncodeLanes] = {};
  if (!a.trans) {
    // Column p of A is contiguous: lane-accumulate down it.
    for (index_t p = 0; p < k; ++p) {
      const S* __restrict__ col = a.data + i0 + p * a.ld;
      C sum_lane[kEncodeLanes] = {};
      const index_t tail = ilen - ilen % kEncodeLanes;
      for (index_t i = 0; i < tail; i += kEncodeLanes) {
        for (index_t l = 0; l < kEncodeLanes; ++l) {
          const C v = C(col[i + l]);
          const C x = std::abs(v);
          amax_lane[l] = amax_lane[l] > x ? amax_lane[l] : x;
          sum_lane[l] += v;
        }
      }
      C sum = C(0);
      for (index_t l = 0; l < kEncodeLanes; ++l) sum += sum_lane[l];
      for (index_t i = tail; i < ilen; ++i) {
        const C v = C(col[i]);
        const C x = std::abs(v);
        amax_lane[0] = amax_lane[0] > x ? amax_lane[0] : x;
        sum += v;
      }
      ar_part[p] += alpha * sum;
    }
  } else {
    // Aᵀ: row i0+i of the storage is contiguous along p, so sweep rows and
    // scatter into ar_part (contiguous writes, vectorizable).
    for (index_t i = 0; i < ilen; ++i) {
      const S* __restrict__ row = a.data + (i0 + i) * a.ld;
      for (index_t p = 0; p < k; ++p) {
        const C v = C(row[p]);
        const C x = std::abs(v);
        amax_lane[p % kEncodeLanes] =
            amax_lane[p % kEncodeLanes] > x ? amax_lane[p % kEncodeLanes] : x;
        ar_part[p] += alpha * v;
      }
    }
  }
  double amax = 0.0;
  for (index_t l = 0; l < kEncodeLanes; ++l)
    amax = std::max(amax, double(amax_lane[l]));
  return amax;
}

/// amax over columns [j0, j0+jlen) of the effective B (K x N).
template <typename S, typename C = S>
double amax_b_slice(const OperandView<S>& b, index_t k, index_t j0,
                    index_t jlen) {
  C amax_lane[kEncodeLanes] = {};
  // The effective column is contiguous for NoTrans; for Trans the effective
  // row is.  Either way one direction is unit-stride — pick it.
  const bool cols_contiguous = !b.trans;
  const index_t outer = cols_contiguous ? jlen : k;
  const index_t inner = cols_contiguous ? k : jlen;
  for (index_t o = 0; o < outer; ++o) {
    const S* __restrict__ line = cols_contiguous
                                     ? b.data + (j0 + o) * b.ld
                                     : b.data + j0 + o * b.ld;
    const index_t tail = inner - inner % kEncodeLanes;
    for (index_t i = 0; i < tail; i += kEncodeLanes) {
      for (index_t l = 0; l < kEncodeLanes; ++l) {
        const C x = std::abs(C(line[i + l]));
        amax_lane[l] = amax_lane[l] > x ? amax_lane[l] : x;
      }
    }
    for (index_t i = tail; i < inner; ++i) {
      const C x = std::abs(C(line[i]));
      amax_lane[0] = amax_lane[0] > x ? amax_lane[0] : x;
    }
  }
  double amax = 0.0;
  for (index_t l = 0; l < kEncodeLanes; ++l)
    amax = std::max(amax, double(amax_lane[l]));
  return amax;
}

// ---------------------------------------------------------------------------
// Standalone encoders (unfused-ABFT baseline and test oracles).
// ---------------------------------------------------------------------------

/// Cc = C · e (row sums), full matrix, separate memory pass.
template <typename T>
void encode_cc_standalone(const T* c, index_t ldc, index_t m, index_t n,
                          T* __restrict__ cc) {
  std::fill(cc, cc + m, T(0));
  for (index_t j = 0; j < n; ++j) {
    const T* __restrict__ col = c + j * ldc;
    for (index_t i = 0; i < m; ++i) cc[i] += col[i];
  }
}

/// Cr = eᵀ · C (column sums), full matrix, separate memory pass.
template <typename T>
void encode_cr_standalone(const T* c, index_t ldc, index_t m, index_t n,
                          T* __restrict__ cr) {
  for (index_t j = 0; j < n; ++j) {
    const T* __restrict__ col = c + j * ldc;
    T sum = T(0);
    for (index_t i = 0; i < m; ++i) sum += col[i];
    cr[j] = sum;
  }
}

/// Bc = B_eff · e (row sums of effective B), separate pass.  (S, C)
/// generalized like the fused encoders, so tests can build mixed oracles.
template <typename S, typename C = S>
void encode_bc_standalone(const OperandView<S>& b, index_t k, index_t n,
                          C* __restrict__ bc) {
  std::fill(bc, bc + k, C(0));
  for (index_t j = 0; j < n; ++j)
    for (index_t p = 0; p < k; ++p) bc[p] += C(b.at(p, j));
}

/// y += M_eff · x  for the effective operand (rows m, cols k) — used by the
/// unfused baseline to push checksums through the multiplication.
template <typename S, typename C = S>
void checksum_gemv(const OperandView<S>& a, index_t m, index_t k, C alpha,
                   const C* __restrict__ x, C* __restrict__ y) {
  for (index_t p = 0; p < k; ++p) {
    const C xv = x[p];
    for (index_t i = 0; i < m; ++i) y[i] += alpha * C(a.at(i, p)) * xv;
  }
}

/// y += alpha * xᵀ · B_eff  (row vector times matrix), result length n.
template <typename S, typename C = S>
void checksum_gevm(const OperandView<S>& b, index_t k, index_t n, C alpha,
                   const C* __restrict__ x, C* __restrict__ y) {
  for (index_t j = 0; j < n; ++j) {
    C sum = C(0);
    for (index_t p = 0; p < k; ++p) sum += x[p] * C(b.at(p, j));
    y[j] += alpha * sum;
  }
}

}  // namespace ftgemm
