// Checksum verification and error location/correction.
//
// After each rank-KC panel the driver compares the predicted checksums
// (maintained through checksum arithmetic) against the reference checksums
// (accumulated from the actual C values inside the kernels).  A soft error
// that corrupted element (i, j) by delta shows up as
//     Cc_ref[i] - Cc[i] = delta     and     Cr_ref[j] - Cr[j] = delta,
// so the intersection of mismatching rows and columns locates it and the
// difference corrects it — the classic ABFT argument (Huang & Abraham).
//
// Multi-error panels are resolved by a small assignment search: under the
// hypothesis that each mismatching column contains exactly one error, each
// column delta is an individual error value and must be attributable to a
// row such that every row's mismatch equals the sum of its assigned column
// deltas (and symmetrically with rows/columns swapped).  This covers single
// errors, k errors in distinct rows/columns, and bursts sharing a row or a
// column; truly ambiguous patterns are reported as uncorrectable so the
// caller can re-run (see ft_gemm_reliable).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace ftgemm {

/// One checksum entry whose reference and predicted values disagree.
struct Mismatch {
  std::int64_t idx;   ///< global row index (Cc) or column index (Cr)
  double delta;       ///< reference minus predicted
};

/// Scan a checksum pair for entries differing by more than tau.
template <typename T>
void find_mismatches(const T* predicted, const T* reference,
                     std::int64_t count, double tau, std::int64_t base,
                     std::vector<Mismatch>& out) {
  for (std::int64_t i = 0; i < count; ++i) {
    const double d = double(reference[i]) - double(predicted[i]);
    if (d > tau || d < -tau) out.push_back({base + i, d});
  }
}

/// One located error: the element (row, col) of C was perturbed by `delta`
/// (subtract it to correct).  row/col are the global indices carried by the
/// originating mismatches.
struct LocatedError {
  std::int64_t row;
  std::int64_t col;
  double delta;
};

/// Result of the error-assignment search.
struct SolveOutcome {
  bool solved = false;
  std::vector<LocatedError> errors;
};

/// Attempt to explain the observed row/column checksum mismatches as a set
/// of located errors.  `slack` absorbs floating-point noise when comparing
/// sums of deltas.
///
/// Strategy: (1) peel errors whose row and column deltas match each other
/// uniquely — handles arbitrarily many scattered errors; (2) resolve the
/// remaining burst clusters with a small assignment search under the
/// "one error per column" / "one error per row" hypotheses.  Oversized
/// mismatch lists or an exhausted search budget yield solved = false (the
/// caller treats the panel as detected-but-uncorrectable).
SolveOutcome solve_error_assignment(const std::vector<Mismatch>& rows,
                                    const std::vector<Mismatch>& cols,
                                    double slack);

}  // namespace ftgemm
