// Thread-team backends: the OpenMP region fallback and the persistent
// worker pool (see runtime/team.hpp for the contract).
//
// Pool anatomy — three pieces, all process-wide:
//
//   WorkerSlot  — one parked worker thread.  Job handoff is a single
//     atomic pointer published under the slot mutex, so a spinning worker
//     picks it up lock-free while a parked worker is woken exactly once
//     (storing under the mutex makes the park/assign race a textbook
//     condition-variable pattern instead of a Dekker store-load).
//
//   TeamJob     — one run_team invocation: the member function, the team's
//     sense-reversing barrier, and a completion latch.  Heap-allocated and
//     manually reference-counted (leader + one ref per worker) so the last
//     participant out — whoever it is — frees it, and neither the leader's
//     spin-exit nor a worker's final notify can touch a dead job.
//
//   WorkerPool  — the free-list.  run() leases nt-1 workers (growing the
//     pool on demand, never shrinking), participates as rank 0, and waits
//     on the job latch.  Leasing means concurrent application threads get
//     disjoint workers — N serving threads each running 4-member teams use
//     4N workers, not a shared global region — which is what makes the
//     batched scheduler safe to dispatch onto the pool from any thread.
//
// Spin policy: both the barrier and the parked-worker wakeup spin a bounded
// number of iterations before falling back to a futex sleep (condvar).  On
// an oversubscribed machine (teams wider than the core count — the CI
// regime) spinning only steals cycles from the threads being waited on, so
// the spin budget collapses to zero there.  FTGEMM_POOL_SPIN overrides.
#include "runtime/team.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/topology.hpp"
#include "util/env.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ftgemm::runtime {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Bounded spin before parking (workers awaiting a job, members inside a
/// barrier, the leader awaiting completion).  ~10^4 pause iterations is a
/// few microseconds — enough to bridge back-to-back serving dispatches
/// without ever burning a core for long.
int spin_budget() {
  static const int budget = [] {
    const long env = env_long("FTGEMM_POOL_SPIN", -1);
    if (env >= 0) return int(env);
    return hardware_concurrency() > 1 ? 16384 : 0;
  }();
  return budget;
}

/// Centralized sense-reversing barrier for one team.  The last arriver
/// flips the generation and wakes any parked members; everyone else spins
/// on the generation, then parks.
class PoolBarrier final : public TeamBarrier {
 public:
  explicit PoolBarrier(int nt) : nt_(nt) {}

  void wait() override {
    const int gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == nt_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.store(gen + 1, std::memory_order_release);
      // The empty critical section orders the generation flip before the
      // notify: a member that observed the old generation under the mutex
      // is guaranteed to be in wait() and receive the broadcast.
      { std::lock_guard<std::mutex> lk(m_); }
      cv_.notify_all();
      return;
    }
    for (int i = spin_budget(); i > 0; --i) {
      if (generation_.load(std::memory_order_acquire) != gen) return;
      cpu_relax();
    }
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] {
      return generation_.load(std::memory_order_acquire) != gen;
    });
  }

 private:
  const int nt_;
  std::atomic<int> arrived_{0};
  std::atomic<int> generation_{0};
  std::mutex m_;
  std::condition_variable cv_;
};

/// One run_team / run_team_async invocation (see file comment for the
/// lifetime protocol).  Synchronous jobs have a leader (the calling thread
/// participates as rank 0, holds one ref, and parks on done_cv); async jobs
/// run every rank on pool workers and carry a completion hook instead,
/// invoked by the last finishing worker.
struct TeamJob {
  TeamJob(int nt, TeamFnRef fn)
      : fn(fn), barrier(nt), nt(nt), refs(nt), active_workers(nt - 1) {}

  TeamJob(int nt, TeamFnRef fn, CompletionRef done)
      : fn(fn),
        barrier(nt),
        nt(nt),
        refs(nt),
        active_workers(nt),
        completion(done) {}

  const TeamFnRef fn;
  PoolBarrier barrier;
  const int nt;
  std::atomic<int> refs;            ///< participants still holding it
  std::atomic<int> active_workers;  ///< workers not yet finished
  std::optional<CompletionRef> completion;  ///< async jobs only
  std::mutex m;
  std::condition_variable done_cv;  ///< leader parks here past the spin
};

void drop_ref(TeamJob* job) {
  if (job->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete job;
}

struct WorkerSlot {
  std::atomic<TeamJob*> job{nullptr};
  int tid = 0;  ///< rank for the pending job; published by the job store
  std::mutex m;
  std::condition_variable cv;
  bool stop = false;  ///< guarded by m
  std::thread thread;
};

class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  void run(int nt, TeamFnRef fn) {
    const int workers = nt - 1;
    TeamJob* job = new TeamJob(nt, fn);

    {
      std::lock_guard<std::mutex> lk(m_);
      for (int i = 0; i < workers; ++i) {
        if (free_.empty()) spawn_locked();
        WorkerSlot* slot = free_.back();
        free_.pop_back();
        assign(slot, job, i + 1);
      }
    }

    TeamMember leader(0, nt, &job->barrier);
    job->fn(leader);

    // Completion latch: spin, then park on the job's condvar.  The job's
    // refcount keeps the latch alive through a worker's final notify even
    // when the leader leaves via the spin path.
    if (job->active_workers.load(std::memory_order_acquire) > 0) {
      for (int i = spin_budget(); i > 0; --i) {
        if (job->active_workers.load(std::memory_order_acquire) == 0) break;
        cpu_relax();
      }
      if (job->active_workers.load(std::memory_order_acquire) > 0) {
        std::unique_lock<std::mutex> lk(job->m);
        job->done_cv.wait(lk, [&] {
          return job->active_workers.load(std::memory_order_acquire) == 0;
        });
      }
    }
    drop_ref(job);
  }

  /// Asynchronous lease: dispatch an nt-member team entirely onto pool
  /// workers (tids 0..nt-1) and return immediately; the job's completion
  /// hook fires on the last member out.  With may_spawn == false this is
  /// the non-blocking try-lease — it succeeds only if nt + reserve workers
  /// are parked right now (the `reserve` surplus stays parked for other
  /// lessees; see team.hpp), and fails without side effects otherwise.
  bool run_async(int nt, TeamFnRef fn, CompletionRef done, bool may_spawn,
                 int reserve) {
    TeamJob* job = new TeamJob(nt, fn, done);
    {
      std::lock_guard<std::mutex> lk(m_);
      if (!may_spawn && int(free_.size()) < nt + std::max(reserve, 0)) {
        delete job;
        return false;
      }
      for (int i = 0; i < nt; ++i) {
        if (free_.empty()) spawn_locked();
        WorkerSlot* slot = free_.back();
        free_.pop_back();
        assign(slot, job, i);
      }
    }
    return true;
  }

  [[nodiscard]] int worker_count() {
    std::lock_guard<std::mutex> lk(m_);
    return int(slots_.size());
  }

  [[nodiscard]] int idle_worker_count() {
    std::lock_guard<std::mutex> lk(m_);
    return int(free_.size());
  }

 private:
  WorkerPool()
      : pin_(env_long("FTGEMM_POOL_PIN", 0) != 0),
        ncpu_(hardware_concurrency()) {}

  // Joining happens outside m_: a worker finishing its last job needs m_
  // for the free-list push, and no worker ever touches slots_ itself.
  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      for (auto& slot : slots_) {
        std::lock_guard<std::mutex> slk(slot->m);
        slot->stop = true;
      }
    }
    for (auto& slot : slots_) {
      slot->cv.notify_one();
      slot->thread.join();
    }
  }

  /// Hand a leased worker its job.  Storing under the slot mutex makes the
  /// handoff race-free against a worker transitioning from spin to park:
  /// the worker re-checks the slot under the same mutex before sleeping.
  static void assign(WorkerSlot* slot, TeamJob* job, int tid) {
    {
      std::lock_guard<std::mutex> lk(slot->m);
      slot->tid = tid;
      slot->job.store(job, std::memory_order_release);
    }
    slot->cv.notify_one();
  }

  void spawn_locked() {
    auto slot = std::make_unique<WorkerSlot>();
    WorkerSlot* raw = slot.get();
    const int index = int(slots_.size());
    raw->thread = std::thread([this, raw, index] { worker_main(raw, index); });
    slots_.push_back(std::move(slot));
    free_.push_back(raw);
  }

  void worker_main(WorkerSlot* slot, int index) {
#if defined(__linux__)
    if (pin_ && ncpu_ > 0) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(std::size_t(index % ncpu_), &set);
      pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
    }
#else
    (void)index;
#endif
    for (;;) {
      TeamJob* job = nullptr;
      for (int i = spin_budget(); i > 0; --i) {
        job = slot->job.load(std::memory_order_acquire);
        if (job != nullptr) break;
        cpu_relax();
      }
      if (job == nullptr) {
        std::unique_lock<std::mutex> lk(slot->m);
        slot->cv.wait(lk, [&] {
          return slot->stop ||
                 slot->job.load(std::memory_order_acquire) != nullptr;
        });
        if (slot->stop) return;
        job = slot->job.load(std::memory_order_acquire);
      }
      const int tid = slot->tid;
      slot->job.store(nullptr, std::memory_order_relaxed);

      TeamMember member(tid, job->nt, &job->barrier);
      job->fn(member);

      // Return to the free list *before* signalling completion: by the
      // time the leader can observe the team as done, every worker is
      // already reusable, so an immediately following run() never spawns
      // spuriously.
      {
        std::lock_guard<std::mutex> lk(m_);
        free_.push_back(slot);
      }
      bool last = false;
      {
        std::lock_guard<std::mutex> lk(job->m);
        if (job->active_workers.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          last = true;
          job->done_cv.notify_one();
        }
      }
      // Async jobs: the last member out invokes the completion hook.  Our
      // still-held ref keeps the job alive across the read; the hook runs
      // outside every pool lock, so it may itself dispatch new teams.
      if (last && job->completion.has_value()) (*job->completion)();
      drop_ref(job);
    }
  }

  std::mutex m_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<WorkerSlot*> free_;
  const bool pin_;
  const int ncpu_;
};

class OmpBarrier final : public TeamBarrier {
 public:
  void wait() override {
// Orphaned directive: binds to the innermost enclosing parallel region.
#pragma omp barrier
  }
};

OmpBarrier g_omp_barrier;

/// Returns false — without having run fn at all — when the region
/// materializes with fewer than nt threads (OMP_DYNAMIC, OMP_THREAD_LIMIT,
/// resource exhaustion): the caller partitioned work over nt ranks, so an
/// under-delivered team would silently drop the absent ranks' share.
bool run_openmp(int nt, TeamFnRef fn) {
  bool delivered = true;
#pragma omp parallel num_threads(nt)
  {
    if (omp_get_num_threads() == nt) {
      TeamMember member(omp_get_thread_num(), nt, &g_omp_barrier);
      fn(member);
    } else if (omp_get_thread_num() == 0) {
      delivered = false;  // visible to the caller via the region join
    }
  }
  return delivered;
}

}  // namespace

void run_team(RuntimeBackend backend, int nt, TeamFnRef fn) {
  if (nt <= 1) {
    TeamMember solo(0, 1, nullptr);
    fn(solo);
    return;
  }
  backend = resolve_backend(backend);
  // The pool is the fallback whenever OpenMP cannot host a faithful
  // nt-member team: inside an existing parallel region (a nested region
  // delivers a one-member team by default, silently dropping every tid > 0
  // partition) or when the runtime hands the region fewer threads than
  // requested.  Member function, ranks, and team size are identical either
  // way, so results do not depend on which backend ends up executing.
  if (backend == RuntimeBackend::kOpenMP && !omp_in_parallel() &&
      run_openmp(nt, fn)) {
    return;
  }
  WorkerPool::instance().run(nt, fn);
}

void run_team_async(int nt, TeamFnRef fn, CompletionRef done) {
  WorkerPool::instance().run_async(std::max(nt, 1), fn, done, true, 0);
}

bool try_run_team_async(int nt, TeamFnRef fn, CompletionRef done,
                        int reserve) {
  return WorkerPool::instance().run_async(std::max(nt, 1), fn, done, false,
                                          reserve);
}

int pool_worker_count() { return WorkerPool::instance().worker_count(); }

int pool_idle_worker_count() {
  return WorkerPool::instance().idle_worker_count();
}

}  // namespace ftgemm::runtime
