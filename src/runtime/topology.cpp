#include "runtime/topology.hpp"

#include <omp.h>

#include <algorithm>

#include "util/env.hpp"

namespace ftgemm::runtime {

int hardware_concurrency() { return std::max(omp_get_max_threads(), 1); }

int topology(int requested_threads) {
  if (requested_threads > 0) return requested_threads;
  const long env = env_long("FTGEMM_THREADS", 0);
  if (env > 0) return int(env);
  return hardware_concurrency();
}

RuntimeBackend resolve_backend(RuntimeBackend requested) {
  if (requested != RuntimeBackend::kAuto) return requested;
  if (const auto env = env_string("FTGEMM_RUNTIME")) {
    if (*env == "pool") return RuntimeBackend::kPool;
    if (*env == "omp" || *env == "openmp") return RuntimeBackend::kOpenMP;
  }
  return RuntimeBackend::kOpenMP;
}

}  // namespace ftgemm::runtime
