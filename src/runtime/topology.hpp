// Topology policy: the single place worker counts and runtime backends are
// resolved.
//
// Before this layer existed, `opts.threads > 0 ? opts.threads :
// omp_get_max_threads()` was re-derived independently by the planner and the
// batched scheduler; any future policy change (cgroup awareness, a global
// cap, a serving-thread reservation) had to be made twice.  Every entry
// point now funnels through topology() / resolve_backend(), and the result
// is frozen into the GemmPlan fingerprint so a warm PlanCache never masks a
// changed environment.
//
// Resolution order for the worker count (topology()):
//   1. the per-call request (Options::threads > 0),
//   2. the FTGEMM_THREADS environment variable (> 0),
//   3. hardware concurrency (omp_get_max_threads(), which itself honors
//      OMP_NUM_THREADS — the pre-refactor behavior).
//
// Resolution order for the team runtime (resolve_backend()):
//   1. the per-call request (Options::runtime != kAuto),
//   2. the FTGEMM_RUNTIME environment variable ("pool", "omp"/"openmp"),
//   3. kOpenMP (the long-verified default).
#pragma once

#include "runtime/team.hpp"

namespace ftgemm::runtime {

/// Worker threads the machine offers this process (>= 1).  Reads
/// omp_get_max_threads() so OMP_NUM_THREADS / omp_set_num_threads() keep
/// working as global caps under both backends.
int hardware_concurrency();

/// Resolve a per-call thread request (0 = unset) against FTGEMM_THREADS and
/// hardware concurrency.  Always >= 1.
int topology(int requested_threads);

/// Resolve a per-call backend request against FTGEMM_RUNTIME.  Never
/// returns kAuto.
RuntimeBackend resolve_backend(RuntimeBackend requested);

}  // namespace ftgemm::runtime
