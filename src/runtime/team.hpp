// Thread-team runtime: the parallel-region abstraction every (FT-)GEMM
// layer executes on.
//
// The paper's §2.3 algorithm needs exactly three collective primitives —
// fork a team of nt members, barrier, and a single-executor section — and
// nothing OpenMP-specific.  This layer expresses them behind one interface:
//
//   run_team(backend, nt, fn)  — run fn(member) on nt team members;
//   TeamMember::tid()/nt()     — the member's rank and the team size;
//   TeamMember::barrier()      — synchronize the whole team;
//   TeamMember::single(f)      — f runs on exactly one member (rank 0),
//                                followed by a team barrier, mirroring
//                                OpenMP single's implicit barrier.
//
// Two backends implement it (selected per plan, see runtime/topology.hpp):
//
//   kOpenMP — the pre-existing `#pragma omp parallel` region.  Barriers are
//     orphaned `#pragma omp barrier` directives binding to the innermost
//     region.  When the caller is already inside an OpenMP parallel region
//     (where a nested region would silently deliver a one-thread team and
//     drop every tid > 0 partition), run_team routes the call to the pool
//     backend instead, which is nesting-agnostic.
//
//   kPool — a persistent process-wide worker pool (runtime/team.cpp).
//     Workers are spawned once, parked on a condition variable between
//     regions (with a bounded spin phase before parking, skipped when the
//     machine is oversubscribed), and leased per region under a free-list
//     mutex — so N application threads can each run teams concurrently
//     without oversubscribing a shared global region or re-spawning
//     threads.  FTGEMM_POOL_PIN=1 pins workers round-robin to cores.
//
// Bit-identity contract: a team member's rank and team size fully determine
// its partition of the work and its position in every reduction, and both
// backends run the identical member function at the identical (tid, nt) —
// so results are bit-identical across backends at equal nt, and the
// per-panel summation order of the FT checksums is unchanged from the
// original OpenMP-only driver.  tests/test_runtime.cpp asserts this across
// the plan-equivalence shape sweep.
#pragma once

#include <type_traits>

namespace ftgemm {

/// Team runtime a plan executes on.  kAuto defers to FTGEMM_RUNTIME, then
/// the library default (see runtime/topology.hpp).
enum class RuntimeBackend {
  kAuto = 0,    ///< resolve at plan time from the environment
  kOpenMP = 1,  ///< per-call OpenMP parallel region
  kPool = 2,    ///< persistent parked-worker pool
};

namespace runtime {

/// Synchronization point shared by one team; backends implement wait().
class TeamBarrier {
 public:
  virtual void wait() = 0;

 protected:
  ~TeamBarrier() = default;
};

/// One member's view of a running team.  Cheap value handle: rank, size,
/// and the team's barrier.
class TeamMember {
 public:
  TeamMember(int tid, int nt, TeamBarrier* barrier)
      : tid_(tid), nt_(nt), barrier_(barrier) {}

  [[nodiscard]] int tid() const { return tid_; }
  [[nodiscard]] int nt() const { return nt_; }

  /// Wait until every team member arrives.  All writes made by any member
  /// before its barrier() are visible to every member after.
  void barrier() {
    if (nt_ > 1) barrier_->wait();
  }

  /// Run f on exactly one member (rank 0), then barrier the team — the
  /// semantics of `#pragma omp single` with its implicit barrier, made
  /// deterministic (OpenMP hands the block to the first arriver; pinning it
  /// to rank 0 keeps the executor stable across backends and runs).
  template <typename F>
  void single(F&& f) {
    if (tid_ == 0) f();
    barrier();
  }

 private:
  int tid_;
  int nt_;
  TeamBarrier* barrier_;
};

/// Non-owning reference to the team body: run_team is not a template (the
/// backends live in a .cpp), and a std::function would heap-allocate on
/// every dispatch — measurable at serving sizes.  The referenced callable
/// must outlive the run_team call (it always does: the lambda lives in the
/// caller's frame and run_team returns only after every member finished).
class TeamFnRef {
 public:
  // The enable_if keeps this overload away from TeamFnRef itself: without
  // it the template would hijack the copy constructor and capture a
  // pointer to the by-value copy instead of the caller's callable.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TeamFnRef>>>
  TeamFnRef(F& fn)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* o, TeamMember& m) { (*static_cast<F*>(o))(m); }) {}

  void operator()(TeamMember& member) const { call_(obj_, member); }

 private:
  void* obj_;
  void (*call_)(void*, TeamMember&);
};

/// Execute fn(member) on a team of nt members on the given backend.
/// nt <= 1 runs fn inline on the calling thread (no region, no pool trip);
/// the calling thread always participates as rank 0, so nt - 1 workers are
/// dispatched at most.  Returns after every member has finished.
void run_team(RuntimeBackend backend, int nt, TeamFnRef fn);

/// Non-owning reference to a completion hook for the asynchronous API —
/// same contract as TeamFnRef: the referenced callable must outlive the
/// invocation (it lives in the submitter's in-flight bookkeeping, which by
/// construction survives until the completion has run).
class CompletionRef {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, CompletionRef>>>
  CompletionRef(F& fn)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* o) { (*static_cast<F*>(o))(); }) {}

  void operator()() const { call_(obj_); }

 private:
  void* obj_;
  void (*call_)(void*);
};

/// Asynchronous team lease: run fn(member) on a team of nt *pool workers* —
/// the calling thread does not participate and the call returns as soon as
/// the workers are dispatched.  `done()` is invoked exactly once, on the
/// last member to finish, after every member has returned (and after every
/// worker is already back on the free list, so work launched from inside
/// `done` never spawns spuriously).  Both referenced callables must stay
/// alive until `done` has returned.  Pool-only by design: an OpenMP region
/// is inherently synchronous with its opening thread.  Grows the pool on
/// demand, like run_team.
void run_team_async(int nt, TeamFnRef fn, CompletionRef done);

/// Non-blocking variant of run_team_async: dispatches only if nt workers
/// are parked on the free list *right now* — never spawns a thread, never
/// waits.  Returns false without running anything when the lease cannot be
/// satisfied; the caller decides whether to fall back to the growing
/// variant, queue, or shed load.  This is the admission-control primitive
/// the serving layer's dispatchers are built on.
///
/// `reserve` is the fairness hook for concurrent lessees (the sharded
/// serving layer): the try-lease succeeds only when nt + reserve workers
/// are parked, i.e. it leaves at least `reserve` workers on the free list
/// for *other* submitters.  Without it, one hot shard's try-leases can
/// drain the pool every time and permanently push its siblings onto the
/// slower growing path; with reserve = (shards - 1) every shard's
/// try-lease leaves one worker per sibling parked.  reserve = 0 is the
/// original greedy behavior.
bool try_run_team_async(int nt, TeamFnRef fn, CompletionRef done,
                        int reserve = 0);

/// Workers currently alive in the process-wide pool (diagnostics/tests).
int pool_worker_count();

/// Workers currently parked on the free list, i.e. the largest team
/// try_run_team_async could lease this instant (diagnostics/tests; the
/// value is stale the moment it is read).
int pool_idle_worker_count();

}  // namespace runtime
}  // namespace ftgemm
