// AVX2 accelerations of the int8 FT pack/encode family.
//
// The int8 FT overhead is not in the micro-kernels (the VNNI FT epilogue is
// amortized over the whole KC loop) — it is in the checksum arithmetic the
// portable packers fuse per byte: an int64 multiply-accumulate against
// bc/ar for every packed element, behind per-byte padding branches.  This
// TU keeps the byte layout EXACTLY as the portable packers produce it (it
// delegates the byte movement to kernel_int8_scalar.cpp) and replaces only
// the checksum passes with vectorized sweeps over the original operands:
//
//   pack_a_ft : cc[i] += sum_kk u8(i,kk)*bc[kk]   — columns of op(A) are
//               contiguous in i (no-trans), so 8 rows advance per step
//   pack_b_ft : cr[j] += sum_kk ar[kk]*s8(kk,j)   — columns of op(B) are
//               contiguous in kk (no-trans), a vector dot per column
//   encode_ar : ar[kk] += sum_i u8(i,kk)          — VPSADBW column sums
//   reduce_bc : bc[kk]  = sum_j of the packed panel (NR = 16 tiles)
//
// Every quantity is an integer and integer addition is associative, so the
// vector passes are bit-identical to the scalar ones by construction — the
// FTGEMM_FORCE_ISA=scalar CI leg and Int8Gemm.ForcedScalarIsaBitIdentical*
// assert exactly that.  Transposed views (and oversized checksum
// magnitudes, see the mullo headroom guards) delegate to the portable
// implementations wholesale.
#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "kernels/microkernel.hpp"

namespace ftgemm {

namespace {

const PackSet<std::int8_t, std::int32_t>& portable() {
  static const PackSet<std::int8_t, std::int32_t> p = scalar_pack_i8();
  return p;
}

std::int32_t max_abs_i32(const std::int32_t* v, index_t n) {
  std::int32_t m = 0;
  for (index_t i = 0; i < n; ++i) {
    const std::int32_t a = v[i] < 0 ? -v[i] : v[i];
    m = std::max(m, a);
  }
  return m;
}

/// Horizontal sum of a 4 x i64 vector.
std::int64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return _mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1);
}

// pack_a fused with the predicted-Cc update, vectorized over the rows of
// op(A).  Bytes + arow come from the portable pack_a (identical layout by
// construction); the cc matvec runs 8 rows per step with i32 partial
// products widened to i64 every W depth steps (W sized so W * 255 * max|bc|
// stays under 2^30 — and |bc| itself must leave mullo headroom: |bc| <
// 2^22 keeps even a W = 1 partial inside i32, else delegate).
void pack_a_ft_i8_avx2(const OperandView<std::int8_t>& a, index_t m0,
                       index_t k0, index_t mlen, index_t klen, index_t mr,
                       std::uint8_t* dst, std::int32_t* arow,
                       const std::int32_t* bc, std::int64_t* cc) {
  const std::int32_t bmax = max_abs_i32(bc, klen);
  if (a.trans || bmax >= (1 << 22)) {
    portable().pack_a_ft(a, m0, k0, mlen, klen, mr, dst, arow, bc, cc);
    return;
  }
  portable().pack_a(a, m0, k0, mlen, klen, mr, dst, arow);
  if (bmax == 0) return;  // every product is zero
  const index_t W =
      std::max<index_t>(1, (index_t(1) << 30) / (255 * index_t(bmax)));
  const __m128i bias = _mm_set1_epi8(char(0x80));
  const index_t i_full = mlen - mlen % 8;
  for (index_t i = 0; i < i_full; i += 8) {
    const std::int8_t* col0 = a.data + (m0 + i) + k0 * a.ld;
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    index_t kk = 0;
    while (kk < klen) {
      const index_t end = std::min(klen, kk + W);
      __m256i acc32 = _mm256_setzero_si256();
      for (; kk < end; ++kk) {
        __m128i v8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(col0 + kk * a.ld));
        v8 = _mm_xor_si128(v8, bias);
        const __m256i prod = _mm256_mullo_epi32(
            _mm256_cvtepu8_epi32(v8), _mm256_set1_epi32(bc[kk]));
        acc32 = _mm256_add_epi32(acc32, prod);
      }
      acc_lo = _mm256_add_epi64(
          acc_lo, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(acc32)));
      acc_hi = _mm256_add_epi64(
          acc_hi, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(acc32, 1)));
    }
    alignas(32) std::int64_t lo[4], hi[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lo), acc_lo);
    _mm256_store_si256(reinterpret_cast<__m256i*>(hi), acc_hi);
    for (int r = 0; r < 4; ++r) {
      cc[m0 + i + r] += lo[r];
      cc[m0 + i + 4 + r] += hi[r];
    }
  }
  for (index_t i = i_full; i < mlen; ++i) {
    std::int64_t csum = 0;
    for (index_t kk = 0; kk < klen; ++kk) {
      csum += std::int64_t(bias_i8(a.at(m0 + i, k0 + kk))) *
              std::int64_t(bc[kk]);
    }
    cc[m0 + i] += csum;
  }
}

// pack_b fused with the predicted-Cr update: one vector dot of ar against
// each contiguous (no-trans) column of op(B), 8 depths per step, i32
// partials widened every W groups (|s8| <= 128, so W * 128 * max|ar| must
// stay under 2^30; |ar| < 2^22 keeps mullo headroom, else delegate).
void pack_b_ft_i8_avx2(const OperandView<std::int8_t>& b, index_t k0,
                       index_t j0, index_t klen, index_t nlen, index_t nr,
                       std::int8_t* dst, std::int32_t* bcol,
                       const std::int32_t* ar, std::int64_t* cr) {
  const std::int32_t amax = max_abs_i32(ar, klen);
  if (b.trans || amax >= (1 << 22)) {
    portable().pack_b_ft(b, k0, j0, klen, nlen, nr, dst, bcol, ar, cr);
    return;
  }
  portable().pack_b(b, k0, j0, klen, nlen, nr, dst, bcol);
  if (amax == 0) return;
  const index_t W =
      std::max<index_t>(1, (index_t(1) << 30) / (128 * index_t(amax)));
  const index_t k_full = klen - klen % 8;
  for (index_t j = 0; j < nlen; ++j) {
    const std::int8_t* col = b.data + k0 + (j0 + j) * b.ld;
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    index_t kk = 0;
    while (kk < k_full) {
      const index_t end = std::min(k_full, kk + W * 8);
      __m256i acc32 = _mm256_setzero_si256();
      for (; kk < end; kk += 8) {
        const __m128i v8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(col + kk));
        const __m256i prod = _mm256_mullo_epi32(
            _mm256_cvtepi8_epi32(v8),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ar + kk)));
        acc32 = _mm256_add_epi32(acc32, prod);
      }
      acc_lo = _mm256_add_epi64(
          acc_lo, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(acc32)));
      acc_hi = _mm256_add_epi64(
          acc_hi, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(acc32, 1)));
    }
    std::int64_t rsum = hsum_epi64(_mm256_add_epi64(acc_lo, acc_hi));
    for (; kk < klen; ++kk) {
      rsum += std::int64_t(ar[kk]) * std::int64_t(col[kk]);
    }
    cr[j0 + j] += rsum;
  }
}

// Biased column sums of op(A) via VPSADBW: 32 bytes per step, each SAD
// against zero yields four exact u16 partial sums in i64 lanes — no
// overflow at any depth.
void encode_ar_i8_avx2(const OperandView<std::int8_t>& a, index_t i0,
                       index_t ilen, index_t k0, index_t klen,
                       std::int32_t* ar) {
  if (a.trans) {
    portable().encode_ar(a, i0, ilen, k0, klen, ar);
    return;
  }
  const __m256i bias = _mm256_set1_epi8(char(0x80));
  const __m256i zero = _mm256_setzero_si256();
  const index_t i_full = ilen - ilen % 32;
  for (index_t kk = 0; kk < klen; ++kk) {
    const std::int8_t* col = a.data + i0 + (k0 + kk) * a.ld;
    __m256i acc = _mm256_setzero_si256();
    for (index_t i = 0; i < i_full; i += 32) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i)),
          bias);
      acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, zero));
    }
    std::int64_t sum = hsum_epi64(acc);
    for (index_t i = i_full; i < ilen; ++i) {
      sum += std::int64_t(bias_i8(col[i]));
    }
    ar[kk] += std::int32_t(sum);
  }
}

// Panel checksum Bc from the packed panel, NR = 16 tiles: one quad of a
// tile is 64 contiguous bytes (16 columns x 4 depths); biased u16 lane
// sums keep each depth's bytes in lane (index mod 4), folded and un-biased
// once per quad.  Partition edges that split a quad (and non-16 NR shapes)
// fall back to the portable per-depth loop.
void reduce_bc_i8_avx2(const std::int8_t* b_packed, index_t klen,
                       index_t nlen, index_t nr, index_t kk0, index_t kklen,
                       std::int32_t* bc) {
  if (nr != 16) {
    portable().reduce_bc(b_packed, klen, nlen, nr, kk0, kklen, bc);
    return;
  }
  const index_t kq = i8_kq(klen);
  const index_t tile_bytes = kq * kI8KQuad * nr;
  const index_t ntiles = (nlen + nr - 1) / nr;
  const auto scalar_one = [&](index_t kk) {
    const index_t q = kk / kI8KQuad;
    const index_t t = kk % kI8KQuad;
    std::int32_t sum = 0;
    for (index_t jt = 0; jt < nlen; jt += nr) {
      const std::int8_t* quad =
          b_packed + (jt / nr) * tile_bytes + q * (nr * kI8KQuad);
      for (index_t j = 0; j < nr; ++j) {
        sum += std::int32_t(quad[j * kI8KQuad + t]);
      }
    }
    bc[kk] = sum;
  };
  index_t kk = kk0;
  const index_t kk_end = kk0 + kklen;
  for (; kk < kk_end && kk % kI8KQuad != 0; ++kk) scalar_one(kk);
  const __m256i bias = _mm256_set1_epi8(char(0x80));
  const __m256i zero = _mm256_setzero_si256();
  for (; kk + kI8KQuad <= kk_end; kk += kI8KQuad) {
    const index_t q = kk / kI8KQuad;
    // u16 lane budget: each accumulator lane absorbs 2 bytes per tile
    // (one per 128-bit half), so flush to i32 every 64 tiles.
    std::int64_t sums[kI8KQuad] = {0, 0, 0, 0};
    for (index_t tg = 0; tg < ntiles; tg += 64) {
      const index_t tend = std::min(ntiles, tg + 64);
      __m256i acc_lo = _mm256_setzero_si256();
      __m256i acc_hi = _mm256_setzero_si256();
      for (index_t tile = tg; tile < tend; ++tile) {
        const std::int8_t* quad =
            b_packed + tile * tile_bytes + q * (nr * kI8KQuad);
        for (int half = 0; half < 2; ++half) {
          const __m256i v = _mm256_xor_si256(
              _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(quad + half * 32)),
              bias);
          acc_lo = _mm256_add_epi16(acc_lo, _mm256_unpacklo_epi8(v, zero));
          acc_hi = _mm256_add_epi16(acc_hi, _mm256_unpackhi_epi8(v, zero));
        }
      }
      alignas(32) std::uint16_t lanes[32];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc_lo);
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 16), acc_hi);
      for (int lane = 0; lane < 32; ++lane) {
        sums[lane % kI8KQuad] += lanes[lane];
      }
    }
    // Un-bias: padding bytes are zero (net zero after correction), so the
    // correction counts every packed position: nr per tile per depth.
    const std::int64_t corr = 128 * std::int64_t(ntiles) * nr;
    for (index_t t = 0; t < kI8KQuad; ++t) {
      bc[kk + t] = std::int32_t(sums[t] - corr);
    }
  }
  for (; kk < kk_end; ++kk) scalar_one(kk);
}

}  // namespace

PackSet<std::int8_t, std::int32_t> avx2_pack_i8() {
  PackSet<std::int8_t, std::int32_t> p = scalar_pack_i8();
  p.pack_a_ft = &pack_a_ft_i8_avx2;
  p.pack_b_ft = &pack_b_ft_i8_avx2;
  p.encode_ar = &encode_ar_i8_avx2;
  p.reduce_bc = &reduce_bc_i8_avx2;
  p.isa = Isa::kAvx2;
  return p;
}

}  // namespace ftgemm
