// Portable scalar micro-kernels (4x4 register tile).
//
// These are the correctness anchor: every SIMD kernel is tested against
// them, and they are the fallback on machines without AVX2.  The tile is
// kept in a local array that the compiler fully registerizes at -O3.
#include <type_traits>

#include "kernels/microkernel.hpp"
#include "util/env.hpp"

namespace ftgemm {

namespace {

constexpr index_t kMr = 4;
constexpr index_t kNr = 4;

template <typename T>
void kernel_base(index_t kc, const T* a, const T* b, T* c, index_t ldc) {
  T acc[kMr * kNr] = {};
  for (index_t p = 0; p < kc; ++p) {
    const T* ap = a + p * kMr;
    const T* bp = b + p * kNr;
    for (index_t j = 0; j < kNr; ++j) {
      const T bv = bp[j];
      for (index_t i = 0; i < kMr; ++i) acc[i + j * kMr] += ap[i] * bv;
    }
  }
  for (index_t j = 0; j < kNr; ++j)
    for (index_t i = 0; i < kMr; ++i) c[i + j * ldc] += acc[i + j * kMr];
}

template <typename T>
void kernel_ft(index_t kc, const T* a, const T* b, T* c, index_t ldc,
               T* cr_ref, T* cc_ref) {
  T acc[kMr * kNr] = {};
  for (index_t p = 0; p < kc; ++p) {
    const T* ap = a + p * kMr;
    const T* bp = b + p * kNr;
    for (index_t j = 0; j < kNr; ++j) {
      const T bv = bp[j];
      for (index_t i = 0; i < kMr; ++i) acc[i + j * kMr] += ap[i] * bv;
    }
  }
  T rowsum[kMr] = {};
  for (index_t j = 0; j < kNr; ++j) {
    T colsum = T(0);
    for (index_t i = 0; i < kMr; ++i) {
      const T final_value = c[i + j * ldc] + acc[i + j * kMr];
      c[i + j * ldc] = final_value;
      colsum += final_value;
      rowsum[i] += final_value;
    }
    cr_ref[j] += colsum;  // cr_lanes == 1: direct scalar accumulation
  }
  for (index_t i = 0; i < kMr; ++i) cc_ref[i] += rowsum[i];
}

}  // namespace

KernelSet<double> scalar_kernels_f64() {
  return {&kernel_base<double>, &kernel_ft<double>, kMr, kNr, 1, Isa::kScalar, {}};
}

KernelSet<float> scalar_kernels_f32() {
  return {&kernel_base<float>, &kernel_ft<float>, kMr, kNr, 1, Isa::kScalar, {}};
}

template <typename S, typename C>
KernelSet<S, C> get_kernel_set(Isa isa) {
  if constexpr (!std::is_same_v<S, C>) {
    // Mixed precision: the micro-kernels ARE the ComputeT kernels (narrow
    // storage never reaches a multiplier — register tiles, mr/nr, and the
    // FT epilogue lanes are identical to the ComputeT path), with the
    // widening pack engine swapped in.
    const KernelSet<C> base = get_kernel_set<C>(isa);
    KernelSet<S, C> ks;
    ks.base = base.base;
    ks.ft = base.ft;
    ks.mr = base.mr;
    ks.nr = base.nr;
    ks.cr_lanes = base.cr_lanes;
    ks.isa = base.isa;
    ks.pack = get_pack_set<S, C>(ks.isa);
    return ks;
  } else {
    KernelSet<S, C> ks;
    if constexpr (sizeof(C) == 8) {
      switch (isa) {
        case Isa::kAvx512:
          // Kernel-shape override for the ablation bench; register_tile()
          // applies the same sanitized value so packing stays consistent.
          ks = avx512_kernels_f64_mr(env_long("FTGEMM_KERNEL_MR", 16));
          break;
        case Isa::kAvx2: ks = avx2_kernels_f64(); break;
        case Isa::kScalar: ks = scalar_kernels_f64(); break;
      }
    } else {
      switch (isa) {
        case Isa::kAvx512: ks = avx512_kernels_f32(); break;
        case Isa::kAvx2: ks = avx2_kernels_f32(); break;
        case Isa::kScalar: ks = scalar_kernels_f32(); break;
      }
    }
    // The packing & checksum engine rides along with the micro-kernels so
    // executors reach the whole ISA surface through one dispatch point.
    ks.pack = get_pack_set<S, C>(ks.isa);
    return ks;
  }
}

template KernelSet<double> get_kernel_set<double, double>(Isa);
template KernelSet<float> get_kernel_set<float, float>(Isa);
template KernelSet<bf16_t, float> get_kernel_set<bf16_t, float>(Isa);
template KernelSet<fp16_t, float> get_kernel_set<fp16_t, float>(Isa);

}  // namespace ftgemm
