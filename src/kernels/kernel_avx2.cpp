// AVX2/FMA micro-kernels (f64 8x6, f32 16x6) — the classic Haswell shapes.
//
// Used on machines without AVX-512 and as an ablation point (the paper's
// motivation is precisely that AVX-512 widens the compute/memory gap; the
// AVX2 kernels let the benchmark harness quantify that).
#include <immintrin.h>

#include "kernels/microkernel.hpp"

namespace ftgemm {

namespace {

// ---------------------------------------------------------------------------
// f64: MR = 8 (two ymm), NR = 6 -> 12 accumulators + 3 operands in 16 ymm.
// ---------------------------------------------------------------------------

constexpr index_t kMrF64 = 8;
constexpr index_t kNrF64 = 6;

void dkernel_8x6_base(index_t kc, const double* a, const double* b, double* c,
                      index_t ldc) {
  __m256d acc0[kNrF64];
  __m256d acc1[kNrF64];
#pragma GCC unroll 6
  for (int j = 0; j < kNrF64; ++j) {
    acc0[j] = _mm256_setzero_pd();
    acc1[j] = _mm256_setzero_pd();
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m256d a0 = _mm256_load_pd(a);
    const __m256d a1 = _mm256_load_pd(a + 4);
    a += kMrF64;
#pragma GCC unroll 6
    for (int j = 0; j < kNrF64; ++j) {
      const __m256d bv = _mm256_broadcast_sd(b + j);
      acc0[j] = _mm256_fmadd_pd(a0, bv, acc0[j]);
      acc1[j] = _mm256_fmadd_pd(a1, bv, acc1[j]);
    }
    b += kNrF64;
  }
#pragma GCC unroll 6
  for (int j = 0; j < kNrF64; ++j) {
    double* cj = c + j * ldc;
    _mm256_storeu_pd(cj, _mm256_add_pd(_mm256_loadu_pd(cj), acc0[j]));
    _mm256_storeu_pd(cj + 4, _mm256_add_pd(_mm256_loadu_pd(cj + 4), acc1[j]));
  }
}

void dkernel_8x6_ft(index_t kc, const double* a, const double* b, double* c,
                    index_t ldc, double* cr_ref, double* cc_ref) {
  __m256d acc0[kNrF64];
  __m256d acc1[kNrF64];
#pragma GCC unroll 6
  for (int j = 0; j < kNrF64; ++j) {
    acc0[j] = _mm256_setzero_pd();
    acc1[j] = _mm256_setzero_pd();
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m256d a0 = _mm256_load_pd(a);
    const __m256d a1 = _mm256_load_pd(a + 4);
    a += kMrF64;
#pragma GCC unroll 6
    for (int j = 0; j < kNrF64; ++j) {
      const __m256d bv = _mm256_broadcast_sd(b + j);
      acc0[j] = _mm256_fmadd_pd(a0, bv, acc0[j]);
      acc1[j] = _mm256_fmadd_pd(a1, bv, acc1[j]);
    }
    b += kNrF64;
  }
  __m256d rowsum0 = _mm256_setzero_pd();
  __m256d rowsum1 = _mm256_setzero_pd();
#pragma GCC unroll 6
  for (int j = 0; j < kNrF64; ++j) {
    double* cj = c + j * ldc;
    const __m256d c0 = _mm256_add_pd(_mm256_loadu_pd(cj), acc0[j]);
    const __m256d c1 = _mm256_add_pd(_mm256_loadu_pd(cj + 4), acc1[j]);
    _mm256_storeu_pd(cj, c0);
    _mm256_storeu_pd(cj + 4, c1);
    rowsum0 = _mm256_add_pd(rowsum0, c0);
    rowsum1 = _mm256_add_pd(rowsum1, c1);
    double* crj = cr_ref + j * 4;  // 4 lane partials per column (cr_lanes)
    _mm256_storeu_pd(
        crj, _mm256_add_pd(_mm256_loadu_pd(crj), _mm256_add_pd(c0, c1)));
  }
  _mm256_storeu_pd(cc_ref, _mm256_add_pd(_mm256_loadu_pd(cc_ref), rowsum0));
  _mm256_storeu_pd(cc_ref + 4,
                   _mm256_add_pd(_mm256_loadu_pd(cc_ref + 4), rowsum1));
}

// ---------------------------------------------------------------------------
// f32: MR = 16 (two ymm), NR = 6.
// ---------------------------------------------------------------------------

constexpr index_t kMrF32 = 16;
constexpr index_t kNrF32 = 6;

void skernel_16x6_base(index_t kc, const float* a, const float* b, float* c,
                       index_t ldc) {
  __m256 acc0[kNrF32];
  __m256 acc1[kNrF32];
#pragma GCC unroll 6
  for (int j = 0; j < kNrF32; ++j) {
    acc0[j] = _mm256_setzero_ps();
    acc1[j] = _mm256_setzero_ps();
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m256 a0 = _mm256_load_ps(a);
    const __m256 a1 = _mm256_load_ps(a + 8);
    a += kMrF32;
#pragma GCC unroll 6
    for (int j = 0; j < kNrF32; ++j) {
      const __m256 bv = _mm256_broadcast_ss(b + j);
      acc0[j] = _mm256_fmadd_ps(a0, bv, acc0[j]);
      acc1[j] = _mm256_fmadd_ps(a1, bv, acc1[j]);
    }
    b += kNrF32;
  }
#pragma GCC unroll 6
  for (int j = 0; j < kNrF32; ++j) {
    float* cj = c + j * ldc;
    _mm256_storeu_ps(cj, _mm256_add_ps(_mm256_loadu_ps(cj), acc0[j]));
    _mm256_storeu_ps(cj + 8, _mm256_add_ps(_mm256_loadu_ps(cj + 8), acc1[j]));
  }
}

void skernel_16x6_ft(index_t kc, const float* a, const float* b, float* c,
                     index_t ldc, float* cr_ref, float* cc_ref) {
  __m256 acc0[kNrF32];
  __m256 acc1[kNrF32];
#pragma GCC unroll 6
  for (int j = 0; j < kNrF32; ++j) {
    acc0[j] = _mm256_setzero_ps();
    acc1[j] = _mm256_setzero_ps();
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m256 a0 = _mm256_load_ps(a);
    const __m256 a1 = _mm256_load_ps(a + 8);
    a += kMrF32;
#pragma GCC unroll 6
    for (int j = 0; j < kNrF32; ++j) {
      const __m256 bv = _mm256_broadcast_ss(b + j);
      acc0[j] = _mm256_fmadd_ps(a0, bv, acc0[j]);
      acc1[j] = _mm256_fmadd_ps(a1, bv, acc1[j]);
    }
    b += kNrF32;
  }
  __m256 rowsum0 = _mm256_setzero_ps();
  __m256 rowsum1 = _mm256_setzero_ps();
#pragma GCC unroll 6
  for (int j = 0; j < kNrF32; ++j) {
    float* cj = c + j * ldc;
    const __m256 c0 = _mm256_add_ps(_mm256_loadu_ps(cj), acc0[j]);
    const __m256 c1 = _mm256_add_ps(_mm256_loadu_ps(cj + 8), acc1[j]);
    _mm256_storeu_ps(cj, c0);
    _mm256_storeu_ps(cj + 8, c1);
    rowsum0 = _mm256_add_ps(rowsum0, c0);
    rowsum1 = _mm256_add_ps(rowsum1, c1);
    float* crj = cr_ref + j * 8;  // 8 lane partials per column (cr_lanes)
    _mm256_storeu_ps(
        crj, _mm256_add_ps(_mm256_loadu_ps(crj), _mm256_add_ps(c0, c1)));
  }
  _mm256_storeu_ps(cc_ref, _mm256_add_ps(_mm256_loadu_ps(cc_ref), rowsum0));
  _mm256_storeu_ps(cc_ref + 8,
                   _mm256_add_ps(_mm256_loadu_ps(cc_ref + 8), rowsum1));
}

}  // namespace

KernelSet<double> avx2_kernels_f64() {
  return {&dkernel_8x6_base, &dkernel_8x6_ft, kMrF64, kNrF64, 4, Isa::kAvx2, {}};
}

KernelSet<float> avx2_kernels_f32() {
  return {&skernel_16x6_base, &skernel_16x6_ft, kMrF32, kNrF32, 8, Isa::kAvx2, {}};
}

}  // namespace ftgemm
