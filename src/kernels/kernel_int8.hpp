// int8 kernel layer: the first non-float compute path through the stack.
//
// Included from the bottom of kernels/microkernel.hpp (never directly), so
// the KernelSet/PackSet specializations below are visible wherever the
// primary templates are — an implicit instantiation of the primary template
// at <int8_t, int32_t> anywhere would be an ODR trap.
//
// The int8 path breaks the (StorageT, ComputeT) convention of the float
// layer in one fundamental way: packed panels stay 8-bit (that IS the
// bandwidth win), so the generic "panels are ComputeT" pack/kernel
// signatures cannot be reused.  KernelSet<int8_t, int32_t> and
// PackSet<int8_t, int32_t> are therefore full specializations with their
// own member signatures, and the executor (core/driver_i8.hpp) is a
// dedicated implementation of the same plan/execute architecture.
//
// Operand convention (see kernels/int8_types.hpp): A is packed *biased*
// (u8 = s8 + 128) because the AVX-512 VNNI dot instruction `vpdpbusd`
// multiplies unsigned-by-signed; B is packed as plain s8.  All ISAs share
// one packed layout — depth grouped in quads of 4 (the VNNI dot width):
//
//   A~ tile (MR rows):  [kq][MR][4] u8   (row i's quad at kq*MR*4 + i*4)
//   B~ tile (NR cols):  [kq][NR][4] s8   (col j's quad at kq*NR*4 + j*4)
//
// zero-padded in every direction (a zero B pad makes the corresponding A
// pad bytes irrelevant: every padded product is 0).  Shared layout means
// the packers are ISA-independent and FTGEMM_FORCE_ISA switches kernels
// without changing a single packed byte.
//
// The AVX2 kernel emulates the integer dot with zero/sign-extension to i16
// and `pmaddwd` — NOT `pmaddubsw`, whose i16 pair-sum saturates (2 * 255 *
// 128 > 32767) and would silently break the exactness contract.
//
// Checksums: reference row/column sums of the biased product are
// accumulated in int64 by the FT kernels; predicted sums come from int32
// operand checksums (Ar/Bc).  Integer sums are exact and order-independent,
// so — unlike the float kernels — the FT epilogue may reduce the finished
// register tile directly (no lane-partial mirroring needed; cr_lanes = 1).
#pragma once

#include "kernels/int8_types.hpp"

namespace ftgemm {

/// Depth-quad grouping shared by every int8 ISA (the VNNI dot width).
inline constexpr index_t kI8KQuad = 4;

/// Quads covering a depth of klen (the packed depth is kq * 4).
[[nodiscard]] inline index_t i8_kq(index_t klen) {
  return (klen + kI8KQuad - 1) / kI8KQuad;
}

/// Bytes of one packed tile of `tile` rows (A~) or columns (B~) over depth
/// klen, padding included.
[[nodiscard]] inline index_t i8_tile_bytes(index_t klen, index_t tile) {
  return i8_kq(klen) * kI8KQuad * tile;
}

/// Register-tile bounds across the int8 kernel sets (macro-kernel edge
/// scratch; the int8 NR of 16 exceeds the float layer's kMaxNr, hence its
/// own constants).
inline constexpr index_t kI8MaxMr = 16;
inline constexpr index_t kI8MaxNr = 16;

/// Plain micro-kernel: C_tile(i32) += Au8_tile(MR x kc) * Bs8_tile(kc x NR),
/// biased-product domain, exact int32 accumulation (kc <= kI8MaxDepth).
using I8MicroKernel = void (*)(index_t kc, const std::uint8_t* a,
                               const std::int8_t* b, std::int32_t* c,
                               index_t ldc);

/// FT micro-kernel: base update plus exact int64 reference checksums of the
/// *updated* C values — cr_ref[j] += sum_i c(i,j), cc_ref[i] += sum_j
/// c(i,j) over the tile, post-update.  Every element of C is updated once
/// per rank-KC panel, so per-panel references total to exact row/column
/// sums of the current accumulator (the float kernels' convention).
using I8MicroKernelFt = void (*)(index_t kc, const std::uint8_t* a,
                                 const std::int8_t* b, std::int32_t* c,
                                 index_t ldc, std::int64_t* cr_ref,
                                 std::int64_t* cc_ref);

/// Pack/encode family of the int8 path (full specialization — see the file
/// header for why the generic members don't fit).  The reference members
/// are portable scalar implementations in the flag-free
/// kernel_int8_scalar.cpp; pack_int8_avx2.cpp swaps in AVX2 FT checksum
/// passes over the same shared packed layout (bit-identical output), and
/// the layout itself makes every member correct for every kernel ISA.
template <>
struct PackSet<std::int8_t, std::int32_t> {
  /// Pack op(A) rows [m0, m0+mlen) x depth [k0, k0+klen) into MR-tall
  /// biased-u8 quad tiles (zero-padded).  When `arow` is non-null,
  /// additionally accumulates the biased row sums arow[m0+i] += sum_kk
  /// u8(i, kk) — the epilogue's zero-point correction vector.  Callers must
  /// pass arow for exactly one pass over each (row, depth) region.
  void (*pack_a)(const OperandView<std::int8_t>& a, index_t m0, index_t k0,
                 index_t mlen, index_t klen, index_t mr, std::uint8_t* dst,
                 std::int32_t* arow) = nullptr;
  /// pack_a fused with the predicted-Cc update cc[m0+i] += sum_kk
  /// u8(i, kk) * bc[kk] (int64; bc is panel-local, bc[0] = depth k0).
  void (*pack_a_ft)(const OperandView<std::int8_t>& a, index_t m0,
                    index_t k0, index_t mlen, index_t klen, index_t mr,
                    std::uint8_t* dst, std::int32_t* arow,
                    const std::int32_t* bc, std::int64_t* cc) = nullptr;
  /// Pack op(B) depth [k0, k0+klen) x cols [j0, j0+nlen) into NR-wide s8
  /// quad tiles (zero-padded).  When `bcol` is non-null, accumulates the
  /// per-column depth sums bcol[j0+j] += sum_kk s8(kk, j) — the epilogue's
  /// other zero-point correction vector (each column is packed exactly once
  /// per panel, so accumulating across panels yields full-K sums).
  void (*pack_b)(const OperandView<std::int8_t>& b, index_t k0, index_t j0,
                 index_t klen, index_t nlen, index_t nr, std::int8_t* dst,
                 std::int32_t* bcol) = nullptr;
  /// pack_b fused with the predicted-Cr update cr[j0+j] += sum_kk
  /// ar[kk] * s8(kk, j) (int64; ar is panel-local, ar[0] = depth k0).
  void (*pack_b_ft)(const OperandView<std::int8_t>& b, index_t k0,
                    index_t j0, index_t klen, index_t nlen, index_t nr,
                    std::int8_t* dst, std::int32_t* bcol,
                    const std::int32_t* ar, std::int64_t* cr) = nullptr;
  /// Derive the panel checksum Bc from a packed panel: bc[kk] = sum over
  /// all nlen columns of s8(kk, j), for depth rows [kk0, kk0+kklen)
  /// (assigning, not accumulating — mirrors the float reduce_bc contract).
  void (*reduce_bc)(const std::int8_t* b_packed, index_t klen, index_t nlen,
                    index_t nr, index_t kk0, index_t kklen,
                    std::int32_t* bc) = nullptr;
  /// Biased column sums of op(A): ar[kk] += sum_i u8(i, kk) over rows
  /// [i0, i0+ilen), depths [k0, k0+klen) — the predicted-Cr operand
  /// checksum (ar[0] = depth k0; caller zeroes its slice first).
  void (*encode_ar)(const OperandView<std::int8_t>& a, index_t i0,
                    index_t ilen, index_t k0, index_t klen,
                    std::int32_t* ar) = nullptr;
  /// Replay pack_a_ft's fused Cc update from an already-packed (resident)
  /// panel: cc[i] += sum_kk u8(i, kk) * bc[kk].  Padding bytes are zero, so
  /// replaying over the padded tile is exact.
  void (*encode_cc)(const std::uint8_t* packed, index_t mlen, index_t klen,
                    index_t mr, const std::int32_t* bc,
                    std::int64_t* cc) = nullptr;
  Isa isa = Isa::kScalar;
};

/// Kernel set of the int8 path (full specialization; biased u8 x s8 -> i32
/// micro-kernels, int64 FT references, cr_lanes fixed at 1).
template <>
struct KernelSet<std::int8_t, std::int32_t> {
  I8MicroKernel base = nullptr;
  I8MicroKernelFt ft = nullptr;
  index_t mr = 0;
  index_t nr = 0;
  index_t cr_lanes = 1;  ///< always 1: integer sums need no lane mirroring
  Isa isa = Isa::kScalar;
  PackSet<std::int8_t, std::int32_t> pack;
};

// Per-ISA accessors (kernel_int8_scalar.cpp / kernel_int8_avx2.cpp /
// kernel_int8_avx512.cpp).  avx512_kernels_i8() requires the AVX-512 VNNI
// feature at *runtime* (cpu_features().avx512vnni) — get_kernel_set clamps
// to the AVX2 emulation on AVX-512 machines without it, so Isa::kAvx512
// plans stay valid everywhere.
KernelSet<std::int8_t, std::int32_t> scalar_kernels_i8();
KernelSet<std::int8_t, std::int32_t> avx2_kernels_i8();
KernelSet<std::int8_t, std::int32_t> avx512_kernels_i8();
PackSet<std::int8_t, std::int32_t> scalar_pack_i8();
/// scalar_pack_i8 with the FT checksum passes (pack_a_ft / pack_b_ft /
/// encode_ar / reduce_bc) replaced by AVX2 sweeps — identical packed bytes
/// and bit-identical checksums (exact integer sums are order-independent);
/// see pack_int8_avx2.cpp.  Only reachable through the AVX2/AVX-512 kernel
/// sets, so the AVX2 encodings are gated by the same runtime dispatch.
PackSet<std::int8_t, std::int32_t> avx2_pack_i8();

template <>
KernelSet<std::int8_t, std::int32_t> get_kernel_set<std::int8_t,
                                                    std::int32_t>(Isa isa);
template <>
PackSet<std::int8_t, std::int32_t> get_pack_set<std::int8_t, std::int32_t>(
    Isa isa);

/// Macro kernel of the int8 path: sweep the packed tiles of one
/// (mlen x nlen x kc) block, full tiles through the (FT) micro-kernel, edge
/// tiles through a zeroed scratch tile with an exact scalar merge (padding
/// products are zero, so the scratch rows/cols beyond the edge contribute
/// nothing).  `c` is the int32 biased-product accumulator (ldc = its
/// leading dimension); cr_ref/cc_ref are the block's int64 reference
/// checksum slices (FT only, stride 1).
template <bool FT>
inline void run_macro_block_i8(const KernelSet<std::int8_t, std::int32_t>& ks,
                               index_t mlen, index_t nlen, index_t kc,
                               const std::uint8_t* a_packed,
                               const std::int8_t* b_packed, std::int32_t* c,
                               index_t ldc, std::int64_t* cr_ref,
                               std::int64_t* cc_ref) {
  const index_t a_tile = i8_tile_bytes(kc, ks.mr);
  const index_t b_tile = i8_tile_bytes(kc, ks.nr);
  for (index_t jt = 0; jt < nlen; jt += ks.nr) {
    const index_t njj = nlen - jt < ks.nr ? nlen - jt : ks.nr;
    const std::int8_t* bt = b_packed + (jt / ks.nr) * b_tile;
    for (index_t it = 0; it < mlen; it += ks.mr) {
      const index_t mii = mlen - it < ks.mr ? mlen - it : ks.mr;
      const std::uint8_t* at = a_packed + (it / ks.mr) * a_tile;
      std::int32_t* ct = c + it + jt * ldc;
      if (mii == ks.mr && njj == ks.nr) {
        if constexpr (FT) {
          ks.ft(kc, at, bt, ct, ldc, cr_ref + jt, cc_ref + it);
        } else {
          ks.base(kc, at, bt, ct, ldc);
        }
      } else {
        alignas(64) std::int32_t tile[kI8MaxMr * kI8MaxNr];
        for (index_t x = 0; x < ks.mr * ks.nr; ++x) tile[x] = 0;
        ks.base(kc, at, bt, tile, ks.mr);
        for (index_t jj = 0; jj < njj; ++jj) {
          std::int64_t colsum = 0;
          for (index_t ii = 0; ii < mii; ++ii) {
            ct[ii + jj * ldc] += tile[ii + jj * ks.mr];
            if constexpr (FT) {
              const std::int32_t v = ct[ii + jj * ldc];  // updated value
              cc_ref[it + ii] += v;
              colsum += v;
            }
          }
          if constexpr (FT) cr_ref[jt + jj] += colsum;
        }
      }
    }
  }
}

}  // namespace ftgemm
