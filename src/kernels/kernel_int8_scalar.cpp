// Portable int8 kernels + the shared quantize-aware packers.
//
// Compiled WITHOUT SIMD flags on purpose (like pack_scalar.cpp): the
// routines here are the fallback executed on machines without AVX2, so they
// must never contain AVX encodings.  The packers here are the reference
// implementations of the single shared packed byte layout (see
// kernels/kernel_int8.hpp); pack_int8_avx2.cpp accelerates the FT checksum
// passes but delegates every byte movement back here, so switching kernels
// via FTGEMM_FORCE_ISA never changes a packed byte, a checksum, or a
// result: the whole path is exact integer arithmetic, bit-identical across
// ISAs by construction.
//
// This TU also owns the int8 get_kernel_set/get_pack_set dispatch: the
// generic dispatcher in kernel_scalar.cpp routes mixed pairs through the
// ComputeT kernel set, which would be meaningless for int32 (there is no
// int32 float-style kernel set) — hence the explicit specializations.
#include "arch/cpu_features.hpp"
#include "kernels/microkernel.hpp"

namespace ftgemm {

namespace {

constexpr index_t kMrScalarI8 = 4;
constexpr index_t kNrScalarI8 = 4;

// ---------------------------------------------------------------------------
// Micro-kernels (4 x 4, quad-grouped operands, exact int32 accumulation).
// ---------------------------------------------------------------------------

template <bool FT>
void kernel_i8_scalar(index_t kc, const std::uint8_t* a, const std::int8_t* b,
                      std::int32_t* c, index_t ldc, std::int64_t* cr_ref,
                      std::int64_t* cc_ref) {
  const index_t kq = i8_kq(kc);
  std::int32_t acc[kNrScalarI8][kMrScalarI8] = {};
  for (index_t q = 0; q < kq; ++q) {
    const std::uint8_t* aq = a + q * (kMrScalarI8 * kI8KQuad);
    const std::int8_t* bq = b + q * (kNrScalarI8 * kI8KQuad);
    for (index_t j = 0; j < kNrScalarI8; ++j) {
      for (index_t i = 0; i < kMrScalarI8; ++i) {
        std::int32_t dot = 0;
        for (index_t t = 0; t < kI8KQuad; ++t) {
          dot += std::int32_t(aq[i * kI8KQuad + t]) *
                 std::int32_t(bq[j * kI8KQuad + t]);
        }
        acc[j][i] += dot;
      }
    }
  }
  // FT references accumulate the *updated* C values (like the float
  // kernels): every element is updated once per rank-KC panel, so the
  // per-panel references total to exact row/column sums of the current
  // accumulator, directly comparable with the cumulative predictions.
  for (index_t j = 0; j < kNrScalarI8; ++j) {
    std::int64_t colsum = 0;
    for (index_t i = 0; i < kMrScalarI8; ++i) {
      c[i + j * ldc] += acc[j][i];
      if constexpr (FT) {
        const std::int32_t v = c[i + j * ldc];
        cc_ref[i] += v;
        colsum += v;
      }
    }
    if constexpr (FT) cr_ref[j] += colsum;
  }
}

void kernel_i8_scalar_base(index_t kc, const std::uint8_t* a,
                           const std::int8_t* b, std::int32_t* c,
                           index_t ldc) {
  kernel_i8_scalar<false>(kc, a, b, c, ldc, nullptr, nullptr);
}

void kernel_i8_scalar_ft(index_t kc, const std::uint8_t* a,
                         const std::int8_t* b, std::int32_t* c, index_t ldc,
                         std::int64_t* cr_ref, std::int64_t* cc_ref) {
  kernel_i8_scalar<true>(kc, a, b, c, ldc, cr_ref, cc_ref);
}

// ---------------------------------------------------------------------------
// Packers (shared across ISAs; see the TU header).
// ---------------------------------------------------------------------------

// Pack op(A) into MR-tall biased-u8 quad tiles; optional fused arow
// (epilogue row sums) and cc (predicted column checksum, needs bc).
template <bool FT>
void pack_a_i8_impl(const OperandView<std::int8_t>& a, index_t m0, index_t k0,
                    index_t mlen, index_t klen, index_t mr, std::uint8_t* dst,
                    std::int32_t* arow, const std::int32_t* bc,
                    std::int64_t* cc) {
  const index_t kq = i8_kq(klen);
  for (index_t it = 0; it < mlen; it += mr) {
    const index_t rows = mlen - it < mr ? mlen - it : mr;
    std::uint8_t* tile = dst + (it / mr) * (kq * kI8KQuad * mr);
    for (index_t q = 0; q < kq; ++q) {
      std::uint8_t* quad = tile + q * (mr * kI8KQuad);
      for (index_t i = 0; i < mr; ++i) {
        std::int32_t rsum = 0;
        std::int64_t csum = 0;
        for (index_t t = 0; t < kI8KQuad; ++t) {
          const index_t kk = q * kI8KQuad + t;
          std::uint8_t v = 0;
          if (i < rows && kk < klen) {
            v = bias_i8(a.at(m0 + it + i, k0 + kk));
            rsum += std::int32_t(v);
            if constexpr (FT) csum += std::int64_t(v) * std::int64_t(bc[kk]);
          }
          quad[i * kI8KQuad + t] = v;
        }
        if (i < rows) {
          if (arow != nullptr) arow[m0 + it + i] += rsum;
          if constexpr (FT) cc[m0 + it + i] += csum;
        }
      }
    }
  }
}

void pack_a_i8(const OperandView<std::int8_t>& a, index_t m0, index_t k0,
               index_t mlen, index_t klen, index_t mr, std::uint8_t* dst,
               std::int32_t* arow) {
  pack_a_i8_impl<false>(a, m0, k0, mlen, klen, mr, dst, arow, nullptr,
                        nullptr);
}

void pack_a_ft_i8(const OperandView<std::int8_t>& a, index_t m0, index_t k0,
                  index_t mlen, index_t klen, index_t mr, std::uint8_t* dst,
                  std::int32_t* arow, const std::int32_t* bc,
                  std::int64_t* cc) {
  pack_a_i8_impl<true>(a, m0, k0, mlen, klen, mr, dst, arow, bc, cc);
}

// Pack op(B) into NR-wide s8 quad tiles; optional fused bcol (epilogue
// column sums) and cr (predicted row checksum, needs ar).
template <bool FT>
void pack_b_i8_impl(const OperandView<std::int8_t>& b, index_t k0, index_t j0,
                    index_t klen, index_t nlen, index_t nr, std::int8_t* dst,
                    std::int32_t* bcol, const std::int32_t* ar,
                    std::int64_t* cr) {
  const index_t kq = i8_kq(klen);
  for (index_t jt = 0; jt < nlen; jt += nr) {
    const index_t cols = nlen - jt < nr ? nlen - jt : nr;
    std::int8_t* tile = dst + (jt / nr) * (kq * kI8KQuad * nr);
    for (index_t j = 0; j < nr; ++j) {
      std::int32_t bsum = 0;
      std::int64_t rsum = 0;
      for (index_t q = 0; q < kq; ++q) {
        std::int8_t* quad = tile + q * (nr * kI8KQuad);
        for (index_t t = 0; t < kI8KQuad; ++t) {
          const index_t kk = q * kI8KQuad + t;
          std::int8_t v = 0;
          if (j < cols && kk < klen) {
            v = b.at(k0 + kk, j0 + jt + j);
            bsum += std::int32_t(v);
            if constexpr (FT) rsum += std::int64_t(ar[kk]) * std::int64_t(v);
          }
          quad[j * kI8KQuad + t] = v;
        }
      }
      if (j < cols) {
        if (bcol != nullptr) bcol[j0 + jt + j] += bsum;
        if constexpr (FT) cr[j0 + jt + j] += rsum;
      }
    }
  }
}

void pack_b_i8(const OperandView<std::int8_t>& b, index_t k0, index_t j0,
               index_t klen, index_t nlen, index_t nr, std::int8_t* dst,
               std::int32_t* bcol) {
  pack_b_i8_impl<false>(b, k0, j0, klen, nlen, nr, dst, bcol, nullptr,
                        nullptr);
}

void pack_b_ft_i8(const OperandView<std::int8_t>& b, index_t k0, index_t j0,
                  index_t klen, index_t nlen, index_t nr, std::int8_t* dst,
                  std::int32_t* bcol, const std::int32_t* ar,
                  std::int64_t* cr) {
  pack_b_i8_impl<true>(b, k0, j0, klen, nlen, nr, dst, bcol, ar, cr);
}

// Panel checksum Bc from the packed panel (padding columns are zero bytes,
// so summing the full NR width of every tile is exact).
void reduce_bc_i8(const std::int8_t* b_packed, index_t klen, index_t nlen,
                  index_t nr, index_t kk0, index_t kklen, std::int32_t* bc) {
  const index_t kq = i8_kq(klen);
  const index_t tile_bytes = kq * kI8KQuad * nr;
  for (index_t kk = kk0; kk < kk0 + kklen; ++kk) {
    const index_t q = kk / kI8KQuad;
    const index_t t = kk % kI8KQuad;
    std::int32_t sum = 0;
    for (index_t jt = 0; jt < nlen; jt += nr) {
      const std::int8_t* quad =
          b_packed + (jt / nr) * tile_bytes + q * (nr * kI8KQuad);
      for (index_t j = 0; j < nr; ++j) {
        sum += std::int32_t(quad[j * kI8KQuad + t]);
      }
    }
    bc[kk] = sum;
  }
}

// Biased column sums of op(A) straight from the operand (encode phase).
void encode_ar_i8(const OperandView<std::int8_t>& a, index_t i0, index_t ilen,
                  index_t k0, index_t klen, std::int32_t* ar) {
  for (index_t kk = 0; kk < klen; ++kk) {
    std::int32_t sum = 0;
    for (index_t i = 0; i < ilen; ++i) {
      sum += std::int32_t(bias_i8(a.at(i0 + i, k0 + kk)));
    }
    ar[kk] += sum;
  }
}

// Replay of pack_a_ft's fused Cc update from a resident packed panel.
void encode_cc_i8(const std::uint8_t* packed, index_t mlen, index_t klen,
                  index_t mr, const std::int32_t* bc, std::int64_t* cc) {
  const index_t kq = i8_kq(klen);
  const index_t tile_bytes = kq * kI8KQuad * mr;
  for (index_t it = 0; it < mlen; it += mr) {
    const index_t rows = mlen - it < mr ? mlen - it : mr;
    const std::uint8_t* tile = packed + (it / mr) * tile_bytes;
    for (index_t i = 0; i < rows; ++i) {
      std::int64_t csum = 0;
      for (index_t kk = 0; kk < klen; ++kk) {
        const index_t q = kk / kI8KQuad;
        const index_t t = kk % kI8KQuad;
        csum += std::int64_t(tile[q * (mr * kI8KQuad) + i * kI8KQuad + t]) *
                std::int64_t(bc[kk]);
      }
      cc[it + i] += csum;
    }
  }
}

}  // namespace

PackSet<std::int8_t, std::int32_t> scalar_pack_i8() {
  PackSet<std::int8_t, std::int32_t> p;
  p.pack_a = &pack_a_i8;
  p.pack_a_ft = &pack_a_ft_i8;
  p.pack_b = &pack_b_i8;
  p.pack_b_ft = &pack_b_ft_i8;
  p.reduce_bc = &reduce_bc_i8;
  p.encode_ar = &encode_ar_i8;
  p.encode_cc = &encode_cc_i8;
  p.isa = Isa::kScalar;
  return p;
}

KernelSet<std::int8_t, std::int32_t> scalar_kernels_i8() {
  KernelSet<std::int8_t, std::int32_t> ks;
  ks.base = &kernel_i8_scalar_base;
  ks.ft = &kernel_i8_scalar_ft;
  ks.mr = kMrScalarI8;
  ks.nr = kNrScalarI8;
  ks.cr_lanes = 1;
  ks.isa = Isa::kScalar;
  ks.pack = scalar_pack_i8();
  return ks;
}

template <>
PackSet<std::int8_t, std::int32_t> get_pack_set<std::int8_t, std::int32_t>(
    Isa /*isa*/) {
  // One packed layout, one (portable) packer family for every kernel ISA.
  return scalar_pack_i8();
}

template <>
KernelSet<std::int8_t, std::int32_t> get_kernel_set<std::int8_t,
                                                    std::int32_t>(Isa isa) {
  switch (isa) {
    case Isa::kAvx512:
      // avx512_kernels_i8 itself clamps to the AVX2 emulation when the CPU
      // lacks AVX-512 VNNI (vpdpbusd), so an Isa::kAvx512 plan is valid on
      // every AVX-512 machine.
      return avx512_kernels_i8();
    case Isa::kAvx2:
      return avx2_kernels_i8();
    case Isa::kScalar:
      return scalar_kernels_i8();
  }
  return scalar_kernels_i8();
}

}  // namespace ftgemm
