// Macro kernel: sweep an (mlen x nlen) block of C with the micro-kernel.
//
// "A macro kernel updates an MC x NC submatrix of C by iterating over A
// (MR x KC) multiplying B (KC x NR) in micro kernels" (§2.1).  Interior
// tiles go straight to the register kernels; edge tiles are computed into a
// zeroed scratch tile and merged scalar-wise (with checksum accumulation in
// the FT instantiation, so the reference checksums cover every element of C
// exactly once per panel).
#pragma once

#include <algorithm>
#include <cstring>

#include "kernels/microkernel.hpp"

namespace ftgemm {

// kMaxMr / kMaxNr (upper bounds over all kernel sets, sizing the stack
// scratch tile below) live in kernels/microkernel.hpp next to KernelSet.

/// Run the macro kernel over C(0..mlen, 0..nlen) starting at `c`.
///
/// `a_packed`: mlen rows packed in MR panels, depth kc (see pack_a).
/// `b_packed`: nlen cols packed in NR panels, depth kc (see pack_b).
/// With FT=true, `cr_ref` / `cc_ref` (indexed from this block's first
/// column / row) accumulate the reference checksums of the *final* C values;
/// cr_ref is lane-strided (ks.cr_lanes slots per column, summed at
/// verification time).
template <typename T, bool FT, typename S = T>
void run_macro_block(const KernelSet<S, T>& ks, index_t mlen, index_t nlen,
                     index_t kc, const T* a_packed, const T* b_packed, T* c,
                     index_t ldc, T* cr_ref, T* cc_ref) {
  const index_t mr = ks.mr;
  const index_t nr = ks.nr;
  alignas(64) T tile[kMaxMr * kMaxNr];

  for (index_t jt = 0; jt < nlen; jt += nr) {
    const index_t ncols = std::min(nr, nlen - jt);
    const T* b_panel = b_packed + (jt / nr) * (nr * kc);
    for (index_t it = 0; it < mlen; it += mr) {
      const index_t nrows = std::min(mr, mlen - it);
      const T* a_panel = a_packed + (it / mr) * (mr * kc);
      T* c_tile = c + it + jt * ldc;

      if (nrows == mr && ncols == nr) {
        if constexpr (FT) {
          ks.ft(kc, a_panel, b_panel, c_tile, ldc,
                cr_ref + jt * ks.cr_lanes, cc_ref + it);
        } else {
          ks.base(kc, a_panel, b_panel, c_tile, ldc);
        }
        continue;
      }

      // Edge tile: the kernel always computes a full MR x NR update, so run
      // it on a zeroed scratch tile and merge only the valid region.
      std::memset(tile, 0, sizeof(T) * static_cast<std::size_t>(mr * nr));
      ks.base(kc, a_panel, b_panel, tile, mr);
      for (index_t jj = 0; jj < ncols; ++jj) {
        T colsum = T(0);
        for (index_t ii = 0; ii < nrows; ++ii) {
          const T v = c_tile[ii + jj * ldc] + tile[ii + jj * mr];
          c_tile[ii + jj * ldc] = v;
          if constexpr (FT) {
            colsum += v;
            cc_ref[it + ii] += v;
          }
        }
        if constexpr (FT) cr_ref[(jt + jj) * ks.cr_lanes] += colsum;
      }
    }
  }
}

}  // namespace ftgemm
