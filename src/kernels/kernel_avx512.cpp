// AVX-512 micro-kernels (f64 16x8, f32 32x8).
//
// The register tile is held in 16 zmm accumulators; each k step issues two
// packed loads of A and eight broadcast-FMAs.  The FT variants implement the
// paper's register-level checksum fusion: after the k-loop the final C tile
// values pass through the registers exactly once, and both reference
// checksums are accumulated from them before the store — no extra pass over
// C memory is ever made for verification.
//
// This translation unit is compiled with -mavx512f/dq/bw/vl regardless of
// the build host; runtime dispatch (select_isa) guarantees these functions
// are only called on capable CPUs.
#include <immintrin.h>

#include "kernels/microkernel.hpp"

namespace ftgemm {

namespace {

// ---------------------------------------------------------------------------
// f64 kernels, templated over the register-tile height.
//
// WV = zmm vectors per column: MR = 8*WV.  WV=2 (16x8) is the default —
// 16 accumulators + 2 A vectors + 1 broadcast fit the 32 zmm registers with
// headroom; WV=1 (8x8) halves the accumulator count (less latency hiding),
// WV=3 (24x8) uses 24 accumulators + 3 A vectors + broadcast = 28 registers
// (more reuse per B broadcast, tighter register pressure).  The shape is
// runtime-selectable via FTGEMM_KERNEL_MR for the ablation bench.
// ---------------------------------------------------------------------------

constexpr index_t kNrF64 = 8;

template <int WV>
void dkernel_base(index_t kc, const double* a, const double* b, double* c,
                  index_t ldc) {
  __m512d acc[WV][kNrF64];
#pragma GCC unroll 8
  for (int j = 0; j < kNrF64; ++j)
    for (int w = 0; w < WV; ++w) acc[w][j] = _mm512_setzero_pd();
  for (index_t p = 0; p < kc; ++p) {
    __m512d av[WV];
    for (int w = 0; w < WV; ++w) av[w] = _mm512_load_pd(a + 8 * w);
    a += 8 * WV;
#pragma GCC unroll 8
    for (int j = 0; j < kNrF64; ++j) {
      const __m512d bv = _mm512_set1_pd(b[j]);
      for (int w = 0; w < WV; ++w)
        acc[w][j] = _mm512_fmadd_pd(av[w], bv, acc[w][j]);
    }
    b += kNrF64;
  }
#pragma GCC unroll 8
  for (int j = 0; j < kNrF64; ++j) {
    double* cj = c + j * ldc;
    for (int w = 0; w < WV; ++w) {
      _mm512_storeu_pd(cj + 8 * w, _mm512_add_pd(_mm512_loadu_pd(cj + 8 * w),
                                                 acc[w][j]));
    }
  }
}

template <int WV>
void dkernel_ft(index_t kc, const double* a, const double* b, double* c,
                index_t ldc, double* cr_ref, double* cc_ref) {
  __m512d acc[WV][kNrF64];
#pragma GCC unroll 8
  for (int j = 0; j < kNrF64; ++j)
    for (int w = 0; w < WV; ++w) acc[w][j] = _mm512_setzero_pd();
  for (index_t p = 0; p < kc; ++p) {
    __m512d av[WV];
    for (int w = 0; w < WV; ++w) av[w] = _mm512_load_pd(a + 8 * w);
    a += 8 * WV;
#pragma GCC unroll 8
    for (int j = 0; j < kNrF64; ++j) {
      const __m512d bv = _mm512_set1_pd(b[j]);
      for (int w = 0; w < WV; ++w)
        acc[w][j] = _mm512_fmadd_pd(av[w], bv, acc[w][j]);
    }
    b += kNrF64;
  }
  __m512d rowsum[WV];
  for (int w = 0; w < WV; ++w) rowsum[w] = _mm512_setzero_pd();
#pragma GCC unroll 8
  for (int j = 0; j < kNrF64; ++j) {
    double* cj = c + j * ldc;
    __m512d colsum = _mm512_setzero_pd();
    for (int w = 0; w < WV; ++w) {
      const __m512d cv =
          _mm512_add_pd(_mm512_loadu_pd(cj + 8 * w), acc[w][j]);
      _mm512_storeu_pd(cj + 8 * w, cv);
      rowsum[w] = _mm512_add_pd(rowsum[w], cv);
      colsum = _mm512_add_pd(colsum, cv);
    }
    double* crj = cr_ref + j * 8;  // 8 lane partials per column (cr_lanes)
    _mm512_storeu_pd(crj, _mm512_add_pd(_mm512_loadu_pd(crj), colsum));
  }
  for (int w = 0; w < WV; ++w) {
    _mm512_storeu_pd(cc_ref + 8 * w,
                     _mm512_add_pd(_mm512_loadu_pd(cc_ref + 8 * w),
                                   rowsum[w]));
  }
}

// ---------------------------------------------------------------------------
// f32: MR = 32 (two zmm), NR = 8.
// ---------------------------------------------------------------------------

constexpr index_t kMrF32 = 32;
constexpr index_t kNrF32 = 8;

void skernel_32x8_base(index_t kc, const float* a, const float* b, float* c,
                       index_t ldc) {
  __m512 acc0[kNrF32];
  __m512 acc1[kNrF32];
#pragma GCC unroll 8
  for (int j = 0; j < kNrF32; ++j) {
    acc0[j] = _mm512_setzero_ps();
    acc1[j] = _mm512_setzero_ps();
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m512 a0 = _mm512_load_ps(a);
    const __m512 a1 = _mm512_load_ps(a + 16);
    a += kMrF32;
#pragma GCC unroll 8
    for (int j = 0; j < kNrF32; ++j) {
      const __m512 bv = _mm512_set1_ps(b[j]);
      acc0[j] = _mm512_fmadd_ps(a0, bv, acc0[j]);
      acc1[j] = _mm512_fmadd_ps(a1, bv, acc1[j]);
    }
    b += kNrF32;
  }
#pragma GCC unroll 8
  for (int j = 0; j < kNrF32; ++j) {
    float* cj = c + j * ldc;
    _mm512_storeu_ps(cj, _mm512_add_ps(_mm512_loadu_ps(cj), acc0[j]));
    _mm512_storeu_ps(cj + 16,
                     _mm512_add_ps(_mm512_loadu_ps(cj + 16), acc1[j]));
  }
}

void skernel_32x8_ft(index_t kc, const float* a, const float* b, float* c,
                     index_t ldc, float* cr_ref, float* cc_ref) {
  __m512 acc0[kNrF32];
  __m512 acc1[kNrF32];
#pragma GCC unroll 8
  for (int j = 0; j < kNrF32; ++j) {
    acc0[j] = _mm512_setzero_ps();
    acc1[j] = _mm512_setzero_ps();
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m512 a0 = _mm512_load_ps(a);
    const __m512 a1 = _mm512_load_ps(a + 16);
    a += kMrF32;
#pragma GCC unroll 8
    for (int j = 0; j < kNrF32; ++j) {
      const __m512 bv = _mm512_set1_ps(b[j]);
      acc0[j] = _mm512_fmadd_ps(a0, bv, acc0[j]);
      acc1[j] = _mm512_fmadd_ps(a1, bv, acc1[j]);
    }
    b += kNrF32;
  }
  __m512 rowsum0 = _mm512_setzero_ps();
  __m512 rowsum1 = _mm512_setzero_ps();
#pragma GCC unroll 8
  for (int j = 0; j < kNrF32; ++j) {
    float* cj = c + j * ldc;
    const __m512 c0 = _mm512_add_ps(_mm512_loadu_ps(cj), acc0[j]);
    const __m512 c1 = _mm512_add_ps(_mm512_loadu_ps(cj + 16), acc1[j]);
    _mm512_storeu_ps(cj, c0);
    _mm512_storeu_ps(cj + 16, c1);
    rowsum0 = _mm512_add_ps(rowsum0, c0);
    rowsum1 = _mm512_add_ps(rowsum1, c1);
    float* crj = cr_ref + j * 16;  // 16 lane partials per column (cr_lanes)
    _mm512_storeu_ps(
        crj, _mm512_add_ps(_mm512_loadu_ps(crj), _mm512_add_ps(c0, c1)));
  }
  _mm512_storeu_ps(cc_ref, _mm512_add_ps(_mm512_loadu_ps(cc_ref), rowsum0));
  _mm512_storeu_ps(cc_ref + 16,
                   _mm512_add_ps(_mm512_loadu_ps(cc_ref + 16), rowsum1));
}

}  // namespace

KernelSet<double> avx512_kernels_f64() {
  return avx512_kernels_f64_mr(16);
}

KernelSet<double> avx512_kernels_f64_mr(index_t mr) {
  switch (mr) {
    case 8:
      return {&dkernel_base<1>, &dkernel_ft<1>, 8, kNrF64, 8, Isa::kAvx512, {}};
    case 24:
      return {&dkernel_base<3>, &dkernel_ft<3>, 24, kNrF64, 8, Isa::kAvx512, {}};
    case 16:
    default:
      return {&dkernel_base<2>, &dkernel_ft<2>, 16, kNrF64, 8, Isa::kAvx512, {}};
  }
}

KernelSet<float> avx512_kernels_f32() {
  return {&skernel_32x8_base, &skernel_32x8_ft, kMrF32, kNrF32, 16, Isa::kAvx512, {}};
}

}  // namespace ftgemm
