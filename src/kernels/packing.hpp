// Packing routines: copy operand panels into contiguous, zero-padded,
// register-tile-ordered buffers — plus the checksum-fused variants that are
// the heart of the paper's contribution (§2.2).
//
// Plain packing is what every high-performance GEMM does.  The FT variants
// reuse every loaded element for checksum arithmetic *while it is hot*:
//
//   pack_b_ft:  each B element is used three times per load —
//                 (1) stored into the packed panel B~,
//                 (2) accumulated into the panel column checksum Bc = B_p·e,
//                 (3) multiplied with Ar to update the predicted row
//                     checksum of C:  Cr += Ar_p · B_p.
//
//   pack_a_ft:  each A element is used twice per load —
//                 (1) scaled by alpha and stored into A~,
//                 (2) multiplied with Bc to update the predicted column
//                     checksum of C:  Cc += (alpha·A_p) · Bc_p.
//
// This converts the O(n^2) checksum encodings from separate memory passes
// (the ~15% overhead of classic ABFT at AVX-512 speeds) into pure extra
// arithmetic on data already in registers (~3% overhead).
//
// The templates below are the *portable scalar* implementations: the
// transpose flag is resolved once into row/column strides (OperandView
// stride accessors), so even non-SIMD builds run branch-free inner loops.
// Hot-path callers go through the ISA-dispatched PackSet instead
// (kernels/microkernel.hpp; AVX2/AVX-512 implementations in
// pack_avx2.cpp / pack_avx512.cpp) — these templates stay as the fallback,
// the ragged-edge path, and the test oracle the SIMD panels are asserted
// bit-identical against.
#pragma once

#include <algorithm>

#include "kernels/microkernel.hpp"

namespace ftgemm {

/// Width of the fixed-size lane-accumulator blocks in the fused panel
/// reductions below.  Any nr is handled (wider tiles sweep in chunks /
/// wrap modulo the block) — but every shipped kernel tile fits one block,
/// which keeps the accumulators register-resident.
inline constexpr index_t kPackAccLanes = 16;
static_assert(kPackAccLanes >= kMaxNr,
              "panel accumulator block must cover the widest kernel tile");

/// Pack rows [m0, m0+mlen) x cols [k0, k0+klen) of the effective A into
/// MR-tall panels, scaled by alpha and zero-padded to a multiple of MR.
/// Panel layout: panel q (rows q*MR..) is klen consecutive MR-columns.
///
/// Generalized over (StorageT, ComputeT): elements are read as S, widened
/// once via C(...) — the identity for the classic S == C paths, so those
/// remain bit-for-bit the pre-split code — and all arithmetic and stores
/// are in C.
template <typename S, typename C = S>
void pack_a(const OperandView<S>& a, index_t m0, index_t k0, index_t mlen,
            index_t klen, index_t mr, C alpha, C* __restrict__ dst) {
  const index_t rs = a.row_stride(), cs = a.col_stride();
  for (index_t ip = 0; ip < mlen; ip += mr) {
    const index_t rows = std::min(mr, mlen - ip);
    const S* __restrict__ base = a.ptr(m0 + ip, k0);
    for (index_t kk = 0; kk < klen; ++kk) {
      C* __restrict__ col = dst + kk * mr;
      const S* __restrict__ src = base + kk * cs;
      for (index_t ii = 0; ii < rows; ++ii) col[ii] = alpha * C(src[ii * rs]);
      for (index_t ii = rows; ii < mr; ++ii) col[ii] = C(0);
    }
    dst += mr * klen;
  }
}

/// pack_a + fused predicted-column-checksum update:
///   cc[ii] += sum_kk (alpha * A(m0+ip+ii, k0+kk)) * bc[kk]
/// where `bc` is the (already reduced) column checksum of the current
/// B panel and `cc` points at the checksum entries for row m0.
template <typename S, typename C = S>
void pack_a_ft(const OperandView<S>& a, index_t m0, index_t k0, index_t mlen,
               index_t klen, index_t mr, C alpha, C* __restrict__ dst,
               const C* __restrict__ bc, C* __restrict__ cc) {
  const index_t rs = a.row_stride(), cs = a.col_stride();
  for (index_t ip = 0; ip < mlen; ip += mr) {
    const index_t rows = std::min(mr, mlen - ip);
    const S* __restrict__ base = a.ptr(m0 + ip, k0);
    for (index_t kk = 0; kk < klen; ++kk) {
      C* __restrict__ col = dst + kk * mr;
      const S* __restrict__ src = base + kk * cs;
      const C bcv = bc[kk];
      C* __restrict__ cc_rows = cc + ip;
      for (index_t ii = 0; ii < rows; ++ii) {
        const C v = alpha * C(src[ii * rs]);
        col[ii] = v;
        cc_rows[ii] += v * bcv;
      }
      for (index_t ii = rows; ii < mr; ++ii) col[ii] = C(0);
    }
    dst += mr * klen;
  }
}

/// Alpha-free permutation pack of an A block into MR-tile panel layout, in
/// StorageT (no widening, no scaling) — the resident-operand cache's
/// at-rest format for narrow weights.  Pure data movement: the only values
/// written are operand bits and S(0) padding, so integrity sums over the
/// raw panel are stable across alpha.
template <typename S>
void pack_a_raw(const OperandView<S>& a, index_t m0, index_t k0, index_t mlen,
                index_t klen, index_t mr, S* __restrict__ dst) {
  const index_t rs = a.row_stride(), cs = a.col_stride();
  for (index_t ip = 0; ip < mlen; ip += mr) {
    const index_t rows = std::min(mr, mlen - ip);
    const S* __restrict__ base = a.ptr(m0 + ip, k0);
    for (index_t kk = 0; kk < klen; ++kk) {
      S* __restrict__ col = dst + kk * mr;
      const S* __restrict__ src = base + kk * cs;
      for (index_t ii = 0; ii < rows; ++ii) col[ii] = src[ii * rs];
      for (index_t ii = rows; ii < mr; ++ii) col[ii] = S(0);
    }
    dst += mr * klen;
  }
}

/// Widen + alpha-scale a raw StorageT panel (from pack_a_raw) into the
/// ComputeT panel the kernels consume: the resident-cache hit path.  Valid
/// rows produce exactly `alpha * C(s)` — the same single widen + single
/// multiply pack_a applies — and padding rows are written as an explicit
/// C(0), NOT alpha * 0 (a negative alpha would turn that into -0.0 and
/// break bit-identity with the cold pack).
template <typename S, typename C>
void widen_a_panel(const S* __restrict__ raw, index_t mlen, index_t klen,
                   index_t mr, C alpha, C* __restrict__ dst) {
  for (index_t ip = 0; ip < mlen; ip += mr) {
    const index_t rows = std::min(mr, mlen - ip);
    for (index_t kk = 0; kk < klen; ++kk) {
      const S* __restrict__ col = raw + kk * mr;
      C* __restrict__ out = dst + kk * mr;
      for (index_t ii = 0; ii < rows; ++ii) out[ii] = alpha * C(col[ii]);
      for (index_t ii = rows; ii < mr; ++ii) out[ii] = C(0);
    }
    raw += mr * klen;
    dst += mr * klen;
  }
}

/// Pack rows [k0, k0+klen) x cols [j0, j0+nlen) of the effective B into
/// NR-wide panels, zero-padded to a multiple of NR.
///
/// For NoTrans the reads walk NR parallel column streams (unit stride along
/// k, prefetch-friendly) and the stores are contiguous; for Trans the
/// effective row itself is contiguous.
template <typename S, typename C = S>
void pack_b(const OperandView<S>& b, index_t k0, index_t j0, index_t klen,
            index_t nlen, index_t nr, C* __restrict__ dst) {
  const index_t rs = b.row_stride(), cs = b.col_stride();
  for (index_t jp = 0; jp < nlen; jp += nr) {
    const index_t cols = std::min(nr, nlen - jp);
    const S* __restrict__ base = b.ptr(k0, j0 + jp);
    for (index_t kk = 0; kk < klen; ++kk) {
      C* __restrict__ row = dst + kk * nr;
      const S* __restrict__ src = base + kk * rs;
      for (index_t jj = 0; jj < cols; ++jj) row[jj] = C(src[jj * cs]);
      for (index_t jj = cols; jj < nr; ++jj) row[jj] = C(0);
    }
    dst += nr * klen;
  }
}

/// pack_b + the fused predicted-row-checksum update
///   cr[jp+jj] += sum_kk ar[kk] * B(k0+kk, j0+jp+jj),
/// i.e. Cr += Ar_p · B_p ("each B element loaded from main memory is
/// re-used", §2.3).  `ar` points at the alpha-scaled A row-checksum entries
/// for depth k0; `cr` points at the checksum entries for column j0.
///
/// The panel checksum Bc = B_p·e is *not* accumulated here: the packed panel
/// is L2/L3-resident by construction, so the driver derives Bc from B~
/// during the cross-thread reduction stage at cache speed (see
/// reduce_bc_from_panel), keeping this inner loop at two streams and fully
/// vectorizable.
template <typename S, typename C = S>
void pack_b_ft(const OperandView<S>& b, index_t k0, index_t j0, index_t klen,
               index_t nlen, index_t nr, C* __restrict__ dst,
               const C* __restrict__ ar, C* __restrict__ cr) {
  const index_t rs = b.row_stride(), cs = b.col_stride();
  for (index_t jp = 0; jp < nlen; jp += nr) {
    const index_t cols = std::min(nr, nlen - jp);
    const S* __restrict__ base = b.ptr(k0, j0 + jp);
    // 1) Pack this NR-wide sub-panel (identical to pack_b).
    for (index_t kk = 0; kk < klen; ++kk) {
      C* __restrict__ row = dst + kk * nr;
      const S* __restrict__ src = base + kk * rs;
      for (index_t jj = 0; jj < cols; ++jj) row[jj] = C(src[jj * cs]);
      for (index_t jj = cols; jj < nr; ++jj) row[jj] = C(0);
    }
    // 2) Cr += Arᵀ·(sub-panel) while the 16 KiB sub-panel is L1-hot: one
    // NR-wide FMA per k step, contiguous loads, vector accumulators.  The
    // zero padding contributes nothing, so the accumulate runs full NR wide.
    // Tiles wider than the accumulator block sweep it in chunks (regression:
    // a single fixed-size block indexed by jj < nr overran the stack for
    // nr > kPackAccLanes).
    C* __restrict__ cr_cols = cr + jp;
    for (index_t jb = 0; jb < nr; jb += kPackAccLanes) {
      const index_t w = std::min(kPackAccLanes, nr - jb);
      C acc[kPackAccLanes] = {};
      for (index_t kk = 0; kk < klen; ++kk) {
        const C* __restrict__ row = dst + kk * nr + jb;
        const C arv = ar[kk];
        for (index_t jj = 0; jj < w; ++jj) acc[jj] += arv * row[jj];
      }
      const index_t jhi = std::min(cols, jb + w);
      for (index_t jj = jb; jj < jhi; ++jj) cr_cols[jj] += acc[jj - jb];
    }
    dst += nr * klen;
  }
}

/// Replay pack_a_ft's fused Cc update from an already-packed panel (the
/// resident-operand cache hit path, see core/operand_cache.hpp):
///   cc[ip + ii] += sum_kk panel_q(ii, kk) * bc[kk]
/// Same loop nest and summation order as pack_a_ft — the packed value IS the
/// alpha-scaled element pack_a_ft stored, so the accumulated Cc is
/// bit-identical to what a cold pack_a_ft over the same (mlen, klen) slab
/// would have produced.  The zero padding of a ragged tile contributes
/// nothing and is skipped exactly like pack_a_ft skips it.
template <typename T>
void encode_cc_from_panel(const T* __restrict__ packed, bool /*trans*/,
                          index_t mlen, index_t klen, index_t mr,
                          const T* __restrict__ bc, T* __restrict__ cc) {
  for (index_t ip = 0; ip < mlen; ip += mr) {
    const index_t rows = std::min(mr, mlen - ip);
    for (index_t kk = 0; kk < klen; ++kk) {
      const T* __restrict__ col = packed + kk * mr;
      const T bcv = bc[kk];
      T* __restrict__ cc_rows = cc + ip;
      for (index_t ii = 0; ii < rows; ++ii) cc_rows[ii] += col[ii] * bcv;
    }
    packed += mr * klen;
  }
}

/// Derive the panel column checksum Bc[kk] = sum_j B_p(kk, j) for
/// kk in [kk0, kk0+kklen) from the packed (zero-padded) panel itself, and
/// fold the running amax of |B| (needed by the tolerance model) into the
/// same cache-speed sweep.  `b_packed` covers `nlen` columns in NR-wide
/// sub-panels of depth `klen`.  Returns max(amax_in, amax of the slice).
template <typename T>
double reduce_bc_from_panel(const T* __restrict__ b_packed, index_t klen,
                            index_t nlen, index_t nr, index_t kk0,
                            index_t kklen, T* __restrict__ bc,
                            double amax_in) {
  const index_t panels = (nlen + nr - 1) / nr;
  // amax lanes wrap modulo the block so any nr is in bounds (regression:
  // indexing by jj < nr overran the stack for nr > kPackAccLanes); max is
  // order-independent, so wrapping does not change the result.
  T amax_lane[kPackAccLanes] = {};
  for (index_t kk = kk0; kk < kk0 + kklen; ++kk) bc[kk] = T(0);
  for (index_t q = 0; q < panels; ++q) {
    const T* __restrict__ panel = b_packed + q * (nr * klen);
    for (index_t kk = kk0; kk < kk0 + kklen; ++kk) {
      const T* __restrict__ row = panel + kk * nr;
      T sum = T(0);
      for (index_t jj = 0; jj < nr; ++jj) {
        const T v = row[jj];
        const T x = std::abs(v);
        sum += v;
        T& lane = amax_lane[jj % kPackAccLanes];
        lane = lane > x ? lane : x;
      }
      bc[kk] += sum;
    }
  }
  double amax = amax_in;
  const index_t lanes = std::min(nr, kPackAccLanes);
  for (index_t jj = 0; jj < lanes; ++jj)
    amax = std::max(amax, double(amax_lane[jj]));
  return amax;
}

}  // namespace ftgemm
