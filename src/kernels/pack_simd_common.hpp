// Shared implementation of the SIMD packing & checksum engine.
//
// Included ONLY by the ISA-specific translation units (pack_avx2.cpp,
// pack_avx512.cpp), each compiled with its own -m flags.  Everything here
// lives in an anonymous namespace ON PURPOSE: every TU must carry its own
// codegen for these routines (the same source compiled under -mavx512*
// may contain AVX-512 encodings), so nothing in this header may have
// external linkage — a COMDAT-merged copy could silently hand AVX-512 code
// to the AVX2 dispatch path and fault on narrower machines.  For the same
// reason the SIMD TUs never instantiate the scalar pack templates
// themselves; ragged edges reach the portable code through the
// scalar_pack_*() function pointers (compiled flag-free in pack_scalar.cpp).
//
// Layout of the engine (per element type):
//   - NoTrans operands stream with full-width unit-stride vectors
//     (traits-parameterized: 256-bit in pack_avx2.cpp, 512-bit in
//     pack_avx512.cpp), with software prefetch of the upcoming columns of
//     the next panel.
//   - Trans operands go through 4x4 (f64) / 8x8 or 4x4 (f32) register-tile
//     transposes — 256-bit ops shared by both TUs; transposes are
//     shuffle-port bound, so wider vectors buy little there.
//   - The fused checksum updates (Cc += alpha*A·Bc, Cr += Ar·B~, Bc = B~·e)
//     run as multi-accumulator FMA lanes carried across the k-loop and
//     reduced once per panel; amax tracking folds into the same sweeps as
//     abs-masked vector max.
//
// Contract: packed panels are BIT-IDENTICAL to the scalar templates in
// kernels/packing.hpp (same per-element arithmetic).  Checksum sums are
// reassociated into vector lanes, so they differ from the scalar order by
// rounding only — within the ToleranceModel bound (see docs/DESIGN.md,
// "SIMD packing & checksum engine"; asserted over a shape/trans sweep in
// tests/test_packing.cpp).
#pragma once

#include <immintrin.h>

#include <algorithm>

#include "kernels/packing.hpp"

namespace ftgemm {
namespace {

/// Most vectors a single MR/NR stripe may span; wider tiles fall back to
/// the scalar path (no shipped kernel tile comes close).
constexpr index_t kMaxGroups = 8;

/// Prefetch distance (in panel columns/rows) for the streaming paths.
constexpr index_t kPfDist = 8;

inline void prefetch_t0(const void* p) {
  _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
}

/// Scalar fallback set, reached through function pointers so this TU never
/// instantiates the portable templates under SIMD flags.
template <typename T>
const PackSet<T>& scalar_pack() {
  static const PackSet<T> set = [] {
    if constexpr (sizeof(T) == 8) return scalar_pack_f64();
    else return scalar_pack_f32();
  }();
  return set;
}

// ---------------------------------------------------------------------------
// Register-tile transposes (256-bit, shared by both TUs).
// ---------------------------------------------------------------------------

/// In-place 4x4 f64 transpose: r[k] becomes lane-vector k of the tile.
inline void transpose4x4_pd(__m256d r[4]) {
  const __m256d t0 = _mm256_unpacklo_pd(r[0], r[1]);
  const __m256d t1 = _mm256_unpackhi_pd(r[0], r[1]);
  const __m256d t2 = _mm256_unpacklo_pd(r[2], r[3]);
  const __m256d t3 = _mm256_unpackhi_pd(r[2], r[3]);
  r[0] = _mm256_permute2f128_pd(t0, t2, 0x20);
  r[1] = _mm256_permute2f128_pd(t1, t3, 0x20);
  r[2] = _mm256_permute2f128_pd(t0, t2, 0x31);
  r[3] = _mm256_permute2f128_pd(t1, t3, 0x31);
}

/// In-place 8x8 f32 transpose.
inline void transpose8x8_ps(__m256 r[8]) {
  const __m256 t0 = _mm256_unpacklo_ps(r[0], r[1]);
  const __m256 t1 = _mm256_unpackhi_ps(r[0], r[1]);
  const __m256 t2 = _mm256_unpacklo_ps(r[2], r[3]);
  const __m256 t3 = _mm256_unpackhi_ps(r[2], r[3]);
  const __m256 t4 = _mm256_unpacklo_ps(r[4], r[5]);
  const __m256 t5 = _mm256_unpackhi_ps(r[4], r[5]);
  const __m256 t6 = _mm256_unpacklo_ps(r[6], r[7]);
  const __m256 t7 = _mm256_unpackhi_ps(r[6], r[7]);
  const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  r[0] = _mm256_permute2f128_ps(u0, u4, 0x20);
  r[1] = _mm256_permute2f128_ps(u1, u5, 0x20);
  r[2] = _mm256_permute2f128_ps(u2, u6, 0x20);
  r[3] = _mm256_permute2f128_ps(u3, u7, 0x20);
  r[4] = _mm256_permute2f128_ps(u0, u4, 0x31);
  r[5] = _mm256_permute2f128_ps(u1, u5, 0x31);
  r[6] = _mm256_permute2f128_ps(u2, u6, 0x31);
  r[7] = _mm256_permute2f128_ps(u3, u7, 0x31);
}

// ---------------------------------------------------------------------------
// Trans-specialized pack_a panel (register-tile transpose, full panel:
// rows == mr).  `base` addresses effective element (row0, k0); storage rows
// are contiguous along kk with stride `ld` between rows.  With FT, cc
// (length mr, panel-local) accumulates alpha*A·bc.
// ---------------------------------------------------------------------------

// The k-blocks are OUTER and the row-blocks inner so every MR-tall packed
// column is written completely while its cache lines are L1-hot (row-block
// outer would revisit each line a full panel-sweep later, paying the RFO
// twice).  The per-row-block Cc accumulators persist across the k loop.

template <bool FT>
void pack_a_panel_trans(const double* base, index_t ld, index_t klen,
                        index_t mr, double alpha, double* __restrict__ dst,
                        const double* __restrict__ bc,
                        double* __restrict__ cc) {
  const __m256d av = _mm256_set1_pd(alpha);
  const index_t groups = mr / 4;
  __m256d acc[kMaxGroups];
  if constexpr (FT) {
    for (index_t g = 0; g < groups; ++g) acc[g] = _mm256_setzero_pd();
  }
  index_t kk = 0;
  for (; kk + 4 <= klen; kk += 4) {
    for (index_t g = 0; g < groups; ++g) {
      const double* row = base + 4 * g * ld + kk;
      __m256d t[4] = {_mm256_loadu_pd(row), _mm256_loadu_pd(row + ld),
                      _mm256_loadu_pd(row + 2 * ld),
                      _mm256_loadu_pd(row + 3 * ld)};
      transpose4x4_pd(t);
      for (int q = 0; q < 4; ++q) {
        const __m256d v = _mm256_mul_pd(av, t[q]);
        _mm256_storeu_pd(dst + (kk + q) * mr + 4 * g, v);
        if constexpr (FT)
          acc[g] = _mm256_fmadd_pd(v, _mm256_set1_pd(bc[kk + q]), acc[g]);
      }
    }
  }
  for (; kk < klen; ++kk) {
    double* col = dst + kk * mr;
    if constexpr (FT) {
      const double bcv = bc[kk];
      for (index_t ii = 0; ii < mr; ++ii) {
        const double v = alpha * base[ii * ld + kk];
        col[ii] = v;
        cc[ii] += v * bcv;
      }
    } else {
      for (index_t ii = 0; ii < mr; ++ii) col[ii] = alpha * base[ii * ld + kk];
    }
  }
  if constexpr (FT) {
    for (index_t g = 0; g < groups; ++g) {
      _mm256_storeu_pd(cc + 4 * g,
                       _mm256_add_pd(_mm256_loadu_pd(cc + 4 * g), acc[g]));
    }
  }
}

template <bool FT>
void pack_a_panel_trans(const float* base, index_t ld, index_t klen,
                        index_t mr, float alpha, float* __restrict__ dst,
                        const float* __restrict__ bc, float* __restrict__ cc) {
  const __m256 av = _mm256_set1_ps(alpha);
  const index_t groups = mr / 8;
  __m256 acc[kMaxGroups];
  if constexpr (FT) {
    for (index_t g = 0; g < groups; ++g) acc[g] = _mm256_setzero_ps();
  }
  index_t kk = 0;
  for (; kk + 8 <= klen; kk += 8) {
    for (index_t g = 0; g < groups; ++g) {
      const float* row = base + 8 * g * ld + kk;
      __m256 t[8];
      for (int q = 0; q < 8; ++q) t[q] = _mm256_loadu_ps(row + q * ld);
      transpose8x8_ps(t);
      for (int q = 0; q < 8; ++q) {
        const __m256 v = _mm256_mul_ps(av, t[q]);
        _mm256_storeu_ps(dst + (kk + q) * mr + 8 * g, v);
        if constexpr (FT)
          acc[g] = _mm256_fmadd_ps(v, _mm256_set1_ps(bc[kk + q]), acc[g]);
      }
    }
  }
  for (; kk < klen; ++kk) {
    float* col = dst + kk * mr;
    if constexpr (FT) {
      const float bcv = bc[kk];
      for (index_t ii = 0; ii < mr; ++ii) {
        const float v = alpha * base[ii * ld + kk];
        col[ii] = v;
        cc[ii] += v * bcv;
      }
    } else {
      for (index_t ii = 0; ii < mr; ++ii) col[ii] = alpha * base[ii * ld + kk];
    }
  }
  if constexpr (FT) {
    for (index_t g = 0; g < groups; ++g) {
      _mm256_storeu_ps(cc + 8 * g,
                       _mm256_add_ps(_mm256_loadu_ps(cc + 8 * g), acc[g]));
    }
  }
}

// ---------------------------------------------------------------------------
// NoTrans pack_b panel (register-tile transpose; the effective column is
// unit-stride along k, the packed row wants NR consecutive columns).
// `base` addresses effective element (k0, col0); storage columns are
// contiguous along kk with stride `ld` between columns.  Full panel:
// cols == nr.
// ---------------------------------------------------------------------------

// Like the Trans pack_a path: k-blocks OUTER, column-blocks inner, so every
// NR-wide packed row is completed while L1-hot.  With FT the predicted-Cr
// FMA (cr[jj] += sum_kk ar[kk] * B~(kk, jj)) fuses directly into the pack
// loop — the SIMD engine does not re-sweep the packed panel in a second
// stage (the scalar oracle does; the sums are reassociated either way, and
// tests hold both within the tolerance contract).  Full panel: cols == nr.

template <bool FT>
void pack_b_panel_notrans(const double* base, index_t ld, index_t klen,
                          index_t nr, double* __restrict__ dst,
                          const double* __restrict__ ar,
                          double* __restrict__ cr) {
  const index_t jblocks = nr / 4;
  const index_t jtail = jblocks * 4;
  __m256d acc[kMaxGroups];
  if constexpr (FT) {
    for (index_t g = 0; g < jblocks; ++g) acc[g] = _mm256_setzero_pd();
  }
  index_t kk = 0;
  for (; kk + 4 <= klen; kk += 4) {
    for (index_t g = 0; g < jblocks; ++g) {
      const double* col = base + 4 * g * ld + kk;
      if (kk % 8 == 0) {
        prefetch_t0(col + 4 * kPfDist);
        prefetch_t0(col + ld + 4 * kPfDist);
        prefetch_t0(col + 2 * ld + 4 * kPfDist);
        prefetch_t0(col + 3 * ld + 4 * kPfDist);
      }
      __m256d t[4] = {_mm256_loadu_pd(col), _mm256_loadu_pd(col + ld),
                      _mm256_loadu_pd(col + 2 * ld),
                      _mm256_loadu_pd(col + 3 * ld)};
      transpose4x4_pd(t);
      for (int q = 0; q < 4; ++q) {
        _mm256_storeu_pd(dst + (kk + q) * nr + 4 * g, t[q]);
        if constexpr (FT)
          acc[g] = _mm256_fmadd_pd(t[q], _mm256_set1_pd(ar[kk + q]), acc[g]);
      }
    }
    for (index_t jj = jtail; jj < nr; ++jj) {  // narrow tail columns
      const double* cj = base + jj * ld;
      for (int q = 0; q < 4; ++q) {
        const double v = cj[kk + q];
        dst[(kk + q) * nr + jj] = v;
        if constexpr (FT) cr[jj] += ar[kk + q] * v;
      }
    }
  }
  for (; kk < klen; ++kk) {
    double* row = dst + kk * nr;
    if constexpr (FT) {
      const double arv = ar[kk];
      for (index_t jj = 0; jj < nr; ++jj) {
        const double v = base[jj * ld + kk];
        row[jj] = v;
        cr[jj] += arv * v;
      }
    } else {
      for (index_t jj = 0; jj < nr; ++jj) row[jj] = base[jj * ld + kk];
    }
  }
  if constexpr (FT) {
    for (index_t g = 0; g < jblocks; ++g) {
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, acc[g]);
      for (int q = 0; q < 4; ++q) cr[4 * g + q] += lanes[q];
    }
  }
}

template <bool FT>
void pack_b_panel_notrans(const float* base, index_t ld, index_t klen,
                          index_t nr, float* __restrict__ dst,
                          const float* __restrict__ ar,
                          float* __restrict__ cr) {
  const index_t jblocks = nr / 4;  // 4x4 SSE tiles: NR=6/8 leave < 8 cols
  const index_t jtail = jblocks * 4;
  __m128 acc[kMaxGroups];
  if constexpr (FT) {
    for (index_t g = 0; g < jblocks; ++g) acc[g] = _mm_setzero_ps();
  }
  index_t kk = 0;
  for (; kk + 4 <= klen; kk += 4) {
    for (index_t g = 0; g < jblocks; ++g) {
      const float* col = base + 4 * g * ld + kk;
      if (kk % 16 == 0) {
        prefetch_t0(col + 4 * kPfDist);
        prefetch_t0(col + ld + 4 * kPfDist);
        prefetch_t0(col + 2 * ld + 4 * kPfDist);
        prefetch_t0(col + 3 * ld + 4 * kPfDist);
      }
      __m128 t0 = _mm_loadu_ps(col);
      __m128 t1 = _mm_loadu_ps(col + ld);
      __m128 t2 = _mm_loadu_ps(col + 2 * ld);
      __m128 t3 = _mm_loadu_ps(col + 3 * ld);
      _MM_TRANSPOSE4_PS(t0, t1, t2, t3);
      _mm_storeu_ps(dst + (kk + 0) * nr + 4 * g, t0);
      _mm_storeu_ps(dst + (kk + 1) * nr + 4 * g, t1);
      _mm_storeu_ps(dst + (kk + 2) * nr + 4 * g, t2);
      _mm_storeu_ps(dst + (kk + 3) * nr + 4 * g, t3);
      if constexpr (FT) {
        acc[g] = _mm_fmadd_ps(t0, _mm_set1_ps(ar[kk + 0]), acc[g]);
        acc[g] = _mm_fmadd_ps(t1, _mm_set1_ps(ar[kk + 1]), acc[g]);
        acc[g] = _mm_fmadd_ps(t2, _mm_set1_ps(ar[kk + 2]), acc[g]);
        acc[g] = _mm_fmadd_ps(t3, _mm_set1_ps(ar[kk + 3]), acc[g]);
      }
    }
    for (index_t jj = jtail; jj < nr; ++jj) {
      const float* cj = base + jj * ld;
      for (int q = 0; q < 4; ++q) {
        const float v = cj[kk + q];
        dst[(kk + q) * nr + jj] = v;
        if constexpr (FT) cr[jj] += ar[kk + q] * v;
      }
    }
  }
  for (; kk < klen; ++kk) {
    float* row = dst + kk * nr;
    if constexpr (FT) {
      const float arv = ar[kk];
      for (index_t jj = 0; jj < nr; ++jj) {
        const float v = base[jj * ld + kk];
        row[jj] = v;
        cr[jj] += arv * v;
      }
    } else {
      for (index_t jj = 0; jj < nr; ++jj) row[jj] = base[jj * ld + kk];
    }
  }
  if constexpr (FT) {
    for (index_t g = 0; g < jblocks; ++g) {
      alignas(16) float lanes[4];
      _mm_store_ps(lanes, acc[g]);
      for (int q = 0; q < 4; ++q) cr[4 * g + q] += lanes[q];
    }
  }
}

/// Transpose tile height of the Trans pack_a path per element type.
template <typename T>
constexpr index_t trans_tile() {
  return sizeof(T) == 8 ? 4 : 8;
}

// ---------------------------------------------------------------------------
// Cc replay from an already-packed panel (resident-operand cache hits).
// Each routine repeats EXACTLY the accumulator structure of its pack_a
// counterpart above — same fmadd operand order, same aligned-prefix /
// scalar-tail split, same deferred vector-accumulator add — with the packed
// value standing in for the just-scaled element, so the accumulated Cc is
// bit-identical to a cold pack_a_ft over the same slab.
// ---------------------------------------------------------------------------

/// Replay of pack_a_panel_trans<FT=true> (double).  Full tile: rows == mr.
inline void encode_cc_panel_trans(const double* __restrict__ packed,
                                  index_t klen, index_t mr,
                                  const double* __restrict__ bc,
                                  double* __restrict__ cc) {
  const index_t groups = mr / 4;
  __m256d acc[kMaxGroups];
  for (index_t g = 0; g < groups; ++g) acc[g] = _mm256_setzero_pd();
  index_t kk = 0;
  for (; kk + 4 <= klen; kk += 4) {
    for (index_t g = 0; g < groups; ++g) {
      for (int q = 0; q < 4; ++q) {
        const __m256d v = _mm256_loadu_pd(packed + (kk + q) * mr + 4 * g);
        acc[g] = _mm256_fmadd_pd(v, _mm256_set1_pd(bc[kk + q]), acc[g]);
      }
    }
  }
  for (; kk < klen; ++kk) {
    const double* col = packed + kk * mr;
    const double bcv = bc[kk];
    for (index_t ii = 0; ii < mr; ++ii) cc[ii] += col[ii] * bcv;
  }
  for (index_t g = 0; g < groups; ++g) {
    _mm256_storeu_pd(cc + 4 * g,
                     _mm256_add_pd(_mm256_loadu_pd(cc + 4 * g), acc[g]));
  }
}

/// Replay of pack_a_panel_trans<FT=true> (float).  Full tile: rows == mr.
inline void encode_cc_panel_trans(const float* __restrict__ packed,
                                  index_t klen, index_t mr,
                                  const float* __restrict__ bc,
                                  float* __restrict__ cc) {
  const index_t groups = mr / 8;
  __m256 acc[kMaxGroups];
  for (index_t g = 0; g < groups; ++g) acc[g] = _mm256_setzero_ps();
  index_t kk = 0;
  for (; kk + 8 <= klen; kk += 8) {
    for (index_t g = 0; g < groups; ++g) {
      for (int q = 0; q < 8; ++q) {
        const __m256 v = _mm256_loadu_ps(packed + (kk + q) * mr + 8 * g);
        acc[g] = _mm256_fmadd_ps(v, _mm256_set1_ps(bc[kk + q]), acc[g]);
      }
    }
  }
  for (; kk < klen; ++kk) {
    const float* col = packed + kk * mr;
    const float bcv = bc[kk];
    for (index_t ii = 0; ii < mr; ++ii) cc[ii] += col[ii] * bcv;
  }
  for (index_t g = 0; g < groups; ++g) {
    _mm256_storeu_ps(cc + 8 * g,
                     _mm256_add_ps(_mm256_loadu_ps(cc + 8 * g), acc[g]));
  }
}

/// Replay of pack_a_panel_notrans<TR, FT=true>.  Full tile: rows == mr.
template <class TR>
void encode_cc_panel_notrans(const typename TR::T* __restrict__ packed,
                             index_t klen, index_t mr,
                             const typename TR::T* __restrict__ bc,
                             typename TR::T* __restrict__ cc) {
  using Vec = typename TR::Vec;
  constexpr index_t W = TR::W;
  const index_t groups = mr / W;
  Vec acc[kMaxGroups];
  for (index_t g = 0; g < groups; ++g) acc[g] = TR::zero();
  for (index_t kk = 0; kk < klen; ++kk) {
    const typename TR::T* __restrict__ col = packed + kk * mr;
    const Vec bcv = TR::set1(bc[kk]);
    for (index_t g = 0; g < groups; ++g) {
      acc[g] = TR::fmadd(TR::loadu(col + g * W), bcv, acc[g]);
    }
  }
  for (index_t g = 0; g < groups; ++g)
    TR::storeu(cc + g * W, TR::add(TR::loadu(cc + g * W), acc[g]));
}

// ---------------------------------------------------------------------------
// Traits-parameterized full-width streaming paths.  A Traits class TR
// provides: T, Vec, W, zero/set1/loadu/storeu, maskload/maskstore (first n
// lanes; masked-out lanes read as zero), add/mul/fmadd/max/abs, hsum/hmax.
// ---------------------------------------------------------------------------

/// NoTrans pack_a panel: unit-stride copy-scale of mr-row columns, with the
/// fused Cc FMA carried in one accumulator per vector group (mr/W chains).
/// Full panel: rows == mr, mr % W == 0, mr/W <= kMaxGroups.
template <class TR, bool FT>
void pack_a_panel_notrans(const typename TR::T* base, index_t ld,
                          index_t klen, index_t mr,
                          typename TR::T alpha,
                          typename TR::T* __restrict__ dst,
                          const typename TR::T* __restrict__ bc,
                          typename TR::T* __restrict__ cc) {
  using Vec = typename TR::Vec;
  constexpr index_t W = TR::W;
  const index_t groups = mr / W;
  const Vec alphav = TR::set1(alpha);
  Vec acc[kMaxGroups];
  for (index_t g = 0; g < groups; ++g) acc[g] = TR::zero();
  for (index_t kk = 0; kk < klen; ++kk) {
    const typename TR::T* __restrict__ src = base + kk * ld;
    typename TR::T* __restrict__ col = dst + kk * mr;
    const typename TR::T* pf = src + kPfDist * ld;
    if constexpr (FT) {
      const Vec bcv = TR::set1(bc[kk]);
      for (index_t g = 0; g < groups; ++g) {
        if ((index_t(sizeof(typename TR::T)) * g * W) % 64 == 0)
          prefetch_t0(pf + g * W);
        const Vec v = TR::mul(alphav, TR::loadu(src + g * W));
        TR::storeu(col + g * W, v);
        acc[g] = TR::fmadd(v, bcv, acc[g]);
      }
    } else {
      for (index_t g = 0; g < groups; ++g) {
        if ((index_t(sizeof(typename TR::T)) * g * W) % 64 == 0)
          prefetch_t0(pf + g * W);
        TR::storeu(col + g * W, TR::mul(alphav, TR::loadu(src + g * W)));
      }
    }
  }
  if constexpr (FT) {
    for (index_t g = 0; g < groups; ++g)
      TR::storeu(cc + g * W, TR::add(TR::loadu(cc + g * W), acc[g]));
  }
}

/// Trans pack_b panel: the effective row is contiguous — full-width copy
/// streams with a masked tail group, and (with FT) the predicted-Cr FMA
/// fused into the same pass, one accumulator per vector group carried
/// across k.  Full panel: cols == nr.
template <class TR, bool FT>
void pack_b_panel_transcopy(const typename TR::T* base, index_t ld,
                            index_t klen, index_t nr,
                            typename TR::T* __restrict__ dst,
                            const typename TR::T* __restrict__ ar,
                            typename TR::T* __restrict__ cr) {
  using Vec = typename TR::Vec;
  constexpr index_t W = TR::W;
  const index_t full = nr - nr % W;
  const index_t rem = nr - full;
  const index_t ng = full / W + (rem ? 1 : 0);
  Vec acc[kMaxGroups + 1];
  if constexpr (FT) {
    for (index_t g = 0; g < ng; ++g) acc[g] = TR::zero();
  }
  for (index_t kk = 0; kk < klen; ++kk) {
    const typename TR::T* __restrict__ src = base + kk * ld;
    typename TR::T* __restrict__ out = dst + kk * nr;
    prefetch_t0(src + kPfDist * ld);
    if constexpr (FT) {
      const Vec arv = TR::set1(ar[kk]);
      index_t jj = 0;
      for (; jj < full; jj += W) {
        const Vec v = TR::loadu(src + jj);
        TR::storeu(out + jj, v);
        acc[jj / W] = TR::fmadd(arv, v, acc[jj / W]);
      }
      if (rem) {
        const Vec v = TR::maskload(src + jj, rem);
        TR::maskstore(out + jj, rem, v);
        acc[full / W] = TR::fmadd(arv, v, acc[full / W]);
      }
    } else {
      index_t jj = 0;
      for (; jj < full; jj += W) TR::storeu(out + jj, TR::loadu(src + jj));
      if (rem) TR::maskstore(out + jj, rem, TR::maskload(src + jj, rem));
    }
  }
  if constexpr (FT) {
    alignas(64) typename TR::T lanes[(kMaxGroups + 1) * W];
    for (index_t g = 0; g < ng; ++g) TR::storeu(lanes + g * W, acc[g]);
    for (index_t jj = 0; jj < nr; ++jj) cr[jj] += lanes[jj];
  }
}

/// Bc[kk] = sum_j panel(kk, j) over all sub-panels + fused amax of |B~|.
template <class TR>
double reduce_bc_simd(const typename TR::T* __restrict__ b_packed,
                      index_t klen, index_t nlen, index_t nr, index_t kk0,
                      index_t kklen, typename TR::T* __restrict__ bc,
                      double amax_in) {
  using Vec = typename TR::Vec;
  constexpr index_t W = TR::W;
  const index_t panels = (nlen + nr - 1) / nr;
  const index_t groups = nr / W;
  const index_t rem = nr - groups * W;
  Vec amaxv = TR::zero();
  for (index_t kk = kk0; kk < kk0 + kklen; ++kk) bc[kk] = typename TR::T(0);
  for (index_t q = 0; q < panels; ++q) {
    const typename TR::T* __restrict__ panel = b_packed + q * (nr * klen);
    for (index_t kk = kk0; kk < kk0 + kklen; ++kk) {
      const typename TR::T* __restrict__ row = panel + kk * nr;
      Vec s = TR::zero();
      for (index_t g = 0; g < groups; ++g) {
        const Vec v = TR::loadu(row + g * W);
        s = TR::add(s, v);
        amaxv = TR::max(amaxv, TR::abs(v));
      }
      if (rem) {
        const Vec v = TR::maskload(row + groups * W, rem);
        s = TR::add(s, v);
        amaxv = TR::max(amaxv, TR::abs(v));
      }
      bc[kk] += TR::hsum(s);
    }
  }
  return std::max(amax_in, double(TR::hmax(amaxv)));
}

/// Fused C-scaling + Cc/Cr encode + pre-scale amax (see scale_encode_c in
/// abft/checksum.hpp for the semantics being mirrored).
template <class TR>
double scale_encode_c_simd(typename TR::T* c, index_t ldc, index_t i0,
                           index_t ilen, index_t n, typename TR::T beta,
                           typename TR::T* __restrict__ cc,
                           typename TR::T* __restrict__ cr_part) {
  using T = typename TR::T;
  using Vec = typename TR::Vec;
  constexpr index_t W = TR::W;
  const index_t full = ilen - ilen % W;
  const index_t rem = ilen - full;
  const Vec betav = TR::set1(beta);
  Vec amaxv = TR::zero();
  for (index_t j = 0; j < n; ++j) {
    T* __restrict__ col = c + i0 + j * ldc;
    if (beta == T(0)) {
      // Assign zero rather than multiply: C may hold uninitialized data and
      // 0 * NaN would propagate.  Checksums of a zero slice stay zero.
      const Vec z = TR::zero();
      index_t i = 0;
      for (; i < full; i += W) TR::storeu(col + i, z);
      if (rem) TR::maskstore(col + i, rem, z);
      continue;
    }
    T* __restrict__ ccr = cc + i0;
    Vec s0 = TR::zero(), s1 = TR::zero();
    index_t i = 0;
    if (beta == T(1)) {
      for (; i + 2 * W <= ilen; i += 2 * W) {
        const Vec v0 = TR::loadu(col + i);
        const Vec v1 = TR::loadu(col + i + W);
        amaxv = TR::max(amaxv, TR::abs(v0));
        amaxv = TR::max(amaxv, TR::abs(v1));
        TR::storeu(ccr + i, TR::add(TR::loadu(ccr + i), v0));
        TR::storeu(ccr + i + W, TR::add(TR::loadu(ccr + i + W), v1));
        s0 = TR::add(s0, v0);
        s1 = TR::add(s1, v1);
      }
      for (; i < full; i += W) {
        const Vec v = TR::loadu(col + i);
        amaxv = TR::max(amaxv, TR::abs(v));
        TR::storeu(ccr + i, TR::add(TR::loadu(ccr + i), v));
        s0 = TR::add(s0, v);
      }
      if (rem) {
        const Vec v = TR::maskload(col + i, rem);
        amaxv = TR::max(amaxv, TR::abs(v));
        TR::maskstore(ccr + i, rem,
                      TR::add(TR::maskload(ccr + i, rem), v));
        s1 = TR::add(s1, v);
      }
    } else {
      for (; i + 2 * W <= ilen; i += 2 * W) {
        const Vec u0 = TR::loadu(col + i);
        const Vec u1 = TR::loadu(col + i + W);
        amaxv = TR::max(amaxv, TR::abs(u0));  // amax is of the PRE-scale C
        amaxv = TR::max(amaxv, TR::abs(u1));
        const Vec v0 = TR::mul(betav, u0);
        const Vec v1 = TR::mul(betav, u1);
        TR::storeu(col + i, v0);
        TR::storeu(col + i + W, v1);
        TR::storeu(ccr + i, TR::add(TR::loadu(ccr + i), v0));
        TR::storeu(ccr + i + W, TR::add(TR::loadu(ccr + i + W), v1));
        s0 = TR::add(s0, v0);
        s1 = TR::add(s1, v1);
      }
      for (; i < full; i += W) {
        const Vec u = TR::loadu(col + i);
        amaxv = TR::max(amaxv, TR::abs(u));
        const Vec v = TR::mul(betav, u);
        TR::storeu(col + i, v);
        TR::storeu(ccr + i, TR::add(TR::loadu(ccr + i), v));
        s0 = TR::add(s0, v);
      }
      if (rem) {
        const Vec u = TR::maskload(col + i, rem);
        amaxv = TR::max(amaxv, TR::abs(u));
        const Vec v = TR::mul(betav, u);
        TR::maskstore(col + i, rem, v);
        TR::maskstore(ccr + i, rem,
                      TR::add(TR::maskload(ccr + i, rem), v));
        s1 = TR::add(s1, v);
      }
    }
    cr_part[j] += TR::hsum(TR::add(s0, s1));
  }
  return double(TR::hmax(amaxv));
}

/// Ar partial encode + amax (mirrors encode_ar_partial in abft/checksum.hpp).
template <class TR>
double encode_ar_simd(const OperandView<typename TR::T>& a, index_t i0,
                      index_t ilen, index_t k, typename TR::T alpha,
                      typename TR::T* __restrict__ ar_part) {
  using T = typename TR::T;
  using Vec = typename TR::Vec;
  constexpr index_t W = TR::W;
  Vec amaxv = TR::zero();
  if (!a.trans) {
    // Column p of A is contiguous: full-width lane sums down it.
    const index_t full = ilen - ilen % W;
    const index_t rem = ilen - full;
    for (index_t p = 0; p < k; ++p) {
      const T* __restrict__ col = a.data + i0 + p * a.ld;
      prefetch_t0(col + a.ld);
      Vec s0 = TR::zero(), s1 = TR::zero();
      index_t i = 0;
      for (; i + 2 * W <= ilen; i += 2 * W) {
        const Vec v0 = TR::loadu(col + i);
        const Vec v1 = TR::loadu(col + i + W);
        amaxv = TR::max(amaxv, TR::abs(v0));
        amaxv = TR::max(amaxv, TR::abs(v1));
        s0 = TR::add(s0, v0);
        s1 = TR::add(s1, v1);
      }
      for (; i < full; i += W) {
        const Vec v = TR::loadu(col + i);
        amaxv = TR::max(amaxv, TR::abs(v));
        s0 = TR::add(s0, v);
      }
      if (rem) {
        const Vec v = TR::maskload(col + i, rem);
        amaxv = TR::max(amaxv, TR::abs(v));
        s1 = TR::add(s1, v);
      }
      ar_part[p] += alpha * TR::hsum(TR::add(s0, s1));
    }
  } else {
    // A^T: row i of the storage is contiguous along p — full-width FMA into
    // ar_part (contiguous read-modify-write).
    const index_t full = k - k % W;
    const index_t rem = k - full;
    const Vec alphav = TR::set1(alpha);
    for (index_t i = 0; i < ilen; ++i) {
      const T* __restrict__ row = a.data + (i0 + i) * a.ld;
      prefetch_t0(row + a.ld);
      index_t p = 0;
      for (; p < full; p += W) {
        const Vec v = TR::loadu(row + p);
        amaxv = TR::max(amaxv, TR::abs(v));
        TR::storeu(ar_part + p,
                   TR::fmadd(alphav, v, TR::loadu(ar_part + p)));
      }
      if (rem) {
        const Vec v = TR::maskload(row + p, rem);
        amaxv = TR::max(amaxv, TR::abs(v));
        TR::maskstore(ar_part + p, rem,
                      TR::fmadd(alphav, v, TR::maskload(ar_part + p, rem)));
      }
    }
  }
  return double(TR::hmax(amaxv));
}

// ---------------------------------------------------------------------------
// Top-level dispatch entries: full panels go to the SIMD paths above, the
// ragged tail panel (and any off-spec tile geometry) to the scalar set.
// Signatures match the PackSet function-pointer types exactly.
// ---------------------------------------------------------------------------

template <class TR, bool FT>
void pack_a_generic(const OperandView<typename TR::T>& a, index_t m0,
                    index_t k0, index_t mlen, index_t klen, index_t mr,
                    typename TR::T alpha, typename TR::T* dst,
                    const typename TR::T* bc, typename TR::T* cc) {
  using T = typename TR::T;
  const bool simd_ok =
      a.trans ? (mr % trans_tile<T>() == 0 &&
                 mr / trans_tile<T>() <= kMaxGroups)
              : (mr % TR::W == 0 && mr / TR::W <= kMaxGroups);
  index_t ip = 0;
  if (simd_ok) {
    for (; ip + mr <= mlen; ip += mr) {
      const T* base = a.ptr(m0 + ip, k0);
      if (a.trans) {
        pack_a_panel_trans<FT>(base, a.ld, klen, mr, alpha, dst, bc,
                               FT ? cc + ip : nullptr);
      } else {
        pack_a_panel_notrans<TR, FT>(base, a.ld, klen, mr, alpha, dst, bc,
                                     FT ? cc + ip : nullptr);
      }
      dst += mr * klen;
    }
  }
  if (ip < mlen) {  // ragged tail panel (or whole call): scalar oracle path
    if constexpr (FT) {
      scalar_pack<T>().pack_a_ft(a, m0 + ip, k0, mlen - ip, klen, mr, alpha,
                                 dst, bc, cc + ip);
    } else {
      scalar_pack<T>().pack_a(a, m0 + ip, k0, mlen - ip, klen, mr, alpha,
                              dst);
    }
  }
}

template <class TR>
void pack_a_disp(const OperandView<typename TR::T>& a, index_t m0, index_t k0,
                 index_t mlen, index_t klen, index_t mr, typename TR::T alpha,
                 typename TR::T* dst) {
  pack_a_generic<TR, false>(a, m0, k0, mlen, klen, mr, alpha, dst, nullptr,
                            nullptr);
}

template <class TR>
void pack_a_ft_disp(const OperandView<typename TR::T>& a, index_t m0,
                    index_t k0, index_t mlen, index_t klen, index_t mr,
                    typename TR::T alpha, typename TR::T* dst,
                    const typename TR::T* bc, typename TR::T* cc) {
  pack_a_generic<TR, true>(a, m0, k0, mlen, klen, mr, alpha, dst, bc, cc);
}

template <class TR, bool FT>
void pack_b_generic(const OperandView<typename TR::T>& b, index_t k0,
                    index_t j0, index_t klen, index_t nlen, index_t nr,
                    typename TR::T* dst, const typename TR::T* ar,
                    typename TR::T* cr) {
  using T = typename TR::T;
  const bool simd_ok = nr <= kMaxGroups * TR::W && nr / 4 <= kMaxGroups;
  index_t jp = 0;
  if (simd_ok) {
    for (; jp + nr <= nlen; jp += nr) {
      const T* base = b.ptr(k0, j0 + jp);
      if (b.trans) {
        pack_b_panel_transcopy<TR, FT>(base, b.ld, klen, nr, dst, ar,
                                       FT ? cr + jp : nullptr);
      } else {
        pack_b_panel_notrans<FT>(base, b.ld, klen, nr, dst, ar,
                                 FT ? cr + jp : nullptr);
      }
      dst += nr * klen;
    }
  }
  if (jp < nlen) {  // ragged tail panel (cols < nr): scalar oracle path
    if constexpr (FT) {
      scalar_pack<T>().pack_b_ft(b, k0, j0 + jp, klen, nlen - jp, nr, dst,
                                 ar, cr + jp);
    } else {
      scalar_pack<T>().pack_b(b, k0, j0 + jp, klen, nlen - jp, nr, dst);
    }
  }
}

template <class TR>
void pack_b_disp(const OperandView<typename TR::T>& b, index_t k0, index_t j0,
                 index_t klen, index_t nlen, index_t nr,
                 typename TR::T* dst) {
  pack_b_generic<TR, false>(b, k0, j0, klen, nlen, nr, dst, nullptr, nullptr);
}

template <class TR>
void pack_b_ft_disp(const OperandView<typename TR::T>& b, index_t k0,
                    index_t j0, index_t klen, index_t nlen, index_t nr,
                    typename TR::T* dst, const typename TR::T* ar,
                    typename TR::T* cr) {
  pack_b_generic<TR, true>(b, k0, j0, klen, nlen, nr, dst, ar, cr);
}

/// Dispatch for the Cc replay: the SAME full-tile/ragged-tail split and
/// tile-geometry gate as pack_a_generic, so every tile's Cc contribution is
/// accumulated by the replay twin of the packer that produced it.
template <class TR>
void encode_cc_disp(const typename TR::T* packed, bool trans, index_t mlen,
                    index_t klen, index_t mr, const typename TR::T* bc,
                    typename TR::T* cc) {
  using T = typename TR::T;
  const bool simd_ok =
      trans ? (mr % trans_tile<T>() == 0 &&
               mr / trans_tile<T>() <= kMaxGroups)
            : (mr % TR::W == 0 && mr / TR::W <= kMaxGroups);
  index_t ip = 0;
  if (simd_ok) {
    for (; ip + mr <= mlen; ip += mr) {
      if (trans) {
        encode_cc_panel_trans(packed, klen, mr, bc, cc + ip);
      } else {
        encode_cc_panel_notrans<TR>(packed, klen, mr, bc, cc + ip);
      }
      packed += mr * klen;
    }
  }
  if (ip < mlen) {  // ragged tail tile (or whole call): scalar oracle path
    scalar_pack<T>().encode_cc(packed, trans, mlen - ip, klen, mr, bc,
                               cc + ip);
  }
}

template <class TR>
double reduce_bc_disp(const typename TR::T* b_packed, index_t klen,
                      index_t nlen, index_t nr, index_t kk0, index_t kklen,
                      typename TR::T* bc, double amax_in) {
  if (nr > kMaxGroups * TR::W) {
    return scalar_pack<typename TR::T>().reduce_bc(b_packed, klen, nlen, nr,
                                                   kk0, kklen, bc, amax_in);
  }
  return reduce_bc_simd<TR>(b_packed, klen, nlen, nr, kk0, kklen, bc,
                            amax_in);
}

/// Assemble the PackSet for one traits class.  The encode sweeps need no
/// dispatch wrapper (no tile-geometry gate), so their _simd implementations
/// are bound directly.
template <class TR>
PackSet<typename TR::T> make_simd_pack(Isa isa) {
  PackSet<typename TR::T> p;
  p.pack_a = &pack_a_disp<TR>;
  p.pack_a_ft = &pack_a_ft_disp<TR>;
  p.pack_b = &pack_b_disp<TR>;
  p.pack_b_ft = &pack_b_ft_disp<TR>;
  p.reduce_bc = &reduce_bc_disp<TR>;
  p.scale_encode_c = &scale_encode_c_simd<TR>;
  p.encode_ar = &encode_ar_simd<TR>;
  p.encode_cc = &encode_cc_disp<TR>;
  p.pack_a_raw = scalar_pack<typename TR::T>().pack_a_raw;
  p.widen_a = scalar_pack<typename TR::T>().widen_a;
  p.isa = isa;
  return p;
}

// ===========================================================================
// Mixed-precision paths: narrow storage (bf16/fp16), fp32 compute.
//
// A widening loader LD supplies the storage side: `LD::S` is the narrow
// scalar, and each load returns elements ALREADY widened to fp32 vectors
// (bf16: cvtepu16 + 16-bit shift into the f32 layout; fp16: VCVTPH2PS).
// Everything downstream of the load — alpha multiply, checksum FMA lanes,
// accumulator shapes, tile/gate geometry — is byte-for-byte the fp32
// structure above, with trans_tile pinned at the fp32 value (8).  Two
// consequences the engine depends on:
//
//   1. Panels are bit-identical to convert-then-scalar-pack (the widen is
//      exact, and each element still sees exactly one multiply by alpha).
//   2. The fp32 replay/reduce/scale members (encode_cc_disp, reduce_bc_disp,
//      scale_encode_c_simd) serve the mixed sets UNCHANGED: they only ever
//      touch fp32 panels, and the mixed packers' accumulator structure is
//      the fp32 one, so the resident-hit Cc replay stays bit-exact.
//
// Ragged edges reach the flag-free scalar templates through the
// scalar_pack_bf16()/scalar_pack_f16() function pointers, same rule as the
// uniform-type engine.
// ===========================================================================

/// Mixed scalar fallback set, by storage type (fp32 compute).  Reached
/// through the flag-free accessors, never by instantiating the scalar
/// templates in this TU.
template <typename S>
const PackSet<S, float>& scalar_pack_mixed() {
  static const PackSet<S, float> set = [] {
    if constexpr (kStorageDtypeTag<S> == kStorageDtypeTag<bf16_t>)
      return scalar_pack_bf16();
    else
      return scalar_pack_f16();
  }();
  return set;
}

/// Trans pack_a, mixed: widen-load 8 storage rows, fp32 8x8 transpose tiles
/// — the exact structure of pack_a_panel_trans(float).  Full tile:
/// rows == mr, mr % 8 == 0.
template <class LD, bool FT>
void pack_a_panel_trans_mixed(const typename LD::S* base, index_t ld,
                              index_t klen, index_t mr, float alpha,
                              float* __restrict__ dst,
                              const float* __restrict__ bc,
                              float* __restrict__ cc) {
  const __m256 av = _mm256_set1_ps(alpha);
  const index_t groups = mr / 8;
  __m256 acc[kMaxGroups];
  if constexpr (FT) {
    for (index_t g = 0; g < groups; ++g) acc[g] = _mm256_setzero_ps();
  }
  index_t kk = 0;
  for (; kk + 8 <= klen; kk += 8) {
    for (index_t g = 0; g < groups; ++g) {
      const typename LD::S* row = base + 8 * g * ld + kk;
      __m256 t[8];
      for (int q = 0; q < 8; ++q) t[q] = LD::load8(row + q * ld);
      transpose8x8_ps(t);
      for (int q = 0; q < 8; ++q) {
        const __m256 v = _mm256_mul_ps(av, t[q]);
        _mm256_storeu_ps(dst + (kk + q) * mr + 8 * g, v);
        if constexpr (FT)
          acc[g] = _mm256_fmadd_ps(v, _mm256_set1_ps(bc[kk + q]), acc[g]);
      }
    }
  }
  for (; kk < klen; ++kk) {
    float* col = dst + kk * mr;
    if constexpr (FT) {
      const float bcv = bc[kk];
      for (index_t ii = 0; ii < mr; ++ii) {
        const float v = alpha * float(base[ii * ld + kk]);
        col[ii] = v;
        cc[ii] += v * bcv;
      }
    } else {
      for (index_t ii = 0; ii < mr; ++ii)
        col[ii] = alpha * float(base[ii * ld + kk]);
    }
  }
  if constexpr (FT) {
    for (index_t g = 0; g < groups; ++g) {
      _mm256_storeu_ps(cc + 8 * g,
                       _mm256_add_ps(_mm256_loadu_ps(cc + 8 * g), acc[g]));
    }
  }
}

/// NoTrans pack_a, mixed: full-width widen-load streaming, fp32 accumulator
/// chains — the exact structure of pack_a_panel_notrans<TR>.  Full panel:
/// rows == mr, mr % TR::W == 0.
template <class TR, class LD, bool FT>
void pack_a_panel_notrans_mixed(const typename LD::S* base, index_t ld,
                                index_t klen, index_t mr, float alpha,
                                float* __restrict__ dst,
                                const float* __restrict__ bc,
                                float* __restrict__ cc) {
  using Vec = typename TR::Vec;
  constexpr index_t W = TR::W;
  const index_t groups = mr / W;
  const Vec alphav = TR::set1(alpha);
  Vec acc[kMaxGroups];
  for (index_t g = 0; g < groups; ++g) acc[g] = TR::zero();
  for (index_t kk = 0; kk < klen; ++kk) {
    const typename LD::S* __restrict__ src = base + kk * ld;
    float* __restrict__ col = dst + kk * mr;
    const typename LD::S* pf = src + kPfDist * ld;
    if constexpr (FT) {
      const Vec bcv = TR::set1(bc[kk]);
      for (index_t g = 0; g < groups; ++g) {
        if ((index_t(sizeof(typename LD::S)) * g * W) % 64 == 0)
          prefetch_t0(pf + g * W);
        const Vec v = TR::mul(alphav, LD::loadu(src + g * W));
        TR::storeu(col + g * W, v);
        acc[g] = TR::fmadd(v, bcv, acc[g]);
      }
    } else {
      for (index_t g = 0; g < groups; ++g) {
        if ((index_t(sizeof(typename LD::S)) * g * W) % 64 == 0)
          prefetch_t0(pf + g * W);
        TR::storeu(col + g * W, TR::mul(alphav, LD::loadu(src + g * W)));
      }
    }
  }
  if constexpr (FT) {
    for (index_t g = 0; g < groups; ++g)
      TR::storeu(cc + g * W, TR::add(TR::loadu(cc + g * W), acc[g]));
  }
}

/// NoTrans pack_b, mixed: 4-wide widen loads into the fp32 4x4 SSE
/// transpose tiles of pack_b_panel_notrans(float).  Full panel: cols == nr.
template <class LD, bool FT>
void pack_b_panel_notrans_mixed(const typename LD::S* base, index_t ld,
                                index_t klen, index_t nr,
                                float* __restrict__ dst,
                                const float* __restrict__ ar,
                                float* __restrict__ cr) {
  const index_t jblocks = nr / 4;
  const index_t jtail = jblocks * 4;
  __m128 acc[kMaxGroups];
  if constexpr (FT) {
    for (index_t g = 0; g < jblocks; ++g) acc[g] = _mm_setzero_ps();
  }
  index_t kk = 0;
  for (; kk + 4 <= klen; kk += 4) {
    for (index_t g = 0; g < jblocks; ++g) {
      const typename LD::S* col = base + 4 * g * ld + kk;
      if (kk % 16 == 0) {
        prefetch_t0(col + 4 * kPfDist);
        prefetch_t0(col + ld + 4 * kPfDist);
        prefetch_t0(col + 2 * ld + 4 * kPfDist);
        prefetch_t0(col + 3 * ld + 4 * kPfDist);
      }
      __m128 t0 = LD::load4(col);
      __m128 t1 = LD::load4(col + ld);
      __m128 t2 = LD::load4(col + 2 * ld);
      __m128 t3 = LD::load4(col + 3 * ld);
      _MM_TRANSPOSE4_PS(t0, t1, t2, t3);
      _mm_storeu_ps(dst + (kk + 0) * nr + 4 * g, t0);
      _mm_storeu_ps(dst + (kk + 1) * nr + 4 * g, t1);
      _mm_storeu_ps(dst + (kk + 2) * nr + 4 * g, t2);
      _mm_storeu_ps(dst + (kk + 3) * nr + 4 * g, t3);
      if constexpr (FT) {
        acc[g] = _mm_fmadd_ps(t0, _mm_set1_ps(ar[kk + 0]), acc[g]);
        acc[g] = _mm_fmadd_ps(t1, _mm_set1_ps(ar[kk + 1]), acc[g]);
        acc[g] = _mm_fmadd_ps(t2, _mm_set1_ps(ar[kk + 2]), acc[g]);
        acc[g] = _mm_fmadd_ps(t3, _mm_set1_ps(ar[kk + 3]), acc[g]);
      }
    }
    for (index_t jj = jtail; jj < nr; ++jj) {
      const typename LD::S* cj = base + jj * ld;
      for (int q = 0; q < 4; ++q) {
        const float v = float(cj[kk + q]);
        dst[(kk + q) * nr + jj] = v;
        if constexpr (FT) cr[jj] += ar[kk + q] * v;
      }
    }
  }
  for (; kk < klen; ++kk) {
    float* row = dst + kk * nr;
    if constexpr (FT) {
      const float arv = ar[kk];
      for (index_t jj = 0; jj < nr; ++jj) {
        const float v = float(base[jj * ld + kk]);
        row[jj] = v;
        cr[jj] += arv * v;
      }
    } else {
      for (index_t jj = 0; jj < nr; ++jj) row[jj] = float(base[jj * ld + kk]);
    }
  }
  if constexpr (FT) {
    for (index_t g = 0; g < jblocks; ++g) {
      alignas(16) float lanes[4];
      _mm_store_ps(lanes, acc[g]);
      for (int q = 0; q < 4; ++q) cr[4 * g + q] += lanes[q];
    }
  }
}

/// Trans pack_b, mixed: full-width widen-load copy streams (the effective
/// row is contiguous in storage), structure of pack_b_panel_transcopy<TR>.
template <class TR, class LD, bool FT>
void pack_b_panel_transcopy_mixed(const typename LD::S* base, index_t ld,
                                  index_t klen, index_t nr,
                                  float* __restrict__ dst,
                                  const float* __restrict__ ar,
                                  float* __restrict__ cr) {
  using Vec = typename TR::Vec;
  constexpr index_t W = TR::W;
  const index_t full = nr - nr % W;
  const index_t rem = nr - full;
  const index_t ng = full / W + (rem ? 1 : 0);
  Vec acc[kMaxGroups + 1];
  if constexpr (FT) {
    for (index_t g = 0; g < ng; ++g) acc[g] = TR::zero();
  }
  for (index_t kk = 0; kk < klen; ++kk) {
    const typename LD::S* __restrict__ src = base + kk * ld;
    float* __restrict__ out = dst + kk * nr;
    prefetch_t0(src + kPfDist * ld);
    if constexpr (FT) {
      const Vec arv = TR::set1(ar[kk]);
      index_t jj = 0;
      for (; jj < full; jj += W) {
        const Vec v = LD::loadu(src + jj);
        TR::storeu(out + jj, v);
        acc[jj / W] = TR::fmadd(arv, v, acc[jj / W]);
      }
      if (rem) {
        const Vec v = LD::maskload(src + jj, rem);
        TR::maskstore(out + jj, rem, v);
        acc[full / W] = TR::fmadd(arv, v, acc[full / W]);
      }
    } else {
      index_t jj = 0;
      for (; jj < full; jj += W) TR::storeu(out + jj, LD::loadu(src + jj));
      if (rem) TR::maskstore(out + jj, rem, LD::maskload(src + jj, rem));
    }
  }
  if constexpr (FT) {
    alignas(64) float lanes[(kMaxGroups + 1) * W];
    for (index_t g = 0; g < ng; ++g) TR::storeu(lanes + g * W, acc[g]);
    for (index_t jj = 0; jj < nr; ++jj) cr[jj] += lanes[jj];
  }
}

/// Ar partial encode + amax over a narrow-storage operand (mirrors
/// encode_ar_partial<S, float>): widen loads, fp32 lane sums.
template <class TR, class LD>
double encode_ar_simd_mixed(const OperandView<typename LD::S>& a, index_t i0,
                            index_t ilen, index_t k, float alpha,
                            float* __restrict__ ar_part) {
  using Vec = typename TR::Vec;
  constexpr index_t W = TR::W;
  Vec amaxv = TR::zero();
  if (!a.trans) {
    const index_t full = ilen - ilen % W;
    const index_t rem = ilen - full;
    for (index_t p = 0; p < k; ++p) {
      const typename LD::S* __restrict__ col = a.data + i0 + p * a.ld;
      prefetch_t0(col + a.ld);
      Vec s0 = TR::zero(), s1 = TR::zero();
      index_t i = 0;
      for (; i + 2 * W <= ilen; i += 2 * W) {
        const Vec v0 = LD::loadu(col + i);
        const Vec v1 = LD::loadu(col + i + W);
        amaxv = TR::max(amaxv, TR::abs(v0));
        amaxv = TR::max(amaxv, TR::abs(v1));
        s0 = TR::add(s0, v0);
        s1 = TR::add(s1, v1);
      }
      for (; i < full; i += W) {
        const Vec v = LD::loadu(col + i);
        amaxv = TR::max(amaxv, TR::abs(v));
        s0 = TR::add(s0, v);
      }
      if (rem) {
        const Vec v = LD::maskload(col + i, rem);
        amaxv = TR::max(amaxv, TR::abs(v));
        s1 = TR::add(s1, v);
      }
      ar_part[p] += alpha * TR::hsum(TR::add(s0, s1));
    }
  } else {
    const index_t full = k - k % W;
    const index_t rem = k - full;
    const Vec alphav = TR::set1(alpha);
    for (index_t i = 0; i < ilen; ++i) {
      const typename LD::S* __restrict__ row = a.data + (i0 + i) * a.ld;
      prefetch_t0(row + a.ld);
      index_t p = 0;
      for (; p < full; p += W) {
        const Vec v = LD::loadu(row + p);
        amaxv = TR::max(amaxv, TR::abs(v));
        TR::storeu(ar_part + p, TR::fmadd(alphav, v, TR::loadu(ar_part + p)));
      }
      if (rem) {
        const Vec v = LD::maskload(row + p, rem);
        amaxv = TR::max(amaxv, TR::abs(v));
        TR::maskstore(ar_part + p, rem,
                      TR::fmadd(alphav, v, TR::maskload(ar_part + p, rem)));
      }
    }
  }
  return double(TR::hmax(amaxv));
}

/// Widen + alpha-scale a raw storage panel into the fp32 panel (resident
/// cache hit).  Full tiles have no padding rows, so they widen as one flat
/// stream — each element sees the identical single widen + single multiply
/// the cold pack applied, hence bit-identity.  The ragged tail tile (with
/// its explicit zero padding) goes through the scalar template.
template <class TR, class LD>
void widen_a_mixed(const typename LD::S* raw, index_t mlen, index_t klen,
                   index_t mr, float alpha, float* dst) {
  using Vec = typename TR::Vec;
  constexpr index_t W = TR::W;
  const index_t tiles = mlen / mr;
  const index_t n = tiles * mr * klen;
  const Vec alphav = TR::set1(alpha);
  const index_t full = n - n % W;
  index_t i = 0;
  for (; i < full; i += W)
    TR::storeu(dst + i, TR::mul(alphav, LD::loadu(raw + i)));
  if (n - full)
    TR::maskstore(dst + i, n - full,
                  TR::mul(alphav, LD::maskload(raw + i, n - full)));
  if (mlen % mr) {
    scalar_pack_mixed<typename LD::S>().widen_a(raw + n, mlen - tiles * mr,
                                                klen, mr, alpha, dst + n);
  }
}

// Mixed dispatch wrappers: IDENTICAL tile-geometry gates to the fp32
// wrappers (trans_tile<float>() == 8, TR::W group widths), because the fp32
// encode_cc_disp replay serves the mixed sets and its gate must agree with
// the packer that filled the panel.

template <class TR, class LD, bool FT>
void pack_a_generic_mixed(const OperandView<typename LD::S>& a, index_t m0,
                          index_t k0, index_t mlen, index_t klen, index_t mr,
                          float alpha, float* dst, const float* bc,
                          float* cc) {
  using S = typename LD::S;
  const bool simd_ok =
      a.trans ? (mr % trans_tile<float>() == 0 &&
                 mr / trans_tile<float>() <= kMaxGroups)
              : (mr % TR::W == 0 && mr / TR::W <= kMaxGroups);
  index_t ip = 0;
  if (simd_ok) {
    for (; ip + mr <= mlen; ip += mr) {
      const S* base = a.ptr(m0 + ip, k0);
      if (a.trans) {
        pack_a_panel_trans_mixed<LD, FT>(base, a.ld, klen, mr, alpha, dst, bc,
                                         FT ? cc + ip : nullptr);
      } else {
        pack_a_panel_notrans_mixed<TR, LD, FT>(base, a.ld, klen, mr, alpha,
                                               dst, bc,
                                               FT ? cc + ip : nullptr);
      }
      dst += mr * klen;
    }
  }
  if (ip < mlen) {  // ragged tail panel (or whole call): scalar oracle path
    if constexpr (FT) {
      scalar_pack_mixed<S>().pack_a_ft(a, m0 + ip, k0, mlen - ip, klen, mr,
                                       alpha, dst, bc, cc + ip);
    } else {
      scalar_pack_mixed<S>().pack_a(a, m0 + ip, k0, mlen - ip, klen, mr,
                                    alpha, dst);
    }
  }
}

template <class TR, class LD>
void pack_a_disp_mixed(const OperandView<typename LD::S>& a, index_t m0,
                       index_t k0, index_t mlen, index_t klen, index_t mr,
                       float alpha, float* dst) {
  pack_a_generic_mixed<TR, LD, false>(a, m0, k0, mlen, klen, mr, alpha, dst,
                                      nullptr, nullptr);
}

template <class TR, class LD>
void pack_a_ft_disp_mixed(const OperandView<typename LD::S>& a, index_t m0,
                          index_t k0, index_t mlen, index_t klen, index_t mr,
                          float alpha, float* dst, const float* bc,
                          float* cc) {
  pack_a_generic_mixed<TR, LD, true>(a, m0, k0, mlen, klen, mr, alpha, dst,
                                     bc, cc);
}

template <class TR, class LD, bool FT>
void pack_b_generic_mixed(const OperandView<typename LD::S>& b, index_t k0,
                          index_t j0, index_t klen, index_t nlen, index_t nr,
                          float* dst, const float* ar, float* cr) {
  using S = typename LD::S;
  const bool simd_ok = nr <= kMaxGroups * TR::W && nr / 4 <= kMaxGroups;
  index_t jp = 0;
  if (simd_ok) {
    for (; jp + nr <= nlen; jp += nr) {
      const S* base = b.ptr(k0, j0 + jp);
      if (b.trans) {
        pack_b_panel_transcopy_mixed<TR, LD, FT>(base, b.ld, klen, nr, dst,
                                                 ar, FT ? cr + jp : nullptr);
      } else {
        pack_b_panel_notrans_mixed<LD, FT>(base, b.ld, klen, nr, dst, ar,
                                           FT ? cr + jp : nullptr);
      }
      dst += nr * klen;
    }
  }
  if (jp < nlen) {  // ragged tail panel (cols < nr): scalar oracle path
    if constexpr (FT) {
      scalar_pack_mixed<S>().pack_b_ft(b, k0, j0 + jp, klen, nlen - jp, nr,
                                       dst, ar, cr + jp);
    } else {
      scalar_pack_mixed<S>().pack_b(b, k0, j0 + jp, klen, nlen - jp, nr, dst);
    }
  }
}

template <class TR, class LD>
void pack_b_disp_mixed(const OperandView<typename LD::S>& b, index_t k0,
                       index_t j0, index_t klen, index_t nlen, index_t nr,
                       float* dst) {
  pack_b_generic_mixed<TR, LD, false>(b, k0, j0, klen, nlen, nr, dst, nullptr,
                                      nullptr);
}

template <class TR, class LD>
void pack_b_ft_disp_mixed(const OperandView<typename LD::S>& b, index_t k0,
                          index_t j0, index_t klen, index_t nlen, index_t nr,
                          float* dst, const float* ar, float* cr) {
  pack_b_generic_mixed<TR, LD, true>(b, k0, j0, klen, nlen, nr, dst, ar, cr);
}

/// Assemble a mixed PackSet: widening packers on the storage side, the
/// plain fp32 engine on the panel side (reduce/scale/replay never see
/// storage bits), raw-pack via the flag-free scalar TU, SIMD widen-on-hit.
template <class TR, class LD>
PackSet<typename LD::S, float> make_mixed_pack(Isa isa) {
  PackSet<typename LD::S, float> p;
  p.pack_a = &pack_a_disp_mixed<TR, LD>;
  p.pack_a_ft = &pack_a_ft_disp_mixed<TR, LD>;
  p.pack_b = &pack_b_disp_mixed<TR, LD>;
  p.pack_b_ft = &pack_b_ft_disp_mixed<TR, LD>;
  p.reduce_bc = &reduce_bc_disp<TR>;
  p.scale_encode_c = &scale_encode_c_simd<TR>;
  p.encode_ar = &encode_ar_simd_mixed<TR, LD>;
  p.encode_cc = &encode_cc_disp<TR>;
  p.pack_a_raw = scalar_pack_mixed<typename LD::S>().pack_a_raw;
  p.widen_a = &widen_a_mixed<TR, LD>;
  p.isa = isa;
  return p;
}

}  // namespace
}  // namespace ftgemm
