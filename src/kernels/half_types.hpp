// Narrow storage types for the mixed-precision GEMM path: bfloat16 and
// IEEE binary16, stored as raw bit patterns with software conversion.
//
// These are STORAGE types only — no arithmetic is ever performed in them.
// The kernel layer is generalized over (StorageT, ComputeT): operands may
// be held in bf16/fp16, but every product, sum, and checksum is carried in
// the fp32 accumulator type (see DESIGN.md §10, "Mixed precision").  The
// only operations a storage type needs are therefore
//
//   - widen to float   (exact — both formats are strict subsets of f32),
//   - narrow from float (round-to-nearest-even, for test fixtures and
//     callers preparing operands),
//   - raw bit access    (fingerprinting, integrity sums, fault injection).
//
// The widening conversions below are bit-compatible with the SIMD widens
// the packers use (bf16: integer shift; fp16: VCVTPH2PS semantics including
// subnormals, ±inf, and NaN quieting), so convert-on-pack SIMD panels are
// bit-identical to convert-then-scalar-pack — the same contract the fp32
// engine keeps (asserted in tests/test_precision.cpp).
#pragma once

#include <cstdint>
#include <cstring>

namespace ftgemm {

namespace detail_half {

inline std::uint32_t f32_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

inline float f32_from_bits(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

/// float -> bf16 bits, round-to-nearest-even.  The add-based rounding works
/// uniformly across normals, subnormals, and ±inf because bf16 is a pure
/// truncation of the f32 layout; NaNs are quieted with payload truncated to
/// the surviving high bits (never silently turned finite).
inline std::uint16_t f32_to_bf16_bits(float f) {
  const std::uint32_t u = f32_bits(f);
  if ((u & 0x7fffffffu) > 0x7f800000u) {
    return std::uint16_t((u >> 16) | 0x0040u);  // quiet NaN, sign kept
  }
  const std::uint32_t rounding = 0x7fffu + ((u >> 16) & 1u);
  return std::uint16_t((u + rounding) >> 16);
}

/// bf16 bits -> float: exact (shift into the high half of the f32 layout).
inline float bf16_bits_to_f32(std::uint16_t h) {
  return f32_from_bits(std::uint32_t(h) << 16);
}

/// fp16 (IEEE binary16) bits -> float: exact, matching VCVTPH2PS —
/// subnormals normalize, ±inf maps to ±inf, NaN payloads shift into the
/// high mantissa bits with signaling NaNs quieted.
inline float f16_bits_to_f32(std::uint16_t h) {
  const std::uint32_t sign = std::uint32_t(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t man = h & 0x3ffu;
  if (exp == 0) {
    if (man == 0) return f32_from_bits(sign);  // ±0
    // Subnormal: normalize the mantissa into an f32 exponent.
    std::uint32_t m = man, e = 0;
    while (!(m & 0x400u)) {
      m <<= 1;
      ++e;
    }
    return f32_from_bits(sign | ((113u - e) << 23) | ((m & 0x3ffu) << 13));
  }
  if (exp == 31) {
    std::uint32_t u = sign | 0x7f800000u | (man << 13);
    if (man) u |= 0x400000u;  // NaN: quiet bit set, payload preserved
    return f32_from_bits(u);
  }
  return f32_from_bits(sign | ((exp + 112u) << 23) | (man << 13));
}

/// float -> fp16 bits, round-to-nearest-even with gradual underflow
/// (subnormal halves), overflow to ±inf, and NaN quieting — VCVTPS2PH
/// round-nearest semantics.
inline std::uint16_t f32_to_f16_bits(float f) {
  const std::uint32_t u = f32_bits(f);
  const std::uint16_t sign = std::uint16_t((u >> 16) & 0x8000u);
  const std::uint32_t abs = u & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // inf / NaN
    if (abs == 0x7f800000u) return std::uint16_t(sign | 0x7c00u);
    return std::uint16_t(sign | 0x7e00u | ((abs >> 13) & 0x3ffu));
  }
  const int e = int(abs >> 23) - 127 + 15;  // target biased exponent
  std::uint32_t mant = abs & 0x7fffffu;
  if (e >= 31) return std::uint16_t(sign | 0x7c00u);  // overflows to inf
  if (e <= 0) {
    // Subnormal half (or zero).  Below 2^-26 everything rounds to ±0.
    if (e < -11) return sign;
    mant |= 0x800000u;  // make the implicit leading 1 explicit
    const int shift = 14 - e;
    const std::uint32_t dropped = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t half = mant >> shift;
    if (dropped > halfway || (dropped == halfway && (half & 1u))) ++half;
    return std::uint16_t(sign | half);
  }
  std::uint32_t half = (std::uint32_t(e) << 10) | (mant >> 13);
  const std::uint32_t dropped = mant & 0x1fffu;
  // RNE; a full-mantissa carry ripples into the exponent (and 0x7bff + 1 ==
  // 0x7c00 turns the largest-normal overflow case into inf), both correct.
  if (dropped > 0x1000u || (dropped == 0x1000u && (half & 1u))) ++half;
  return std::uint16_t(sign | half);
}

}  // namespace detail_half

/// bfloat16 storage scalar: high 16 bits of an f32.  Trivially copyable,
/// 2 bytes; widening to float is implicit (exact), narrowing is explicit
/// (rounds RNE).
struct bf16_t {
  std::uint16_t bits;

  bf16_t() = default;
  explicit bf16_t(float f) : bits(detail_half::f32_to_bf16_bits(f)) {}
  operator float() const { return detail_half::bf16_bits_to_f32(bits); }

  static bf16_t from_bits(std::uint16_t b) {
    bf16_t h;
    h.bits = b;
    return h;
  }
};

/// IEEE binary16 storage scalar.  Same contract as bf16_t.
struct fp16_t {
  std::uint16_t bits;

  fp16_t() = default;
  explicit fp16_t(float f) : bits(detail_half::f32_to_f16_bits(f)) {}
  operator float() const { return detail_half::f16_bits_to_f32(bits); }

  static fp16_t from_bits(std::uint16_t b) {
    fp16_t h;
    h.bits = b;
    return h;
  }
};

static_assert(sizeof(bf16_t) == 2 && sizeof(fp16_t) == 2,
              "narrow storage scalars must be 2 bytes");

/// True for the narrow storage-only scalars (the types whose PackSet widens
/// on pack and whose resident panels are held as raw storage bits).
template <typename T>
inline constexpr bool is_narrow_storage_v = false;
template <>
inline constexpr bool is_narrow_storage_v<bf16_t> = true;
template <>
inline constexpr bool is_narrow_storage_v<fp16_t> = true;

/// Exhaustive storage-dtype enumeration carried in PlanKey (and hashed into
/// it) so plans for different storage types can never alias — belt and
/// braces on top of the per-(StorageT, ComputeT) cache instances.
/// kWide = 0 keeps every pre-existing fp32/fp64 key identity and hash
/// unchanged.  Adding a storage type means adding an enumerator here AND a
/// storage_dtype_of specialization below; the static_asserts reject
/// colliding or silently-defaulted tags at compile time (the raw
/// std::uint8_t constants this replaces admitted collisions unnoticed).
enum class StorageDtype : std::uint8_t {
  kWide = 0,  ///< native-width float storage (compute type == storage type)
  kBf16 = 1,  ///< bf16 storage, fp32 compute
  kF16 = 2,   ///< IEEE binary16 storage, fp32 compute
  kI8 = 3,    ///< int8 quantized storage, int32 compute
};

/// Type -> StorageDtype mapping.  The primary template maps every
/// unspecialized type to kWide; narrow/quantized storage types must add an
/// explicit specialization with a distinct enumerator.
template <typename T>
struct storage_dtype_of {
  static constexpr StorageDtype value = StorageDtype::kWide;
};
template <>
struct storage_dtype_of<bf16_t> {
  static constexpr StorageDtype value = StorageDtype::kBf16;
};
template <>
struct storage_dtype_of<fp16_t> {
  static constexpr StorageDtype value = StorageDtype::kF16;
};
template <>
struct storage_dtype_of<std::int8_t> {
  static constexpr StorageDtype value = StorageDtype::kI8;
};

static_assert(storage_dtype_of<float>::value == StorageDtype::kWide &&
                  storage_dtype_of<double>::value == StorageDtype::kWide,
              "wide float storage must keep tag 0 (plan-key identity)");
static_assert(storage_dtype_of<bf16_t>::value != StorageDtype::kWide &&
                  storage_dtype_of<fp16_t>::value != StorageDtype::kWide &&
                  storage_dtype_of<std::int8_t>::value != StorageDtype::kWide,
              "narrow storage types must not alias the wide tag");
static_assert(
    storage_dtype_of<bf16_t>::value != storage_dtype_of<fp16_t>::value &&
        storage_dtype_of<bf16_t>::value !=
            storage_dtype_of<std::int8_t>::value &&
        storage_dtype_of<fp16_t>::value !=
            storage_dtype_of<std::int8_t>::value,
    "each narrow storage type needs a distinct dtype tag");

/// Raw tag as carried in PlanKey::sdtype (derived from the exhaustive enum
/// above; kept as a variable template so existing call sites are unchanged).
template <typename T>
inline constexpr std::uint8_t kStorageDtypeTag =
    static_cast<std::uint8_t>(storage_dtype_of<T>::value);

}  // namespace ftgemm
