// AVX2/FMA packing & checksum engine (256-bit streams).
//
// See pack_simd_common.hpp for the shared implementation and the
// bit-identity / summation-order contract.  This translation unit is
// compiled with -mavx2 -mfma regardless of the build host; runtime dispatch
// (get_pack_set via select_isa) guarantees these entry points are only
// called on capable CPUs.
#include <immintrin.h>

#include "kernels/pack_simd_common.hpp"

namespace ftgemm {

namespace {

// Lane-count masks for the ragged tails: the first n lanes are active.
alignas(32) constexpr long long kMaskTableD[8] = {-1, -1, -1, -1, 0, 0, 0, 0};
alignas(32) constexpr int kMaskTableS[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                             0,  0,  0,  0,  0,  0,  0,  0};

struct TraitsD256 {
  using T = double;
  using Vec = __m256d;
  static constexpr index_t W = 4;
  static Vec zero() { return _mm256_setzero_pd(); }
  static Vec set1(T x) { return _mm256_set1_pd(x); }
  static Vec loadu(const T* p) { return _mm256_loadu_pd(p); }
  static void storeu(T* p, Vec v) { _mm256_storeu_pd(p, v); }
  static __m256i mask(index_t n) {
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kMaskTableD + 4 - n));
  }
  static Vec maskload(const T* p, index_t n) {
    return _mm256_maskload_pd(p, mask(n));
  }
  static void maskstore(T* p, index_t n, Vec v) {
    _mm256_maskstore_pd(p, mask(n), v);
  }
  static Vec add(Vec a, Vec b) { return _mm256_add_pd(a, b); }
  static Vec mul(Vec a, Vec b) { return _mm256_mul_pd(a, b); }
  static Vec fmadd(Vec a, Vec b, Vec c) { return _mm256_fmadd_pd(a, b, c); }
  static Vec max(Vec a, Vec b) { return _mm256_max_pd(a, b); }
  static Vec abs(Vec v) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
  }
  static T hsum(Vec v) {
    __m128d s = _mm_add_pd(_mm256_castpd256_pd128(v),
                           _mm256_extractf128_pd(v, 1));
    s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
    return _mm_cvtsd_f64(s);
  }
  static T hmax(Vec v) {
    __m128d s = _mm_max_pd(_mm256_castpd256_pd128(v),
                           _mm256_extractf128_pd(v, 1));
    s = _mm_max_sd(s, _mm_unpackhi_pd(s, s));
    return _mm_cvtsd_f64(s);
  }
};

struct TraitsF256 {
  using T = float;
  using Vec = __m256;
  static constexpr index_t W = 8;
  static Vec zero() { return _mm256_setzero_ps(); }
  static Vec set1(T x) { return _mm256_set1_ps(x); }
  static Vec loadu(const T* p) { return _mm256_loadu_ps(p); }
  static void storeu(T* p, Vec v) { _mm256_storeu_ps(p, v); }
  static __m256i mask(index_t n) {
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kMaskTableS + 8 - n));
  }
  static Vec maskload(const T* p, index_t n) {
    return _mm256_maskload_ps(p, mask(n));
  }
  static void maskstore(T* p, index_t n, Vec v) {
    _mm256_maskstore_ps(p, mask(n), v);
  }
  static Vec add(Vec a, Vec b) { return _mm256_add_ps(a, b); }
  static Vec mul(Vec a, Vec b) { return _mm256_mul_ps(a, b); }
  static Vec fmadd(Vec a, Vec b, Vec c) { return _mm256_fmadd_ps(a, b, c); }
  static Vec max(Vec a, Vec b) { return _mm256_max_ps(a, b); }
  static Vec abs(Vec v) {
    return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v);
  }
  static T hsum(Vec v) {
    __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                          _mm256_extractf128_ps(v, 1));
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
  }
  static T hmax(Vec v) {
    __m128 s = _mm_max_ps(_mm256_castps256_ps128(v),
                          _mm256_extractf128_ps(v, 1));
    s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
  }
};

// Widening loaders for the mixed-precision packers (storage -> fp32
// vectors; see pack_simd_common.hpp "Mixed-precision paths").  Masked loads
// stage through a zeroed stack buffer — AVX2 has no 16-bit masked load, and
// the tails are rare (one ragged group per panel row at most).

struct LoadBf16x8 {
  using S = bf16_t;
  static __m256 widen(__m128i h) {
    // bf16 is the high half of the f32 layout: zero-extend to 32 bits and
    // shift into place.  Exact for every bit pattern, NaNs included.
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16));
  }
  static __m256 loadu(const S* p) {
    return widen(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static __m256 load8(const S* p) { return loadu(p); }
  static __m128 load4(const S* p) {
    const __m128i h = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
    return _mm_castsi128_ps(_mm_slli_epi32(_mm_cvtepu16_epi32(h), 16));
  }
  static __m256 maskload(const S* p, index_t n) {
    alignas(16) std::uint16_t buf[8] = {};
    for (index_t i = 0; i < n; ++i) buf[i] = p[i].bits;
    return widen(_mm_load_si128(reinterpret_cast<const __m128i*>(buf)));
  }
};

struct LoadF16x8 {
  using S = fp16_t;
  static __m256 loadu(const S* p) {
    // VCVTPH2PS: exact widen incl. subnormals/inf, SNaN quieting matches
    // the scalar fp16_t conversion (asserted in test_precision.cpp).
    return _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static __m256 load8(const S* p) { return loadu(p); }
  static __m128 load4(const S* p) {
    return _mm_cvtph_ps(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
  }
  static __m256 maskload(const S* p, index_t n) {
    alignas(16) std::uint16_t buf[8] = {};
    for (index_t i = 0; i < n; ++i) buf[i] = p[i].bits;
    return _mm256_cvtph_ps(
        _mm_load_si128(reinterpret_cast<const __m128i*>(buf)));
  }
};

}  // namespace

PackSet<double> avx2_pack_f64() { return make_simd_pack<TraitsD256>(Isa::kAvx2); }
PackSet<float> avx2_pack_f32() { return make_simd_pack<TraitsF256>(Isa::kAvx2); }
PackSet<bf16_t, float> avx2_pack_bf16() {
  return make_mixed_pack<TraitsF256, LoadBf16x8>(Isa::kAvx2);
}
PackSet<fp16_t, float> avx2_pack_f16() {
  return make_mixed_pack<TraitsF256, LoadF16x8>(Isa::kAvx2);
}

}  // namespace ftgemm
