// AVX-512 packing & checksum engine (512-bit streams, opmask tails).
//
// See pack_simd_common.hpp for the shared implementation and the
// bit-identity / summation-order contract.  NoTrans operands stream with
// full zmm vectors; the Trans register-tile transposes use the shared
// 256-bit tiles (transposes are shuffle-port bound, so wider vectors buy
// little there, and the 256-bit ops are legal under AVX-512VL).
//
// This translation unit is compiled with the AVX-512 flag set regardless of
// the build host; runtime dispatch (get_pack_set via select_isa) guarantees
// these entry points are only called on capable CPUs.
#include <immintrin.h>

#include "kernels/pack_simd_common.hpp"

namespace ftgemm {

namespace {

struct TraitsD512 {
  using T = double;
  using Vec = __m512d;
  static constexpr index_t W = 8;
  static Vec zero() { return _mm512_setzero_pd(); }
  static Vec set1(T x) { return _mm512_set1_pd(x); }
  static Vec loadu(const T* p) { return _mm512_loadu_pd(p); }
  static void storeu(T* p, Vec v) { _mm512_storeu_pd(p, v); }
  static __mmask8 mask(index_t n) {
    return static_cast<__mmask8>((1u << n) - 1u);
  }
  static Vec maskload(const T* p, index_t n) {
    return _mm512_maskz_loadu_pd(mask(n), p);
  }
  static void maskstore(T* p, index_t n, Vec v) {
    _mm512_mask_storeu_pd(p, mask(n), v);
  }
  static Vec add(Vec a, Vec b) { return _mm512_add_pd(a, b); }
  static Vec mul(Vec a, Vec b) { return _mm512_mul_pd(a, b); }
  static Vec fmadd(Vec a, Vec b, Vec c) { return _mm512_fmadd_pd(a, b, c); }
  static Vec max(Vec a, Vec b) { return _mm512_max_pd(a, b); }
  static Vec abs(Vec v) { return _mm512_abs_pd(v); }
  static T hsum(Vec v) { return _mm512_reduce_add_pd(v); }
  static T hmax(Vec v) { return _mm512_reduce_max_pd(v); }
};

struct TraitsF512 {
  using T = float;
  using Vec = __m512;
  static constexpr index_t W = 16;
  static Vec zero() { return _mm512_setzero_ps(); }
  static Vec set1(T x) { return _mm512_set1_ps(x); }
  static Vec loadu(const T* p) { return _mm512_loadu_ps(p); }
  static void storeu(T* p, Vec v) { _mm512_storeu_ps(p, v); }
  static __mmask16 mask(index_t n) {
    return static_cast<__mmask16>((1u << n) - 1u);
  }
  static Vec maskload(const T* p, index_t n) {
    return _mm512_maskz_loadu_ps(mask(n), p);
  }
  static void maskstore(T* p, index_t n, Vec v) {
    _mm512_mask_storeu_ps(p, mask(n), v);
  }
  static Vec add(Vec a, Vec b) { return _mm512_add_ps(a, b); }
  static Vec mul(Vec a, Vec b) { return _mm512_mul_ps(a, b); }
  static Vec fmadd(Vec a, Vec b, Vec c) { return _mm512_fmadd_ps(a, b, c); }
  static Vec max(Vec a, Vec b) { return _mm512_max_ps(a, b); }
  static Vec abs(Vec v) { return _mm512_abs_ps(v); }
  static T hsum(Vec v) { return _mm512_reduce_add_ps(v); }
  static T hmax(Vec v) { return _mm512_reduce_max_ps(v); }
};

// Widening loaders for the mixed-precision packers (storage -> fp32
// vectors).  16-bit opmask loads (AVX-512BW+VL, both in this TU's flag set)
// make the ragged tails branch-free; the 256-bit load8/load4 forms feed the
// shared register-tile transposes.

struct LoadBf16x16 {
  using S = bf16_t;
  static __m512 widen(__m256i h) {
    return _mm512_castsi512_ps(
        _mm512_slli_epi32(_mm512_cvtepu16_epi32(h), 16));
  }
  static __m512 loadu(const S* p) {
    return widen(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
  }
  static __m512 maskload(const S* p, index_t n) {
    const __mmask16 m = static_cast<__mmask16>((1u << n) - 1u);
    return widen(_mm256_maskz_loadu_epi16(m, p));
  }
  static __m256 load8(const S* p) {
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16));
  }
  static __m128 load4(const S* p) {
    const __m128i h = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
    return _mm_castsi128_ps(_mm_slli_epi32(_mm_cvtepu16_epi32(h), 16));
  }
};

struct LoadF16x16 {
  using S = fp16_t;
  static __m512 loadu(const S* p) {
    return _mm512_cvtph_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
  }
  static __m512 maskload(const S* p, index_t n) {
    const __mmask16 m = static_cast<__mmask16>((1u << n) - 1u);
    // Masked-out lanes are zero fp16 bits, which widen to +0.0f.
    return _mm512_cvtph_ps(_mm256_maskz_loadu_epi16(m, p));
  }
  static __m256 load8(const S* p) {
    return _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static __m128 load4(const S* p) {
    return _mm_cvtph_ps(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
  }
};

}  // namespace

PackSet<double> avx512_pack_f64() {
  return make_simd_pack<TraitsD512>(Isa::kAvx512);
}
PackSet<float> avx512_pack_f32() {
  return make_simd_pack<TraitsF512>(Isa::kAvx512);
}
PackSet<bf16_t, float> avx512_pack_bf16() {
  return make_mixed_pack<TraitsF512, LoadBf16x16>(Isa::kAvx512);
}
PackSet<fp16_t, float> avx512_pack_f16() {
  return make_mixed_pack<TraitsF512, LoadF16x16>(Isa::kAvx512);
}

}  // namespace ftgemm
