// AVX-512 int8 micro-kernels: native VNNI `vpdpbusd` dot product
// (16 x 16 register tile, one zmm accumulator per C column).
//
// `vpdpbusd acc, a, b` multiplies 64 unsigned bytes of `a` by 64 signed
// bytes of `b` and adds each adjacent quad's four products into the
// corresponding i32 lane of `acc` — WITHOUT intermediate saturation, unlike
// the AVX2 `vpmaddubsw` route.  The packed quad layout of kernel_int8.hpp
// maps directly onto it: one 64-byte load of A covers all 16 rows of a
// k-quad, one 4-byte broadcast of B covers a column's quad, so each quad
// costs 16 dpbusd + 1 load + 16 broadcasts for 1024 multiply-accumulates.
//
// AVX-512 VNNI is a separate CPUID feature from the AVX-512 F/DQ/BW/VL
// baseline this ISA tier requires (Cascade Lake has it, Skylake-SP does
// not), so the VNNI kernels are compiled with a *function-level* target
// attribute rather than TU-wide flags, and avx512_kernels_i8() falls back
// to the AVX2 emulation at runtime when cpu_features().avx512vnni is false
// — an Isa::kAvx512 plan is therefore valid on every AVX-512 machine, and
// results are identical either way (exact integer arithmetic).
#include <immintrin.h>

#include <cstring>

#include "arch/cpu_features.hpp"
#include "kernels/microkernel.hpp"

namespace ftgemm {

namespace {

constexpr index_t kMrAvx512I8 = 16;
constexpr index_t kNrAvx512I8 = 16;

#define FTGEMM_TARGET_VNNI \
  __attribute__((target("avx512f,avx512bw,avx512dq,avx512vl,avx512vnni")))

template <bool FT>
FTGEMM_TARGET_VNNI void kernel_i8_vnni(index_t kc, const std::uint8_t* a,
                                       const std::int8_t* b, std::int32_t* c,
                                       index_t ldc, std::int64_t* cr_ref,
                                       std::int64_t* cc_ref) {
  const index_t kq = i8_kq(kc);
  __m512i acc[kNrAvx512I8];
#pragma GCC unroll 16
  for (index_t j = 0; j < kNrAvx512I8; ++j) acc[j] = _mm512_setzero_si512();
  for (index_t q = 0; q < kq; ++q) {
    const __m512i av = _mm512_loadu_si512(a + q * (kMrAvx512I8 * kI8KQuad));
    const std::int8_t* bq = b + q * (kNrAvx512I8 * kI8KQuad);
#pragma GCC unroll 16
    for (index_t j = 0; j < kNrAvx512I8; ++j) {
      std::int32_t bw;
      std::memcpy(&bw, bq + j * kI8KQuad, sizeof(bw));
      acc[j] = _mm512_dpbusd_epi32(acc[j], av, _mm512_set1_epi32(bw));
    }
  }
  if constexpr (FT) {
    // Exact int64 reduction of the *updated* C values (integer adds are
    // freely reassociable, so the references reduce from the finished
    // column vectors instead of mirroring the k-loop; cr_lanes = 1) —
    // every element is updated once per rank-KC panel, so the per-panel
    // references total to exact row/column sums of the current accumulator.
    __m512i cc_lo =
        _mm512_loadu_si512(reinterpret_cast<const void*>(cc_ref));
    __m512i cc_hi =
        _mm512_loadu_si512(reinterpret_cast<const void*>(cc_ref + 8));
    for (index_t j = 0; j < kNrAvx512I8; ++j) {
      const __m512i cv = _mm512_loadu_si512(c + j * ldc);
      const __m512i nv = _mm512_add_epi32(cv, acc[j]);
      _mm512_storeu_si512(c + j * ldc, nv);
      const __m512i w_lo = _mm512_cvtepi32_epi64(_mm512_castsi512_si256(nv));
      const __m512i w_hi =
          _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(nv, 1));
      cc_lo = _mm512_add_epi64(cc_lo, w_lo);
      cc_hi = _mm512_add_epi64(cc_hi, w_hi);
      cr_ref[j] += _mm512_reduce_add_epi64(_mm512_add_epi64(w_lo, w_hi));
    }
    _mm512_storeu_si512(reinterpret_cast<void*>(cc_ref), cc_lo);
    _mm512_storeu_si512(reinterpret_cast<void*>(cc_ref + 8), cc_hi);
  } else {
    for (index_t j = 0; j < kNrAvx512I8; ++j) {
      __m512i cv = _mm512_loadu_si512(c + j * ldc);
      _mm512_storeu_si512(c + j * ldc, _mm512_add_epi32(cv, acc[j]));
    }
  }
}

FTGEMM_TARGET_VNNI void kernel_i8_vnni_base(index_t kc, const std::uint8_t* a,
                                            const std::int8_t* b,
                                            std::int32_t* c, index_t ldc) {
  kernel_i8_vnni<false>(kc, a, b, c, ldc, nullptr, nullptr);
}

FTGEMM_TARGET_VNNI void kernel_i8_vnni_ft(index_t kc, const std::uint8_t* a,
                                          const std::int8_t* b,
                                          std::int32_t* c, index_t ldc,
                                          std::int64_t* cr_ref,
                                          std::int64_t* cc_ref) {
  kernel_i8_vnni<true>(kc, a, b, c, ldc, cr_ref, cc_ref);
}

#undef FTGEMM_TARGET_VNNI

}  // namespace

KernelSet<std::int8_t, std::int32_t> avx512_kernels_i8() {
  if (!cpu_features().avx512vnni) {
    // AVX-512 baseline without VNNI: the exact AVX2 emulation is the best
    // non-saturating integer dot available (see the TU header).
    KernelSet<std::int8_t, std::int32_t> ks = avx2_kernels_i8();
    ks.isa = Isa::kAvx512;
    ks.pack.isa = Isa::kAvx512;
    return ks;
  }
  KernelSet<std::int8_t, std::int32_t> ks;
  ks.base = &kernel_i8_vnni_base;
  ks.ft = &kernel_i8_vnni_ft;
  ks.mr = kMrAvx512I8;
  ks.nr = kNrAvx512I8;
  ks.cr_lanes = 1;
  ks.isa = Isa::kAvx512;
  // Every AVX-512 machine has AVX2, so the accelerated FT checksum passes
  // are always usable here (identical packed bytes, bit-identical sums).
  ks.pack = avx2_pack_i8();
  ks.pack.isa = Isa::kAvx512;
  return ks;
}

}  // namespace ftgemm
