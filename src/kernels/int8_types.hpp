// Quantization support types for the int8 GEMM path.
//
// The int8 entry points compute, in exact integer arithmetic,
//
//   S[i,j] = sum_k (Aq[i,k] - za) * (Bq[k,j] - zb)          (int32)
//
// over s8 operands with per-tensor zero points, then dequantize once at the
// C write-back:
//
//   C[i,j] = float( alpha*sa*sb * S[i,j] + beta * C[i,j] )  (fp64 epilogue,
//                                                            one fp32 round)
//
// The kernels never see the zero points: A is packed *biased* (u8 = s8 +
// 128, the VNNI u8 x s8 operand convention) and the kernels accumulate the
// biased product P = Au8 * Bq.  S is recovered in the epilogue from P and
// two cheap side vectors (per-row biased A sums, per-column B sums):
//
//   S[i,j] = P[i,j] - zb*arow[i] - (128+za)*bcol[j] + k*(128+za)*zb.
//
// Everything up to the epilogue is exact int32/int64 arithmetic, which is
// what makes the ABFT contract on this path an *exactness* argument
// (docs/DESIGN.md §11) instead of a rounding bound.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace ftgemm {

/// Per-tensor quantization parameters of one int8 GEMM call:
/// real_A = scale_a * (Aq - zero_a), real_B = scale_b * (Bq - zero_b).
struct QuantParams {
  float scale_a = 1.0f;
  float scale_b = 1.0f;
  std::int32_t zero_a = 0;  ///< zero point of A, s8 domain [-128, 127]
  std::int32_t zero_b = 0;  ///< zero point of B, s8 domain [-128, 127]

  [[nodiscard]] bool operator==(const QuantParams& o) const {
    return scale_a == o.scale_a && scale_b == o.scale_b &&
           zero_a == o.zero_a && zero_b == o.zero_b;
  }
};

/// Quantize one value: round-to-nearest-even, clamped to the s8 range.
inline std::int8_t quantize_i8(float v, float scale, std::int32_t zero) {
  const long q = std::lrintf(v / scale) + long(zero);
  return std::int8_t(std::clamp<long>(q, -128, 127));
}

/// Inverse of quantize_i8 (exact: the product fits fp32).
inline float dequantize_i8(std::int8_t q, float scale, std::int32_t zero) {
  return scale * float(std::int32_t(q) - zero);
}

/// Bias an s8 value into the unsigned VNNI operand domain: u8 = s8 + 128
/// (two's complement makes this a sign-bit flip).
inline std::uint8_t bias_i8(std::int8_t v) {
  return std::uint8_t(std::uint8_t(v) ^ 0x80u);
}

/// Deepest K the int32 accumulators can never wrap at: each biased product
/// is in [-255*128, 255*127], so |P| <= k * 32640 and k <= (2^31 - 1) /
/// 32640 = 65793 keeps every accumulator strictly inside int32.  The int8
/// entry points reject deeper problems (invalid_args) — the exactness
/// contract of DESIGN.md §11 depends on it.
inline constexpr std::int64_t kI8MaxDepth = 65793;

}  // namespace ftgemm
