// AVX2 int8 micro-kernels: u8 x s8 dot emulation via widen-to-i16 +
// `vpmaddwd` (4 x 8 register tile).
//
// Why not `vpmaddubsw`: it is the obvious u8 x s8 instruction, but its
// adjacent-pair sum SATURATES at i16 (two products can reach 2 * 255 * 128 =
// 65280 > 32767).  A saturated lane would silently corrupt both the result
// and the fused reference checksums — the exactness contract of DESIGN.md
// §11 forbids it.  Zero-extending A (u8 -> i16) and sign-extending B
// (s8 -> i16) keeps every product exact in i32, and `vpmaddwd`'s pair sum
// is a full i32 add: |p0 + p1| <= 65280 never wraps.
//
// Operands arrive in the shared quad-grouped layout of kernel_int8.hpp
// (packed by the portable packers in kernel_int8_scalar.cpp); this TU only
// contains kernels.  Compiled with -mavx2 -mfma like the other AVX2 TUs;
// reached only through runtime dispatch (select_isa).
#include <immintrin.h>

#include <cstring>

#include "kernels/microkernel.hpp"

namespace ftgemm {

namespace {

constexpr index_t kMrAvx2I8 = 4;
constexpr index_t kNrAvx2I8 = 8;

// Per k-quad: one 32-byte load covers B's 8 columns (8 x 4 s8); each row of
// A contributes a 4 x u8 quad broadcast as an i16 quadruple.  madd yields,
// per column, two i32 pair-partials that are combined at store time — an
// exact reassociation (integer adds), unlike the float kernels where the
// FT epilogue must mirror the kernel's exact summation order.
template <bool FT>
__attribute__((target("avx2,fma"))) void kernel_i8_avx2(
    index_t kc, const std::uint8_t* a, const std::int8_t* b, std::int32_t* c,
    index_t ldc, std::int64_t* cr_ref, std::int64_t* cc_ref) {
  const index_t kq = i8_kq(kc);
  // acc_lo[i]: columns 0..3 of row i (2 pair-partials each);
  // acc_hi[i]: columns 4..7.
  __m256i acc_lo[kMrAvx2I8], acc_hi[kMrAvx2I8];
#pragma GCC unroll 4
  for (index_t i = 0; i < kMrAvx2I8; ++i) {
    acc_lo[i] = _mm256_setzero_si256();
    acc_hi[i] = _mm256_setzero_si256();
  }
  for (index_t q = 0; q < kq; ++q) {
    const __m256i braw = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + q * (kNrAvx2I8 * kI8KQuad)));
    const __m256i b_lo =
        _mm256_cvtepi8_epi16(_mm256_castsi256_si128(braw));  // cols 0..3
    const __m256i b_hi =
        _mm256_cvtepi8_epi16(_mm256_extracti128_si256(braw, 1));  // cols 4..7
    const std::uint8_t* aq = a + q * (kMrAvx2I8 * kI8KQuad);
#pragma GCC unroll 4
    for (index_t i = 0; i < kMrAvx2I8; ++i) {
      std::uint32_t aw;
      std::memcpy(&aw, aq + i * kI8KQuad, sizeof(aw));
      const __m128i a16 =
          _mm_cvtepu8_epi16(_mm_cvtsi32_si128(int(aw)));  // 4 x i16
      const __m256i abc = _mm256_broadcastq_epi64(a16);
      acc_lo[i] =
          _mm256_add_epi32(acc_lo[i], _mm256_madd_epi16(abc, b_lo));
      acc_hi[i] =
          _mm256_add_epi32(acc_hi[i], _mm256_madd_epi16(abc, b_hi));
    }
  }
  // Merge: combine each column's two pair-partials, update C, and (FT)
  // reduce the *updated* C values into the int64 references — every element
  // is updated once per rank-KC panel, so the per-panel references total to
  // exact row/column sums of the current accumulator.
  alignas(32) std::int32_t lo[8], hi[8];
  std::int64_t colsum[kNrAvx2I8];
  if constexpr (FT) {
    for (index_t j = 0; j < kNrAvx2I8; ++j) colsum[j] = 0;
  }
  for (index_t i = 0; i < kMrAvx2I8; ++i) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lo), acc_lo[i]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(hi), acc_hi[i]);
    std::int64_t rowsum = 0;
    for (index_t j = 0; j < 4; ++j) {
      c[i + j * ldc] += lo[2 * j] + lo[2 * j + 1];
      c[i + (j + 4) * ldc] += hi[2 * j] + hi[2 * j + 1];
      if constexpr (FT) {
        const std::int32_t vl = c[i + j * ldc];
        const std::int32_t vh = c[i + (j + 4) * ldc];
        rowsum += std::int64_t(vl) + std::int64_t(vh);
        colsum[j] += vl;
        colsum[j + 4] += vh;
      }
    }
    if constexpr (FT) cc_ref[i] += rowsum;
  }
  if constexpr (FT) {
    for (index_t j = 0; j < kNrAvx2I8; ++j) cr_ref[j] += colsum[j];
  }
}

void kernel_i8_avx2_base(index_t kc, const std::uint8_t* a,
                         const std::int8_t* b, std::int32_t* c, index_t ldc) {
  kernel_i8_avx2<false>(kc, a, b, c, ldc, nullptr, nullptr);
}

void kernel_i8_avx2_ft(index_t kc, const std::uint8_t* a, const std::int8_t* b,
                       std::int32_t* c, index_t ldc, std::int64_t* cr_ref,
                       std::int64_t* cc_ref) {
  kernel_i8_avx2<true>(kc, a, b, c, ldc, cr_ref, cc_ref);
}

}  // namespace

KernelSet<std::int8_t, std::int32_t> avx2_kernels_i8() {
  KernelSet<std::int8_t, std::int32_t> ks;
  ks.base = &kernel_i8_avx2_base;
  ks.ft = &kernel_i8_avx2_ft;
  ks.mr = kMrAvx2I8;
  ks.nr = kNrAvx2I8;
  ks.cr_lanes = 1;
  ks.isa = Isa::kAvx2;
  ks.pack = avx2_pack_i8();
  return ks;
}

}  // namespace ftgemm
