// Micro-kernel interface and dispatch.
//
// A micro-kernel performs the register-resident rank-KC update of one
// MR x NR tile of C:
//
//     C_tile += Apanel(MR x kc) * Bpanel(kc x NR)
//
// where Apanel/Bpanel are packed contiguously (see packing.hpp).  Two
// variants exist per (ISA, element type):
//
//  - base:  the plain update (used by the "Ori" GEMM and for edge tiles),
//  - ft:    the fused-ABFT update (§2.2): after the k-loop the *final* C
//           values are still in registers, so the kernel additionally
//           accumulates the reference checksums
//              cr_ref[j] += sum_i C_tile(i, j)   (column sums)
//              cc_ref[i] += sum_j C_tile(i, j)   (row sums)
//           at register level, exactly the "reuse the computed C elements at
//           register level" optimization the paper fuses into the assembly.
//
// To keep the FT epilogue free of horizontal-reduction latency chains, the
// SIMD kernels accumulate the column sums as *vector-wide lane partials*:
// cr_ref is laid out with `cr_lanes` slots per column, the kernel performs a
// single vector add per column, and the lanes are summed once per panel at
// verification time (O(N) instead of O(N * K/KC * M/MR) horizontal sums).
#pragma once

#include <cstdint>

#include "arch/isa.hpp"
#include "kernels/half_types.hpp"

namespace ftgemm {

using index_t = std::int64_t;

/// Upper bounds over all kernel sets (register-tile shapes), shared by the
/// macro-kernel scratch tile and the packing engine's lane-accumulator
/// blocks.
inline constexpr index_t kMaxMr = 32;
inline constexpr index_t kMaxNr = 8;

/// Read-only view of a matrix operand with an optional transpose, so the
/// packing/encode code is the single place where Trans is resolved.  The
/// stride accessors resolve the transpose *once*; inner loops index
/// `data[i * row_stride() + j * col_stride()]` and stay branch-free.
template <typename T>
struct OperandView {
  const T* data;
  index_t ld;
  bool trans;

  /// Element (i, j) of the *effective* (post-transpose) operand.
  [[nodiscard]] T at(index_t i, index_t j) const {
    return trans ? data[j + i * ld] : data[i + j * ld];
  }
  /// Storage distance between effective rows i and i+1 (fixed j).
  [[nodiscard]] index_t row_stride() const { return trans ? ld : 1; }
  /// Storage distance between effective columns j and j+1 (fixed i).
  [[nodiscard]] index_t col_stride() const { return trans ? 1 : ld; }
  /// Address of effective element (i, j).
  [[nodiscard]] const T* ptr(index_t i, index_t j) const {
    return data + i * row_stride() + j * col_stride();
  }
};

template <typename T>
using MicroKernelBase = void (*)(index_t kc, const T* a, const T* b, T* c,
                                 index_t ldc);

template <typename T>
using MicroKernelFt = void (*)(index_t kc, const T* a, const T* b, T* c,
                               index_t ldc, T* cr_ref, T* cc_ref);

// ---------------------------------------------------------------------------
// Packing & checksum-encode engine (the O(n^2)-per-panel layer).
//
// Each function pointer mirrors one of the scalar templates in
// kernels/packing.hpp / abft/checksum.hpp (which remain the portable
// fallback and the test oracle).  SIMD implementations reorder the checksum
// summations into vector lanes; packed panels are bit-identical to the
// scalar path, checksum sums agree within the ToleranceModel bound (see
// docs/DESIGN.md, "SIMD packing & checksum engine").
//
// The engine is generalized over (StorageT, ComputeT): operands are *read*
// in StorageT, while packed panels, scalars, and every checksum are carried
// in ComputeT.  For the classic paths the two coincide (the one-parameter
// spellings below mean <T, T> and preserve every existing call site); the
// mixed paths (bf16/fp16 storage, fp32 compute) widen each element exactly
// once, inside the pack load, fused with the same checksum FMA lanes — no
// separate conversion pass ever materializes a widened copy of the operand
// (DESIGN.md §10).
// ---------------------------------------------------------------------------

template <typename StorageT, typename ComputeT = StorageT>
using PackAFn = void (*)(const OperandView<StorageT>& a, index_t m0,
                         index_t k0, index_t mlen, index_t klen, index_t mr,
                         ComputeT alpha, ComputeT* dst);

template <typename StorageT, typename ComputeT = StorageT>
using PackAFtFn = void (*)(const OperandView<StorageT>& a, index_t m0,
                           index_t k0, index_t mlen, index_t klen, index_t mr,
                           ComputeT alpha, ComputeT* dst, const ComputeT* bc,
                           ComputeT* cc);

template <typename StorageT, typename ComputeT = StorageT>
using PackBFn = void (*)(const OperandView<StorageT>& b, index_t k0,
                         index_t j0, index_t klen, index_t nlen, index_t nr,
                         ComputeT* dst);

template <typename StorageT, typename ComputeT = StorageT>
using PackBFtFn = void (*)(const OperandView<StorageT>& b, index_t k0,
                           index_t j0, index_t klen, index_t nlen, index_t nr,
                           ComputeT* dst, const ComputeT* ar, ComputeT* cr);

template <typename T>
using ReduceBcFn = double (*)(const T* b_packed, index_t klen, index_t nlen,
                              index_t nr, index_t kk0, index_t kklen, T* bc,
                              double amax_in);

template <typename T>
using ScaleEncodeCFn = double (*)(T* c, index_t ldc, index_t i0, index_t ilen,
                                  index_t n, T beta, T* cc, T* cr_part);

template <typename StorageT, typename ComputeT = StorageT>
using EncodeArFn = double (*)(const OperandView<StorageT>& a, index_t i0,
                              index_t ilen, index_t k, ComputeT alpha,
                              ComputeT* ar_part);

/// Replay of pack_a_ft's fused Cc update from an already-packed panel:
///   cc[ii] += sum_kk packed(ii, kk) * bc[kk]
/// with the SAME accumulation structure (per-ISA, per-trans) pack_a_ft would
/// have used while packing — so a cache-hit on a resident pre-packed A panel
/// reproduces the cold path's Cc bit-for-bit.  `trans` is the original
/// operand's transpose flag (the packed bytes are layout-free, but the
/// Trans/NoTrans packers carry different accumulator shapes).  Operates on
/// the ComputeT panel, so mixed paths replay over the widened panel.
template <typename T>
using EncodeCcFn = void (*)(const T* packed, bool trans, index_t mlen,
                            index_t klen, index_t mr, const T* bc, T* cc);

/// Alpha-free permutation pack of an A block into MR-tile panel layout,
/// kept in StorageT (no widening, no scaling).  The resident-operand cache
/// stores narrow weights this way — half the byte footprint of a widened
/// panel — and widens on hit via WidenAFn.
template <typename StorageT>
using PackARawFn = void (*)(const OperandView<StorageT>& a, index_t m0,
                            index_t k0, index_t mlen, index_t klen, index_t mr,
                            StorageT* dst);

/// Widen + alpha-scale a raw StorageT panel (from PackARawFn) into the
/// ComputeT panel the kernels consume.  Element values are bit-identical to
/// what PackAFn would have produced from the unpacked operand (same widen,
/// same single multiply); padding rows are written as ComputeT(0) exactly
/// like the cold pack.
template <typename StorageT, typename ComputeT>
using WidenAFn = void (*)(const StorageT* raw, index_t mlen, index_t klen,
                          index_t mr, ComputeT alpha, ComputeT* dst);

/// The ISA-dispatched pack/reduce/encode family.  Obtained via
/// get_pack_set(); a KernelSet returned by get_kernel_set() carries the
/// matching PackSet, so executors reach both through one dispatch point.
template <typename StorageT, typename ComputeT = StorageT>
struct PackSet {
  PackAFn<StorageT, ComputeT> pack_a = nullptr;
  PackAFtFn<StorageT, ComputeT> pack_a_ft = nullptr;
  PackBFn<StorageT, ComputeT> pack_b = nullptr;
  PackBFtFn<StorageT, ComputeT> pack_b_ft = nullptr;
  ReduceBcFn<ComputeT> reduce_bc = nullptr;
  ScaleEncodeCFn<ComputeT> scale_encode_c = nullptr;
  EncodeArFn<StorageT, ComputeT> encode_ar = nullptr;
  EncodeCcFn<ComputeT> encode_cc = nullptr;
  /// Raw-storage panel pack + widen-on-hit pair for the resident-operand
  /// cache (see operand_cache.hpp).
  PackARawFn<StorageT> pack_a_raw = nullptr;
  WidenAFn<StorageT, ComputeT> widen_a = nullptr;
  Isa isa = Isa::kScalar;
};

/// The kernels plus their register tile shape.  Micro-kernels always run in
/// ComputeT (narrow storage never reaches a multiplier); only the pack
/// engine sees StorageT.
template <typename StorageT, typename ComputeT = StorageT>
struct KernelSet {
  MicroKernelBase<ComputeT> base = nullptr;
  MicroKernelFt<ComputeT> ft = nullptr;
  index_t mr = 0;
  index_t nr = 0;
  /// Lane partials per cr_ref column (SIMD width of the FT epilogue).
  index_t cr_lanes = 1;
  Isa isa = Isa::kScalar;
  /// Pack/reduce/encode routines matching `isa` (see get_pack_set).
  PackSet<StorageT, ComputeT> pack;
};

/// Dispatch: returns the kernel set for the requested ISA (which callers
/// obtain from select_isa(), already clamped to hardware capability).  The
/// returned set's `pack` member is filled with get_pack_set(isa).  Mixed
/// instantiations reuse the ComputeT micro-kernels (same register tiles,
/// same mr/nr/cr_lanes) and swap in the widening pack engine.
template <typename StorageT, typename ComputeT = StorageT>
KernelSet<StorageT, ComputeT> get_kernel_set(Isa isa);

/// Dispatch for the packing & checksum engine alone (tests and the packing
/// bench compare ISAs side by side without dragging in micro-kernels).
template <typename StorageT, typename ComputeT = StorageT>
PackSet<StorageT, ComputeT> get_pack_set(Isa isa);

// Per-ISA pack/encode accessors implemented in the ISA-specific translation
// units (pack_scalar.cpp / pack_avx2.cpp / pack_avx512.cpp).
PackSet<double> scalar_pack_f64();
PackSet<float> scalar_pack_f32();
PackSet<double> avx2_pack_f64();
PackSet<float> avx2_pack_f32();
PackSet<double> avx512_pack_f64();
PackSet<float> avx512_pack_f32();

// Mixed-precision (narrow storage, fp32 compute) pack engines.  The scalar
// sets live in the flag-free TU and are the portable fallback; the SIMD
// sets widen inside the pack load (bf16: integer shift; fp16: VCVTPH2PS)
// and share the fp32 accumulator structure, so their encode_cc/reduce_bc/
// scale_encode_c members ARE the fp32 implementations.
PackSet<bf16_t, float> scalar_pack_bf16();
PackSet<fp16_t, float> scalar_pack_f16();
PackSet<bf16_t, float> avx2_pack_bf16();
PackSet<fp16_t, float> avx2_pack_f16();
PackSet<bf16_t, float> avx512_pack_bf16();
PackSet<fp16_t, float> avx512_pack_f16();

// Per-ISA accessors implemented in the ISA-specific translation units.
KernelSet<double> avx512_kernels_f64();
/// Alternative AVX-512 f64 register-tile heights (8/16/24 rows) for the
/// kernel-shape ablation; FTGEMM_KERNEL_MR selects one globally.
KernelSet<double> avx512_kernels_f64_mr(index_t mr);
KernelSet<float> avx512_kernels_f32();
KernelSet<double> avx2_kernels_f64();
KernelSet<float> avx2_kernels_f32();
KernelSet<double> scalar_kernels_f64();
KernelSet<float> scalar_kernels_f32();

}  // namespace ftgemm

// The int8 quantized path fully specializes KernelSet/PackSet (8-bit packed
// panels break the "panels are ComputeT" signatures above).  Included here —
// and only here — so the specializations are visible wherever the primary
// templates are, keeping any <int8_t, int32_t> use ODR-consistent.
#include "kernels/kernel_int8.hpp"  // IWYU pragma: keep
