// Micro-kernel interface and dispatch.
//
// A micro-kernel performs the register-resident rank-KC update of one
// MR x NR tile of C:
//
//     C_tile += Apanel(MR x kc) * Bpanel(kc x NR)
//
// where Apanel/Bpanel are packed contiguously (see packing.hpp).  Two
// variants exist per (ISA, element type):
//
//  - base:  the plain update (used by the "Ori" GEMM and for edge tiles),
//  - ft:    the fused-ABFT update (§2.2): after the k-loop the *final* C
//           values are still in registers, so the kernel additionally
//           accumulates the reference checksums
//              cr_ref[j] += sum_i C_tile(i, j)   (column sums)
//              cc_ref[i] += sum_j C_tile(i, j)   (row sums)
//           at register level, exactly the "reuse the computed C elements at
//           register level" optimization the paper fuses into the assembly.
//
// To keep the FT epilogue free of horizontal-reduction latency chains, the
// SIMD kernels accumulate the column sums as *vector-wide lane partials*:
// cr_ref is laid out with `cr_lanes` slots per column, the kernel performs a
// single vector add per column, and the lanes are summed once per panel at
// verification time (O(N) instead of O(N * K/KC * M/MR) horizontal sums).
#pragma once

#include <cstdint>

#include "arch/isa.hpp"

namespace ftgemm {

using index_t = std::int64_t;

template <typename T>
using MicroKernelBase = void (*)(index_t kc, const T* a, const T* b, T* c,
                                 index_t ldc);

template <typename T>
using MicroKernelFt = void (*)(index_t kc, const T* a, const T* b, T* c,
                               index_t ldc, T* cr_ref, T* cc_ref);

/// The kernels plus their register tile shape.
template <typename T>
struct KernelSet {
  MicroKernelBase<T> base = nullptr;
  MicroKernelFt<T> ft = nullptr;
  index_t mr = 0;
  index_t nr = 0;
  /// Lane partials per cr_ref column (SIMD width of the FT epilogue).
  index_t cr_lanes = 1;
  Isa isa = Isa::kScalar;
};

/// Dispatch: returns the kernel set for the requested ISA (which callers
/// obtain from select_isa(), already clamped to hardware capability).
template <typename T>
KernelSet<T> get_kernel_set(Isa isa);

// Per-ISA accessors implemented in the ISA-specific translation units.
KernelSet<double> avx512_kernels_f64();
/// Alternative AVX-512 f64 register-tile heights (8/16/24 rows) for the
/// kernel-shape ablation; FTGEMM_KERNEL_MR selects one globally.
KernelSet<double> avx512_kernels_f64_mr(index_t mr);
KernelSet<float> avx512_kernels_f32();
KernelSet<double> avx2_kernels_f64();
KernelSet<float> avx2_kernels_f32();
KernelSet<double> scalar_kernels_f64();
KernelSet<float> scalar_kernels_f32();

}  // namespace ftgemm
