// Scalar PackSet + ISA dispatch for the packing & checksum engine.
//
// The scalar entries simply take the addresses of the portable templates in
// kernels/packing.hpp / abft/checksum.hpp.  This translation unit is
// compiled WITHOUT any SIMD flags on purpose: the template instantiations
// bound into the scalar set here are the ones the fallback path executes on
// machines without AVX2, so they must never contain AVX encodings.  (The
// SIMD translation units reach the scalar fallback through scalar_pack_*()
// function pointers instead of instantiating the templates themselves,
// which would let the linker pick an AVX-compiled copy for everyone.)
//
// The mixed-precision sets (bf16/fp16 storage, fp32 compute) bind the same
// templates at <S, C>: the widen happens inside the pack load via C(...),
// and the checksum-side members (reduce_bc / scale_encode_c / encode_cc)
// are the plain fp32 instantiations because they only ever see ComputeT
// panels (the checksum-in-accumulator-type rule, DESIGN.md §10).
#include <type_traits>

#include "abft/checksum.hpp"
#include "kernels/packing.hpp"

namespace ftgemm {

namespace {

template <typename S, typename C = S>
PackSet<S, C> make_scalar_pack() {
  PackSet<S, C> p;
  p.pack_a = &pack_a<S, C>;
  p.pack_a_ft = &pack_a_ft<S, C>;
  p.pack_b = &pack_b<S, C>;
  p.pack_b_ft = &pack_b_ft<S, C>;
  p.reduce_bc = &reduce_bc_from_panel<C>;
  p.scale_encode_c = &scale_encode_c<C>;
  p.encode_ar = &encode_ar_partial<S, C>;
  p.encode_cc = &encode_cc_from_panel<C>;
  p.pack_a_raw = &pack_a_raw<S>;
  p.widen_a = &widen_a_panel<S, C>;
  p.isa = Isa::kScalar;
  return p;
}

}  // namespace

PackSet<double> scalar_pack_f64() { return make_scalar_pack<double>(); }
PackSet<float> scalar_pack_f32() { return make_scalar_pack<float>(); }
PackSet<bf16_t, float> scalar_pack_bf16() {
  return make_scalar_pack<bf16_t, float>();
}
PackSet<fp16_t, float> scalar_pack_f16() {
  return make_scalar_pack<fp16_t, float>();
}

template <typename S, typename C>
PackSet<S, C> get_pack_set(Isa isa) {
  if constexpr (std::is_same_v<S, bf16_t>) {
    switch (isa) {
      case Isa::kAvx512: return avx512_pack_bf16();
      case Isa::kAvx2: return avx2_pack_bf16();
      case Isa::kScalar: return scalar_pack_bf16();
    }
    return scalar_pack_bf16();
  } else if constexpr (std::is_same_v<S, fp16_t>) {
    switch (isa) {
      case Isa::kAvx512: return avx512_pack_f16();
      case Isa::kAvx2: return avx2_pack_f16();
      case Isa::kScalar: return scalar_pack_f16();
    }
    return scalar_pack_f16();
  } else if constexpr (sizeof(S) == 8) {
    switch (isa) {
      case Isa::kAvx512: return avx512_pack_f64();
      case Isa::kAvx2: return avx2_pack_f64();
      case Isa::kScalar: return scalar_pack_f64();
    }
    return scalar_pack_f64();
  } else {
    switch (isa) {
      case Isa::kAvx512: return avx512_pack_f32();
      case Isa::kAvx2: return avx2_pack_f32();
      case Isa::kScalar: return scalar_pack_f32();
    }
    return scalar_pack_f32();
  }
}

template PackSet<double> get_pack_set<double, double>(Isa);
template PackSet<float> get_pack_set<float, float>(Isa);
template PackSet<bf16_t, float> get_pack_set<bf16_t, float>(Isa);
template PackSet<fp16_t, float> get_pack_set<fp16_t, float>(Isa);

}  // namespace ftgemm
