// Scalar PackSet + ISA dispatch for the packing & checksum engine.
//
// The scalar entries simply take the addresses of the portable templates in
// kernels/packing.hpp / abft/checksum.hpp.  This translation unit is
// compiled WITHOUT any SIMD flags on purpose: the template instantiations
// bound into the scalar set here are the ones the fallback path executes on
// machines without AVX2, so they must never contain AVX encodings.  (The
// SIMD translation units reach the scalar fallback through scalar_pack_*()
// function pointers instead of instantiating the templates themselves,
// which would let the linker pick an AVX-compiled copy for everyone.)
#include "abft/checksum.hpp"
#include "kernels/packing.hpp"

namespace ftgemm {

namespace {

template <typename T>
PackSet<T> make_scalar_pack() {
  PackSet<T> p;
  p.pack_a = &pack_a<T>;
  p.pack_a_ft = &pack_a_ft<T>;
  p.pack_b = &pack_b<T>;
  p.pack_b_ft = &pack_b_ft<T>;
  p.reduce_bc = &reduce_bc_from_panel<T>;
  p.scale_encode_c = &scale_encode_c<T>;
  p.encode_ar = &encode_ar_partial<T>;
  p.encode_cc = &encode_cc_from_panel<T>;
  p.isa = Isa::kScalar;
  return p;
}

}  // namespace

PackSet<double> scalar_pack_f64() { return make_scalar_pack<double>(); }
PackSet<float> scalar_pack_f32() { return make_scalar_pack<float>(); }

template <typename T>
PackSet<T> get_pack_set(Isa isa) {
  if constexpr (sizeof(T) == 8) {
    switch (isa) {
      case Isa::kAvx512: return avx512_pack_f64();
      case Isa::kAvx2: return avx2_pack_f64();
      case Isa::kScalar: return scalar_pack_f64();
    }
    return scalar_pack_f64();
  } else {
    switch (isa) {
      case Isa::kAvx512: return avx512_pack_f32();
      case Isa::kAvx2: return avx2_pack_f32();
      case Isa::kScalar: return scalar_pack_f32();
    }
    return scalar_pack_f32();
  }
}

template PackSet<double> get_pack_set<double>(Isa);
template PackSet<float> get_pack_set<float>(Isa);

}  // namespace ftgemm
