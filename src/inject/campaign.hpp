// Injection campaign driver (§3.2 methodology).
//
// Orchestrates a series of protected GEMMs under a configurable fault
// regime, verifies every result against a fault-free reference, and
// aggregates the statistics the paper's reliability argument rests on:
// injected vs detected vs corrected counts, residual-error distribution,
// and throughput with and without faults.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gemm.hpp"
#include "core/gemm_batched.hpp"
#include "inject/injectors.hpp"
#include "util/matrix.hpp"

namespace ftgemm {

struct CampaignConfig {
  index_t size = 512;            ///< square problem size
  int runs = 10;                 ///< protected multiplications to execute
  int errors_per_run = 20;       ///< paper's Fig 2(c) regime
  double magnitude = 2.0;        ///< injected delta scale
  std::uint64_t seed = 1234;
  int threads = 1;
  bool use_reliable = false;     ///< route through ft_dgemm_reliable
};

struct CampaignResult {
  std::size_t injected = 0;
  std::int64_t detected = 0;
  std::int64_t corrected = 0;
  int uncorrectable_runs = 0;  ///< runs whose final report was not clean
  int wrong_result_runs = 0;   ///< runs whose C differed from the reference
  int retries = 0;             ///< re-executions (reliable mode)
  double max_rel_error = 0.0;  ///< worst per-run result error vs reference
  double mean_gflops = 0.0;

  /// The reliability claim: every fault either corrected or flagged, and
  /// no run produced a silently wrong result.
  [[nodiscard]] bool reliable() const { return wrong_result_runs == 0; }
};

/// Execute the campaign.  Deterministic under config.seed.
CampaignResult run_injection_campaign(const CampaignConfig& config);

// ---------------------------------------------------------------------------
// Batched campaign: the serving-traffic regime.
// ---------------------------------------------------------------------------

/// Configuration for a campaign over batched FT-GEMM calls.  Each run
/// executes one ft_gemm_strided_batched over `batch` independent problems
/// and aims the injector at a *randomly chosen* batch member, emulating a
/// soft error striking one of many concurrent small multiplications.
struct BatchedCampaignConfig {
  index_t size = 128;        ///< square per-problem size
  index_t batch = 16;        ///< problems per batched call
  int runs = 10;             ///< batched calls to execute
  int errors_per_run = 4;    ///< faults injected into the targeted problem
  double magnitude = 2.0;    ///< injected delta scale
  std::uint64_t seed = 1234;
  int threads = 0;           ///< batch-wide worker cap (0 = all cores)
  BatchSchedule schedule = BatchSchedule::kAuto;
};

struct BatchedCampaignResult {
  std::size_t injected = 0;       ///< ground-truth corruptions applied
  std::int64_t detected = 0;
  std::int64_t corrected = 0;
  index_t faulty_problems = 0;    ///< batch members reporting detections
  index_t dirty_problems = 0;     ///< batch members left uncorrected
  int wrong_result_runs = 0;      ///< runs with a silent wrong member
  std::vector<index_t> targets;   ///< problem index targeted in each run
  double max_rel_error = 0.0;     ///< worst member error vs reference
  double mean_gflops = 0.0;       ///< whole-batch throughput per run

  /// Every fault either corrected or flagged; no silent corruption.
  [[nodiscard]] bool reliable() const { return wrong_result_runs == 0; }
};

/// Execute the batched campaign.  Deterministic under config.seed (including
/// the per-run choice of targeted batch member).
BatchedCampaignResult run_batched_injection_campaign(
    const BatchedCampaignConfig& config);

// ---------------------------------------------------------------------------
// Service campaign: faults striking requests in flight in the async
// serving layer (serve/service.hpp).
// ---------------------------------------------------------------------------

/// Configuration for a campaign over a live GemmService.  `requests`
/// same-shape FT requests are submitted asynchronously; every
/// `inject_every`-th request carries its *own* CountInjector in its
/// request-scoped Options (the injector protocol is per-call stateful, so
/// targeted in-flight requests each get a private instance — the
/// request-scoped Options seam exists for exactly this).  Untargeted
/// requests are left eligible for coalesced-into-batched routing, so the
/// campaign exercises injected traffic flowing *around* merged batches.
struct ServiceCampaignConfig {
  index_t size = 96;         ///< square per-request problem size
  int requests = 12;         ///< requests submitted to the service
  int inject_every = 3;      ///< target every N-th request (0 = none)
  int errors_per_target = 4; ///< faults injected into each targeted request
  double magnitude = 2.0;    ///< injected delta scale
  std::uint64_t seed = 1234;
  int threads = 1;           ///< per-request worker cap
  int max_inflight = 2;      ///< service concurrency
  std::size_t queue_capacity = 64;
};

struct ServiceCampaignResult {
  std::size_t injected = 0;        ///< ground-truth corruptions applied
  std::int64_t detected = 0;
  std::int64_t corrected = 0;
  int targeted_requests = 0;       ///< requests carrying an injector
  int coalesced_requests = 0;      ///< requests routed via merged batches
  int dirty_requests = 0;          ///< requests whose report was not clean
  int wrong_result_requests = 0;   ///< silent corruption (the failure mode)
  double max_rel_error = 0.0;      ///< worst request error vs reference

  /// Every fault either corrected or flagged; no silent corruption.
  [[nodiscard]] bool reliable() const { return wrong_result_requests == 0; }
};

/// Execute the service campaign.  Deterministic under config.seed: request
/// contents, injection schedules, and verification do not depend on the
/// dispatcher's interleaving (each request owns private operands and
/// injector).
ServiceCampaignResult run_service_injection_campaign(
    const ServiceCampaignConfig& config);

}  // namespace ftgemm
