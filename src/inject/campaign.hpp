// Injection campaign driver (§3.2 methodology).
//
// Orchestrates a series of protected GEMMs under a configurable fault
// regime, verifies every result against a fault-free reference, and
// aggregates the statistics the paper's reliability argument rests on:
// injected vs detected vs corrected counts, residual-error distribution,
// and throughput with and without faults.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gemm.hpp"
#include "inject/injectors.hpp"
#include "util/matrix.hpp"

namespace ftgemm {

struct CampaignConfig {
  index_t size = 512;            ///< square problem size
  int runs = 10;                 ///< protected multiplications to execute
  int errors_per_run = 20;       ///< paper's Fig 2(c) regime
  double magnitude = 2.0;        ///< injected delta scale
  std::uint64_t seed = 1234;
  int threads = 1;
  bool use_reliable = false;     ///< route through ft_dgemm_reliable
};

struct CampaignResult {
  std::size_t injected = 0;
  std::int64_t detected = 0;
  std::int64_t corrected = 0;
  int uncorrectable_runs = 0;  ///< runs whose final report was not clean
  int wrong_result_runs = 0;   ///< runs whose C differed from the reference
  int retries = 0;             ///< re-executions (reliable mode)
  double max_rel_error = 0.0;  ///< worst per-run result error vs reference
  double mean_gflops = 0.0;

  /// The reliability claim: every fault either corrected or flagged, and
  /// no run produced a silently wrong result.
  [[nodiscard]] bool reliable() const { return wrong_result_runs == 0; }
};

/// Execute the campaign.  Deterministic under config.seed.
CampaignResult run_injection_campaign(const CampaignConfig& config);

}  // namespace ftgemm
