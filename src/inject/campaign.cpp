#include "inject/campaign.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "baseline/naive_gemm.hpp"
#include "serve/service.hpp"
#include "util/timer.hpp"

namespace ftgemm {

CampaignResult run_injection_campaign(const CampaignConfig& config) {
  CampaignResult result;
  const index_t n = config.size;

  Matrix<double> a(n, n), b(n, n), c(n, n), ref(n, n);
  a.fill_random(config.seed);
  b.fill_random(config.seed + 1);
  ref.fill(0.0);

  Options clean_opts;
  clean_opts.threads = config.threads;
  GemmEngine<double> clean_engine(clean_opts);
  clean_engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
                    n, n, 1.0, a.data(), n, b.data(), n, 0.0, ref.data(), n);

  CountInjector injector(config.errors_per_run, config.seed + 7,
                         config.magnitude);
  Options opts;
  opts.threads = config.threads;
  opts.injector = &injector;
  GemmEngine<double> engine(opts);

  double gflops_sum = 0.0;
  for (int run = 0; run < config.runs; ++run) {
    c.fill(0.0);
    WallTimer t;
    FtReport rep;
    if (config.use_reliable) {
      rep = ft_dgemm_reliable(Layout::kColMajor, Trans::kNoTrans,
                              Trans::kNoTrans, n, n, n, 1.0, a.data(), n,
                              b.data(), n, 0.0, c.data(), n, opts);
    } else {
      rep = engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans,
                           Trans::kNoTrans, n, n, n, 1.0, a.data(), n,
                           b.data(), n, 0.0, c.data(), n);
    }
    gflops_sum +=
        gemm_gflops(double(n), double(n), double(n), t.seconds());

    result.detected += rep.errors_detected;
    result.corrected += rep.errors_corrected;
    result.retries += rep.retries;
    if (!rep.clean()) ++result.uncorrectable_runs;

    const double err = max_rel_diff(c, ref);
    result.max_rel_error = std::max(result.max_rel_error, err);
    // A run is silently wrong only if the result is off AND the report
    // claimed it was clean — flagged-dirty runs are the documented
    // contract for pathological patterns (ft_dgemm_reliable retries them).
    if (err > 1e-9 && rep.clean()) ++result.wrong_result_runs;
  }
  result.injected = injector.injected_count();
  result.mean_gflops = gflops_sum / double(std::max(config.runs, 1));
  return result;
}

BatchedCampaignResult run_batched_injection_campaign(
    const BatchedCampaignConfig& config) {
  BatchedCampaignResult result;
  const index_t n = config.size;
  const index_t batch = config.batch;
  const index_t stride = n * n;

  // Strided batch storage: problem p lives at offset p * n^2.
  Matrix<double> a(n, n * batch), b(n, n * batch), c(n, n * batch);
  Matrix<double> ref(n, n * batch);
  a.fill_random(config.seed);
  b.fill_random(config.seed + 1);

  // Fault-free reference for every batch member.
  ref.fill(0.0);
  BatchOptions clean_opts;
  clean_opts.base.threads = config.threads;
  clean_opts.schedule = config.schedule;
  gemm_strided_batched<double>(Layout::kColMajor, Trans::kNoTrans,
                               Trans::kNoTrans, n, n, n, 1.0, a.data(), n,
                               stride, b.data(), n, stride, 0.0, ref.data(),
                               n, stride, batch, clean_opts);

  CountInjector injector(config.errors_per_run, config.seed + 7,
                         config.magnitude);
  Xoshiro256 target_rng(config.seed + 99);

  double gflops_sum = 0.0;
  for (int run = 0; run < config.runs; ++run) {
    c.fill(0.0);
    const index_t target =
        index_t(target_rng.bounded(std::uint64_t(std::max<index_t>(batch, 1))));
    result.targets.push_back(target);

    BatchOptions opts;
    opts.base.threads = config.threads;
    opts.base.injector = &injector;
    opts.schedule = config.schedule;
    opts.inject_problem = target;

    WallTimer t;
    const BatchReport rep = ft_gemm_strided_batched<double>(
        Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
        a.data(), n, stride, b.data(), n, stride, 0.0, c.data(), n, stride,
        batch, opts);
    gflops_sum += gemm_gflops(double(n) * double(batch), double(n), double(n),
                              t.seconds());

    result.detected += rep.errors_detected;
    result.corrected += rep.errors_corrected;
    result.faulty_problems += rep.faulty_problems;
    result.dirty_problems += rep.dirty_problems;

    // Verify every member against its reference; only members whose report
    // claimed clean may count as silently wrong (same contract as the
    // single-problem campaign).
    bool silent_wrong = false;
    for (index_t p = 0; p < batch; ++p) {
      double worst = 0.0;
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < n; ++i) {
          const double x = c(i, p * n + j), y = ref(i, p * n + j);
          const double denom = std::max({std::abs(x), std::abs(y), 1.0});
          worst = std::max(worst, std::abs(x - y) / denom);
        }
      }
      result.max_rel_error = std::max(result.max_rel_error, worst);
      if (worst > 1e-9 && rep.per_problem[std::size_t(p)].clean())
        silent_wrong = true;
    }
    if (silent_wrong) ++result.wrong_result_runs;
  }
  result.injected = injector.injected_count();
  result.mean_gflops = gflops_sum / double(std::max(config.runs, 1));
  return result;
}

ServiceCampaignResult run_service_injection_campaign(
    const ServiceCampaignConfig& config) {
  ServiceCampaignResult result;
  const index_t n = config.size;
  const int requests = std::max(config.requests, 0);

  // Private operands, reference, and (for targeted requests) injector per
  // request: in-flight requests execute concurrently, and the injector
  // protocol is per-call stateful.
  std::vector<Matrix<double>> a, b, c, ref;
  std::vector<std::unique_ptr<CountInjector>> injectors(
      static_cast<std::size_t>(requests));
  a.reserve(std::size_t(requests));
  b.reserve(std::size_t(requests));
  c.reserve(std::size_t(requests));
  ref.reserve(std::size_t(requests));
  for (int r = 0; r < requests; ++r) {
    const std::uint64_t seed = config.seed + std::uint64_t(r) * 5;
    a.emplace_back(n, n);
    b.emplace_back(n, n);
    c.emplace_back(n, n);
    ref.emplace_back(n, n);
    a.back().fill_random(seed);
    b.back().fill_random(seed + 1);
    c.back().fill(0.0);
    ref.back().fill(0.0);
    baseline::naive_dgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
                          a.back().data(), n, b.back().data(), n, 0.0,
                          ref.back().data(), n);
  }

  // Stage the whole burst while paused, then release it: the campaign's
  // routing mix (direct injected requests amid coalesced clean traffic)
  // becomes a property of the workload, not of submission timing.
  serve::ServiceConfig scfg;
  scfg.max_inflight = config.max_inflight;
  scfg.queue_capacity =
      std::max<std::size_t>(config.queue_capacity, std::size_t(requests));
  scfg.start_paused = true;
  serve::GemmService service(scfg);

  std::vector<serve::GemmFuture> futures;
  futures.reserve(std::size_t(requests));
  for (int r = 0; r < requests; ++r) {
    Options opts;
    opts.threads = config.threads;
    const bool targeted =
        config.inject_every > 0 && r % config.inject_every == 0;
    if (targeted) {
      injectors[std::size_t(r)] = std::make_unique<CountInjector>(
          config.errors_per_target, config.seed + 7 + std::uint64_t(r),
          config.magnitude);
      opts.injector = injectors[std::size_t(r)].get();
      ++result.targeted_requests;
    }
    futures.push_back(service.submit(serve::make_gemm_request<double>(
        /*ft=*/true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
        n, n, 1.0, a[std::size_t(r)].data(), n, b[std::size_t(r)].data(), n,
        0.0, c[std::size_t(r)].data(), n, opts)));
  }
  service.resume();

  for (int r = 0; r < requests; ++r) {
    const serve::GemmResult& res = futures[std::size_t(r)].wait();
    result.detected += res.report.errors_detected;
    result.corrected += res.report.errors_corrected;
    if (res.coalesced) ++result.coalesced_requests;
    if (!res.report.clean()) ++result.dirty_requests;
    const double err = max_rel_diff(c[std::size_t(r)], ref[std::size_t(r)]);
    result.max_rel_error = std::max(result.max_rel_error, err);
    // Same silent-corruption contract as the other campaigns: only a wrong
    // result under a clean report counts against reliability.
    if (err > 1e-9 && res.report.clean()) ++result.wrong_result_requests;
  }
  for (const auto& inj : injectors) {
    if (inj) result.injected += inj->injected_count();
  }
  return result;
}

}  // namespace ftgemm
