#include "inject/campaign.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace ftgemm {

CampaignResult run_injection_campaign(const CampaignConfig& config) {
  CampaignResult result;
  const index_t n = config.size;

  Matrix<double> a(n, n), b(n, n), c(n, n), ref(n, n);
  a.fill_random(config.seed);
  b.fill_random(config.seed + 1);
  ref.fill(0.0);

  Options clean_opts;
  clean_opts.threads = config.threads;
  GemmEngine<double> clean_engine(clean_opts);
  clean_engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
                    n, n, 1.0, a.data(), n, b.data(), n, 0.0, ref.data(), n);

  CountInjector injector(config.errors_per_run, config.seed + 7,
                         config.magnitude);
  Options opts;
  opts.threads = config.threads;
  opts.injector = &injector;
  GemmEngine<double> engine(opts);

  double gflops_sum = 0.0;
  for (int run = 0; run < config.runs; ++run) {
    c.fill(0.0);
    WallTimer t;
    FtReport rep;
    if (config.use_reliable) {
      rep = ft_dgemm_reliable(Layout::kColMajor, Trans::kNoTrans,
                              Trans::kNoTrans, n, n, n, 1.0, a.data(), n,
                              b.data(), n, 0.0, c.data(), n, opts);
    } else {
      rep = engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans,
                           Trans::kNoTrans, n, n, n, 1.0, a.data(), n,
                           b.data(), n, 0.0, c.data(), n);
    }
    gflops_sum +=
        gemm_gflops(double(n), double(n), double(n), t.seconds());

    result.detected += rep.errors_detected;
    result.corrected += rep.errors_corrected;
    result.retries += rep.retries;
    if (!rep.clean()) ++result.uncorrectable_runs;

    const double err = max_rel_diff(c, ref);
    result.max_rel_error = std::max(result.max_rel_error, err);
    // A run is silently wrong only if the result is off AND the report
    // claimed it was clean — flagged-dirty runs are the documented
    // contract for pathological patterns (ft_dgemm_reliable retries them).
    if (err > 1e-9 && rep.clean()) ++result.wrong_result_runs;
  }
  result.injected = injector.injected_count();
  result.mean_gflops = gflops_sum / double(std::max(config.runs, 1));
  return result;
}

}  // namespace ftgemm
