// Memory-fault injection campaigns (DESIGN.md §12).
//
// A campaign measures, for one strike surface and one fault shape
// (faults x burst), how the library's memory-fault defenses respond over a
// set of independent trials: what fraction of strikes is detected, how many
// bits the SEC-DED sweep corrects in place, how many payloads/plans are
// healed by re-encoding, and — the invariant every sweep asserts — that no
// trial is ever *silent* (a wrong result with a clean report).
//
// Surface-to-precision pairing is deliberate (see SurfaceBitFlipInjector):
// the resident-panel and plan surfaces verify bit-exactly, so they run on
// fp64; the transient packed panels are verified through the rank-KC
// checksum compare, which is tolerance-bounded for float paths — only the
// exact-integer int8 path turns "a low mantissa bit flipped" from a
// maybe-below-tolerance event into a guaranteed detection, so the campaign
// routes kPanelA/kPanelB through ft_gemm_i8.
//
// Everything is deterministic: operands are seeded, strikes are seeded, and
// results carry no wall-clock — the same config produces bit-identical
// MemoryCampaignResult counters on every run and every runtime backend.
#pragma once

#include <cstdint>
#include <vector>

#include "inject/injector.hpp"
#include "runtime/team.hpp"

namespace ftgemm {

/// One campaign cell: a strike surface and a fault shape.
struct MemoryCampaignConfig {
  MemorySurface surface = MemorySurface::kResidentPanel;
  int faults = 1;  ///< independent strikes per trial
  int burst = 1;   ///< contiguous bits per strike (1 = single-bit upset)
  int trials = 20;
  std::uint64_t seed = 0x5eedu;
  /// Resident surface only: enable the SEC-DED coded payload variant
  /// (FTGEMM_OPERAND_ECC) so single-bit strikes are corrected in place
  /// instead of healed by re-encoding.
  bool ecc = false;
  int threads = 2;
  /// Thread-team backend for every GEMM in the cell; counters are
  /// bit-identical across backends at equal thread counts (the library's
  /// cross-backend contract extends to strike placement, which is pinned
  /// to deterministic team members).
  RuntimeBackend runtime = RuntimeBackend::kAuto;
};

/// Deterministic counters aggregated over a config's trials.
struct MemoryCampaignResult {
  MemoryCampaignConfig config;
  int trials = 0;
  std::int64_t injected_bits = 0;    ///< injector ground truth (net bits)
  std::int64_t detected_trials = 0;  ///< trials with any detection signal
  std::int64_t ecc_corrected = 0;    ///< bits fixed by the SEC-DED sweep
  std::int64_t heals = 0;            ///< resident payload re-encode heals
  std::int64_t plan_heals = 0;       ///< plan cache self-check rebuilds
  std::int64_t abft_detected = 0;    ///< checksum mismatches attributed
  std::int64_t abft_corrected = 0;   ///< C elements repaired
  std::int64_t flagged_trials = 0;   ///< trials flagged uncorrectable
  /// Undetected trials whose result is nevertheless bit-identical to the
  /// clean reference: the flip was absorbed before it could matter (e.g. an
  /// ulp-level mantissa flip rounded away by both the fp integrity sums and
  /// the product).  Harmless by construction — only possible on the fp
  /// resident surface without ECC; the SEC-DED parity, the plan
  /// self-checksum, and the exact int8 panel checksums are all bit-exact,
  /// so their cells must report zero.
  std::int64_t masked_trials = 0;
  std::int64_t silent_trials = 0;    ///< wrong result + clean report (== 0!)

  [[nodiscard]] double detection_rate() const {
    return trials > 0 ? double(detected_trials) / double(trials) : 0.0;
  }
};

/// Human-readable surface tag for tables and logs.
[[nodiscard]] const char* memory_surface_name(MemorySurface surface);

/// Run one campaign cell.  Clears the process plan/operand caches first so
/// cells are independent; restores FTGEMM_OPERAND_ECC's configured state.
[[nodiscard]] MemoryCampaignResult run_memory_campaign(
    const MemoryCampaignConfig& config);

/// Run a grid of cells in order (each via run_memory_campaign).
[[nodiscard]] std::vector<MemoryCampaignResult> run_memory_campaign_sweep(
    const std::vector<MemoryCampaignConfig>& configs);

/// The default sweep grid: every surface, fault counts {1, 4}, bursts
/// {1, 3}, and for the resident surface both the re-encode-heal and the
/// SEC-DED (ecc) variants.
[[nodiscard]] std::vector<MemoryCampaignConfig> default_memory_campaign_grid(
    int trials, std::uint64_t seed);

}  // namespace ftgemm
