#include "inject/memory_campaign.hpp"

#include <cstring>
#include <vector>

#include "core/context.hpp"
#include "core/gemm.hpp"
#include "core/gemm_i8.hpp"
#include "inject/injectors.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace ftgemm {

namespace {

// Both workloads exceed the fast-path flop cutoff so the general blocked
// path (cooperative packing, the tm.single B~ strike, per-thread A~) is what
// the campaign exercises.  The shapes are odd-sized on purpose: partial
// register tiles mean the packed panels carry zero padding, which the live
// element remapping must skip.
constexpr index_t kFpM = 96, kFpN = 80, kFpK = 320;
constexpr index_t kI8M = 128, kI8N = 96, kI8K = 384;

/// Nonzero fp64 operands: a corrupted packed element must always perturb
/// the product so "silent" is decidable by comparing against the clean
/// reference (a zero operand row/column could mask a transient strike; the
/// resident/plan surfaces detect on raw bytes and don't care).
void fill_fp64(std::vector<double>& v, Xoshiro256& rng) {
  for (double& x : v) x = 1.0 + double(rng.bounded(512)) / 64.0;
}

/// Nonzero positive int8 operands, for the same reason: every transient
/// panel byte feeds products with nonzero multipliers, so the exact integer
/// checksum compare sees any live-byte corruption (DESIGN.md §12).
void fill_i8(std::vector<std::int8_t>& v, Xoshiro256& rng) {
  for (std::int8_t& x : v) x = std::int8_t(1 + rng.bounded(7));
}

template <typename T>
bool differs(const std::vector<T>& got, const std::vector<T>& want) {
  return std::memcmp(got.data(), want.data(), got.size() * sizeof(T)) != 0;
}

/// fp64 campaign body: kResidentPanel and kPlan, both bit-exact surfaces.
void run_fp64_campaign(const MemoryCampaignConfig& cfg,
                       MemoryCampaignResult& res) {
  Xoshiro256 rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<double> a(std::size_t(kFpM * kFpK));
  std::vector<double> b(std::size_t(kFpK * kFpN));
  std::vector<double> c(std::size_t(kFpM * kFpN), 0.0);
  std::vector<double> ref(std::size_t(kFpM * kFpN), 0.0);
  fill_fp64(a, rng);
  fill_fp64(b, rng);

  const bool resident = cfg.surface == MemorySurface::kResidentPanel;
  Options opts;
  opts.threads = cfg.threads;
  opts.runtime = cfg.runtime;
  opts.resident_a = resident;
  opts.resident_verify = true;

  ContextCache<double, double>& cache = process_context_cache<double>();
  if (resident) cache.operands().set_ecc(cfg.ecc);

  // Warm call: builds the plan (the kPlan trials need cache hits) and, with
  // resident_a, encodes the payload (the kResidentPanel trials need hits
  // too).  Its clean result is the per-trial reference — runs at the same
  // thread count are bit-identical, so "wrong" is a memcmp.
  const auto run = [&](std::vector<double>& out, const Options& o) {
    return ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                    kFpM, kFpN, kFpK, 1.0, a.data(), kFpM, b.data(), kFpK,
                    0.0, out.data(), kFpM, o);
  };
  (void)run(ref, opts);

  SurfaceBitFlipInjector injector(cfg.surface, cfg.faults, cfg.burst,
                                  cfg.seed);
  Options strike = opts;
  strike.memory_injector = &injector;

  for (int t = 0; t < cfg.trials; ++t) {
    std::fill(c.begin(), c.end(), 0.0);
    injector.arm();
    const std::size_t bits_before = injector.applied_count();
    const std::uint64_t plan_heals_before = cache.plan_heals();
    const FtReport rep = run(c, strike);
    const std::int64_t plan_heal_delta =
        std::int64_t(cache.plan_heals() - plan_heals_before);

    ++res.trials;
    res.injected_bits += std::int64_t(injector.applied_count() - bits_before);
    res.ecc_corrected += rep.resident_ecc_corrected;
    res.heals += rep.resident_heals;
    res.plan_heals += plan_heal_delta;
    res.abft_detected += rep.errors_detected;
    res.abft_corrected += rep.errors_corrected;
    const bool detected = rep.resident_heals > 0 ||
                          rep.resident_ecc_corrected > 0 ||
                          plan_heal_delta > 0 || rep.errors_detected > 0 ||
                          rep.uncorrectable_panels > 0;
    if (detected) {
      ++res.detected_trials;
    } else if (differs(c, ref)) {
      ++res.silent_trials;
    } else {
      ++res.masked_trials;  // absorbed before it could matter
    }
    if (!rep.clean()) ++res.flagged_trials;
  }

  if (resident) {
    cache.operands().set_ecc(env_long("FTGEMM_OPERAND_ECC", 0) != 0);
  }
}

/// int8 campaign body: the transient kPanelA / kPanelB surfaces, where the
/// exact integer checksums turn any live-byte flip into a guaranteed panel
/// mismatch (a float path could absorb a low mantissa flip under tolerance).
void run_i8_campaign(const MemoryCampaignConfig& cfg,
                     MemoryCampaignResult& res) {
  Xoshiro256 rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<std::int8_t> a(std::size_t(kI8M * kI8K));
  std::vector<std::int8_t> b(std::size_t(kI8K * kI8N));
  std::vector<float> c(std::size_t(kI8M * kI8N), 0.0f);
  std::vector<float> ref(std::size_t(kI8M * kI8N), 0.0f);
  fill_i8(a, rng);
  fill_i8(b, rng);

  Options opts;
  opts.threads = cfg.threads;
  opts.runtime = cfg.runtime;
  const QuantParams qp;  // unit scales, zero offsets — exact dequantize

  const auto run = [&](std::vector<float>& out, const Options& o) {
    return ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                      kI8M, kI8N, kI8K, 1.0f, a.data(), kI8M, b.data(), kI8K,
                      0.0f, out.data(), kI8M, qp, o);
  };
  (void)run(ref, opts);

  SurfaceBitFlipInjector injector(cfg.surface, cfg.faults, cfg.burst,
                                  cfg.seed);
  Options strike = opts;
  strike.memory_injector = &injector;

  for (int t = 0; t < cfg.trials; ++t) {
    std::fill(c.begin(), c.end(), 0.0f);
    injector.arm();
    const std::size_t bits_before = injector.applied_count();
    const FtReport rep = run(c, strike);

    ++res.trials;
    res.injected_bits += std::int64_t(injector.applied_count() - bits_before);
    res.abft_detected += rep.errors_detected;
    res.abft_corrected += rep.errors_corrected;
    const bool detected =
        rep.errors_detected > 0 || rep.uncorrectable_panels > 0;
    if (detected) {
      ++res.detected_trials;
    } else if (differs(c, ref)) {
      ++res.silent_trials;
    } else {
      ++res.masked_trials;  // impossible on this exact surface; asserted == 0
    }
    if (!rep.clean()) ++res.flagged_trials;
  }
}

}  // namespace

const char* memory_surface_name(MemorySurface surface) {
  switch (surface) {
    case MemorySurface::kResidentPanel: return "resident";
    case MemorySurface::kPanelA: return "panel_a";
    case MemorySurface::kPanelB: return "panel_b";
    case MemorySurface::kPlan: return "plan";
  }
  return "unknown";
}

MemoryCampaignResult run_memory_campaign(const MemoryCampaignConfig& config) {
  MemoryCampaignResult res;
  res.config = config;
  // Cells are independent experiments: no cell may inherit another's (or
  // the host process's) cached plans or resident payloads.
  clear_process_caches();
  if (config.surface == MemorySurface::kPanelA ||
      config.surface == MemorySurface::kPanelB) {
    run_i8_campaign(config, res);
  } else {
    run_fp64_campaign(config, res);
  }
  return res;
}

std::vector<MemoryCampaignResult> run_memory_campaign_sweep(
    const std::vector<MemoryCampaignConfig>& configs) {
  std::vector<MemoryCampaignResult> results;
  results.reserve(configs.size());
  for (const MemoryCampaignConfig& cfg : configs) {
    results.push_back(run_memory_campaign(cfg));
  }
  return results;
}

std::vector<MemoryCampaignConfig> default_memory_campaign_grid(
    int trials, std::uint64_t seed) {
  std::vector<MemoryCampaignConfig> grid;
  const int fault_counts[] = {1, 4};
  const int bursts[] = {1, 3};
  const MemorySurface surfaces[] = {
      MemorySurface::kResidentPanel, MemorySurface::kPanelA,
      MemorySurface::kPanelB, MemorySurface::kPlan};
  for (const MemorySurface surface : surfaces) {
    for (const int faults : fault_counts) {
      for (const int burst : bursts) {
        MemoryCampaignConfig cfg;
        cfg.surface = surface;
        cfg.faults = faults;
        cfg.burst = burst;
        cfg.trials = trials;
        cfg.seed = seed;
        grid.push_back(cfg);
        if (surface == MemorySurface::kResidentPanel) {
          cfg.ecc = true;
          grid.push_back(cfg);
        }
      }
    }
  }
  return grid;
}

}  // namespace ftgemm
