// Fault-injection framework (§3.2).
//
// The paper injects errors "at the source code level to minimize the
// performance impact on native programs".  We emulate a soft error inside
// the compute kernel: the corrupted FMA result is what gets stored to C
// *and* what the register-level reference checksums observe.  The driver
// therefore applies an injected delta to C(i, j), cc_ref[i] and cr_ref[j]
// together — exactly the footprint a real in-register fault would leave —
// while the predicted checksums (derived from A and B) keep the truth.
//
// Injectors only *plan* corruptions; the drivers apply them at the
// macro-block hook and append ground truth to the log so tests can assert
// exact detection and correction.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <type_traits>
#include <vector>

namespace ftgemm {

/// Where the planned corruption lands.
enum class InjectionKind {
  kAddDelta,  ///< C(i, j) += delta
  kFlipBit,   ///< flip mantissa/exponent bit `bit` of C(i, j)
};

/// Identifies one macro-block update, the granularity of the driver hook.
struct BlockContext {
  int panel = 0;          ///< rank-KC panel index (verification interval)
  std::int64_t i0 = 0;    ///< first global row of the block
  std::int64_t j0 = 0;    ///< first global column of the block
  std::int64_t mlen = 0;  ///< rows in the block
  std::int64_t nlen = 0;  ///< columns in the block
  int thread = 0;         ///< executing thread
};

/// One planned / recorded corruption. `delta` is filled with the actually
/// applied perturbation when the driver executes a bit flip.
struct InjectionRecord {
  InjectionKind kind = InjectionKind::kAddDelta;
  int panel = 0;
  std::int64_t i = 0;  ///< global row
  std::int64_t j = 0;  ///< global column
  double delta = 0.0;
  int bit = 0;  ///< for kFlipBit: which of the 64/32 bits to flip
};

/// Abstract fault injector.  Implementations decide *when and where*;
/// drivers decide *how* (and log ground truth).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Called once at the start of each protected GEMM call with the problem
  /// geometry, so rate/count-based injectors can plan schedules.
  virtual void begin_call(std::int64_t m, std::int64_t n, std::int64_t k,
                          int num_panels) {
    (void)m;
    (void)n;
    (void)k;
    (void)num_panels;
  }

  /// Append the corruptions to apply inside this block to `out`.  Positions
  /// must satisfy i in [i0, i0+mlen), j in [j0, j0+nlen).  Called from
  /// worker threads; implementations must be thread-safe.
  virtual void plan_block(const BlockContext& ctx,
                          std::vector<InjectionRecord>& out) = 0;

  /// Ground-truth log of corruptions actually applied by the driver.
  void record(const InjectionRecord& rec) {
    const std::lock_guard<std::mutex> lock(mutex_);
    log_.push_back(rec);
  }

  [[nodiscard]] std::vector<InjectionRecord> log() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return log_;
  }

  [[nodiscard]] std::size_t injected_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return log_.size();
  }

  void clear_log() {
    const std::lock_guard<std::mutex> lock(mutex_);
    log_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<InjectionRecord> log_;
};

/// Apply a planned corruption to a value; returns the applied delta.
/// Defined (injector.cpp) for the compute types faults can strike: double,
/// float, and the int8 path's int32 accumulator (integral applied delta).
template <typename T>
double apply_corruption(T& value, const InjectionRecord& rec);
template <>
double apply_corruption<double>(double& value, const InjectionRecord& rec);
template <>
double apply_corruption<float>(float& value, const InjectionRecord& rec);
template <>
double apply_corruption<std::int32_t>(std::int32_t& value,
                                      const InjectionRecord& rec);

// ---------------------------------------------------------------------------
// Memory-domain faults: corruption of data *at rest* between its producer
// and its consumer, as opposed to the compute-domain faults FaultInjector
// models inside a kernel.  Three strike surfaces exist:
//
//  - kResidentPanel: the resident-operand cache's packed panels, struck on
//    each cache hit before the CHECK_BEFORE re-verification (and before the
//    optional SEC-DED syndrome sweep, see core/secded.hpp).
//  - kPanelA / kPanelB: *transient* packed panels in driver workspace,
//    struck between pack (where the predicted checksums are derived) and
//    the macro-kernel consume — a fault the rank-KC panel verification must
//    catch.  Element indices address live (unpadded) elements; the driver
//    remaps them into the physical tile layout, because flips in zero
//    padding are both undetectable and harmless.
//  - kPlan: the bytes of a cached GemmPlan's blocking decision, struck on
//    PlanCache hits and caught by the plan's self-checksum.
// ---------------------------------------------------------------------------

/// Which memory surface a strike targets.
enum class MemorySurface {
  kResidentPanel,  ///< resident-operand cache payload (packed panels)
  kPanelA,         ///< transient packed A~ in driver workspace
  kPanelB,         ///< transient packed B~ in driver workspace
  kPlan,           ///< cached GemmPlan blocking bytes
};

/// Geometry of one strike opportunity, passed to plan_flips.  `elems` is the
/// number of addressable elements on the surface and `elem_bits` the width
/// of one element (64 for fp64, 32 for fp32, 8 for packed int8 bytes and
/// plan bytes, ...).
struct MemoryStrikeContext {
  MemorySurface surface = MemorySurface::kResidentPanel;
  std::size_t elems = 0;
  int elem_bits = 64;
};

/// One planned flip on a memory surface.
struct PanelFlip {
  std::size_t elem = 0;  ///< flat element index on the struck surface
  int bit = 0;           ///< which of the element's elem_bits bits to flip
};

/// Flip bit `bit` of a trivially-copyable value.  Bit numbering follows the
/// little-endian integer interpretation of the value's bytes (bit b lives in
/// byte b/8).  Out-of-range bits are a caller bug: plan_flips implementations
/// canonicalize against MemoryStrikeContext::elem_bits, so by the time a
/// flip reaches a surface it must be in range.
template <typename T>
inline void flip_value_bit(T& value, int bit) {
  static_assert(std::is_trivially_copyable<T>::value,
                "bit flips address raw object bytes");
  assert(bit >= 0 && std::size_t(bit) < 8 * sizeof(T));
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  bytes[std::size_t(bit) / 8] ^=
      static_cast<unsigned char>(1u << (std::size_t(bit) % 8));
  std::memcpy(&value, bytes, sizeof(T));
}

/// Abstract memory-fault injector.  Implementations decide when and where;
/// the surface owner (operand cache, driver, plan cache) applies the flips
/// and counts ground truth.  Called from whatever thread touches the
/// surface; implementations must be thread-safe.
class MemoryFaultInjector {
 public:
  virtual ~MemoryFaultInjector() = default;

  /// Called at each strike opportunity with the surface geometry; append
  /// the flips to apply.  Contract: emitted (elem, bit) pairs are unique,
  /// in range (elem < ctx.elems, 0 <= bit < ctx.elem_bits), so every
  /// emitted flip net-corrupts exactly one bit — implementations should
  /// funnel raw draws through canonicalize_flips().  A call that plans
  /// nothing (surface not targeted, strike cadence) leaves `out` untouched.
  virtual void plan_flips(const MemoryStrikeContext& ctx,
                          std::vector<PanelFlip>& out) = 0;

  /// Ground truth: net bits actually corrupted by the surface owner.
  void record_applied(std::size_t count) {
    const std::lock_guard<std::mutex> lock(mutex_);
    applied_ += count;
  }

  [[nodiscard]] std::size_t applied_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return applied_;
  }

 protected:
  /// Enforce the plan_flips contract on raw draws: clamp each bit into
  /// [0, elem_bits) (a historical default of bit 52 predates sub-64-bit
  /// payloads), drop out-of-range elements, and dedupe (elem, bit) pairs —
  /// two XOR flips of the same bit self-cancel, so counting both would
  /// overstate ground-truth corruption.
  static void canonicalize_flips(const MemoryStrikeContext& ctx,
                                 std::vector<PanelFlip>& flips) {
    for (PanelFlip& f : flips) {
      if (f.bit < 0) f.bit = 0;
      if (f.bit >= ctx.elem_bits) f.bit = ctx.elem_bits - 1;
    }
    flips.erase(std::remove_if(flips.begin(), flips.end(),
                               [&](const PanelFlip& f) {
                                 return f.elem >= ctx.elems;
                               }),
                flips.end());
    std::sort(flips.begin(), flips.end(),
              [](const PanelFlip& a, const PanelFlip& b) {
                return a.elem != b.elem ? a.elem < b.elem : a.bit < b.bit;
              });
    flips.erase(std::unique(flips.begin(), flips.end(),
                            [](const PanelFlip& a, const PanelFlip& b) {
                              return a.elem == b.elem && a.bit == b.bit;
                            }),
                flips.end());
  }

 private:
  mutable std::mutex mutex_;
  std::size_t applied_ = 0;
};

}  // namespace ftgemm
