// Fault-injection framework (§3.2).
//
// The paper injects errors "at the source code level to minimize the
// performance impact on native programs".  We emulate a soft error inside
// the compute kernel: the corrupted FMA result is what gets stored to C
// *and* what the register-level reference checksums observe.  The driver
// therefore applies an injected delta to C(i, j), cc_ref[i] and cr_ref[j]
// together — exactly the footprint a real in-register fault would leave —
// while the predicted checksums (derived from A and B) keep the truth.
//
// Injectors only *plan* corruptions; the drivers apply them at the
// macro-block hook and append ground truth to the log so tests can assert
// exact detection and correction.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace ftgemm {

/// Where the planned corruption lands.
enum class InjectionKind {
  kAddDelta,  ///< C(i, j) += delta
  kFlipBit,   ///< flip mantissa/exponent bit `bit` of C(i, j)
};

/// Identifies one macro-block update, the granularity of the driver hook.
struct BlockContext {
  int panel = 0;          ///< rank-KC panel index (verification interval)
  std::int64_t i0 = 0;    ///< first global row of the block
  std::int64_t j0 = 0;    ///< first global column of the block
  std::int64_t mlen = 0;  ///< rows in the block
  std::int64_t nlen = 0;  ///< columns in the block
  int thread = 0;         ///< executing thread
};

/// One planned / recorded corruption. `delta` is filled with the actually
/// applied perturbation when the driver executes a bit flip.
struct InjectionRecord {
  InjectionKind kind = InjectionKind::kAddDelta;
  int panel = 0;
  std::int64_t i = 0;  ///< global row
  std::int64_t j = 0;  ///< global column
  double delta = 0.0;
  int bit = 0;  ///< for kFlipBit: which of the 64/32 bits to flip
};

/// Abstract fault injector.  Implementations decide *when and where*;
/// drivers decide *how* (and log ground truth).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Called once at the start of each protected GEMM call with the problem
  /// geometry, so rate/count-based injectors can plan schedules.
  virtual void begin_call(std::int64_t m, std::int64_t n, std::int64_t k,
                          int num_panels) {
    (void)m;
    (void)n;
    (void)k;
    (void)num_panels;
  }

  /// Append the corruptions to apply inside this block to `out`.  Positions
  /// must satisfy i in [i0, i0+mlen), j in [j0, j0+nlen).  Called from
  /// worker threads; implementations must be thread-safe.
  virtual void plan_block(const BlockContext& ctx,
                          std::vector<InjectionRecord>& out) = 0;

  /// Ground-truth log of corruptions actually applied by the driver.
  void record(const InjectionRecord& rec) {
    const std::lock_guard<std::mutex> lock(mutex_);
    log_.push_back(rec);
  }

  [[nodiscard]] std::vector<InjectionRecord> log() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return log_;
  }

  [[nodiscard]] std::size_t injected_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return log_.size();
  }

  void clear_log() {
    const std::lock_guard<std::mutex> lock(mutex_);
    log_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<InjectionRecord> log_;
};

/// Apply a planned corruption to a value; returns the applied delta.
/// Defined (injector.cpp) for the compute types faults can strike: double,
/// float, and the int8 path's int32 accumulator (integral applied delta).
template <typename T>
double apply_corruption(T& value, const InjectionRecord& rec);
template <>
double apply_corruption<double>(double& value, const InjectionRecord& rec);
template <>
double apply_corruption<float>(float& value, const InjectionRecord& rec);
template <>
double apply_corruption<std::int32_t>(std::int32_t& value,
                                      const InjectionRecord& rec);

// ---------------------------------------------------------------------------
// Memory-domain faults: corruption of *resident* data between calls, as
// opposed to the compute-domain faults FaultInjector models inside a call.
// The resident-operand cache (core/operand_cache.hpp) gives each cache hit
// to the injector before its CHECK_BEFORE re-verification, emulating a bit
// flip that struck the cached packed panels while they sat in memory.
// ---------------------------------------------------------------------------

/// One planned flip inside a resident packed-panel payload.
struct PanelFlip {
  std::size_t elem = 0;  ///< flat element index into the packed panels
  int bit = 0;           ///< which of the element's 64/32 bits to flip
};

/// Abstract memory-fault injector.  Implementations decide when and where;
/// the operand cache applies the flips and counts ground truth.  Called from
/// whatever thread takes the cache hit; implementations must be thread-safe.
class MemoryFaultInjector {
 public:
  virtual ~MemoryFaultInjector() = default;

  /// Called on each resident-operand cache hit with the payload's packed
  /// element count; append the flips to apply before re-verification.
  virtual void plan_flips(std::size_t elems, std::vector<PanelFlip>& out) = 0;

  /// Ground truth: flips actually applied by the cache.
  void record_applied(std::size_t count) {
    const std::lock_guard<std::mutex> lock(mutex_);
    applied_ += count;
  }

  [[nodiscard]] std::size_t applied_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return applied_;
  }

 private:
  mutable std::mutex mutex_;
  std::size_t applied_ = 0;
};

}  // namespace ftgemm
