// Concrete fault injectors.
//
//  - DeterministicInjector: an explicit schedule (tests, reproducible demos).
//  - CountInjector: N errors per GEMM call at uniformly random positions —
//    the paper's Fig 2(c)/(d) regime ("tolerating 20 injected errors").
//  - RateInjector: wall-clock Poisson-style rate ("hundreds of errors per
//    minute"), thinned across block hooks.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <vector>

#include "inject/injector.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ftgemm {

/// Replays a fixed schedule of corruptions.
class DeterministicInjector final : public FaultInjector {
 public:
  explicit DeterministicInjector(std::vector<InjectionRecord> schedule)
      : schedule_(std::move(schedule)) {}

  void begin_call(std::int64_t, std::int64_t, std::int64_t, int) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    delivered_.assign(schedule_.size(), false);
  }

  void plan_block(const BlockContext& ctx,
                  std::vector<InjectionRecord>& out) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t s = 0; s < schedule_.size(); ++s) {
      const InjectionRecord& rec = schedule_[s];
      if (delivered_[s] || rec.panel != ctx.panel) continue;
      if (rec.i < ctx.i0 || rec.i >= ctx.i0 + ctx.mlen) continue;
      if (rec.j < ctx.j0 || rec.j >= ctx.j0 + ctx.nlen) continue;
      out.push_back(rec);
      delivered_[s] = true;
    }
  }

 private:
  std::mutex mutex_;
  std::vector<InjectionRecord> schedule_;
  std::vector<bool> delivered_;
};

/// Injects `count` corruptions per GEMM call at uniform random positions.
class CountInjector final : public FaultInjector {
 public:
  CountInjector(int count, std::uint64_t seed, double magnitude = 1.0,
                InjectionKind kind = InjectionKind::kAddDelta, int bit = 52)
      : count_(count), seed_(seed), magnitude_(magnitude), kind_(kind),
        bit_(bit) {}

  void begin_call(std::int64_t m, std::int64_t n, std::int64_t k,
                  int num_panels) override {
    (void)k;
    const std::lock_guard<std::mutex> lock(mutex_);
    Xoshiro256 rng(seed_ + 0x1234u * std::uint64_t(call_index_++));
    schedule_.clear();
    for (int e = 0; e < count_; ++e) {
      InjectionRecord rec;
      rec.kind = kind_;
      rec.bit = bit_;
      rec.panel = int(rng.bounded(std::uint64_t(std::max(num_panels, 1))));
      rec.i = std::int64_t(rng.bounded(std::uint64_t(std::max<std::int64_t>(m, 1))));
      rec.j = std::int64_t(rng.bounded(std::uint64_t(std::max<std::int64_t>(n, 1))));
      rec.delta = magnitude_ * (rng.uniform() < 0.5 ? -1.0 : 1.0) *
                  (0.5 + rng.uniform());
      schedule_.push_back(rec);
    }
    delivered_.assign(schedule_.size(), false);
  }

  void plan_block(const BlockContext& ctx,
                  std::vector<InjectionRecord>& out) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t s = 0; s < schedule_.size(); ++s) {
      const InjectionRecord& rec = schedule_[s];
      if (delivered_[s] || rec.panel != ctx.panel) continue;
      if (rec.i < ctx.i0 || rec.i >= ctx.i0 + ctx.mlen) continue;
      if (rec.j < ctx.j0 || rec.j >= ctx.j0 + ctx.nlen) continue;
      out.push_back(rec);
      delivered_[s] = true;
    }
  }

 private:
  std::mutex mutex_;
  int count_;
  std::uint64_t seed_;
  double magnitude_;
  InjectionKind kind_;
  int bit_;
  int call_index_ = 0;
  std::vector<InjectionRecord> schedule_;
  std::vector<bool> delivered_;
};

/// Wall-clock rate injector: approximately `errors_per_minute` corruptions
/// spread over elapsed time, applied at whichever blocks are executing when
/// the quota accrues.
class RateInjector final : public FaultInjector {
 public:
  RateInjector(double errors_per_minute, std::uint64_t seed,
               double magnitude = 1.0)
      : rate_per_second_(errors_per_minute / 60.0), rng_(seed),
        magnitude_(magnitude) {}

  void begin_call(std::int64_t, std::int64_t, std::int64_t, int) override {
    // The wall clock persists across GEMM calls: an error "due" during one
    // short multiplication carries over to the next, so the configured rate
    // holds for back-to-back sub-second calls too.
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
      timer_.restart();
      accrued_ = 0.0;
      started_ = true;
    }
  }

  void plan_block(const BlockContext& ctx,
                  std::vector<InjectionRecord>& out) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    const double due = timer_.seconds() * rate_per_second_;
    while (accrued_ + 1.0 <= due) {
      accrued_ += 1.0;
      InjectionRecord rec;
      rec.kind = InjectionKind::kAddDelta;
      rec.panel = ctx.panel;
      rec.i = ctx.i0 + std::int64_t(rng_.bounded(std::uint64_t(ctx.mlen)));
      rec.j = ctx.j0 + std::int64_t(rng_.bounded(std::uint64_t(ctx.nlen)));
      rec.delta = magnitude_ * (rng_.uniform() < 0.5 ? -1.0 : 1.0) *
                  (0.5 + rng_.uniform());
      out.push_back(rec);
    }
  }

 private:
  std::mutex mutex_;
  double rate_per_second_;
  Xoshiro256 rng_;
  double magnitude_;
  WallTimer timer_;
  double accrued_ = 0.0;
  bool started_ = false;
};

/// Memory-domain injector for the resident-operand cache: flips `flips`
/// deterministically-placed bits in the cached packed panels on every
/// `every`-th hit (every = 1 corrupts each hit).  High exponent bits are the
/// default target — a low mantissa flip in an fp payload can be absorbed by
/// checksum rounding, whereas the re-verification sweep is bit-exact and the
/// tests assert detection *and* healing, so the flip must also be large
/// enough to poison the GEMM result if it were silently consumed.
class PanelBitFlipInjector final : public MemoryFaultInjector {
 public:
  explicit PanelBitFlipInjector(int flips, std::uint64_t seed, int bit,
                                int every = 1)
      : flips_(flips), rng_(seed), bit_(bit), every_(every > 0 ? every : 1) {}

  void plan_flips(std::size_t elems,
                  std::vector<PanelFlip>& out) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    const int hit = hit_index_++;
    if (elems == 0 || hit % every_ != 0) return;
    for (int f = 0; f < flips_; ++f) {
      out.push_back({std::size_t(rng_.bounded(std::uint64_t(elems))), bit_});
    }
  }

 private:
  std::mutex mutex_;
  int flips_;
  Xoshiro256 rng_;
  int bit_;
  int every_;
  int hit_index_ = 0;
};

}  // namespace ftgemm
