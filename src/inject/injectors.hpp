// Concrete fault injectors.
//
//  - DeterministicInjector: an explicit schedule (tests, reproducible demos).
//  - CountInjector: N errors per GEMM call at uniformly random positions —
//    the paper's Fig 2(c)/(d) regime ("tolerating 20 injected errors").
//  - RateInjector: wall-clock Poisson-style rate ("hundreds of errors per
//    minute"), thinned across block hooks.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <vector>

#include "inject/injector.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ftgemm {

/// Replays a fixed schedule of corruptions.
class DeterministicInjector final : public FaultInjector {
 public:
  explicit DeterministicInjector(std::vector<InjectionRecord> schedule)
      : schedule_(std::move(schedule)) {}

  void begin_call(std::int64_t, std::int64_t, std::int64_t, int) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    delivered_.assign(schedule_.size(), false);
  }

  void plan_block(const BlockContext& ctx,
                  std::vector<InjectionRecord>& out) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t s = 0; s < schedule_.size(); ++s) {
      const InjectionRecord& rec = schedule_[s];
      if (delivered_[s] || rec.panel != ctx.panel) continue;
      if (rec.i < ctx.i0 || rec.i >= ctx.i0 + ctx.mlen) continue;
      if (rec.j < ctx.j0 || rec.j >= ctx.j0 + ctx.nlen) continue;
      out.push_back(rec);
      delivered_[s] = true;
    }
  }

  /// Schedule records never delivered to any executed block in the most
  /// recent call — a record whose panel/coords lie outside the problem
  /// geometry is silently skipped by plan_block, so a campaign that trusts
  /// the schedule as ground truth must check this is zero.
  [[nodiscard]] std::size_t undelivered_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const bool d : delivered_) n += d ? 0 : 1;
    return n;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<InjectionRecord> schedule_;
  std::vector<bool> delivered_;
};

/// Injects `count` corruptions per GEMM call at uniform random positions.
class CountInjector final : public FaultInjector {
 public:
  CountInjector(int count, std::uint64_t seed, double magnitude = 1.0,
                InjectionKind kind = InjectionKind::kAddDelta, int bit = 52)
      : count_(count), seed_(seed), magnitude_(magnitude), kind_(kind),
        bit_(bit) {}

  void begin_call(std::int64_t m, std::int64_t n, std::int64_t k,
                  int num_panels) override {
    (void)k;
    const std::lock_guard<std::mutex> lock(mutex_);
    Xoshiro256 rng(seed_ + 0x1234u * std::uint64_t(call_index_++));
    schedule_.clear();
    for (int e = 0; e < count_; ++e) {
      InjectionRecord rec;
      rec.kind = kind_;
      rec.bit = bit_;
      rec.panel = int(rng.bounded(std::uint64_t(std::max(num_panels, 1))));
      rec.i = std::int64_t(rng.bounded(std::uint64_t(std::max<std::int64_t>(m, 1))));
      rec.j = std::int64_t(rng.bounded(std::uint64_t(std::max<std::int64_t>(n, 1))));
      rec.delta = magnitude_ * (rng.uniform() < 0.5 ? -1.0 : 1.0) *
                  (0.5 + rng.uniform());
      schedule_.push_back(rec);
    }
    delivered_.assign(schedule_.size(), false);
  }

  void plan_block(const BlockContext& ctx,
                  std::vector<InjectionRecord>& out) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t s = 0; s < schedule_.size(); ++s) {
      const InjectionRecord& rec = schedule_[s];
      if (delivered_[s] || rec.panel != ctx.panel) continue;
      if (rec.i < ctx.i0 || rec.i >= ctx.i0 + ctx.mlen) continue;
      if (rec.j < ctx.j0 || rec.j >= ctx.j0 + ctx.nlen) continue;
      out.push_back(rec);
      delivered_[s] = true;
    }
  }

  /// Scheduled corruptions the most recent call never delivered (see
  /// DeterministicInjector::undelivered_count).
  [[nodiscard]] std::size_t undelivered_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const bool d : delivered_) n += d ? 0 : 1;
    return n;
  }

 private:
  mutable std::mutex mutex_;
  int count_;
  std::uint64_t seed_;
  double magnitude_;
  InjectionKind kind_;
  int bit_;
  int call_index_ = 0;
  std::vector<InjectionRecord> schedule_;
  std::vector<bool> delivered_;
};

/// Wall-clock rate injector: approximately `errors_per_minute` corruptions
/// spread over elapsed time, applied at whichever blocks are executing when
/// the quota accrues.
class RateInjector final : public FaultInjector {
 public:
  RateInjector(double errors_per_minute, std::uint64_t seed,
               double magnitude = 1.0)
      : rate_per_second_(errors_per_minute / 60.0), rng_(seed),
        magnitude_(magnitude) {}

  void begin_call(std::int64_t, std::int64_t, std::int64_t, int) override {
    // The wall clock persists across GEMM calls: an error "due" during one
    // short multiplication carries over to the next, so the configured rate
    // holds for back-to-back sub-second calls too.
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
      timer_.restart();
      accrued_ = 0.0;
      started_ = true;
    }
  }

  void plan_block(const BlockContext& ctx,
                  std::vector<InjectionRecord>& out) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    const double due = timer_.seconds() * rate_per_second_;
    while (accrued_ + 1.0 <= due) {
      accrued_ += 1.0;
      InjectionRecord rec;
      rec.kind = InjectionKind::kAddDelta;
      rec.panel = ctx.panel;
      rec.i = ctx.i0 + std::int64_t(rng_.bounded(std::uint64_t(ctx.mlen)));
      rec.j = ctx.j0 + std::int64_t(rng_.bounded(std::uint64_t(ctx.nlen)));
      rec.delta = magnitude_ * (rng_.uniform() < 0.5 ? -1.0 : 1.0) *
                  (0.5 + rng_.uniform());
      out.push_back(rec);
    }
  }

 private:
  std::mutex mutex_;
  double rate_per_second_;
  Xoshiro256 rng_;
  double magnitude_;
  WallTimer timer_;
  double accrued_ = 0.0;
  bool started_ = false;
};

/// Memory-domain injector for the resident-operand cache: flips `flips`
/// deterministically-placed bits in the cached packed panels on every
/// `every`-th hit (every = 1 corrupts each hit).  High exponent bits are the
/// default target — a low mantissa flip in an fp payload can be absorbed by
/// checksum rounding, whereas the re-verification sweep is bit-exact and the
/// tests assert detection *and* healing, so the flip must also be large
/// enough to poison the GEMM result if it were silently consumed.
///
/// `burst > 1` turns each strike into a contiguous run of `burst` bits
/// starting at a random bit position (runs spill across element boundaries,
/// the way a burst fault walks physical memory).  Draws are canonicalized:
/// the requested bit is clamped to the element width, colliding draws
/// dedupe, so applied_count() is the exact net corrupted-bit ground truth.
class PanelBitFlipInjector final : public MemoryFaultInjector {
 public:
  explicit PanelBitFlipInjector(int flips, std::uint64_t seed, int bit,
                                int every = 1, int burst = 1)
      : flips_(flips), rng_(seed), bit_(bit), every_(every > 0 ? every : 1),
        burst_(burst > 1 ? burst : 1) {}

  void plan_flips(const MemoryStrikeContext& ctx,
                  std::vector<PanelFlip>& out) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ctx.surface != MemorySurface::kResidentPanel || ctx.elems == 0)
      return;
    const int hit = hit_index_++;
    if (hit % every_ != 0) return;
    const std::size_t bits = std::size_t(ctx.elem_bits);
    const std::size_t total_bits = ctx.elems * bits;
    const std::size_t run =
        std::min<std::size_t>(std::size_t(burst_), total_bits);
    for (int f = 0; f < flips_; ++f) {
      if (run <= 1) {
        out.push_back(
            {std::size_t(rng_.bounded(std::uint64_t(ctx.elems))), bit_});
      } else {
        const std::size_t start = std::size_t(
            rng_.bounded(std::uint64_t(total_bits - run + 1)));
        for (std::size_t b = 0; b < run; ++b)
          out.push_back({(start + b) / bits, int((start + b) % bits)});
      }
    }
    canonicalize_flips(ctx, out);
  }

 private:
  std::mutex mutex_;
  int flips_;
  Xoshiro256 rng_;
  int bit_;
  int every_;
  int burst_;
  int hit_index_ = 0;
};

/// Campaign-grade memory injector: targets exactly one surface, fires one
/// armed strike of `faults` random-bit flips (each a `burst`-bit contiguous
/// run), then disarms until arm() is called again.  Strike opportunities on
/// other surfaces neither consume randomness nor disarm it, so a sweep can
/// aim the same seed at each surface in turn and get independent, fully
/// reproducible fault patterns.  Random bit positions (not a fixed bit) are
/// the point: the campaign's detection claims must hold for *any* struck
/// bit of a live element, which is why campaigns pair float surfaces with
/// bit-exact verification (resident/plan) and route the tolerance-free
/// exact-integer int8 path at the transient panels.
class SurfaceBitFlipInjector final : public MemoryFaultInjector {
 public:
  SurfaceBitFlipInjector(MemorySurface surface, int faults, int burst,
                         std::uint64_t seed)
      : surface_(surface), faults_(faults), burst_(burst > 1 ? burst : 1),
        rng_(seed) {}

  /// Arm the next matching strike opportunity.
  void arm() {
    const std::lock_guard<std::mutex> lock(mutex_);
    armed_ = true;
  }

  /// Strike opportunities seen on the targeted surface (armed or not) —
  /// lets campaigns assert the surface was actually reachable.
  [[nodiscard]] std::size_t opportunities() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return opportunities_;
  }

  void plan_flips(const MemoryStrikeContext& ctx,
                  std::vector<PanelFlip>& out) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ctx.surface != surface_ || ctx.elems == 0) return;
    ++opportunities_;
    if (!armed_) return;
    armed_ = false;
    const std::size_t bits = std::size_t(ctx.elem_bits);
    const std::size_t total_bits = ctx.elems * bits;
    const std::size_t run =
        std::min<std::size_t>(std::size_t(burst_), total_bits);
    for (int f = 0; f < faults_; ++f) {
      const std::size_t start =
          std::size_t(rng_.bounded(std::uint64_t(total_bits - run + 1)));
      for (std::size_t b = 0; b < run; ++b)
        out.push_back({(start + b) / bits, int((start + b) % bits)});
    }
    canonicalize_flips(ctx, out);
  }

 private:
  mutable std::mutex mutex_;
  MemorySurface surface_;
  int faults_;
  int burst_;
  Xoshiro256 rng_;
  bool armed_ = false;
  std::size_t opportunities_ = 0;
};

}  // namespace ftgemm
