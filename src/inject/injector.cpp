#include "inject/injector.hpp"

#include <bit>
#include <cstring>

namespace ftgemm {

namespace {

template <typename T, typename Bits>
double flip_bit(T& value, int bit) {
  Bits bits;
  std::memcpy(&bits, &value, sizeof(T));
  bits ^= (Bits(1) << (bit % (sizeof(T) * 8)));
  T flipped;
  std::memcpy(&flipped, &bits, sizeof(T));
  const double delta = double(flipped) - double(value);
  value = flipped;
  return delta;
}

}  // namespace

template <>
double apply_corruption<double>(double& value, const InjectionRecord& rec) {
  if (rec.kind == InjectionKind::kAddDelta) {
    value += rec.delta;
    return rec.delta;
  }
  return flip_bit<double, std::uint64_t>(value, rec.bit);
}

template <>
double apply_corruption<float>(float& value, const InjectionRecord& rec) {
  if (rec.kind == InjectionKind::kAddDelta) {
    value += float(rec.delta);
    return double(float(rec.delta));
  }
  return flip_bit<float, std::uint32_t>(value, rec.bit);
}

}  // namespace ftgemm
