#include "inject/injector.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

namespace ftgemm {

namespace {

template <typename T, typename Bits>
double flip_bit(T& value, int bit) {
  Bits bits;
  std::memcpy(&bits, &value, sizeof(T));
  bits ^= (Bits(1) << (bit % (sizeof(T) * 8)));
  T flipped;
  std::memcpy(&flipped, &bits, sizeof(T));
  const double delta = double(flipped) - double(value);
  value = flipped;
  return delta;
}

}  // namespace

template <>
double apply_corruption<double>(double& value, const InjectionRecord& rec) {
  if (rec.kind == InjectionKind::kAddDelta) {
    value += rec.delta;
    return rec.delta;
  }
  return flip_bit<double, std::uint64_t>(value, rec.bit);
}

template <>
double apply_corruption<float>(float& value, const InjectionRecord& rec) {
  if (rec.kind == InjectionKind::kAddDelta) {
    value += float(rec.delta);
    return double(float(rec.delta));
  }
  return flip_bit<float, std::uint32_t>(value, rec.bit);
}

// int8 path: corruptions strike the int32 accumulator.  An additive delta
// is rounded to the nearest integer and forced non-zero (a zero-delta
// "corruption" would be a silent no-op and campaigns would miscount it as a
// missed detection); the applied delta is integral, so the int64 reference
// checksum updates in the driver stay exact.  Wrap-around on += is defined
// here via the unsigned domain and is itself just another int32 corruption.
template <>
double apply_corruption<std::int32_t>(std::int32_t& value,
                                      const InjectionRecord& rec) {
  if (rec.kind == InjectionKind::kAddDelta) {
    long long d = std::llround(rec.delta);
    if (d == 0) d = 1;
    const std::int32_t di = std::int32_t(std::uint32_t(std::uint64_t(d)));
    const std::int32_t updated =
        std::int32_t(std::uint32_t(value) + std::uint32_t(di));
    const double applied = double(updated) - double(value);
    value = updated;
    return applied;
  }
  return flip_bit<std::int32_t, std::uint32_t>(value, rec.bit);
}

}  // namespace ftgemm
