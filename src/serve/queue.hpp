// Bounded lock-free submit ring — the serving layer's admission fast lane.
//
// One ring per priority lane per shard.  Producers are arbitrary client
// threads inside submit()/try_submit()/submit_all(); the common-case
// consumer is the owning shard's dispatcher, but a *stealing* sibling
// dispatcher may also pop (see serve/shard.hpp), so the ring must be safe
// for multiple consumers even though the steady state is MPSC.
//
// The algorithm is Vyukov's bounded MPMC queue: every cell carries a
// sequence counter whose distance from the producer/consumer cursor encodes
// the cell's state (free / full / wrapped).  A push is one CAS on the tail
// cursor plus a release-store of the cell sequence; a pop mirrors it on the
// head cursor.  No mutex anywhere, no allocation after construction, and —
// unlike a mutex-guarded deque — a producer can never be descheduled while
// holding a lock that blocks every other submitter, which is exactly the
// tail-latency property a submit fast lane exists for.
//
// Capacity is rounded up to a power of two.  push() returning false means
// the ring itself is full; the serving layer sizes rings to the shard's
// admission capacity and reserves space with a separate counter first, so
// in practice a reserved push never fails (asserted by the caller).
//
// The value type must be movable.  A popped value is moved out before the
// cell is republished, so element lifetimes never overlap between a
// producer and a consumer; the seq acquire/release pair carries the
// happens-before edge for the moved bytes.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

namespace ftgemm::serve::detail {

template <typename T>
class SubmitRing {
 public:
  explicit SubmitRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer push; false when the ring is full.
  bool push(T&& v) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::ptrdiff_t dif =
          std::ptrdiff_t(seq) - std::ptrdiff_t(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(v);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS updated pos to the current tail; retry with it.
      } else if (dif < 0) {
        return false;  // the cell still holds an unpopped value: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Multi-consumer pop (owner dispatcher or a stealer); false when empty.
  bool pop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::ptrdiff_t dif =
          std::ptrdiff_t(seq) - std::ptrdiff_t(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.value = T{};  // drop payload refs before republishing
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty (or a racing push not yet published)
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Approximate: exact only when producers and consumers are quiescent.
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };
  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  // Separate cache lines: producers hammer tail_, consumers head_.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace ftgemm::serve::detail
