// Internal shared state behind GemmFuture, plus the settle/claim/cancel
// transitions every serving unit (inline fast lane, shard dispatchers,
// stealers, shutdown) arbitrates through.  Split out of service.cpp so the
// shard unit can operate on requests without a circular include.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <utility>

#include "serve/service.hpp"

namespace ftgemm::serve::detail {

/// Shared state behind one GemmFuture.  `status` is the request's state
/// machine, kept in an atomic so the serving hot path stays lock-light:
/// a claim is a bare CAS, and a wait() on an already-settled future is a
/// single acquire load (the common case for a client draining a pipelined
/// window).  `result` is written exclusively by the settling thread
/// *before* the status release-store, so readers gated on the acquire load
/// see it complete.  The mutex guards the condition variable handshake and
/// the continuation slot.
struct RequestState {
  std::atomic<RequestStatus> status{RequestStatus::kQueued};
  std::mutex m;
  std::condition_variable cv;
  GemmResult result;
  std::function<void(const GemmResult&)> continuation;
};

[[nodiscard]] inline bool is_settled(RequestStatus s) {
  return s == RequestStatus::kDone || s == RequestStatus::kCancelled ||
         s == RequestStatus::kRejected;
}

/// Settle a request with its final result and fire the continuation (once,
/// outside the state lock — settled results are immutable, so the unlocked
/// read is safe).
inline void settle(RequestState& st, GemmResult&& res) {
  std::function<void(const GemmResult&)> cont;
  const RequestStatus final_status = res.status;
  st.result = std::move(res);
  {
    std::lock_guard<std::mutex> lk(st.m);
    st.status.store(final_status, std::memory_order_release);
    cont = std::move(st.continuation);
    st.continuation = nullptr;
  }
  st.cv.notify_all();
  if (cont) cont(st.result);
}

/// kQueued -> kCancelled; false when the request was already claimed or
/// settled.  Claims through an intermediate kRunning first so `result` is
/// fully written before any settled status is publishable: wait()'s
/// lock-free fast path copies `result` after one acquire load of `status`,
/// so storing kCancelled directly in the CAS would race that copy against
/// the result write.  This mirrors settle(): result first, settled status
/// as the release-store last.
inline bool try_cancel(RequestState& st) {
  RequestStatus expect = RequestStatus::kQueued;
  if (!st.status.compare_exchange_strong(expect, RequestStatus::kRunning,
                                         std::memory_order_acq_rel)) {
    return false;
  }
  // The CAS is the arbiter against try_claim and racing cancellers: we own
  // the state now, and no dispatcher will execute or settle it.
  std::function<void(const GemmResult&)> cont;
  {
    std::lock_guard<std::mutex> lk(st.m);
    st.result.status = RequestStatus::kCancelled;
    st.status.store(RequestStatus::kCancelled, std::memory_order_release);
    cont = std::move(st.continuation);
    st.continuation = nullptr;
  }
  st.cv.notify_all();
  if (cont) cont(st.result);
  return true;
}

/// kQueued -> kRunning (a dispatcher's or stealer's claim); false when a
/// racing cancel won.  Lock-free: the CAS is the arbiter against
/// try_cancel.
inline bool try_claim(RequestState& st) {
  RequestStatus expect = RequestStatus::kQueued;
  return st.status.compare_exchange_strong(expect, RequestStatus::kRunning,
                                           std::memory_order_acq_rel);
}

[[nodiscard]] inline RequestStatus status_of(RequestState& st) {
  return st.status.load(std::memory_order_acquire);
}

/// Pre-publication rejection: no other thread can see the state yet, so
/// both status stores need no lock.
inline void reject_unpublished(RequestState& st, RejectReason why) {
  st.result.status = RequestStatus::kRejected;
  st.result.reject = why;
  st.status.store(RequestStatus::kRejected, std::memory_order_release);
}

}  // namespace ftgemm::serve::detail
