// Asynchronous GEMM serving front-end on the persistent team runtime —
// sharded admission with a lock-free submit fast lane.
//
// Every entry point below PR 4 is synchronous: a caller blocks for the
// whole GEMM, so admission control, queueing, prioritization, and
// cross-request batching — the things serving-scale traffic is made of —
// all have to be reinvented by every application.  GemmService is that
// layer, built directly on the pieces the lower layers already provide:
//
//   submit(GemmRequest) -> GemmFuture
//
//   - An *inline-execute fast lane*: when a request's resolved plan takes
//     the small-GEMM fast path (execute_small — the regime where a queue
//     round-trip costs more than the GEMM itself) and the service is idle
//     enough (home-shard queue empty, in-flight groups below a threshold),
//     submit() executes the request synchronously on the calling thread —
//     the identical code path a direct call runs, bit-identical, zero
//     hand-offs.  submit_all() additionally merges a window of same-
//     fingerprint fast-path requests into ONE batched inter-scheduler call
//     on the caller thread (one plan fetch + workspace lease for the whole
//     window), which is how pipelined small-GEMM traffic beats a
//     synchronous loop instead of paying a dispatcher tax.
//
//   - N *shards* (ServiceConfig::shards; default: FTGEMM_SERVICE_SHARDS,
//     else hardware concurrency), each owning a bounded *lock-free MPSC
//     submit ring* per priority lane (serve/queue.hpp) and its own
//     dispatcher thread leasing execution from the PR 4 worker pool.
//     Client threads are round-robin affine to a home shard (overridable
//     per request via GemmRequest::shard_hint), so a client's pipelined
//     window lands on one shard and keeps its coalescing opportunity.
//     submit() applies per-shard backpressure (blocks while the shard is
//     full); try_submit() sheds load instead, and its kRejected future now
//     carries a RejectReason saying *which* resource was exhausted.
//
//   - *Work stealing*: an idle shard steals a whole coalescable group from
//     a loaded sibling before parking, so skewed traffic neither idles
//     shards nor loses cross-request batching to the sharding (stolen
//     same-fingerprint runs still merge into one batched call, still
//     bit-identical).  serve/shard.hpp documents the steal protocol.
//
//   - *Coalescing*: queued single-problem requests whose resolved plan
//     takes the small-GEMM fast path (planner-pinned to one thread) and
//     whose full plan fingerprint + scalars + leading dimensions match are
//     merged into one batched call on the inter-batch scheduler — one plan
//     fetch, one workspace-lease round-trip, and one dispatch for up to
//     max_coalesce requests.  See the bit-identity note below.
//
//   - *Cancellation* (GemmFuture::cancel — queued requests only),
//     *completion callbacks* (GemmFuture::then), and per-service counters
//     (ServiceStats, now with per-shard + steal + inline breakdowns)
//     aggregating FtReport/BatchReport outcomes across every request the
//     service executed.
//
// Bit-identity contract: for every routing decision the service can make —
// inline fast lane, direct dispatch on any shard, coalesced on the owning
// shard, coalesced after a steal — the delivered C (and FT detection
// behavior) is bit-identical to the synchronous entry point called with
// the same arguments and Options.  Inline and direct routes *are* the
// synchronous entry points (on the caller thread / a pool worker).  The
// coalesced route holds because coalescing is restricted to fast-path
// plans: the planner pins those to one thread regardless of the requested
// topology, and the batched inter-scheduler runs each member through the
// identical one-thread plan (same blocking, same kernels, same summation
// order) — execute_small either way.  tests/test_service.cpp asserts this
// differentially across shapes x backends x priorities x shard counts.
//
// Ordering: priority lanes drain highest-first and FIFO within a lane *per
// shard*; once more than one shard (or the inline lane) is in play,
// cross-request completion order is concurrent by design — exactly like N
// independent synchronous clients.  Requests racing on overlapping C
// regions are the caller's data race, as with concurrent synchronous
// calls.
//
// Threading contract: GemmFuture is a value handle, safe to wait/cancel
// from any thread.  then() continuations run on whichever thread settles
// the request (the caller itself for inline routes, a service thread
// otherwise) — keep them light, and do not block them on other futures of
// the same service (in particular, do not call shutdown() from one).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "core/gemm_batched.hpp"
#include "core/options.hpp"
#include "core/plan.hpp"
#include "kernels/int8_types.hpp"

namespace ftgemm::serve {

/// Element type of a type-erased request.  kBf16/kF16 are the narrow-storage
/// mixed-precision paths (core/gemm.hpp): A/B are bf16_t/fp16_t, C and the
/// scalars are fp32, and all arithmetic — accumulation and checksums — runs
/// in fp32.  Coalescing and stealing are precision-safe by construction:
/// the group-merge predicate (serve/shard.hpp coalesce_match) requires
/// member precisions to match, so mixed traffic shards and batches exactly
/// like fp32 traffic without ever mixing element types in one batched call.
/// kI8 is the quantized integer path (core/gemm_i8.hpp): A/B are s8, C and
/// the scalars are fp32, arithmetic is exact int32/int64 — and the request
/// carries its QuantParams, which coalesce_match additionally requires to be
/// equal before merging two int8 requests into one batched call (the
/// batched entry point takes one QuantParams for the whole batch).
enum class Precision { kF32, kF64, kBf16, kF16, kI8 };

/// Precision tag for a storage element type (the request-builder mapping).
template <typename T>
inline constexpr Precision kPrecisionOf =
    std::is_same_v<T, bf16_t>
        ? Precision::kBf16
        : (std::is_same_v<T, fp16_t> ? Precision::kF16
                                     : (sizeof(T) == 8 ? Precision::kF64
                                                       : Precision::kF32));

/// Admission-queue lane.  Higher lanes are always drained first; FIFO
/// within a lane (per shard).
enum class Priority { kLow = 0, kNormal = 1, kHigh = 2 };
inline constexpr int kPriorityLanes = 3;

/// Which resource a kRejected future ran out of (GemmResult::reject) —
/// the signal a load-shedding client needs to pick its reaction: back off
/// (kQueueFull), resume the service (kPaused), or stop retrying
/// (kShuttingDown / kInvalidRequest).
enum class RejectReason : std::uint8_t {
  kNone = 0,         ///< not rejected
  kInvalidRequest,   ///< failed validation at the door
  kQueueFull,        ///< the home shard's admission queue was full
  kPaused,           ///< queue full *and* dispatch is paused — resume() it
  kShuttingDown,     ///< service is stopping; no further admissions
};

/// One unit of work, covering every synchronous entry-point shape:
/// fp32/fp64, FT or Ori, single (batch == 1) or strided-batched
/// (batch > 1, with element strides between consecutive problems; stride 0
/// broadcasts A/B).  Operand pointers are type-erased so one queue serves
/// both precisions; build requests with the typed make_* helpers below.
/// `opts` is request-scoped: threads, runtime backend, ISA, tolerance,
/// injector and correction log all apply to this request alone.
struct GemmRequest {
  Precision precision = Precision::kF64;
  bool ft = true;
  Layout layout = Layout::kColMajor;
  Trans ta = Trans::kNoTrans;
  Trans tb = Trans::kNoTrans;
  index_t m = 0, n = 0, k = 0;
  double alpha = 1.0, beta = 0.0;  ///< cast to float for kF32 requests
  const void* a = nullptr;
  index_t lda = 0, stride_a = 0;
  const void* b = nullptr;
  index_t ldb = 0, stride_b = 0;
  void* c = nullptr;
  index_t ldc = 0, stride_c = 0;
  index_t batch = 1;
  Options opts;
  /// Quantization parameters of a kI8 request (ignored otherwise): one
  /// per-tensor (scale, zero point) pair per operand, shared by every
  /// problem of a batched request.
  QuantParams qp;
  Priority priority = Priority::kNormal;
  /// Pin this request to shard `shard_hint % shards` instead of the
  /// submitting thread's round-robin home shard.  < 0 (default) = auto.
  /// Client-side partitioning knob; also what the steal tests use to
  /// stage a deliberately loaded shard.
  int shard_hint = -1;
};

/// Typed builder for a single-problem request.
template <typename T>
GemmRequest make_gemm_request(bool ft, Layout layout, Trans ta, Trans tb,
                              index_t m, index_t n, index_t k, T alpha,
                              const T* a, index_t lda, const T* b, index_t ldb,
                              T beta, T* c, index_t ldc,
                              const Options& opts = {},
                              Priority priority = Priority::kNormal) {
  GemmRequest r;
  r.precision = kPrecisionOf<T>;
  r.ft = ft;
  r.layout = layout;
  r.ta = ta;
  r.tb = tb;
  r.m = m;
  r.n = n;
  r.k = k;
  r.alpha = double(alpha);
  r.beta = double(beta);
  r.a = a;
  r.lda = lda;
  r.b = b;
  r.ldb = ldb;
  r.c = c;
  r.ldc = ldc;
  r.opts = opts;
  r.priority = priority;
  return r;
}

/// Typed builder for a strided-batched request (stride 0 broadcasts A/B).
template <typename T>
GemmRequest make_strided_batched_request(
    bool ft, Layout layout, Trans ta, Trans tb, index_t m, index_t n,
    index_t k, T alpha, const T* a, index_t lda, index_t stride_a, const T* b,
    index_t ldb, index_t stride_b, T beta, T* c, index_t ldc,
    index_t stride_c, index_t batch, const Options& opts = {},
    Priority priority = Priority::kNormal) {
  GemmRequest r = make_gemm_request<T>(ft, layout, ta, tb, m, n, k, alpha, a,
                                       lda, b, ldb, beta, c, ldc, opts,
                                       priority);
  r.stride_a = stride_a;
  r.stride_b = stride_b;
  r.stride_c = stride_c;
  r.batch = batch;
  return r;
}

/// Typed builder for a mixed-precision single-problem request: narrow
/// (bf16/fp16) A and B, fp32 scalars and C.  SFINAE-gated to the narrow
/// storage types so uniform fp32/fp64 calls keep resolving to the builder
/// above.
template <typename S,
          std::enable_if_t<is_narrow_storage_v<S>, int> = 0>
GemmRequest make_gemm_request(bool ft, Layout layout, Trans ta, Trans tb,
                              index_t m, index_t n, index_t k, float alpha,
                              const S* a, index_t lda, const S* b, index_t ldb,
                              float beta, float* c, index_t ldc,
                              const Options& opts = {},
                              Priority priority = Priority::kNormal) {
  GemmRequest r;
  r.precision = kPrecisionOf<S>;
  r.ft = ft;
  r.layout = layout;
  r.ta = ta;
  r.tb = tb;
  r.m = m;
  r.n = n;
  r.k = k;
  r.alpha = double(alpha);
  r.beta = double(beta);
  r.a = a;
  r.lda = lda;
  r.b = b;
  r.ldb = ldb;
  r.c = c;
  r.ldc = ldc;
  r.opts = opts;
  r.priority = priority;
  return r;
}

/// Mixed-precision strided-batched builder (stride 0 broadcasts A/B).
template <typename S,
          std::enable_if_t<is_narrow_storage_v<S>, int> = 0>
GemmRequest make_strided_batched_request(
    bool ft, Layout layout, Trans ta, Trans tb, index_t m, index_t n,
    index_t k, float alpha, const S* a, index_t lda, index_t stride_a,
    const S* b, index_t ldb, index_t stride_b, float beta, float* c,
    index_t ldc, index_t stride_c, index_t batch, const Options& opts = {},
    Priority priority = Priority::kNormal) {
  GemmRequest r = make_gemm_request<S>(ft, layout, ta, tb, m, n, k, alpha, a,
                                       lda, b, ldb, beta, c, ldc, opts,
                                       priority);
  r.stride_a = stride_a;
  r.stride_b = stride_b;
  r.stride_c = stride_c;
  r.batch = batch;
  return r;
}

/// Builder for a quantized int8 single-problem request: s8 A and B, fp32
/// scalars and C, QuantParams riding along.  A dedicated name (not a
/// make_gemm_request overload) because the int8 signature — float scalars
/// with int8 operands — matches neither the uniform nor the narrow-storage
/// template shape.
inline GemmRequest make_gemm_request_i8(
    bool ft, Layout layout, Trans ta, Trans tb, index_t m, index_t n,
    index_t k, float alpha, const std::int8_t* a, index_t lda,
    const std::int8_t* b, index_t ldb, float beta, float* c, index_t ldc,
    const QuantParams& qp = {}, const Options& opts = {},
    Priority priority = Priority::kNormal) {
  GemmRequest r;
  r.precision = Precision::kI8;
  r.ft = ft;
  r.layout = layout;
  r.ta = ta;
  r.tb = tb;
  r.m = m;
  r.n = n;
  r.k = k;
  r.alpha = double(alpha);
  r.beta = double(beta);
  r.a = a;
  r.lda = lda;
  r.b = b;
  r.ldb = ldb;
  r.c = c;
  r.ldc = ldc;
  r.opts = opts;
  r.qp = qp;
  r.priority = priority;
  return r;
}

/// Quantized int8 strided-batched builder (stride 0 broadcasts A/B; one
/// QuantParams for the whole batch).
inline GemmRequest make_strided_batched_request_i8(
    bool ft, Layout layout, Trans ta, Trans tb, index_t m, index_t n,
    index_t k, float alpha, const std::int8_t* a, index_t lda,
    index_t stride_a, const std::int8_t* b, index_t ldb, index_t stride_b,
    float beta, float* c, index_t ldc, index_t stride_c, index_t batch,
    const QuantParams& qp = {}, const Options& opts = {},
    Priority priority = Priority::kNormal) {
  GemmRequest r = make_gemm_request_i8(ft, layout, ta, tb, m, n, k, alpha, a,
                                       lda, b, ldb, beta, c, ldc, qp, opts,
                                       priority);
  r.stride_a = stride_a;
  r.stride_b = stride_b;
  r.stride_c = stride_c;
  r.batch = batch;
  return r;
}

/// Lifecycle of one submitted request.
enum class RequestStatus {
  kQueued,     ///< admitted, awaiting dispatch
  kRunning,    ///< claimed — by a dispatcher for execution, or transiently
               ///< by a winning cancel while it publishes (no longer
               ///< cancellable either way)
  kDone,       ///< executed; result fields are valid
  kCancelled,  ///< cancelled while queued; never executed, C untouched
  kRejected,   ///< refused at submit (see GemmResult::reject)
};

/// Outcome of one request.
struct GemmResult {
  RequestStatus status = RequestStatus::kQueued;
  /// Single-problem outcome: the FtReport of the call (default-initialized
  /// for Ori requests, which report nothing).  For a coalesced request this
  /// is the member's own report out of the batched call.
  FtReport report;
  /// Strided-batched (batch > 1) outcome, per_problem included.
  BatchReport batch;
  /// The request was executed via coalesced-into-batched routing.
  bool coalesced = false;
  /// The request was executed on the submitting thread (inline fast lane).
  bool inlined = false;
  /// For kRejected: which resource refused the request.
  RejectReason reject = RejectReason::kNone;

  /// Executed and trustworthy: done, accepted, and every panel clean.
  [[nodiscard]] bool ok() const {
    return status == RequestStatus::kDone && !report.invalid_args &&
           !batch.invalid_args && report.clean() && batch.clean();
  }
};

namespace detail {
struct RequestState;
struct Pending;

/// Shutdown handshake block, held by shared_ptr: a late notifier — a pool
/// completion in note_group_end, or a submitter gate bowing out — can
/// still be between its releasing decrement (the one shutdown()'s wait is
/// blocked on) and its notify when the waiter observes zero, returns, and
/// the service is destroyed.  Each notifier copies the block before that
/// decrement so the mutex/cv (and the stopping flag the gate re-reads
/// afterwards) outlive the service for exactly that tail.
struct ShutdownSync {
  std::atomic<bool> stopping{false};  ///< admission gate
  std::mutex m;
  std::condition_variable cv;  ///< submitter window / inflight drained
};
}

class ServiceShard;

/// Completion handle for one submitted request.  Value semantics (shared
/// state); safe to wait/cancel/then from any thread.
class GemmFuture {
 public:
  GemmFuture() = default;

  /// True when this future refers to a submitted request.
  [[nodiscard]] bool valid() const { return st_ != nullptr; }

  /// Block until the request settles (done/cancelled/rejected); returns the
  /// result.  Returns immediately once settled.  By value on purpose: the
  /// idiomatic `service.submit(req).wait()` destroys the temporary future
  /// (and possibly the last reference to the shared state) as the full
  /// expression ends, so a reference would dangle.
  GemmResult wait() const;

  /// Bounded wait; true when the request settled within the timeout.
  [[nodiscard]] bool wait_for(double seconds) const;

  /// True when the request has settled.
  [[nodiscard]] bool settled() const;

  /// Snapshot of the current status (kQueued/kRunning are transient).
  [[nodiscard]] RequestStatus status() const;

  /// Cancel a still-queued request: it will never execute and its C is
  /// untouched.  Returns true when this call performed the cancellation;
  /// false when the request already ran, settled, or was claimed by a
  /// dispatcher.
  bool cancel();

  /// Attach a completion continuation, invoked exactly once with the final
  /// result — immediately (on the calling thread) if already settled,
  /// otherwise on the thread that settles the request.  One continuation
  /// per future chain; a second call replaces an un-fired one.
  void then(std::function<void(const GemmResult&)> fn);

 private:
  friend class GemmService;
  explicit GemmFuture(std::shared_ptr<detail::RequestState> st)
      : st_(std::move(st)) {}
  std::shared_ptr<detail::RequestState> st_;
};

/// Service tuning knobs.  queue_capacity and max_inflight are *per shard*:
/// a shard is a self-contained admission unit, and total service capacity
/// scales with the shard count.
struct ServiceConfig {
  /// Admission shards.  0 = auto: FTGEMM_SERVICE_SHARDS, else the
  /// machine's hardware concurrency.  Explicit config beats the env var.
  int shards = 0;
  /// Bounded per-shard admission queue: requests queued across the shard's
  /// priority lanes before submit() blocks / try_submit() rejects.
  std::size_t queue_capacity = 256;
  /// Concurrent request groups in flight per shard (each in-flight group
  /// leases one pool worker for its body; the GEMM inside opens its own
  /// team per its plan).
  int max_inflight = 2;
  /// Largest coalesced batch (members per merged batched call).
  index_t max_coalesce = 16;
  /// Merge same-fingerprint fast-path requests into batched calls.
  bool coalesce = true;
  /// Execute fast-path requests inline on the submitting thread when the
  /// service is idle enough (see inline_inflight_limit).
  bool inline_fast_lane = true;
  /// Inline executes only while the number of dispatcher groups in flight
  /// across all shards is below this.  0 = auto (shards * max_inflight):
  /// inline until the service's dispatch capacity is saturated, then queue
  /// so small requests coalesce behind the backlog instead of piling onto
  /// a busy machine.
  int inline_inflight_limit = 0;
  /// Idle shards steal coalescable groups from loaded siblings.
  bool steal = true;
  /// Start with dispatch paused (tests: lets a caller stage queues
  /// deterministically, then resume()).  Pausing also disables the inline
  /// fast lane, so staged requests queue in submission order.
  bool start_paused = false;
};

/// Per-shard monotonic counters (ServiceStats::shard).
struct ShardStats {
  std::uint64_t submitted = 0;   ///< requests admitted to this shard's queue
  std::uint64_t executed = 0;    ///< requests this shard's dispatcher ran
  std::uint64_t coalesced_batches = 0;  ///< merged calls it issued
  std::uint64_t coalesced_members = 0;  ///< requests folded into them
  std::uint64_t steals = 0;             ///< groups it stole from siblings
  std::uint64_t stolen_requests = 0;    ///< requests inside those groups
  std::uint64_t peak_queue_depth = 0;   ///< this shard's admission peak
};

/// Monotonic per-service counters (see stats()).
struct ServiceStats {
  std::uint64_t submitted = 0;   ///< requests accepted (queued or inline)
  std::uint64_t completed = 0;   ///< requests executed to kDone
  std::uint64_t cancelled = 0;   ///< requests cancelled while queued
  std::uint64_t rejected = 0;    ///< refused at submit
  std::uint64_t direct_calls = 0;     ///< single requests routed directly
  std::uint64_t batched_calls = 0;    ///< batch > 1 requests executed
  std::uint64_t coalesced_batches = 0;  ///< merged batched calls issued
  std::uint64_t coalesced_members = 0;  ///< requests folded into them
  std::uint64_t inline_executed = 0;  ///< requests run on the caller thread
  std::uint64_t steals = 0;           ///< groups stolen between shards
  std::uint64_t stolen_requests = 0;  ///< requests inside stolen groups
  std::int64_t errors_detected = 0;   ///< summed over all FT reports
  std::int64_t errors_corrected = 0;  ///< summed over all FT reports
  std::uint64_t dirty_results = 0;    ///< requests whose result was not clean
  /// Resident-weight serving (Options::resident_a): problems whose A came
  /// from the operand cache / had to be encoded there, and cached-panel
  /// integrity mismatches healed by re-encoding (batched requests count
  /// per member).
  std::uint64_t resident_hits = 0;
  std::uint64_t resident_misses = 0;
  std::int64_t resident_heals = 0;
  /// Resident-panel bits corrected in place by the SEC-DED syndrome sweep
  /// (FTGEMM_OPERAND_ECC) — corrections that did not need a re-encode heal.
  std::int64_t resident_ecc_corrected = 0;
  std::uint64_t peak_queue_depth = 0;  ///< max over shards
  std::uint64_t peak_inflight = 0;     ///< dispatcher groups, all shards
  std::vector<ShardStats> shard;       ///< per-shard breakdown
};

class GemmService {
 public:
  explicit GemmService(ServiceConfig config = {});
  ~GemmService();  ///< shutdown(true)

  GemmService(const GemmService&) = delete;
  GemmService& operator=(const GemmService&) = delete;

  /// Admit a request.  Fast-path requests may execute inline on this
  /// thread (see the file comment); otherwise blocks while the home
  /// shard's queue is full (backpressure).  Returns an immediately-settled
  /// kRejected future for invalid requests or after shutdown.
  GemmFuture submit(const GemmRequest& req);

  /// Non-blocking admit: like submit(), but a full shard yields an
  /// immediately-settled kRejected future (GemmResult::reject says which
  /// resource was exhausted) instead of blocking.
  GemmFuture try_submit(const GemmRequest& req);

  /// Bulk admission: admit a window of requests in one pass (per-request
  /// futures, index-aligned with the input).  Blocks for space like
  /// submit(); invalid members
  /// reject individually without poisoning the rest.  Maximal runs of
  /// same-fingerprint fast-path requests execute as ONE coalesced batched
  /// call inline on the calling thread when the fast lane is open — the
  /// natural client shape for pipelined serving traffic.
  std::vector<GemmFuture> submit_all(const std::vector<GemmRequest>& reqs);

  /// Suspend / resume dispatch on every shard (admission stays open while
  /// paused; the inline fast lane closes so order is preserved).
  void pause();
  void resume();

  /// Stop the service.  drain == true executes everything still queued;
  /// drain == false cancels it.  Either way every in-flight request
  /// completes and every future settles before shutdown returns.  Further
  /// submits are rejected.  Idempotent.
  void shutdown(bool drain = true);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const;  ///< sum over shards
  [[nodiscard]] int inflight() const;  ///< dispatcher groups, all shards
  [[nodiscard]] int shards() const { return nshards_; }

 private:
  friend class ServiceShard;

  enum class StopMode : int { kNone = 0, kDrain = 1, kCancel = 2 };

  GemmFuture enqueue(const GemmRequest& req, bool blocking);
  detail::Pending make_pending(const GemmRequest& req,
                               std::shared_ptr<detail::RequestState> st);
  ServiceShard& shard_for(const GemmRequest& req);
  bool inline_open(const ServiceShard& home) const;
  /// Run a claimed group (direct or coalesced) and settle every member;
  /// shard_id < 0 = inline lane (executed on the submitting thread).
  void execute_group(std::vector<detail::Pending>& group, int shard_id);
  void execute_direct(detail::Pending& p, bool inlined);
  template <typename S, typename C = S>
  void execute_coalesced_typed(std::vector<detail::Pending>& group,
                               int shard_id);
  void execute_coalesced_i8(std::vector<detail::Pending>& group,
                            int shard_id);
  void count_rejected(std::uint64_t n = 1);
  void count_cancelled(std::uint64_t n);
  void note_group_start();
  void note_group_end();
  /// Wake one parked sibling of `home` to go stealing (no-op when none is
  /// parked).
  void nudge_stealers(int home);
  /// Called by an idle shard: scan siblings for a stealable group.
  bool steal_for(int thief, std::vector<detail::Pending>& group);

  ServiceConfig cfg_;
  int nshards_ = 1;
  int lease_reserve_ = 0;  ///< runtime try-lease fairness (shards - 1)
  std::vector<std::unique_ptr<ServiceShard>> shards_;

  /// stopping flag + the mutex/cv shutdown's waits and their notifiers
  /// share; see detail::ShutdownSync for why it is shared, not a member.
  std::shared_ptr<detail::ShutdownSync> sync_ =
      std::make_shared<detail::ShutdownSync>();
  std::atomic<int> stop_mode_{int(StopMode::kNone)};
  std::atomic<bool> paused_{false};
  /// Submitters (incl. inline executions) currently inside admission;
  /// shutdown waits for this to drain before arming the dispatchers' stop
  /// mode, so no request can slip in behind a final queue sweep.
  std::atomic<int> active_submitters_{0};
  std::atomic<int> inflight_{0};  ///< dispatcher groups across shards

  std::mutex shutdown_m_;
  bool shards_joined_ = false;

  mutable std::mutex stats_m_;
  ServiceStats stats_;
};

}  // namespace ftgemm::serve
