// Asynchronous GEMM serving front-end on the persistent team runtime.
//
// Every entry point below PR 4 is synchronous: a caller blocks for the whole
// GEMM, so admission control, queueing, prioritization, and cross-request
// batching — the things serving-scale traffic is made of — all have to be
// reinvented by every application.  GemmService is that layer, built
// directly on the pieces the lower layers already provide:
//
//   submit(GemmRequest) -> GemmFuture
//
//   - A *bounded MPMC admission queue* (three FIFO lanes, one per
//     Priority).  submit() applies backpressure (blocks while the queue is
//     full); try_submit() sheds load instead (an immediately-settled
//     kRejected future).  Invalid requests (valid_gemm_args, null operand
//     pointers the call would dereference) are rejected at the door — a
//     serving process is never xerbla-aborted.
//
//   - A single *dispatcher thread* drains the queue highest-priority-first
//     and leases execution capacity from the PR 4 worker pool through the
//     runtime's asynchronous lease API (runtime::try_run_team_async — the
//     non-blocking try-lease — falling back to the pool-growing
//     run_team_async), bounded by ServiceConfig::max_inflight concurrent
//     requests.  Request bodies run *on pool workers*; the GEMM inside
//     opens its own thread team exactly as a synchronous call would.
//
//   - *Coalescing*: queued single-problem requests whose resolved plan
//     takes the small-GEMM fast path (planner-pinned to one thread) and
//     whose full plan fingerprint + scalars + leading dimensions match are
//     merged into one batched call on the inter-batch scheduler — one plan
//     fetch, one workspace-lease round-trip, and one dispatch for up to
//     max_coalesce requests.  See the bit-identity note below.
//
//   - *Cancellation* (GemmFuture::cancel — queued requests only),
//     *completion callbacks* (GemmFuture::then), and per-service counters
//     (ServiceStats) aggregating FtReport/BatchReport outcomes across every
//     request the service executed.
//
// Bit-identity contract: for every routing decision the dispatcher can make
// the delivered C (and FT detection behavior) is bit-identical to the
// synchronous entry point called with the same arguments and Options.
// Direct routes *are* the synchronous entry points, executed on a pool
// worker.  The coalesced route holds because coalescing is restricted to
// fast-path plans: the planner pins those to one thread regardless of the
// requested topology, and the batched inter-scheduler runs each member
// through the identical one-thread plan (same blocking, same kernels, same
// summation order) — execute_small either way.  tests/test_service.cpp
// asserts this differentially across shapes x backends x priorities.
//
// Threading contract: GemmFuture is a value handle, safe to wait/cancel
// from any thread.  then() continuations and completion run on service
// threads (a pool worker) — keep them light, and do not block them on other
// futures of the same service.  Requests racing on overlapping C regions
// are the caller's data race, exactly as with concurrent synchronous calls.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/gemm_batched.hpp"
#include "core/options.hpp"
#include "core/plan.hpp"

namespace ftgemm::serve {

/// Element type of a type-erased request.
enum class Precision { kF32, kF64 };

/// Admission-queue lane.  Higher lanes are always drained first; FIFO
/// within a lane.
enum class Priority { kLow = 0, kNormal = 1, kHigh = 2 };
inline constexpr int kPriorityLanes = 3;

/// One unit of work, covering every synchronous entry-point shape:
/// fp32/fp64, FT or Ori, single (batch == 1) or strided-batched
/// (batch > 1, with element strides between consecutive problems; stride 0
/// broadcasts A/B).  Operand pointers are type-erased so one queue serves
/// both precisions; build requests with the typed make_* helpers below.
/// `opts` is request-scoped: threads, runtime backend, ISA, tolerance,
/// injector and correction log all apply to this request alone.
struct GemmRequest {
  Precision precision = Precision::kF64;
  bool ft = true;
  Layout layout = Layout::kColMajor;
  Trans ta = Trans::kNoTrans;
  Trans tb = Trans::kNoTrans;
  index_t m = 0, n = 0, k = 0;
  double alpha = 1.0, beta = 0.0;  ///< cast to float for kF32 requests
  const void* a = nullptr;
  index_t lda = 0, stride_a = 0;
  const void* b = nullptr;
  index_t ldb = 0, stride_b = 0;
  void* c = nullptr;
  index_t ldc = 0, stride_c = 0;
  index_t batch = 1;
  Options opts;
  Priority priority = Priority::kNormal;
};

/// Typed builder for a single-problem request.
template <typename T>
GemmRequest make_gemm_request(bool ft, Layout layout, Trans ta, Trans tb,
                              index_t m, index_t n, index_t k, T alpha,
                              const T* a, index_t lda, const T* b, index_t ldb,
                              T beta, T* c, index_t ldc,
                              const Options& opts = {},
                              Priority priority = Priority::kNormal) {
  GemmRequest r;
  r.precision = sizeof(T) == 8 ? Precision::kF64 : Precision::kF32;
  r.ft = ft;
  r.layout = layout;
  r.ta = ta;
  r.tb = tb;
  r.m = m;
  r.n = n;
  r.k = k;
  r.alpha = double(alpha);
  r.beta = double(beta);
  r.a = a;
  r.lda = lda;
  r.b = b;
  r.ldb = ldb;
  r.c = c;
  r.ldc = ldc;
  r.opts = opts;
  r.priority = priority;
  return r;
}

/// Typed builder for a strided-batched request (stride 0 broadcasts A/B).
template <typename T>
GemmRequest make_strided_batched_request(
    bool ft, Layout layout, Trans ta, Trans tb, index_t m, index_t n,
    index_t k, T alpha, const T* a, index_t lda, index_t stride_a, const T* b,
    index_t ldb, index_t stride_b, T beta, T* c, index_t ldc,
    index_t stride_c, index_t batch, const Options& opts = {},
    Priority priority = Priority::kNormal) {
  GemmRequest r = make_gemm_request<T>(ft, layout, ta, tb, m, n, k, alpha, a,
                                       lda, b, ldb, beta, c, ldc, opts,
                                       priority);
  r.stride_a = stride_a;
  r.stride_b = stride_b;
  r.stride_c = stride_c;
  r.batch = batch;
  return r;
}

/// Lifecycle of one submitted request.
enum class RequestStatus {
  kQueued,     ///< admitted, awaiting dispatch
  kRunning,    ///< claimed by the dispatcher (no longer cancellable)
  kDone,       ///< executed; result fields are valid
  kCancelled,  ///< cancelled while queued; never executed, C untouched
  kRejected,   ///< refused at submit (invalid args, queue full, shut down)
};

/// Outcome of one request.
struct GemmResult {
  RequestStatus status = RequestStatus::kQueued;
  /// Single-problem outcome: the FtReport of the call (default-initialized
  /// for Ori requests, which report nothing).  For a coalesced request this
  /// is the member's own report out of the batched call.
  FtReport report;
  /// Strided-batched (batch > 1) outcome, per_problem included.
  BatchReport batch;
  /// The request was executed via coalesced-into-batched routing.
  bool coalesced = false;

  /// Executed and trustworthy: done, accepted, and every panel clean.
  [[nodiscard]] bool ok() const {
    return status == RequestStatus::kDone && !report.invalid_args &&
           !batch.invalid_args && report.clean() && batch.clean();
  }
};

namespace detail {
struct RequestState;
}

/// Completion handle for one submitted request.  Value semantics (shared
/// state); safe to wait/cancel/then from any thread.
class GemmFuture {
 public:
  GemmFuture() = default;

  /// True when this future refers to a submitted request.
  [[nodiscard]] bool valid() const { return st_ != nullptr; }

  /// Block until the request settles (done/cancelled/rejected); returns the
  /// result.  Returns immediately once settled.  By value on purpose: the
  /// idiomatic `service.submit(req).wait()` destroys the temporary future
  /// (and possibly the last reference to the shared state) as the full
  /// expression ends, so a reference would dangle.
  GemmResult wait() const;

  /// Bounded wait; true when the request settled within the timeout.
  [[nodiscard]] bool wait_for(double seconds) const;

  /// True when the request has settled.
  [[nodiscard]] bool settled() const;

  /// Snapshot of the current status (kQueued/kRunning are transient).
  [[nodiscard]] RequestStatus status() const;

  /// Cancel a still-queued request: it will never execute and its C is
  /// untouched.  Returns true when this call performed the cancellation;
  /// false when the request already ran, settled, or was claimed by the
  /// dispatcher.
  bool cancel();

  /// Attach a completion continuation, invoked exactly once with the final
  /// result — immediately (on the calling thread) if already settled,
  /// otherwise on the service thread that settles the request.  One
  /// continuation per future chain; a second call replaces an un-fired one.
  void then(std::function<void(const GemmResult&)> fn);

 private:
  friend class GemmService;
  explicit GemmFuture(std::shared_ptr<detail::RequestState> st)
      : st_(std::move(st)) {}
  std::shared_ptr<detail::RequestState> st_;
};

/// Service tuning knobs.
struct ServiceConfig {
  /// Bounded admission queue: total requests queued across all priority
  /// lanes before submit() blocks / try_submit() rejects.
  std::size_t queue_capacity = 256;
  /// Concurrent requests in flight on the runtime pool (each in-flight
  /// request leases one pool worker for its body; the GEMM inside opens its
  /// own team per its plan).
  int max_inflight = 2;
  /// Largest coalesced batch (members per merged batched call).
  index_t max_coalesce = 16;
  /// Merge same-fingerprint fast-path requests into batched calls.
  bool coalesce = true;
  /// Start with the dispatcher paused (tests: lets a caller stage a queue
  /// deterministically, then resume()).
  bool start_paused = false;
};

/// Monotonic per-service counters (see stats()).
struct ServiceStats {
  std::uint64_t submitted = 0;   ///< requests admitted to the queue
  std::uint64_t completed = 0;   ///< requests executed to kDone
  std::uint64_t cancelled = 0;   ///< requests cancelled while queued
  std::uint64_t rejected = 0;    ///< refused at submit
  std::uint64_t direct_calls = 0;     ///< single requests routed directly
  std::uint64_t batched_calls = 0;    ///< batch > 1 requests executed
  std::uint64_t coalesced_batches = 0;  ///< merged batched calls issued
  std::uint64_t coalesced_members = 0;  ///< requests folded into them
  std::int64_t errors_detected = 0;   ///< summed over all FT reports
  std::int64_t errors_corrected = 0;  ///< summed over all FT reports
  std::uint64_t dirty_results = 0;    ///< requests whose result was not clean
  /// Resident-weight serving (Options::resident_a): problems whose A came
  /// from the operand cache / had to be encoded there, and cached-panel
  /// integrity mismatches healed by re-encoding (batched requests count
  /// per member).
  std::uint64_t resident_hits = 0;
  std::uint64_t resident_misses = 0;
  std::int64_t resident_heals = 0;
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t peak_inflight = 0;
};

class GemmService {
 public:
  explicit GemmService(ServiceConfig config = {});
  ~GemmService();  ///< shutdown(true)

  GemmService(const GemmService&) = delete;
  GemmService& operator=(const GemmService&) = delete;

  /// Admit a request.  Blocks while the queue is full (backpressure);
  /// returns an immediately-settled kRejected future for invalid requests
  /// or after shutdown.
  GemmFuture submit(const GemmRequest& req);

  /// Non-blocking admit: like submit(), but a full queue yields an
  /// immediately-settled kRejected future instead of blocking.
  GemmFuture try_submit(const GemmRequest& req);

  /// Bulk admission: admit a window of requests under one queue lock and a
  /// single dispatcher wake (per-request futures, index-aligned with the
  /// input).  Blocks for space like submit(); invalid members reject
  /// individually without poisoning the rest.  This is the natural client
  /// shape for pipelined serving traffic — submit a window, drain it.
  std::vector<GemmFuture> submit_all(const std::vector<GemmRequest>& reqs);

  /// Suspend / resume dispatch (admission stays open while paused).
  void pause();
  void resume();

  /// Stop the service.  drain == true executes everything still queued;
  /// drain == false cancels it.  Either way every in-flight request
  /// completes and every future settles before shutdown returns.  Further
  /// submits are rejected.  Idempotent.
  void shutdown(bool drain = true);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] int inflight() const;

 private:
  struct Pending {
    GemmRequest req;
    std::shared_ptr<detail::RequestState> state;
    PlanKey key;             ///< resolved fingerprint (normalized dims)
    bool coalescible = false;
  };
  struct InflightSlot;

  GemmFuture enqueue(const GemmRequest& req, bool blocking);
  Pending make_pending(const GemmRequest& req,
                       std::shared_ptr<detail::RequestState> st);
  void dispatcher_main();
  void execute_slot(InflightSlot& slot);
  void release_slot(InflightSlot& slot);
  void execute_direct(const Pending& p);
  void execute_coalesced(InflightSlot& slot);
  template <typename T>
  void execute_coalesced_typed(InflightSlot& slot);

  ServiceConfig cfg_;

  mutable std::mutex qm_;
  std::condition_variable qcv_;       ///< wakes the dispatcher
  std::condition_variable space_cv_;  ///< wakes submitters awaiting space
  std::deque<Pending> lanes_[kPriorityLanes];
  std::size_t queued_ = 0;  ///< entries across lanes (incl. cancelled-not-yet-popped)
  bool paused_ = false;
  bool stopping_ = false;
  bool dispatcher_waiting_ = false;  ///< dispatcher parked on qcv_ (under qm_)
  std::uint64_t submitted_ = 0;         ///< admission counters live under
  std::uint64_t peak_queue_depth_ = 0;  ///< qm_; stats() merges them in

  mutable std::mutex sm_;
  std::condition_variable scv_;  ///< slot freed / all in-flight done
  std::vector<std::unique_ptr<InflightSlot>> slots_;
  std::vector<InflightSlot*> free_slots_;
  int inflight_ = 0;

  mutable std::mutex stats_m_;
  ServiceStats stats_;

  std::thread dispatcher_;
};

}  // namespace ftgemm::serve
