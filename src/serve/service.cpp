// GemmService implementation: the sharded front-end — validation, plan
// resolution, the inline-execute fast lane, shard selection, admission,
// shutdown, and group execution on behalf of the shard dispatchers (see
// serve/service.hpp for the contracts, serve/shard.hpp for the per-shard
// mechanics, serve/shard.cpp for the lock order).
//
// Lifetime protocol of one request: enqueue() validates, resolves the plan
// fingerprint, and either (a) executes inline on the calling thread when
// the fast lane is open, or (b) reserves a slot in the home shard's
// lock-free ring.  A dispatcher (the home shard's, or a stealing sibling)
// claims it into a group and calls back into execute_group(), which runs
// the synchronous entry points, updates counters, and settles every
// future.  Futures are settled before the in-flight slot is released, so a
// client observing its future done and immediately destroying the service
// still blocks in ~GemmService until the completion has finished touching
// service memory.
//
// Shutdown protocol (the subtle part of lock-free admission): the shared
// stopping flag closes the door; every submitter passes through the
// active_submitters_ window, and shutdown() waits for that window to drain
// *before* arming stop_mode_ — so by the time a dispatcher runs its final
// drain/cancel sweep, no producer can be mid-push and no request can be
// admitted and never settled.  The flag and shutdown's mutex/cv live in a
// shared detail::ShutdownSync block so a notifier that released one of
// shutdown's waits can finish its notify after the service is destroyed.
#include "serve/service.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <type_traits>
#include <utility>

#include "core/context.hpp"
#include "core/driver.hpp"
#include "core/gemm.hpp"
#include "core/gemm_i8.hpp"
#include "runtime/topology.hpp"
#include "serve/shard.hpp"
#include "serve/state.hpp"
#include "util/env.hpp"

namespace ftgemm::serve {

// ---------------------------------------------------------------------------
// GemmFuture
// ---------------------------------------------------------------------------

GemmResult GemmFuture::wait() const {
  if (!st_) {
    GemmResult res;
    res.status = RequestStatus::kRejected;
    return res;
  }
  // Fast path: a settled future costs one acquire load, no lock — the
  // common case for a client draining a pipelined window newest-first.
  if (detail::is_settled(st_->status.load(std::memory_order_acquire))) {
    return st_->result;
  }
  std::unique_lock<std::mutex> lk(st_->m);
  st_->cv.wait(lk, [&] {
    return detail::is_settled(
        st_->status.load(std::memory_order_acquire));
  });
  return st_->result;
}

bool GemmFuture::wait_for(double seconds) const {
  if (!st_) return true;
  if (detail::is_settled(st_->status.load(std::memory_order_acquire))) {
    return true;
  }
  std::unique_lock<std::mutex> lk(st_->m);
  return st_->cv.wait_for(lk, std::chrono::duration<double>(seconds), [&] {
    return detail::is_settled(
        st_->status.load(std::memory_order_acquire));
  });
}

bool GemmFuture::settled() const {
  return st_ == nullptr || detail::is_settled(detail::status_of(*st_));
}

RequestStatus GemmFuture::status() const {
  return st_ ? detail::status_of(*st_) : RequestStatus::kRejected;
}

bool GemmFuture::cancel() {
  return st_ != nullptr && detail::try_cancel(*st_);
}

void GemmFuture::then(std::function<void(const GemmResult&)> fn) {
  if (!st_ || !fn) return;
  bool now = false;
  {
    std::lock_guard<std::mutex> lk(st_->m);
    if (detail::is_settled(st_->status.load(std::memory_order_acquire))) {
      now = true;
    } else {
      st_->continuation = std::move(fn);
    }
  }
  if (now) fn(st_->result);
}

// ---------------------------------------------------------------------------
// Request validation / routing helpers
// ---------------------------------------------------------------------------

namespace {

/// Everything the entry points would reject plus the null-pointer
/// dereferences only the service can see (it knows alpha up front).
bool request_valid(const GemmRequest& r) {
  if (r.batch < 1) return false;
  // int8 exactness depth bound — the entry points would reject it anyway;
  // catching it at the door avoids planning an unusable shape.
  if (r.precision == Precision::kI8 && r.k > kI8MaxDepth) return false;
  Trans ta = r.ta, tb = r.tb;
  index_t m = r.m, n = r.n, lda = r.lda, ldb = r.ldb;
  const void* a = r.a;
  const void* b = r.b;
  ftgemm::detail::normalize_layout(r.layout, ta, tb, m, n, a, lda, b, ldb);
  if (!valid_gemm_args(ta, tb, m, n, r.k, lda, ldb, r.ldc)) return false;
  if (m > 0 && n > 0) {
    if (r.c == nullptr) return false;
    if (r.k > 0 && r.alpha != 0.0 && (r.a == nullptr || r.b == nullptr))
      return false;
  }
  return true;
}

template <typename S, typename C = S>
bool plan_takes_fast_path(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                          const Options& opts, bool ft, PlanKey& key) {
  key = make_plan_key(ta, tb, m, n, k, opts, ft);
  // The shared process-wide cache: this is the very plan a synchronous call
  // of the same fingerprint resolves, so the lookup doubles as a warm-up.
  // ContextCache::plan stamps the storage-dtype tag into the key, so the
  // fingerprint this request coalesces under is dtype-qualified.
  const auto plan = process_context_cache<S, C>().plan(key);
  key = plan->key;
  return plan->fast_path;
}

/// Whether the request's resolved plan is planner-pinned to one thread (the
/// small-GEMM fast path) — the condition under which both the inline fast
/// lane pays off and batched-member execution is bit-identical to the
/// synchronous call (see the header's bit-identity contract).
bool resolve_fast_path(const GemmRequest& r, PlanKey& key) {
  Trans ta = r.ta, tb = r.tb;
  index_t m = r.m, n = r.n, lda = r.lda, ldb = r.ldb;
  const void* a = r.a;
  const void* b = r.b;
  ftgemm::detail::normalize_layout(r.layout, ta, tb, m, n, a, lda, b, ldb);
  switch (r.precision) {
    case Precision::kF64:
      return plan_takes_fast_path<double>(ta, tb, m, n, r.k, r.opts, r.ft,
                                          key);
    case Precision::kBf16:
      return plan_takes_fast_path<bf16_t, float>(ta, tb, m, n, r.k, r.opts,
                                                 r.ft, key);
    case Precision::kF16:
      return plan_takes_fast_path<fp16_t, float>(ta, tb, m, n, r.k, r.opts,
                                                 r.ft, key);
    case Precision::kI8:
      return plan_takes_fast_path<std::int8_t, std::int32_t>(
          ta, tb, m, n, r.k, r.opts, r.ft, key);
    case Precision::kF32:
      break;
  }
  return plan_takes_fast_path<float>(ta, tb, m, n, r.k, r.opts, r.ft, key);
}

/// Synchronous execution of one request through the public entry points —
/// the direct and inline routes *are* the synchronous API (on a pool
/// worker / the caller thread).
template <typename T>
GemmResult run_direct(const GemmRequest& r) {
  GemmResult res;
  const T alpha = T(r.alpha);
  const T beta = T(r.beta);
  const T* a = static_cast<const T*>(r.a);
  const T* b = static_cast<const T*>(r.b);
  T* c = static_cast<T*>(r.c);
  if (r.batch > 1) {
    BatchOptions bopts;
    bopts.base = r.opts;
    res.batch =
        r.ft ? ft_gemm_strided_batched<T>(r.layout, r.ta, r.tb, r.m, r.n, r.k,
                                          alpha, a, r.lda, r.stride_a, b,
                                          r.ldb, r.stride_b, beta, c, r.ldc,
                                          r.stride_c, r.batch, bopts)
             : gemm_strided_batched<T>(r.layout, r.ta, r.tb, r.m, r.n, r.k,
                                       alpha, a, r.lda, r.stride_a, b, r.ldb,
                                       r.stride_b, beta, c, r.ldc, r.stride_c,
                                       r.batch, bopts);
  } else if (r.ft) {
    if constexpr (sizeof(T) == 8) {
      res.report = ft_dgemm(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a,
                            r.lda, b, r.ldb, beta, c, r.ldc, r.opts);
    } else {
      res.report = ft_sgemm(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a,
                            r.lda, b, r.ldb, beta, c, r.ldc, r.opts);
    }
  } else {
    if constexpr (sizeof(T) == 8) {
      dgemm(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a, r.lda, b, r.ldb,
            beta, c, r.ldc, r.opts);
    } else {
      sgemm(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a, r.lda, b, r.ldb,
            beta, c, r.ldc, r.opts);
    }
  }
  res.status = RequestStatus::kDone;
  return res;
}

/// Mixed-precision direct execution: narrow (bf16/fp16) A and B, fp32 C,
/// through the dedicated entry points (core/gemm.hpp).
template <typename S>
GemmResult run_direct_mixed(const GemmRequest& r) {
  GemmResult res;
  const float alpha = float(r.alpha);
  const float beta = float(r.beta);
  const S* a = static_cast<const S*>(r.a);
  const S* b = static_cast<const S*>(r.b);
  float* c = static_cast<float*>(r.c);
  if (r.batch > 1) {
    BatchOptions bopts;
    bopts.base = r.opts;
    res.batch =
        r.ft ? ft_gemm_strided_batched<S, float>(
                   r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a, r.lda,
                   r.stride_a, b, r.ldb, r.stride_b, beta, c, r.ldc,
                   r.stride_c, r.batch, bopts)
             : gemm_strided_batched<S, float>(
                   r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a, r.lda,
                   r.stride_a, b, r.ldb, r.stride_b, beta, c, r.ldc,
                   r.stride_c, r.batch, bopts);
  } else if (r.ft) {
    if constexpr (std::is_same_v<S, bf16_t>) {
      res.report = ft_gemm_bf16(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a,
                                r.lda, b, r.ldb, beta, c, r.ldc, r.opts);
    } else {
      res.report = ft_gemm_f16(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a,
                               r.lda, b, r.ldb, beta, c, r.ldc, r.opts);
    }
  } else {
    if constexpr (std::is_same_v<S, bf16_t>) {
      gemm_bf16(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a, r.lda, b,
                r.ldb, beta, c, r.ldc, r.opts);
    } else {
      gemm_f16(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a, r.lda, b, r.ldb,
               beta, c, r.ldc, r.opts);
    }
  }
  res.status = RequestStatus::kDone;
  return res;
}

/// Quantized int8 direct execution: s8 A and B, fp32 scalars and C, the
/// request's QuantParams passed through (core/gemm_i8.hpp).
GemmResult run_direct_i8(const GemmRequest& r) {
  GemmResult res;
  const float alpha = float(r.alpha);
  const float beta = float(r.beta);
  const auto* a = static_cast<const std::int8_t*>(r.a);
  const auto* b = static_cast<const std::int8_t*>(r.b);
  auto* c = static_cast<float*>(r.c);
  if (r.batch > 1) {
    BatchOptions bopts;
    bopts.base = r.opts;
    res.batch =
        r.ft ? ft_gemm_i8_strided_batched(r.layout, r.ta, r.tb, r.m, r.n, r.k,
                                          alpha, a, r.lda, r.stride_a, b,
                                          r.ldb, r.stride_b, beta, c, r.ldc,
                                          r.stride_c, r.batch, r.qp, bopts)
             : gemm_i8_strided_batched(r.layout, r.ta, r.tb, r.m, r.n, r.k,
                                       alpha, a, r.lda, r.stride_a, b, r.ldb,
                                       r.stride_b, beta, c, r.ldc, r.stride_c,
                                       r.batch, r.qp, bopts);
  } else if (r.ft) {
    res.report = ft_gemm_i8(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a,
                            r.lda, b, r.ldb, beta, c, r.ldc, r.qp, r.opts);
  } else {
    gemm_i8(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a, r.lda, b, r.ldb,
            beta, c, r.ldc, r.qp, r.opts);
  }
  res.status = RequestStatus::kDone;
  return res;
}

/// RAII pass through the admission window: shutdown() waits for this count
/// to drain before arming the dispatchers' stop mode, so a producer that
/// passed the stopping check can always finish its reservation + push.
struct SubmitterGate {
  std::atomic<int>& count;
  /// Owning copy: the decrement below may release shutdown()'s wait, after
  /// which the service can be destroyed under us — everything this
  /// destructor touches past that decrement must live in the shared block.
  std::shared_ptr<detail::ShutdownSync> sync;

  SubmitterGate(std::atomic<int>& c, std::shared_ptr<detail::ShutdownSync> s)
      : count(c), sync(std::move(s)) {
    count.fetch_add(1, std::memory_order_seq_cst);
  }
  ~SubmitterGate() {
    // seq_cst load: if shutdown's predicate missed this decrement (slept
    // on count == 1), its earlier stopping store is S-ordered before the
    // decrement and must be visible here so the wake gets delivered.
    if (count.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
        sync->stopping.load(std::memory_order_seq_cst)) {
      { std::lock_guard<std::mutex> lk(sync->m); }
      sync->cv.notify_all();
    }
  }
};

/// Round-robin home-shard assignment: each submitting thread gets a stable
/// index on first contact with any service, so one client's pipelined
/// window lands on one shard (coalescing) while distinct clients spread
/// across shards (parallel dispatch).
std::atomic<unsigned> g_thread_seq{0};

unsigned thread_home_index() {
  thread_local const unsigned idx =
      g_thread_seq.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

}  // namespace

// ---------------------------------------------------------------------------
// GemmService — construction / admission
// ---------------------------------------------------------------------------

GemmService::GemmService(ServiceConfig config) : cfg_(config) {
  cfg_.queue_capacity = std::max<std::size_t>(cfg_.queue_capacity, 1);
  cfg_.max_inflight = std::max(cfg_.max_inflight, 1);
  cfg_.max_coalesce = std::max<index_t>(cfg_.max_coalesce, 1);
  int shards = cfg_.shards;
  if (shards <= 0) {
    const long env = env_long("FTGEMM_SERVICE_SHARDS", 0);
    shards = env > 0 ? int(std::min<long>(env, 64))
                     : runtime::hardware_concurrency();
  }
  nshards_ = std::clamp(shards, 1, 64);
  cfg_.shards = nshards_;
  lease_reserve_ = nshards_ - 1;
  if (cfg_.inline_inflight_limit <= 0) {
    cfg_.inline_inflight_limit = nshards_ * cfg_.max_inflight;
  }
  paused_.store(cfg_.start_paused, std::memory_order_seq_cst);
  shards_.reserve(std::size_t(nshards_));
  for (int i = 0; i < nshards_; ++i) {
    shards_.push_back(
        std::make_unique<ServiceShard>(this, i, cfg_.queue_capacity));
  }
  // Start after every shard exists: a dispatcher may immediately scan the
  // whole vector for steal victims.
  for (auto& s : shards_) s->start();
}

GemmService::~GemmService() { shutdown(true); }

GemmFuture GemmService::submit(const GemmRequest& req) {
  return enqueue(req, /*blocking=*/true);
}

GemmFuture GemmService::try_submit(const GemmRequest& req) {
  return enqueue(req, /*blocking=*/false);
}

/// Build the queue entry for one validated request (state, plan
/// fingerprint, inline/coalescing eligibility).
detail::Pending GemmService::make_pending(
    const GemmRequest& req, std::shared_ptr<detail::RequestState> st) {
  detail::Pending p;
  p.req = req;
  p.state = std::move(st);
  if (req.batch == 1) {
    p.inline_eligible = resolve_fast_path(req, p.key);
    // resident_a / injector / correction_log requests route direct: the
    // synchronous entry point resolves those per request (operand-cache
    // verify/heal accounting, fault injection, logging), which coalesced
    // members would not surface individually.  They may still run inline —
    // the inline route *is* the synchronous entry point.
    p.coalescible = p.inline_eligible && cfg_.coalesce &&
                    req.opts.injector == nullptr &&
                    req.opts.correction_log == nullptr && !req.opts.resident_a;
  }
  return p;
}

ServiceShard& GemmService::shard_for(const GemmRequest& req) {
  if (req.shard_hint >= 0) {
    return *shards_[std::size_t(req.shard_hint % nshards_)];
  }
  return *shards_[std::size_t(thread_home_index() % unsigned(nshards_))];
}

bool GemmService::inline_open(const ServiceShard& home) const {
  // Closed while paused (order must be preserved for staged queues), while
  // the home shard has a backlog (no queue-jumping past requests this
  // thread already queued), and once dispatch capacity is saturated
  // (queueing lets small requests coalesce behind the backlog instead).
  return cfg_.inline_fast_lane &&
         !paused_.load(std::memory_order_acquire) &&
         !sync_->stopping.load(std::memory_order_acquire) &&
         home.queued() == 0 &&
         inflight_.load(std::memory_order_acquire) <
             cfg_.inline_inflight_limit;
}

GemmFuture GemmService::enqueue(const GemmRequest& req, bool blocking) {
  auto st = std::make_shared<detail::RequestState>();
  GemmFuture fut(st);
  if (!request_valid(req)) {
    detail::reject_unpublished(*st, RejectReason::kInvalidRequest);
    count_rejected();
    return fut;
  }
  SubmitterGate gate(active_submitters_, sync_);
  if (sync_->stopping.load(std::memory_order_acquire)) {
    detail::reject_unpublished(*st, RejectReason::kShuttingDown);
    count_rejected();
    return fut;
  }
  detail::Pending p = make_pending(req, std::move(st));
  ServiceShard& home = shard_for(req);
  if (p.inline_eligible && inline_open(home)) {
    // The future has not been returned yet, so the claim cannot race a
    // cancel; the gate keeps shutdown from completing under our feet.
    detail::try_claim(*p.state);
    std::vector<detail::Pending> group;
    group.push_back(std::move(p));
    execute_group(group, /*shard_id=*/-1);
    return fut;
  }
  const ServiceShard::Admit verdict =
      blocking ? home.admit_blocking(p) : home.try_admit(p);
  switch (verdict) {
    case ServiceShard::Admit::kOk:
      break;
    case ServiceShard::Admit::kStopping:
      detail::reject_unpublished(*p.state, RejectReason::kShuttingDown);
      count_rejected();
      break;
    case ServiceShard::Admit::kFull:
      detail::reject_unpublished(*p.state,
                                 paused_.load(std::memory_order_acquire)
                                     ? RejectReason::kPaused
                                     : RejectReason::kQueueFull);
      count_rejected();
      break;
  }
  return fut;
}

std::vector<GemmFuture> GemmService::submit_all(
    const std::vector<GemmRequest>& reqs) {
  std::vector<GemmFuture> futures;
  futures.reserve(reqs.size());
  std::vector<detail::Pending> ready;
  ready.reserve(reqs.size());
  std::uint64_t rejected = 0;
  SubmitterGate gate(active_submitters_, sync_);
  const bool stopping_now = sync_->stopping.load(std::memory_order_acquire);
  for (const GemmRequest& r : reqs) {
    auto st = std::make_shared<detail::RequestState>();
    futures.push_back(GemmFuture(st));
    if (stopping_now) {
      detail::reject_unpublished(*st, RejectReason::kShuttingDown);
      ++rejected;
      continue;
    }
    if (!request_valid(r)) {
      detail::reject_unpublished(*st, RejectReason::kInvalidRequest);
      ++rejected;
      continue;
    }
    ready.push_back(make_pending(r, std::move(st)));
  }
  std::size_t i = 0;
  while (i < ready.size()) {
    ServiceShard& home = shard_for(ready[i].req);
    if (ready[i].inline_eligible && inline_open(home)) {
      // Inline window: a maximal run of same-fingerprint coalescible
      // fast-path requests executes as ONE batched call on this thread —
      // one plan fetch + workspace lease for the whole run, which is how
      // pipelined small-GEMM windows beat a synchronous loop.
      std::vector<detail::Pending> group;
      group.push_back(std::move(ready[i]));
      detail::try_claim(*group.front().state);
      std::size_t j = i + 1;
      if (group.front().coalescible) {
        const GemmRequest head = group.front().req;
        const PlanKey head_key = group.front().key;
        while (j < ready.size() &&
               index_t(group.size()) < cfg_.max_coalesce &&
               detail::coalesce_match(head, head_key, ready[j])) {
          detail::try_claim(*ready[j].state);
          group.push_back(std::move(ready[j]));
          ++j;
        }
      }
      execute_group(group, /*shard_id=*/-1);
      i = j;
      continue;
    }
    if (home.admit_blocking(ready[i]) == ServiceShard::Admit::kStopping) {
      detail::reject_unpublished(*ready[i].state,
                                 RejectReason::kShuttingDown);
      ++rejected;
    }
    ++i;
  }
  if (rejected > 0) count_rejected(rejected);
  return futures;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void GemmService::pause() {
  paused_.store(true, std::memory_order_seq_cst);
}

void GemmService::resume() {
  paused_.store(false, std::memory_order_seq_cst);
  // Nudge, not just wake: a shard with an empty queue of its own should
  // take a steal pass over the staged siblings before parking again.
  for (auto& s : shards_) s->nudge();
}

void GemmService::shutdown(bool drain) {
  std::lock_guard<std::mutex> slk(shutdown_m_);
  if (shards_joined_) return;
  sync_->stopping.store(true, std::memory_order_seq_cst);
  // Unpause only when draining: drain must execute the backlog, but a
  // cancel-mode shutdown of a paused service must keep the dispatchers
  // parked, or they could build and execute staged groups in the window
  // between here and the stop_mode_ store below.  Cancel mode needs no
  // unpause — the dispatcher loop checks kCancel before it checks paused,
  // and the park predicate wakes on any nonzero stop mode.
  if (drain) paused_.store(false, std::memory_order_seq_cst);
  // First wake: unblock space-waiting producers (they observe stopping
  // and bow out through their gates).
  for (auto& s : shards_) s->wake_all();
  {
    std::unique_lock<std::mutex> lk(sync_->m);
    sync_->cv.wait(lk, [&] {
      return active_submitters_.load(std::memory_order_seq_cst) == 0;
    });
  }
  // The admission window is drained: every accepted request is in a ring.
  // Arm the dispatchers' final sweep and collect them.
  stop_mode_.store(int(drain ? StopMode::kDrain : StopMode::kCancel),
                   std::memory_order_seq_cst);
  for (auto& s : shards_) s->wake_all();
  for (auto& s : shards_) s->join();
  {
    std::unique_lock<std::mutex> lk(sync_->m);
    sync_->cv.wait(lk, [&] {
      return inflight_.load(std::memory_order_seq_cst) == 0;
    });
  }
  shards_joined_ = true;
}

// ---------------------------------------------------------------------------
// Counters / introspection
// ---------------------------------------------------------------------------

void GemmService::count_rejected(std::uint64_t n) {
  std::lock_guard<std::mutex> lk(stats_m_);
  stats_.rejected += n;
}

void GemmService::count_cancelled(std::uint64_t n) {
  std::lock_guard<std::mutex> lk(stats_m_);
  stats_.cancelled += n;
}

void GemmService::note_group_start() {
  const int now = inflight_.fetch_add(1, std::memory_order_seq_cst) + 1;
  std::lock_guard<std::mutex> lk(stats_m_);
  stats_.peak_inflight =
      std::max<std::uint64_t>(stats_.peak_inflight, std::uint64_t(now));
}

void GemmService::note_group_end() {
  // Copy the block before the decrement: reaching zero releases
  // shutdown()'s final wait, after which ~GemmService can run — without
  // the copy this thread's notify would broadcast on a destroyed cv (a
  // pthread_cond_destroy race, TSan-visible on pool completions).
  std::shared_ptr<detail::ShutdownSync> sync = sync_;
  if (inflight_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    { std::lock_guard<std::mutex> lk(sync->m); }
    sync->cv.notify_all();
  }
}

void GemmService::nudge_stealers(int home) {
  if (nshards_ <= 1 || !cfg_.steal) return;
  for (int d = 1; d < nshards_; ++d) {
    ServiceShard& s = *shards_[std::size_t((home + d) % nshards_)];
    if (s.parked()) {
      s.nudge();
      return;
    }
  }
}

bool GemmService::steal_for(int thief, std::vector<detail::Pending>& group) {
  if (nshards_ <= 1) return false;
  for (int d = 1; d < nshards_; ++d) {
    ServiceShard& victim = *shards_[std::size_t((thief + d) % nshards_)];
    std::uint64_t cancelled = 0;
    const bool got = victim.steal_group(group, cancelled);
    if (cancelled > 0) count_cancelled(cancelled);
    if (got) {
      auto& c = shards_[std::size_t(thief)]->counters;
      c.steals.fetch_add(1, std::memory_order_relaxed);
      c.stolen_requests.fetch_add(group.size(), std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

ServiceStats GemmService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    out = stats_;
  }
  out.shard.reserve(shards_.size());
  std::uint64_t submitted = out.inline_executed;
  for (const auto& s : shards_) {
    ShardStats ss = s->snapshot();
    submitted += ss.submitted;
    out.steals += ss.steals;
    out.stolen_requests += ss.stolen_requests;
    out.peak_queue_depth =
        std::max(out.peak_queue_depth, ss.peak_queue_depth);
    out.shard.push_back(ss);
  }
  out.submitted = submitted;
  return out;
}

std::size_t GemmService::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& s : shards_) depth += s->queued();
  return depth;
}

int GemmService::inflight() const {
  return inflight_.load(std::memory_order_seq_cst);
}

// ---------------------------------------------------------------------------
// Group execution (called from shard dispatchers, pool workers, and the
// inline fast lane)
// ---------------------------------------------------------------------------

void GemmService::execute_group(std::vector<detail::Pending>& group,
                                int shard_id) {
  const bool inlined = shard_id < 0;
  if (group.size() == 1) {
    execute_direct(group.front(), inlined);
  } else {
    switch (group.front().req.precision) {
      case Precision::kF64:
        execute_coalesced_typed<double>(group, shard_id);
        break;
      case Precision::kF32:
        execute_coalesced_typed<float>(group, shard_id);
        break;
      case Precision::kBf16:
        execute_coalesced_typed<bf16_t, float>(group, shard_id);
        break;
      case Precision::kF16:
        execute_coalesced_typed<fp16_t, float>(group, shard_id);
        break;
      case Precision::kI8:
        execute_coalesced_i8(group, shard_id);
        break;
    }
  }
  if (inlined) {
    std::lock_guard<std::mutex> lk(stats_m_);
    stats_.inline_executed += std::uint64_t(group.size());
  } else {
    shards_[std::size_t(shard_id)]->counters.executed.fetch_add(
        group.size(), std::memory_order_relaxed);
  }
}

void GemmService::execute_direct(detail::Pending& p, bool inlined) {
  GemmResult res;
  switch (p.req.precision) {
    case Precision::kF64: res = run_direct<double>(p.req); break;
    case Precision::kF32: res = run_direct<float>(p.req); break;
    case Precision::kBf16: res = run_direct_mixed<bf16_t>(p.req); break;
    case Precision::kF16: res = run_direct_mixed<fp16_t>(p.req); break;
    case Precision::kI8: res = run_direct_i8(p.req); break;
  }
  res.inlined = inlined;
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    ++stats_.completed;
    if (p.req.batch > 1) {
      ++stats_.batched_calls;
      stats_.errors_detected += res.batch.errors_detected;
      stats_.errors_corrected += res.batch.errors_corrected;
      if (!res.batch.clean() || res.batch.invalid_args) ++stats_.dirty_results;
      if (p.req.opts.resident_a && !res.batch.invalid_args) {
        stats_.resident_hits += std::uint64_t(res.batch.resident_hits);
        stats_.resident_misses +=
            std::uint64_t(res.batch.problems - res.batch.resident_hits);
        stats_.resident_heals += res.batch.resident_heals;
        stats_.resident_ecc_corrected += res.batch.resident_ecc_corrected;
      }
    } else {
      ++stats_.direct_calls;
      stats_.errors_detected += res.report.errors_detected;
      stats_.errors_corrected += res.report.errors_corrected;
      if (!res.report.clean() || res.report.invalid_args)
        ++stats_.dirty_results;
      if (p.req.opts.resident_a && !res.report.invalid_args) {
        res.report.resident_hit ? ++stats_.resident_hits
                                : ++stats_.resident_misses;
        stats_.resident_heals += res.report.resident_heals;
        stats_.resident_ecc_corrected += res.report.resident_ecc_corrected;
      }
    }
  }
  detail::settle(*p.state, std::move(res));
}

template <typename S, typename C>
void GemmService::execute_coalesced_typed(std::vector<detail::Pending>& group,
                                          int shard_id) {
  const GemmRequest& head = group.front().req;
  const index_t members = index_t(group.size());
  std::vector<const S*> ap(static_cast<std::size_t>(members));
  std::vector<const S*> bp(static_cast<std::size_t>(members));
  std::vector<C*> cp(static_cast<std::size_t>(members));
  for (index_t i = 0; i < members; ++i) {
    const GemmRequest& r = group[std::size_t(i)].req;
    ap[std::size_t(i)] = static_cast<const S*>(r.a);
    bp[std::size_t(i)] = static_cast<const S*>(r.b);
    cp[std::size_t(i)] = static_cast<C*>(r.c);
  }
  // Inter-batch by construction: every member's plan is fast-path (one
  // thread), so per-member execution inside the batched call is the same
  // execute_small a synchronous call runs — the bit-identity contract.
  BatchOptions bopts;
  bopts.base = head.opts;
  bopts.schedule = BatchSchedule::kInter;
  const BatchReport rep =
      head.ft ? ft_gemm_batched<S, C>(head.layout, head.ta, head.tb, head.m,
                                      head.n, head.k, C(head.alpha),
                                      ap.data(), head.lda, bp.data(),
                                      head.ldb, C(head.beta), cp.data(),
                                      head.ldc, members, bopts)
              : gemm_batched<S, C>(head.layout, head.ta, head.tb, head.m,
                                   head.n, head.k, C(head.alpha), ap.data(),
                                   head.lda, bp.data(), head.ldb,
                                   C(head.beta), cp.data(), head.ldc, members,
                                   bopts);
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    stats_.completed += std::uint64_t(members);
    ++stats_.coalesced_batches;
    stats_.coalesced_members += std::uint64_t(members);
    stats_.errors_detected += rep.errors_detected;
    stats_.errors_corrected += rep.errors_corrected;
    stats_.dirty_results += std::uint64_t(rep.dirty_problems);
    if (rep.invalid_args) stats_.dirty_results += std::uint64_t(members);
  }
  if (shard_id >= 0) {
    auto& c = shards_[std::size_t(shard_id)]->counters;
    c.coalesced_batches.fetch_add(1, std::memory_order_relaxed);
    c.coalesced_members.fetch_add(std::uint64_t(members),
                                  std::memory_order_relaxed);
  }
  const bool inlined = shard_id < 0;
  for (index_t i = 0; i < members; ++i) {
    GemmResult res;
    res.status = RequestStatus::kDone;
    res.coalesced = true;
    res.inlined = inlined;
    if (head.ft && std::size_t(i) < rep.per_problem.size()) {
      res.report = rep.per_problem[std::size_t(i)];
    }
    res.report.invalid_args = rep.invalid_args;
    detail::settle(*group[std::size_t(i)].state, std::move(res));
  }
}

void GemmService::execute_coalesced_i8(std::vector<detail::Pending>& group,
                                       int shard_id) {
  // Mirror of execute_coalesced_typed with the int8 call shape: fp32
  // scalars and C, one QuantParams for the whole merged batch
  // (coalesce_match required every member's to be equal).
  const GemmRequest& head = group.front().req;
  const index_t members = index_t(group.size());
  std::vector<const std::int8_t*> ap(static_cast<std::size_t>(members));
  std::vector<const std::int8_t*> bp(static_cast<std::size_t>(members));
  std::vector<float*> cp(static_cast<std::size_t>(members));
  for (index_t i = 0; i < members; ++i) {
    const GemmRequest& r = group[std::size_t(i)].req;
    ap[std::size_t(i)] = static_cast<const std::int8_t*>(r.a);
    bp[std::size_t(i)] = static_cast<const std::int8_t*>(r.b);
    cp[std::size_t(i)] = static_cast<float*>(r.c);
  }
  BatchOptions bopts;
  bopts.base = head.opts;
  bopts.schedule = BatchSchedule::kInter;
  const BatchReport rep =
      head.ft ? ft_gemm_i8_batched(head.layout, head.ta, head.tb, head.m,
                                   head.n, head.k, float(head.alpha),
                                   ap.data(), head.lda, bp.data(), head.ldb,
                                   float(head.beta), cp.data(), head.ldc,
                                   members, head.qp, bopts)
              : gemm_i8_batched(head.layout, head.ta, head.tb, head.m, head.n,
                                head.k, float(head.alpha), ap.data(),
                                head.lda, bp.data(), head.ldb,
                                float(head.beta), cp.data(), head.ldc,
                                members, head.qp, bopts);
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    stats_.completed += std::uint64_t(members);
    ++stats_.coalesced_batches;
    stats_.coalesced_members += std::uint64_t(members);
    stats_.errors_detected += rep.errors_detected;
    stats_.errors_corrected += rep.errors_corrected;
    stats_.dirty_results += std::uint64_t(rep.dirty_problems);
    if (rep.invalid_args) stats_.dirty_results += std::uint64_t(members);
  }
  if (shard_id >= 0) {
    auto& c = shards_[std::size_t(shard_id)]->counters;
    c.coalesced_batches.fetch_add(1, std::memory_order_relaxed);
    c.coalesced_members.fetch_add(std::uint64_t(members),
                                  std::memory_order_relaxed);
  }
  const bool inlined = shard_id < 0;
  for (index_t i = 0; i < members; ++i) {
    GemmResult res;
    res.status = RequestStatus::kDone;
    res.coalesced = true;
    res.inlined = inlined;
    if (head.ft && std::size_t(i) < rep.per_problem.size()) {
      res.report = rep.per_problem[std::size_t(i)];
    }
    res.report.invalid_args = rep.invalid_args;
    detail::settle(*group[std::size_t(i)].state, std::move(res));
  }
}

template void GemmService::execute_coalesced_typed<float, float>(
    std::vector<detail::Pending>&, int);
template void GemmService::execute_coalesced_typed<double, double>(
    std::vector<detail::Pending>&, int);
template void GemmService::execute_coalesced_typed<bf16_t, float>(
    std::vector<detail::Pending>&, int);
template void GemmService::execute_coalesced_typed<fp16_t, float>(
    std::vector<detail::Pending>&, int);

}  // namespace ftgemm::serve
