// GemmService implementation: bounded priority admission queue, dispatcher
// thread, coalesced-into-batched routing, async pool leases (see
// serve/service.hpp for the contracts).
//
// Lock order (never taken in reverse, never nested beyond one level plus
// the stats leaf):
//   RequestState::m  — per-request settle/claim/cancel transitions;
//   qm_              — admission queue;
//   sm_              — in-flight slots;
//   stats_m_         — counters (leaf; taken under qm_ for queue peaks).
//
// Lifetime protocol of one dispatch: the dispatcher moves a claimed group
// into a free InflightSlot and leases a pool worker via the runtime's async
// API (try-lease first — admission control without spawning — then the
// growing lease).  The worker runs execute_slot (the GEMM(s) + settling
// every future + counters); the runtime then invokes the completion hook,
// whose ONLY job is release_slot: push the slot back and wake the
// dispatcher/shutdown.  Futures are settled before the slot is released, so
// a client observing its future done and immediately destroying the service
// still blocks in ~GemmService until the completion has finished touching
// service memory.
#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "core/context.hpp"
#include "core/driver.hpp"
#include "core/gemm.hpp"
#include "runtime/team.hpp"

namespace ftgemm::serve {

namespace detail {

/// Shared state behind one GemmFuture.  `status` is the request's state
/// machine, kept in an atomic so the serving hot path stays lock-light:
/// the dispatcher's claim is a bare CAS, and a wait() on an
/// already-settled future is a single acquire load (the common case for a
/// client draining a pipelined window).  `result` is written exclusively
/// by the settling thread *before* the status release-store, so readers
/// gated on the acquire load see it complete.  The mutex guards the
/// condition variable handshake and the continuation slot.
struct RequestState {
  std::atomic<RequestStatus> status{RequestStatus::kQueued};
  std::mutex m;
  std::condition_variable cv;
  GemmResult result;
  std::function<void(const GemmResult&)> continuation;
};

namespace {

[[nodiscard]] bool is_settled(RequestStatus s) {
  return s == RequestStatus::kDone || s == RequestStatus::kCancelled ||
         s == RequestStatus::kRejected;
}

/// Settle a request with its final result and fire the continuation (once,
/// outside the state lock — settled results are immutable, so the unlocked
/// read is safe).
void settle(RequestState& st, GemmResult&& res) {
  std::function<void(const GemmResult&)> cont;
  const RequestStatus final_status = res.status;
  st.result = std::move(res);
  {
    std::lock_guard<std::mutex> lk(st.m);
    st.status.store(final_status, std::memory_order_release);
    cont = std::move(st.continuation);
    st.continuation = nullptr;
  }
  st.cv.notify_all();
  if (cont) cont(st.result);
}

/// kQueued -> kCancelled; false when the request was already claimed or
/// settled.
bool try_cancel(RequestState& st) {
  std::function<void(const GemmResult&)> cont;
  {
    std::lock_guard<std::mutex> lk(st.m);
    RequestStatus expect = RequestStatus::kQueued;
    if (!st.status.compare_exchange_strong(expect, RequestStatus::kCancelled,
                                           std::memory_order_acq_rel)) {
      return false;
    }
    st.result.status = RequestStatus::kCancelled;
    cont = std::move(st.continuation);
    st.continuation = nullptr;
  }
  st.cv.notify_all();
  if (cont) cont(st.result);
  return true;
}

/// kQueued -> kRunning (the dispatcher's claim); false when a racing
/// cancel won.  Lock-free: the CAS is the arbiter against try_cancel.
bool try_claim(RequestState& st) {
  RequestStatus expect = RequestStatus::kQueued;
  return st.status.compare_exchange_strong(expect, RequestStatus::kRunning,
                                           std::memory_order_acq_rel);
}

[[nodiscard]] RequestStatus status_of(RequestState& st) {
  return st.status.load(std::memory_order_acquire);
}

}  // namespace
}  // namespace detail

// ---------------------------------------------------------------------------
// GemmFuture
// ---------------------------------------------------------------------------

GemmResult GemmFuture::wait() const {
  if (!st_) return GemmResult{RequestStatus::kRejected, {}, {}, false};
  // Fast path: a settled future costs one acquire load, no lock — the
  // common case for a client draining a pipelined window newest-first.
  if (detail::is_settled(st_->status.load(std::memory_order_acquire))) {
    return st_->result;
  }
  std::unique_lock<std::mutex> lk(st_->m);
  st_->cv.wait(lk, [&] {
    return detail::is_settled(
        st_->status.load(std::memory_order_acquire));
  });
  return st_->result;
}

bool GemmFuture::wait_for(double seconds) const {
  if (!st_) return true;
  if (detail::is_settled(st_->status.load(std::memory_order_acquire))) {
    return true;
  }
  std::unique_lock<std::mutex> lk(st_->m);
  return st_->cv.wait_for(lk, std::chrono::duration<double>(seconds), [&] {
    return detail::is_settled(
        st_->status.load(std::memory_order_acquire));
  });
}

bool GemmFuture::settled() const {
  return st_ == nullptr || detail::is_settled(detail::status_of(*st_));
}

RequestStatus GemmFuture::status() const {
  return st_ ? detail::status_of(*st_) : RequestStatus::kRejected;
}

bool GemmFuture::cancel() {
  return st_ != nullptr && detail::try_cancel(*st_);
}

void GemmFuture::then(std::function<void(const GemmResult&)> fn) {
  if (!st_ || !fn) return;
  bool now = false;
  {
    std::lock_guard<std::mutex> lk(st_->m);
    if (detail::is_settled(st_->status.load(std::memory_order_acquire))) {
      now = true;
    } else {
      st_->continuation = std::move(fn);
    }
  }
  if (now) fn(st_->result);
}

// ---------------------------------------------------------------------------
// Request validation / routing helpers
// ---------------------------------------------------------------------------

namespace {

/// Everything the entry points would reject plus the null-pointer
/// dereferences only the service can see (it knows alpha up front).
bool request_valid(const GemmRequest& r) {
  if (r.batch < 1) return false;
  Trans ta = r.ta, tb = r.tb;
  index_t m = r.m, n = r.n, lda = r.lda, ldb = r.ldb;
  const void* a = r.a;
  const void* b = r.b;
  ftgemm::detail::normalize_layout(r.layout, ta, tb, m, n, a, lda, b, ldb);
  if (!valid_gemm_args(ta, tb, m, n, r.k, lda, ldb, r.ldc)) return false;
  if (m > 0 && n > 0) {
    if (r.c == nullptr) return false;
    if (r.k > 0 && r.alpha != 0.0 && (r.a == nullptr || r.b == nullptr))
      return false;
  }
  return true;
}

template <typename T>
bool plan_takes_fast_path(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                          const Options& opts, bool ft, PlanKey& key) {
  key = make_plan_key(ta, tb, m, n, k, opts, ft);
  // The shared process-wide cache: this is the very plan a synchronous call
  // of the same fingerprint resolves, so the lookup doubles as a warm-up.
  return process_context_cache<T>().plan(key)->fast_path;
}

/// A request may join a coalesced batch only when its resolved plan is
/// planner-pinned to one thread (the small-GEMM fast path) — the condition
/// under which batched-member execution is bit-identical to the synchronous
/// call (see the header's bit-identity contract).
bool resolve_coalescible(const GemmRequest& r, PlanKey& key) {
  Trans ta = r.ta, tb = r.tb;
  index_t m = r.m, n = r.n, lda = r.lda, ldb = r.ldb;
  const void* a = r.a;
  const void* b = r.b;
  ftgemm::detail::normalize_layout(r.layout, ta, tb, m, n, a, lda, b, ldb);
  return r.precision == Precision::kF64
             ? plan_takes_fast_path<double>(ta, tb, m, n, r.k, r.opts, r.ft,
                                            key)
             : plan_takes_fast_path<float>(ta, tb, m, n, r.k, r.opts, r.ft,
                                           key);
}

/// Synchronous execution of one request through the public entry points —
/// the direct route is the synchronous API, running on a pool worker.
template <typename T>
GemmResult run_direct(const GemmRequest& r) {
  GemmResult res;
  const T alpha = T(r.alpha);
  const T beta = T(r.beta);
  const T* a = static_cast<const T*>(r.a);
  const T* b = static_cast<const T*>(r.b);
  T* c = static_cast<T*>(r.c);
  if (r.batch > 1) {
    BatchOptions bopts;
    bopts.base = r.opts;
    res.batch =
        r.ft ? ft_gemm_strided_batched<T>(r.layout, r.ta, r.tb, r.m, r.n, r.k,
                                          alpha, a, r.lda, r.stride_a, b,
                                          r.ldb, r.stride_b, beta, c, r.ldc,
                                          r.stride_c, r.batch, bopts)
             : gemm_strided_batched<T>(r.layout, r.ta, r.tb, r.m, r.n, r.k,
                                       alpha, a, r.lda, r.stride_a, b, r.ldb,
                                       r.stride_b, beta, c, r.ldc, r.stride_c,
                                       r.batch, bopts);
  } else if (r.ft) {
    if constexpr (sizeof(T) == 8) {
      res.report = ft_dgemm(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a,
                            r.lda, b, r.ldb, beta, c, r.ldc, r.opts);
    } else {
      res.report = ft_sgemm(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a,
                            r.lda, b, r.ldb, beta, c, r.ldc, r.opts);
    }
  } else {
    if constexpr (sizeof(T) == 8) {
      dgemm(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a, r.lda, b, r.ldb,
            beta, c, r.ldc, r.opts);
    } else {
      sgemm(r.layout, r.ta, r.tb, r.m, r.n, r.k, alpha, a, r.lda, b, r.ldb,
            beta, c, r.ldc, r.opts);
    }
  }
  res.status = RequestStatus::kDone;
  return res;
}

}  // namespace

// ---------------------------------------------------------------------------
// GemmService
// ---------------------------------------------------------------------------

struct GemmService::InflightSlot {
  explicit InflightSlot(GemmService* s) : owner(s) {}

  GemmService* owner;
  std::vector<Pending> group;

  // Stable callable objects the runtime's non-owning TeamFnRef /
  // CompletionRef can reference for the whole dispatch.
  struct BodyFn {
    InflightSlot* slot;
    void operator()(runtime::TeamMember&) const {
      slot->owner->execute_slot(*slot);
    }
  };
  struct DoneFn {
    InflightSlot* slot;
    void operator()() const { slot->owner->release_slot(*slot); }
  };
  BodyFn body{this};
  DoneFn done{this};
};

GemmService::GemmService(ServiceConfig config) : cfg_(config) {
  cfg_.queue_capacity = std::max<std::size_t>(cfg_.queue_capacity, 1);
  cfg_.max_inflight = std::max(cfg_.max_inflight, 1);
  cfg_.max_coalesce = std::max<index_t>(cfg_.max_coalesce, 1);
  paused_ = cfg_.start_paused;
  slots_.reserve(std::size_t(cfg_.max_inflight));
  free_slots_.reserve(std::size_t(cfg_.max_inflight));
  for (int i = 0; i < cfg_.max_inflight; ++i) {
    slots_.push_back(std::make_unique<InflightSlot>(this));
    free_slots_.push_back(slots_.back().get());
  }
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

GemmService::~GemmService() { shutdown(true); }

GemmFuture GemmService::submit(const GemmRequest& req) {
  return enqueue(req, /*blocking=*/true);
}

GemmFuture GemmService::try_submit(const GemmRequest& req) {
  return enqueue(req, /*blocking=*/false);
}

namespace {

/// Pre-publication rejection: no other thread can see the state yet, so
/// both status stores need no lock.
void reject_unpublished(detail::RequestState& st) {
  st.result.status = RequestStatus::kRejected;
  st.status.store(RequestStatus::kRejected, std::memory_order_release);
}

}  // namespace

/// Build the queue entry for one validated request (state, plan
/// fingerprint, coalescing eligibility).
GemmService::Pending GemmService::make_pending(
    const GemmRequest& req, std::shared_ptr<detail::RequestState> st) {
  Pending p;
  p.req = req;
  p.state = std::move(st);
  // resident_a requests route direct: the synchronous entry point resolves
  // the operand cache (and its per-hit verify/heal accounting) per request,
  // which coalesced members would not surface individually.
  if (cfg_.coalesce && req.batch == 1 && req.opts.injector == nullptr &&
      req.opts.correction_log == nullptr && !req.opts.resident_a) {
    p.coalescible = resolve_coalescible(req, p.key);
  }
  return p;
}

GemmFuture GemmService::enqueue(const GemmRequest& req, bool blocking) {
  auto st = std::make_shared<detail::RequestState>();
  GemmFuture fut(st);
  if (!request_valid(req)) {
    reject_unpublished(*st);
    std::lock_guard<std::mutex> slk(stats_m_);
    ++stats_.rejected;
    return fut;
  }
  Pending p = make_pending(req, st);
  {
    std::unique_lock<std::mutex> lk(qm_);
    if (blocking) {
      space_cv_.wait(lk, [&] {
        return stopping_ || queued_ < cfg_.queue_capacity;
      });
    }
    if (stopping_ || queued_ >= cfg_.queue_capacity) {
      lk.unlock();
      reject_unpublished(*st);
      std::lock_guard<std::mutex> slk(stats_m_);
      ++stats_.rejected;
      return fut;
    }
    const int lane = std::clamp(int(req.priority), 0, kPriorityLanes - 1);
    lanes_[lane].push_back(std::move(p));
    ++queued_;
    ++submitted_;
    peak_queue_depth_ = std::max<std::uint64_t>(peak_queue_depth_, queued_);
    // A running dispatcher re-checks the queue before parking; only an
    // actually-parked one needs the wake.
    if (dispatcher_waiting_) qcv_.notify_one();
  }
  return fut;
}

std::vector<GemmFuture> GemmService::submit_all(
    const std::vector<GemmRequest>& reqs) {
  std::vector<GemmFuture> futures;
  futures.reserve(reqs.size());
  std::vector<Pending> ready;
  ready.reserve(reqs.size());
  std::uint64_t rejected = 0;
  for (const GemmRequest& r : reqs) {
    auto st = std::make_shared<detail::RequestState>();
    futures.push_back(GemmFuture(st));
    if (!request_valid(r)) {
      reject_unpublished(*st);
      ++rejected;
      continue;
    }
    ready.push_back(make_pending(r, std::move(st)));
  }
  {
    std::unique_lock<std::mutex> lk(qm_);
    for (Pending& p : ready) {
      space_cv_.wait(lk, [&] {
        return stopping_ || queued_ < cfg_.queue_capacity;
      });
      if (stopping_) {
        reject_unpublished(*p.state);
        ++rejected;
        continue;
      }
      const int lane =
          std::clamp(int(p.req.priority), 0, kPriorityLanes - 1);
      lanes_[lane].push_back(std::move(p));
      ++queued_;
      ++submitted_;
    }
    peak_queue_depth_ = std::max<std::uint64_t>(peak_queue_depth_, queued_);
    if (dispatcher_waiting_) qcv_.notify_one();
  }
  if (rejected > 0) {
    std::lock_guard<std::mutex> slk(stats_m_);
    stats_.rejected += rejected;
  }
  return futures;
}

void GemmService::pause() {
  std::lock_guard<std::mutex> lk(qm_);
  paused_ = true;
}

void GemmService::resume() {
  {
    std::lock_guard<std::mutex> lk(qm_);
    paused_ = false;
  }
  qcv_.notify_all();
}

void GemmService::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lk(qm_);
    stopping_ = true;
    paused_ = false;
    if (!drain) {
      std::uint64_t cancelled = 0;
      for (auto& lane : lanes_) {
        for (Pending& p : lane) {
          if (detail::try_cancel(*p.state) ||
              detail::status_of(*p.state) == RequestStatus::kCancelled) {
            ++cancelled;
          }
        }
        lane.clear();
      }
      queued_ = 0;
      std::lock_guard<std::mutex> slk(stats_m_);
      stats_.cancelled += cancelled;
    }
    qcv_.notify_all();
    space_cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  std::unique_lock<std::mutex> lk(sm_);
  scv_.wait(lk, [&] { return inflight_ == 0; });
}

ServiceStats GemmService::stats() const {
  std::uint64_t submitted, peak_queue;
  {
    std::lock_guard<std::mutex> lk(qm_);
    submitted = submitted_;
    peak_queue = peak_queue_depth_;
  }
  std::lock_guard<std::mutex> lk(stats_m_);
  ServiceStats out = stats_;
  out.submitted = submitted;
  out.peak_queue_depth = peak_queue;
  return out;
}

std::size_t GemmService::queue_depth() const {
  std::lock_guard<std::mutex> lk(qm_);
  return queued_;
}

int GemmService::inflight() const {
  std::lock_guard<std::mutex> lk(sm_);
  return inflight_;
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

void GemmService::dispatcher_main() {
  for (;;) {
    std::vector<Pending> group;
    {
      std::unique_lock<std::mutex> lk(qm_);
      dispatcher_waiting_ = true;
      qcv_.wait(lk, [&] { return stopping_ || (!paused_ && queued_ > 0); });
      dispatcher_waiting_ = false;
      if (queued_ == 0) {
        if (stopping_) return;
        continue;
      }
      if (paused_ && !stopping_) continue;

      // Pop the first claimable entry, highest priority lane first;
      // cancelled entries drain here (and are counted) on the way.
      std::uint64_t cancelled = 0;
      for (int lane = kPriorityLanes - 1; lane >= 0 && group.empty();
           --lane) {
        auto& q = lanes_[lane];
        while (!q.empty() && group.empty()) {
          Pending p = std::move(q.front());
          q.pop_front();
          --queued_;
          if (detail::try_claim(*p.state)) {
            group.push_back(std::move(p));
          } else {
            ++cancelled;
          }
        }
      }

      // Coalesce: sweep every lane (priority order, FIFO within) for
      // requests in the same group, up to max_coalesce members.
      if (!group.empty() && group.front().coalescible &&
          index_t(group.size()) < cfg_.max_coalesce) {
        // Copies, not references: push_back below reallocates the group.
        const GemmRequest x = group.front().req;
        const PlanKey head_key = group.front().key;
        for (int lane = kPriorityLanes - 1; lane >= 0; --lane) {
          auto& q = lanes_[lane];
          for (auto it = q.begin();
               it != q.end() && index_t(group.size()) < cfg_.max_coalesce;) {
            const GemmRequest& y = it->req;
            const bool match = it->coalescible &&
                               x.precision == y.precision &&
                               x.layout == y.layout && x.alpha == y.alpha &&
                               x.beta == y.beta && x.lda == y.lda &&
                               x.ldb == y.ldb && x.ldc == y.ldc &&
                               head_key == it->key;
            if (!match) {
              ++it;
              continue;
            }
            if (detail::try_claim(*it->state)) {
              group.push_back(std::move(*it));
            } else {
              ++cancelled;
            }
            it = q.erase(it);
            --queued_;
          }
          if (index_t(group.size()) >= cfg_.max_coalesce) break;
        }
      }
      if (cancelled > 0) {
        std::lock_guard<std::mutex> slk(stats_m_);
        stats_.cancelled += cancelled;
      }
      space_cv_.notify_all();
      if (group.empty()) continue;
    }

    // Lease an in-flight slot (bounded concurrency); completions free them.
    InflightSlot* slot = nullptr;
    {
      std::unique_lock<std::mutex> lk(sm_);
      scv_.wait(lk, [&] { return !free_slots_.empty(); });
      slot = free_slots_.back();
      free_slots_.pop_back();
      ++inflight_;
      std::lock_guard<std::mutex> slk(stats_m_);
      stats_.peak_inflight =
          std::max<std::uint64_t>(stats_.peak_inflight,
                                  std::uint64_t(inflight_));
    }
    slot->group = std::move(group);

    if (cfg_.max_inflight == 1) {
      // One group at a time either way: execute inline on the dispatcher
      // thread and skip the per-group pool handoff (a parked-worker wake +
      // completion round trip — two context switches a 1-wide service
      // would pay for nothing).
      execute_slot(*slot);
      release_slot(*slot);
      continue;
    }
    // Lease execution from the pool: the non-blocking try-lease first (a
    // parked worker picks the job up with no spawn), the growing lease as
    // the fallback so progress is never gated on pool capacity.
    if (!runtime::try_run_team_async(1, slot->body, slot->done)) {
      runtime::run_team_async(1, slot->body, slot->done);
    }
  }
}

// ---------------------------------------------------------------------------
// Execution on pool workers
// ---------------------------------------------------------------------------

void GemmService::execute_slot(InflightSlot& slot) {
  if (slot.group.size() == 1) {
    execute_direct(slot.group.front());
  } else {
    execute_coalesced(slot);
  }
}

void GemmService::release_slot(InflightSlot& slot) {
  slot.group.clear();
  std::lock_guard<std::mutex> lk(sm_);
  free_slots_.push_back(&slot);
  --inflight_;
  scv_.notify_all();
}

void GemmService::execute_direct(const Pending& p) {
  GemmResult res = p.req.precision == Precision::kF64
                       ? run_direct<double>(p.req)
                       : run_direct<float>(p.req);
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    ++stats_.completed;
    if (p.req.batch > 1) {
      ++stats_.batched_calls;
      stats_.errors_detected += res.batch.errors_detected;
      stats_.errors_corrected += res.batch.errors_corrected;
      if (!res.batch.clean() || res.batch.invalid_args) ++stats_.dirty_results;
      if (p.req.opts.resident_a && !res.batch.invalid_args) {
        stats_.resident_hits += std::uint64_t(res.batch.resident_hits);
        stats_.resident_misses +=
            std::uint64_t(res.batch.problems - res.batch.resident_hits);
        stats_.resident_heals += res.batch.resident_heals;
      }
    } else {
      ++stats_.direct_calls;
      stats_.errors_detected += res.report.errors_detected;
      stats_.errors_corrected += res.report.errors_corrected;
      if (!res.report.clean() || res.report.invalid_args)
        ++stats_.dirty_results;
      if (p.req.opts.resident_a && !res.report.invalid_args) {
        res.report.resident_hit ? ++stats_.resident_hits
                                : ++stats_.resident_misses;
        stats_.resident_heals += res.report.resident_heals;
      }
    }
  }
  detail::settle(*p.state, std::move(res));
}

void GemmService::execute_coalesced(InflightSlot& slot) {
  if (slot.group.front().req.precision == Precision::kF64) {
    execute_coalesced_typed<double>(slot);
  } else {
    execute_coalesced_typed<float>(slot);
  }
}

template <typename T>
void GemmService::execute_coalesced_typed(InflightSlot& slot) {
  const GemmRequest& head = slot.group.front().req;
  const index_t members = index_t(slot.group.size());
  std::vector<const T*> ap(static_cast<std::size_t>(members));
  std::vector<const T*> bp(static_cast<std::size_t>(members));
  std::vector<T*> cp(static_cast<std::size_t>(members));
  for (index_t i = 0; i < members; ++i) {
    const GemmRequest& r = slot.group[std::size_t(i)].req;
    ap[std::size_t(i)] = static_cast<const T*>(r.a);
    bp[std::size_t(i)] = static_cast<const T*>(r.b);
    cp[std::size_t(i)] = static_cast<T*>(r.c);
  }
  // Inter-batch by construction: every member's plan is fast-path (one
  // thread), so per-member execution inside the batched call is the same
  // execute_small a synchronous call runs — the bit-identity contract.
  BatchOptions bopts;
  bopts.base = head.opts;
  bopts.schedule = BatchSchedule::kInter;
  const BatchReport rep =
      head.ft ? ft_gemm_batched<T>(head.layout, head.ta, head.tb, head.m,
                                   head.n, head.k, T(head.alpha), ap.data(),
                                   head.lda, bp.data(), head.ldb,
                                   T(head.beta), cp.data(), head.ldc, members,
                                   bopts)
              : gemm_batched<T>(head.layout, head.ta, head.tb, head.m, head.n,
                                head.k, T(head.alpha), ap.data(), head.lda,
                                bp.data(), head.ldb, T(head.beta), cp.data(),
                                head.ldc, members, bopts);
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    stats_.completed += std::uint64_t(members);
    ++stats_.coalesced_batches;
    stats_.coalesced_members += std::uint64_t(members);
    stats_.errors_detected += rep.errors_detected;
    stats_.errors_corrected += rep.errors_corrected;
    stats_.dirty_results += std::uint64_t(rep.dirty_problems);
    if (rep.invalid_args) stats_.dirty_results += std::uint64_t(members);
  }
  for (index_t i = 0; i < members; ++i) {
    GemmResult res;
    res.status = RequestStatus::kDone;
    res.coalesced = true;
    if (head.ft && std::size_t(i) < rep.per_problem.size()) {
      res.report = rep.per_problem[std::size_t(i)];
    }
    res.report.invalid_args = rep.invalid_args;
    detail::settle(*slot.group[std::size_t(i)].state, std::move(res));
  }
}

template void GemmService::execute_coalesced_typed<float>(InflightSlot&);
template void GemmService::execute_coalesced_typed<double>(InflightSlot&);

}  // namespace ftgemm::serve
