// One admission shard of the GemmService: a bounded lock-free submit ring
// per priority lane, plus the dispatcher thread that drains them.
//
// The serving layer splits into N of these so that (a) producers on
// different client threads never contend on one queue lock — admission is
// a CAS-reservation against the shard's `queued_` counter followed by a
// lock-free ring push — and (b) dispatch parallelism scales with shards
// instead of funneling through a single dispatcher.  Client threads are
// round-robin affine to a home shard, so one client's pipelined window
// lands contiguously in one shard's rings and keeps its coalescing
// opportunity.
//
// Consumer side: the owning dispatcher and any *stealing* sibling
// dispatcher serialize on `pop_m_` — a consumer-only mutex producers never
// touch.  Serializing consumers buys two properties cheaply: a coalescable
// same-fingerprint run is always popped atomically as ONE group (never
// split between the owner and a thief, so stolen traffic coalesces exactly
// like owned traffic), and one `holdover_` slot *per priority lane* is
// enough to hold the popped-but-mismatched entry a coalescing sweep can
// end on (a ring, unlike the old deque, cannot skip an entry in place).
// The slot must be per lane, not per shard: a sweep can park a mismatch
// from a higher lane while a lower lane's holdover is still waiting, and a
// single slot would overwrite — and thereby lose — the parked request.
// Because take_next re-offers a lane's holdover before that lane's ring, a
// popped ring entry's own slot is provably empty, so a park can never
// clobber (asserted in put_holdover).  Re-offering the holdover first
// within its lane preserves per-lane FIFO; higher lanes still pre-empt it.
//
// Steal protocol: an idle dispatcher (own rings empty, not paused, service
// not draining) scans siblings for `queued() > 0` and pops a whole group
// off the first loaded victim, taking that victim's pop_m_ (held only for
// popping, never across execution, so the wait is short and bounded).  The
// victim's producers are unaffected (they never take pop_m_); the victim's
// dispatcher is by definition busy executing, or it would be popping
// itself.  Producers nudge one parked sibling when their home shard's
// backlog grows while its dispatcher is busy, so steals happen on demand
// rather than by polling.
//
// Park/wake: the dispatcher parks on `cv_` with `parked_` raised; a
// producer that observes `parked_` (seq_cst, Dekker-style against the
// dispatcher's predicate re-check under the mutex) takes the shard mutex
// empty and notifies.  The common-case push — dispatcher running — stays
// lock-free end to end.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/plan.hpp"
#include "serve/queue.hpp"
#include "serve/service.hpp"
#include "serve/state.hpp"

namespace ftgemm::serve {

namespace detail {

/// One admitted request in flight through the serving layer.
struct Pending {
  GemmRequest req;
  std::shared_ptr<RequestState> state;
  PlanKey key{};
  /// Resolved plan takes the fast path AND the request is mergeable into a
  /// batched call (single problem, no injector/correction log/resident
  /// operand — see GemmService::make_pending).
  bool coalescible = false;
  /// Resolved plan takes the fast path (single problem): the inline
  /// fast lane may execute it on the submitting thread.
  bool inline_eligible = false;
};

/// Requests that may merge into one batched call: identical plan
/// fingerprint, scalars, and leading dimensions (the batched entry point
/// takes one set of each).  Shared by the dispatchers' group building and
/// submit_all's inline window merging.
inline bool coalesce_match(const GemmRequest& x, const PlanKey& xkey,
                           const Pending& y) {
  const GemmRequest& r = y.req;
  return y.coalescible && x.precision == r.precision &&
         x.layout == r.layout && x.alpha == r.alpha && x.beta == r.beta &&
         x.lda == r.lda && x.ldb == r.ldb && x.ldc == r.ldc &&
         xkey == y.key &&
         // int8 batched calls take ONE QuantParams for every member.
         (x.precision != Precision::kI8 || x.qp == r.qp);
}

}  // namespace detail

class ServiceShard {
 public:
  ServiceShard(GemmService* owner, int id, std::size_t capacity);
  ~ServiceShard();

  ServiceShard(const ServiceShard&) = delete;
  ServiceShard& operator=(const ServiceShard&) = delete;

  /// Spawn the dispatcher (separate from construction so every shard
  /// exists before any dispatcher can go stealing across the vector).
  void start();
  void join();

  enum class Admit { kOk, kFull, kStopping };

  /// Lock-free admission: reserve a queue slot (CAS on queued_), push to
  /// the request's priority ring, wake the dispatcher if parked.  kFull
  /// when the shard is at capacity; `p` is consumed only on kOk.
  Admit try_admit(detail::Pending& p);

  /// Blocking admission: waits for queue space (backpressure); kStopping
  /// when the service began shutdown while waiting.
  Admit admit_blocking(detail::Pending& p);

  /// Requests admitted and not yet claimed into a group (approximate
  /// between quiescent points, like any concurrent counter).
  [[nodiscard]] std::size_t queued() const {
    return queued_.load(std::memory_order_seq_cst);
  }

  [[nodiscard]] bool parked() const {
    return parked_.load(std::memory_order_seq_cst);
  }

  /// Wake the dispatcher to go stealing (sets the nudge latch so the park
  /// predicate passes even with an empty own queue).
  void nudge();

  /// Wake dispatcher and any space-waiting producers (shutdown/resume).
  void wake_all();

  /// Pop one group from this shard's rings on behalf of a sibling
  /// dispatcher; false when the shard is empty.  Cancelled entries drained
  /// on the way are added to `cancelled`.
  bool steal_group(std::vector<detail::Pending>& out, std::uint64_t& cancelled);

  /// Per-shard counters (relaxed; snapshot via GemmService::stats).
  struct Counters {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> coalesced_batches{0};
    std::atomic<std::uint64_t> coalesced_members{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> stolen_requests{0};
    std::atomic<std::uint64_t> peak_queue_depth{0};
  };
  Counters counters;

  [[nodiscard]] ShardStats snapshot() const;

 private:
  friend class GemmService;

  struct InflightSlot;

  void dispatcher_main();
  /// Build one claimable group: holdover first (within its lane), then the
  /// rings highest lane first; extends a coalescible head with the
  /// contiguous same-fingerprint run up to max_coalesce.  pop_m_ held.
  void build_group_locked(std::vector<detail::Pending>& group,
                          std::uint64_t& cancelled);
  /// Next unclaimed entry in priority order (holdover-aware); pop_m_ held.
  bool take_next(detail::Pending& out);
  void put_holdover(detail::Pending&& p);
  /// An entry left the rings/holdover: drop the reservation and wake one
  /// space-waiting producer.
  void note_removed();
  /// Cancel-drain everything still queued (shutdown(drain=false)).
  void cancel_all();
  /// Run a claimed group: bounded by max_inflight slots; max_inflight == 1
  /// executes on the dispatcher thread itself (no pool round trip).
  void execute(std::vector<detail::Pending>&& group);
  void execute_slot(InflightSlot& slot);
  void release_slot(InflightSlot& slot);

  GemmService* owner_;
  int id_;
  std::size_t capacity_;

  /// One ring per priority lane, each sized to the full shard capacity so
  /// a reserved push can never fail.
  std::vector<std::unique_ptr<detail::SubmitRing<detail::Pending>>> lanes_;

  /// Admission reservations: entries in the rings plus the holdover slot.
  std::atomic<std::size_t> queued_{0};
  std::atomic<bool> parked_{false};
  std::atomic<bool> nudged_{false};
  std::atomic<int> space_waiters_{0};

  std::mutex m_;  ///< park/space condition handshakes (producers take it
                  ///< only when the dispatcher is parked or they must wait)
  std::condition_variable cv_;        ///< dispatcher park
  std::condition_variable space_cv_;  ///< blocked producers

  std::mutex pop_m_;  ///< consumer-side: owner dispatcher vs stealers
  /// One parked popped-but-mismatched entry per priority lane (see the
  /// file comment for why a single shared slot would lose requests);
  /// guarded by pop_m_ like the pops that fill and drain it.
  std::array<detail::Pending, kPriorityLanes> holdover_;
  std::array<bool, kPriorityLanes> has_holdover_{};

  std::mutex sm_;  ///< in-flight slot free list
  std::condition_variable scv_;
  std::vector<std::unique_ptr<InflightSlot>> slots_;
  std::vector<InflightSlot*> free_slots_;

  std::thread dispatcher_;
};

}  // namespace ftgemm::serve
