// ServiceShard implementation: lock-free admission, the per-shard
// dispatcher, group building with the per-lane holdover slots, and stealing (see
// serve/shard.hpp for the protocols and serve/service.hpp for the service
// contracts).
//
// Lock order (never taken in reverse):
//   pop_m_          — consumer-side group building (one shard's at a time:
//                     a stealer takes a victim's pop_m_ while holding none
//                     of its own);
//   RequestState::m — per-request settle/claim/cancel transitions;
//   m_              — park/space condition handshakes;
//   sm_             — in-flight slot free list;
//   stats_m_        — service counters (leaf).
#include "serve/shard.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "runtime/team.hpp"

namespace ftgemm::serve {

namespace {

int lane_of(Priority p) { return std::clamp(int(p), 0, kPriorityLanes - 1); }

}  // namespace

/// Stable callable objects the runtime's non-owning TeamFnRef /
/// CompletionRef can reference for the whole async dispatch.
struct ServiceShard::InflightSlot {
  explicit InflightSlot(ServiceShard* s) : shard(s) {}

  ServiceShard* shard;
  std::vector<detail::Pending> group;

  struct BodyFn {
    InflightSlot* slot;
    void operator()(runtime::TeamMember&) const {
      slot->shard->execute_slot(*slot);
    }
  };
  struct DoneFn {
    InflightSlot* slot;
    void operator()() const { slot->shard->release_slot(*slot); }
  };
  BodyFn body{this};
  DoneFn done{this};
};

ServiceShard::ServiceShard(GemmService* owner, int id, std::size_t capacity)
    : owner_(owner), id_(id), capacity_(std::max<std::size_t>(capacity, 1)) {
  lanes_.reserve(kPriorityLanes);
  for (int i = 0; i < kPriorityLanes; ++i) {
    lanes_.push_back(
        std::make_unique<detail::SubmitRing<detail::Pending>>(capacity_));
  }
  // max_inflight == 1 executes on the dispatcher thread (no slots, no pool
  // round trip): a 1-wide shard would pay two context switches per group
  // for nothing.
  const int inflight = std::max(owner_->cfg_.max_inflight, 1);
  if (inflight > 1) {
    slots_.reserve(std::size_t(inflight));
    free_slots_.reserve(std::size_t(inflight));
    for (int i = 0; i < inflight; ++i) {
      slots_.push_back(std::make_unique<InflightSlot>(this));
      free_slots_.push_back(slots_.back().get());
    }
  }
}

ServiceShard::~ServiceShard() { join(); }

void ServiceShard::start() {
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

void ServiceShard::join() {
  if (dispatcher_.joinable()) dispatcher_.join();
}

// ---------------------------------------------------------------------------
// Admission (producer side — lock-free unless parked/full)
// ---------------------------------------------------------------------------

ServiceShard::Admit ServiceShard::try_admit(detail::Pending& p) {
  // Reserve a slot against the shard capacity first; the rings are sized to
  // the full capacity per lane, so a reserved push below can never fail.
  std::size_t q = queued_.load(std::memory_order_relaxed);
  for (;;) {
    if (q >= capacity_) return Admit::kFull;
    if (queued_.compare_exchange_weak(q, q + 1, std::memory_order_seq_cst)) {
      break;
    }
  }
  const std::size_t depth = q + 1;
  const bool pushed = lanes_[lane_of(p.req.priority)]->push(std::move(p));
  assert(pushed);
  (void)pushed;
  counters.submitted.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t peak = counters.peak_queue_depth.load(std::memory_order_relaxed);
  while (peak < depth &&
         !counters.peak_queue_depth.compare_exchange_weak(
             peak, depth, std::memory_order_relaxed)) {
  }
  // Dekker store-load: our queued_ bump (seq_cst) vs the dispatcher's
  // parked_ raise + predicate re-check under m_.  Either the dispatcher's
  // predicate sees the bump, or we see parked_ == true and deliver the
  // wake through the mutex; the empty critical section orders the notify
  // after the dispatcher has atomically blocked.
  if (parked_.load(std::memory_order_seq_cst)) {
    { std::lock_guard<std::mutex> lk(m_); }
    cv_.notify_one();
  } else if (owner_->cfg_.steal && depth > 1) {
    // Dispatcher busy and a backlog is forming: invite a parked sibling to
    // steal instead of letting the work queue behind one executor.
    owner_->nudge_stealers(id_);
  }
  return Admit::kOk;
}

ServiceShard::Admit ServiceShard::admit_blocking(detail::Pending& p) {
  for (;;) {
    const Admit a = try_admit(p);
    if (a != Admit::kFull) return a;
    std::unique_lock<std::mutex> lk(m_);
    space_waiters_.fetch_add(1, std::memory_order_seq_cst);
    space_cv_.wait(lk, [&] {
      return owner_->sync_->stopping.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_seq_cst) < capacity_;
    });
    space_waiters_.fetch_sub(1, std::memory_order_seq_cst);
    if (owner_->sync_->stopping.load(std::memory_order_acquire)) {
      return Admit::kStopping;
    }
  }
}

void ServiceShard::nudge() {
  nudged_.store(true, std::memory_order_seq_cst);
  { std::lock_guard<std::mutex> lk(m_); }
  cv_.notify_one();
}

void ServiceShard::wake_all() {
  { std::lock_guard<std::mutex> lk(m_); }
  cv_.notify_all();
  space_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Group building (consumer side — pop_m_ serializes owner vs stealers)
// ---------------------------------------------------------------------------

void ServiceShard::note_removed() {
  queued_.fetch_sub(1, std::memory_order_seq_cst);
  if (space_waiters_.load(std::memory_order_seq_cst) > 0) {
    { std::lock_guard<std::mutex> lk(m_); }
    space_cv_.notify_all();
  }
}

void ServiceShard::put_holdover(detail::Pending&& p) {
  const int lane = lane_of(p.req.priority);
  // take_next offers a lane's holdover before that lane's ring, so an
  // entry we just popped (from ring `lane`, or the slot itself) can only
  // be parked into an empty slot; a full one here would lose a request.
  assert(!has_holdover_[lane]);
  holdover_[lane] = std::move(p);
  has_holdover_[lane] = true;
  queued_.fetch_add(1, std::memory_order_seq_cst);
}

bool ServiceShard::take_next(detail::Pending& out) {
  for (int lane = kPriorityLanes - 1; lane >= 0; --lane) {
    // The lane's holdover goes first: it was popped before the ring's
    // current head, so re-offering it first is FIFO, not a reorder.
    if (has_holdover_[lane]) {
      out = std::move(holdover_[lane]);
      holdover_[lane] = detail::Pending{};
      has_holdover_[lane] = false;
      note_removed();
      return true;
    }
    if (lanes_[lane]->pop(out)) {
      note_removed();
      return true;
    }
  }
  return false;
}

void ServiceShard::build_group_locked(std::vector<detail::Pending>& group,
                                      std::uint64_t& cancelled) {
  // Head: the first claimable entry in priority order; cancelled entries
  // drain (and are counted) on the way.
  for (;;) {
    detail::Pending p;
    if (!take_next(p)) return;
    if (detail::try_claim(*p.state)) {
      group.push_back(std::move(p));
      break;
    }
    ++cancelled;
  }
  if (!group.front().coalescible) return;
  // Copies, not references: push_back below reallocates the group.
  const GemmRequest head = group.front().req;
  const PlanKey head_key = group.front().key;
  const index_t max_c = std::max<index_t>(owner_->cfg_.max_coalesce, 1);
  while (index_t(group.size()) < max_c) {
    detail::Pending p;
    if (!take_next(p)) return;
    if (!detail::coalesce_match(head, head_key, p)) {
      // A ring cannot skip an entry in place; park the mismatch in its
      // lane's holdover slot and stop the run.
      put_holdover(std::move(p));
      return;
    }
    if (detail::try_claim(*p.state)) {
      group.push_back(std::move(p));
    } else {
      ++cancelled;
    }
  }
}

bool ServiceShard::steal_group(std::vector<detail::Pending>& out,
                               std::uint64_t& cancelled) {
  if (queued_.load(std::memory_order_seq_cst) == 0) return false;
  // Blocking lock on purpose: pop_m_ is only ever held for group building
  // (popping, never executing), so the wait is short and a thief that saw
  // a backlog reliably gets a group instead of spuriously failing and
  // parking while the victim stays loaded.
  std::lock_guard<std::mutex> lk(pop_m_);
  build_group_locked(out, cancelled);
  return !out.empty();
}

void ServiceShard::cancel_all() {
  std::uint64_t cancelled = 0;
  {
    std::lock_guard<std::mutex> lk(pop_m_);
    detail::Pending p;
    while (take_next(p)) {
      // An entry we popped was never claimable by a dispatcher, so a
      // failed cancel here can only mean a client's cancel won the claim
      // CAS (its status may transiently read kRunning while it publishes);
      // either way the request ends cancelled — count them all.
      detail::try_cancel(*p.state);
      ++cancelled;
      p = detail::Pending{};
    }
  }
  if (cancelled > 0) owner_->count_cancelled(cancelled);
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

void ServiceShard::dispatcher_main() {
  std::vector<detail::Pending> group;
  for (;;) {
    group.clear();
    const int mode = owner_->stop_mode_.load(std::memory_order_acquire);
    if (mode == int(GemmService::StopMode::kCancel)) {
      cancel_all();
      return;
    }
    const bool draining = mode == int(GemmService::StopMode::kDrain);
    const bool paused =
        owner_->paused_.load(std::memory_order_acquire) && !draining;
    std::uint64_t cancelled = 0;
    if (!paused) {
      std::lock_guard<std::mutex> lk(pop_m_);
      build_group_locked(group, cancelled);
    }
    if (cancelled > 0) owner_->count_cancelled(cancelled);
    if (group.empty()) {
      if (draining) {
        // Admission is closed (shutdown drained the submitter window
        // before arming drain mode), so a nonzero count can only be a
        // stealable holdover race or a last reserved push landing.
        if (queued_.load(std::memory_order_seq_cst) == 0) return;
        std::this_thread::yield();
        continue;
      }
      if (!paused && owner_->cfg_.steal &&
          owner_->steal_for(id_, group)) {
        // fall through and execute the stolen group
      } else if (!paused &&
                 queued_.load(std::memory_order_seq_cst) > 0) {
        // A producer holds a reservation but has not finished its push;
        // it is wait-free, so spin-yield rather than park.
        std::this_thread::yield();
        continue;
      } else {
        std::unique_lock<std::mutex> lk(m_);
        parked_.store(true, std::memory_order_seq_cst);
        cv_.wait(lk, [&] {
          return owner_->stop_mode_.load(std::memory_order_acquire) != 0 ||
                 nudged_.load(std::memory_order_seq_cst) ||
                 (!owner_->paused_.load(std::memory_order_acquire) &&
                  queued_.load(std::memory_order_seq_cst) > 0);
        });
        parked_.store(false, std::memory_order_seq_cst);
        nudged_.store(false, std::memory_order_seq_cst);
        continue;
      }
    }
    if (group.empty()) continue;
    execute(std::move(group));
  }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void ServiceShard::execute(std::vector<detail::Pending>&& group) {
  if (slots_.empty()) {
    // max_inflight == 1: one group at a time either way, so run it right
    // here on the dispatcher thread.
    std::vector<detail::Pending> g = std::move(group);
    owner_->note_group_start();
    owner_->execute_group(g, id_);
    owner_->note_group_end();
    return;
  }
  InflightSlot* slot = nullptr;
  {
    std::unique_lock<std::mutex> lk(sm_);
    scv_.wait(lk, [&] { return !free_slots_.empty(); });
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  owner_->note_group_start();
  slot->group = std::move(group);
  // Lease execution from the pool: the non-blocking try-lease first (a
  // parked worker picks the job up with no spawn), leaving lease_reserve_
  // workers parked for sibling shards; the growing lease as the fallback
  // so progress is never gated on pool capacity.
  if (!runtime::try_run_team_async(1, slot->body, slot->done,
                                   owner_->lease_reserve_)) {
    runtime::run_team_async(1, slot->body, slot->done);
  }
}

void ServiceShard::execute_slot(InflightSlot& slot) {
  owner_->execute_group(slot.group, id_);
}

void ServiceShard::release_slot(InflightSlot& slot) {
  slot.group.clear();
  {
    std::lock_guard<std::mutex> lk(sm_);
    free_slots_.push_back(&slot);
  }
  scv_.notify_all();
  owner_->note_group_end();
}

ShardStats ServiceShard::snapshot() const {
  ShardStats s;
  s.submitted = counters.submitted.load(std::memory_order_relaxed);
  s.executed = counters.executed.load(std::memory_order_relaxed);
  s.coalesced_batches =
      counters.coalesced_batches.load(std::memory_order_relaxed);
  s.coalesced_members =
      counters.coalesced_members.load(std::memory_order_relaxed);
  s.steals = counters.steals.load(std::memory_order_relaxed);
  s.stolen_requests =
      counters.stolen_requests.load(std::memory_order_relaxed);
  s.peak_queue_depth =
      counters.peak_queue_depth.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ftgemm::serve
