#include "arch/cpu_features.hpp"

namespace ftgemm {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
  f.avx512dq = __builtin_cpu_supports("avx512dq");
  f.avx512bw = __builtin_cpu_supports("avx512bw");
  f.avx512vl = __builtin_cpu_supports("avx512vl");
  f.avx512vnni = __builtin_cpu_supports("avx512vnni");
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = detect();
  return features;
}

std::string cpu_feature_string() {
  const CpuFeatures& f = cpu_features();
  std::string out;
  auto add = [&out](bool on, const char* name) {
    if (!on) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.avx512f, "avx512f");
  add(f.avx512dq, "avx512dq");
  add(f.avx512bw, "avx512bw");
  add(f.avx512vl, "avx512vl");
  add(f.avx512vnni, "avx512vnni");
  return out.empty() ? "baseline-x86-64" : out;
}

}  // namespace ftgemm
