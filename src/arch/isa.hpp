// Instruction-set selection for the GEMM kernels — one resolved Isa governs
// both the micro-kernels (get_kernel_set) and the packing & checksum engine
// (get_pack_set); the two are never mixed across levels.
#pragma once

#include <string_view>

namespace ftgemm {

enum class Isa {
  kScalar,  ///< portable C++ kernels, any x86-64
  kAvx2,    ///< 256-bit FMA kernels (Haswell+)
  kAvx512,  ///< 512-bit kernels (Skylake-SP / Cascade Lake+)
};

/// Best ISA supported by this machine, overridable with FTGEMM_ISA
/// ("scalar" | "avx2" | "avx512"); an override above hardware capability is
/// clamped down to what the CPU can execute.
Isa select_isa();

/// Parse an ISA name; returns kScalar for unknown strings.
Isa parse_isa(std::string_view name);

std::string_view isa_name(Isa isa);

}  // namespace ftgemm
