// Runtime CPU feature detection for kernel dispatch.
//
// The library ships AVX-512, AVX2/FMA and scalar micro-kernels in separate
// translation units; this module decides which set is safe to execute on the
// current machine (FT-GEMM targets Cascade Lake, i.e. AVX512F/DQ/BW/VL, but
// degrades gracefully).
#pragma once

#include <string>

namespace ftgemm {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512dq = false;
  bool avx512bw = false;
  bool avx512vl = false;
  /// AVX-512 VNNI (`vpdpbusd`, the int8 dot product) — a separate CPUID bit
  /// from the F/DQ/BW/VL baseline (Cascade Lake yes, Skylake-SP no); the
  /// int8 kernel dispatch falls back to the AVX2 emulation without it.
  bool avx512vnni = false;

  [[nodiscard]] bool has_avx2_kernel_support() const { return avx2 && fma; }
  [[nodiscard]] bool has_avx512_kernel_support() const {
    return avx512f && avx512dq && avx512vl;
  }
};

/// Detect once (thread-safe, cached).
const CpuFeatures& cpu_features();

/// Human-readable summary, e.g. "avx2 fma avx512f avx512dq avx512bw avx512vl".
std::string cpu_feature_string();

}  // namespace ftgemm
