#include "arch/isa.hpp"

#include "arch/cpu_features.hpp"
#include "util/env.hpp"

namespace ftgemm {

Isa parse_isa(std::string_view name) {
  if (name == "avx512") return Isa::kAvx512;
  if (name == "avx2") return Isa::kAvx2;
  return Isa::kScalar;
}

std::string_view isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAvx512: return "avx512";
    case Isa::kAvx2: return "avx2";
    case Isa::kScalar: return "scalar";
  }
  return "scalar";
}

Isa select_isa() {
  const CpuFeatures& f = cpu_features();
  Isa best = Isa::kScalar;
  if (f.has_avx2_kernel_support()) best = Isa::kAvx2;
  if (f.has_avx512_kernel_support()) best = Isa::kAvx512;

  // FTGEMM_FORCE_ISA is the CI-facing synonym (the scalar-fallback CI leg
  // sets it); it wins over the historical FTGEMM_ISA when both are set.
  auto env = env_string("FTGEMM_FORCE_ISA");
  if (!env) env = env_string("FTGEMM_ISA");
  if (env) {
    const Isa wanted = parse_isa(*env);
    // Never dispatch above hardware capability, even if asked to.
    if (wanted == Isa::kAvx512 && best != Isa::kAvx512) return best;
    if (wanted == Isa::kAvx2 && best == Isa::kScalar) return best;
    return wanted;
  }
  return best;
}

}  // namespace ftgemm
