#include "core/operand_cache.hpp"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "core/context.hpp"
#include "core/driver.hpp"
#include "inject/injector.hpp"
#include "util/env.hpp"

namespace ftgemm {

namespace {

/// FNV-1a over a bounded grid of sampled element bit patterns (corners
/// included by construction).  A cheap identity check, not a cryptographic
/// digest: mutations between grid points are invisible — the documented
/// reason resident_a is opt-in for operands the caller keeps stable.
template <typename T>
std::uint64_t fingerprint_operand(const T* a, index_t lda, bool trans,
                                  index_t m, index_t k) {
  using Bits = std::conditional_t<sizeof(T) == 8, std::uint64_t,
                                  std::uint32_t>;
  constexpr index_t kGrid = 8;
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const index_t gi = std::min(kGrid, m);
  const index_t gp = std::min(kGrid, k);
  for (index_t si = 0; si < gi; ++si) {
    const index_t i = gi == 1 ? 0 : (m - 1) * si / (gi - 1);
    for (index_t sp = 0; sp < gp; ++sp) {
      const index_t p = gp == 1 ? 0 : (k - 1) * sp / (gp - 1);
      const T v = trans ? a[p + i * lda] : a[i + p * lda];
      Bits bits;
      std::memcpy(&bits, &v, sizeof(bits));
      mix(std::uint64_t(bits));
    }
  }
  return h;
}

template <typename T>
OperandKey make_operand_key(const T* a, index_t lda, bool trans, T alpha,
                            const GemmPlan<T>& plan) {
  using Bits = std::conditional_t<sizeof(T) == 8, std::uint64_t,
                                  std::uint32_t>;
  OperandKey key;
  key.ptr = reinterpret_cast<std::uintptr_t>(a);
  key.fingerprint = fingerprint_operand(a, lda, trans, plan.key.m,
                                        plan.key.k);
  key.m = plan.key.m;
  key.k = plan.key.k;
  key.lda = lda;
  key.trans = trans;
  Bits abits;
  std::memcpy(&abits, &alpha, sizeof(abits));
  key.alpha_bits = std::uint64_t(abits);
  key.isa = int(plan.isa);
  key.mr = plan.blocking.mr;
  key.kc = plan.blocking.kc;
  key.threads = plan.threads;
  return key;
}

/// Integrity sums over the packed bytes in one FIXED scalar order (panels in
/// k order, tiles inner) — recomputing them is deterministic, so the
/// CHECK_BEFORE comparison below is a bit-exact memcmp, no tolerance model.
/// The zero padding of the ragged edge tile participates: a flip landing in
/// padding is caught too (it would feed the micro-kernels just the same).
template <typename T>
void integrity_sums(const ResidentAPayload<T>& pl, T* rowchk, T* colchk) {
  std::fill(rowchk, rowchk + pl.tiles * pl.mr, T(0));
  std::fill(colchk, colchk + pl.k, T(0));
  for (index_t p = 0; p < pl.k; p += pl.kc) {
    const index_t pinc = std::min(pl.kc, pl.k - p);
    const T* base = pl.panel_at(p);
    for (index_t q = 0; q < pl.tiles; ++q) {
      const T* tile = base + q * (pl.mr * pinc);
      T* rc = rowchk + q * pl.mr;
      // One pass per tile (this runs on every verified cache hit — the
      // payload is read exactly once): unit-stride row accumulation the
      // compiler can vectorize, and column sums in a fixed 4-lane-partial
      // order.  Any deterministic order works — fill and verify share this
      // one function, so the bit-exact comparison only needs
      // self-consistency — and the lane split breaks the serial FP
      // dependence chain a naive reduction would pin the loop on.
      for (index_t kk = 0; kk < pinc; ++kk) {
        const T* col = tile + kk * pl.mr;
        T s0 = T(0), s1 = T(0), s2 = T(0), s3 = T(0);
        index_t ii = 0;
        for (; ii + 4 <= pl.mr; ii += 4) {
          rc[ii] += col[ii];
          rc[ii + 1] += col[ii + 1];
          rc[ii + 2] += col[ii + 2];
          rc[ii + 3] += col[ii + 3];
          s0 += col[ii];
          s1 += col[ii + 1];
          s2 += col[ii + 2];
          s3 += col[ii + 3];
        }
        T s = (s0 + s1) + (s2 + s3);
        for (; ii < pl.mr; ++ii) {
          rc[ii] += col[ii];
          s += col[ii];
        }
        colchk[p + kk] += s;
      }
    }
  }
}

/// Recompute the integrity sums and compare bit-exactly against the stored
/// ones.  True = resident bytes are exactly what the fill wrote.  Scratch
/// is thread-local: this runs on every verified hit, and the serving hot
/// loop must not pay a heap allocation per call.
template <typename T>
bool verify_payload(const ResidentAPayload<T>& pl) {
  thread_local std::vector<T> scratch;
  const std::size_t rlen = std::size_t(pl.tiles * pl.mr);
  const std::size_t clen = std::size_t(pl.k);
  if (scratch.size() < rlen + clen) scratch.resize(rlen + clen);
  T* rowchk = scratch.data();
  T* colchk = scratch.data() + rlen;
  integrity_sums(pl, rowchk, colchk);
  return std::memcmp(rowchk, pl.rowchk.data(), rlen * sizeof(T)) == 0 &&
         std::memcmp(colchk, pl.colchk.data(), clen * sizeof(T)) == 0;
}

/// Encode one payload from the source operand: pack every rank-KC panel
/// (bit-identical bytes to what the executor's cold pack_a_ft stores),
/// reduce Ar in the cold path's per-thread partial order, and fill the
/// integrity sums.
template <typename T>
void fill_payload(ResidentAPayload<T>& pl, const T* a, index_t lda,
                  bool trans, T alpha, const GemmPlan<T>& plan) {
  const index_t m = plan.key.m, k = plan.key.k;
  pl.m = m;
  pl.k = k;
  pl.mr = plan.blocking.mr;
  pl.kc = plan.blocking.kc;
  pl.trans = trans;
  pl.alpha = alpha;
  pl.tiles = (m + pl.mr - 1) / pl.mr;
  pl.panels.reset(pl.elems());
  pl.ar.reset(std::size_t(k));
  pl.rowchk.reset(std::size_t(pl.tiles * pl.mr));
  pl.colchk.reset(std::size_t(k));

  const OperandView<T> av{a, lda, trans};
  const PackSet<T>& pk = plan.kernels.pack;

  // Packed values are pure per-element (alpha * element, zero padding), so
  // one whole-M pack per panel lays down the exact bytes any (thread, ic)
  // slab of the cold path would have packed into its private atilde.
  for (index_t p = 0; p < k; p += pl.kc) {
    const index_t pinc = std::min(pl.kc, k - p);
    T* dst = pl.panels.data() + std::size_t(pl.tiles * pl.mr) * std::size_t(p);
    pk.pack_a(av, 0, p, m, pinc, pl.mr, alpha, dst);
  }

  // Ar: emulate the executor's reduction exactly — per-thread encode over
  // the MR-aligned M-partition, summed in ascending thread order — so a hit
  // under `plan.threads` workers reads the same bits a cold call computes.
  const int nt = plan.threads;
  std::vector<T> partials(std::size_t(nt) * std::size_t(k), T(0));
  double amax = 0.0;
  for (int t = 0; t < nt; ++t) {
    index_t ms = 0, mlen = 0;
    detail::partition_units(m, pl.mr, nt, t, ms, mlen);
    if (mlen > 0) {
      amax = std::max(amax, pk.encode_ar(av, ms, mlen, k, alpha,
                                         partials.data() +
                                             std::size_t(t) * std::size_t(k)));
    }
  }
  for (index_t p = 0; p < k; ++p) {
    T sum = T(0);
    for (int t = 0; t < nt; ++t)
      sum += partials[std::size_t(t) * std::size_t(k) + std::size_t(p)];
    pl.ar[std::size_t(p)] = sum;
  }
  pl.amax_a = amax;

  integrity_sums(pl, pl.rowchk.data(), pl.colchk.data());
}

/// Flip one bit of a resident element in place (memory-fault emulation).
template <typename T>
void flip_payload_bit(T& v, int bit) {
  using Bits = std::conditional_t<sizeof(T) == 8, std::uint64_t,
                                  std::uint32_t>;
  Bits bits;
  std::memcpy(&bits, &v, sizeof(bits));
  bits ^= Bits(1) << (unsigned(bit) % (8 * sizeof(T)));
  std::memcpy(&v, &bits, sizeof(bits));
}

}  // namespace

template <typename T>
OperandCache<T>::OperandCache()
    : OperandCache(
          std::size_t(std::max<long>(
              env_long("FTGEMM_OPERAND_CACHE_ENTRIES", long(kDefaultCapacity)),
              1)),
          std::size_t(std::max<long>(
              env_long("FTGEMM_OPERAND_CACHE_BYTES",
                       long(kDefaultByteCapacity)),
              1))) {}

template <typename T>
OperandCache<T>::OperandCache(std::size_t capacity, std::size_t byte_capacity)
    : capacity_(capacity > 0 ? capacity : 1),
      byte_capacity_(byte_capacity > 0 ? byte_capacity : 1) {}

template <typename T>
void OperandCache<T>::evict_to_caps_locked() {
  // Keep at least the most recent entry: a single payload above the byte
  // cap must still serve the call that just encoded it.  Slot::bytes is
  // immutable, so no slot mutex is taken here (hit processing holds the
  // slot mutex and then the cache mutex for counters — never the reverse).
  while (lru_.size() > 1 &&
         (lru_.size() > capacity_ || bytes_ > byte_capacity_)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.second->bytes;
    index_.erase(victim.first);
    lru_.pop_back();
    ++evictions_;
  }
}

template <typename T>
ResidentAcquisition<T> OperandCache<T>::acquire(
    const T* a, index_t lda, bool trans, T alpha, const GemmPlan<T>& plan,
    MemoryFaultInjector* mem_injector, bool verify) {
  ResidentAcquisition<T> out;
  const OperandKey key = make_operand_key(a, lda, trans, alpha, plan);

  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lk(m_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      slot = it->second->second;
      out.hit = true;
    } else {
      ++misses_;
    }
  }

  if (!slot) {
    // Miss: encode OUTSIDE the cache lock (O(m*k) work must not serialize
    // unrelated submitters), then publish — first inserter wins a race.
    auto payload = std::make_shared<ResidentAPayload<T>>();
    fill_payload(*payload, a, lda, trans, alpha, plan);
    slot = std::make_shared<Slot>();
    slot->payload = payload;
    slot->bytes = payload->bytes();
    std::shared_ptr<Slot> adopted;
    {
      std::lock_guard<std::mutex> lk(m_);
      const auto it = index_.find(key);
      if (it != index_.end()) {
        // A concurrent submitter published the same operand first; adopt
        // its slot (both encodes are deterministic and equal), drop ours.
        lru_.splice(lru_.begin(), lru_, it->second);
        adopted = it->second->second;
      } else {
        lru_.emplace_front(key, slot);
        index_[key] = lru_.begin();
        bytes_ += slot->bytes;
        evict_to_caps_locked();
      }
    }
    if (adopted) {
      std::lock_guard<std::mutex> slot_lk(adopted->m);
      out.payload = adopted->payload;
    } else {
      out.payload = std::move(payload);
    }
    return out;
  }

  // Hit: inject planned memory faults, then CHECK_BEFORE-verify and heal.
  // Serialized per entry so an injected flip and a concurrent verification
  // sweep never race on the payload bytes.
  std::lock_guard<std::mutex> slot_lk(slot->m);
  std::shared_ptr<const ResidentAPayload<T>> payload = slot->payload;
  if (mem_injector != nullptr && payload) {
    std::vector<PanelFlip> flips;
    mem_injector->plan_flips(payload->elems(), flips);
    if (!flips.empty()) {
      // Test-only corruption of the (logically immutable) resident bytes —
      // the very event the re-verification below exists to catch.
      T* data = const_cast<T*>(payload->panels.data());
      for (const PanelFlip& f : flips)
        flip_payload_bit(data[f.elem % payload->elems()], f.bit);
      mem_injector->record_applied(flips.size());
    }
  }
  if (verify && payload) {
    {
      std::lock_guard<std::mutex> lk(m_);
      ++verifies_;
    }
    if (!verify_payload(*payload)) {
      // Memory fault detected: re-encode from the source and swap the
      // healed payload into the slot (self-healing).
      auto fresh = std::make_shared<ResidentAPayload<T>>();
      fill_payload(*fresh, a, lda, trans, alpha, plan);
      slot->payload = fresh;
      payload = std::move(fresh);
      out.heals = 1;
      std::lock_guard<std::mutex> lk(m_);
      ++heals_;
    }
  }
  out.payload = std::move(payload);
  return out;
}

template <typename T>
void OperandCache<T>::clear() {
  std::lock_guard<std::mutex> lk(m_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

template <typename T>
OperandCacheStats OperandCache<T>::stats() {
  std::lock_guard<std::mutex> lk(m_);
  OperandCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.verifies = verifies_;
  s.heals = heals_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

template class OperandCache<float>;
template class OperandCache<double>;

template <typename T>
ResidentOperand make_resident_a(Trans ta, Trans tb, index_t m, index_t n,
                                index_t k, T alpha, const T* a, index_t lda,
                                const Options& opts, bool ft) {
  ResidentOperand handle;
  if (m <= 0 || n <= 0 || k <= 0 || alpha == T(0) || a == nullptr)
    return handle;
  ContextCache<T>& cache = process_context_cache<T>();
  const std::shared_ptr<const GemmPlan<T>> plan =
      cache.plan(ta, tb, m, n, k, opts, ft);
  ResidentAcquisition<T> acq = cache.operands().acquire(
      a, lda, ta == Trans::kTrans, alpha, *plan, nullptr, false);
  handle.bytes_ = acq.payload ? acq.payload->bytes() : 0;
  handle.hit_ = acq.hit;
  handle.hold_ = std::move(acq.payload);
  return handle;
}

template ResidentOperand make_resident_a<float>(Trans, Trans, index_t,
                                                index_t, index_t, float,
                                                const float*, index_t,
                                                const Options&, bool);
template ResidentOperand make_resident_a<double>(Trans, Trans, index_t,
                                                 index_t, index_t, double,
                                                 const double*, index_t,
                                                 const Options&, bool);

}  // namespace ftgemm
