#include "core/operand_cache.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <type_traits>

#include "core/context.hpp"
#include "core/driver.hpp"
#include "core/secded.hpp"
#include "inject/injector.hpp"
#include "util/env.hpp"

namespace ftgemm {

namespace {

/// FNV-1a over a bounded grid of sampled element bit patterns (corners
/// included by construction).  A cheap identity check, not a cryptographic
/// digest: mutations between grid points are invisible — the documented
/// reason resident_a is opt-in for operands the caller keeps stable.
template <typename T>
using StorageBits = std::conditional_t<
    sizeof(T) == 8, std::uint64_t,
    std::conditional_t<sizeof(T) == 4, std::uint32_t,
                       std::conditional_t<sizeof(T) == 2, std::uint16_t,
                                          std::uint8_t>>>;

template <typename T>
std::uint64_t fingerprint_operand(const T* a, index_t lda, bool trans,
                                  index_t m, index_t k) {
  using Bits = StorageBits<T>;
  constexpr index_t kGrid = 8;
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const index_t gi = std::min(kGrid, m);
  const index_t gp = std::min(kGrid, k);
  for (index_t si = 0; si < gi; ++si) {
    const index_t i = gi == 1 ? 0 : (m - 1) * si / (gi - 1);
    for (index_t sp = 0; sp < gp; ++sp) {
      const index_t p = gp == 1 ? 0 : (k - 1) * sp / (gp - 1);
      const T v = trans ? a[p + i * lda] : a[i + p * lda];
      Bits bits;
      std::memcpy(&bits, &v, sizeof(bits));
      mix(std::uint64_t(bits));
    }
  }
  return h;
}

template <typename S, typename C>
OperandKey make_operand_key(const S* a, index_t lda, bool trans, C alpha,
                            const GemmPlan<S, C>& plan) {
  using Bits = StorageBits<C>;
  OperandKey key;
  key.ptr = reinterpret_cast<std::uintptr_t>(a);
  key.fingerprint = fingerprint_operand(a, lda, trans, plan.key.m,
                                        plan.key.k);
  key.m = plan.key.m;
  key.k = plan.key.k;
  key.lda = lda;
  key.trans = trans;
  Bits abits;
  std::memcpy(&abits, &alpha, sizeof(abits));
  key.alpha_bits = std::uint64_t(abits);
  key.isa = int(plan.isa);
  key.mr = plan.blocking.mr;
  key.kc = plan.blocking.kc;
  key.threads = plan.threads;
  return key;
}

/// Integrity sums over the packed bytes in one FIXED scalar order (panels in
/// k order, tiles inner) — recomputing them is deterministic, so the
/// CHECK_BEFORE comparison below is a bit-exact memcmp, no tolerance model.
/// The zero padding of the ragged edge tile participates: a flip landing in
/// padding is caught too (it would feed the micro-kernels just the same).
template <typename S, typename C>
void integrity_sums(const ResidentAPayload<S, C>& pl, C* rowchk, C* colchk) {
  std::fill(rowchk, rowchk + pl.tiles * pl.mr, C(0));
  std::fill(colchk, colchk + pl.k, C(0));
  for (index_t p = 0; p < pl.k; p += pl.kc) {
    const index_t pinc = std::min(pl.kc, pl.k - p);
    const S* base = pl.panel_at(p);
    for (index_t q = 0; q < pl.tiles; ++q) {
      const S* tile = base + q * (pl.mr * pinc);
      C* rc = rowchk + q * pl.mr;
      // One pass per tile (this runs on every verified cache hit — the
      // payload is read exactly once): unit-stride row accumulation the
      // compiler can vectorize, and column sums in a fixed 4-lane-partial
      // order.  Any deterministic order works — fill and verify share this
      // one function, so the bit-exact comparison only needs
      // self-consistency — and the lane split breaks the serial FP
      // dependence chain a naive reduction would pin the loop on.
      // Narrow storage widens each element once (C(col[ii])); for uniform
      // payloads the conversion is the identity and the code is unchanged.
      for (index_t kk = 0; kk < pinc; ++kk) {
        const S* col = tile + kk * pl.mr;
        C s0 = C(0), s1 = C(0), s2 = C(0), s3 = C(0);
        index_t ii = 0;
        for (; ii + 4 <= pl.mr; ii += 4) {
          rc[ii] += C(col[ii]);
          rc[ii + 1] += C(col[ii + 1]);
          rc[ii + 2] += C(col[ii + 2]);
          rc[ii + 3] += C(col[ii + 3]);
          s0 += C(col[ii]);
          s1 += C(col[ii + 1]);
          s2 += C(col[ii + 2]);
          s3 += C(col[ii + 3]);
        }
        C s = (s0 + s1) + (s2 + s3);
        for (; ii < pl.mr; ++ii) {
          rc[ii] += C(col[ii]);
          s += C(col[ii]);
        }
        colchk[p + kk] += s;
      }
    }
  }
}

/// Recompute the integrity sums and compare bit-exactly against the stored
/// ones.  True = resident bytes are exactly what the fill wrote.  Scratch
/// is thread-local: this runs on every verified hit, and the serving hot
/// loop must not pay a heap allocation per call.
template <typename S, typename C>
bool verify_payload(const ResidentAPayload<S, C>& pl) {
  thread_local std::vector<C> scratch;
  const std::size_t rlen = std::size_t(pl.tiles * pl.mr);
  const std::size_t clen = std::size_t(pl.k);
  if (scratch.size() < rlen + clen) scratch.resize(rlen + clen);
  C* rowchk = scratch.data();
  C* colchk = scratch.data() + rlen;
  integrity_sums(pl, rowchk, colchk);
  return std::memcmp(rowchk, pl.rowchk.data(), rlen * sizeof(C)) == 0 &&
         std::memcmp(colchk, pl.colchk.data(), clen * sizeof(C)) == 0;
}

/// Encode one payload from the source operand: pack every rank-KC panel
/// (bit-identical bytes to what the executor's cold pack_a_ft stores),
/// reduce Ar in the cold path's per-thread partial order, and fill the
/// integrity sums.
template <typename S, typename C>
void fill_payload(ResidentAPayload<S, C>& pl, const S* a, index_t lda,
                  bool trans, C alpha, const GemmPlan<S, C>& plan) {
  const index_t m = plan.key.m, k = plan.key.k;
  pl.m = m;
  pl.k = k;
  pl.mr = plan.blocking.mr;
  pl.kc = plan.blocking.kc;
  pl.trans = trans;
  pl.alpha = alpha;
  pl.tiles = (m + pl.mr - 1) / pl.mr;
  pl.panels.reset(pl.elems());
  pl.ar.reset(std::size_t(k));
  pl.rowchk.reset(std::size_t(pl.tiles * pl.mr));
  pl.colchk.reset(std::size_t(k));

  const OperandView<S> av{a, lda, trans};
  const PackSet<S, C>& pk = plan.kernels.pack;

  // Packed values are pure per-element (alpha * element, zero padding), so
  // one whole-M pack per panel lays down the exact bytes any (thread, ic)
  // slab of the cold path would have packed into its private atilde.
  // Narrow storage keeps the *raw permuted bits* instead (pack_a_raw, alpha
  // not baked — half the resident footprint); the executor widens a slab
  // with PackSet::widen_a on every hit, which multiplies by alpha in the
  // same single fp32 rounding the cold convert-on-pack path performs.
  for (index_t p = 0; p < k; p += pl.kc) {
    const index_t pinc = std::min(pl.kc, k - p);
    S* dst = pl.panels.data() + std::size_t(pl.tiles * pl.mr) * std::size_t(p);
    if constexpr (std::is_same_v<S, C>) {
      pk.pack_a(av, 0, p, m, pinc, pl.mr, alpha, dst);
    } else {
      pk.pack_a_raw(av, 0, p, m, pinc, pl.mr, dst);
    }
  }

  // Ar: emulate the executor's reduction exactly — per-thread encode over
  // the MR-aligned M-partition, summed in ascending thread order — so a hit
  // under `plan.threads` workers reads the same bits a cold call computes.
  const int nt = plan.threads;
  std::vector<C> partials(std::size_t(nt) * std::size_t(k), C(0));
  double amax = 0.0;
  for (int t = 0; t < nt; ++t) {
    index_t ms = 0, mlen = 0;
    detail::partition_units(m, pl.mr, nt, t, ms, mlen);
    if (mlen > 0) {
      amax = std::max(amax, pk.encode_ar(av, ms, mlen, k, alpha,
                                         partials.data() +
                                             std::size_t(t) * std::size_t(k)));
    }
  }
  for (index_t p = 0; p < k; ++p) {
    C sum = C(0);
    for (int t = 0; t < nt; ++t)
      sum += partials[std::size_t(t) * std::size_t(k) + std::size_t(p)];
    pl.ar[std::size_t(p)] = sum;
  }
  pl.amax_a = amax;

  integrity_sums(pl, pl.rowchk.data(), pl.colchk.data());
}

/// int8 payloads break both generic encoders' assumptions — panels hold
/// *biased u8 bytes* in the depth-quad layout (kernels/kernel_int8.hpp), not
/// ComputeT elements in [kk][mr] order, and the last panel is quad-padded
/// beyond tiles*mr*k bytes when k % 4 != 0 — so they get their own
/// specializations.  The integrity row sums ARE the executor's arow vector
/// (per-packed-row u8 totals; quad padding is raw zero, contributing
/// nothing), which is why the int8 hit path copies rowchk straight into
/// ctx.arow() instead of re-deriving it.  Sums are exact integers: verify
/// stays the bit-exact memcmp, and the Ar encode needs no per-thread
/// partial-order emulation (integer addition is order-independent).
template <>
void integrity_sums<std::int8_t, std::int32_t>(
    const ResidentAPayload<std::int8_t, std::int32_t>& pl,
    std::int32_t* rowchk, std::int32_t* colchk) {
  std::fill(rowchk, rowchk + pl.tiles * pl.mr, std::int32_t(0));
  std::fill(colchk, colchk + pl.k, std::int32_t(0));
  for (index_t p = 0; p < pl.k; p += pl.kc) {
    const index_t pinc = std::min(pl.kc, pl.k - p);
    const auto* base = reinterpret_cast<const std::uint8_t*>(pl.panel_at(p));
    const index_t tile_bytes = i8_tile_bytes(pinc, pl.mr);
    const index_t kq = i8_kq(pinc);
    for (index_t q = 0; q < pl.tiles; ++q) {
      const std::uint8_t* tile = base + q * tile_bytes;
      std::int32_t* rc = rowchk + q * pl.mr;
      for (index_t kk4 = 0; kk4 < kq; ++kk4) {
        const std::uint8_t* quad = tile + kk4 * pl.mr * kI8KQuad;
        for (index_t i = 0; i < pl.mr; ++i) {
          for (index_t u = 0; u < kI8KQuad; ++u) {
            const std::int32_t v = quad[i * kI8KQuad + u];
            rc[i] += v;
            // Quad-padding depths have no colchk index; a flip there is
            // still caught by the row sum above.
            const index_t kk = kk4 * kI8KQuad + u;
            if (kk < pinc) colchk[p + kk] += v;
          }
        }
      }
    }
  }
}

template <>
void fill_payload<std::int8_t, std::int32_t>(
    ResidentAPayload<std::int8_t, std::int32_t>& pl, const std::int8_t* a,
    index_t lda, bool trans, std::int32_t alpha,
    const GemmPlan<std::int8_t, std::int32_t>& plan) {
  const index_t m = plan.key.m, k = plan.key.k;
  pl.m = m;
  pl.k = k;
  pl.mr = plan.blocking.mr;
  pl.kc = plan.blocking.kc;
  pl.trans = trans;
  pl.alpha = alpha;  // always 1 on this path; scales live outside the cache
  pl.tiles = (m + pl.mr - 1) / pl.mr;

  // Byte-accurate panel storage: every full panel occupies exactly
  // tiles*mr*kc bytes (kc is a quad multiple, so panel_at's tiles*mr*p
  // offset is exact), but a ragged last panel is quad-padded to
  // tiles*mr*i8_kq(pinc)*4 — which exceeds the elems() = tiles*mr*k
  // estimate the generic payload geometry assumes.  elems()/bytes() then
  // understate slightly (harmless: injected flips stay inside elems() by
  // the plan_flips contract, accounting is conservative); the allocation
  // must not.
  std::size_t panel_bytes = 0;
  for (index_t p = 0; p < k; p += pl.kc) {
    const index_t pinc = std::min(pl.kc, k - p);
    panel_bytes +=
        std::size_t(pl.tiles) * std::size_t(i8_tile_bytes(pinc, pl.mr));
  }
  pl.panels.reset(panel_bytes);
  pl.ar.reset(std::size_t(k));
  pl.rowchk.reset(std::size_t(pl.tiles * pl.mr));
  pl.colchk.reset(std::size_t(k));

  const OperandView<std::int8_t> av{a, lda, trans};
  const PackSet<std::int8_t, std::int32_t>& pk = plan.kernels.pack;

  for (index_t p = 0; p < k; p += pl.kc) {
    const index_t pinc = std::min(pl.kc, k - p);
    auto* dst = reinterpret_cast<std::uint8_t*>(pl.panels.data()) +
                std::size_t(pl.tiles * pl.mr) * std::size_t(p);
    // arow sink stays null: the integrity row sums below double as arow.
    pk.pack_a(av, 0, p, m, pinc, pl.mr, dst, nullptr);
  }

  std::fill(pl.ar.data(), pl.ar.data() + k, std::int32_t(0));
  pk.encode_ar(av, 0, m, 0, k, pl.ar.data());
  pl.amax_a = 0.0;  // exact path: no tolerance model, no amax

  integrity_sums(pl, pl.rowchk.data(), pl.colchk.data());
}

/// SEC-DED parity over the packed panel bytes (allocation-accurate: int8
/// payloads cover the quad-padded tail too, since its bytes feed the
/// kernels just like live ones).
template <typename S, typename C>
void ecc_encode_payload(ResidentAPayload<S, C>& pl) {
  const std::size_t nbytes = pl.panels.size() * sizeof(S);
  pl.ecc.reset(secded::parity_bytes(nbytes));
  secded::encode_buffer(
      reinterpret_cast<const unsigned char*>(pl.panels.data()), nbytes,
      pl.ecc.data());
}

}  // namespace

template <typename S, typename C>
OperandCache<S, C>::OperandCache()
    : OperandCache(
          std::size_t(std::max<long>(
              env_long("FTGEMM_OPERAND_CACHE_ENTRIES", long(kDefaultCapacity)),
              1)),
          std::size_t(std::max<long>(
              env_long("FTGEMM_OPERAND_CACHE_BYTES",
                       long(kDefaultByteCapacity)),
              1))) {}

template <typename S, typename C>
OperandCache<S, C>::OperandCache(std::size_t capacity,
                                 std::size_t byte_capacity)
    : capacity_(capacity > 0 ? capacity : 1),
      byte_capacity_(byte_capacity > 0 ? byte_capacity : 1),
      ecc_(env_long("FTGEMM_OPERAND_ECC", 0) != 0) {}

template <typename S, typename C>
void OperandCache<S, C>::evict_to_caps_locked() {
  // Keep at least the most recent entry: a single payload above the byte
  // cap must still serve the call that just encoded it.  Slot::bytes is
  // immutable, so no slot mutex is taken here (hit processing holds the
  // slot mutex and then the cache mutex for counters — never the reverse).
  while (lru_.size() > 1 &&
         (lru_.size() > capacity_ || bytes_ > byte_capacity_)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.second->bytes;
    index_.erase(victim.first);
    lru_.pop_back();
    ++evictions_;
  }
}

template <typename S, typename C>
ResidentAcquisition<S, C> OperandCache<S, C>::acquire(
    const S* a, index_t lda, bool trans, C alpha,
    const GemmPlan<S, C>& plan, MemoryFaultInjector* mem_injector,
    bool verify) {
  ResidentAcquisition<S, C> out;
  const OperandKey key = make_operand_key(a, lda, trans, alpha, plan);

  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lk(m_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      slot = it->second->second;
      out.hit = true;
    } else {
      ++misses_;
    }
  }

  if (!slot) {
    // Miss: encode OUTSIDE the cache lock (O(m*k) work must not serialize
    // unrelated submitters), then publish — first inserter wins a race.
    auto payload = std::make_shared<Payload>();
    fill_payload(*payload, a, lda, trans, alpha, plan);
    if (ecc()) ecc_encode_payload(*payload);
    slot = std::make_shared<Slot>();
    slot->payload = payload;
    slot->bytes = payload->bytes();
    std::shared_ptr<Slot> adopted;
    {
      std::lock_guard<std::mutex> lk(m_);
      const auto it = index_.find(key);
      if (it != index_.end()) {
        // A concurrent submitter published the same operand first; adopt
        // its slot (both encodes are deterministic and equal), drop ours.
        lru_.splice(lru_.begin(), lru_, it->second);
        adopted = it->second->second;
      } else {
        lru_.emplace_front(key, slot);
        index_[key] = lru_.begin();
        bytes_ += slot->bytes;
        evict_to_caps_locked();
      }
    }
    if (adopted) {
      std::lock_guard<std::mutex> slot_lk(adopted->m);
      out.payload = adopted->payload;
    } else {
      out.payload = std::move(payload);
    }
    return out;
  }

  // Hit: inject planned memory faults, then (with ECC) syndrome-sweep, then
  // CHECK_BEFORE-verify and heal.  Serialized per entry so an injected flip
  // and a concurrent sweep never race on the payload bytes.
  std::lock_guard<std::mutex> slot_lk(slot->m);
  std::shared_ptr<const Payload> payload = slot->payload;
  if (mem_injector != nullptr && payload) {
    const MemoryStrikeContext mctx{MemorySurface::kResidentPanel,
                                   payload->elems(), int(8 * sizeof(S))};
    std::vector<PanelFlip> flips;
    mem_injector->plan_flips(mctx, flips);
    if (!flips.empty()) {
      // Test-only corruption of the (logically immutable) resident bytes —
      // the very event the defenses below exist to catch.
      S* data = const_cast<S*>(payload->panels.data());
      for (const PanelFlip& f : flips) {
        // plan_flips' canonicalized contract: in range, unique.
        assert(f.elem < payload->elems() &&
               std::size_t(f.bit) < 8 * sizeof(S));
        flip_value_bit(data[f.elem], f.bit);
      }
      mem_injector->record_applied(flips.size());
    }
  }
  // SEC-DED sweep: corrects any single flipped bit per 64-bit word in
  // place — no re-encode, no source-operand read.  A double-detect (or a
  // multi-bit alias that "corrected" the wrong bit) falls through to the
  // integrity re-verify, which forces the re-encode heal.
  bool ecc_uncorrectable = false;
  if (payload && payload->ecc.size() > 0) {
    auto* bytes = const_cast<unsigned char*>(
        reinterpret_cast<const unsigned char*>(payload->panels.data()));
    auto* parity = const_cast<std::uint8_t*>(payload->ecc.data());
    const secded::ScrubResult scrub = secded::scrub_buffer(
        bytes, payload->panels.size() * sizeof(S), parity);
    out.ecc_corrected = int(scrub.corrected + scrub.parity_fixed);
    ecc_uncorrectable = scrub.uncorrectable > 0;
    if (out.ecc_corrected > 0 || ecc_uncorrectable) {
      std::lock_guard<std::mutex> lk(m_);
      ecc_corrected_ += scrub.corrected + scrub.parity_fixed;
      ecc_detected_ += scrub.uncorrectable;
    }
  }
  if (payload && (verify || ecc_uncorrectable)) {
    if (verify) {
      std::lock_guard<std::mutex> lk(m_);
      ++verifies_;
    }
    const bool ok =
        !ecc_uncorrectable && (!verify || verify_payload(*payload));
    if (!ok) {
      // Memory fault detected: re-encode from the source and swap the
      // healed payload into the slot (self-healing).  The heal restores
      // the ECC protection the old payload carried.
      auto fresh = std::make_shared<Payload>();
      fill_payload(*fresh, a, lda, trans, alpha, plan);
      if (payload->ecc.size() > 0) ecc_encode_payload(*fresh);
      slot->payload = fresh;
      payload = std::move(fresh);
      out.heals = 1;
      std::lock_guard<std::mutex> lk(m_);
      ++heals_;
    }
  }
  out.payload = std::move(payload);
  return out;
}

template <typename S, typename C>
void OperandCache<S, C>::clear() {
  std::lock_guard<std::mutex> lk(m_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

template <typename S, typename C>
OperandCacheStats OperandCache<S, C>::stats() {
  std::lock_guard<std::mutex> lk(m_);
  OperandCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.verifies = verifies_;
  s.heals = heals_;
  s.ecc_corrected = ecc_corrected_;
  s.ecc_detected = ecc_detected_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

template class OperandCache<float>;
template class OperandCache<double>;
template class OperandCache<bf16_t, float>;
template class OperandCache<fp16_t, float>;
template class OperandCache<std::int8_t, std::int32_t>;

template <typename S, typename C>
ResidentOperand make_resident_a(Trans ta, Trans tb, index_t m, index_t n,
                                index_t k, C alpha, const S* a, index_t lda,
                                const Options& opts, bool ft) {
  ResidentOperand handle;
  if (m <= 0 || n <= 0 || k <= 0 || alpha == C(0) || a == nullptr)
    return handle;
  ContextCache<S, C>& cache = process_context_cache<S, C>();
  const std::shared_ptr<const GemmPlan<S, C>> plan =
      cache.plan(ta, tb, m, n, k, opts, ft);
  ResidentAcquisition<S, C> acq = cache.operands().acquire(
      a, lda, ta == Trans::kTrans, alpha, *plan, nullptr, false);
  handle.bytes_ = acq.payload ? acq.payload->bytes() : 0;
  handle.hit_ = acq.hit;
  handle.hold_ = std::move(acq.payload);
  return handle;
}

template ResidentOperand make_resident_a<float>(Trans, Trans, index_t,
                                                index_t, index_t, float,
                                                const float*, index_t,
                                                const Options&, bool);
template ResidentOperand make_resident_a<double>(Trans, Trans, index_t,
                                                 index_t, index_t, double,
                                                 const double*, index_t,
                                                 const Options&, bool);
template ResidentOperand make_resident_a<bf16_t, float>(
    Trans, Trans, index_t, index_t, index_t, float, const bf16_t*, index_t,
    const Options&, bool);
template ResidentOperand make_resident_a<fp16_t, float>(
    Trans, Trans, index_t, index_t, index_t, float, const fp16_t*, index_t,
    const Options&, bool);
template ResidentOperand make_resident_a<std::int8_t, std::int32_t>(
    Trans, Trans, index_t, index_t, index_t, std::int32_t, const std::int8_t*,
    index_t, const Options&, bool);

}  // namespace ftgemm
