#include "core/plan.hpp"

#include <algorithm>

#include "abft/tolerance.hpp"
#include "runtime/topology.hpp"
#include "util/env.hpp"

namespace ftgemm {

PlanKey make_plan_key(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                      const Options& opts, bool ft) {
  PlanKey key;
  key.m = m;
  key.n = n;
  key.k = k;
  key.ta = ta;
  key.tb = tb;
  key.ft = ft;
  key.fast_path_allowed = opts.small_fast_path;
  key.threads = runtime::topology(opts.threads);
  key.runtime = int(runtime::resolve_backend(opts.runtime));
  key.isa_override = opts.isa ? int(*opts.isa) : -1;
  key.tolerance_factor = opts.tolerance_factor;
  return key;
}

template <typename S, typename C>
GemmPlan<S, C> build_plan(const PlanKey& key) {
  GemmPlan<S, C> plan;
  plan.key = key;
  plan.isa = key.isa_override >= 0 ? Isa(key.isa_override) : select_isa();
  plan.kernels = get_kernel_set<S, C>(plan.isa);
  // Blocking and tolerance both key on ComputeT: the cache-resident panels
  // are ComputeT-wide (narrow storage is widened on pack), and the checksum
  // arithmetic whose rounding the tolerance model bounds runs entirely in
  // ComputeT — a bf16-storage plan therefore shares the fp32 blocking and
  // the fp32 tolerance derivation exactly (DESIGN.md §10).
  plan.blocking =
      make_plan(plan.isa, int(sizeof(C)), key.m, key.n, key.k);
  plan.k_zero = key.k <= 0;
  plan.num_panels =
      plan.k_zero ? 0 : (key.k + plan.blocking.kc - 1) / plan.blocking.kc;
  plan.tol_factor = !key.ft ? 0.0
                    : key.tolerance_factor > 0.0
                        ? key.tolerance_factor
                        : default_tolerance_factor_for<C>();

  // Single-macro-tile fast path: the whole problem fits one packed-A block
  // and one packed-B panel, so the cooperative-packing machinery would be
  // pure overhead.  Pin the topology to one thread (below the flop bound,
  // threading a problem is all barrier, no work — see kFastPathFlopCutoff
  // for why the tile test alone is not enough).
  const double flops =
      2.0 * double(key.m) * double(key.n) * double(key.k);
  plan.fast_path = key.fast_path_allowed && key.m > 0 && key.n > 0 &&
                   key.k > 0 && key.m <= plan.blocking.mc &&
                   key.n <= plan.blocking.nc && key.k <= plan.blocking.kc &&
                   flops <= env_double("FTGEMM_FAST_PATH_FLOPS",
                                       kFastPathFlopCutoff);
  plan.threads = plan.fast_path ? 1 : key.threads;
  plan.runtime = RuntimeBackend(key.runtime);

  // Workspace footprint (diagnostics; GemmContext::ensure is the allocation
  // authority and pads per-thread strides on top of these).
  const auto elems = [](index_t v) { return std::size_t(std::max<index_t>(v, 0)); };
  std::size_t ws = elems(plan.blocking.mc * plan.blocking.kc) *
                       std::size_t(plan.threads) +        // atilde per thread
                   elems(plan.blocking.kc * plan.blocking.nc);  // shared btilde
  if (key.ft) {
    const index_t lanes = plan.kernels.cr_lanes;
    const index_t kk = std::max<index_t>(key.k, 1);
    ws += elems(2 * key.m);                                // cc, ccref
    ws += elems(2 * key.n);                                // cr, crref
    ws += elems(key.n * lanes) * std::size_t(plan.threads);  // crref partials
    ws += elems(kk) + elems(kk) * std::size_t(plan.threads);  // ar + partials
    ws += elems(plan.blocking.kc);                         // bc
  }
  plan.workspace_bytes = ws * sizeof(C);
  plan.self_check = plan_self_check(plan);
  return plan;
}

template GemmPlan<float> build_plan<float, float>(const PlanKey&);
template GemmPlan<double> build_plan<double, double>(const PlanKey&);
template GemmPlan<bf16_t, float> build_plan<bf16_t, float>(const PlanKey&);
template GemmPlan<fp16_t, float> build_plan<fp16_t, float>(const PlanKey&);

// int8 planning (declared in plan.hpp).  Differences from the generic body:
//  * blocking is derived at elem_bytes = 1 — the packed panels stay 8-bit,
//    which is the entire bandwidth argument of the int8 path — then
//    re-shaped onto the int8 register tiles (MR/NR differ per ISA from the
//    float layer's) and the packed depth quad;
//  * tol_factor is exactly 0.0: integer checksums make verification an
//    equality test, not a rounding-bound test (DESIGN.md §11);
//  * workspace is accounted in bytes directly (mixed 1/4/8-byte buffers).
template <>
GemmPlan<std::int8_t, std::int32_t> build_plan<std::int8_t, std::int32_t>(
    const PlanKey& key) {
  GemmPlan<std::int8_t, std::int32_t> plan;
  plan.key = key;
  plan.isa = key.isa_override >= 0 ? Isa(key.isa_override) : select_isa();
  plan.kernels = get_kernel_set<std::int8_t, std::int32_t>(plan.isa);
  plan.blocking = make_plan(plan.isa, 1, key.m, key.n, key.k);
  const auto round_up = [](index_t v, index_t q) {
    return ((std::max<index_t>(v, q) + q - 1) / q) * q;
  };
  plan.blocking.mr = plan.kernels.mr;
  plan.blocking.nr = plan.kernels.nr;
  plan.blocking.mc = round_up(plan.blocking.mc, plan.kernels.mr);
  plan.blocking.nc = round_up(plan.blocking.nc, plan.kernels.nr);
  plan.blocking.kc = round_up(plan.blocking.kc, kI8KQuad);
  plan.k_zero = key.k <= 0;
  plan.num_panels =
      plan.k_zero ? 0 : (key.k + plan.blocking.kc - 1) / plan.blocking.kc;
  plan.tol_factor = 0.0;

  const double flops =
      2.0 * double(key.m) * double(key.n) * double(key.k);
  plan.fast_path = key.fast_path_allowed && key.m > 0 && key.n > 0 &&
                   key.k > 0 && key.m <= plan.blocking.mc &&
                   key.n <= plan.blocking.nc && key.k <= plan.blocking.kc &&
                   flops <= env_double("FTGEMM_FAST_PATH_FLOPS",
                                       kFastPathFlopCutoff);
  plan.threads = plan.fast_path ? 1 : key.threads;
  plan.runtime = RuntimeBackend(key.runtime);

  // Byte-accurate workspace accounting (diagnostics; the GemmContext
  // specialization in core/context.hpp is the allocation authority).
  const auto elems = [](index_t v) {
    return std::size_t(std::max<index_t>(v, 0));
  };
  const std::size_t threads = std::size_t(plan.threads);
  std::size_t ws =
      elems(i8_tile_bytes(plan.blocking.kc, plan.blocking.mc)) * threads +
      elems(i8_tile_bytes(plan.blocking.kc, plan.blocking.nc));
  ws += elems(key.m * key.n) * sizeof(std::int32_t);  // biased accumulator
  ws += elems(key.m) * sizeof(std::int32_t);          // arow
  ws += elems(key.n) * sizeof(std::int32_t);          // bcol
  if (key.ft) {
    ws += elems(2 * key.m) * sizeof(std::int64_t);    // cc, ccref
    ws += elems(2 * key.n) * sizeof(std::int64_t);    // cr, crref
    ws += elems(key.n) * sizeof(std::int64_t) * threads;  // crref partials
    ws += elems(std::max<index_t>(key.k, 1)) * sizeof(std::int32_t);  // ar
    ws += elems(plan.blocking.kc) * sizeof(std::int32_t);             // bc
  }
  plan.workspace_bytes = ws;
  plan.self_check = plan_self_check(plan);
  return plan;
}

}  // namespace ftgemm
