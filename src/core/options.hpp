// Public option and report types for the GEMM entry points.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/isa.hpp"
#include "inject/injector.hpp"
#include "runtime/team.hpp"

namespace ftgemm {

using index_t = std::int64_t;

/// One correction the verifier applied to C, with its provenance.
struct CorrectionRecord {
  int panel = 0;        ///< rank-KC panel whose verification caught it
  int round = 0;        ///< 0 = checksum delta, >0 = exact-recheck round
  index_t i = 0;        ///< global row of the corrected element
  index_t j = 0;        ///< global column
  double delta = 0.0;   ///< perturbation removed from C(i, j)
};

/// Storage order of the caller's matrices (BLAS convention).
enum class Layout { kColMajor, kRowMajor };

/// Operand transposition.
enum class Trans { kNoTrans, kTrans };

/// Tuning & instrumentation knobs shared by Ori and FT entry points.
struct Options {
  /// Worker threads; 0 defers to FTGEMM_THREADS, then hardware concurrency
  /// (see runtime/topology.hpp for the full resolution order).
  int threads = 0;
  /// Thread-team runtime the call executes on: the persistent worker pool
  /// or a per-call OpenMP region.  kAuto defers to FTGEMM_RUNTIME, then the
  /// library default.  Results are bit-identical across backends at equal
  /// thread counts (see runtime/team.hpp).
  RuntimeBackend runtime = RuntimeBackend::kAuto;
  /// Kernel ISA override (defaults to the best the CPU supports).
  std::optional<Isa> isa;
  /// Verification threshold safety factor; 0 means the library default
  /// (512, overridable with FTGEMM_TOL_FACTOR).  FT entry points only.
  double tolerance_factor = 0.0;
  /// Let the planner take the single-macro-tile direct path for problems
  /// that fit one MC x NC x KC tile (pins the call to one thread, skips the
  /// cooperative-packing machinery; results are bit-identical).  Disable to
  /// force the general blocked path, e.g. for A/B comparison.
  bool small_fast_path = true;
  /// After correcting, recompute the affected row sums of C directly and
  /// re-verify them against the predicted checksums (O(N) per error).
  bool paranoid_recheck = false;
  /// Optional fault injector (§3.2).  Non-owning; may be null.
  FaultInjector* injector = nullptr;
  /// Optional sink for per-correction provenance (appended to; non-owning).
  /// Accessed only from the verification critical section, so a single log
  /// may be shared across calls but not across concurrent GEMMs.
  std::vector<CorrectionRecord>* correction_log = nullptr;
  /// Serve A from the process-wide resident-operand cache
  /// (core/operand_cache.hpp): pack + checksum-encode A once, reuse the
  /// resident panels on every later call with the same operand and shape.
  /// Strictly opt-in — the caller promises A is stable between calls
  /// (weights); results are bit-identical to the cold path.
  bool resident_a = false;
  /// Re-verify the resident panels' integrity sums on every cache hit
  /// (CHECK_BEFORE) and heal a mismatch by re-encoding from the source.
  /// Only meaningful with resident_a.
  bool resident_verify = true;
  /// Optional memory-fault injector corrupting the resident panels on cache
  /// hits, before re-verification (tests).  Non-owning; may be null.
  MemoryFaultInjector* memory_injector = nullptr;
};

/// Outcome of one fault-tolerant GEMM call.
struct FtReport {
  int panels = 0;                    ///< rank-KC verification intervals run
  std::int64_t errors_detected = 0;  ///< checksum mismatches attributed
  std::int64_t errors_corrected = 0; ///< elements repaired in C
  int uncorrectable_panels = 0;      ///< panels with unresolvable mismatches
  int retries = 0;                   ///< re-executions (ft_*_reliable only)
  double elapsed_seconds = 0.0;      ///< wall time of the whole call
  /// The call was rejected before touching any operand: a negative
  /// dimension or an undersized leading dimension (see valid_gemm_args).
  /// C is untouched; no panels ran.  clean() stays true — nothing was
  /// computed, so nothing can be silently wrong.
  bool invalid_args = false;
  /// With Options::resident_a: A was served from the resident-operand cache
  /// (false on the encoding miss and when resident_a was off).
  bool resident_hit = false;
  /// Resident-panel integrity mismatches healed by re-encoding this call.
  int resident_heals = 0;
  /// Resident-panel bits corrected in place by the SEC-DED syndrome sweep
  /// (FTGEMM_OPERAND_ECC) — corrections that did NOT need a re-encode heal.
  int resident_ecc_corrected = 0;

  /// True when the result is trustworthy (all mismatches corrected).
  [[nodiscard]] bool clean() const { return uncorrectable_panels == 0; }
};

/// BLAS-style argument validation, shared by every entry point (free
/// functions, engine, batched, serving).  Arguments are *column-major*
/// post-layout-normalization values.  Rules (xGEMM, relaxed exactly where
/// the degenerate paths make an operand unreadable):
///   - m, n, k must be non-negative;
///   - ldc >= max(1, m) whenever the call could write C (m > 0 and n > 0);
///   - lda/ldb are validated only when A/B can be read (k > 0 and the
///     problem is non-empty): lda >= max(1, rows of op(A)), ldb >= max(1,
///     rows of op(B)).  BLAS also requires this for k == 0, but the
///     documented degenerate contract (nullptr operands legal when k == 0)
///     predates this check and is kept.
/// Violations make the entry points a silent no-op (C untouched) with
/// FtReport::invalid_args / BatchReport::invalid_args set — the library
/// never xerbla-aborts a serving process.
[[nodiscard]] inline bool valid_gemm_args(Trans ta, Trans tb, index_t m,
                                          index_t n, index_t k, index_t lda,
                                          index_t ldb, index_t ldc) {
  if (m < 0 || n < 0 || k < 0) return false;
  if (m > 0 && n > 0) {
    if (ldc < m) return false;
    if (k > 0) {
      const index_t a_rows = ta == Trans::kNoTrans ? m : k;
      const index_t b_rows = tb == Trans::kNoTrans ? k : n;
      if (lda < a_rows || ldb < b_rows) return false;
    }
  }
  return true;
}

}  // namespace ftgemm
