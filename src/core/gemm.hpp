// FT-GEMM public API.
//
// Two families of entry points per precision:
//
//   dgemm / sgemm        — the high-performance baseline ("FT-GEMM: Ori" in
//                          the paper's figures): packing, cache blocking,
//                          SIMD micro-kernels, OpenMP threading.
//   ft_dgemm / ft_sgemm  — the same computation protected by the fused
//                          online-ABFT scheme; returns an FtReport with
//                          detection/correction statistics.
//
// Semantics follow BLAS xGEMM:  C = alpha * op(A) * op(B) + beta * C
// with op in {identity, transpose}, arbitrary leading dimensions, and both
// row-major and column-major layouts.
//
// The *_reliable variants snapshot C, run the FT kernel, and transparently
// re-execute on the (rare) panels the locator cannot disambiguate — giving
// an unconditional correct-result guarantee under any error pattern the
// checksums can detect.
//
// GemmEngine<T> offers the same operations with workspace *and plan* reuse
// across calls (steady-state allocation-free, re-planning-free via the
// PlanCache in its context — see core/plan.hpp), which is what the
// benchmark harness and single-threaded long-running applications should
// use.  The free functions get the same treatment from a process-wide
// leased context pool (core/context.hpp): any number of application threads
// may call them concurrently — each call leases a private workspace and all
// callers share one plan cache, so repeated calls of a recurring shape are
// cache hits no matter which thread issues them.
#pragma once

#include "core/context.hpp"
#include "core/options.hpp"

namespace ftgemm {

// ---------------------------------------------------------------------------
// Free functions (leased process-wide workspace; safe to call from any
// number of application threads concurrently).
// ---------------------------------------------------------------------------

/// C = alpha*op(A)*op(B) + beta*C, double precision, no fault tolerance.
void dgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           const Options& opts = {});

/// Single-precision variant of dgemm.
void sgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
           float alpha, const float* a, index_t lda, const float* b,
           index_t ldb, float beta, float* c, index_t ldc,
           const Options& opts = {});

/// Fault-tolerant dgemm: fused ABFT encoding, per-panel verification and
/// on-the-fly correction (§2.2/§2.3).
FtReport ft_dgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, double alpha, const double* a, index_t lda,
                  const double* b, index_t ldb, double beta, double* c,
                  index_t ldc, const Options& opts = {});

/// Fault-tolerant sgemm.
FtReport ft_sgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, float alpha, const float* a, index_t lda,
                  const float* b, index_t ldb, float beta, float* c,
                  index_t ldc, const Options& opts = {});

/// ft_dgemm with an unconditional result guarantee: if a panel reports an
/// uncorrectable mismatch, C is restored from a snapshot and the call is
/// re-executed (up to max_retries times).  The returned report aggregates
/// all attempts; report.retries counts re-executions.
FtReport ft_dgemm_reliable(Layout layout, Trans ta, Trans tb, index_t m,
                           index_t n, index_t k, double alpha, const double* a,
                           index_t lda, const double* b, index_t ldb,
                           double beta, double* c, index_t ldc,
                           const Options& opts = {}, int max_retries = 2);

/// Single-precision *_reliable variant.
FtReport ft_sgemm_reliable(Layout layout, Trans ta, Trans tb, index_t m,
                           index_t n, index_t k, float alpha, const float* a,
                           index_t lda, const float* b, index_t ldb,
                           float beta, float* c, index_t ldc,
                           const Options& opts = {}, int max_retries = 2);

// ---------------------------------------------------------------------------
// Mixed precision: narrow storage, fp32 accumulation.
// ---------------------------------------------------------------------------
//
// A and B are stored bf16/fp16; every multiplier input is widened to fp32 on
// pack (one conversion per element, fused into the packing pass), the
// register tiles, C, and *all checksums* are fp32, so the fp32 tolerance
// derivation applies unchanged (docs/DESIGN.md §10).  alpha/beta and C are
// fp32.

/// C = alpha*op(A)*op(B) + beta*C with bf16-stored operands, fp32 compute.
void gemm_bf16(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
               index_t k, float alpha, const bf16_t* a, index_t lda,
               const bf16_t* b, index_t ldb, float beta, float* c,
               index_t ldc, const Options& opts = {});

/// Fault-tolerant gemm_bf16 (checksums computed and carried in fp32).
FtReport ft_gemm_bf16(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                      index_t k, float alpha, const bf16_t* a, index_t lda,
                      const bf16_t* b, index_t ldb, float beta, float* c,
                      index_t ldc, const Options& opts = {});

/// ft_gemm_bf16 with the snapshot/retry guarantee of ft_sgemm_reliable.
FtReport ft_gemm_bf16_reliable(Layout layout, Trans ta, Trans tb, index_t m,
                               index_t n, index_t k, float alpha,
                               const bf16_t* a, index_t lda, const bf16_t* b,
                               index_t ldb, float beta, float* c, index_t ldc,
                               const Options& opts = {}, int max_retries = 2);

/// fp16-storage variants of the bf16 entry points above.
void gemm_f16(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
              index_t k, float alpha, const fp16_t* a, index_t lda,
              const fp16_t* b, index_t ldb, float beta, float* c, index_t ldc,
              const Options& opts = {});

FtReport ft_gemm_f16(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                     index_t k, float alpha, const fp16_t* a, index_t lda,
                     const fp16_t* b, index_t ldb, float beta, float* c,
                     index_t ldc, const Options& opts = {});

FtReport ft_gemm_f16_reliable(Layout layout, Trans ta, Trans tb, index_t m,
                              index_t n, index_t k, float alpha,
                              const fp16_t* a, index_t lda, const fp16_t* b,
                              index_t ldb, float beta, float* c, index_t ldc,
                              const Options& opts = {}, int max_retries = 2);

/// Drop the process-wide cached plans AND resident operand payloads (all
/// precisions, mixed included).  FTGEMM_* environment knobs (ISA, blocking, tolerance,
/// fast-path bound, operand-cache caps) are read when a plan / payload is
/// *built*, so a warm cache will not observe later changes to them — call
/// this after mutating the environment mid-process.  Calls already holding
/// a resident payload stay valid (shared ownership); engines' private plan
/// caches are unaffected (they die with the engine; use a fresh engine
/// instead).
void clear_process_caches();

/// Deprecated historical name for clear_process_caches() (from when the
/// plan cache was thread-local and the only process cache).  Same effect.
[[deprecated("use clear_process_caches()")]] void clear_thread_plan_cache();

// ---------------------------------------------------------------------------
// Engine with workspace reuse.
// ---------------------------------------------------------------------------

/// Reusable GEMM engine: owns the packing buffers, checksum vectors, and
/// plan cache, so repeated calls of similar size perform no allocation and
/// no re-planning.  (StorageT, ComputeT) generalized like the rest of the
/// stack: GemmEngine<float> is plain fp32, GemmEngine<bf16_t, float> is
/// bf16 storage with fp32 accumulation.
template <typename StorageT, typename ComputeT = StorageT>
class GemmEngine {
 public:
  explicit GemmEngine(Options opts = {}) : opts_(opts) {}

  /// Plain high-performance GEMM ("Ori").
  void gemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
            index_t k, ComputeT alpha, const StorageT* a, index_t lda,
            const StorageT* b, index_t ldb, ComputeT beta, ComputeT* c,
            index_t ldc);

  /// Fault-tolerant GEMM.
  FtReport ft_gemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                   index_t k, ComputeT alpha, const StorageT* a, index_t lda,
                   const StorageT* b, index_t ldb, ComputeT beta, ComputeT* c,
                   index_t ldc);

  [[nodiscard]] Options& options() { return opts_; }
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  Options opts_;
  GemmContext<StorageT, ComputeT> ctx_;
};

extern template class GemmEngine<double>;
extern template class GemmEngine<float>;
extern template class GemmEngine<bf16_t, float>;
extern template class GemmEngine<fp16_t, float>;

}  // namespace ftgemm
