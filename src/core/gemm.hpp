// FT-GEMM public API.
//
// Two families of entry points per precision:
//
//   dgemm / sgemm        — the high-performance baseline ("FT-GEMM: Ori" in
//                          the paper's figures): packing, cache blocking,
//                          SIMD micro-kernels, OpenMP threading.
//   ft_dgemm / ft_sgemm  — the same computation protected by the fused
//                          online-ABFT scheme; returns an FtReport with
//                          detection/correction statistics.
//
// Semantics follow BLAS xGEMM:  C = alpha * op(A) * op(B) + beta * C
// with op in {identity, transpose}, arbitrary leading dimensions, and both
// row-major and column-major layouts.
//
// The *_reliable variants snapshot C, run the FT kernel, and transparently
// re-execute on the (rare) panels the locator cannot disambiguate — giving
// an unconditional correct-result guarantee under any error pattern the
// checksums can detect.
//
// GemmEngine<T> offers the same operations with workspace *and plan* reuse
// across calls (steady-state allocation-free, re-planning-free via the
// PlanCache in its context — see core/plan.hpp), which is what the
// benchmark harness and single-threaded long-running applications should
// use.  The free functions get the same treatment from a process-wide
// leased context pool (core/context.hpp): any number of application threads
// may call them concurrently — each call leases a private workspace and all
// callers share one plan cache, so repeated calls of a recurring shape are
// cache hits no matter which thread issues them.
#pragma once

#include "core/context.hpp"
#include "core/options.hpp"

namespace ftgemm {

// ---------------------------------------------------------------------------
// Free functions (leased process-wide workspace; safe to call from any
// number of application threads concurrently).
// ---------------------------------------------------------------------------

/// C = alpha*op(A)*op(B) + beta*C, double precision, no fault tolerance.
void dgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           const Options& opts = {});

/// Single-precision variant of dgemm.
void sgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
           float alpha, const float* a, index_t lda, const float* b,
           index_t ldb, float beta, float* c, index_t ldc,
           const Options& opts = {});

/// Fault-tolerant dgemm: fused ABFT encoding, per-panel verification and
/// on-the-fly correction (§2.2/§2.3).
FtReport ft_dgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, double alpha, const double* a, index_t lda,
                  const double* b, index_t ldb, double beta, double* c,
                  index_t ldc, const Options& opts = {});

/// Fault-tolerant sgemm.
FtReport ft_sgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, float alpha, const float* a, index_t lda,
                  const float* b, index_t ldb, float beta, float* c,
                  index_t ldc, const Options& opts = {});

/// ft_dgemm with an unconditional result guarantee: if a panel reports an
/// uncorrectable mismatch, C is restored from a snapshot and the call is
/// re-executed (up to max_retries times).  The returned report aggregates
/// all attempts; report.retries counts re-executions.
FtReport ft_dgemm_reliable(Layout layout, Trans ta, Trans tb, index_t m,
                           index_t n, index_t k, double alpha, const double* a,
                           index_t lda, const double* b, index_t ldb,
                           double beta, double* c, index_t ldc,
                           const Options& opts = {}, int max_retries = 2);

/// Single-precision *_reliable variant.
FtReport ft_sgemm_reliable(Layout layout, Trans ta, Trans tb, index_t m,
                           index_t n, index_t k, float alpha, const float* a,
                           index_t lda, const float* b, index_t ldb,
                           float beta, float* c, index_t ldc,
                           const Options& opts = {}, int max_retries = 2);

/// Drop the process-wide cached plans AND resident operand payloads (both
/// precisions).  FTGEMM_* environment knobs (ISA, blocking, tolerance,
/// fast-path bound, operand-cache caps) are read when a plan / payload is
/// *built*, so a warm cache will not observe later changes to them — call
/// this after mutating the environment mid-process.  Calls already holding
/// a resident payload stay valid (shared ownership); engines' private plan
/// caches are unaffected (they die with the engine; use a fresh engine
/// instead).
void clear_process_caches();

/// Deprecated historical name for clear_process_caches() (from when the
/// plan cache was thread-local and the only process cache).  Same effect.
[[deprecated("use clear_process_caches()")]] void clear_thread_plan_cache();

// ---------------------------------------------------------------------------
// Engine with workspace reuse.
// ---------------------------------------------------------------------------

/// Reusable GEMM engine: owns the packing buffers, checksum vectors, and
/// plan cache, so repeated calls of similar size perform no allocation and
/// no re-planning.
template <typename T>
class GemmEngine {
 public:
  explicit GemmEngine(Options opts = {}) : opts_(opts) {}

  /// Plain high-performance GEMM ("Ori").
  void gemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
            index_t k, T alpha, const T* a, index_t lda, const T* b,
            index_t ldb, T beta, T* c, index_t ldc);

  /// Fault-tolerant GEMM.
  FtReport ft_gemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                   index_t k, T alpha, const T* a, index_t lda, const T* b,
                   index_t ldb, T beta, T* c, index_t ldc);

  [[nodiscard]] Options& options() { return opts_; }
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  Options opts_;
  GemmContext<T> ctx_;
};

extern template class GemmEngine<double>;
extern template class GemmEngine<float>;

}  // namespace ftgemm
