// Plan/execute split: everything a (FT-)GEMM call decides *before* touching
// operand data lives in an immutable GemmPlan, built once per (shape, opts)
// fingerprint and cached, so steady-state calls — the serving regime of many
// small protected GEMMs — pay for ISA selection, kernel dispatch, cache-aware
// blocking, thread topology, tolerance resolution, and workspace sizing
// exactly once.
//
//   PlanKey    — the fingerprint a plan is built from (shape, transposes,
//                FT mode, resolved thread count, raw ISA/tolerance knobs).
//   GemmPlan   — the immutable result: resolved ISA + KernelSet, shape-aware
//                BlockingPlan, thread topology, panel count, FT tolerance
//                factor, workspace footprint, and the small-GEMM fast-path
//                decision.
//   PlanCache  — a small LRU of shared_ptr<const GemmPlan>, seeded into
//                GemmContext / ContextCache so every entry point (free
//                functions, GemmEngine, ft_*_reliable, batched) reuses plans
//                instead of re-planning.
//
// Environment knobs (FTGEMM_ISA, FTGEMM_TOL_FACTOR, FTGEMM_MC/NC/KC,
// FTGEMM_KERNEL_MR, FTGEMM_FAST_PATH_FLOPS) are read when a plan is
// *built*; a warm cache will not observe later changes to them.  Callers
// that mutate the environment mid-process (the blocking-ablation bench)
// must start from an empty cache: a fresh GemmEngine for engine users,
// clear_process_caches() (core/gemm.hpp) for free-function users.
//
// The small-GEMM fast path: when the whole problem fits one macro-tile
// (m <= MC, n <= NC, k <= KC after shape-aware clamping) AND its flop count
// stays under kFastPathFlopCutoff, the planner pins the topology to one
// thread and marks the plan fast_path.  The executor then skips the
// parallel region, the cooperative-packing partitions and their barriers,
// and the per-call reduction scratch: pack B~ once, pack A~ once, run the
// macro kernel, verify — FT checksums still fused.  Results are
// bit-identical to the general path (same packing, same kernels, same
// summation order; a one-thread reduction is a copy).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "arch/isa.hpp"
#include "blocking/plan.hpp"
#include "core/options.hpp"
#include "inject/injector.hpp"
#include "kernels/microkernel.hpp"

namespace ftgemm {

/// Work bound for the small-GEMM fast path: a problem must both fit one
/// macro-tile and keep 2*m*n*k at or below this for the planner to pin it
/// to one thread (NC alone can span thousands of columns, so the tile test
/// by itself would capture multi-GFLOP shapes and silently drop the
/// caller's thread request).  2*128^3 — the serving-size regime the fast
/// path exists for, far below kInterBatchFlopCutoff (134e6), under which
/// the batched scheduler already judges per-problem threading to be
/// barrier-dominated.  Override with FTGEMM_FAST_PATH_FLOPS (read at
/// plan-build time).
inline constexpr double kFastPathFlopCutoff = 2.0 * 128.0 * 128.0 * 128.0;

/// Fingerprint of every input the planner reads.  ISA and tolerance are kept
/// *raw* (as the caller's Options carried them) so cache lookups stay free of
/// env reads and cpuid checks; the thread count and team runtime are kept
/// *resolved* (via runtime/topology.hpp) so a changed environment —
/// FTGEMM_THREADS, OMP_NUM_THREADS, FTGEMM_RUNTIME — is never masked by a
/// warm cache.
struct PlanKey {
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;
  Trans ta = Trans::kNoTrans;
  Trans tb = Trans::kNoTrans;
  bool ft = false;
  bool fast_path_allowed = true;  ///< Options::small_fast_path
  int threads = 1;                ///< resolved worker-count request
  int runtime = int(RuntimeBackend::kOpenMP);  ///< resolved team backend
  int isa_override = -1;          ///< int(Options::isa) or -1 for auto
  double tolerance_factor = 0.0;  ///< raw Options value; 0 = library default
  /// Storage-dtype discriminator (kStorageDtypeTag<S>): 0 for the uniform
  /// fp32/fp64 paths — keeping every pre-existing key identity and hash
  /// unchanged — 1 for bf16, 2 for fp16 storage.  Typed call sites
  /// (ContextCache::plan, the service fast-path resolver) stamp it after
  /// make_plan_key, which stays dtype-blind.
  std::uint8_t sdtype = 0;

  [[nodiscard]] bool operator==(const PlanKey& o) const {
    return m == o.m && n == o.n && k == o.k && ta == o.ta && tb == o.tb &&
           ft == o.ft && fast_path_allowed == o.fast_path_allowed &&
           threads == o.threads && runtime == o.runtime &&
           isa_override == o.isa_override &&
           tolerance_factor == o.tolerance_factor && sdtype == o.sdtype;
  }
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const {
    // FNV-1a over the discriminating fields; shapes dominate, so fold them
    // first.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(std::uint64_t(key.m));
    mix(std::uint64_t(key.n));
    mix(std::uint64_t(key.k));
    mix(std::uint64_t(key.ta == Trans::kTrans) | (std::uint64_t(key.tb == Trans::kTrans) << 1) |
        (std::uint64_t(key.ft) << 2) | (std::uint64_t(key.fast_path_allowed) << 3) |
        (std::uint64_t(key.sdtype) << 4));
    mix(std::uint64_t(std::uint32_t(key.threads)));
    mix(std::uint64_t(std::uint32_t(key.runtime)));
    mix(std::uint64_t(std::uint32_t(key.isa_override)));
    std::uint64_t tol_bits = 0;
    static_assert(sizeof(tol_bits) == sizeof(key.tolerance_factor));
    __builtin_memcpy(&tol_bits, &key.tolerance_factor, sizeof(tol_bits));
    mix(tol_bits);
    return std::size_t(h);
  }
};

/// The immutable result of planning one (shape, opts) combination.  Executors
/// (core/driver.hpp) read every decision from here and contain none of their
/// own.  (StorageT, ComputeT) generalized like the kernel layer: blocking,
/// tolerance, and workspace are all derived from ComputeT (the panels and
/// checksums the kernels actually touch), StorageT only selects the pack
/// engine.
template <typename StorageT, typename ComputeT = StorageT>
struct GemmPlan {
  PlanKey key;               ///< fingerprint this plan was built from
  Isa isa = Isa::kScalar;    ///< resolved instruction set
  /// Resolved micro-kernel pair + tile shape + the ISA-dispatched packing &
  /// checksum engine (kernels.pack); executors reach the whole per-ISA
  /// surface through this one member.
  KernelSet<StorageT, ComputeT> kernels;
  BlockingPlan blocking;     ///< shape-aware MC/NC/KC/MR/NR
  int threads = 1;           ///< execution topology (1 on the fast path)
  /// Resolved thread-team backend executes on (never kAuto; see
  /// runtime/team.hpp for the bit-identity contract between backends).
  RuntimeBackend runtime = RuntimeBackend::kOpenMP;
  index_t num_panels = 0;    ///< rank-KC verification intervals for k > 0
  bool k_zero = false;       ///< k <= 0 (alpha == 0 is resolved per call)
  bool fast_path = false;    ///< single-macro-tile direct execution
  double tol_factor = 0.0;   ///< resolved verification safety factor
  std::size_t workspace_bytes = 0;  ///< packing + checksum footprint
  /// FNV self-checksum over the frozen planning decisions, stamped by
  /// build_plan.  PlanCache re-derives it on every hit: a mismatch means
  /// the cached plan bytes were corrupted in memory (the kPlan strike
  /// surface), and the cache heals by rebuilding from the stored key.
  std::uint64_t self_check = 0;

  [[nodiscard]] bool ft() const { return key.ft; }
  [[nodiscard]] index_t m() const { return key.m; }
  [[nodiscard]] index_t n() const { return key.n; }
  [[nodiscard]] index_t k() const { return key.k; }
};

/// Checksum of a plan's frozen decision fields (everything the executor
/// reads except the KernelSet function pointers, whose bytes are
/// process-immutable code addresses — corrupting *them* is a crash, not a
/// recoverable memory fault, so they stay outside the strike surface).
template <typename StorageT, typename ComputeT>
[[nodiscard]] inline std::uint64_t plan_self_check(
    const GemmPlan<StorageT, ComputeT>& p) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(std::uint64_t(p.key.m));
  mix(std::uint64_t(p.key.n));
  mix(std::uint64_t(p.key.k));
  mix(std::uint64_t(p.key.ta == Trans::kTrans) |
      (std::uint64_t(p.key.tb == Trans::kTrans) << 1) |
      (std::uint64_t(p.key.ft) << 2) | (std::uint64_t(p.key.sdtype) << 3));
  mix(std::uint64_t(std::uint32_t(int(p.isa))));
  mix(std::uint64_t(p.blocking.mc));
  mix(std::uint64_t(p.blocking.nc));
  mix(std::uint64_t(p.blocking.kc));
  mix(std::uint64_t(p.blocking.mr));
  mix(std::uint64_t(p.blocking.nr));
  mix(std::uint64_t(std::uint32_t(p.threads)));
  mix(std::uint64_t(std::uint32_t(int(p.runtime))));
  mix(std::uint64_t(p.num_panels));
  mix(std::uint64_t(p.k_zero) | (std::uint64_t(p.fast_path) << 1));
  std::uint64_t tol_bits = 0;
  static_assert(sizeof(tol_bits) == sizeof(p.tol_factor));
  __builtin_memcpy(&tol_bits, &p.tol_factor, sizeof(tol_bits));
  mix(tol_bits);
  mix(std::uint64_t(p.workspace_bytes));
  return h;
}

/// Build the lookup key for (shape, opts).  Resolves the thread count and
/// team runtime (via runtime/topology.hpp) but deliberately nothing else.
PlanKey make_plan_key(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                      const Options& opts, bool ft);

/// Build a plan from its key: resolve the ISA (select_isa unless overridden),
/// fetch the kernel set, derive the shape-aware blocking, resolve the FT
/// tolerance factor, size the workspace, and decide the fast path.
/// Deterministic: equal keys (under an unchanged environment) produce equal
/// plans.
template <typename S, typename C = S>
GemmPlan<S, C> build_plan(const PlanKey& key);

/// Convenience: key + build in one step, bypassing any cache.  Stamps the
/// storage dtype into the key like the cached paths do.
template <typename S, typename C = S>
GemmPlan<S, C> build_plan(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                          const Options& opts, bool ft) {
  PlanKey key = make_plan_key(ta, tb, m, n, k, opts, ft);
  key.sdtype = kStorageDtypeTag<S>;
  return build_plan<S, C>(key);
}

/// Small LRU cache of immutable plans.  Not thread-safe: each cache lives in
/// a thread-local or per-engine GemmContext / ContextCache, mirroring the
/// workspace ownership model (no locks on the hot path).
template <typename S, typename C = S>
class PlanCache {
 public:
  /// Distinct (shape, opts) fingerprints kept; a serving workload cycling
  /// through more shapes than this re-plans on the recurrence.
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit PlanCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  /// Look up (building on miss) the plan for (shape, opts).
  std::shared_ptr<const GemmPlan<S, C>> get_or_build(Trans ta, Trans tb,
                                                     index_t m, index_t n,
                                                     index_t k,
                                                     const Options& opts,
                                                     bool ft) {
    PlanKey key = make_plan_key(ta, tb, m, n, k, opts, ft);
    key.sdtype = kStorageDtypeTag<S>;
    return get_or_build(key, opts.memory_injector);
  }

  std::shared_ptr<const GemmPlan<S, C>> get_or_build(
      const PlanKey& key, MemoryFaultInjector* mem_injector = nullptr) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // mark most recent
      if (mem_injector != nullptr) {
        // kPlan strike surface: the bytes of the cached blocking decision.
        // Test-only mutation of the (logically immutable) shared plan —
        // callers still holding the shared_ptr across the strike see the
        // corruption too, exactly like real memory decay would.  The
        // KernelSet function pointers stay off-limits (see plan_self_check).
        auto& plan = const_cast<GemmPlan<S, C>&>(*it->second->second);
        auto* bytes = reinterpret_cast<unsigned char*>(&plan.blocking);
        const MemoryStrikeContext mctx{MemorySurface::kPlan,
                                       sizeof(BlockingPlan), 8};
        std::vector<PanelFlip> flips;
        mem_injector->plan_flips(mctx, flips);
        if (!flips.empty()) {
          for (const PanelFlip& f : flips) flip_value_bit(bytes[f.elem], f.bit);
          mem_injector->record_applied(flips.size());
        }
      }
      // CHECK_BEFORE for plans: a cached plan whose decision bytes no
      // longer match the checksum stamped at build is corrupted — rebuild
      // it from the stored key (the heal) instead of handing executors a
      // poisoned blocking/topology.
      if (it->second->second->self_check !=
          plan_self_check(*it->second->second)) {
        it->second->second = std::make_shared<const GemmPlan<S, C>>(
            build_plan<S, C>(it->second->first));
        ++heals_;
      }
      return it->second->second;
    }
    ++misses_;
    auto plan = std::make_shared<const GemmPlan<S, C>>(build_plan<S, C>(key));
    lru_.emplace_front(key, plan);
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
    return plan;
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t heals() const { return heals_; }
  [[nodiscard]] std::size_t size() const { return lru_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Drop every cached plan (e.g. after mutating FTGEMM_* environment
  /// knobs); the hit/miss counters survive.
  void clear() {
    lru_.clear();
    index_.clear();
  }

 private:
  using Entry = std::pair<PlanKey, std::shared_ptr<const GemmPlan<S, C>>>;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<PlanKey, typename std::list<Entry>::iterator,
                     PlanKeyHash>
      index_;
  std::size_t capacity_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t heals_ = 0;
};

extern template GemmPlan<float> build_plan<float, float>(const PlanKey&);
extern template GemmPlan<double> build_plan<double, double>(const PlanKey&);
extern template GemmPlan<bf16_t, float>
    build_plan<bf16_t, float>(const PlanKey&);
extern template GemmPlan<fp16_t, float>
    build_plan<fp16_t, float>(const PlanKey&);

/// int8 planning is a full specialization (defined in plan.cpp): packed
/// panels stay 8-bit, register tiles come from the int8 kernel sets rather
/// than the float blocking model, KC is rounded to the packed depth quad,
/// and the tolerance factor is pinned to exactly zero — integer checksums
/// are exact, so any nonzero residual is a fault (DESIGN.md §11).
template <>
GemmPlan<std::int8_t, std::int32_t> build_plan<std::int8_t, std::int32_t>(
    const PlanKey& key);

}  // namespace ftgemm
