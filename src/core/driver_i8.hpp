// The int8 (FT-)GEMM executor: the same plan/execute architecture as
// core/driver.hpp, specialized for the path where nothing is a float until
// the final write-back.
//
// Differences from the float executor, all forced by the quantized data
// flow (see kernels/kernel_int8.hpp and kernels/int8_types.hpp):
//
//   - C is never an accumulator.  The biased product P = Au8 * Bq
//     accumulates in a private int32 buffer (ctx.cq), and the caller's
//     float C is touched exactly once, by the dequantize epilogue
//     C = float(alpha*sa*sb*S + beta*C) after every panel has finished.
//     There is consequently no beta/encode pass over C: predicted and
//     reference checksums cover cq alone, starting from zero.
//
//   - Verification is EXACT.  Every quantity the checksums see is an
//     integer (int32 accumulators, int64 checksums), integer addition is
//     associative, and kernels/packers never reassociate a rounding — so
//     predicted and reference sums are compared at tolerance zero and the
//     locator runs with zero slack (docs/DESIGN.md §11).  There is no
//     ToleranceModel, no amax tracking, and no lane-partial mirroring
//     (cr_lanes = 1).
//
//   - The epilogue needs two side vectors to undo the bias/zero-point
//     shift: arow[i] = sum_k u8(i, k) (accumulated by pack_a on its first
//     pass over each (row, panel) region — the jc == 0 block) and
//     bcol[j] = sum_k s8(k, j) (accumulated by pack_b; each column is
//     packed once per panel).
//
// Thread topology is identical to the float executor: M-partition of cq,
// cooperative N-packing of the shared B~, per-thread private A~, the same
// barrier structure — threads = 1 IS the serial algorithm, and the fast
// path (execute_small_i8) is the same arithmetic with the machinery
// removed.  Exactness makes one float concern vanish: partitioned integer
// reductions are order-independent, so the Ar encode writes disjoint
// K-slices directly instead of reducing per-thread partials.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "abft/verifier.hpp"
#include "core/context.hpp"
#include "core/driver.hpp"
#include "core/operand_cache.hpp"
#include "core/options.hpp"
#include "core/plan.hpp"
#include "kernels/microkernel.hpp"
#include "runtime/team.hpp"
#include "util/timer.hpp"

namespace ftgemm::detail {

/// Exact-integer mismatch scan: a checksum pair disagrees iff the int64
/// difference is non-zero (the int8 analogue of find_mismatches, with the
/// tolerance argument gone rather than set to 0.0 — no float compare is
/// involved at all).
inline void find_mismatches_i64(const std::int64_t* predicted,
                                const std::int64_t* reference, index_t count,
                                index_t base, std::vector<Mismatch>& out) {
  for (index_t i = 0; i < count; ++i) {
    const std::int64_t d = reference[i] - predicted[i];
    if (d != 0) out.push_back({base + i, double(d)});
  }
}

/// Locate/correct over the int32 accumulator, then re-verify the touched
/// rows/columns with exact int64 sums and repeat if needed (the integer
/// mirror of locate_correct_reverify: zero solver slack, zero re-check
/// tolerance, corrections applied as exact integer subtractions).  Checksum
/// deltas are at most ~2^31 * max(m, n), exactly representable in the
/// solver's doubles for every problem this library accepts.
inline void locate_correct_reverify_i8(
    std::vector<Mismatch>& rows, std::vector<Mismatch>& cols, index_t m,
    index_t n, std::int32_t* cq, index_t ldq,
    GemmContext<std::int8_t, std::int32_t>& ctx, int panel,
    std::vector<CorrectionRecord>* correction_log, std::int64_t& detected,
    std::int64_t& corrected, int& uncorrectable) {
  if (rows.empty() && cols.empty()) return;
  bool failed = false;
  std::vector<index_t> touched_rows, touched_cols;
  constexpr int kMaxRounds = 4;
  for (int round = 0;; ++round) {
    const SolveOutcome outcome = solve_error_assignment(rows, cols, 0.0);
    if (!outcome.solved) {
      if (round == 0) {
        detected += std::int64_t(std::max(rows.size(), cols.size()));
      }
      failed = true;
      break;
    }
    for (const LocatedError& err : outcome.errors) {
      cq[err.row + err.col * ldq] -=
          std::int32_t(std::llround(err.delta));
      touched_rows.push_back(err.row);
      touched_cols.push_back(err.col);
      if (correction_log != nullptr) {
        correction_log->push_back({panel, round, err.row, err.col, err.delta});
      }
    }
    if (round == 0) {
      detected += std::int64_t(outcome.errors.size());
      corrected += std::int64_t(outcome.errors.size());
    }
    std::sort(touched_rows.begin(), touched_rows.end());
    touched_rows.erase(std::unique(touched_rows.begin(), touched_rows.end()),
                       touched_rows.end());
    std::sort(touched_cols.begin(), touched_cols.end());
    touched_cols.erase(std::unique(touched_cols.begin(), touched_cols.end()),
                       touched_cols.end());
    rows.clear();
    cols.clear();
    for (const index_t i : touched_rows) {
      std::int64_t sum = 0;
      for (index_t j = 0; j < n; ++j) sum += cq[i + j * ldq];
      const std::int64_t d = sum - ctx.cc()[i];
      if (d != 0) rows.push_back({i, double(d)});
    }
    for (const index_t j : touched_cols) {
      std::int64_t sum = 0;
      for (index_t i = 0; i < m; ++i) sum += cq[i + j * ldq];
      const std::int64_t d = sum - ctx.cr()[j];
      if (d != 0) cols.push_back({j, double(d)});
    }
    if (rows.empty() && cols.empty()) break;  // converged
    if (round + 1 >= kMaxRounds) {
      failed = true;
      break;
    }
  }
  if (failed) ++uncorrectable;
}

/// Apply the corruptions an injector planned for one macro block of the
/// int32 accumulator, emulating an in-kernel fault (the reference checksums
/// would have seen the corrupted value too).  apply_corruption's int32
/// overload guarantees an integral applied delta, so the int64 reference
/// updates stay exact.
template <bool FT>
inline void apply_planned_injections_i8(
    FaultInjector* injector, const BlockContext& bctx,
    std::vector<InjectionRecord>& planned, std::int32_t* cq, index_t ldq,
    GemmContext<std::int8_t, std::int32_t>& ctx, std::int64_t* crref_slice) {
  planned.clear();
  injector->plan_block(bctx, planned);
  for (InjectionRecord rec : planned) {
    std::int32_t& value = cq[rec.i + rec.j * ldq];
    const double applied = apply_corruption(value, rec);
    if constexpr (FT) {
      ctx.ccref()[rec.i] += std::int64_t(applied);
      crref_slice[rec.j] += std::int64_t(applied);
    }
    rec.delta = applied;
    injector->record(rec);
  }
}

/// The write-back: undo the bias/zero-point shift and dequantize one column
/// range of the finished int32 accumulator into the caller's float C,
///
///   S[i,j] = cq[i,j] - zb*arow[i] - (128+za)*bcol[j] + k*(128+za)*zb,
///   C[i,j] = float( alpha*sa*sb * S[i,j] + beta * C[i,j] ),
///
/// with the scale product and the accumulation carried in fp64 so the only
/// rounding of the whole path is the final fp32 store.  When beta == 0, C
/// is never read (BLAS semantics: an uninitialized C stays NaN-free).
/// `degenerate` covers k <= 0 and alpha == 0 — compute was skipped and the
/// buffers hold garbage, so the identity C = beta*C is applied directly.
inline void dequantize_epilogue_i8(const std::int32_t* cq, index_t m,
                                   index_t ldq, index_t js, index_t jlen,
                                   index_t k, const std::int32_t* arow,
                                   const std::int32_t* bcol,
                                   const QuantParams& qp, float alpha,
                                   float beta, float* c, index_t ldc,
                                   bool degenerate) {
  if (degenerate) {
    for (index_t j = js; j < js + jlen; ++j) {
      for (index_t i = 0; i < m; ++i) {
        c[i + j * ldc] =
            beta == 0.0f ? 0.0f : float(double(beta) * double(c[i + j * ldc]));
      }
    }
    return;
  }
  const double sab =
      double(alpha) * double(qp.scale_a) * double(qp.scale_b);
  const std::int64_t za128 = 128 + std::int64_t(qp.zero_a);
  const std::int64_t zb = std::int64_t(qp.zero_b);
  const std::int64_t kzz = std::int64_t(k) * za128 * zb;
  for (index_t j = js; j < js + jlen; ++j) {
    const std::int64_t colterm = za128 * std::int64_t(bcol[j]) - kzz;
    for (index_t i = 0; i < m; ++i) {
      const std::int64_t s = std::int64_t(cq[i + j * ldq]) -
                             zb * std::int64_t(arow[i]) - colterm;
      const double v = sab * double(s);
      c[i + j * ldc] =
          beta == 0.0f ? float(v)
                       : float(v + double(beta) * double(c[i + j * ldc]));
    }
  }
}

/// Single-macro-tile direct path of the int8 executor (plan.fast_path):
/// serial, packed-once, no parallel region.  Identical arithmetic to the
/// general path at nt = 1 — and on this path "identical" means bit-for-bit
/// by exactness, not by summation-order discipline.
template <bool FT>
FtReport execute_small_i8(const GemmPlan<std::int8_t, std::int32_t>& plan,
                          float alpha, const std::int8_t* a, index_t lda,
                          const std::int8_t* b, index_t ldb, float beta,
                          float* c, index_t ldc, const QuantParams& qp,
                          FaultInjector* injector,
                          std::vector<CorrectionRecord>* correction_log,
                          GemmContext<std::int8_t, std::int32_t>& ctx,
                          const ResidentAPayload<std::int8_t, std::int32_t>*
                              ra = nullptr,
                          MemoryFaultInjector* mem_injector = nullptr) {
  FtReport report;
  const WallTimer timer;
  const PlanKey& key = plan.key;
  const index_t m = key.m, n = key.n, k = key.k;
  const KernelSet<std::int8_t, std::int32_t>& ks = plan.kernels;
  const bool degenerate = plan.k_zero || alpha == 0.0f;

  if (injector != nullptr) injector->begin_call(m, n, k, 1);
  ctx.ensure(plan);

  const OperandView<std::int8_t> av{a, lda, key.ta == Trans::kTrans};
  const OperandView<std::int8_t> bv{b, ldb, key.tb == Trans::kTrans};

  std::int64_t detected = 0, corrected = 0;
  int uncorrectable = 0;
  int panels_run = 0;

  if (!degenerate) {
    std::fill(ctx.cq(), ctx.cq() + std::size_t(m) * std::size_t(n), 0);
    std::fill(ctx.arow(), ctx.arow() + m, 0);
    std::fill(ctx.bcol(), ctx.bcol() + n, 0);

    // ---- The single rank-K panel: pack B~ once, pack A~ once, one macro
    // block, verify.  A fast-path plan always has kc >= k, so a resident
    // payload is a single panel starting at k-offset 0 and is consumed
    // zero-copy (the panels already hold the biased u8 bytes).
    const std::uint8_t* apanel = ctx.atilde(0);
    if (ra != nullptr) {
      apanel = reinterpret_cast<const std::uint8_t*>(ra->panel_at(0));
      // The payload's integrity row sums are per-packed-row sums of the
      // biased bytes — exactly the epilogue's arow (padding rows beyond m
      // are all-zero and simply not copied).
      std::copy(ra->rowchk.data(), ra->rowchk.data() + m, ctx.arow());
    }
    if constexpr (FT) {
      std::fill(ctx.cc(), ctx.cc() + m, std::int64_t(0));
      std::fill(ctx.cr(), ctx.cr() + n, std::int64_t(0));
      std::fill(ctx.ccref(), ctx.ccref() + m, std::int64_t(0));
      std::fill(ctx.crref_part(0), ctx.crref_part(0) + n, std::int64_t(0));
      if (ra != nullptr) {
        std::copy(ra->ar.data(), ra->ar.data() + k, ctx.ar());
      } else {
        std::fill(ctx.ar(), ctx.ar() + k, 0);
        ks.pack.encode_ar(av, 0, m, 0, k, ctx.ar());
      }
      ks.pack.pack_b_ft(bv, 0, 0, k, n, plan.blocking.nr, ctx.btilde(),
                        ctx.bcol(), ctx.ar(), ctx.cr());
      ks.pack.reduce_bc(ctx.btilde(), k, n, plan.blocking.nr, index_t(0), k,
                        ctx.bc());
      if (ra != nullptr) {
        ks.pack.encode_cc(apanel, m, k, plan.blocking.mr, ctx.bc(), ctx.cc());
      } else {
        ks.pack.pack_a_ft(av, 0, 0, m, k, plan.blocking.mr, ctx.atilde(0),
                          ctx.arow(), ctx.bc(), ctx.cc());
      }
    } else {
      ks.pack.pack_b(bv, 0, 0, k, n, plan.blocking.nr, ctx.btilde(),
                     ctx.bcol());
      if (ra == nullptr) {
        ks.pack.pack_a(av, 0, 0, m, k, plan.blocking.mr, ctx.atilde(0),
                       ctx.arow());
      }
    }

    // Transient-surface strikes: corrupt the packed bytes after every
    // checksum input has been derived from them (bcol/cr/bc at pack,
    // arow/cc at pack) but before the macro kernel consumes them.  Live
    // bytes only — the quad-padding bytes multiply against zero rows and
    // would be undetectable by construction.  A~ is struck only when it is
    // this call's scratch, never a zero-copy resident slab.
    strike_transient_panel(mem_injector, MemorySurface::kPanelB, ctx.btilde(),
                           std::size_t(k) * std::size_t(n),
                           [&](std::size_t l) {
                             const index_t j = index_t(l) / k;
                             const index_t kk = index_t(l) % k;
                             return std::size_t(
                                 (j / plan.blocking.nr) *
                                     i8_tile_bytes(k, plan.blocking.nr) +
                                 (kk / kI8KQuad) * (plan.blocking.nr *
                                                    kI8KQuad) +
                                 (j % plan.blocking.nr) * kI8KQuad +
                                 kk % kI8KQuad);
                           });
    if (apanel == ctx.atilde(0)) {
      strike_transient_panel(mem_injector, MemorySurface::kPanelA,
                             ctx.atilde(0), std::size_t(m) * std::size_t(k),
                             [&](std::size_t l) {
                               const index_t i = index_t(l) / k;
                               const index_t kk = index_t(l) % k;
                               return std::size_t(
                                   (i / plan.blocking.mr) *
                                       i8_tile_bytes(k, plan.blocking.mr) +
                                   (kk / kI8KQuad) * (plan.blocking.mr *
                                                      kI8KQuad) +
                                   (i % plan.blocking.mr) * kI8KQuad +
                                   kk % kI8KQuad);
                             });
    }

    run_macro_block_i8<FT>(ks, m, n, k, apanel, ctx.btilde(), ctx.cq(), m,
                           FT ? ctx.crref_part(0) : nullptr,
                           FT ? ctx.ccref() : nullptr);

    if (injector != nullptr) {
      std::vector<InjectionRecord> planned;
      const BlockContext bctx{0, 0, 0, m, n, 0};
      apply_planned_injections_i8<FT>(injector, bctx, planned, ctx.cq(), m,
                                      ctx, FT ? ctx.crref_part(0) : nullptr);
    }

    if constexpr (FT) {
      std::copy(ctx.crref_part(0), ctx.crref_part(0) + n, ctx.crref());
      std::vector<Mismatch> rows, cols;
      find_mismatches_i64(ctx.cc(), ctx.ccref(), m, index_t(0), rows);
      find_mismatches_i64(ctx.cr(), ctx.crref(), n, index_t(0), cols);
      locate_correct_reverify_i8(rows, cols, m, n, ctx.cq(), m, ctx, 0,
                                 correction_log, detected, corrected,
                                 uncorrectable);
      ++panels_run;
    }
  }

  dequantize_epilogue_i8(ctx.cq(), m, m, 0, n, k, ctx.arow(), ctx.bcol(), qp,
                         alpha, beta, c, ldc, degenerate);

  report.panels = FT ? panels_run : int(degenerate ? 0 : 1);
  report.errors_detected = detected;
  report.errors_corrected = corrected;
  report.uncorrectable_panels = uncorrectable;
  report.elapsed_seconds = timer.seconds();
  return report;
}

/// Execute a planned int8 (FT-)GEMM.  Shape, transposes, kernels, blocking
/// and topology come from `plan`; `qp` carries the call's quantization
/// parameters (an operand value, like alpha/beta — no plan fingerprint
/// covers it); `ra` (may be null) is a resident pre-packed pre-encoded A
/// payload for this exact (operand, plan).
template <bool FT>
FtReport execute_i8(const GemmPlan<std::int8_t, std::int32_t>& plan,
                    float alpha, const std::int8_t* a, index_t lda,
                    const std::int8_t* b, index_t ldb, float beta, float* c,
                    index_t ldc, const QuantParams& qp,
                    FaultInjector* injector,
                    std::vector<CorrectionRecord>* correction_log,
                    GemmContext<std::int8_t, std::int32_t>& ctx,
                    const ResidentAPayload<std::int8_t, std::int32_t>* ra =
                        nullptr,
                    MemoryFaultInjector* mem_injector = nullptr) {
  FtReport report;
  const PlanKey& key = plan.key;
  const index_t m = key.m, n = key.n, k = key.k;
  if (m <= 0 || n <= 0) return report;

  if (plan.fast_path) {
    return execute_small_i8<FT>(plan, alpha, a, lda, b, ldb, beta, c, ldc,
                                qp, injector, correction_log, ctx, ra,
                                mem_injector);
  }

  const WallTimer timer;
  const KernelSet<std::int8_t, std::int32_t>& ks = plan.kernels;
  const BlockingPlan& bp = plan.blocking;
  const int nt = plan.threads;
  const bool degenerate = plan.k_zero || alpha == 0.0f;

  if (injector != nullptr)
    injector->begin_call(m, n, k, int(std::max<index_t>(plan.num_panels, 1)));

  ctx.ensure(plan);

  const OperandView<std::int8_t> av{a, lda, key.ta == Trans::kTrans};
  const OperandView<std::int8_t> bv{b, ldb, key.tb == Trans::kTrans};

  // Shared across the parallel region.
  std::vector<std::vector<Mismatch>> row_mm(static_cast<std::size_t>(nt));
  std::vector<std::vector<Mismatch>> col_mm(static_cast<std::size_t>(nt));
  std::int64_t detected = 0;
  std::int64_t corrected = 0;
  int uncorrectable = 0;
  int panels_run = 0;

  const auto team_body = [&](runtime::TeamMember& tm) {
    const int tid = tm.tid();
    std::vector<InjectionRecord> planned;

    // M-partition of cq (and A) for this thread, aligned to MR so only the
    // global edge produces partial register tiles.
    index_t ms = 0, mlen = 0;
    partition_units(m, bp.mr, nt, tid, ms, mlen);
    // Static N-partition used for zeroing, reductions, checksum scans and
    // the epilogue (columns of cq are contiguous: ldq = m).
    index_t js_red = 0, jlen_red = 0;
    partition_units(n, 1, nt, tid, js_red, jlen_red);
    // Static K-partition for the Ar encode (disjoint writes — exact, so no
    // per-thread partials or reduction are needed, unlike the float path).
    index_t ks_red = 0, klen_red = 0;
    partition_units(k, 1, nt, tid, ks_red, klen_red);

    // ---- Encode phase: zero the accumulator and side vectors; Ar. ----
    if (!degenerate) {
      if (jlen_red > 0) {
        std::fill(ctx.cq() + std::size_t(js_red) * std::size_t(m),
                  ctx.cq() + std::size_t(js_red + jlen_red) * std::size_t(m),
                  0);
        std::fill(ctx.bcol() + js_red, ctx.bcol() + js_red + jlen_red, 0);
      }
      if (mlen > 0) {
        std::fill(ctx.arow() + ms, ctx.arow() + ms + mlen, 0);
        if (ra != nullptr) {
          // The resident integrity row sums ARE the epilogue's arow (see
          // execute_small_i8); pack_a is skipped entirely on hits.
          std::copy(ra->rowchk.data() + ms, ra->rowchk.data() + ms + mlen,
                    ctx.arow() + ms);
        }
      }
      if constexpr (FT) {
        if (mlen > 0)
          std::fill(ctx.cc() + ms, ctx.cc() + ms + mlen, std::int64_t(0));
        if (jlen_red > 0)
          std::fill(ctx.cr() + js_red, ctx.cr() + js_red + jlen_red,
                    std::int64_t(0));
        if (klen_red > 0) {
          if (ra != nullptr) {
            std::copy(ra->ar.data() + ks_red,
                      ra->ar.data() + ks_red + klen_red, ctx.ar() + ks_red);
          } else {
            std::fill(ctx.ar() + ks_red, ctx.ar() + ks_red + klen_red, 0);
            ks.pack.encode_ar(av, 0, m, ks_red, klen_red, ctx.ar() + ks_red);
          }
        }
      }
      tm.barrier();
    }

    // ---- Panel loop: one rank-KC update + verification per iteration. ----
    if (!degenerate) {
      int panel = 0;
      for (index_t p = 0; p < k; p += bp.kc, ++panel) {
        const index_t pinc = std::min(bp.kc, k - p);

        if constexpr (FT) {
          // Reference checksums cover exactly this panel's cq values.
          if (mlen > 0)
            std::fill(ctx.ccref() + ms, ctx.ccref() + ms + mlen,
                      std::int64_t(0));
          std::fill(ctx.crref_part(tid), ctx.crref_part(tid) + n,
                    std::int64_t(0));
        }

        for (index_t jc = 0; jc < n; jc += bp.nc) {
          const index_t jinc = std::min(bp.nc, n - jc);

          // Cooperative packing of B~ along N (unit NR so panel boundaries
          // land on micro-panel boundaries).
          index_t js = 0, jlen = 0;
          partition_units(jinc, bp.nr, nt, tid, js, jlen);
          if (jlen > 0) {
            std::int8_t* bt =
                ctx.btilde() + (js / bp.nr) * i8_tile_bytes(pinc, bp.nr);
            if constexpr (FT) {
              ks.pack.pack_b_ft(bv, p, jc + js, pinc, jlen, bp.nr, bt,
                                ctx.bcol(), ctx.ar() + p, ctx.cr());
            } else {
              ks.pack.pack_b(bv, p, jc + js, pinc, jlen, bp.nr, bt,
                             ctx.bcol());
            }
          }
          tm.barrier();
          if constexpr (FT) {
            // Bc derivation from the freshly packed, cache-resident B~,
            // K-partitioned (assigning disjoint slices — exact).
            index_t kks = 0, kklen = 0;
            partition_units(pinc, 1, nt, tid, kks, kklen);
            if (kklen > 0) {
              ks.pack.reduce_bc(ctx.btilde(), pinc, jinc, bp.nr, kks, kklen,
                                ctx.bc());
            }
            tm.barrier();
          }

          // Transient B~ strike: corrupt the shared packed bytes after
          // bcol/cr (pack) and bc (reduce) were derived from them, before
          // any kernel consumes them.  Single member — mem_injector is
          // uniform across the team, so everyone takes the implicit
          // trailing barrier.  Live bytes only (quad padding multiplies
          // zero rows and is undetectable by construction).
          if (mem_injector != nullptr) {
            tm.single([&] {
              strike_transient_panel(
                  mem_injector, MemorySurface::kPanelB, ctx.btilde(),
                  std::size_t(pinc) * std::size_t(jinc),
                  [&](std::size_t l) {
                    const index_t j = index_t(l) / pinc;
                    const index_t kk = index_t(l) % pinc;
                    return std::size_t(
                        (j / bp.nr) * i8_tile_bytes(pinc, bp.nr) +
                        (kk / kI8KQuad) * (bp.nr * kI8KQuad) +
                        (j % bp.nr) * kI8KQuad + kk % kI8KQuad);
                  });
            });  // trailing team barrier
          }

          // Macro loop over this thread's rows.
          for (index_t ic = 0; ic < mlen; ic += bp.mc) {
            const index_t ilen = std::min(bp.mc, mlen - ic);
            // Resident hit: slice this thread's (ic) slab out of the
            // payload's whole-M panel — ms and ic are both MR-aligned, so
            // the slab starts on a tile boundary at the exact bytes a cold
            // pack_a would have written into atilde (consumed zero-copy;
            // the panel already holds the biased u8 bytes).
            const std::uint8_t* apanel = ctx.atilde(tid);
            if (ra != nullptr) {
              apanel = reinterpret_cast<const std::uint8_t*>(
                           ra->panel_at(p)) +
                       ((ms + ic) / bp.mr) * i8_tile_bytes(pinc, bp.mr);
            }
            if constexpr (FT) {
              if (ra != nullptr) {
                // Replay the fused Cc update the skipped pack_a_ft would
                // have accumulated for this (jc, ic) block.
                ks.pack.encode_cc(apanel, ilen, pinc, bp.mr, ctx.bc(),
                                  ctx.cc() + ms + ic);
              } else {
                // arow must see each (row, panel) region exactly once:
                // only the jc == 0 pass may accumulate it (A~ is repacked
                // with identical bytes for every jc block).
                ks.pack.pack_a_ft(av, ms + ic, p, ilen, pinc, bp.mr,
                                  ctx.atilde(tid),
                                  jc == 0 ? ctx.arow() : nullptr, ctx.bc(),
                                  ctx.cc());
              }
            } else {
              if (ra == nullptr) {
                ks.pack.pack_a(av, ms + ic, p, ilen, pinc, bp.mr,
                               ctx.atilde(tid),
                               jc == 0 ? ctx.arow() : nullptr);
              }
            }

            // Transient A~ strike: this thread's private scratch only,
            // after arow/cc were encoded from the clean bytes — never a
            // zero-copy resident slab (that is kResidentPanel's surface,
            // and poisoning it would outlive the call).  Pinned to member
            // 0 so an armed one-shot injector's strike placement is not a
            // which-thread-packed-first scheduling race.
            if (mem_injector != nullptr && tid == 0 &&
                apanel == ctx.atilde(tid)) {
              strike_transient_panel(
                  mem_injector, MemorySurface::kPanelA, ctx.atilde(tid),
                  std::size_t(ilen) * std::size_t(pinc),
                  [&](std::size_t l) {
                    const index_t i = index_t(l) / pinc;
                    const index_t kk = index_t(l) % pinc;
                    return std::size_t(
                        (i / bp.mr) * i8_tile_bytes(pinc, bp.mr) +
                        (kk / kI8KQuad) * (bp.mr * kI8KQuad) +
                        (i % bp.mr) * kI8KQuad + kk % kI8KQuad);
                  });
            }

            run_macro_block_i8<FT>(ks, ilen, jinc, pinc, apanel,
                                   ctx.btilde(),
                                   ctx.cq() + (ms + ic) + jc * m, m,
                                   FT ? ctx.crref_part(tid) + jc : nullptr,
                                   FT ? ctx.ccref() + ms + ic : nullptr);

            if (injector != nullptr) {
              const BlockContext bctx{panel, ms + ic, jc, ilen, jinc, tid};
              apply_planned_injections_i8<FT>(
                  injector, bctx, planned, ctx.cq(), m, ctx,
                  FT ? ctx.crref_part(tid) : nullptr);
            }
          }
          tm.barrier();  // B~ chunk complete before it is repacked
        }

        if constexpr (FT) {
          // Reduce per-thread Cr references, then scan for mismatches in
          // parallel (rows over the M-partition, columns over N) — exact
          // int64 equality, no tolerance refresh step exists on this path.
          for (index_t j = js_red; j < js_red + jlen_red; ++j) {
            std::int64_t sum = 0;
            for (int t = 0; t < nt; ++t) sum += ctx.crref_part(t)[j];
            ctx.crref()[j] = sum;
          }
          row_mm[std::size_t(tid)].clear();
          col_mm[std::size_t(tid)].clear();
          if (mlen > 0) {
            find_mismatches_i64(ctx.cc() + ms, ctx.ccref() + ms, mlen, ms,
                                row_mm[std::size_t(tid)]);
          }
          tm.barrier();
          if (jlen_red > 0) {
            find_mismatches_i64(ctx.cr() + js_red, ctx.crref() + js_red,
                                jlen_red, js_red, col_mm[std::size_t(tid)]);
          }
          tm.barrier();
          tm.single([&] {
            std::vector<Mismatch> rows, cols;
            for (int t = 0; t < nt; ++t) {
              rows.insert(rows.end(), row_mm[std::size_t(t)].begin(),
                          row_mm[std::size_t(t)].end());
              cols.insert(cols.end(), col_mm[std::size_t(t)].begin(),
                          col_mm[std::size_t(t)].end());
            }
            locate_correct_reverify_i8(rows, cols, m, n, ctx.cq(), m, ctx,
                                       panel, correction_log, detected,
                                       corrected, uncorrectable);
            ++panels_run;
          });  // trailing team barrier
        }
      }
    }

    // ---- Dequantize epilogue: one pass over this thread's column range of
    // the finished accumulator into the caller's C.  Every thread arrives
    // here synchronized (the final panel's trailing barrier / the encode
    // barrier on the degenerate path), so all of cq/arow/bcol is final.
    dequantize_epilogue_i8(ctx.cq(), m, m, js_red, jlen_red, k, ctx.arow(),
                           ctx.bcol(), qp, alpha, beta, c, ldc, degenerate);
  };
  runtime::run_team(plan.runtime, nt, team_body);

  report.panels = FT ? panels_run : int(degenerate ? 0 : plan.num_panels);
  report.errors_detected = detected;
  report.errors_corrected = corrected;
  report.uncorrectable_panels = uncorrectable;
  report.elapsed_seconds = timer.seconds();
  return report;
}

}  // namespace ftgemm::detail
