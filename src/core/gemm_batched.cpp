#include "core/gemm_batched.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "core/driver.hpp"
#include "core/plan.hpp"
#include "runtime/team.hpp"
#include "runtime/topology.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace ftgemm {

namespace {

/// Per-problem flop count at or below which kAuto picks inter-batch
/// parallelism: threading a problem this small is mostly barrier overhead
/// (the FT driver synchronizes several times per rank-KC panel), while one
/// worker per problem keeps every core on independent arithmetic.  The
/// default hands problems up to ~400^3 to the inter-batch path; override
/// with FTGEMM_BATCH_INTER_FLOPS for tuning or A/B experiments.
constexpr double kInterBatchFlopCutoff = 134.0e6;

bool pick_inter_batch(const BatchOptions& opts, index_t m, index_t n,
                      index_t k, index_t batch) {
  switch (opts.schedule) {
    case BatchSchedule::kInter: return true;
    case BatchSchedule::kIntra: return false;
    case BatchSchedule::kAuto: break;
  }
  if (batch < 2) return false;
  const double flops = 2.0 * double(m) * double(n) * double(std::max<index_t>(k, 1));
  return flops <= env_double("FTGEMM_BATCH_INTER_FLOPS", kInterBatchFlopCutoff);
}

template <typename S, bool FT, typename C = S>
BatchReport run_batched(Layout layout, Trans ta, Trans tb, index_t m,
                        index_t n, index_t k, C alpha, const S* const* a,
                        index_t lda, const S* const* b, index_t ldb, C beta,
                        C* const* c, index_t ldc, index_t batch,
                        const BatchOptions& opts) {
  BatchReport report;
  const WallTimer timer;
  if (batch < 0) {
    report.invalid_args = true;
    return report;
  }
  if (batch == 0) return report;

  detail::normalize_layout(layout, ta, tb, m, n, a, lda, b, ldb);
  if (!valid_gemm_args(ta, tb, m, n, k, lda, ldb, ldc)) {
    report.invalid_args = true;
    return report;
  }
  report.problems = batch;

  const int nt = runtime::topology(opts.base.threads);

  // A shared injector must see its begin_call / plan_block protocol one
  // problem at a time, and a shared correction log may not be appended to
  // by concurrent GEMMs (Options contract); inject_problem < 0 shares both
  // across every member.  Under kAuto that vetoes the inter-batch choice
  // (members big enough to thread then run the full nt-thread driver;
  // members under the fast-path work bound run serial either way — at that
  // size threading is all barrier); a *forced* kInter is honored, with the
  // injected members' execution serialized through sink_gate below so the
  // protocol stays well-defined.
  const bool shared_sink =
      (opts.base.injector != nullptr || opts.base.correction_log != nullptr) &&
      opts.inject_problem < 0;
  const bool inter = pick_inter_batch(opts, m, n, k, batch) &&
                     (opts.schedule == BatchSchedule::kInter || !shared_sink);
  report.inter_batch = inter;
  const int workers = inter ? int(std::min<index_t>(nt, batch)) : 1;

  // One leased workspace per concurrent worker, drawn from the process-wide
  // pool — concurrent batched calls issued from different application
  // threads lease disjoint contexts, and the leases return on scope exit.
  ContextCache<S, C>& cache = process_context_cache<S, C>();
  std::vector<typename ContextCache<S, C>::Lease> leases;
  leases.reserve(std::size_t(workers));
  for (int i = 0; i < workers; ++i) leases.push_back(cache.lease());

  // Plan the batch's single shape once via the shared plan cache; every
  // member executes the same frozen plan (inter-batch workers run the
  // serial driver, so the plan is built for one thread per problem).
  Options plan_opts = opts.base;
  plan_opts.threads = inter ? 1 : nt;
  const std::shared_ptr<const GemmPlan<S, C>> plan =
      cache.plan(ta, tb, m, n, k, plan_opts, FT);

  std::vector<FtReport> reports(static_cast<std::size_t>(batch));

  // Serializes injected members when a protocol-stateful injector (or a
  // shared correction log) is attached to more than one member on the
  // inter-batch path: each member's begin_call -> plan_block -> record
  // sequence runs under the gate, never interleaved with another member's.
  std::mutex sink_gate;
  const bool gate_sinks = inter && shared_sink;

  const auto run_one = [&](index_t p, GemmContext<S, C>& ctx) {
    FaultInjector* injector = opts.base.injector;
    std::vector<CorrectionRecord>* log = opts.base.correction_log;
    if (opts.inject_problem >= 0 && p != opts.inject_problem) {
      injector = nullptr;
      log = nullptr;
    }
    std::unique_lock<std::mutex> gate;
    if (gate_sinks && (injector != nullptr || log != nullptr))
      gate = std::unique_lock<std::mutex>(sink_gate);
    // Resident A (acquire is thread-safe; concurrent inter-batch workers
    // over a stride-0 broadcast A race benignly — first fill wins, the rest
    // hit).  The memory injector / verification run per-member, like the
    // compute-domain injector.
    ResidentAcquisition<S, C> acq;
    if (opts.base.resident_a && m > 0 && n > 0 && k > 0 && alpha != C(0) &&
        a[p] != nullptr) {
      acq = cache.operands().acquire(a[p], lda, ta == Trans::kTrans, alpha,
                                     *plan, opts.base.memory_injector,
                                     opts.base.resident_verify);
    }
    FtReport rep = detail::execute<S, FT, C>(*plan, alpha, a[p], lda, b[p],
                                             ldb, beta, c[p], ldc, injector,
                                             log, ctx, acq.payload.get(),
                                             opts.base.memory_injector);
    rep.resident_hit = acq.hit;
    rep.resident_heals = acq.heals;
    rep.resident_ecc_corrected = acq.ecc_corrected;
    reports[std::size_t(p)] = rep;
  };

  // Inter-batch dispatch: one team of `workers` members on the plan's
  // runtime — with the pool backend, batch members run directly on parked
  // pool workers instead of a nested OpenMP region.  Dynamic scheduling via
  // a shared claim counter (the moral equivalent of omp for
  // schedule(dynamic)); problem-to-worker assignment does not affect
  // results, only load balance.  workers == 1 (the intra path, or a
  // one-problem batch) runs inline on the calling thread and each problem's
  // plan opens its own nt-member team.
  std::atomic<index_t> next{0};
  const auto member_body = [&](runtime::TeamMember& tm) {
    GemmContext<S, C>& ctx = *leases[std::size_t(tm.tid())];
    for (index_t p = next.fetch_add(1, std::memory_order_relaxed); p < batch;
         p = next.fetch_add(1, std::memory_order_relaxed)) {
      run_one(p, ctx);
    }
  };
  runtime::run_team(plan->runtime, workers, member_body);

  for (const FtReport& r : reports) {
    if (r.resident_hit) ++report.resident_hits;
    report.resident_heals += r.resident_heals;
    report.resident_ecc_corrected += r.resident_ecc_corrected;
  }
  if constexpr (FT) {
    for (const FtReport& r : reports) {
      report.errors_detected += r.errors_detected;
      report.errors_corrected += r.errors_corrected;
      report.uncorrectable_panels += r.uncorrectable_panels;
      if (r.errors_detected > 0) ++report.faulty_problems;
      if (!r.clean()) ++report.dirty_problems;
    }
    report.per_problem = std::move(reports);
  }
  report.elapsed_seconds = timer.seconds();
  return report;
}

template <typename S, bool FT, typename C = S>
BatchReport run_strided_batched(Layout layout, Trans ta, Trans tb, index_t m,
                                index_t n, index_t k, C alpha, const S* a,
                                index_t lda, index_t stride_a, const S* b,
                                index_t ldb, index_t stride_b, C beta, C* c,
                                index_t ldc, index_t stride_c, index_t batch,
                                const BatchOptions& opts) {
  if (batch < 0) {
    BatchReport report;
    report.invalid_args = true;
    return report;
  }
  if (batch == 0) return {};
  std::vector<const S*> ap(static_cast<std::size_t>(batch));
  std::vector<const S*> bp(static_cast<std::size_t>(batch));
  std::vector<C*> cp(static_cast<std::size_t>(batch));
  for (index_t p = 0; p < batch; ++p) {
    ap[std::size_t(p)] = a + p * stride_a;
    bp[std::size_t(p)] = b + p * stride_b;
    cp[std::size_t(p)] = c + p * stride_c;
  }
  return run_batched<S, FT, C>(layout, ta, tb, m, n, k, alpha, ap.data(), lda,
                               bp.data(), ldb, beta, cp.data(), ldc, batch,
                               opts);
}

}  // namespace

template <typename S, typename C>
BatchReport gemm_batched(Layout layout, Trans ta, Trans tb, index_t m,
                         index_t n, index_t k, identity_t<C> alpha,
                         const S* const* a, index_t lda, const S* const* b,
                         index_t ldb, identity_t<C> beta,
                         identity_t<C>* const* c, index_t ldc,
                         index_t batch, const BatchOptions& opts) {
  return run_batched<S, false, C>(layout, ta, tb, m, n, k, alpha, a, lda, b,
                                  ldb, beta, c, ldc, batch, opts);
}

template <typename S, typename C>
BatchReport ft_gemm_batched(Layout layout, Trans ta, Trans tb, index_t m,
                            index_t n, index_t k,
                            identity_t<C> alpha, const S* const* a,
                            index_t lda, const S* const* b, index_t ldb,
                            identity_t<C> beta,
                            identity_t<C>* const* c, index_t ldc,
                            index_t batch, const BatchOptions& opts) {
  return run_batched<S, true, C>(layout, ta, tb, m, n, k, alpha, a, lda, b,
                                 ldb, beta, c, ldc, batch, opts);
}

template <typename S, typename C>
BatchReport gemm_strided_batched(Layout layout, Trans ta, Trans tb, index_t m,
                                 index_t n, index_t k,
                                 identity_t<C> alpha, const S* a,
                                 index_t lda, index_t stride_a, const S* b,
                                 index_t ldb, index_t stride_b,
                                 identity_t<C> beta,
                                 identity_t<C>* c, index_t ldc,
                                 index_t stride_c, index_t batch,
                                 const BatchOptions& opts) {
  return run_strided_batched<S, false, C>(layout, ta, tb, m, n, k, alpha, a,
                                          lda, stride_a, b, ldb, stride_b,
                                          beta, c, ldc, stride_c, batch, opts);
}

template <typename S, typename C>
BatchReport ft_gemm_strided_batched(Layout layout, Trans ta, Trans tb,
                                    index_t m, index_t n, index_t k,
                                    identity_t<C> alpha, const S* a,
                                    index_t lda, index_t stride_a, const S* b,
                                    index_t ldb, index_t stride_b,
                                    identity_t<C> beta,
                                    identity_t<C>* c, index_t ldc,
                                    index_t stride_c, index_t batch,
                                    const BatchOptions& opts) {
  return run_strided_batched<S, true, C>(layout, ta, tb, m, n, k, alpha, a,
                                         lda, stride_a, b, ldb, stride_b,
                                         beta, c, ldc, stride_c, batch, opts);
}

template BatchReport gemm_batched<float>(Layout, Trans, Trans, index_t,
                                         index_t, index_t, float,
                                         const float* const*, index_t,
                                         const float* const*, index_t, float,
                                         float* const*, index_t, index_t,
                                         const BatchOptions&);
template BatchReport gemm_batched<double>(Layout, Trans, Trans, index_t,
                                          index_t, index_t, double,
                                          const double* const*, index_t,
                                          const double* const*, index_t,
                                          double, double* const*, index_t,
                                          index_t, const BatchOptions&);
template BatchReport ft_gemm_batched<float>(Layout, Trans, Trans, index_t,
                                            index_t, index_t, float,
                                            const float* const*, index_t,
                                            const float* const*, index_t,
                                            float, float* const*, index_t,
                                            index_t, const BatchOptions&);
template BatchReport ft_gemm_batched<double>(Layout, Trans, Trans, index_t,
                                             index_t, index_t, double,
                                             const double* const*, index_t,
                                             const double* const*, index_t,
                                             double, double* const*, index_t,
                                             index_t, const BatchOptions&);
template BatchReport gemm_strided_batched<float>(Layout, Trans, Trans,
                                                 index_t, index_t, index_t,
                                                 float, const float*, index_t,
                                                 index_t, const float*,
                                                 index_t, index_t, float,
                                                 float*, index_t, index_t,
                                                 index_t, const BatchOptions&);
template BatchReport gemm_strided_batched<double>(
    Layout, Trans, Trans, index_t, index_t, index_t, double, const double*,
    index_t, index_t, const double*, index_t, index_t, double, double*,
    index_t, index_t, index_t, const BatchOptions&);
template BatchReport ft_gemm_strided_batched<float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float, const float*,
    index_t, index_t, const float*, index_t, index_t, float, float*, index_t,
    index_t, index_t, const BatchOptions&);
template BatchReport ft_gemm_strided_batched<double>(
    Layout, Trans, Trans, index_t, index_t, index_t, double, const double*,
    index_t, index_t, const double*, index_t, index_t, double, double*,
    index_t, index_t, index_t, const BatchOptions&);

template BatchReport gemm_batched<bf16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float,
    const bf16_t* const*, index_t, const bf16_t* const*, index_t, float,
    float* const*, index_t, index_t, const BatchOptions&);
template BatchReport ft_gemm_batched<bf16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float,
    const bf16_t* const*, index_t, const bf16_t* const*, index_t, float,
    float* const*, index_t, index_t, const BatchOptions&);
template BatchReport gemm_strided_batched<bf16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float, const bf16_t*,
    index_t, index_t, const bf16_t*, index_t, index_t, float, float*, index_t,
    index_t, index_t, const BatchOptions&);
template BatchReport ft_gemm_strided_batched<bf16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float, const bf16_t*,
    index_t, index_t, const bf16_t*, index_t, index_t, float, float*, index_t,
    index_t, index_t, const BatchOptions&);
template BatchReport gemm_batched<fp16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float,
    const fp16_t* const*, index_t, const fp16_t* const*, index_t, float,
    float* const*, index_t, index_t, const BatchOptions&);
template BatchReport ft_gemm_batched<fp16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float,
    const fp16_t* const*, index_t, const fp16_t* const*, index_t, float,
    float* const*, index_t, index_t, const BatchOptions&);
template BatchReport gemm_strided_batched<fp16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float, const fp16_t*,
    index_t, index_t, const fp16_t*, index_t, index_t, float, float*, index_t,
    index_t, index_t, const BatchOptions&);
template BatchReport ft_gemm_strided_batched<fp16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float, const fp16_t*,
    index_t, index_t, const fp16_t*, index_t, index_t, float, float*, index_t,
    index_t, index_t, const BatchOptions&);

}  // namespace ftgemm
