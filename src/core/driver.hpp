// The (FT-)GEMM executor: a faithful implementation of Fig. 1 of the paper,
// split into plan and execute phases (see core/plan.hpp).
//
// One template, two instantiations per element type:
//   FT = false : the "Ori" high-performance GEMM (packing + cache blocking
//                + SIMD micro-kernels),
//   FT = true  : FT-GEMM with the fused ABFT scheme of §2.2/§2.3.
//
// execute() is a *pure executor*: every decision — ISA, kernel set, blocking,
// thread topology, tolerance factor, fast-path selection — was made by the
// planner and arrives frozen in the GemmPlan.  The only data-dependent
// branch taken here is the alpha == 0 degeneracy, which depends on an
// operand value no plan fingerprint covers.
//
// The O(n^2) packing and checksum-encode layer is reached exclusively
// through the plan's kernel set (plan.kernels.pack — the ISA-dispatched
// PackSet): SIMD packing is bit-identical to the scalar templates, the
// fused checksum sums are lane-reassociated within the ToleranceModel
// bound (docs/DESIGN.md, "SIMD packing & checksum engine").
//
// Thread topology (§2.3): the thread team (runtime/team.hpp — persistent
// worker pool or OpenMP region, frozen into the plan) partitions C along the
// M-dimension; B~ is one buffer shared by all members and packed
// cooperatively along the N-dimension (with a cross-thread reduction for the
// panel checksum Bc); each member packs its own private A~.  The executor is
// runtime-agnostic: it sees only TeamMember's tid/nt/barrier/single, and a
// member's rank fully determines its partition and reduction position, so
// results are bit-identical across backends at equal nt.  Running with
// threads = 1 *is* the serial algorithm — no separate code path exists, so
// serial and parallel results are produced by the same verified code.
//
// The planner's small-GEMM fast path (plan.fast_path) takes execute_small
// instead: the whole problem fits a single macro-tile, so B~ and A~ are each
// packed exactly once by one thread, with no parallel region, no partition
// bookkeeping, no barriers, and no per-call reduction scratch — the dominant
// costs of the general path at serving-style sizes.  The arithmetic, packing
// layout and summation order are identical to the general path at nt = 1,
// so results (Ori and FT) are bit-identical.
//
// Verification happens once per rank-KC panel ("p-loop: verify" in Fig. 1):
// every element of C is updated exactly once per panel, so the reference
// checksums accumulated inside the micro-kernels equal full row/column sums
// of the current C, directly comparable with the predicted checksums.
#pragma once

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/tolerance.hpp"
#include "abft/verifier.hpp"
#include "arch/isa.hpp"
#include "blocking/plan.hpp"
#include "core/context.hpp"
#include "core/operand_cache.hpp"
#include "core/options.hpp"
#include "core/plan.hpp"
#include "kernels/macro_kernel.hpp"
#include "kernels/microkernel.hpp"
#include "kernels/packing.hpp"
#include "runtime/team.hpp"
#include "util/timer.hpp"

namespace ftgemm::detail {

/// Resolve the row-major case onto the column-major core (a row-major
/// matrix viewed column-major with the same ld is its transpose, so
///   C_rm = op(A)·op(B)   ⇔   C_cmᵀ = op(B)·op(A) with operands swapped).
/// Shared by the single-problem and batched dispatchers; `APtr` abstracts
/// over `const T*` and the batched `const T* const*` operand arrays.
template <typename APtr>
void normalize_layout(Layout layout, Trans& ta, Trans& tb, index_t& m,
                      index_t& n, APtr& a, index_t& lda, APtr& b,
                      index_t& ldb) {
  if (layout == Layout::kRowMajor) {
    std::swap(ta, tb);
    std::swap(m, n);
    std::swap(a, b);
    std::swap(lda, ldb);
  }
}

/// Split `total` into `parts` contiguous chunks aligned to `unit`
/// (chunk boundaries fall on multiples of `unit`; the last chunk absorbs
/// the remainder).  Empty chunks are expressed as len = 0.
inline void partition_units(index_t total, index_t unit, int parts, int idx,
                            index_t& off, index_t& len) {
  const index_t blocks = (total + unit - 1) / unit;
  const index_t per = blocks / parts;
  const index_t rem = blocks % parts;
  const index_t my_blocks = per + (idx < rem ? 1 : 0);
  const index_t first = idx * per + std::min<index_t>(idx, rem);
  off = std::min(first * unit, total);
  len = std::min(my_blocks * unit, total - off);
}

/// Locate/correct the errors behind the found checksum mismatches, then
/// re-verify the touched rows and columns with exact sums over C and repeat
/// if needed.  One round suffices for ordinary errors; corrections whose
/// delta estimate was degraded by catastrophic rounding (an exponent bit
/// flip dwarfing the entire row sum) converge in two.  Single-threaded:
/// the general path calls it from an `omp single` section, the fast path
/// directly.  `rows`/`cols` are consumed as scratch.
template <typename T, typename S = T>
inline void locate_correct_reverify(
    std::vector<Mismatch>& rows, std::vector<Mismatch>& cols,
    const ToleranceModel<T>& tol, index_t m, index_t n, T* c, index_t ldc,
    GemmContext<S, T>& ctx, int panel,
    std::vector<CorrectionRecord>* correction_log, std::int64_t& detected,
    std::int64_t& corrected, int& uncorrectable) {
  if (rows.empty() && cols.empty()) return;
  bool failed = false;
  std::vector<index_t> touched_rows, touched_cols;
  constexpr int kMaxRounds = 4;
  for (int round = 0;; ++round) {
    const double slack = std::max(tol.cc_tau, tol.cr_tau) *
                         double(2 + rows.size() + cols.size());
    const SolveOutcome outcome = solve_error_assignment(rows, cols, slack);
    if (!outcome.solved) {
      if (round == 0) {
        detected += std::int64_t(std::max(rows.size(), cols.size()));
      }
      failed = true;
      break;
    }
    for (const LocatedError& err : outcome.errors) {
      c[err.row + err.col * ldc] -= T(err.delta);
      touched_rows.push_back(err.row);
      touched_cols.push_back(err.col);
      if (correction_log != nullptr) {
        correction_log->push_back({panel, round, err.row, err.col, err.delta});
      }
    }
    if (round == 0) {
      detected += std::int64_t(outcome.errors.size());
      corrected += std::int64_t(outcome.errors.size());
    }
    // Exact re-verification of everything we touched.
    std::sort(touched_rows.begin(), touched_rows.end());
    touched_rows.erase(std::unique(touched_rows.begin(), touched_rows.end()),
                       touched_rows.end());
    std::sort(touched_cols.begin(), touched_cols.end());
    touched_cols.erase(std::unique(touched_cols.begin(), touched_cols.end()),
                       touched_cols.end());
    rows.clear();
    cols.clear();
    for (const index_t i : touched_rows) {
      T sum = T(0);
      for (index_t j = 0; j < n; ++j) sum += c[i + j * ldc];
      const double d = double(sum) - double(ctx.cc()[i]);
      if (std::abs(d) > tol.cc_tau) rows.push_back({i, d});
    }
    for (const index_t j : touched_cols) {
      T sum = T(0);
      for (index_t i = 0; i < m; ++i) sum += c[i + j * ldc];
      const double d = double(sum) - double(ctx.cr()[j]);
      if (std::abs(d) > tol.cr_tau) cols.push_back({j, d});
    }
    if (rows.empty() && cols.empty()) break;  // converged
    if (round + 1 >= kMaxRounds) {
      failed = true;
      break;
    }
  }
  if (failed) ++uncorrectable;
}

/// Apply the corruptions an injector planned for one macro block, emulating
/// an in-kernel fault: the register-level reference checksums would have
/// seen the corrupted value too.  `crref_lane` is the executing thread's
/// lane-strided Cr reference partial.
template <typename T, bool FT, typename S = T>
inline void apply_planned_injections(FaultInjector* injector,
                                     const BlockContext& bctx,
                                     std::vector<InjectionRecord>& planned,
                                     T* c, index_t ldc,
                                     GemmContext<S, T>& ctx, T* crref_lane,
                                     index_t lanes) {
  planned.clear();
  injector->plan_block(bctx, planned);
  for (InjectionRecord rec : planned) {
    T& value = c[rec.i + rec.j * ldc];
    const double applied = apply_corruption(value, rec);
    if constexpr (FT) {
      ctx.ccref()[rec.i] += T(applied);
      crref_lane[rec.j * lanes] += T(applied);
    }
    rec.delta = applied;
    injector->record(rec);
  }
}

/// Strike a transient packed panel between pack and consume (the kPanelA /
/// kPanelB memory surfaces): the fault lands after every checksum predicted
/// from the panel was derived, so the rank-KC panel verification must catch
/// whatever the macro kernels compute from the corrupted bytes.  `live` is
/// the count of live (unpadded) elements and `map` translates a live element
/// ordinal into the physical packed-buffer index — flips in zero padding
/// would be undetectable and harmless, so padding is not part of the
/// surface.
template <typename T, typename MapFn>
inline void strike_transient_panel(MemoryFaultInjector* mem,
                                   MemorySurface surface, T* buf,
                                   std::size_t live, MapFn&& map) {
  if (mem == nullptr || live == 0) return;
  const MemoryStrikeContext mctx{surface, live, int(8 * sizeof(T))};
  std::vector<PanelFlip> flips;
  mem->plan_flips(mctx, flips);
  if (flips.empty()) return;
  for (const PanelFlip& f : flips) flip_value_bit(buf[map(f.elem)], f.bit);
  mem->record_applied(flips.size());
}

/// Single-macro-tile direct path (plan.fast_path): serial, packed-once, no
/// parallel region, no partition/barrier machinery, no per-call reduction
/// scratch.  Bit-identical to the general path (FT checksums still fused).
///
/// `ra` (may be null) is a resident pre-packed pre-encoded A payload for
/// this exact (operand, plan): the pack_a/encode_ar work is skipped and the
/// fused Cc update is replayed from the resident panel with the packer's own
/// accumulation structure (PackSet::encode_cc), so the result stays
/// bit-identical to the cold path.
template <typename S, bool FT, typename C = S>
FtReport execute_small(const GemmPlan<S, C>& plan, C alpha, const S* a,
                       index_t lda, const S* b, index_t ldb, C beta, C* c,
                       index_t ldc, FaultInjector* injector,
                       std::vector<CorrectionRecord>* correction_log,
                       GemmContext<S, C>& ctx,
                       const ResidentAPayload<S, C>* ra = nullptr,
                       MemoryFaultInjector* mem_injector = nullptr) {
  using T = C;  // every buffer/accumulator below is compute-precision
  FtReport report;
  const WallTimer timer;
  const PlanKey& key = plan.key;
  const index_t m = key.m, n = key.n, k = key.k;
  const KernelSet<S, C>& ks = plan.kernels;
  const index_t lanes = ks.cr_lanes;
  const bool degenerate = plan.k_zero || alpha == T(0);

  if (injector != nullptr) injector->begin_call(m, n, k, 1);
  ctx.ensure(plan);

  const OperandView<S> av{a, lda, key.ta == Trans::kTrans};
  const OperandView<S> bv{b, ldb, key.tb == Trans::kTrans};

  // ---- Encode phase (one pass over C fused with beta-scaling, one over A).
  double amax_a = 0.0, amax_b = 0.0, amax_c = 0.0;
  if constexpr (FT) {
    std::fill(ctx.cc(), ctx.cc() + m, T(0));
    std::fill(ctx.crref_part(0), ctx.crref_part(0) + n, T(0));
    amax_c = ks.pack.scale_encode_c(c, ldc, index_t(0), m, n, beta, ctx.cc(),
                                    ctx.crref_part(0));
    if (ra != nullptr) {
      // Resident hit: Ar and amax(A) were encoded when the payload was
      // filled, in this exact reduction order.
      std::copy(ra->ar.data(), ra->ar.data() + k, ctx.ar());
      amax_a = ra->amax_a;
    } else {
      std::fill(ctx.ar_part(0), ctx.ar_part(0) + k, T(0));
      amax_a = ks.pack.encode_ar(av, index_t(0), m, k, alpha, ctx.ar_part(0));
      // The general path's cross-thread reductions collapse to copies at one
      // thread (a sum of a single term), keeping results bit-identical.
      std::copy(ctx.ar_part(0), ctx.ar_part(0) + k, ctx.ar());
    }
    std::copy(ctx.crref_part(0), ctx.crref_part(0) + n, ctx.cr());
  } else {
    scale_c(c, ldc, index_t(0), m, n, beta);
  }

  std::int64_t detected = 0, corrected = 0;
  int uncorrectable = 0;
  int panels_run = 0;

  if (!degenerate) {
    // ---- The single rank-K panel: pack B~ once, pack A~ once, one macro
    // block, verify.
    // A fast-path plan always has kc >= k, so a resident payload is a
    // single panel starting at k-offset 0.  Uniform payloads are consumed
    // zero-copy; narrow-storage payloads hold raw storage bits and are
    // widened (alpha applied, one fp32 rounding — bit-identical to the cold
    // convert-on-pack) into this call's atilde.
    const T* apanel = ctx.atilde(0);
    if (ra != nullptr) {
      if constexpr (std::is_same_v<S, C>) {
        apanel = ra->panel_at(0);
      } else {
        ks.pack.widen_a(ra->panel_at(0), m, k, plan.blocking.mr, alpha,
                        ctx.atilde(0));
      }
    }
    if constexpr (FT) {
      std::fill(ctx.ccref(), ctx.ccref() + m, T(0));
      std::fill(ctx.crref_part(0), ctx.crref_part(0) + n * lanes, T(0));
      ks.pack.pack_b_ft(bv, 0, 0, k, n, plan.blocking.nr, ctx.btilde(),
                        ctx.ar(), ctx.cr());
      amax_b = ks.pack.reduce_bc(ctx.btilde(), k, n, plan.blocking.nr,
                                 index_t(0), k, ctx.bc(), 0.0);
      if (ra != nullptr) {
        ks.pack.encode_cc(apanel, av.trans, m, k, plan.blocking.mr, ctx.bc(),
                          ctx.cc());
      } else {
        ks.pack.pack_a_ft(av, 0, 0, m, k, plan.blocking.mr, alpha,
                          ctx.atilde(0), ctx.bc(), ctx.cc());
      }
    } else {
      ks.pack.pack_b(bv, 0, 0, k, n, plan.blocking.nr, ctx.btilde());
      if (ra == nullptr) {
        ks.pack.pack_a(av, 0, 0, m, k, plan.blocking.mr, alpha,
                       ctx.atilde(0));
      }
    }

    // Transient-surface strikes, between pack (all predicted checksums
    // derived) and consume.  B~ always lives in workspace; A~ only when
    // this call packed or widened it there — a zero-copy resident panel is
    // the kResidentPanel surface, struck on acquire instead.
    if (mem_injector != nullptr) {
      const index_t nr = plan.blocking.nr, mr = plan.blocking.mr;
      strike_transient_panel(
          mem_injector, MemorySurface::kPanelB, ctx.btilde(),
          std::size_t(k) * std::size_t(n), [&](std::size_t l) {
            const index_t j = index_t(l / std::size_t(k));
            const index_t kk = index_t(l % std::size_t(k));
            return std::size_t((j / nr) * (nr * k) + kk * nr + j % nr);
          });
      if (apanel == ctx.atilde(0)) {
        strike_transient_panel(
            mem_injector, MemorySurface::kPanelA, ctx.atilde(0),
            std::size_t(m) * std::size_t(k), [&](std::size_t l) {
              const index_t i = index_t(l / std::size_t(k));
              const index_t kk = index_t(l % std::size_t(k));
              return std::size_t((i / mr) * (mr * k) + kk * mr + i % mr);
            });
      }
    }

    run_macro_block<T, FT>(ks, m, n, k, apanel, ctx.btilde(), c, ldc,
                           FT ? ctx.crref_part(0) : nullptr,
                           FT ? ctx.ccref() : nullptr);

    if (injector != nullptr) {
      std::vector<InjectionRecord> planned;
      const BlockContext bctx{0, 0, 0, m, n, 0};
      apply_planned_injections<T, FT>(injector, bctx, planned, c, ldc, ctx,
                                      ctx.crref_part(0), lanes);
    }

    if constexpr (FT) {
      const ToleranceModel<T> tol =
          ToleranceModel<T>::compute(m, n, k, amax_a, amax_b, amax_c,
                                     double(alpha), double(beta),
                                     plan.tol_factor);
      for (index_t j = 0; j < n; ++j) {
        T sum = T(0);
        const T* part = ctx.crref_part(0) + j * lanes;
        for (index_t l = 0; l < lanes; ++l) sum += part[l];
        ctx.crref()[j] = sum;
      }
      std::vector<Mismatch> rows, cols;
      find_mismatches(ctx.cc(), ctx.ccref(), m, tol.cc_tau, index_t(0), rows);
      find_mismatches(ctx.cr(), ctx.crref(), n, tol.cr_tau, index_t(0), cols);
      locate_correct_reverify(rows, cols, tol, m, n, c, ldc, ctx, 0,
                              correction_log, detected, corrected,
                              uncorrectable);
      ++panels_run;
    }
  }

  report.panels = FT ? panels_run : int(degenerate ? 0 : 1);
  report.errors_detected = detected;
  report.errors_corrected = corrected;
  report.uncorrectable_panels = uncorrectable;
  report.elapsed_seconds = timer.seconds();
  return report;
}

/// Execute a planned (FT-)GEMM.  Shape, transposes, kernels, blocking,
/// topology and tolerance all come from `plan`; `injector`/`correction_log`
/// are per-call instrumentation sinks (may be null).  `ra` (may be null) is
/// a resident pre-packed pre-encoded A payload for this exact
/// (operand, plan) — see execute_small.
template <typename S, bool FT, typename C = S>
FtReport execute(const GemmPlan<S, C>& plan, C alpha, const S* a, index_t lda,
                 const S* b, index_t ldb, C beta, C* c, index_t ldc,
                 FaultInjector* injector,
                 std::vector<CorrectionRecord>* correction_log,
                 GemmContext<S, C>& ctx,
                 const ResidentAPayload<S, C>* ra = nullptr,
                 MemoryFaultInjector* mem_injector = nullptr) {
  using T = C;  // every buffer/accumulator below is compute-precision
  FtReport report;
  const PlanKey& key = plan.key;
  const index_t m = key.m, n = key.n, k = key.k;
  if (m <= 0 || n <= 0) return report;

  if (plan.fast_path) {
    return execute_small<S, FT, C>(plan, alpha, a, lda, b, ldb, beta, c, ldc,
                                   injector, correction_log, ctx, ra,
                                   mem_injector);
  }

  const WallTimer timer;
  const KernelSet<S, C>& ks = plan.kernels;
  const BlockingPlan& bp = plan.blocking;
  const int nt = plan.threads;
  const bool degenerate = plan.k_zero || alpha == T(0);

  if (injector != nullptr)
    injector->begin_call(m, n, k,
                         int(std::max<index_t>(plan.num_panels, 1)));

  const index_t lanes = ks.cr_lanes;
  ctx.ensure(plan);

  const OperandView<S> av{a, lda, key.ta == Trans::kTrans};
  const OperandView<S> bv{b, ldb, key.tb == Trans::kTrans};

  // Shared across the parallel region.
  std::vector<double> amax_parts(std::size_t(nt) * 3, 0.0);
  ToleranceModel<T> tol{};
  std::vector<std::vector<Mismatch>> row_mm(static_cast<std::size_t>(nt));
  std::vector<std::vector<Mismatch>> col_mm(static_cast<std::size_t>(nt));
  std::int64_t detected = 0;
  std::int64_t corrected = 0;
  int uncorrectable = 0;
  int panels_run = 0;

  const auto team_body = [&](runtime::TeamMember& tm) {
    const int tid = tm.tid();
    std::vector<InjectionRecord> planned;

    // M-partition of C (and A) for this thread, aligned to MR so only the
    // global edge produces partial register tiles.
    index_t ms = 0, mlen = 0;
    partition_units(m, bp.mr, nt, tid, ms, mlen);
    // Static N-partition used for reductions and checksum scans.
    index_t js_red = 0, jlen_red = 0;
    partition_units(n, 1, nt, tid, js_red, jlen_red);
    // Static K-partition for the Ar reduction.
    index_t ks_red = 0, klen_red = 0;
    partition_units(k, 1, nt, tid, ks_red, klen_red);

    // ---- Encode phase: C = beta*C fused with Cc/Cr encoding; Ar; amax. ----
    if constexpr (FT) {
      if (mlen > 0) std::fill(ctx.cc() + ms, ctx.cc() + ms + mlen, T(0));
      std::fill(ctx.crref_part(tid), ctx.crref_part(tid) + n, T(0));
      double amax_c = 0.0, amax_a = 0.0;
      if (ra == nullptr) {
        std::fill(ctx.ar_part(tid), ctx.ar_part(tid) + k, T(0));
      }
      if (mlen > 0) {
        amax_c = ks.pack.scale_encode_c(c, ldc, ms, mlen, n, beta, ctx.cc(),
                                        ctx.crref_part(tid));
        if (ra == nullptr) {
          amax_a =
              ks.pack.encode_ar(av, ms, mlen, k, alpha, ctx.ar_part(tid));
        }
      }
      // Resident hit: the payload carries amax(A) and the fully reduced Ar
      // (encoded at fill in this plan's per-thread partial order).
      if (ra != nullptr) amax_a = tid == 0 ? ra->amax_a : 0.0;
      amax_parts[std::size_t(tid) * 3 + 0] = amax_a;
      // amax(B) is folded into the per-panel Bc reduction sweep; slot 1
      // accumulates monotonically as panels stream through.
      amax_parts[std::size_t(tid) * 3 + 1] = 0.0;
      amax_parts[std::size_t(tid) * 3 + 2] = amax_c;
      tm.barrier();
      // Reduce the per-thread partials: Ar over a K-partition, Cr over an
      // N-partition (the encode pass stored Cr partials in crref_part).
      for (index_t p = ks_red; p < ks_red + klen_red; ++p) {
        if (ra != nullptr) {
          ctx.ar()[p] = ra->ar.data()[p];
          continue;
        }
        T sum = T(0);
        for (int t = 0; t < nt; ++t) sum += ctx.ar_part(t)[p];
        ctx.ar()[p] = sum;
      }
      for (index_t j = js_red; j < js_red + jlen_red; ++j) {
        T sum = T(0);
        for (int t = 0; t < nt; ++t) sum += ctx.crref_part(t)[j];
        ctx.cr()[j] = sum;
      }
      tm.barrier();
    } else {
      if (mlen > 0) scale_c(c, ldc, ms, mlen, n, beta);
      tm.barrier();
    }

    // ---- Panel loop: one rank-KC update + verification per iteration. ----
    if (!degenerate) {
      int panel = 0;
      for (index_t p = 0; p < k; p += bp.kc, ++panel) {
        const index_t pinc = std::min(bp.kc, k - p);

        if constexpr (FT) {
          // Reference checksums cover exactly this panel's C values.
          if (mlen > 0)
            std::fill(ctx.ccref() + ms, ctx.ccref() + ms + mlen, T(0));
          std::fill(ctx.crref_part(tid), ctx.crref_part(tid) + n * lanes,
                    T(0));
        }

        for (index_t jc = 0; jc < n; jc += bp.nc) {
          const index_t jinc = std::min(bp.nc, n - jc);

          // Cooperative packing of B~ along N (unit NR so panel boundaries
          // land on micro-panel boundaries).
          index_t js = 0, jlen = 0;
          partition_units(jinc, bp.nr, nt, tid, js, jlen);
          if constexpr (FT) {
            if (jlen > 0) {
              ks.pack.pack_b_ft(bv, p, jc + js, pinc, jlen, bp.nr,
                                ctx.btilde() + (js / bp.nr) * (bp.nr * pinc),
                                ctx.ar() + p, ctx.cr() + jc + js);
            }
          } else {
            if (jlen > 0) {
              ks.pack.pack_b(bv, p, jc + js, pinc, jlen, bp.nr,
                             ctx.btilde() + (js / bp.nr) * (bp.nr * pinc));
            }
          }
          tm.barrier();
          if constexpr (FT) {
            // Bc reduction ("an extra stage of reduction operation among
            // threads", §2.3): each thread derives its K-slice of the panel
            // checksum from the freshly packed, cache-resident B~.
            index_t kks = 0, kklen = 0;
            partition_units(pinc, 1, nt, tid, kks, kklen);
            if (kklen > 0) {
              amax_parts[std::size_t(tid) * 3 + 1] = ks.pack.reduce_bc(
                  ctx.btilde(), pinc, jinc, bp.nr, kks, kklen, ctx.bc(),
                  amax_parts[std::size_t(tid) * 3 + 1]);
            }
            tm.barrier();
          }

          // Transient B~ strike: one member mutates the shared panel after
          // every checksum predicted from it (Cr via pack_b_ft, Bc via
          // reduce_bc) and before any macro kernel consumes it.
          // mem_injector is uniform across the team, so every member takes
          // the single's implicit trailing barrier.
          if (mem_injector != nullptr) {
            tm.single([&] {
              strike_transient_panel(
                  mem_injector, MemorySurface::kPanelB, ctx.btilde(),
                  std::size_t(pinc) * std::size_t(jinc),
                  [&](std::size_t l) {
                    const index_t j = index_t(l / std::size_t(pinc));
                    const index_t kk = index_t(l % std::size_t(pinc));
                    return std::size_t((j / bp.nr) * (bp.nr * pinc) +
                                       kk * bp.nr + j % bp.nr);
                  });
            });
          }

          // Macro loop over this thread's rows.
          for (index_t ic = 0; ic < mlen; ic += bp.mc) {
            const index_t ilen = std::min(bp.mc, mlen - ic);
            // Resident hit: slice this thread's (ic) slab out of the
            // payload's whole-M panel — ms and ic are both MR-aligned, so
            // the slab starts on a tile boundary at the exact bytes a cold
            // pack_a would have written into atilde.  Narrow-storage
            // payloads hold raw storage bits: widen the slab (alpha
            // applied, one fp32 rounding — bit-identical to the cold
            // convert-on-pack) into this thread's private atilde instead.
            const T* apanel = ctx.atilde(tid);
            if (ra != nullptr) {
              const S* slab =
                  ra->panel_at(p) + ((ms + ic) / bp.mr) * (bp.mr * pinc);
              if constexpr (std::is_same_v<S, C>) {
                apanel = slab;
              } else {
                ks.pack.widen_a(slab, ilen, pinc, bp.mr, alpha,
                                ctx.atilde(tid));
              }
            }
            if constexpr (FT) {
              if (ra != nullptr) {
                // Replay the fused Cc update the skipped pack_a_ft would
                // have accumulated for this (jc, ic) block.
                ks.pack.encode_cc(apanel, av.trans, ilen, pinc, bp.mr,
                                  ctx.bc(), ctx.cc() + ms + ic);
              } else {
                ks.pack.pack_a_ft(av, ms + ic, p, ilen, pinc, bp.mr, alpha,
                                  ctx.atilde(tid), ctx.bc(),
                                  ctx.cc() + ms + ic);
              }
            } else {
              if (ra == nullptr) {
                ks.pack.pack_a(av, ms + ic, p, ilen, pinc, bp.mr, alpha,
                               ctx.atilde(tid));
              }
            }

            // Transient A~ strike by the owning thread, only when the slab
            // was packed/widened into this thread's private workspace — a
            // zero-copy resident slab belongs to the kResidentPanel
            // surface (and corrupting it here would poison later calls).
            // Pinned to member 0: opportunity *order* must not depend on
            // which thread packs first, or an armed one-shot injector's
            // strike placement would be a scheduling race.
            if (mem_injector != nullptr && tid == 0 &&
                apanel == ctx.atilde(tid)) {
              strike_transient_panel(
                  mem_injector, MemorySurface::kPanelA, ctx.atilde(tid),
                  std::size_t(ilen) * std::size_t(pinc),
                  [&](std::size_t l) {
                    const index_t i = index_t(l / std::size_t(pinc));
                    const index_t kk = index_t(l % std::size_t(pinc));
                    return std::size_t((i / bp.mr) * (bp.mr * pinc) +
                                       kk * bp.mr + i % bp.mr);
                  });
            }

            run_macro_block<T, FT>(
                ks, ilen, jinc, pinc, apanel, ctx.btilde(),
                c + (ms + ic) + jc * ldc, ldc,
                FT ? ctx.crref_part(tid) + jc * lanes : nullptr,
                FT ? ctx.ccref() + ms + ic : nullptr);

            if (injector != nullptr) {
              const BlockContext bctx{panel, ms + ic, jc, ilen, jinc, tid};
              apply_planned_injections<T, FT>(injector, bctx, planned, c,
                                              ldc, ctx, ctx.crref_part(tid),
                                              lanes);
            }
          }
          tm.barrier();  // B~ chunk complete before it is repacked
        }

        if constexpr (FT) {
          // Refresh the verification thresholds: amax(B) now covers every
          // panel streamed so far, i.e. exactly the contributions the
          // checksums have accumulated.
          tm.single([&] {
            double amax_a_all = 0.0, amax_b_all = 0.0, amax_c_all = 0.0;
            for (int t = 0; t < nt; ++t) {
              amax_a_all =
                  std::max(amax_a_all, amax_parts[std::size_t(t) * 3]);
              amax_b_all =
                  std::max(amax_b_all, amax_parts[std::size_t(t) * 3 + 1]);
              amax_c_all =
                  std::max(amax_c_all, amax_parts[std::size_t(t) * 3 + 2]);
            }
            tol = ToleranceModel<T>::compute(m, n, k, amax_a_all, amax_b_all,
                                             amax_c_all, double(alpha),
                                             double(beta), plan.tol_factor);
          });  // trailing team barrier (the "implicit barrier" of omp single)
          // Reduce per-thread Cr references, then scan for mismatches in
          // parallel (rows over the M-partition, columns over N).
          for (index_t j = js_red; j < js_red + jlen_red; ++j) {
            T sum = T(0);
            for (int t = 0; t < nt; ++t) {
              const T* part = ctx.crref_part(t) + j * lanes;
              for (index_t l = 0; l < lanes; ++l) sum += part[l];
            }
            ctx.crref()[j] = sum;
          }
          row_mm[std::size_t(tid)].clear();
          col_mm[std::size_t(tid)].clear();
          if (mlen > 0) {
            find_mismatches(ctx.cc() + ms, ctx.ccref() + ms, mlen, tol.cc_tau,
                            ms, row_mm[std::size_t(tid)]);
          }
          tm.barrier();
          if (jlen_red > 0) {
            find_mismatches(ctx.cr() + js_red, ctx.crref() + js_red, jlen_red,
                            tol.cr_tau, js_red, col_mm[std::size_t(tid)]);
          }
          tm.barrier();
          tm.single([&] {
            std::vector<Mismatch> rows, cols;
            for (int t = 0; t < nt; ++t) {
              rows.insert(rows.end(), row_mm[std::size_t(t)].begin(),
                          row_mm[std::size_t(t)].end());
              cols.insert(cols.end(), col_mm[std::size_t(t)].begin(),
                          col_mm[std::size_t(t)].end());
            }
            locate_correct_reverify(rows, cols, tol, m, n, c, ldc, ctx,
                                    panel, correction_log, detected,
                                    corrected, uncorrectable);
            ++panels_run;
          });  // trailing team barrier
        }
      }
    }
  };
  runtime::run_team(plan.runtime, nt, team_body);

  report.panels = FT ? panels_run : int(degenerate ? 0 : plan.num_panels);
  report.errors_detected = detected;
  report.errors_corrected = corrected;
  report.uncorrectable_panels = uncorrectable;
  report.elapsed_seconds = timer.seconds();
  return report;
}

}  // namespace ftgemm::detail
