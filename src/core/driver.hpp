// The (FT-)GEMM driver: a faithful implementation of Fig. 1 of the paper.
//
// One template, two instantiations per element type:
//   FT = false : the "Ori" high-performance GEMM (packing + cache blocking
//                + SIMD micro-kernels),
//   FT = true  : FT-GEMM with the fused ABFT scheme of §2.2/§2.3.
//
// Thread topology (§2.3): the OpenMP parallel region partitions C along the
// M-dimension; B~ is one buffer shared by all threads and packed
// cooperatively along the N-dimension (with a cross-thread reduction for the
// panel checksum Bc); each thread packs its own private A~.  Running with
// threads = 1 *is* the serial algorithm — no separate code path exists, so
// serial and parallel results are produced by the same verified code.
//
// Verification happens once per rank-KC panel ("p-loop: verify" in Fig. 1):
// every element of C is updated exactly once per panel, so the reference
// checksums accumulated inside the micro-kernels equal full row/column sums
// of the current C, directly comparable with the predicted checksums.
#pragma once

#include <omp.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/tolerance.hpp"
#include "abft/verifier.hpp"
#include "arch/isa.hpp"
#include "blocking/plan.hpp"
#include "core/context.hpp"
#include "core/options.hpp"
#include "kernels/macro_kernel.hpp"
#include "kernels/microkernel.hpp"
#include "kernels/packing.hpp"
#include "util/timer.hpp"

namespace ftgemm::detail {

/// Split `total` into `parts` contiguous chunks aligned to `unit`
/// (chunk boundaries fall on multiples of `unit`; the last chunk absorbs
/// the remainder).  Empty chunks are expressed as len = 0.
inline void partition_units(index_t total, index_t unit, int parts, int idx,
                            index_t& off, index_t& len) {
  const index_t blocks = (total + unit - 1) / unit;
  const index_t per = blocks / parts;
  const index_t rem = blocks % parts;
  const index_t my_blocks = per + (idx < rem ? 1 : 0);
  const index_t first = idx * per + std::min<index_t>(idx, rem);
  off = std::min(first * unit, total);
  len = std::min(my_blocks * unit, total - off);
}

template <typename T, bool FT>
FtReport run_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  T alpha, const T* a, index_t lda, const T* b, index_t ldb,
                  T beta, T* c, index_t ldc, const Options& opts,
                  GemmContext<T>& ctx) {
  FtReport report;
  if (m <= 0 || n <= 0) return report;
  const WallTimer timer;

  const Isa isa = opts.isa.value_or(select_isa());
  const KernelSet<T> ks = get_kernel_set<T>(isa);
  const BlockingPlan plan = make_plan(isa, int(sizeof(T)));

  int nt = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  nt = std::max(nt, 1);

  const index_t num_panels = plan.kc > 0 ? (k + plan.kc - 1) / plan.kc : 0;
  const bool degenerate = (k <= 0 || alpha == T(0));

  FaultInjector* const injector = opts.injector;
  if (injector != nullptr)
    injector->begin_call(m, n, k, int(std::max<index_t>(num_panels, 1)));

  const index_t lanes = ks.cr_lanes;
  ctx.ensure(m, n, std::max<index_t>(k, 1), plan, nt, FT, lanes);

  const double tol_factor = opts.tolerance_factor > 0.0
                                ? opts.tolerance_factor
                                : default_tolerance_factor_for<T>();

  const OperandView<T> av{a, lda, ta == Trans::kTrans};
  const OperandView<T> bv{b, ldb, tb == Trans::kTrans};

  // Shared across the parallel region.
  std::vector<double> amax_parts(std::size_t(nt) * 3, 0.0);
  ToleranceModel<T> tol{};
  std::vector<std::vector<Mismatch>> row_mm(static_cast<std::size_t>(nt));
  std::vector<std::vector<Mismatch>> col_mm(static_cast<std::size_t>(nt));
  std::int64_t detected = 0;
  std::int64_t corrected = 0;
  int uncorrectable = 0;
  int panels_run = 0;

#pragma omp parallel num_threads(nt)
  {
    const int tid = omp_get_thread_num();
    std::vector<InjectionRecord> planned;

    // M-partition of C (and A) for this thread, aligned to MR so only the
    // global edge produces partial register tiles.
    index_t ms = 0, mlen = 0;
    partition_units(m, plan.mr, nt, tid, ms, mlen);
    // Static N-partition used for reductions and checksum scans.
    index_t js_red = 0, jlen_red = 0;
    partition_units(n, 1, nt, tid, js_red, jlen_red);
    // Static K-partition for the Ar reduction.
    index_t ks_red = 0, klen_red = 0;
    partition_units(k, 1, nt, tid, ks_red, klen_red);

    // ---- Encode phase: C = beta*C fused with Cc/Cr encoding; Ar; amax. ----
    if constexpr (FT) {
      if (mlen > 0) std::fill(ctx.cc() + ms, ctx.cc() + ms + mlen, T(0));
      std::fill(ctx.crref_part(tid), ctx.crref_part(tid) + n, T(0));
      std::fill(ctx.ar_part(tid), ctx.ar_part(tid) + k, T(0));
      double amax_c = 0.0, amax_a = 0.0;
      if (mlen > 0) {
        amax_c = scale_encode_c(c, ldc, ms, mlen, n, beta, ctx.cc(),
                                ctx.crref_part(tid));
        amax_a = encode_ar_partial(av, ms, mlen, k, alpha, ctx.ar_part(tid));
      }
      amax_parts[std::size_t(tid) * 3 + 0] = amax_a;
      // amax(B) is folded into the per-panel Bc reduction sweep; slot 1
      // accumulates monotonically as panels stream through.
      amax_parts[std::size_t(tid) * 3 + 1] = 0.0;
      amax_parts[std::size_t(tid) * 3 + 2] = amax_c;
#pragma omp barrier
      // Reduce the per-thread partials: Ar over a K-partition, Cr over an
      // N-partition (the encode pass stored Cr partials in crref_part).
      for (index_t p = ks_red; p < ks_red + klen_red; ++p) {
        T sum = T(0);
        for (int t = 0; t < nt; ++t) sum += ctx.ar_part(t)[p];
        ctx.ar()[p] = sum;
      }
      for (index_t j = js_red; j < js_red + jlen_red; ++j) {
        T sum = T(0);
        for (int t = 0; t < nt; ++t) sum += ctx.crref_part(t)[j];
        ctx.cr()[j] = sum;
      }
#pragma omp barrier
    } else {
      if (mlen > 0) scale_c(c, ldc, ms, mlen, n, beta);
#pragma omp barrier
    }

    // ---- Panel loop: one rank-KC update + verification per iteration. ----
    if (!degenerate) {
      int panel = 0;
      for (index_t p = 0; p < k; p += plan.kc, ++panel) {
        const index_t pinc = std::min(plan.kc, k - p);

        if constexpr (FT) {
          // Reference checksums cover exactly this panel's C values.
          if (mlen > 0)
            std::fill(ctx.ccref() + ms, ctx.ccref() + ms + mlen, T(0));
          std::fill(ctx.crref_part(tid), ctx.crref_part(tid) + n * lanes,
                    T(0));
        }

        for (index_t jc = 0; jc < n; jc += plan.nc) {
          const index_t jinc = std::min(plan.nc, n - jc);

          // Cooperative packing of B~ along N (unit NR so panel boundaries
          // land on micro-panel boundaries).
          index_t js = 0, jlen = 0;
          partition_units(jinc, plan.nr, nt, tid, js, jlen);
          if constexpr (FT) {
            if (jlen > 0) {
              pack_b_ft(bv, p, jc + js, pinc, jlen, plan.nr,
                        ctx.btilde() + (js / plan.nr) * (plan.nr * pinc),
                        ctx.ar() + p, ctx.cr() + jc + js);
            }
          } else {
            if (jlen > 0) {
              pack_b(bv, p, jc + js, pinc, jlen, plan.nr,
                     ctx.btilde() + (js / plan.nr) * (plan.nr * pinc));
            }
          }
#pragma omp barrier
          if constexpr (FT) {
            // Bc reduction ("an extra stage of reduction operation among
            // threads", §2.3): each thread derives its K-slice of the panel
            // checksum from the freshly packed, cache-resident B~.
            index_t kks = 0, kklen = 0;
            partition_units(pinc, 1, nt, tid, kks, kklen);
            if (kklen > 0) {
              amax_parts[std::size_t(tid) * 3 + 1] = reduce_bc_from_panel(
                  ctx.btilde(), pinc, jinc, plan.nr, kks, kklen, ctx.bc(),
                  amax_parts[std::size_t(tid) * 3 + 1]);
            }
#pragma omp barrier
          }

          // Macro loop over this thread's rows.
          for (index_t ic = 0; ic < mlen; ic += plan.mc) {
            const index_t ilen = std::min(plan.mc, mlen - ic);
            if constexpr (FT) {
              pack_a_ft(av, ms + ic, p, ilen, pinc, plan.mr, alpha,
                        ctx.atilde(tid), ctx.bc(), ctx.cc() + ms + ic);
            } else {
              pack_a(av, ms + ic, p, ilen, pinc, plan.mr, alpha,
                     ctx.atilde(tid));
            }

            run_macro_block<T, FT>(
                ks, ilen, jinc, pinc, ctx.atilde(tid), ctx.btilde(),
                c + (ms + ic) + jc * ldc, ldc,
                FT ? ctx.crref_part(tid) + jc * lanes : nullptr,
                FT ? ctx.ccref() + ms + ic : nullptr);

            if (injector != nullptr) {
              planned.clear();
              const BlockContext bctx{panel, ms + ic, jc, ilen, jinc, tid};
              injector->plan_block(bctx, planned);
              for (InjectionRecord rec : planned) {
                T& value = c[rec.i + rec.j * ldc];
                const double applied = apply_corruption(value, rec);
                if constexpr (FT) {
                  // Emulate an in-kernel fault: the register-level reference
                  // checksums would have seen the corrupted value too.
                  ctx.ccref()[rec.i] += T(applied);
                  ctx.crref_part(tid)[rec.j * lanes] += T(applied);
                }
                rec.delta = applied;
                injector->record(rec);
              }
            }
          }
#pragma omp barrier  // B~ chunk complete before it is repacked
        }

        if constexpr (FT) {
          // Refresh the verification thresholds: amax(B) now covers every
          // panel streamed so far, i.e. exactly the contributions the
          // checksums have accumulated.
#pragma omp single
          {
            double amax_a_all = 0.0, amax_b_all = 0.0, amax_c_all = 0.0;
            for (int t = 0; t < nt; ++t) {
              amax_a_all =
                  std::max(amax_a_all, amax_parts[std::size_t(t) * 3]);
              amax_b_all =
                  std::max(amax_b_all, amax_parts[std::size_t(t) * 3 + 1]);
              amax_c_all =
                  std::max(amax_c_all, amax_parts[std::size_t(t) * 3 + 2]);
            }
            tol = ToleranceModel<T>::compute(m, n, k, amax_a_all, amax_b_all,
                                             amax_c_all, double(alpha),
                                             double(beta), tol_factor);
          }  // implicit barrier
          // Reduce per-thread Cr references, then scan for mismatches in
          // parallel (rows over the M-partition, columns over N).
          for (index_t j = js_red; j < js_red + jlen_red; ++j) {
            T sum = T(0);
            for (int t = 0; t < nt; ++t) {
              const T* part = ctx.crref_part(t) + j * lanes;
              for (index_t l = 0; l < lanes; ++l) sum += part[l];
            }
            ctx.crref()[j] = sum;
          }
          row_mm[std::size_t(tid)].clear();
          col_mm[std::size_t(tid)].clear();
          if (mlen > 0) {
            find_mismatches(ctx.cc() + ms, ctx.ccref() + ms, mlen, tol.cc_tau,
                            ms, row_mm[std::size_t(tid)]);
          }
#pragma omp barrier
          if (jlen_red > 0) {
            find_mismatches(ctx.cr() + js_red, ctx.crref() + js_red, jlen_red,
                            tol.cr_tau, js_red, col_mm[std::size_t(tid)]);
          }
#pragma omp barrier
#pragma omp single
          {
            std::vector<Mismatch> rows, cols;
            for (int t = 0; t < nt; ++t) {
              rows.insert(rows.end(), row_mm[std::size_t(t)].begin(),
                          row_mm[std::size_t(t)].end());
              cols.insert(cols.end(), col_mm[std::size_t(t)].begin(),
                          col_mm[std::size_t(t)].end());
            }
            if (!rows.empty() || !cols.empty()) {
              // Locate/correct, then *re-verify the touched rows and columns
              // with exact sums over C* and repeat if needed.  One round
              // suffices for ordinary errors; corrections whose delta
              // estimate was degraded by catastrophic rounding (an exponent
              // bit flip dwarfing the entire row sum) converge in two.
              bool failed = false;
              std::vector<index_t> touched_rows, touched_cols;
              constexpr int kMaxRounds = 4;
              for (int round = 0;; ++round) {
                const double slack = std::max(tol.cc_tau, tol.cr_tau) *
                                     double(2 + rows.size() + cols.size());
                const SolveOutcome outcome =
                    solve_error_assignment(rows, cols, slack);
                if (!outcome.solved) {
                  if (round == 0) {
                    detected +=
                        std::int64_t(std::max(rows.size(), cols.size()));
                  }
                  failed = true;
                  break;
                }
                for (const LocatedError& err : outcome.errors) {
                  c[err.row + err.col * ldc] -= T(err.delta);
                  touched_rows.push_back(err.row);
                  touched_cols.push_back(err.col);
                  if (opts.correction_log != nullptr) {
                    opts.correction_log->push_back(
                        {panel, round, err.row, err.col, err.delta});
                  }
                }
                if (round == 0) {
                  detected += std::int64_t(outcome.errors.size());
                  corrected += std::int64_t(outcome.errors.size());
                }
                // Exact re-verification of everything we touched.
                std::sort(touched_rows.begin(), touched_rows.end());
                touched_rows.erase(
                    std::unique(touched_rows.begin(), touched_rows.end()),
                    touched_rows.end());
                std::sort(touched_cols.begin(), touched_cols.end());
                touched_cols.erase(
                    std::unique(touched_cols.begin(), touched_cols.end()),
                    touched_cols.end());
                rows.clear();
                cols.clear();
                for (const index_t i : touched_rows) {
                  T sum = T(0);
                  for (index_t j = 0; j < n; ++j) sum += c[i + j * ldc];
                  const double d = double(sum) - double(ctx.cc()[i]);
                  if (std::abs(d) > tol.cc_tau) rows.push_back({i, d});
                }
                for (const index_t j : touched_cols) {
                  T sum = T(0);
                  for (index_t i = 0; i < m; ++i) sum += c[i + j * ldc];
                  const double d = double(sum) - double(ctx.cr()[j]);
                  if (std::abs(d) > tol.cr_tau) cols.push_back({j, d});
                }
                if (rows.empty() && cols.empty()) break;  // converged
                if (round + 1 >= kMaxRounds) {
                  failed = true;
                  break;
                }
              }
              if (failed) ++uncorrectable;
            }
            ++panels_run;
          }  // implicit barrier
        }
      }
    }
  }  // omp parallel

  report.panels = FT ? panels_run : int(degenerate ? 0 : num_panels);
  report.errors_detected = detected;
  report.errors_corrected = corrected;
  report.uncorrectable_panels = uncorrectable;
  report.elapsed_seconds = timer.seconds();
  return report;
}

}  // namespace ftgemm::detail
