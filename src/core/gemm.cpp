#include "core/gemm.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "core/driver.hpp"
#include "core/plan.hpp"

namespace ftgemm {

namespace {

using detail::normalize_layout;

/// Free-function dispatch: plan via the process-wide shared PlanCache,
/// lease a private workspace for the duration of the call, and hand the
/// frozen plan to the pure executor.  Any number of application threads may
/// be in here concurrently — leases never share workspaces, and a recurring
/// shape is planned once process-wide, not once per calling thread.
/// Resolve Options::resident_a against the process-wide operand cache
/// (shared by free functions, engines and the serving layer: the payload
/// key covers everything the packed layout depends on, so one resident
/// encoding serves every submitter of the operand).  Post-normalization
/// column-major arguments; returns an empty acquisition when the call
/// cannot consume a payload (degenerate problem, resident_a off).
template <typename S, typename C>
ResidentAcquisition<S, C> acquire_resident(const Options& opts, Trans ta,
                                           index_t m, index_t n, index_t k,
                                           C alpha, const S* a, index_t lda,
                                           const GemmPlan<S, C>& plan) {
  ResidentAcquisition<S, C> acq;
  if (!opts.resident_a || m <= 0 || n <= 0 || k <= 0 || alpha == C(0) ||
      a == nullptr) {
    return acq;
  }
  acq = process_context_cache<S, C>().operands().acquire(
      a, lda, ta == Trans::kTrans, alpha, plan, opts.memory_injector,
      opts.resident_verify);
  return acq;
}

template <typename S, bool FT, typename C = S>
FtReport dispatch(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, C alpha, const S* a, index_t lda, const S* b,
                  index_t ldb, C beta, C* c, index_t ldc,
                  const Options& opts) {
  normalize_layout(layout, ta, tb, m, n, a, lda, b, ldb);
  if (!valid_gemm_args(ta, tb, m, n, k, lda, ldb, ldc)) {
    FtReport rejected;
    rejected.invalid_args = true;
    return rejected;
  }
  ContextCache<S, C>& cache = process_context_cache<S, C>();
  const std::shared_ptr<const GemmPlan<S, C>> plan =
      cache.plan(ta, tb, m, n, k, opts, FT);
  const ResidentAcquisition<S, C> acq =
      acquire_resident(opts, ta, m, n, k, alpha, a, lda, *plan);
  const typename ContextCache<S, C>::Lease lease = cache.lease();
  FtReport rep = detail::execute<S, FT, C>(*plan, alpha, a, lda, b, ldb,
                                           beta, c, ldc, opts.injector,
                                           opts.correction_log, *lease,
                                           acq.payload.get(),
                                           opts.memory_injector);
  rep.resident_hit = acq.hit;
  rep.resident_heals = acq.heals;
  rep.resident_ecc_corrected = acq.ecc_corrected;
  return rep;
}

/// Engine dispatch: same pipeline, but planning and workspace come from the
/// engine's private single-owner context.
template <typename S, bool FT, typename C = S>
FtReport dispatch_engine(Layout layout, Trans ta, Trans tb, index_t m,
                         index_t n, index_t k, C alpha, const S* a,
                         index_t lda, const S* b, index_t ldb, C beta, C* c,
                         index_t ldc, const Options& opts,
                         GemmContext<S, C>& ctx) {
  normalize_layout(layout, ta, tb, m, n, a, lda, b, ldb);
  if (!valid_gemm_args(ta, tb, m, n, k, lda, ldb, ldc)) {
    FtReport rejected;
    rejected.invalid_args = true;
    return rejected;
  }
  const std::shared_ptr<const GemmPlan<S, C>> plan =
      ctx.plans().get_or_build(ta, tb, m, n, k, opts, FT);
  // Engines plan privately but share the process-wide operand cache: the
  // payload key covers everything the resident encoding depends on, so an
  // engine hit is exactly as safe as a free-function hit.
  const ResidentAcquisition<S, C> acq =
      acquire_resident(opts, ta, m, n, k, alpha, a, lda, *plan);
  FtReport rep = detail::execute<S, FT, C>(*plan, alpha, a, lda, b, ldb,
                                           beta, c, ldc, opts.injector,
                                           opts.correction_log, ctx,
                                           acq.payload.get(),
                                           opts.memory_injector);
  rep.resident_hit = acq.hit;
  rep.resident_heals = acq.heals;
  rep.resident_ecc_corrected = acq.ecc_corrected;
  return rep;
}

template <typename S, typename C = S>
FtReport reliable_impl(Layout layout, Trans ta, Trans tb, index_t m,
                       index_t n, index_t k, C alpha, const S* a, index_t lda,
                       const S* b, index_t ldb, C beta, C* c, index_t ldc,
                       const Options& opts, int max_retries) {
  // Reject invalid arguments before the snapshot below sizes itself from
  // them (a negative dimension would turn the reserve into a huge
  // allocation; dispatch would reject the call anyway).
  {
    Trans nta = ta, ntb = tb;
    index_t nm = m, nn = n, nlda = lda, nldb = ldb;
    const S* na = a;
    const S* nb = b;
    normalize_layout(layout, nta, ntb, nm, nn, na, nlda, nb, nldb);
    if (!valid_gemm_args(nta, ntb, nm, nn, k, nlda, nldb, ldc)) {
      FtReport rejected;
      rejected.invalid_args = true;
      return rejected;
    }
  }
  // Snapshot C so an uncorrectable panel can be rolled back.  The copy
  // respects the caller's layout: for row-major, "columns" below are the
  // caller's rows, but the (ldc, minor=n/m) traversal is the same.
  const index_t minor = layout == Layout::kColMajor ? m : n;
  const index_t major = layout == Layout::kColMajor ? n : m;
  std::vector<C> snapshot;
  snapshot.reserve(static_cast<std::size_t>(minor * major));
  for (index_t j = 0; j < major; ++j)
    snapshot.insert(snapshot.end(), c + j * ldc, c + j * ldc + minor);

  FtReport total;
  for (int attempt = 0;; ++attempt) {
    const FtReport rep = dispatch<S, true, C>(layout, ta, tb, m, n, k,
                                              alpha, a, lda, b, ldb, beta, c,
                                              ldc, opts);
    total.panels = rep.panels;
    total.errors_detected += rep.errors_detected;
    total.errors_corrected += rep.errors_corrected;
    total.elapsed_seconds += rep.elapsed_seconds;
    if (rep.clean() || attempt == max_retries) {
      total.uncorrectable_panels = rep.uncorrectable_panels;
      total.retries = attempt;
      return total;
    }
    // Roll back and retry.
    for (index_t j = 0; j < major; ++j) {
      const C* src = snapshot.data() + j * minor;
      std::copy(src, src + minor, c + j * ldc);
    }
  }
}

}  // namespace

void clear_process_caches() {
  process_context_cache<double>().clear_plans();
  process_context_cache<float>().clear_plans();
  process_context_cache<bf16_t, float>().clear_plans();
  process_context_cache<fp16_t, float>().clear_plans();
  process_context_cache<std::int8_t, std::int32_t>().clear_plans();
  process_context_cache<double>().clear_operands();
  process_context_cache<float>().clear_operands();
  process_context_cache<bf16_t, float>().clear_operands();
  process_context_cache<fp16_t, float>().clear_operands();
  process_context_cache<std::int8_t, std::int32_t>().clear_operands();
}

void clear_thread_plan_cache() { clear_process_caches(); }

void dgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           const Options& opts) {
  dispatch<double, false>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                          beta, c, ldc, opts);
}

void sgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
           float alpha, const float* a, index_t lda, const float* b,
           index_t ldb, float beta, float* c, index_t ldc,
           const Options& opts) {
  dispatch<float, false>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb, beta,
                         c, ldc, opts);
}

FtReport ft_dgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, double alpha, const double* a, index_t lda,
                  const double* b, index_t ldb, double beta, double* c,
                  index_t ldc, const Options& opts) {
  return dispatch<double, true>(layout, ta, tb, m, n, k, alpha, a, lda, b,
                                ldb, beta, c, ldc, opts);
}

FtReport ft_sgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, float alpha, const float* a, index_t lda,
                  const float* b, index_t ldb, float beta, float* c,
                  index_t ldc, const Options& opts) {
  return dispatch<float, true>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                               beta, c, ldc, opts);
}

FtReport ft_dgemm_reliable(Layout layout, Trans ta, Trans tb, index_t m,
                           index_t n, index_t k, double alpha, const double* a,
                           index_t lda, const double* b, index_t ldb,
                           double beta, double* c, index_t ldc,
                           const Options& opts, int max_retries) {
  return reliable_impl<double>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                               beta, c, ldc, opts, max_retries);
}

FtReport ft_sgemm_reliable(Layout layout, Trans ta, Trans tb, index_t m,
                           index_t n, index_t k, float alpha, const float* a,
                           index_t lda, const float* b, index_t ldb,
                           float beta, float* c, index_t ldc,
                           const Options& opts, int max_retries) {
  return reliable_impl<float>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                              beta, c, ldc, opts, max_retries);
}

void gemm_bf16(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
               index_t k, float alpha, const bf16_t* a, index_t lda,
               const bf16_t* b, index_t ldb, float beta, float* c,
               index_t ldc, const Options& opts) {
  dispatch<bf16_t, false, float>(layout, ta, tb, m, n, k, alpha, a, lda, b,
                                 ldb, beta, c, ldc, opts);
}

FtReport ft_gemm_bf16(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                      index_t k, float alpha, const bf16_t* a, index_t lda,
                      const bf16_t* b, index_t ldb, float beta, float* c,
                      index_t ldc, const Options& opts) {
  return dispatch<bf16_t, true, float>(layout, ta, tb, m, n, k, alpha, a,
                                       lda, b, ldb, beta, c, ldc, opts);
}

FtReport ft_gemm_bf16_reliable(Layout layout, Trans ta, Trans tb, index_t m,
                               index_t n, index_t k, float alpha,
                               const bf16_t* a, index_t lda, const bf16_t* b,
                               index_t ldb, float beta, float* c, index_t ldc,
                               const Options& opts, int max_retries) {
  return reliable_impl<bf16_t, float>(layout, ta, tb, m, n, k, alpha, a, lda,
                                      b, ldb, beta, c, ldc, opts, max_retries);
}

void gemm_f16(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
              index_t k, float alpha, const fp16_t* a, index_t lda,
              const fp16_t* b, index_t ldb, float beta, float* c, index_t ldc,
              const Options& opts) {
  dispatch<fp16_t, false, float>(layout, ta, tb, m, n, k, alpha, a, lda, b,
                                 ldb, beta, c, ldc, opts);
}

FtReport ft_gemm_f16(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                     index_t k, float alpha, const fp16_t* a, index_t lda,
                     const fp16_t* b, index_t ldb, float beta, float* c,
                     index_t ldc, const Options& opts) {
  return dispatch<fp16_t, true, float>(layout, ta, tb, m, n, k, alpha, a,
                                       lda, b, ldb, beta, c, ldc, opts);
}

FtReport ft_gemm_f16_reliable(Layout layout, Trans ta, Trans tb, index_t m,
                              index_t n, index_t k, float alpha,
                              const fp16_t* a, index_t lda, const fp16_t* b,
                              index_t ldb, float beta, float* c, index_t ldc,
                              const Options& opts, int max_retries) {
  return reliable_impl<fp16_t, float>(layout, ta, tb, m, n, k, alpha, a, lda,
                                      b, ldb, beta, c, ldc, opts, max_retries);
}

template <typename S, typename C>
void GemmEngine<S, C>::gemm(Layout layout, Trans ta, Trans tb, index_t m,
                            index_t n, index_t k, C alpha, const S* a,
                            index_t lda, const S* b, index_t ldb, C beta,
                            C* c, index_t ldc) {
  dispatch_engine<S, false, C>(layout, ta, tb, m, n, k, alpha, a, lda, b,
                               ldb, beta, c, ldc, opts_, ctx_);
}

template <typename S, typename C>
FtReport GemmEngine<S, C>::ft_gemm(Layout layout, Trans ta, Trans tb,
                                   index_t m, index_t n, index_t k, C alpha,
                                   const S* a, index_t lda, const S* b,
                                   index_t ldb, C beta, C* c, index_t ldc) {
  return dispatch_engine<S, true, C>(layout, ta, tb, m, n, k, alpha, a, lda,
                                     b, ldb, beta, c, ldc, opts_, ctx_);
}

template class GemmEngine<double>;
template class GemmEngine<float>;
template class GemmEngine<bf16_t, float>;
template class GemmEngine<fp16_t, float>;

}  // namespace ftgemm
