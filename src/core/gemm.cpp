#include "core/gemm.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "core/driver.hpp"
#include "core/plan.hpp"

namespace ftgemm {

namespace {

/// Resolve the row-major case onto the column-major core (a row-major
/// matrix viewed column-major with the same ld is its transpose, so
///   C_rm = op(A)·op(B)   ⇔   C_cmᵀ = op(B)·op(A) with operands swapped),
/// then plan via the context's PlanCache and hand the frozen plan to the
/// pure executor.
template <typename T, bool FT>
FtReport dispatch(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, T alpha, const T* a, index_t lda, const T* b,
                  index_t ldb, T beta, T* c, index_t ldc, const Options& opts,
                  GemmContext<T>& ctx) {
  if (layout == Layout::kRowMajor) {
    std::swap(ta, tb);
    std::swap(m, n);
    std::swap(a, b);
    std::swap(lda, ldb);
  }
  const std::shared_ptr<const GemmPlan<T>> plan =
      ctx.plans().get_or_build(ta, tb, m, n, k, opts, FT);
  return detail::execute<T, FT>(*plan, alpha, a, lda, b, ldb, beta, c, ldc,
                                opts.injector, opts.correction_log, ctx);
}

template <typename T>
GemmContext<T>& tls_context() {
  thread_local GemmContext<T> ctx;
  return ctx;
}

template <typename T>
FtReport reliable_impl(Layout layout, Trans ta, Trans tb, index_t m,
                       index_t n, index_t k, T alpha, const T* a, index_t lda,
                       const T* b, index_t ldb, T beta, T* c, index_t ldc,
                       const Options& opts, int max_retries) {
  // Snapshot C so an uncorrectable panel can be rolled back.  The copy
  // respects the caller's layout: for row-major, "columns" below are the
  // caller's rows, but the (ldc, minor=n/m) traversal is the same.
  const index_t minor = layout == Layout::kColMajor ? m : n;
  const index_t major = layout == Layout::kColMajor ? n : m;
  std::vector<T> snapshot;
  snapshot.reserve(static_cast<std::size_t>(minor * major));
  for (index_t j = 0; j < major; ++j)
    snapshot.insert(snapshot.end(), c + j * ldc, c + j * ldc + minor);

  FtReport total;
  for (int attempt = 0;; ++attempt) {
    const FtReport rep = dispatch<T, true>(layout, ta, tb, m, n, k, alpha, a,
                                           lda, b, ldb, beta, c, ldc, opts,
                                           tls_context<T>());
    total.panels = rep.panels;
    total.errors_detected += rep.errors_detected;
    total.errors_corrected += rep.errors_corrected;
    total.elapsed_seconds += rep.elapsed_seconds;
    if (rep.clean() || attempt == max_retries) {
      total.uncorrectable_panels = rep.uncorrectable_panels;
      total.retries = attempt;
      return total;
    }
    // Roll back and retry.
    for (index_t j = 0; j < major; ++j) {
      const T* src = snapshot.data() + j * minor;
      std::copy(src, src + minor, c + j * ldc);
    }
  }
}

}  // namespace

void clear_thread_plan_cache() {
  tls_context<double>().plans().clear();
  tls_context<float>().plans().clear();
}

void dgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           const Options& opts) {
  dispatch<double, false>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                          beta, c, ldc, opts, tls_context<double>());
}

void sgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
           float alpha, const float* a, index_t lda, const float* b,
           index_t ldb, float beta, float* c, index_t ldc,
           const Options& opts) {
  dispatch<float, false>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb, beta,
                         c, ldc, opts, tls_context<float>());
}

FtReport ft_dgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, double alpha, const double* a, index_t lda,
                  const double* b, index_t ldb, double beta, double* c,
                  index_t ldc, const Options& opts) {
  return dispatch<double, true>(layout, ta, tb, m, n, k, alpha, a, lda, b,
                                ldb, beta, c, ldc, opts,
                                tls_context<double>());
}

FtReport ft_sgemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, float alpha, const float* a, index_t lda,
                  const float* b, index_t ldb, float beta, float* c,
                  index_t ldc, const Options& opts) {
  return dispatch<float, true>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                               beta, c, ldc, opts, tls_context<float>());
}

FtReport ft_dgemm_reliable(Layout layout, Trans ta, Trans tb, index_t m,
                           index_t n, index_t k, double alpha, const double* a,
                           index_t lda, const double* b, index_t ldb,
                           double beta, double* c, index_t ldc,
                           const Options& opts, int max_retries) {
  return reliable_impl<double>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                               beta, c, ldc, opts, max_retries);
}

FtReport ft_sgemm_reliable(Layout layout, Trans ta, Trans tb, index_t m,
                           index_t n, index_t k, float alpha, const float* a,
                           index_t lda, const float* b, index_t ldb,
                           float beta, float* c, index_t ldc,
                           const Options& opts, int max_retries) {
  return reliable_impl<float>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                              beta, c, ldc, opts, max_retries);
}

template <typename T>
void GemmEngine<T>::gemm(Layout layout, Trans ta, Trans tb, index_t m,
                         index_t n, index_t k, T alpha, const T* a,
                         index_t lda, const T* b, index_t ldb, T beta, T* c,
                         index_t ldc) {
  dispatch<T, false>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                     ldc, opts_, ctx_);
}

template <typename T>
FtReport GemmEngine<T>::ft_gemm(Layout layout, Trans ta, Trans tb, index_t m,
                                index_t n, index_t k, T alpha, const T* a,
                                index_t lda, const T* b, index_t ldb, T beta,
                                T* c, index_t ldc) {
  return dispatch<T, true>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                           beta, c, ldc, opts_, ctx_);
}

template class GemmEngine<double>;
template class GemmEngine<float>;

}  // namespace ftgemm
