// SEC-DED (72,64) extended Hamming code for resident-operand payloads.
//
// One parity byte protects each 64-bit data word: 7 Hamming check bits
// locate any single flipped bit (data or check), and an overall parity bit
// distinguishes single errors (odd total parity -> correct in place) from
// double errors (even total parity with a nonzero syndrome -> detected,
// uncorrectable by the code).  This is the classic DRAM ECC geometry the
// `mat_ecc_ram` exemplar sweeps; the Hsiao construction differs only in
// which column vectors it picks, not in the correct/detect guarantees the
// campaign measures.
//
// The operand cache (core/operand_cache.cpp) uses the buffer-level helpers:
// encode once when a payload is filled, syndrome-sweep on every cache hit.
// A >= 3-bit burst inside one word can alias to a valid single-bit syndrome
// and "correct" the wrong bit — which is why the cache still runs its
// bit-exact integrity re-verification after the sweep and falls back to the
// re-encode heal (the layered defense DESIGN.md section 12 tabulates).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ftgemm::secded {

/// Outcome of checking one codeword.
enum class Outcome {
  kClean,            ///< syndrome zero, parity even
  kCorrectedData,    ///< single flipped data bit, corrected in place
  kCorrectedParity,  ///< single flipped check/parity bit, parity rewritten
  kDetectedDouble,   ///< double-bit (or aliasing multi-bit) error
};

namespace detail {

// Codeword positions are 1-based, 1..71: powers of two hold the 7 check
// bits, the remaining 64 positions hold data bits in ascending order.  The
// overall parity bit sits outside the positional scheme (bit 7 of the
// parity byte).
struct Tables {
  std::uint8_t data_pos[64] = {};  // codeword position of data bit i
  std::int8_t pos_data[128] = {};  // data bit at codeword position, -1 none
  std::uint64_t check_mask[7] = {};  // data bits covered by check bit c
};

constexpr Tables make_tables() {
  Tables t{};
  for (int p = 0; p < 128; ++p) t.pos_data[p] = -1;
  int i = 0;
  for (int p = 1; p <= 71; ++p) {
    if ((p & (p - 1)) == 0) continue;  // power of two: check bit position
    t.data_pos[i] = std::uint8_t(p);
    t.pos_data[p] = std::int8_t(i);
    ++i;
  }
  for (int c = 0; c < 7; ++c) {
    std::uint64_t m = 0;
    for (int j = 0; j < 64; ++j)
      if ((t.data_pos[j] >> c) & 1) m |= (std::uint64_t(1) << j);
    t.check_mask[c] = m;
  }
  return t;
}

inline constexpr Tables kTables = make_tables();

}  // namespace detail

/// Parity byte for a 64-bit data word: check bits in bits 0..6, overall
/// (even) parity over data + check bits in bit 7.
[[nodiscard]] inline std::uint8_t encode(std::uint64_t w) {
  std::uint8_t par = 0;
  for (int c = 0; c < 7; ++c) {
    par |= std::uint8_t(
        (__builtin_popcountll(w & detail::kTables.check_mask[c]) & 1) << c);
  }
  const int overall = (__builtin_popcountll(w) + __builtin_popcount(par)) & 1;
  par |= std::uint8_t(overall << 7);
  return par;
}

/// Syndrome-check one codeword; corrects single-bit errors in place (in the
/// data word or the parity byte).
[[nodiscard]] inline Outcome check_correct(std::uint64_t& w,
                                           std::uint8_t& parity) {
  const std::uint8_t fresh = encode(w);
  // Nonzero syndrome = codeword position of the flipped bit, if single.
  const std::uint8_t syn = std::uint8_t((fresh ^ parity) & 0x7f);
  const int total =
      (__builtin_popcountll(w) + __builtin_popcount(parity)) & 1;
  if (syn == 0 && total == 0) return Outcome::kClean;
  if (total == 1) {  // odd error count: single-bit, locatable
    if (syn == 0) {  // the overall parity bit itself flipped
      parity ^= std::uint8_t(0x80);
      return Outcome::kCorrectedParity;
    }
    const int db = detail::kTables.pos_data[syn];
    if (db >= 0) {
      w ^= std::uint64_t(1) << db;
      parity = encode(w);
      return Outcome::kCorrectedData;
    }
    if (syn <= 64 && (syn & (syn - 1)) == 0) {  // a stored check bit flipped
      parity = encode(w);
      return Outcome::kCorrectedParity;
    }
    return Outcome::kDetectedDouble;  // invalid position: multi-bit alias
  }
  return Outcome::kDetectedDouble;  // nonzero syndrome, even parity
}

/// Parity bytes covering `nbytes` of payload (one per 64-bit word; a
/// partial tail word is zero-padded, so padding bytes are protected too).
[[nodiscard]] inline std::size_t parity_bytes(std::size_t nbytes) {
  return (nbytes + 7) / 8;
}

/// Encode parity for a raw byte buffer.
inline void encode_buffer(const unsigned char* data, std::size_t nbytes,
                          std::uint8_t* parity) {
  const std::size_t words = parity_bytes(nbytes);
  for (std::size_t wd = 0; wd < words; ++wd) {
    const std::size_t off = wd * 8;
    const std::size_t len = nbytes - off < 8 ? nbytes - off : 8;
    std::uint64_t w = 0;
    std::memcpy(&w, data + off, len);
    parity[wd] = encode(w);
  }
}

/// Aggregate outcome of sweeping a buffer.
struct ScrubResult {
  std::size_t corrected = 0;      ///< single-bit data corrections applied
  std::size_t parity_fixed = 0;   ///< parity-byte-side corrections
  std::size_t uncorrectable = 0;  ///< words with detected double errors
};

/// Syndrome-sweep a buffer against its parity, correcting single-bit data
/// errors in place.  Double-detected words are left untouched for the
/// caller's fallback (integrity re-verify + re-encode heal).
[[nodiscard]] inline ScrubResult scrub_buffer(unsigned char* data,
                                              std::size_t nbytes,
                                              std::uint8_t* parity) {
  ScrubResult res;
  const std::size_t words = parity_bytes(nbytes);
  for (std::size_t wd = 0; wd < words; ++wd) {
    const std::size_t off = wd * 8;
    const std::size_t len = nbytes - off < 8 ? nbytes - off : 8;
    std::uint64_t w = 0;
    std::memcpy(&w, data + off, len);
    switch (check_correct(w, parity[wd])) {
      case Outcome::kClean:
        break;
      case Outcome::kCorrectedData:
        std::memcpy(data + off, &w, len);
        ++res.corrected;
        break;
      case Outcome::kCorrectedParity:
        ++res.parity_fixed;
        break;
      case Outcome::kDetectedDouble:
        ++res.uncorrectable;
        break;
    }
  }
  return res;
}

}  // namespace ftgemm::secded
