// Batched (FT-)GEMM: many independent problems of one shape per call.
//
// ML-inference-style serving rarely issues one huge GEMM; it issues dozens
// of small/medium ones per request (one per layer, per attention head, per
// expert...).  Looping over ft_gemm serially leaves cores idle on small
// problems and pays one OpenMP fork/join per problem.  The batched entry
// points amortize both:
//
//   gemm_batched / ft_gemm_batched              — array-of-pointers operands
//   gemm_strided_batched / ft_gemm_strided_batched — one base pointer per
//       operand plus a constant element stride between consecutive problems
//       (stride 0 broadcasts an operand, e.g. shared layer weights).
//
// All four are templates over (StorageT, ComputeT) like the rest of the
// stack, instantiated for float, double, and the narrow-storage mixed pairs
// (bf16/fp16 operands, fp32 C and accumulation).  FT variants aggregate one
// FtReport per problem into a BatchReport with batch-level fault
// statistics.
//
// Scheduling (see docs/DESIGN.md): the dispatcher picks between
//   - inter-batch parallelism: one team member per problem dispatched onto
//     the plan's thread-team runtime (parked pool workers or an OpenMP
//     region, runtime/team.hpp), each running the serial driver on a
//     private GemmContext leased from the process-wide ContextCache — wins
//     when problems are small (per-problem threading would be all barrier,
//     no work);
//   - intra-batch parallelism: problems run one after another, each using
//     the full multi-threaded driver — wins when a single problem is big
//     enough to feed every core.
// BatchOptions::schedule forces either; kAuto applies the decision rule.
//
// Fault injection: BatchOptions::base.injector targets the single problem
// selected by BatchOptions::inject_problem (an injection campaign picks a
// random member per run, see run_batched_injection_campaign).  Setting
// inject_problem < 0 attaches the injector to *every* problem.
// FaultInjector's begin_call/plan_block protocol is per-call stateful, so
// two injected problems must never interleave: under kAuto a shared
// injector (or correction log) steers the scheduler to intra-batch, and
// under a forced kInter the dispatcher serializes the injected members'
// execution through an internal gate — the campaign regime is well-defined
// under either schedule.
#pragma once

#include <type_traits>
#include <vector>

#include "core/gemm.hpp"
#include "core/options.hpp"

namespace ftgemm {

/// Scheduling policy for one batched call.
enum class BatchSchedule {
  kAuto,   ///< decision rule on problem size and batch count
  kInter,  ///< force one-thread-per-problem
  kIntra,  ///< force serial-over-problems, parallel-within-problem
};

/// Options for the batched entry points.
struct BatchOptions {
  /// Per-problem options.  `threads` caps the worker count of the whole
  /// batch (0 defers to FTGEMM_THREADS, then hardware concurrency — see
  /// runtime/topology.hpp); `runtime` picks the thread-team backend the
  /// batch dispatches onto; `injector` / `correction_log` attach to the
  /// problem selected by `inject_problem`.
  Options base;
  /// Scheduling policy (see header comment).
  BatchSchedule schedule = BatchSchedule::kAuto;
  /// Batch member the injector and correction log attach to.  Negative =
  /// every member; both sinks are per-call stateful and must not be shared
  /// across concurrent problems, so kAuto then schedules intra-batch, and a
  /// forced kInter serializes the injected members' execution.
  index_t inject_problem = 0;
};

/// Aggregated outcome of one batched FT call.
struct BatchReport {
  index_t problems = 0;                ///< batch size actually executed
  std::int64_t errors_detected = 0;    ///< sum over problems
  std::int64_t errors_corrected = 0;   ///< sum over problems
  std::int64_t uncorrectable_panels = 0;  ///< sum over problems
  index_t faulty_problems = 0;   ///< members with >= 1 detection
  index_t dirty_problems = 0;    ///< members whose report was not clean
  bool inter_batch = false;      ///< scheduler decision taken for this call
  /// With Options::resident_a: members whose A came from the resident
  /// operand cache (a stride-0 broadcast A is one entry serving the whole
  /// batch) and integrity heals performed on hits.
  index_t resident_hits = 0;
  std::int64_t resident_heals = 0;
  /// Resident-panel bits corrected in place by the SEC-DED syndrome sweep
  /// (FTGEMM_OPERAND_ECC), summed over members — see FtReport.
  std::int64_t resident_ecc_corrected = 0;
  /// Rejected before execution (negative dimension/batch or undersized
  /// leading dimension, see valid_gemm_args): no member ran, C untouched.
  bool invalid_args = false;
  double elapsed_seconds = 0.0;  ///< wall time of the whole batch
  /// One report per batch member, index-aligned with the operands (empty
  /// for the non-FT entry points).
  std::vector<FtReport> per_problem;

  /// True when every member's result is trustworthy.
  [[nodiscard]] bool clean() const { return dirty_problems == 0; }
};

// ---------------------------------------------------------------------------
// Array-of-pointers form: operand i of problem p is a[p], b[p], c[p].
// ---------------------------------------------------------------------------

// The compute type C is deliberately non-deduced (identity_t, C++17's
// spelling of std::type_identity_t): it is always the explicit template
// argument or its default `= S`.  This keeps classic call sites like
// `ft_gemm_strided_batched<double>(..., nullptr, ...)` well-formed (a
// deduced `C*` would choke on nullptr) and forces mixed-precision callers
// to spell `<bf16_t, float>` rather than relying on scalar-argument
// deduction.
template <typename T>
struct batched_identity {
  using type = T;
};
template <typename T>
using identity_t = typename batched_identity<T>::type;

/// batch independent C[p] = alpha*op(A[p])*op(B[p]) + beta*C[p], no FT.
template <typename S, typename C = S>
BatchReport gemm_batched(Layout layout, Trans ta, Trans tb, index_t m,
                         index_t n, index_t k, identity_t<C> alpha,
                         const S* const* a, index_t lda, const S* const* b,
                         index_t ldb, identity_t<C> beta,
                         identity_t<C>* const* c, index_t ldc,
                         index_t batch, const BatchOptions& opts = {});

/// Fault-tolerant batched GEMM; one FtReport per problem in the result.
template <typename S, typename C = S>
BatchReport ft_gemm_batched(Layout layout, Trans ta, Trans tb, index_t m,
                            index_t n, index_t k,
                            identity_t<C> alpha, const S* const* a,
                            index_t lda, const S* const* b, index_t ldb,
                            identity_t<C> beta,
                            identity_t<C>* const* c, index_t ldc,
                            index_t batch, const BatchOptions& opts = {});

// ---------------------------------------------------------------------------
// Strided form: operand i of problem p starts at base + p * stride.
// A stride of 0 shares one matrix across the whole batch (legal for the
// read-only A and B operands; C strides must be non-overlapping).
// ---------------------------------------------------------------------------

template <typename S, typename C = S>
BatchReport gemm_strided_batched(Layout layout, Trans ta, Trans tb, index_t m,
                                 index_t n, index_t k,
                                 identity_t<C> alpha, const S* a,
                                 index_t lda, index_t stride_a, const S* b,
                                 index_t ldb, index_t stride_b,
                                 identity_t<C> beta,
                                 identity_t<C>* c, index_t ldc,
                                 index_t stride_c, index_t batch,
                                 const BatchOptions& opts = {});

template <typename S, typename C = S>
BatchReport ft_gemm_strided_batched(Layout layout, Trans ta, Trans tb,
                                    index_t m, index_t n, index_t k,
                                    identity_t<C> alpha, const S* a,
                                    index_t lda, index_t stride_a, const S* b,
                                    index_t ldb, index_t stride_b,
                                    identity_t<C> beta,
                                    identity_t<C>* c, index_t ldc,
                                    index_t stride_c, index_t batch,
                                    const BatchOptions& opts = {});

extern template BatchReport gemm_batched<float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float,
    const float* const*, index_t, const float* const*, index_t, float,
    float* const*, index_t, index_t, const BatchOptions&);
extern template BatchReport gemm_batched<double>(
    Layout, Trans, Trans, index_t, index_t, index_t, double,
    const double* const*, index_t, const double* const*, index_t, double,
    double* const*, index_t, index_t, const BatchOptions&);
extern template BatchReport ft_gemm_batched<float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float,
    const float* const*, index_t, const float* const*, index_t, float,
    float* const*, index_t, index_t, const BatchOptions&);
extern template BatchReport ft_gemm_batched<double>(
    Layout, Trans, Trans, index_t, index_t, index_t, double,
    const double* const*, index_t, const double* const*, index_t, double,
    double* const*, index_t, index_t, const BatchOptions&);
extern template BatchReport gemm_strided_batched<float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float, const float*,
    index_t, index_t, const float*, index_t, index_t, float, float*, index_t,
    index_t, index_t, const BatchOptions&);
extern template BatchReport gemm_strided_batched<double>(
    Layout, Trans, Trans, index_t, index_t, index_t, double, const double*,
    index_t, index_t, const double*, index_t, index_t, double, double*,
    index_t, index_t, index_t, const BatchOptions&);
extern template BatchReport ft_gemm_strided_batched<float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float, const float*,
    index_t, index_t, const float*, index_t, index_t, float, float*, index_t,
    index_t, index_t, const BatchOptions&);
extern template BatchReport ft_gemm_strided_batched<double>(
    Layout, Trans, Trans, index_t, index_t, index_t, double, const double*,
    index_t, index_t, const double*, index_t, index_t, double, double*,
    index_t, index_t, index_t, const BatchOptions&);

// Mixed precision (narrow storage, fp32 C and accumulation).
extern template BatchReport gemm_batched<bf16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float,
    const bf16_t* const*, index_t, const bf16_t* const*, index_t, float,
    float* const*, index_t, index_t, const BatchOptions&);
extern template BatchReport ft_gemm_batched<bf16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float,
    const bf16_t* const*, index_t, const bf16_t* const*, index_t, float,
    float* const*, index_t, index_t, const BatchOptions&);
extern template BatchReport gemm_strided_batched<bf16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float, const bf16_t*,
    index_t, index_t, const bf16_t*, index_t, index_t, float, float*, index_t,
    index_t, index_t, const BatchOptions&);
extern template BatchReport ft_gemm_strided_batched<bf16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float, const bf16_t*,
    index_t, index_t, const bf16_t*, index_t, index_t, float, float*, index_t,
    index_t, index_t, const BatchOptions&);
extern template BatchReport gemm_batched<fp16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float,
    const fp16_t* const*, index_t, const fp16_t* const*, index_t, float,
    float* const*, index_t, index_t, const BatchOptions&);
extern template BatchReport ft_gemm_batched<fp16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float,
    const fp16_t* const*, index_t, const fp16_t* const*, index_t, float,
    float* const*, index_t, index_t, const BatchOptions&);
extern template BatchReport gemm_strided_batched<fp16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float, const fp16_t*,
    index_t, index_t, const fp16_t*, index_t, index_t, float, float*, index_t,
    index_t, index_t, const BatchOptions&);
extern template BatchReport ft_gemm_strided_batched<fp16_t, float>(
    Layout, Trans, Trans, index_t, index_t, index_t, float, const fp16_t*,
    index_t, index_t, const fp16_t*, index_t, index_t, float, float*, index_t,
    index_t, index_t, const BatchOptions&);

}  // namespace ftgemm
