#include "core/gemm_i8.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/driver_i8.hpp"
#include "core/plan.hpp"
#include "runtime/team.hpp"
#include "runtime/topology.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace ftgemm {

namespace {

using detail::normalize_layout;

/// Row-major calls are served by the column-major core via the classic
/// transposition trick (normalize_layout): C^T = B^T A^T.  That swap also
/// swaps which operand is "A" — so the quantization parameters must travel
/// with their matrices, not their argument slots.
QuantParams normalize_quant(Layout layout, const QuantParams& qp) {
  QuantParams q = qp;
  if (layout == Layout::kRowMajor) {
    std::swap(q.scale_a, q.scale_b);
    std::swap(q.zero_a, q.zero_b);
  }
  return q;
}

/// int8 argument gate: everything valid_gemm_args enforces, plus the
/// int32-exactness depth bound (kernels/int8_types.hpp).
bool valid_i8_args(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                   index_t lda, index_t ldb, index_t ldc) {
  return valid_gemm_args(ta, tb, m, n, k, lda, ldb, ldc) && k <= kI8MaxDepth;
}

/// Resident acquisition for the int8 path.  alpha is pinned to 1: the int8
/// payload stores raw biased bytes and exact byte sums, never a scaled
/// encoding, so one payload serves every (alpha, QuantParams) combination
/// and the cache key stays stable across calls that differ only in scales.
ResidentAcquisition<std::int8_t, std::int32_t> acquire_resident_i8(
    const Options& opts, Trans ta, index_t m, index_t n, index_t k,
    float alpha, const std::int8_t* a, index_t lda,
    const GemmPlan<std::int8_t, std::int32_t>& plan) {
  ResidentAcquisition<std::int8_t, std::int32_t> acq;
  if (!opts.resident_a || m <= 0 || n <= 0 || k <= 0 || alpha == 0.0f ||
      a == nullptr) {
    return acq;
  }
  acq = process_context_cache<std::int8_t, std::int32_t>().operands().acquire(
      a, lda, ta == Trans::kTrans, std::int32_t(1), plan,
      opts.memory_injector, opts.resident_verify);
  return acq;
}

template <bool FT>
FtReport dispatch_i8(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                     index_t k, float alpha, const std::int8_t* a,
                     index_t lda, const std::int8_t* b, index_t ldb,
                     float beta, float* c, index_t ldc, const QuantParams& qp,
                     const Options& opts) {
  const QuantParams q = normalize_quant(layout, qp);
  normalize_layout(layout, ta, tb, m, n, a, lda, b, ldb);
  if (!valid_i8_args(ta, tb, m, n, k, lda, ldb, ldc)) {
    FtReport rejected;
    rejected.invalid_args = true;
    return rejected;
  }
  ContextCache<std::int8_t, std::int32_t>& cache =
      process_context_cache<std::int8_t, std::int32_t>();
  const std::shared_ptr<const GemmPlan<std::int8_t, std::int32_t>> plan =
      cache.plan(ta, tb, m, n, k, opts, FT);
  const ResidentAcquisition<std::int8_t, std::int32_t> acq =
      acquire_resident_i8(opts, ta, m, n, k, alpha, a, lda, *plan);
  const ContextCache<std::int8_t, std::int32_t>::Lease lease = cache.lease();
  FtReport rep = detail::execute_i8<FT>(*plan, alpha, a, lda, b, ldb, beta, c,
                                        ldc, q, opts.injector,
                                        opts.correction_log, *lease,
                                        acq.payload.get(),
                                        opts.memory_injector);
  rep.resident_hit = acq.hit;
  rep.resident_heals = acq.heals;
  rep.resident_ecc_corrected = acq.ecc_corrected;
  return rep;
}

/// Engine dispatch: private plans/workspace, shared operand cache — same
/// contract as the float engines (core/gemm.cpp).
template <bool FT>
FtReport dispatch_engine_i8(Layout layout, Trans ta, Trans tb, index_t m,
                            index_t n, index_t k, float alpha,
                            const std::int8_t* a, index_t lda,
                            const std::int8_t* b, index_t ldb, float beta,
                            float* c, index_t ldc, const QuantParams& qp,
                            const Options& opts,
                            GemmContext<std::int8_t, std::int32_t>& ctx) {
  const QuantParams q = normalize_quant(layout, qp);
  normalize_layout(layout, ta, tb, m, n, a, lda, b, ldb);
  if (!valid_i8_args(ta, tb, m, n, k, lda, ldb, ldc)) {
    FtReport rejected;
    rejected.invalid_args = true;
    return rejected;
  }
  const std::shared_ptr<const GemmPlan<std::int8_t, std::int32_t>> plan =
      ctx.plans().get_or_build(ta, tb, m, n, k, opts, FT);
  const ResidentAcquisition<std::int8_t, std::int32_t> acq =
      acquire_resident_i8(opts, ta, m, n, k, alpha, a, lda, *plan);
  FtReport rep = detail::execute_i8<FT>(*plan, alpha, a, lda, b, ldb, beta, c,
                                        ldc, q, opts.injector,
                                        opts.correction_log, ctx,
                                        acq.payload.get(),
                                        opts.memory_injector);
  rep.resident_hit = acq.hit;
  rep.resident_heals = acq.heals;
  rep.resident_ecc_corrected = acq.ecc_corrected;
  return rep;
}

// See gemm_batched.cpp for the scheduling rationale; the int8 path reuses
// the same cutoff knob — the inter/intra tradeoff is about barrier overhead
// versus per-problem parallelism, which the element type barely moves.
constexpr double kInterBatchFlopCutoff = 134.0e6;

bool pick_inter_batch_i8(const BatchOptions& opts, index_t m, index_t n,
                         index_t k, index_t batch) {
  switch (opts.schedule) {
    case BatchSchedule::kInter: return true;
    case BatchSchedule::kIntra: return false;
    case BatchSchedule::kAuto: break;
  }
  if (batch < 2) return false;
  const double flops =
      2.0 * double(m) * double(n) * double(std::max<index_t>(k, 1));
  return flops <=
         env_double("FTGEMM_BATCH_INTER_FLOPS", kInterBatchFlopCutoff);
}

template <bool FT>
BatchReport run_batched_i8(Layout layout, Trans ta, Trans tb, index_t m,
                           index_t n, index_t k, float alpha,
                           const std::int8_t* const* a, index_t lda,
                           const std::int8_t* const* b, index_t ldb,
                           float beta, float* const* c, index_t ldc,
                           index_t batch, const QuantParams& qp,
                           const BatchOptions& opts) {
  BatchReport report;
  const WallTimer timer;
  if (batch < 0) {
    report.invalid_args = true;
    return report;
  }
  if (batch == 0) return report;

  const QuantParams q = normalize_quant(layout, qp);
  normalize_layout(layout, ta, tb, m, n, a, lda, b, ldb);
  if (!valid_i8_args(ta, tb, m, n, k, lda, ldb, ldc)) {
    report.invalid_args = true;
    return report;
  }
  report.problems = batch;

  const int nt = runtime::topology(opts.base.threads);

  // Shared-sink veto and gate: identical to the float batched path (see
  // gemm_batched.cpp) — the injector/correction-log protocol is type-blind.
  const bool shared_sink =
      (opts.base.injector != nullptr || opts.base.correction_log != nullptr) &&
      opts.inject_problem < 0;
  const bool inter = pick_inter_batch_i8(opts, m, n, k, batch) &&
                     (opts.schedule == BatchSchedule::kInter || !shared_sink);
  report.inter_batch = inter;
  const int workers = inter ? int(std::min<index_t>(nt, batch)) : 1;

  ContextCache<std::int8_t, std::int32_t>& cache =
      process_context_cache<std::int8_t, std::int32_t>();
  std::vector<ContextCache<std::int8_t, std::int32_t>::Lease> leases;
  leases.reserve(std::size_t(workers));
  for (int i = 0; i < workers; ++i) leases.push_back(cache.lease());

  Options plan_opts = opts.base;
  plan_opts.threads = inter ? 1 : nt;
  const std::shared_ptr<const GemmPlan<std::int8_t, std::int32_t>> plan =
      cache.plan(ta, tb, m, n, k, plan_opts, FT);

  std::vector<FtReport> reports(static_cast<std::size_t>(batch));

  std::mutex sink_gate;
  const bool gate_sinks = inter && shared_sink;

  const auto run_one = [&](index_t p,
                           GemmContext<std::int8_t, std::int32_t>& ctx) {
    FaultInjector* injector = opts.base.injector;
    std::vector<CorrectionRecord>* log = opts.base.correction_log;
    if (opts.inject_problem >= 0 && p != opts.inject_problem) {
      injector = nullptr;
      log = nullptr;
    }
    std::unique_lock<std::mutex> gate;
    if (gate_sinks && (injector != nullptr || log != nullptr))
      gate = std::unique_lock<std::mutex>(sink_gate);
    ResidentAcquisition<std::int8_t, std::int32_t> acq;
    if (opts.base.resident_a && m > 0 && n > 0 && k > 0 && alpha != 0.0f &&
        a[p] != nullptr) {
      acq = cache.operands().acquire(a[p], lda, ta == Trans::kTrans,
                                     std::int32_t(1), *plan,
                                     opts.base.memory_injector,
                                     opts.base.resident_verify);
    }
    FtReport rep = detail::execute_i8<FT>(*plan, alpha, a[p], lda, b[p], ldb,
                                          beta, c[p], ldc, q, injector, log,
                                          ctx, acq.payload.get(),
                                          opts.base.memory_injector);
    rep.resident_hit = acq.hit;
    rep.resident_heals = acq.heals;
    rep.resident_ecc_corrected = acq.ecc_corrected;
    reports[std::size_t(p)] = rep;
  };

  std::atomic<index_t> next{0};
  const auto member_body = [&](runtime::TeamMember& tm) {
    GemmContext<std::int8_t, std::int32_t>& ctx =
        *leases[std::size_t(tm.tid())];
    for (index_t p = next.fetch_add(1, std::memory_order_relaxed); p < batch;
         p = next.fetch_add(1, std::memory_order_relaxed)) {
      run_one(p, ctx);
    }
  };
  runtime::run_team(plan->runtime, workers, member_body);

  for (const FtReport& r : reports) {
    if (r.resident_hit) ++report.resident_hits;
    report.resident_heals += r.resident_heals;
    report.resident_ecc_corrected += r.resident_ecc_corrected;
  }
  if constexpr (FT) {
    for (const FtReport& r : reports) {
      report.errors_detected += r.errors_detected;
      report.errors_corrected += r.errors_corrected;
      report.uncorrectable_panels += r.uncorrectable_panels;
      if (r.errors_detected > 0) ++report.faulty_problems;
      if (!r.clean()) ++report.dirty_problems;
    }
    report.per_problem = std::move(reports);
  }
  report.elapsed_seconds = timer.seconds();
  return report;
}

template <bool FT>
BatchReport run_strided_batched_i8(Layout layout, Trans ta, Trans tb,
                                   index_t m, index_t n, index_t k,
                                   float alpha, const std::int8_t* a,
                                   index_t lda, index_t stride_a,
                                   const std::int8_t* b, index_t ldb,
                                   index_t stride_b, float beta, float* c,
                                   index_t ldc, index_t stride_c,
                                   index_t batch, const QuantParams& qp,
                                   const BatchOptions& opts) {
  if (batch < 0) {
    BatchReport report;
    report.invalid_args = true;
    return report;
  }
  if (batch == 0) return {};
  std::vector<const std::int8_t*> ap(static_cast<std::size_t>(batch));
  std::vector<const std::int8_t*> bp(static_cast<std::size_t>(batch));
  std::vector<float*> cp(static_cast<std::size_t>(batch));
  for (index_t p = 0; p < batch; ++p) {
    ap[std::size_t(p)] = a + p * stride_a;
    bp[std::size_t(p)] = b + p * stride_b;
    cp[std::size_t(p)] = c + p * stride_c;
  }
  return run_batched_i8<FT>(layout, ta, tb, m, n, k, alpha, ap.data(), lda,
                            bp.data(), ldb, beta, cp.data(), ldc, batch, qp,
                            opts);
}

}  // namespace

void gemm_i8(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
             index_t k, float alpha, const std::int8_t* a, index_t lda,
             const std::int8_t* b, index_t ldb, float beta, float* c,
             index_t ldc, const QuantParams& qp, const Options& opts) {
  dispatch_i8<false>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                     ldc, qp, opts);
}

FtReport ft_gemm_i8(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                    index_t k, float alpha, const std::int8_t* a, index_t lda,
                    const std::int8_t* b, index_t ldb, float beta, float* c,
                    index_t ldc, const QuantParams& qp, const Options& opts) {
  return dispatch_i8<true>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                           beta, c, ldc, qp, opts);
}

BatchReport gemm_i8_batched(Layout layout, Trans ta, Trans tb, index_t m,
                            index_t n, index_t k, float alpha,
                            const std::int8_t* const* a, index_t lda,
                            const std::int8_t* const* b, index_t ldb,
                            float beta, float* const* c, index_t ldc,
                            index_t batch, const QuantParams& qp,
                            const BatchOptions& opts) {
  return run_batched_i8<false>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                               beta, c, ldc, batch, qp, opts);
}

BatchReport ft_gemm_i8_batched(Layout layout, Trans ta, Trans tb, index_t m,
                               index_t n, index_t k, float alpha,
                               const std::int8_t* const* a, index_t lda,
                               const std::int8_t* const* b, index_t ldb,
                               float beta, float* const* c, index_t ldc,
                               index_t batch, const QuantParams& qp,
                               const BatchOptions& opts) {
  return run_batched_i8<true>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                              beta, c, ldc, batch, qp, opts);
}

BatchReport gemm_i8_strided_batched(Layout layout, Trans ta, Trans tb,
                                    index_t m, index_t n, index_t k,
                                    float alpha, const std::int8_t* a,
                                    index_t lda, index_t stride_a,
                                    const std::int8_t* b, index_t ldb,
                                    index_t stride_b, float beta, float* c,
                                    index_t ldc, index_t stride_c,
                                    index_t batch, const QuantParams& qp,
                                    const BatchOptions& opts) {
  return run_strided_batched_i8<false>(layout, ta, tb, m, n, k, alpha, a, lda,
                                       stride_a, b, ldb, stride_b, beta, c,
                                       ldc, stride_c, batch, qp, opts);
}

BatchReport ft_gemm_i8_strided_batched(
    Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
    float alpha, const std::int8_t* a, index_t lda, index_t stride_a,
    const std::int8_t* b, index_t ldb, index_t stride_b, float beta, float* c,
    index_t ldc, index_t stride_c, index_t batch, const QuantParams& qp,
    const BatchOptions& opts) {
  return run_strided_batched_i8<true>(layout, ta, tb, m, n, k, alpha, a, lda,
                                      stride_a, b, ldb, stride_b, beta, c,
                                      ldc, stride_c, batch, qp, opts);
}

ResidentOperand make_resident_a_i8(Trans ta, Trans tb, index_t m, index_t n,
                                   index_t k, const std::int8_t* a,
                                   index_t lda, const Options& opts, bool ft) {
  if (k > kI8MaxDepth) return {};
  return make_resident_a<std::int8_t, std::int32_t>(ta, tb, m, n, k,
                                                    std::int32_t(1), a, lda,
                                                    opts, ft);
}

void GemmEngine<std::int8_t, std::int32_t>::gemm(
    Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
    float alpha, const std::int8_t* a, index_t lda, const std::int8_t* b,
    index_t ldb, float beta, float* c, index_t ldc, const QuantParams& qp) {
  dispatch_engine_i8<false>(layout, ta, tb, m, n, k, alpha, a, lda, b, ldb,
                            beta, c, ldc, qp, opts_, ctx_);
}

FtReport GemmEngine<std::int8_t, std::int32_t>::ft_gemm(
    Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
    float alpha, const std::int8_t* a, index_t lda, const std::int8_t* b,
    index_t ldb, float beta, float* c, index_t ldc, const QuantParams& qp) {
  return dispatch_engine_i8<true>(layout, ta, tb, m, n, k, alpha, a, lda, b,
                                  ldb, beta, c, ldc, qp, opts_, ctx_);
}

}  // namespace ftgemm
