// Resident-operand cache: packed + checksum-encoded A panels kept alive
// across calls (ROADMAP item: "pack and checksum once, keep the encoded
// panels resident" for serving traffic that re-uses one weight matrix per
// layer across millions of requests).
//
// An entry stores everything the executor's A-side would otherwise rebuild
// per call:
//   - the alpha-scaled packed panels, laid out per rank-KC panel with all
//     ceil(m/MR) MR-tall tiles contiguous — so the general path's macro loop
//     can slice any (thread, ic) slab out of it at the exact address a
//     cold-call atilde would have held,
//   - the operand row checksum Ar (reduced in the cold path's per-thread
//     partial order, so the hit path is bit-identical at any thread count),
//   - amax(|A|) for the tolerance model,
//   - integrity row/column sums over the packed bytes themselves.
//
// CHECK_BEFORE (after the MAGMA abft_dgemm idiom of persistent
// dA_colchk/dA_rowchk buffers re-verified before consumption): every hit
// recomputes the integrity sums in the same fixed scalar order they were
// filled in and compares bit-exactly.  A mismatch means the resident bytes
// were corrupted in memory — the cache re-encodes from the source operand
// and swaps the healed payload in (self-healing), counting the heal in the
// call's FtReport and the service's ServiceStats.  This extends the paper's
// compute-domain ABFT to the storage domain: a bit flip striking cached
// weights is detected before it can poison a single result.
//
// Keying (like the PlanCache, plus operand identity): source pointer and a
// sampled content fingerprint, shape, leading dimension, transpose, alpha
// bits, and the plan-resolved ISA / MR / KC / thread count (packed layout
// and the Ar reduction order depend on all of them).  The fingerprint
// samples a bounded grid of elements — a mutation outside the grid is NOT
// detected, which is why resident_a is strictly opt-in for operands the
// caller promises are stable (weights).  FT and Ori plans share entries.
//
// Eviction: LRU over both an entry cap and a byte cap
// (FTGEMM_OPERAND_CACHE_ENTRIES / FTGEMM_OPERAND_CACHE_BYTES).  Payloads
// are handed out as shared_ptr, so eviction never invalidates a call in
// flight; a ResidentOperand handle pins the payload's storage (not its
// cache slot) for as long as the caller holds it.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/plan.hpp"
#include "util/aligned_buffer.hpp"

namespace ftgemm {

/// Fingerprint of one resident A operand under one plan.
struct OperandKey {
  std::uintptr_t ptr = 0;         ///< source operand address
  std::uint64_t fingerprint = 0;  ///< FNV over a sampled element grid
  index_t m = 0;
  index_t k = 0;
  index_t lda = 0;
  bool trans = false;
  std::uint64_t alpha_bits = 0;   ///< exact scale baked into the panels
  int isa = 0;                    ///< packed layout is ISA-bit-identical,
                                  ///< but keep engines separate regardless
  index_t mr = 0;                 ///< tile height the panels were packed for
  index_t kc = 0;                 ///< rank-KC panel depth
  int threads = 1;                ///< Ar partial-reduction order

  [[nodiscard]] bool operator==(const OperandKey& o) const {
    return ptr == o.ptr && fingerprint == o.fingerprint && m == o.m &&
           k == o.k && lda == o.lda && trans == o.trans &&
           alpha_bits == o.alpha_bits && isa == o.isa && mr == o.mr &&
           kc == o.kc && threads == o.threads;
  }
};

struct OperandKeyHash {
  std::size_t operator()(const OperandKey& key) const {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(std::uint64_t(key.ptr));
    mix(key.fingerprint);
    mix(std::uint64_t(key.m));
    mix(std::uint64_t(key.k));
    mix(std::uint64_t(key.lda));
    mix(std::uint64_t(key.trans));
    mix(key.alpha_bits);
    mix(std::uint64_t(std::uint32_t(key.isa)));
    mix(std::uint64_t(key.mr));
    mix(std::uint64_t(key.kc));
    mix(std::uint64_t(std::uint32_t(key.threads)));
    return std::size_t(h);
  }
};

/// The resident encoding of one A operand: packed panels + Ar + amax +
/// integrity sums.  Immutable once published (heals swap in a fresh one).
///
/// (StorageT, ComputeT) generalized like the kernel layer.  Uniform
/// payloads (S == C) store the alpha-scaled packed panels the executor can
/// consume zero-copy.  Narrow-storage payloads (bf16/fp16) store the *raw
/// permuted storage bits* (pack_a_raw — alpha NOT baked in; it lives in the
/// OperandKey) at half the byte footprint, and the executor widens a slab
/// into its private atilde on every hit (PackSet::widen_a, bit-identical to
/// the cold convert-on-pack path).  Checksums (ar) and integrity sums are
/// always ComputeT.
template <typename StorageT, typename ComputeT = StorageT>
struct ResidentAPayload {
  index_t m = 0, k = 0;
  index_t mr = 0, kc = 0;
  index_t tiles = 0;  ///< ceil(m / mr)
  bool trans = false;
  ComputeT alpha = ComputeT(0);
  /// Rank-KC panels in k order; within a panel of depth pinc, tile q
  /// occupies [q*mr*pinc, (q+1)*mr*pinc) — the layout a cold pack_a_ft
  /// produces per macro block, concatenated over the whole M extent.
  AlignedBuffer<StorageT> panels;
  AlignedBuffer<ComputeT> ar;  ///< operand row checksum, length k
  double amax_a = 0.0;
  /// Integrity sums over the packed panels (fixed scalar order, accumulated
  /// in ComputeT over the widened element values; see CHECK_BEFORE above):
  /// per-packed-row and per-depth totals.
  AlignedBuffer<ComputeT> rowchk;  ///< length tiles*mr
  AlignedBuffer<ComputeT> colchk;  ///< length k
  /// SEC-DED parity, one byte per 64-bit word of the packed panel bytes
  /// (core/secded.hpp); empty unless the cache had ECC enabled when this
  /// payload was encoded.  With ECC, a single flipped payload bit is
  /// *corrected* on the hit path without touching the source operand; the
  /// integrity re-verify still runs behind it as the miscorrection backstop.
  AlignedBuffer<std::uint8_t> ecc;

  [[nodiscard]] std::size_t elems() const {
    return std::size_t(tiles * mr) * std::size_t(k);
  }
  [[nodiscard]] std::size_t bytes() const {
    return elems() * sizeof(StorageT) +
           (std::size_t(k) * 2 + std::size_t(tiles * mr)) * sizeof(ComputeT) +
           ecc.size();
  }
  /// Packed tiles of the rank-KC panel starting at k-offset p (the driver's
  /// panel-loop variable, a multiple of kc).
  [[nodiscard]] const StorageT* panel_at(index_t p) const {
    return panels.data() + std::size_t(tiles * mr) * std::size_t(p);
  }
};

/// Counters for tests, stats surfaces, and the bench.
struct OperandCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t verifies = 0;   ///< CHECK_BEFORE sweeps run on hits
  std::uint64_t heals = 0;      ///< mismatches healed by re-encoding
  std::uint64_t ecc_corrected = 0;  ///< single-bit SEC-DED corrections
  std::uint64_t ecc_detected = 0;   ///< double-bit SEC-DED detections
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;        ///< resident payload bytes currently cached
};

/// What one acquire() handed the executor.
template <typename StorageT, typename ComputeT = StorageT>
struct ResidentAcquisition {
  std::shared_ptr<const ResidentAPayload<StorageT, ComputeT>> payload;
  bool hit = false;
  int heals = 0;
  int ecc_corrected = 0;  ///< payload bits SEC-DED-corrected on this hit
};

class MemoryFaultInjector;

/// Thread-safe LRU cache of ResidentAPayloads, owned by the ContextCache
/// beside the shared PlanCache.  acquire() is the one entry point: look up,
/// (re-)encode on miss, inject + CHECK_BEFORE-verify + heal on hit.
template <typename StorageT, typename ComputeT = StorageT>
class OperandCache {
 public:
  using Payload = ResidentAPayload<StorageT, ComputeT>;

  static constexpr std::size_t kDefaultCapacity = 16;
  static constexpr std::size_t kDefaultByteCapacity = 256u << 20;  // 256 MiB

  /// Caps resolve FTGEMM_OPERAND_CACHE_ENTRIES / _BYTES at construction;
  /// FTGEMM_OPERAND_ECC=1 turns the SEC-DED coding on.
  OperandCache();
  OperandCache(std::size_t capacity, std::size_t byte_capacity);

  /// Toggle SEC-DED coding of payloads (campaigns flip this at runtime).
  /// Applies to payloads encoded afterwards; existing entries keep (or
  /// lack) their parity until re-encoded.
  void set_ecc(bool on) { ecc_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool ecc() const {
    return ecc_.load(std::memory_order_relaxed);
  }

  /// Look up (encoding on miss) the resident payload for (a, plan).  On a
  /// hit, applies `mem_injector`'s planned panel flips (may be null), then —
  /// when `verify` — recomputes the integrity sums bit-exactly and heals a
  /// mismatch by re-encoding from `a`.  Thread-safe; per-entry hit
  /// processing is serialized on the entry, concurrent distinct entries
  /// proceed in parallel.
  ResidentAcquisition<StorageT, ComputeT> acquire(
      const StorageT* a, index_t lda, bool trans, ComputeT alpha,
      const GemmPlan<StorageT, ComputeT>& plan,
      MemoryFaultInjector* mem_injector, bool verify);

  /// Drop every cached payload (in-flight shared_ptrs stay valid).
  void clear();

  [[nodiscard]] OperandCacheStats stats();
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t byte_capacity() const { return byte_capacity_; }

 private:
  /// One published entry; `payload` is swappable under `m` (heals — the
  /// replacement always has the same shape, so `bytes` is immutable and
  /// readable without the slot mutex; the eviction sweep relies on that to
  /// keep a single global lock order: slot mutex before cache mutex).
  struct Slot {
    std::mutex m;
    std::shared_ptr<const Payload> payload;
    std::size_t bytes = 0;
  };
  using Entry = std::pair<OperandKey, std::shared_ptr<Slot>>;

  void evict_to_caps_locked();

  std::mutex m_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<OperandKey, typename std::list<Entry>::iterator,
                     OperandKeyHash>
      index_;
  std::size_t capacity_;
  std::size_t byte_capacity_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t verifies_ = 0;
  std::uint64_t heals_ = 0;
  std::uint64_t ecc_corrected_ = 0;
  std::uint64_t ecc_detected_ = 0;
  std::uint64_t evictions_ = 0;
  std::atomic<bool> ecc_{false};
};

extern template class OperandCache<float>;
extern template class OperandCache<double>;
extern template class OperandCache<bf16_t, float>;
extern template class OperandCache<fp16_t, float>;
// int8 payloads store raw *biased u8* packed bytes (quad layout, 4x smaller
// than an fp32 residency) with exact int32 integrity sums; alpha is pinned
// to 1 by the int8 entry points, so one payload serves every (alpha,
// QuantParams) combination of the operand.  See the specializations in
// operand_cache.cpp.
extern template class OperandCache<std::int8_t, std::int32_t>;

// ---------------------------------------------------------------------------
// Public handle: pre-encode a weight matrix once and pin its storage.
// ---------------------------------------------------------------------------

class ResidentOperand;

/// Pre-pack + pre-encode the column-major A operand of a
/// (ta, tb, m, n, k, alpha) GEMM into the process-wide resident-operand
/// cache and return a pinning handle.  `n`, `tb`, and `opts` participate
/// because the packed layout follows the shape-aware blocking plan of the
/// full problem; `ft` selects the plan family the subsequent calls will use
/// (payloads themselves are shared between FT and Ori).  Subsequent
/// ft_*gemm/*gemm calls with Options::resident_a over the same operand and
/// shape hit the warm entry.  No-op (invalid handle) for degenerate
/// problems (m, n, or k <= 0, or alpha == 0).
template <typename S, typename C = S>
ResidentOperand make_resident_a(Trans ta, Trans tb, index_t m, index_t n,
                                index_t k, C alpha, const S* a, index_t lda,
                                const Options& opts = {}, bool ft = true);

/// Opaque pin on a resident operand's storage.  Holding one guarantees the
/// encoded panels outlive LRU eviction (the cache *slot* may still be
/// evicted; a later call re-encodes on the resulting miss).  Obtained from
/// make_resident_a(); release by destruction or release().
class ResidentOperand {
 public:
  ResidentOperand() = default;

  [[nodiscard]] bool valid() const { return hold_ != nullptr; }
  [[nodiscard]] bool hit() const { return hit_; }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  void release() {
    hold_.reset();
    bytes_ = 0;
    hit_ = false;
  }

 private:
  template <typename U, typename V>
  friend ResidentOperand make_resident_a(Trans, Trans, index_t, index_t,
                                         index_t, V, const U*, index_t,
                                         const Options&, bool);
  std::shared_ptr<const void> hold_;
  std::size_t bytes_ = 0;
  bool hit_ = false;
};

extern template ResidentOperand make_resident_a<float>(Trans, Trans, index_t,
                                                       index_t, index_t,
                                                       float, const float*,
                                                       index_t,
                                                       const Options&, bool);
extern template ResidentOperand make_resident_a<double>(
    Trans, Trans, index_t, index_t, index_t, double, const double*, index_t,
    const Options&, bool);
extern template ResidentOperand make_resident_a<bf16_t, float>(
    Trans, Trans, index_t, index_t, index_t, float, const bf16_t*, index_t,
    const Options&, bool);
extern template ResidentOperand make_resident_a<fp16_t, float>(
    Trans, Trans, index_t, index_t, index_t, float, const fp16_t*, index_t,
    const Options&, bool);
extern template ResidentOperand make_resident_a<std::int8_t, std::int32_t>(
    Trans, Trans, index_t, index_t, index_t, std::int32_t, const std::int8_t*,
    index_t, const Options&, bool);

}  // namespace ftgemm
