// Workspace context: every buffer a (FT-)GEMM call needs, reusable across
// calls so steady-state invocations are allocation-free.
//
// Buffer roles mirror Fig. 1 of the paper:
//   - btilde:  the packed B panel, *shared* among all threads (lives in the
//     shared L3 on Cascade Lake),
//   - atilde:  per-thread private packed A blocks (private L2),
//   - cc/cr:   predicted checksums of C (maintained via checksum math),
//   - ccref/crref: reference checksums accumulated from computed C values,
//   - ar, bc:  operand checksums, with per-thread partials for the
//     reductions the parallel algorithm requires.
#pragma once

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "blocking/plan.hpp"
#include "core/operand_cache.hpp"
#include "core/plan.hpp"
#include "util/aligned_buffer.hpp"
#include "util/matrix.hpp"

namespace ftgemm {

template <typename StorageT, typename ComputeT = StorageT>
class GemmContext {
 public:
  using T = ComputeT;  ///< every workspace buffer is compute-precision

  /// Size all buffers for an (m, n, k) problem on `threads` threads.
  /// Grow-only: repeated calls with smaller problems reuse storage.
  void ensure(index_t m, index_t n, index_t k, const BlockingPlan& plan,
              int threads, bool ft, index_t cr_lanes = 1) {
    const auto su = [](index_t v) { return static_cast<std::size_t>(v); };
    atilde_stride_ = pad(plan.mc * plan.kc);
    atilde_.ensure(su(atilde_stride_) * su(threads));
    btilde_.ensure(su(plan.kc * plan.nc));
    if (!ft) return;
    cc_.ensure(su(m));
    ccref_.ensure(su(m));
    cr_.ensure(su(n));
    crref_.ensure(su(n));
    // Lane-strided reference partials (cr_lanes slots per column); the
    // buffer doubles as the stride-1 per-thread Cr partial during the
    // encode pass (the two uses never overlap in time).
    crref_stride_ = pad(n * cr_lanes);
    crref_part_.ensure(su(crref_stride_) * su(threads));
    ar_.ensure(su(k));
    ar_stride_ = pad(k);
    ar_part_.ensure(su(ar_stride_) * su(threads));
    bc_.ensure(su(plan.kc));
  }

  [[nodiscard]] T* atilde(int tid) {
    return atilde_.data() + static_cast<std::size_t>(atilde_stride_) *
                                static_cast<std::size_t>(tid);
  }
  [[nodiscard]] T* btilde() { return btilde_.data(); }

  [[nodiscard]] T* cc() { return cc_.data(); }
  [[nodiscard]] T* cr() { return cr_.data(); }
  [[nodiscard]] T* ccref() { return ccref_.data(); }
  [[nodiscard]] T* crref() { return crref_.data(); }
  [[nodiscard]] T* crref_part(int tid) {
    return crref_part_.data() + static_cast<std::size_t>(crref_stride_) *
                                    static_cast<std::size_t>(tid);
  }
  [[nodiscard]] T* ar() { return ar_.data(); }
  [[nodiscard]] T* ar_part(int tid) {
    return ar_part_.data() + static_cast<std::size_t>(ar_stride_) *
                                 static_cast<std::size_t>(tid);
  }
  [[nodiscard]] T* bc() { return bc_.data(); }

  /// Size all buffers for the problem a GemmPlan was built for.
  void ensure(const GemmPlan<StorageT, ComputeT>& plan) {
    ensure(plan.key.m, plan.key.n, std::max<index_t>(plan.key.k, 1),
           plan.blocking, plan.threads, plan.key.ft, plan.kernels.cr_lanes);
  }

  /// Plans this workspace's owner has built, so repeated calls of one shape
  /// skip re-planning entirely (LRU, see core/plan.hpp).
  [[nodiscard]] PlanCache<StorageT, ComputeT>& plans() { return plans_; }

 private:
  /// Pad a per-thread stride to a cache-line multiple to avoid false
  /// sharing between adjacent threads' partials.
  static index_t pad(index_t elems) {
    const index_t per_line = index_t(kCacheLineBytes / sizeof(T));
    return (elems + per_line - 1) / per_line * per_line;
  }

  AlignedBuffer<T> atilde_;
  AlignedBuffer<T> btilde_;
  AlignedBuffer<T> cc_, cr_, ccref_, crref_;
  AlignedBuffer<T> crref_part_, ar_, ar_part_, bc_;
  index_t atilde_stride_ = 0;
  index_t crref_stride_ = 0;
  index_t ar_stride_ = 0;
  PlanCache<StorageT, ComputeT> plans_;
};

/// Workspace of the int8 path (full specialization): the packed panels stay
/// 8-bit (A~ biased u8, B~ s8 — the bandwidth win of the path), the product
/// accumulates in a separate int32 buffer `cq` (the caller's float C is only
/// touched by the dequantize epilogue), the epilogue's zero-point correction
/// vectors (arow/bcol) are int32, and the checksums split by exactness
/// budget: predicted/reference Cc/Cr in int64, operand checksums Ar/Bc in
/// int32 (bounds in kernels/int8_types.hpp).  No ar partials exist — the
/// driver partitions the Ar encode over K, so threads write disjoint slices
/// and integer exactness makes the result order-independent.
template <>
class GemmContext<std::int8_t, std::int32_t> {
 public:
  void ensure(index_t m, index_t n, index_t k, const BlockingPlan& plan,
              int threads, bool ft) {
    const auto su = [](index_t v) { return static_cast<std::size_t>(v); };
    atilde_stride_ = pad<std::uint8_t>(i8_tile_bytes(plan.kc, plan.mc));
    atilde_.ensure(su(atilde_stride_) * su(threads));
    btilde_.ensure(su(i8_tile_bytes(plan.kc, plan.nc)));
    cq_.ensure(su(m) * su(n));
    arow_.ensure(su(m));
    bcol_.ensure(su(n));
    if (!ft) return;
    cc_.ensure(su(m));
    ccref_.ensure(su(m));
    cr_.ensure(su(n));
    crref_.ensure(su(n));
    crref_stride_ = pad<std::int64_t>(n);
    crref_part_.ensure(su(crref_stride_) * su(threads));
    ar_.ensure(su(k));
    bc_.ensure(su(plan.kc));
  }

  void ensure(const GemmPlan<std::int8_t, std::int32_t>& plan) {
    ensure(plan.key.m, plan.key.n, std::max<index_t>(plan.key.k, 1),
           plan.blocking, plan.threads, plan.key.ft);
  }

  [[nodiscard]] std::uint8_t* atilde(int tid) {
    return atilde_.data() + static_cast<std::size_t>(atilde_stride_) *
                                static_cast<std::size_t>(tid);
  }
  [[nodiscard]] std::int8_t* btilde() { return btilde_.data(); }
  [[nodiscard]] std::int32_t* cq() { return cq_.data(); }
  [[nodiscard]] std::int32_t* arow() { return arow_.data(); }
  [[nodiscard]] std::int32_t* bcol() { return bcol_.data(); }
  [[nodiscard]] std::int64_t* cc() { return cc_.data(); }
  [[nodiscard]] std::int64_t* cr() { return cr_.data(); }
  [[nodiscard]] std::int64_t* ccref() { return ccref_.data(); }
  [[nodiscard]] std::int64_t* crref() { return crref_.data(); }
  [[nodiscard]] std::int64_t* crref_part(int tid) {
    return crref_part_.data() + static_cast<std::size_t>(crref_stride_) *
                                    static_cast<std::size_t>(tid);
  }
  [[nodiscard]] std::int32_t* ar() { return ar_.data(); }
  [[nodiscard]] std::int32_t* bc() { return bc_.data(); }

  [[nodiscard]] PlanCache<std::int8_t, std::int32_t>& plans() {
    return plans_;
  }

 private:
  template <typename U>
  static index_t pad(index_t elems) {
    const index_t per_line = index_t(kCacheLineBytes / sizeof(U));
    return (elems + per_line - 1) / per_line * per_line;
  }

  AlignedBuffer<std::uint8_t> atilde_;
  AlignedBuffer<std::int8_t> btilde_;
  AlignedBuffer<std::int32_t> cq_, arow_, bcol_, ar_, bc_;
  AlignedBuffer<std::int64_t> cc_, cr_, ccref_, crref_, crref_part_;
  index_t atilde_stride_ = 0;
  index_t crref_stride_ = 0;
  PlanCache<std::int8_t, std::int32_t> plans_;
};

/// Thread-safe pool of GemmContexts plus a shared plan cache: the substrate
/// that makes concurrent application threads first-class submitters.
///
/// N serving threads calling (FT-)GEMM entry points simultaneously each
/// lease() a private workspace for the duration of one call and return it on
/// scope exit — so workspace memory scales with *concurrency*, not with the
/// number of threads that have ever called in, and a recurring shape is
/// planned once process-wide instead of once per thread.  Grow-only, like
/// the contexts it holds: a steady-state workload allocates on the first
/// call of each concurrency level and never again.  Context addresses are
/// stable (held by unique_ptr) for the lifetime of the cache.
///
/// lease() and plan() are fully thread-safe (a free-list mutex and a plan
/// mutex; both are microseconds-scale costs next to any GEMM).  The leased
/// GemmContext itself is single-owner for the lease's lifetime, exactly like
/// the per-thread contexts it replaces.
template <typename StorageT, typename ComputeT = StorageT>
class ContextCache {
 public:
  using Context = GemmContext<StorageT, ComputeT>;
  using Plan = GemmPlan<StorageT, ComputeT>;

  /// RAII workspace lease; returns the context to the free list on
  /// destruction.  Move-only.
  class Lease {
   public:
    Lease() = default;
    Lease(Context* ctx, ContextCache* owner)
        : ctx_(ctx), owner_(owner) {}
    Lease(Lease&& o) noexcept
        : ctx_(std::exchange(o.ctx_, nullptr)),
          owner_(std::exchange(o.owner_, nullptr)) {}
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        ctx_ = std::exchange(o.ctx_, nullptr);
        owner_ = std::exchange(o.owner_, nullptr);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] Context& operator*() const { return *ctx_; }
    [[nodiscard]] Context* operator->() const { return ctx_; }

   private:
    void release() {
      if (owner_ != nullptr) owner_->release(ctx_);
      ctx_ = nullptr;
      owner_ = nullptr;
    }
    Context* ctx_ = nullptr;
    ContextCache* owner_ = nullptr;
  };

  /// Lease a private workspace (growing the pool if every context is
  /// currently out on loan).  Thread-safe.
  [[nodiscard]] Lease lease() {
    std::lock_guard<std::mutex> lk(m_);
    if (free_.empty()) {
      contexts_.push_back(std::make_unique<Context>());
      free_.push_back(contexts_.back().get());
    }
    Context* ctx = free_.back();
    free_.pop_back();
    ++outstanding_;
    return Lease(ctx, this);
  }

  /// Look up (building on miss) the shared plan for (shape, opts).
  /// Thread-safe; every submitter of a recurring shape gets the same
  /// immutable plan.
  [[nodiscard]] std::shared_ptr<const Plan> plan(
      Trans ta, Trans tb, index_t m, index_t n, index_t k,
      const Options& opts, bool ft) {
    // The key resolves env/topology reads *outside* the lock.  The memory
    // injector rides along so PlanCache hits expose the kPlan strike
    // surface (and verify + heal against it).
    return plan(make_plan_key(ta, tb, m, n, k, opts, ft),
                opts.memory_injector);
  }

  /// Same lookup for a pre-built key (callers that already resolved the
  /// fingerprint — the serving layer's admission path — skip the second
  /// env/topology resolution).
  [[nodiscard]] std::shared_ptr<const Plan> plan(
      const PlanKey& key, MemoryFaultInjector* mem_injector = nullptr) {
    // Stamp the storage dtype (make_plan_key is dtype-blind) so every plan
    // this typed cache hands out carries its discriminator.
    PlanKey stamped = key;
    stamped.sdtype = kStorageDtypeTag<StorageT>;
    std::lock_guard<std::mutex> lk(plan_m_);
    return plans_.get_or_build(stamped, mem_injector);
  }

  /// Drop every cached plan (thread-safe; see clear_process_caches).
  void clear_plans() {
    std::lock_guard<std::mutex> lk(plan_m_);
    plans_.clear();
  }

  /// The shared resident-operand cache living beside the plan cache: every
  /// submitter of a recurring weight matrix gets the same encoded panels.
  /// Thread-safe (internally locked).
  [[nodiscard]] OperandCache<StorageT, ComputeT>& operands() { return operands_; }

  /// Drop every resident operand payload (in-flight calls holding a
  /// shared_ptr stay valid; see clear_process_caches).
  void clear_operands() { operands_.clear(); }

  [[nodiscard]] std::uint64_t plan_hits() {
    std::lock_guard<std::mutex> lk(plan_m_);
    return plans_.hits();
  }
  [[nodiscard]] std::uint64_t plan_misses() {
    std::lock_guard<std::mutex> lk(plan_m_);
    return plans_.misses();
  }
  [[nodiscard]] std::uint64_t plan_heals() {
    std::lock_guard<std::mutex> lk(plan_m_);
    return plans_.heals();
  }

  /// Contexts ever created / currently out on loan (diagnostics, tests).
  [[nodiscard]] int size() {
    std::lock_guard<std::mutex> lk(m_);
    return int(contexts_.size());
  }
  [[nodiscard]] int outstanding() {
    std::lock_guard<std::mutex> lk(m_);
    return outstanding_;
  }

 private:
  void release(Context* ctx) {
    std::lock_guard<std::mutex> lk(m_);
    free_.push_back(ctx);
    --outstanding_;
  }

  std::mutex m_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::vector<Context*> free_;
  int outstanding_ = 0;
  std::mutex plan_m_;
  PlanCache<StorageT, ComputeT> plans_;
  OperandCache<StorageT, ComputeT> operands_;
};

/// The process-wide context pool + shared plan cache backing the free
/// functions and the batched entry points.  GemmEngine deliberately keeps
/// its own private context instead (an engine is a single-owner object).
template <typename StorageT, typename ComputeT = StorageT>
inline ContextCache<StorageT, ComputeT>& process_context_cache() {
  static ContextCache<StorageT, ComputeT> cache;
  return cache;
}

}  // namespace ftgemm
