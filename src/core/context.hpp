// Workspace context: every buffer a (FT-)GEMM call needs, reusable across
// calls so steady-state invocations are allocation-free.
//
// Buffer roles mirror Fig. 1 of the paper:
//   - btilde:  the packed B panel, *shared* among all threads (lives in the
//     shared L3 on Cascade Lake),
//   - atilde:  per-thread private packed A blocks (private L2),
//   - cc/cr:   predicted checksums of C (maintained via checksum math),
//   - ccref/crref: reference checksums accumulated from computed C values,
//   - ar, bc:  operand checksums, with per-thread partials for the
//     reductions the parallel algorithm requires.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "blocking/plan.hpp"
#include "core/plan.hpp"
#include "util/aligned_buffer.hpp"
#include "util/matrix.hpp"

namespace ftgemm {

template <typename T>
class GemmContext {
 public:
  /// Size all buffers for an (m, n, k) problem on `threads` threads.
  /// Grow-only: repeated calls with smaller problems reuse storage.
  void ensure(index_t m, index_t n, index_t k, const BlockingPlan& plan,
              int threads, bool ft, index_t cr_lanes = 1) {
    const auto su = [](index_t v) { return static_cast<std::size_t>(v); };
    atilde_stride_ = pad(plan.mc * plan.kc);
    atilde_.ensure(su(atilde_stride_) * su(threads));
    btilde_.ensure(su(plan.kc * plan.nc));
    if (!ft) return;
    cc_.ensure(su(m));
    ccref_.ensure(su(m));
    cr_.ensure(su(n));
    crref_.ensure(su(n));
    // Lane-strided reference partials (cr_lanes slots per column); the
    // buffer doubles as the stride-1 per-thread Cr partial during the
    // encode pass (the two uses never overlap in time).
    crref_stride_ = pad(n * cr_lanes);
    crref_part_.ensure(su(crref_stride_) * su(threads));
    ar_.ensure(su(k));
    ar_stride_ = pad(k);
    ar_part_.ensure(su(ar_stride_) * su(threads));
    bc_.ensure(su(plan.kc));
  }

  [[nodiscard]] T* atilde(int tid) {
    return atilde_.data() + static_cast<std::size_t>(atilde_stride_) *
                                static_cast<std::size_t>(tid);
  }
  [[nodiscard]] T* btilde() { return btilde_.data(); }

  [[nodiscard]] T* cc() { return cc_.data(); }
  [[nodiscard]] T* cr() { return cr_.data(); }
  [[nodiscard]] T* ccref() { return ccref_.data(); }
  [[nodiscard]] T* crref() { return crref_.data(); }
  [[nodiscard]] T* crref_part(int tid) {
    return crref_part_.data() + static_cast<std::size_t>(crref_stride_) *
                                    static_cast<std::size_t>(tid);
  }
  [[nodiscard]] T* ar() { return ar_.data(); }
  [[nodiscard]] T* ar_part(int tid) {
    return ar_part_.data() + static_cast<std::size_t>(ar_stride_) *
                                 static_cast<std::size_t>(tid);
  }
  [[nodiscard]] T* bc() { return bc_.data(); }

  /// Size all buffers for the problem a GemmPlan was built for.
  void ensure(const GemmPlan<T>& plan) {
    ensure(plan.key.m, plan.key.n, std::max<index_t>(plan.key.k, 1),
           plan.blocking, plan.threads, plan.key.ft, plan.kernels.cr_lanes);
  }

  /// Plans this workspace's owner has built, so repeated calls of one shape
  /// skip re-planning entirely (LRU, see core/plan.hpp).
  [[nodiscard]] PlanCache<T>& plans() { return plans_; }

 private:
  /// Pad a per-thread stride to a cache-line multiple to avoid false
  /// sharing between adjacent threads' partials.
  static index_t pad(index_t elems) {
    const index_t per_line = index_t(kCacheLineBytes / sizeof(T));
    return (elems + per_line - 1) / per_line * per_line;
  }

  AlignedBuffer<T> atilde_;
  AlignedBuffer<T> btilde_;
  AlignedBuffer<T> cc_, cr_, ccref_, crref_;
  AlignedBuffer<T> crref_part_, ar_, ar_part_, bc_;
  index_t atilde_stride_ = 0;
  index_t crref_stride_ = 0;
  index_t ar_stride_ = 0;
  PlanCache<T> plans_;
};

/// Pool of GemmContexts for the batched scheduler: one slot per concurrent
/// worker, so inter-batch parallelism gives every in-flight problem its own
/// workspace.  Grow-only, like the contexts it holds — a steady-state batch
/// workload allocates on the first call and never again.  Slot addresses are
/// stable across grow() calls (contexts are held by unique_ptr), so worker
/// threads may keep references while another batch geometry is being
/// prepared.
///
/// Not thread-safe for concurrent grow(); callers grow once up front and
/// then hand disjoint slots to the workers (which is exactly the batched
/// driver's access pattern).
template <typename T>
class ContextCache {
 public:
  /// Make at least `slots` contexts available.
  void grow(int slots) {
    while (int(slots_.size()) < slots)
      slots_.push_back(std::make_unique<GemmContext<T>>());
  }

  [[nodiscard]] int size() const { return int(slots_.size()); }

  [[nodiscard]] GemmContext<T>& slot(int i) { return *slots_[std::size_t(i)]; }

  /// Batch-level plan cache: one batched call plans its shape once here and
  /// every worker slot executes the same immutable plan.
  [[nodiscard]] PlanCache<T>& plans() { return plans_; }

 private:
  std::vector<std::unique_ptr<GemmContext<T>>> slots_;
  PlanCache<T> plans_;
};

}  // namespace ftgemm
