// int8-quantized (FT-)GEMM public API: the first non-float compute path
// through the stack.
//
//   C = alpha * real(A) * real(B) + beta * C,   C and alpha/beta fp32,
//   real(X) = scale_x * (Xq - zero_x)           (per-tensor QuantParams),
//
// computed entirely in integers — s8 operands packed as biased u8 x s8,
// int32 accumulation (AVX-512 VNNI `vpdpbusd` where the CPU has it, an
// exact AVX2 `pmaddwd` emulation or scalar otherwise), int64/int32
// checksums — and dequantized once at the C write-back.  The fused ABFT
// scheme of the float paths applies verbatim, but with a stronger contract:
// every checksummed quantity is an integer, so verification compares at
// tolerance ZERO — a clean run can never false-positive, and any single
// in-panel strike perturbs a row/column sum by its exact integer delta and
// is caught and corrected exactly (docs/DESIGN.md §11).
//
// Argument rules beyond valid_gemm_args: k must not exceed kI8MaxDepth
// (65793 — the depth at which an int32 accumulator could wrap; see
// kernels/int8_types.hpp).  Deeper calls are rejected with invalid_args
// set, C untouched — exactness is a contract, not a fast path.
//
// QuantParams travel with the call, not the plan: like alpha/beta they are
// operand values no plan fingerprint covers, and the integer core never
// sees them (the epilogue undoes zero points via two O(m)+O(n) side
// vectors, so zero-point handling costs nothing per k).
//
// Options::resident_a works on this path too, at its best ratio: resident
// panels hold 8-bit bytes (4x smaller than fp32 residency) and their
// integrity row sums double as the epilogue's arow vector.  The resident
// payload is alpha/QuantParams-independent — one encoding serves every
// (alpha, qp) combination of the same operand.
#pragma once

#include "core/gemm.hpp"
#include "core/gemm_batched.hpp"
#include "core/operand_cache.hpp"
#include "kernels/int8_types.hpp"

namespace ftgemm {

/// C = alpha*sa*sb * sum_k (op(Aq)-za)(op(Bq)-zb) + beta*C, no fault
/// tolerance ("Ori" of the int8 path).
void gemm_i8(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
             index_t k, float alpha, const std::int8_t* a, index_t lda,
             const std::int8_t* b, index_t ldb, float beta, float* c,
             index_t ldc, const QuantParams& qp = {},
             const Options& opts = {});

/// Fault-tolerant gemm_i8: fused integer ABFT with exact (tolerance-zero)
/// per-panel verification and exact correction.
FtReport ft_gemm_i8(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                    index_t k, float alpha, const std::int8_t* a, index_t lda,
                    const std::int8_t* b, index_t ldb, float beta, float* c,
                    index_t ldc, const QuantParams& qp = {},
                    const Options& opts = {});

// ---------------------------------------------------------------------------
// Batched forms (core/gemm_batched.hpp semantics; one QuantParams for the
// whole batch — serving batches share one quantization per layer).
// ---------------------------------------------------------------------------

BatchReport gemm_i8_batched(Layout layout, Trans ta, Trans tb, index_t m,
                            index_t n, index_t k, float alpha,
                            const std::int8_t* const* a, index_t lda,
                            const std::int8_t* const* b, index_t ldb,
                            float beta, float* const* c, index_t ldc,
                            index_t batch, const QuantParams& qp = {},
                            const BatchOptions& opts = {});

BatchReport ft_gemm_i8_batched(Layout layout, Trans ta, Trans tb, index_t m,
                               index_t n, index_t k, float alpha,
                               const std::int8_t* const* a, index_t lda,
                               const std::int8_t* const* b, index_t ldb,
                               float beta, float* const* c, index_t ldc,
                               index_t batch, const QuantParams& qp = {},
                               const BatchOptions& opts = {});

BatchReport gemm_i8_strided_batched(Layout layout, Trans ta, Trans tb,
                                    index_t m, index_t n, index_t k,
                                    float alpha, const std::int8_t* a,
                                    index_t lda, index_t stride_a,
                                    const std::int8_t* b, index_t ldb,
                                    index_t stride_b, float beta, float* c,
                                    index_t ldc, index_t stride_c,
                                    index_t batch, const QuantParams& qp = {},
                                    const BatchOptions& opts = {});

BatchReport ft_gemm_i8_strided_batched(
    Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
    float alpha, const std::int8_t* a, index_t lda, index_t stride_a,
    const std::int8_t* b, index_t ldb, index_t stride_b, float beta, float* c,
    index_t ldc, index_t stride_c, index_t batch, const QuantParams& qp = {},
    const BatchOptions& opts = {});

/// Pre-pack + pre-encode an int8 weight matrix into the process-wide
/// resident-operand cache (see make_resident_a; the int8 payload is
/// alpha/QuantParams-independent, so no scale argument exists here).
/// Invalid handle for degenerate problems or k > kI8MaxDepth.
ResidentOperand make_resident_a_i8(Trans ta, Trans tb, index_t m, index_t n,
                                   index_t k, const std::int8_t* a,
                                   index_t lda, const Options& opts = {},
                                   bool ft = true);

/// Engine of the int8 path (full specialization: the generic engine's
/// ComputeT alpha/beta/C signature would demand int32 scales and an int32
/// C, but the quantized contract is fp32 scales and an fp32 C fed by the
/// dequantize epilogue — and every call carries its QuantParams).
template <>
class GemmEngine<std::int8_t, std::int32_t> {
 public:
  explicit GemmEngine(Options opts = {}) : opts_(opts) {}

  /// Plain high-performance int8 GEMM ("Ori").
  void gemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
            index_t k, float alpha, const std::int8_t* a, index_t lda,
            const std::int8_t* b, index_t ldb, float beta, float* c,
            index_t ldc, const QuantParams& qp = {});

  /// Fault-tolerant int8 GEMM (exact integer ABFT).
  FtReport ft_gemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                   index_t k, float alpha, const std::int8_t* a, index_t lda,
                   const std::int8_t* b, index_t ldb, float beta, float* c,
                   index_t ldc, const QuantParams& qp = {});

  [[nodiscard]] Options& options() { return opts_; }
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  Options opts_;
  GemmContext<std::int8_t, std::int32_t> ctx_;
};

using GemmEngineI8 = GemmEngine<std::int8_t, std::int32_t>;

}  // namespace ftgemm
