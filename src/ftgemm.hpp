// FT-GEMM — umbrella header.
//
// Reproduction of "FT-GEMM: A Fault Tolerant High Performance GEMM
// Implementation on x86 CPUs" (Wu et al., HPDC '23).  See README.md for a
// tour and docs/DESIGN.md for the architecture.
//
//   #include <ftgemm.hpp>
//
//   ftgemm::Matrix<double> A(m, k), B(k, n), C(m, n);
//   ...fill...
//   ftgemm::FtReport rep = ftgemm::ft_dgemm(
//       ftgemm::Layout::kColMajor, ftgemm::Trans::kNoTrans,
//       ftgemm::Trans::kNoTrans, m, n, k, 1.0, A.data(), A.ld(),
//       B.data(), B.ld(), 0.0, C.data(), C.ld());
//   assert(rep.clean());
#pragma once

#include "arch/cpu_features.hpp"   // IWYU pragma: export
#include "arch/isa.hpp"            // IWYU pragma: export
#include "baseline/naive_gemm.hpp" // IWYU pragma: export
#include "baseline/unfused_abft.hpp" // IWYU pragma: export
#include "blocking/plan.hpp"       // IWYU pragma: export
#include "core/gemm.hpp"           // IWYU pragma: export
#include "core/gemm_batched.hpp"   // IWYU pragma: export
#include "core/operand_cache.hpp"  // IWYU pragma: export
#include "core/options.hpp"        // IWYU pragma: export
#include "core/plan.hpp"           // IWYU pragma: export
#include "ftblas/level1.hpp"       // IWYU pragma: export
#include "ftblas/level2.hpp"       // IWYU pragma: export
#include "inject/injectors.hpp"    // IWYU pragma: export
#include "serve/service.hpp"       // IWYU pragma: export
#include "util/matrix.hpp"         // IWYU pragma: export
#include "util/stats.hpp"          // IWYU pragma: export
#include "util/timer.hpp"          // IWYU pragma: export
