// Remaining DMR-protected Level-1 routines of the FT-BLAS substrate:
// asum, iamax, copy, swap, rot — plus a TMR (triple modular redundancy)
// variant of dot as an extension point.
//
// copy/swap move data without arithmetic; their "FT" variants verify the
// destination against the source after the move (detecting a faulty store
// path), which is the strongest guarantee redundancy can give for pure data
// movement.  rot and asum follow the same block-DMR pattern as level1.hpp.
#pragma once

#include "ftblas/level1.hpp"

namespace ftgemm::ftblas {

// -- asum: return sum |x_i| ---------------------------------------------------
double dasum(index_t n, const double* x, index_t incx);
double ft_dasum(index_t n, const double* x, index_t incx,
                DmrReport* report = nullptr,
                const StreamFaultHook& hook = {});

// -- iamax: index of max |x_i| (first occurrence; -1 for n <= 0) -------------
index_t idamax(index_t n, const double* x, index_t incx);
index_t ft_idamax(index_t n, const double* x, index_t incx,
                  DmrReport* report = nullptr);

// -- copy / swap --------------------------------------------------------------
void dcopy(index_t n, const double* x, index_t incx, double* y,
           index_t incy);
DmrReport ft_dcopy(index_t n, const double* x, index_t incx, double* y,
                   index_t incy, const StreamFaultHook& hook = {});

void dswap(index_t n, double* x, index_t incx, double* y, index_t incy);
DmrReport ft_dswap(index_t n, double* x, index_t incx, double* y,
                   index_t incy);

// -- rot: plane rotation [x; y] <- [c s; -s c][x; y] --------------------------
void drot(index_t n, double* x, index_t incx, double* y, index_t incy,
          double c, double s);
DmrReport ft_drot(index_t n, double* x, index_t incx, double* y,
                  index_t incy, double c, double s,
                  const StreamFaultHook& hook = {});

// -- TMR extension: dot with triple redundancy + majority vote ---------------
// Detects AND masks a fault without recomputation (one more stream than
// DMR); the FT-BLAS paper leaves this as a design alternative — included
// here so the ablation bench can compare the two.
double tmr_ddot(index_t n, const double* x, index_t incx, const double* y,
                index_t incy, DmrReport* report = nullptr,
                const StreamFaultHook& hook = {});

}  // namespace ftgemm::ftblas
