// Remaining DMR-protected Level-2 routines of the FT-BLAS substrate:
// ger (rank-1 update), trmv and trsv (triangular multiply / solve).
//
// trsv is the interesting one: the solve has a sequential dependency, so
// the redundancy runs the full forward/back substitution twice and compares
// block results before committing — the FT-BLAS recipe for routines whose
// outputs feed their own later computation.
#pragma once

#include "core/options.hpp"
#include "ftblas/level1.hpp"

namespace ftgemm::ftblas {

/// Which triangle of the matrix holds the data.
enum class Uplo { kUpper, kLower };

// -- ger: A += alpha * x * yᵀ -------------------------------------------------
void dger(index_t m, index_t n, double alpha, const double* x, index_t incx,
          const double* y, index_t incy, double* a, index_t lda);
DmrReport ft_dger(index_t m, index_t n, double alpha, const double* x,
                  index_t incx, const double* y, index_t incy, double* a,
                  index_t lda, const StreamFaultHook& hook = {});

// -- trmv: x = op(T) * x (unit or non-unit diagonal not supported: non-unit) --
void dtrmv(Uplo uplo, Trans trans, index_t n, const double* a, index_t lda,
           double* x, index_t incx);
DmrReport ft_dtrmv(Uplo uplo, Trans trans, index_t n, const double* a,
                   index_t lda, double* x, index_t incx,
                   const StreamFaultHook& hook = {});

// -- trsv: solve op(T) * x = b in place (non-unit diagonal) -------------------
void dtrsv(Uplo uplo, Trans trans, index_t n, const double* a, index_t lda,
           double* x, index_t incx);
DmrReport ft_dtrsv(Uplo uplo, Trans trans, index_t n, const double* a,
                   index_t lda, double* x, index_t incx,
                   const StreamFaultHook& hook = {});

}  // namespace ftgemm::ftblas
