#include "ftblas/level1.hpp"

#include <algorithm>
#include <cmath>

namespace ftgemm::ftblas {

namespace {

/// Block length for DMR verification: small enough to stay in L1, large
/// enough to amortize the per-block compare.
constexpr index_t kBlock = 512;

}  // namespace

// ---------------------------------------------------------------------------
// scal
// ---------------------------------------------------------------------------

void dscal(index_t n, double alpha, double* x, index_t incx) {
  if (incx == 1) {
    for (index_t i = 0; i < n; ++i) x[i] *= alpha;
  } else {
    for (index_t i = 0; i < n; ++i) x[i * incx] *= alpha;
  }
}

DmrReport ft_dscal(index_t n, double alpha, double* x, index_t incx,
                   const StreamFaultHook& hook) {
  DmrReport report;
  double tmp1[kBlock];
  double tmp2[kBlock];
  for (index_t start = 0; start < n; start += kBlock) {
    const index_t len = std::min(kBlock, n - start);
    double alpha2 = alpha;
    dmr_shield(alpha2);
    for (index_t i = 0; i < len; ++i) {
      const double v = x[(start + i) * incx];
      tmp1[i] = alpha * v;
      tmp2[i] = alpha2 * v;
    }
    if (hook) hook(tmp1, start, len);
    bool mismatch = false;
    for (index_t i = 0; i < len; ++i) mismatch |= (tmp1[i] != tmp2[i]);
    if (mismatch) {
      ++report.faults_detected;
      ++report.recomputations;
      for (index_t i = 0; i < len; ++i)
        tmp1[i] = alpha * x[(start + i) * incx];
    }
    for (index_t i = 0; i < len; ++i) x[(start + i) * incx] = tmp1[i];
  }
  return report;
}

// ---------------------------------------------------------------------------
// axpy
// ---------------------------------------------------------------------------

void daxpy(index_t n, double alpha, const double* x, index_t incx, double* y,
           index_t incy) {
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  } else {
    for (index_t i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
  }
}

DmrReport ft_daxpy(index_t n, double alpha, const double* x, index_t incx,
                   double* y, index_t incy, const StreamFaultHook& hook) {
  DmrReport report;
  double tmp1[kBlock];
  double tmp2[kBlock];
  for (index_t start = 0; start < n; start += kBlock) {
    const index_t len = std::min(kBlock, n - start);
    double alpha2 = alpha;
    dmr_shield(alpha2);
    for (index_t i = 0; i < len; ++i) {
      const double xv = x[(start + i) * incx];
      const double yv = y[(start + i) * incy];
      tmp1[i] = alpha * xv + yv;
      tmp2[i] = alpha2 * xv + yv;
    }
    if (hook) hook(tmp1, start, len);
    bool mismatch = false;
    for (index_t i = 0; i < len; ++i) mismatch |= (tmp1[i] != tmp2[i]);
    if (mismatch) {
      ++report.faults_detected;
      ++report.recomputations;
      for (index_t i = 0; i < len; ++i)
        tmp1[i] = alpha * x[(start + i) * incx] + y[(start + i) * incy];
    }
    for (index_t i = 0; i < len; ++i) y[(start + i) * incy] = tmp1[i];
  }
  return report;
}

// ---------------------------------------------------------------------------
// dot
// ---------------------------------------------------------------------------

namespace {

double dot_block(index_t n, const double* x, index_t incx, const double* y,
                 index_t incy) {
  constexpr index_t kLanes = 8;
  double lane[kLanes] = {};
  if (incx == 1 && incy == 1) {
    const index_t tail = n - n % kLanes;
    for (index_t i = 0; i < tail; i += kLanes)
      for (index_t l = 0; l < kLanes; ++l) lane[l] += x[i + l] * y[i + l];
    double sum = 0.0;
    for (index_t l = 0; l < kLanes; ++l) sum += lane[l];
    for (index_t i = tail; i < n; ++i) sum += x[i] * y[i];
    return sum;
  }
  double sum = 0.0;
  for (index_t i = 0; i < n; ++i) sum += x[i * incx] * y[i * incy];
  return sum;
}

}  // namespace

double ddot(index_t n, const double* x, index_t incx, const double* y,
            index_t incy) {
  return dot_block(n, x, incx, y, incy);
}

double ft_ddot(index_t n, const double* x, index_t incx, const double* y,
               index_t incy, DmrReport* report, const StreamFaultHook& hook) {
  double sum1 = 0.0;
  double sum2 = 0.0;
  for (index_t start = 0; start < n; start += kBlock) {
    const index_t len = std::min(kBlock, n - start);
    double s1 = dot_block(len, x + start * incx, incx, y + start * incy, incy);
    double s2 = s1;
    dmr_shield(s2);
    // Redundant copy: recompute the block with shielded inputs so the two
    // accumulations cannot be merged.
    double s2b = dot_block(len, x + start * incx, incx, y + start * incy,
                           incy);
    dmr_shield(s2b);
    s2 = s2b;
    if (hook) hook(&s1, start, 1);
    if (s1 != s2) {
      if (report != nullptr) {
        ++report->faults_detected;
        ++report->recomputations;
      }
      s1 = dot_block(len, x + start * incx, incx, y + start * incy, incy);
    }
    sum1 += s1;
    sum2 += s2;
  }
  (void)sum2;
  return sum1;
}

// ---------------------------------------------------------------------------
// nrm2
// ---------------------------------------------------------------------------

double dnrm2(index_t n, const double* x, index_t incx) {
  return std::sqrt(dot_block(n, x, incx, x, incx));
}

double ft_dnrm2(index_t n, const double* x, index_t incx, DmrReport* report) {
  const double ss1 = ft_ddot(n, x, incx, x, incx, report);
  return std::sqrt(ss1);
}

}  // namespace ftgemm::ftblas
