#include "ftblas/level2.hpp"

#include <algorithm>

namespace ftgemm::ftblas {

namespace {

constexpr index_t kYBlock = 512;

/// Accumulate acc[0..len) += alpha * A_block · x for rows [r0, r0+len) of
/// the non-transposed column-major A.
void gemv_notrans_block(index_t len, index_t n, double alpha, const double* a,
                        index_t lda, index_t r0, const double* x,
                        index_t incx, double* __restrict__ acc) {
  for (index_t j = 0; j < n; ++j) {
    const double axj = alpha * x[j * incx];
    const double* __restrict__ col = a + r0 + j * lda;
    for (index_t i = 0; i < len; ++i) acc[i] += col[i] * axj;
  }
}

/// acc[0..len) += alpha * (Aᵀ x)[r0..r0+len): entry r is column r of A
/// dotted with x.
void gemv_trans_block(index_t len, index_t m, double alpha, const double* a,
                      index_t lda, index_t r0, const double* x, index_t incx,
                      double* __restrict__ acc) {
  for (index_t r = 0; r < len; ++r) {
    const double* __restrict__ col = a + (r0 + r) * lda;
    double lane[8] = {};
    const index_t tail = m - m % 8;
    if (incx == 1) {
      for (index_t i = 0; i < tail; i += 8)
        for (index_t l = 0; l < 8; ++l) lane[l] += col[i + l] * x[i + l];
      double sum = 0.0;
      for (index_t l = 0; l < 8; ++l) sum += lane[l];
      for (index_t i = tail; i < m; ++i) sum += col[i] * x[i];
      acc[r] += alpha * sum;
    } else {
      double sum = 0.0;
      for (index_t i = 0; i < m; ++i) sum += col[i] * x[i * incx];
      acc[r] += alpha * sum;
    }
  }
}

}  // namespace

void dgemv(Trans trans, index_t m, index_t n, double alpha, const double* a,
           index_t lda, const double* x, index_t incx, double beta, double* y,
           index_t incy) {
  const index_t ylen = trans == Trans::kNoTrans ? m : n;
  double acc[kYBlock];
  for (index_t r0 = 0; r0 < ylen; r0 += kYBlock) {
    const index_t len = std::min(kYBlock, ylen - r0);
    std::fill(acc, acc + len, 0.0);
    if (trans == Trans::kNoTrans) {
      gemv_notrans_block(len, n, alpha, a, lda, r0, x, incx, acc);
    } else {
      gemv_trans_block(len, m, alpha, a, lda, r0, x, incx, acc);
    }
    for (index_t i = 0; i < len; ++i) {
      double& out = y[(r0 + i) * incy];
      out = acc[i] + (beta == 0.0 ? 0.0 : beta * out);
    }
  }
}

DmrReport ft_dgemv(Trans trans, index_t m, index_t n, double alpha,
                   const double* a, index_t lda, const double* x,
                   index_t incx, double beta, double* y, index_t incy,
                   const StreamFaultHook& hook) {
  DmrReport report;
  const index_t ylen = trans == Trans::kNoTrans ? m : n;
  double acc1[kYBlock];
  double acc2[kYBlock];
  for (index_t r0 = 0; r0 < ylen; r0 += kYBlock) {
    const index_t len = std::min(kYBlock, ylen - r0);
    double alpha2 = alpha;
    dmr_shield(alpha2);
    std::fill(acc1, acc1 + len, 0.0);
    std::fill(acc2, acc2 + len, 0.0);
    if (trans == Trans::kNoTrans) {
      gemv_notrans_block(len, n, alpha, a, lda, r0, x, incx, acc1);
      gemv_notrans_block(len, n, alpha2, a, lda, r0, x, incx, acc2);
    } else {
      gemv_trans_block(len, m, alpha, a, lda, r0, x, incx, acc1);
      gemv_trans_block(len, m, alpha2, a, lda, r0, x, incx, acc2);
    }
    if (hook) hook(acc1, r0, len);
    bool mismatch = false;
    for (index_t i = 0; i < len; ++i) mismatch |= (acc1[i] != acc2[i]);
    if (mismatch) {
      ++report.faults_detected;
      ++report.recomputations;
      std::fill(acc1, acc1 + len, 0.0);
      if (trans == Trans::kNoTrans) {
        gemv_notrans_block(len, n, alpha, a, lda, r0, x, incx, acc1);
      } else {
        gemv_trans_block(len, m, alpha, a, lda, r0, x, incx, acc1);
      }
    }
    for (index_t i = 0; i < len; ++i) {
      double& out = y[(r0 + i) * incy];
      out = acc1[i] + (beta == 0.0 ? 0.0 : beta * out);
    }
  }
  return report;
}

}  // namespace ftgemm::ftblas
