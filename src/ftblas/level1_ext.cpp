#include "ftblas/level1_ext.hpp"

#include <algorithm>
#include <cmath>

namespace ftgemm::ftblas {

namespace {

constexpr index_t kBlock = 512;

double asum_block(index_t n, const double* x, index_t incx) {
  constexpr index_t kLanes = 8;
  if (incx == 1) {
    double lane[kLanes] = {};
    const index_t tail = n - n % kLanes;
    for (index_t i = 0; i < tail; i += kLanes)
      for (index_t l = 0; l < kLanes; ++l) lane[l] += std::abs(x[i + l]);
    double sum = 0.0;
    for (index_t l = 0; l < kLanes; ++l) sum += lane[l];
    for (index_t i = tail; i < n; ++i) sum += std::abs(x[i]);
    return sum;
  }
  double sum = 0.0;
  for (index_t i = 0; i < n; ++i) sum += std::abs(x[i * incx]);
  return sum;
}

}  // namespace

// ---------------------------------------------------------------------------
// asum
// ---------------------------------------------------------------------------

double dasum(index_t n, const double* x, index_t incx) {
  return asum_block(n, x, incx);
}

double ft_dasum(index_t n, const double* x, index_t incx, DmrReport* report,
                const StreamFaultHook& hook) {
  double total = 0.0;
  for (index_t start = 0; start < n; start += kBlock) {
    const index_t len = std::min(kBlock, n - start);
    double s1 = asum_block(len, x + start * incx, incx);
    double s2 = asum_block(len, x + start * incx, incx);
    dmr_shield(s2);
    if (hook) hook(&s1, start, 1);
    if (s1 != s2) {
      if (report != nullptr) {
        ++report->faults_detected;
        ++report->recomputations;
      }
      s1 = asum_block(len, x + start * incx, incx);
    }
    total += s1;
  }
  return total;
}

// ---------------------------------------------------------------------------
// iamax
// ---------------------------------------------------------------------------

index_t idamax(index_t n, const double* x, index_t incx) {
  if (n <= 0) return -1;
  index_t best = 0;
  double best_abs = std::abs(x[0]);
  for (index_t i = 1; i < n; ++i) {
    const double v = std::abs(x[i * incx]);
    if (v > best_abs) {
      best_abs = v;
      best = i;
    }
  }
  return best;
}

index_t ft_idamax(index_t n, const double* x, index_t incx,
                  DmrReport* report) {
  if (n <= 0) return -1;
  index_t i1 = idamax(n, x, incx);
  index_t i2 = idamax(n, x, incx);
  // An index is integer data; shielding via the fp constraint does not
  // apply, so compare and recompute on mismatch (a fault in the comparison
  // chain produces a wrong index).
  if (i1 != i2) {
    if (report != nullptr) {
      ++report->faults_detected;
      ++report->recomputations;
    }
    i1 = idamax(n, x, incx);
  }
  return i1;
}

// ---------------------------------------------------------------------------
// copy / swap
// ---------------------------------------------------------------------------

void dcopy(index_t n, const double* x, index_t incx, double* y,
           index_t incy) {
  for (index_t i = 0; i < n; ++i) y[i * incy] = x[i * incx];
}

DmrReport ft_dcopy(index_t n, const double* x, index_t incx, double* y,
                   index_t incy, const StreamFaultHook& hook) {
  DmrReport report;
  for (index_t start = 0; start < n; start += kBlock) {
    const index_t len = std::min(kBlock, n - start);
    for (index_t i = 0; i < len; ++i)
      y[(start + i) * incy] = x[(start + i) * incx];
    if (hook) hook(y + start * incy, start, len);
    // Verify the stored destination block against the source.
    bool mismatch = false;
    for (index_t i = 0; i < len; ++i)
      mismatch |= (y[(start + i) * incy] != x[(start + i) * incx]);
    if (mismatch) {
      ++report.faults_detected;
      ++report.recomputations;
      for (index_t i = 0; i < len; ++i)
        y[(start + i) * incy] = x[(start + i) * incx];
    }
  }
  return report;
}

void dswap(index_t n, double* x, index_t incx, double* y, index_t incy) {
  for (index_t i = 0; i < n; ++i) std::swap(x[i * incx], y[i * incy]);
}

DmrReport ft_dswap(index_t n, double* x, index_t incx, double* y,
                   index_t incy) {
  // Swap via verified copies through a stack block: x -> tmp, y -> x
  // (verified), tmp -> y (verified).
  DmrReport report;
  double tmp[kBlock];
  for (index_t start = 0; start < n; start += kBlock) {
    const index_t len = std::min(kBlock, n - start);
    for (index_t i = 0; i < len; ++i) tmp[i] = x[(start + i) * incx];
    const DmrReport r1 =
        ft_dcopy(len, y + start * incy, incy, x + start * incx, incx);
    bool mismatch = false;
    for (index_t i = 0; i < len; ++i) {
      y[(start + i) * incy] = tmp[i];
      mismatch |= (y[(start + i) * incy] != tmp[i]);
    }
    report.faults_detected += r1.faults_detected + (mismatch ? 1 : 0);
    report.recomputations += r1.recomputations;
  }
  return report;
}

// ---------------------------------------------------------------------------
// rot
// ---------------------------------------------------------------------------

void drot(index_t n, double* x, index_t incx, double* y, index_t incy,
          double c, double s) {
  for (index_t i = 0; i < n; ++i) {
    const double xv = x[i * incx];
    const double yv = y[i * incy];
    x[i * incx] = c * xv + s * yv;
    y[i * incy] = c * yv - s * xv;
  }
}

DmrReport ft_drot(index_t n, double* x, index_t incx, double* y,
                  index_t incy, double c, double s,
                  const StreamFaultHook& hook) {
  DmrReport report;
  double tx1[kBlock], ty1[kBlock], tx2[kBlock], ty2[kBlock];
  for (index_t start = 0; start < n; start += kBlock) {
    const index_t len = std::min(kBlock, n - start);
    double c2 = c, s2 = s;
    dmr_shield(c2);
    dmr_shield(s2);
    for (index_t i = 0; i < len; ++i) {
      const double xv = x[(start + i) * incx];
      const double yv = y[(start + i) * incy];
      tx1[i] = c * xv + s * yv;
      ty1[i] = c * yv - s * xv;
      tx2[i] = c2 * xv + s2 * yv;
      ty2[i] = c2 * yv - s2 * xv;
    }
    if (hook) hook(tx1, start, len);
    bool mismatch = false;
    for (index_t i = 0; i < len; ++i)
      mismatch |= (tx1[i] != tx2[i]) | (ty1[i] != ty2[i]);
    if (mismatch) {
      ++report.faults_detected;
      ++report.recomputations;
      for (index_t i = 0; i < len; ++i) {
        const double xv = x[(start + i) * incx];
        const double yv = y[(start + i) * incy];
        tx1[i] = c * xv + s * yv;
        ty1[i] = c * yv - s * xv;
      }
    }
    for (index_t i = 0; i < len; ++i) {
      x[(start + i) * incx] = tx1[i];
      y[(start + i) * incy] = ty1[i];
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// TMR dot
// ---------------------------------------------------------------------------

double tmr_ddot(index_t n, const double* x, index_t incx, const double* y,
                index_t incy, DmrReport* report,
                const StreamFaultHook& hook) {
  double total = 0.0;
  for (index_t start = 0; start < n; start += kBlock) {
    const index_t len = std::min(kBlock, n - start);
    double s1 = ddot(len, x + start * incx, incx, y + start * incy, incy);
    double s2 = ddot(len, x + start * incx, incx, y + start * incy, incy);
    dmr_shield(s2);
    double s3 = ddot(len, x + start * incx, incx, y + start * incy, incy);
    dmr_shield(s3);
    if (hook) hook(&s1, start, 1);
    // Majority vote: any two agreeing copies win; no recomputation needed.
    double winner = s1;
    if (s1 != s2 || s1 != s3) {
      if (report != nullptr) ++report->faults_detected;
      if (s2 == s3) {
        winner = s2;  // s1 was the faulty copy
      } else if (s1 == s3 || s1 == s2) {
        winner = s1;
      } else {
        // Triple disagreement: fall back to recomputation.
        if (report != nullptr) ++report->recomputations;
        winner = ddot(len, x + start * incx, incx, y + start * incy, incy);
      }
    }
    total += winner;
  }
  return total;
}

}  // namespace ftgemm::ftblas
