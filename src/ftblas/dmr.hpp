// Dual Modular Redundancy (DMR) primitives for memory-bound BLAS.
//
// FT-BLAS (reference [4] of the paper, the system FT-GEMM extends) protects
// Level-1/2 routines with DMR rather than checksums: the arithmetic is
// duplicated in registers and the two results compared before the store.
// Because those routines are memory-bound, the duplicated *computation* is
// hidden under the memory traffic and the overhead stays small — the same
// compute/memory-gap argument the paper makes for GEMM checksums.
//
// The compiler must not CSE the two redundant computations into one; the
// `dmr_shield` barrier makes a value opaque to the optimizer at zero runtime
// cost (an empty inline-asm that claims to modify it).
#pragma once

#include <cstdint>

namespace ftgemm::ftblas {

/// Optimization barrier: forces `v` to be treated as unknown after this
/// point, so a redundant recomputation cannot be folded into the original.
template <typename T>
inline void dmr_shield(T& v) {
  asm volatile("" : "+x"(v));
}

/// Integer counters shared by the DMR routines.
struct DmrReport {
  std::int64_t faults_detected = 0;   ///< mismatches between the two copies
  std::int64_t recomputations = 0;    ///< blocks recomputed to heal a fault
  [[nodiscard]] bool clean() const { return faults_detected == 0; }
};

}  // namespace ftgemm::ftblas
