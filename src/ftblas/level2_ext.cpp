#include "ftblas/level2_ext.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ftgemm::ftblas {

namespace {

constexpr index_t kBlock = 512;

/// Dense triangular mat-vec into out[0..n): out = op(T) * x.
void trmv_into(Uplo uplo, Trans trans, index_t n, const double* a,
               index_t lda, const double* x, index_t incx,
               double* __restrict__ out) {
  // Effective element T(i, j): zero outside the triangle.
  const bool upper = (uplo == Uplo::kUpper) != (trans == Trans::kTrans);
  for (index_t i = 0; i < n; ++i) {
    const index_t j_lo = upper ? i : 0;
    const index_t j_hi = upper ? n : i + 1;
    double acc = 0.0;
    for (index_t j = j_lo; j < j_hi; ++j) {
      const double aval =
          trans == Trans::kTrans ? a[j + i * lda] : a[i + j * lda];
      acc += aval * x[j * incx];
    }
    out[i] = acc;
  }
}

/// In-place triangular solve (sequential dependency).
void trsv_inplace(Uplo uplo, Trans trans, index_t n, const double* a,
                  index_t lda, double* x, index_t incx) {
  const bool upper = (uplo == Uplo::kUpper) != (trans == Trans::kTrans);
  const auto at = [&](index_t i, index_t j) {
    return trans == Trans::kTrans ? a[j + i * lda] : a[i + j * lda];
  };
  if (upper) {
    for (index_t i = n - 1; i >= 0; --i) {
      double acc = x[i * incx];
      for (index_t j = i + 1; j < n; ++j) acc -= at(i, j) * x[j * incx];
      x[i * incx] = acc / at(i, i);
      if (i == 0) break;
    }
  } else {
    for (index_t i = 0; i < n; ++i) {
      double acc = x[i * incx];
      for (index_t j = 0; j < i; ++j) acc -= at(i, j) * x[j * incx];
      x[i * incx] = acc / at(i, i);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ger
// ---------------------------------------------------------------------------

void dger(index_t m, index_t n, double alpha, const double* x, index_t incx,
          const double* y, index_t incy, double* a, index_t lda) {
  for (index_t j = 0; j < n; ++j) {
    const double ay = alpha * y[j * incy];
    double* __restrict__ col = a + j * lda;
    if (incx == 1) {
      for (index_t i = 0; i < m; ++i) col[i] += x[i] * ay;
    } else {
      for (index_t i = 0; i < m; ++i) col[i] += x[i * incx] * ay;
    }
  }
}

DmrReport ft_dger(index_t m, index_t n, double alpha, const double* x,
                  index_t incx, const double* y, index_t incy, double* a,
                  index_t lda, const StreamFaultHook& hook) {
  DmrReport report;
  double t1[kBlock], t2[kBlock];
  for (index_t j = 0; j < n; ++j) {
    const double ay = alpha * y[j * incy];
    double ay2 = ay;
    dmr_shield(ay2);
    double* col = a + j * lda;
    for (index_t start = 0; start < m; start += kBlock) {
      const index_t len = std::min(kBlock, m - start);
      for (index_t i = 0; i < len; ++i) {
        const double xv = x[(start + i) * incx];
        const double av = col[start + i];
        t1[i] = av + xv * ay;
        t2[i] = av + xv * ay2;
      }
      if (hook) hook(t1, j * m + start, len);
      bool mismatch = false;
      for (index_t i = 0; i < len; ++i) mismatch |= (t1[i] != t2[i]);
      if (mismatch) {
        ++report.faults_detected;
        ++report.recomputations;
        for (index_t i = 0; i < len; ++i)
          t1[i] = col[start + i] + x[(start + i) * incx] * ay;
      }
      for (index_t i = 0; i < len; ++i) col[start + i] = t1[i];
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// trmv
// ---------------------------------------------------------------------------

void dtrmv(Uplo uplo, Trans trans, index_t n, const double* a, index_t lda,
           double* x, index_t incx) {
  std::vector<double> out(static_cast<std::size_t>(n));
  trmv_into(uplo, trans, n, a, lda, x, incx, out.data());
  for (index_t i = 0; i < n; ++i) x[i * incx] = out[std::size_t(i)];
}

DmrReport ft_dtrmv(Uplo uplo, Trans trans, index_t n, const double* a,
                   index_t lda, double* x, index_t incx,
                   const StreamFaultHook& hook) {
  DmrReport report;
  std::vector<double> out1(static_cast<std::size_t>(n));
  std::vector<double> out2(static_cast<std::size_t>(n));
  trmv_into(uplo, trans, n, a, lda, x, incx, out1.data());
  trmv_into(uplo, trans, n, a, lda, x, incx, out2.data());
  for (auto& v : out2) dmr_shield(v);
  if (hook) hook(out1.data(), 0, n);
  bool mismatch = false;
  for (index_t i = 0; i < n; ++i)
    mismatch |= (out1[std::size_t(i)] != out2[std::size_t(i)]);
  if (mismatch) {
    ++report.faults_detected;
    ++report.recomputations;
    trmv_into(uplo, trans, n, a, lda, x, incx, out1.data());
  }
  for (index_t i = 0; i < n; ++i) x[i * incx] = out1[std::size_t(i)];
  return report;
}

// ---------------------------------------------------------------------------
// trsv
// ---------------------------------------------------------------------------

void dtrsv(Uplo uplo, Trans trans, index_t n, const double* a, index_t lda,
           double* x, index_t incx) {
  trsv_inplace(uplo, trans, n, a, lda, x, incx);
}

DmrReport ft_dtrsv(Uplo uplo, Trans trans, index_t n, const double* a,
                   index_t lda, double* x, index_t incx,
                   const StreamFaultHook& hook) {
  // The solve's sequential dependency rules out block-local verification:
  // run the whole substitution twice on private copies and compare.
  DmrReport report;
  std::vector<double> x1(static_cast<std::size_t>(n));
  std::vector<double> x2(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    x1[std::size_t(i)] = x2[std::size_t(i)] = x[i * incx];
  trsv_inplace(uplo, trans, n, a, lda, x1.data(), 1);
  trsv_inplace(uplo, trans, n, a, lda, x2.data(), 1);
  for (auto& v : x2) dmr_shield(v);
  if (hook) hook(x1.data(), 0, n);
  bool mismatch = false;
  for (index_t i = 0; i < n; ++i)
    mismatch |= (x1[std::size_t(i)] != x2[std::size_t(i)]);
  if (mismatch) {
    ++report.faults_detected;
    ++report.recomputations;
    for (index_t i = 0; i < n; ++i) x1[std::size_t(i)] = x[i * incx];
    trsv_inplace(uplo, trans, n, a, lda, x1.data(), 1);
  }
  for (index_t i = 0; i < n; ++i) x[i * incx] = x1[std::size_t(i)];
  return report;
}

}  // namespace ftgemm::ftblas
