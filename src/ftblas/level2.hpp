// DMR-protected Level-2 BLAS (gemv), part of the FT-BLAS substrate.
//
// y = alpha * op(A) * x + beta * y.  The matrix element is loaded once and
// fed to two FMA streams (primary + shielded redundant), so the duplicated
// arithmetic hides under the O(MN) memory traffic that dominates gemv.
// Verification is per y-block; a mismatching block is recomputed from A.
#pragma once

#include "core/options.hpp"
#include "ftblas/level1.hpp"

namespace ftgemm::ftblas {

/// Plain column-major dgemv (baseline).
void dgemv(Trans trans, index_t m, index_t n, double alpha, const double* a,
           index_t lda, const double* x, index_t incx, double beta, double* y,
           index_t incy);

/// DMR-protected dgemv.  `hook` corrupts the primary block results before
/// verification (fault-injection testing).
DmrReport ft_dgemv(Trans trans, index_t m, index_t n, double alpha,
                   const double* a, index_t lda, const double* x,
                   index_t incx, double beta, double* y, index_t incy,
                   const StreamFaultHook& hook = {});

}  // namespace ftgemm::ftblas
