// DMR-protected Level-1 BLAS (the FT-BLAS substrate, reference [4]).
//
// Each routine exists in two forms: a plain high-performance version (the
// baseline for overhead measurements) and an ft_ version protected by dual
// modular redundancy — the computation is performed twice with the second
// copy shielded from CSE, results are compared block-wise before anything is
// committed to memory, and a mismatching block is recomputed.
//
// Fault injection: the optional `hook` is invoked on the primary result
// block before verification, emulating a transient fault in the first
// computation; tests assert that every injected corruption is detected and
// healed.
#pragma once

#include <cstdint>
#include <functional>

#include "ftblas/dmr.hpp"

namespace ftgemm::ftblas {

using index_t = std::int64_t;

/// Corruption hook: (block_values, global_start_index, block_length).
using StreamFaultHook = std::function<void(double*, index_t, index_t)>;

// -- scal: x = alpha * x ----------------------------------------------------
void dscal(index_t n, double alpha, double* x, index_t incx);
DmrReport ft_dscal(index_t n, double alpha, double* x, index_t incx,
                   const StreamFaultHook& hook = {});

// -- axpy: y = alpha * x + y ------------------------------------------------
void daxpy(index_t n, double alpha, const double* x, index_t incx, double* y,
           index_t incy);
DmrReport ft_daxpy(index_t n, double alpha, const double* x, index_t incx,
                   double* y, index_t incy, const StreamFaultHook& hook = {});

// -- dot: return xᵀy ----------------------------------------------------------
double ddot(index_t n, const double* x, index_t incx, const double* y,
            index_t incy);
double ft_ddot(index_t n, const double* x, index_t incx, const double* y,
               index_t incy, DmrReport* report = nullptr,
               const StreamFaultHook& hook = {});

// -- nrm2: return ||x||_2 -----------------------------------------------------
double dnrm2(index_t n, const double* x, index_t incx);
double ft_dnrm2(index_t n, const double* x, index_t incx,
                DmrReport* report = nullptr);

}  // namespace ftgemm::ftblas
