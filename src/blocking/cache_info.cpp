#include "blocking/cache_info.hpp"

#include <fstream>
#include <string>

namespace ftgemm {

namespace {

/// Parse "32K" / "1024K" / "16M"-style sysfs cache size strings; returns 0
/// on failure so callers can keep their defaults.
std::size_t parse_size(const std::string& text) {
  if (text.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
  }
  if (i < text.size()) {
    if (text[i] == 'K' || text[i] == 'k') value *= 1024;
    if (text[i] == 'M' || text[i] == 'm') value *= 1024 * 1024;
  }
  return value;
}

std::size_t read_cache_size(int index) {
  const std::string path = "/sys/devices/system/cpu/cpu0/cache/index" +
                           std::to_string(index) + "/size";
  std::ifstream in(path);
  if (!in) return 0;
  std::string text;
  in >> text;
  return parse_size(text);
}

std::string read_cache_type(int index) {
  const std::string path = "/sys/devices/system/cpu/cpu0/cache/index" +
                           std::to_string(index) + "/type";
  std::ifstream in(path);
  std::string text;
  if (in) in >> text;
  return text;
}

int read_cache_level(int index) {
  const std::string path = "/sys/devices/system/cpu/cpu0/cache/index" +
                           std::to_string(index) + "/level";
  std::ifstream in(path);
  int level = 0;
  if (in) in >> level;
  return level;
}

CacheInfo detect() {
  CacheInfo info;
  for (int idx = 0; idx < 8; ++idx) {
    const int level = read_cache_level(idx);
    if (level == 0) continue;
    const std::string type = read_cache_type(idx);
    if (type == "Instruction") continue;
    const std::size_t size = read_cache_size(idx);
    if (size == 0) continue;
    if (level == 1) info.l1d_bytes = size;
    if (level == 2) info.l2_bytes = size;
    if (level == 3) info.l3_bytes = size;
  }
  return info;
}

}  // namespace

const CacheInfo& cache_info() {
  static const CacheInfo info = detect();
  return info;
}

}  // namespace ftgemm
