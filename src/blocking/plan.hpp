// Cache-blocking plan (MC/NC/KC and the register tile MR/NR).
//
// §2.1 of the paper: "The step sizes of these three for loops, MC, NC, and
// KC, define the shape of the macro kernel, which is determined by the size
// of each layer of the cache."  The derivation follows the Goto/BLIS
// residency model:
//   - the KC x NR B micro-panel streamed by the micro-kernel stays in L1,
//   - the MC x KC packed A block stays in the (private) L2,
//   - the KC x NC packed B panel stays in the (shared) L3.
#pragma once

#include <cstdint>

#include "arch/isa.hpp"

namespace ftgemm {

using index_t = std::int64_t;

struct BlockingPlan {
  index_t mc = 0;  ///< rows of C updated per packed-A block
  index_t nc = 0;  ///< columns of C covered by the shared packed-B panel
  index_t kc = 0;  ///< depth of one rank-KC update (verification interval)
  index_t mr = 0;  ///< micro-kernel rows (register tile height)
  index_t nr = 0;  ///< micro-kernel columns (register tile width)
};

/// Compute the plan for an element of `elem_bytes` (8 = f64, 4 = f32) on the
/// given ISA, scaled from the detected cache hierarchy.  Environment
/// overrides FTGEMM_MC / FTGEMM_NC / FTGEMM_KC support the blocking ablation
/// benchmark.
BlockingPlan make_plan(Isa isa, int elem_bytes);

/// Shape-aware overload: the cache-derived plan above, with each block size
/// clamped to what the (m, n, k) problem can actually fill — KC to K, MC to
/// M rounded up to MR, NC to N rounded up to NR.  Clamping never changes
/// results (a loop that would run once with a larger block still runs once),
/// it only shrinks workspace and makes the single-macro-tile condition
/// `m <= mc && n <= nc && k <= kc` exact for the planner's fast path.
BlockingPlan make_plan(Isa isa, int elem_bytes, index_t m, index_t n,
                       index_t k);

/// Register tile for an ISA/element width (MR x NR of the micro-kernel).
void register_tile(Isa isa, int elem_bytes, index_t& mr, index_t& nr);

}  // namespace ftgemm
