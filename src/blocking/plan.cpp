#include "blocking/plan.hpp"

#include <algorithm>

#include "blocking/cache_info.hpp"
#include "util/env.hpp"

namespace ftgemm {

namespace {

index_t round_down(index_t value, index_t multiple) {
  const index_t r = value / multiple * multiple;
  return r > 0 ? r : multiple;
}

index_t round_up(index_t value, index_t multiple) {
  return (std::max<index_t>(value, 1) + multiple - 1) / multiple * multiple;
}

}  // namespace

void register_tile(Isa isa, int elem_bytes, index_t& mr, index_t& nr) {
  const bool f64 = elem_bytes == 8;
  switch (isa) {
    case Isa::kAvx512:
      // f64: 16x8 -> 16 zmm accumulators (8x8/24x8 selectable for the
      // kernel-shape ablation); f32: 32x8, same register budget.
      if (f64) {
        const long want = env_long("FTGEMM_KERNEL_MR", 16);
        mr = (want == 8 || want == 24) ? want : 16;
      } else {
        mr = 32;
      }
      nr = 8;
      return;
    case Isa::kAvx2:
      // Classic Haswell shapes: 8x6 (f64) / 16x6 (f32), 12 ymm accumulators.
      mr = f64 ? 8 : 16;
      nr = 6;
      return;
    case Isa::kScalar:
      mr = 4;
      nr = 4;
      return;
  }
  mr = 4;
  nr = 4;
}

BlockingPlan make_plan(Isa isa, int elem_bytes) {
  BlockingPlan plan;
  register_tile(isa, elem_bytes, plan.mr, plan.nr);

  const CacheInfo& cache = cache_info();
  const index_t es = elem_bytes;

  // KC: half of L1 holds the KC x NR B micro-panel plus the streamed
  // MR x KC A panel; solve for KC and clamp to a pragmatic range.  The
  // floor of 256 matters doubly here: the micro-kernel epilogue and the
  // per-panel verification are amortized over KC, so a small KC inflates
  // the FT overhead (measured: KC=128 -> ~6.5%, KC=256 -> ~4.5% at 1024^3),
  // and a KC x NR f64 micro-panel at 256 is still only 16 KiB.
  index_t kc = static_cast<index_t>(cache.l1d_bytes) / (2 * (plan.nr + plan.mr) * es);
  kc = std::clamp<index_t>(kc, 256, 512);
  kc = round_down(kc, 8);

  // MC: packed A (MC x KC) should occupy at most half of L2.
  index_t mc = static_cast<index_t>(cache.l2_bytes) / (2 * kc * es);
  mc = std::clamp<index_t>(mc, plan.mr, 512);
  mc = round_down(mc, plan.mr);

  // NC: packed B (KC x NC) should occupy at most half of L3.
  index_t nc = static_cast<index_t>(cache.l3_bytes) / (2 * kc * es);
  nc = std::clamp<index_t>(nc, plan.nr * 8, 8192);
  nc = round_down(nc, plan.nr);

  plan.kc = env_long("FTGEMM_KC", kc);
  plan.mc = env_long("FTGEMM_MC", mc);
  plan.nc = env_long("FTGEMM_NC", nc);
  plan.kc = std::max<index_t>(plan.kc, 1);
  plan.mc = round_down(std::max(plan.mc, plan.mr), plan.mr);
  plan.nc = round_down(std::max(plan.nc, plan.nr), plan.nr);
  return plan;
}

BlockingPlan make_plan(Isa isa, int elem_bytes, index_t m, index_t n,
                       index_t k) {
  BlockingPlan plan = make_plan(isa, elem_bytes);
  plan.kc = std::min(plan.kc, std::max<index_t>(k, 1));
  plan.mc = std::min(plan.mc, round_up(m, plan.mr));
  plan.nc = std::min(plan.nc, round_up(n, plan.nr));
  return plan;
}

}  // namespace ftgemm
