// Cache hierarchy discovery.
//
// The macro-kernel shape (MC/NC/KC) is derived from the L1/L2/L3 sizes so
// that the packed A panel lives in L2, the packed B panel in L3 and the
// B micro-panel streamed by the micro-kernel in L1 — the classic Goto/BLIS
// residency scheme the paper adopts (§2.1).
#pragma once

#include <cstddef>

namespace ftgemm {

struct CacheInfo {
  std::size_t l1d_bytes = 32 * 1024;
  std::size_t l2_bytes = 1024 * 1024;
  std::size_t l3_bytes = 16 * 1024 * 1024;
  /// L3 is shared among cores on Cascade Lake; L2 is private.
  bool l3_shared = true;
};

/// Detected once from sysfs (falls back to Cascade Lake-like defaults when
/// /sys is unavailable, e.g. in minimal containers).
const CacheInfo& cache_info();

}  // namespace ftgemm
