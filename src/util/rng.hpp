// Deterministic pseudo-random generation for matrix fills and fault
// injection schedules.
//
// xoshiro256** is used instead of std::mt19937 because filling a 2048x2048
// matrix is measurable fill time in the benchmark harness, and because its
// state is trivially seedable for reproducible injection campaigns.
#pragma once

#include <cstdint>
#include <limits>

namespace ftgemm {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      s = t ^ (t >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound) without modulo bias for benchmark-scale
  /// bounds (bound << 2^64 makes the bias negligible; injection tests only
  /// need determinism, not cryptographic uniformity).
  std::uint64_t bounded(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ftgemm
