// Small statistics helpers for the benchmark harness (the paper reports
// 20-repetition averages; we additionally expose median and stddev).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace ftgemm {

struct SampleStats {
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

inline SampleStats compute_stats(std::vector<double> samples) {
  SampleStats s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / double(n);
  double sq = 0.0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = n > 1 ? std::sqrt(sq / double(n - 1)) : 0.0;
  return s;
}

}  // namespace ftgemm
