// Environment-variable helpers used for benchmark sizing and ISA overrides.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace ftgemm {

inline std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace ftgemm
