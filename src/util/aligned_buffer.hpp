// Aligned heap buffer with RAII ownership.
//
// GEMM packing buffers and checksum vectors must be 64-byte aligned so that
// AVX-512 loads/stores never split cache lines.  std::vector cannot guarantee
// that alignment portably, hence this small owning wrapper.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

namespace ftgemm {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Owning, 64-byte aligned, non-initializing buffer of trivially copyable T.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() noexcept = default;

  explicit AlignedBuffer(std::size_t count) { reset(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Reallocate to hold `count` elements.  Contents are indeterminate.
  void reset(std::size_t count) {
    release();
    if (count == 0) return;
    // Round the byte size up to a multiple of the alignment as required by
    // std::aligned_alloc.
    const std::size_t bytes =
        (count * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes *
        kCacheLineBytes;
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    size_ = count;
  }

  /// Grow-only variant used for workspace reuse across GEMM calls.
  void ensure(std::size_t count) {
    if (count > size_) reset(count);
  }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ftgemm
