// Monotonic wall-clock timer used by the benchmark harness and FT reports.
#pragma once

#include <chrono>

namespace ftgemm {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last restart.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// GFLOPS for an m x n x k GEMM that took `seconds`.
inline double gemm_gflops(double m, double n, double k, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return 2.0 * m * n * k / seconds / 1e9;
}

}  // namespace ftgemm
