// Column-major matrix helpers shared by tests, examples and benchmarks.
//
// The library's public API operates on raw pointers with leading dimensions
// (the BLAS convention); Matrix<T> is a convenience owner for everything
// around the API: test fixtures, workload generators, reference results.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace ftgemm {

using index_t = std::int64_t;

/// Owning column-major matrix with an explicit leading dimension.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(index_t rows, index_t cols, index_t ld = 0)
      : rows_(rows), cols_(cols), ld_(ld == 0 ? rows : ld) {
    if (rows < 0 || cols < 0 || ld_ < rows) {
      throw std::invalid_argument("Matrix: bad dimensions");
    }
    storage_.reset(static_cast<std::size_t>(ld_ * cols_));
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return ld_; }

  [[nodiscard]] T* data() noexcept { return storage_.data(); }
  [[nodiscard]] const T* data() const noexcept { return storage_.data(); }

  T& operator()(index_t i, index_t j) noexcept {
    return storage_[static_cast<std::size_t>(i + j * ld_)];
  }
  const T& operator()(index_t i, index_t j) const noexcept {
    return storage_[static_cast<std::size_t>(i + j * ld_)];
  }

  void fill(T value) {
    for (index_t j = 0; j < cols_; ++j)
      for (index_t i = 0; i < ld_; ++i) (*this)(i, j) = value;
  }

  /// Uniform random fill in [lo, hi); deterministic under `seed`.
  void fill_random(std::uint64_t seed, T lo = T(-1), T hi = T(1)) {
    Xoshiro256 rng(seed);
    for (index_t j = 0; j < cols_; ++j)
      for (index_t i = 0; i < rows_; ++i)
        (*this)(i, j) = static_cast<T>(rng.uniform(double(lo), double(hi)));
  }

  [[nodiscard]] Matrix clone() const {
    Matrix out(rows_, cols_, ld_);
    std::copy(data(), data() + static_cast<std::size_t>(ld_ * cols_),
              out.data());
    return out;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
  AlignedBuffer<T> storage_;
};

/// Largest absolute element difference between equally shaped matrices.
template <typename T>
double max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
  double worst = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      worst = std::max(worst, std::abs(double(a(i, j)) - double(b(i, j))));
  return worst;
}

/// Largest relative element difference, guarded against tiny denominators.
template <typename T>
double max_rel_diff(const Matrix<T>& a, const Matrix<T>& b) {
  double worst = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) {
      const double x = double(a(i, j)), y = double(b(i, j));
      const double denom = std::max({std::abs(x), std::abs(y), 1.0});
      worst = std::max(worst, std::abs(x - y) / denom);
    }
  return worst;
}

}  // namespace ftgemm
