// Classic (unfused) offline ABFT — the scheme the paper improves on.
//
// §2.2: "the huge gap between memory transfer and floating-point computation
// is the reason the O(n^2) checksum-related operations can no longer be
// amortized by O(n^3) GEMM ... the FT overhead [drops] from about 15% to
// 2.94%" once fused.  This module implements the *unfused* scheme so the
// benchmark harness can reproduce that comparison (experiment E5):
//
//   1. separate pass:  C = beta*C
//   2. separate passes: Cc0 = C·e, Cr0 = eᵀ·C
//   3. separate passes: Ar = alpha·eᵀ·A, Bc = B·e
//   4. checksum propagation: Cc = Cc0 + (alpha·A)·Bc, Cr = Cr0 + Ar·B
//   5. the unmodified high-performance GEMM
//   6. separate passes: Cc_ref = C·e, Cr_ref = eᵀ·C; verify; correct.
//
// Every step except (5) is an extra O(n^2) memory sweep; that traffic is
// exactly what the fused implementation eliminates.
#pragma once

#include "core/options.hpp"

namespace ftgemm::baseline {

/// Unfused ABFT-protected dgemm (column-major).  Verification happens once
/// at the end of the call, so the whole multiplication is one detection
/// interval (unlike the fused scheme's per-panel intervals).
FtReport unfused_ft_dgemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                          double alpha, const double* a, index_t lda,
                          const double* b, index_t ldb, double beta,
                          double* c, index_t ldc, const Options& opts = {});

/// Single-precision variant.
FtReport unfused_ft_sgemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                          float alpha, const float* a, index_t lda,
                          const float* b, index_t ldb, float beta, float* c,
                          index_t ldc, const Options& opts = {});

}  // namespace ftgemm::baseline
