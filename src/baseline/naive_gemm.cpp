#include "baseline/naive_gemm.hpp"

#include <algorithm>

#include "kernels/packing.hpp"

namespace ftgemm::baseline {

namespace {

template <typename T>
void naive(Trans ta, Trans tb, index_t m, index_t n, index_t k, T alpha,
           const T* a, index_t lda, const T* b, index_t ldb, T beta, T* c,
           index_t ldc) {
  const OperandView<T> av{a, lda, ta == Trans::kTrans};
  const OperandView<T> bv{b, ldb, tb == Trans::kTrans};
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      T acc = T(0);
      for (index_t p = 0; p < k; ++p) acc += av.at(i, p) * bv.at(p, j);
      T& out = c[i + j * ldc];
      out = alpha * acc + (beta == T(0) ? T(0) : beta * out);
    }
  }
}

template <typename T>
void blocked(Trans ta, Trans tb, index_t m, index_t n, index_t k, T alpha,
             const T* a, index_t lda, const T* b, index_t ldb, T beta, T* c,
             index_t ldc) {
  constexpr index_t kBlockI = 64;
  constexpr index_t kBlockJ = 64;
  constexpr index_t kBlockP = 256;
  const OperandView<T> av{a, lda, ta == Trans::kTrans};
  const OperandView<T> bv{b, ldb, tb == Trans::kTrans};

  for (index_t j = 0; j < n; ++j) {
    T* col = c + j * ldc;
    if (beta == T(0)) {
      for (index_t i = 0; i < m; ++i) col[i] = T(0);
    } else if (beta != T(1)) {
      for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
  }
  for (index_t pb = 0; pb < k; pb += kBlockP) {
    const index_t pe = std::min(pb + kBlockP, k);
    for (index_t jb = 0; jb < n; jb += kBlockJ) {
      const index_t je = std::min(jb + kBlockJ, n);
      for (index_t ib = 0; ib < m; ib += kBlockI) {
        const index_t ie = std::min(ib + kBlockI, m);
        for (index_t j = jb; j < je; ++j) {
          T* __restrict__ col = c + j * ldc;
          for (index_t p = pb; p < pe; ++p) {
            const T bval = alpha * bv.at(p, j);
            for (index_t i = ib; i < ie; ++i) col[i] += av.at(i, p) * bval;
          }
        }
      }
    }
  }
}

}  // namespace

void naive_dgemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                 double alpha, const double* a, index_t lda, const double* b,
                 index_t ldb, double beta, double* c, index_t ldc) {
  naive<double>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void naive_sgemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                 float alpha, const float* a, index_t lda, const float* b,
                 index_t ldb, float beta, float* c, index_t ldc) {
  naive<float>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void blocked_dgemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                   double alpha, const double* a, index_t lda,
                   const double* b, index_t ldb, double beta, double* c,
                   index_t ldc) {
  blocked<double>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void blocked_sgemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                   float alpha, const float* a, index_t lda, const float* b,
                   index_t ldb, float beta, float* c, index_t ldc) {
  blocked<float>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

}  // namespace ftgemm::baseline
