// Reference GEMM implementations.
//
// These are the in-repo stand-ins for the external baselines the paper
// measures against (MKL / OpenBLAS / BLIS are unavailable offline; see
// docs/DESIGN.md §4).  naive_gemm is also the correctness oracle for the whole
// test suite: every optimized path must match it to rounding error.
#pragma once

#include "core/options.hpp"

namespace ftgemm::baseline {

/// Textbook triple loop, C = alpha*op(A)*op(B) + beta*C (column-major).
/// Deliberately unoptimized; the truth oracle.
void naive_dgemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                 double alpha, const double* a, index_t lda, const double* b,
                 index_t ldb, double beta, double* c, index_t ldc);

/// Single-precision naive reference.
void naive_sgemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                 float alpha, const float* a, index_t lda, const float* b,
                 index_t ldb, float beta, float* c, index_t ldc);

/// Cache-blocked triple loop without packing or explicit SIMD (the compiler
/// may auto-vectorize).  Represents a "portable optimized" library tier
/// between naive and the packed SIMD implementation.
void blocked_dgemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                   double alpha, const double* a, index_t lda,
                   const double* b, index_t ldb, double beta, double* c,
                   index_t ldc);

/// Single-precision blocked variant.
void blocked_sgemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                   float alpha, const float* a, index_t lda, const float* b,
                   index_t ldb, float beta, float* c, index_t ldc);

}  // namespace ftgemm::baseline
