#include "baseline/unfused_abft.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/tolerance.hpp"
#include "abft/verifier.hpp"
#include "core/gemm.hpp"
#include "util/timer.hpp"

namespace ftgemm::baseline {

namespace {

template <typename T>
double amax_region(const OperandView<T>& v, index_t rows, index_t cols) {
  double amax = 0.0;
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i)
      amax = std::max(amax, std::abs(double(v.at(i, j))));
  return amax;
}

template <typename T>
FtReport unfused(Trans ta, Trans tb, index_t m, index_t n, index_t k, T alpha,
                 const T* a, index_t lda, const T* b, index_t ldb, T beta,
                 T* c, index_t ldc, const Options& opts) {
  FtReport report;
  if (m <= 0 || n <= 0) return report;
  const WallTimer timer;

  const OperandView<T> av{a, lda, ta == Trans::kTrans};
  const OperandView<T> bv{b, ldb, tb == Trans::kTrans};

  // (1)+(2): scale C, then encode its checksums in separate passes.
  for (index_t j = 0; j < n; ++j) {
    T* __restrict__ col = c + j * ldc;
    if (beta == T(0)) {
      for (index_t i = 0; i < m; ++i) col[i] = T(0);
    } else if (beta != T(1)) {
      for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
  }
  std::vector<T> cc(static_cast<std::size_t>(m));
  std::vector<T> cr(static_cast<std::size_t>(n));
  encode_cc_standalone(c, ldc, m, n, cc.data());
  encode_cr_standalone(c, ldc, m, n, cr.data());

  // (3): operand checksums, separate passes.
  std::vector<T> ar(std::size_t(std::max<index_t>(k, 1)), T(0));
  std::vector<T> bc(std::size_t(std::max<index_t>(k, 1)), T(0));
  for (index_t p = 0; p < k; ++p) {
    T sum = T(0);
    for (index_t i = 0; i < m; ++i) sum += av.at(i, p);
    ar[std::size_t(p)] = alpha * sum;
  }
  encode_bc_standalone(bv, k, n, bc.data());

  // (4): push the checksums through the multiplication.
  checksum_gemv(av, m, k, alpha, bc.data(), cc.data());
  checksum_gevm(bv, k, n, T(1), ar.data(), cr.data());

  // (5): the unprotected high-performance GEMM.  C was already scaled by
  // beta in step (1), so the driver runs with beta = 1.  The injector, if
  // any, rides along and corrupts C just like it would a real kernel.
  if constexpr (sizeof(T) == 8) {
    dgemm(Layout::kColMajor, ta, tb, m, n, k, alpha, a, lda, b, ldb, T(1),
          c, ldc, opts);
  } else {
    sgemm(Layout::kColMajor, ta, tb, m, n, k, alpha, a, lda, b, ldb, T(1),
          c, ldc, opts);
  }

  // (6): reference checksums and verification.
  std::vector<T> ccref(static_cast<std::size_t>(m));
  std::vector<T> crref(static_cast<std::size_t>(n));
  encode_cc_standalone(c, ldc, m, n, ccref.data());
  encode_cr_standalone(c, ldc, m, n, crref.data());

  const double factor = opts.tolerance_factor > 0.0
                            ? opts.tolerance_factor
                            : default_tolerance_factor_for<T>();
  const double amax_a = amax_region(av, m, k);
  const double amax_b = amax_region(bv, k, n);
  const auto tol = ToleranceModel<T>::compute(
      m, n, k, amax_a, amax_b, /*amax_c0=*/0.0, double(alpha), double(beta),
      factor);

  std::vector<Mismatch> rows, cols;
  find_mismatches(cc.data(), ccref.data(), m, tol.cc_tau, 0, rows);
  find_mismatches(cr.data(), crref.data(), n, tol.cr_tau, 0, cols);
  report.panels = 1;
  if (!rows.empty() || !cols.empty()) {
    const double slack = std::max(tol.cc_tau, tol.cr_tau) *
                         double(2 + rows.size() + cols.size());
    const SolveOutcome outcome = solve_error_assignment(rows, cols, slack);
    if (outcome.solved) {
      report.errors_detected = std::int64_t(outcome.errors.size());
      for (const LocatedError& err : outcome.errors) {
        c[err.row + err.col * ldc] -= T(err.delta);
        ++report.errors_corrected;
      }
    } else {
      report.errors_detected =
          std::int64_t(std::max(rows.size(), cols.size()));
      report.uncorrectable_panels = 1;
    }
  }
  report.elapsed_seconds = timer.seconds();
  return report;
}

}  // namespace

FtReport unfused_ft_dgemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                          double alpha, const double* a, index_t lda,
                          const double* b, index_t ldb, double beta,
                          double* c, index_t ldc, const Options& opts) {
  return unfused<double>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                         opts);
}

FtReport unfused_ft_sgemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                          float alpha, const float* a, index_t lda,
                          const float* b, index_t ldb, float beta, float* c,
                          index_t ldc, const Options& opts) {
  return unfused<float>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                        opts);
}

}  // namespace ftgemm::baseline
