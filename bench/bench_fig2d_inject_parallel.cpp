// Fig 2(d): parallel DGEMM under error injection.
//
// Same regime as Fig 2(c) but with the threaded driver: injected errors land
// in different threads' row partitions and are gathered by the cross-thread
// Cr reduction before the panel verification.
#include <cmath>

#include "bench_common.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

int main() {
  const int reps = bench_reps();
  const int threads = bench_threads();
  print_header("parallel DGEMM with 20 injected errors, GFLOPS (median)",
               "Fig 2(d)", {"blocked", "ori", "ft_inject", "corrected",
                            "verified"});

  Options opts;
  opts.threads = threads;
  GemmEngine<double> engine(opts);

  for (const index_t n : square_sizes(256)) {
    SquareWorkload<double> w(n);

    Matrix<double> ref(n, n);
    ref.fill(0.0);
    engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n,
                1.0, w.a.data(), n, w.b.data(), n, 0.0, ref.data(), n);

    const double blocked = median_gflops(n, n, n, reps, [&] {
      baseline::blocked_dgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
                              w.a.data(), n, w.b.data(), n, 0.0, w.c.data(),
                              n);
    });
    const double ori = median_gflops(n, n, n, reps, [&] {
      engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n,
                  n, 1.0, w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n);
    });

    CountInjector injector(20, 0xBEEF + std::uint64_t(n), 2.0);
    Options ft_opts;
    ft_opts.threads = threads;
    ft_opts.injector = &injector;
    GemmEngine<double> ft_engine(ft_opts);
    std::int64_t corrected = 0;
    bool verified = true;
    const double ft_inject = median_gflops(n, n, n, reps, [&] {
      const FtReport rep = ft_engine.ft_gemm(
          Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
          w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n);
      corrected += rep.errors_corrected;
      verified &= rep.clean();
    });
    verified &= max_rel_diff(w.c, ref) < 1e-10 * std::sqrt(double(n));

    std::printf("%-8lld%14.2f%14.2f%14.2f%14lld%14s\n",
                static_cast<long long>(n), blocked, ori, ft_inject,
                static_cast<long long>(corrected), verified ? "yes" : "NO");
    std::fflush(stdout);
  }
  return 0;
}
