// Extension bench: single-precision FT-SGEMM sweep.
//
// The poster evaluates DGEMM; the FT-BLAS foundation also ships SGEMM, and
// the fusion argument is precision-independent (wider vectors, same
// compute/memory gap).  This bench mirrors Fig 2(a) in f32 — note the
// coarser checksum granularity documented in abft/tolerance.hpp.
#include "bench_common.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

int main() {
  const int reps = bench_reps();
  print_header("serial SGEMM, GFLOPS (median)", "Fig 2(a), f32 extension",
               {"blocked", "ori", "ft", "ft_ovr_%"});

  GemmEngine<float> engine;
  engine.options().threads = 1;

  for (const index_t n : square_sizes(256)) {
    SquareWorkload<float> w(n);

    const double blocked = median_gflops(n, n, n, reps, [&] {
      baseline::blocked_sgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n,
                              1.0f, w.a.data(), n, w.b.data(), n, 0.0f,
                              w.c.data(), n);
    });
    const double ori = median_gflops(n, n, n, reps, [&] {
      engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n,
                  n, 1.0f, w.a.data(), n, w.b.data(), n, 0.0f, w.c.data(),
                  n);
    });
    const double ft = median_gflops(n, n, n, reps, [&] {
      engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
                     n, n, 1.0f, w.a.data(), n, w.b.data(), n, 0.0f,
                     w.c.data(), n);
    });
    const double overhead = ori > 0.0 ? 100.0 * (ori - ft) / ori : 0.0;
    std::printf("%-8lld%14.2f%14.2f%14.2f%14.2f\n",
                static_cast<long long>(n), blocked, ori, ft, overhead);
    std::fflush(stdout);
  }
  return 0;
}
