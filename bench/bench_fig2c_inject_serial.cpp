// Fig 2(c): serial DGEMM under error injection.
//
// Paper setup (§3.2): 20 errors injected into the compute kernels per run,
// FT operating online, final result verified against a reference.  Series:
// the baselines (clean) vs "FT-BLAS: error injected".  The `verified`
// column reports whether every run's corrected result matched the fault-free
// Ori result to rounding tolerance — the reliability half of the claim.
#include <cmath>

#include "bench_common.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

int main() {
  const int reps = bench_reps();
  print_header("serial DGEMM with 20 injected errors, GFLOPS (median)",
               "Fig 2(c)",
               {"blocked", "unfused_ft", "ori", "ft_inject", "corrected",
                "verified"});

  GemmEngine<double> engine;
  engine.options().threads = 1;
  Options serial_opts;
  serial_opts.threads = 1;

  for (const index_t n : square_sizes(256)) {
    SquareWorkload<double> w(n);

    // Fault-free reference for verification.
    Matrix<double> ref(n, n);
    ref.fill(0.0);
    engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n,
                1.0, w.a.data(), n, w.b.data(), n, 0.0, ref.data(), n);

    const double blocked = median_gflops(n, n, n, reps, [&] {
      baseline::blocked_dgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
                              w.a.data(), n, w.b.data(), n, 0.0, w.c.data(),
                              n);
    });
    const double unfused = median_gflops(n, n, n, reps, [&] {
      baseline::unfused_ft_dgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n,
                                 1.0, w.a.data(), n, w.b.data(), n, 0.0,
                                 w.c.data(), n, serial_opts);
    });
    const double ori = median_gflops(n, n, n, reps, [&] {
      engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n,
                  n, 1.0, w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n);
    });

    // FT with 20 errors injected per multiplication (the paper's regime).
    CountInjector injector(20, 0xF00D + std::uint64_t(n), 2.0);
    GemmEngine<double> ft_engine;
    ft_engine.options().threads = 1;
    ft_engine.options().injector = &injector;
    std::int64_t corrected = 0;
    bool verified = true;
    const double ft_inject = median_gflops(n, n, n, reps, [&] {
      const FtReport rep = ft_engine.ft_gemm(
          Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
          w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n);
      corrected += rep.errors_corrected;
      verified &= rep.clean();
    });
    // Verify the last corrected result element-wise against the reference.
    verified &= max_rel_diff(w.c, ref) <
                1e-10 * std::sqrt(double(n));

    std::printf("%-8lld%14.2f%14.2f%14.2f%14.2f%14lld%14s\n",
                static_cast<long long>(n), blocked, unfused, ori, ft_inject,
                static_cast<long long>(corrected), verified ? "yes" : "NO");
    std::fflush(stdout);
  }
  return 0;
}
