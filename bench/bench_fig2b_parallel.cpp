// Fig 2(b): parallel FT-DGEMM.
//
// Paper series: MKL, BLIS, OpenBLAS, FT-BLAS:Ori, FT-BLAS:FT on 512^2..
// 20480^2 with all cores.  Our parallel driver implements the paper's
// shared-B~/private-A~ scheme (§2.3); on a single-core CI VM the thread
// count is 1 and absolute scaling is not observable, but the code path, the
// Bc reduction and the parallel verification are all exercised, and the
// FT-vs-Ori overhead column is the paper's headline claim (1.79%).
#include "bench_common.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

int main() {
  const int reps = bench_reps();
  const int threads = bench_threads();
  print_header("parallel DGEMM, GFLOPS (median)", "Fig 2(b)",
               {"blocked", "ori", "ft", "ft_ovr_%"});

  Options opts;
  opts.threads = threads;
  GemmEngine<double> engine(opts);

  for (const index_t n : square_sizes(256)) {
    SquareWorkload<double> w(n);

    const double blocked = median_gflops(n, n, n, reps, [&] {
      baseline::blocked_dgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
                              w.a.data(), n, w.b.data(), n, 0.0, w.c.data(),
                              n);
    });
    const double ori = median_gflops(n, n, n, reps, [&] {
      engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n,
                  n, 1.0, w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n);
    });
    const double ft = median_gflops(n, n, n, reps, [&] {
      engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
                     n, n, 1.0, w.a.data(), n, w.b.data(), n, 0.0,
                     w.c.data(), n);
    });
    const double overhead = ori > 0.0 ? 100.0 * (ori - ft) / ori : 0.0;
    std::printf("%-8lld%14.2f%14.2f%14.2f%14.2f\n",
                static_cast<long long>(n), blocked, ori, ft, overhead);
    std::fflush(stdout);
  }
  return 0;
}
