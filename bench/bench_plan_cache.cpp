// Plan-cache + small-GEMM fast-path benchmark: the serving regime of many
// repeated small protected GEMMs.
//
// Two series over repeated FT calls of one small shape (64..128 cubed):
//   uncached — every call re-plans from scratch (ISA selection, env reads,
//              cache-derived blocking, kernel dispatch) and executes the
//              general cooperative-packing path: the pre-plan-cache cost
//              model.
//   cached   — every call is a PlanCache hit executing the planner's
//              single-macro-tile fast path: the steady-state cost model.
//
// Columns are GFLOPS over a burst of `calls` back-to-back invocations
// (median of FTGEMM_BENCH_REPS bursts), plus the cached/uncached speedup.
// FTGEMM_BENCH_CALLS overrides the burst length.
#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/plan.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

namespace {

/// Median GFLOPS of `reps` bursts of `calls` invocations, measured for two
/// competing series with their bursts interleaved (A, B, A, B, ...) so
/// frequency/noise drift on a shared machine biases neither side.
template <typename FnA, typename FnB>
std::pair<double, double> interleaved_burst_gflops(index_t n, index_t calls,
                                                   int reps, FnA&& fa,
                                                   FnB&& fb) {
  std::vector<double> sa, sb;
  sa.reserve(std::size_t(reps));
  sb.reserve(std::size_t(reps));
  fa();  // warm-up: touch workspaces, populate caches
  fb();
  for (int r = 0; r < reps; ++r) {
    WallTimer ta;
    for (index_t i = 0; i < calls; ++i) fa();
    sa.push_back(gemm_gflops(double(n) * double(calls), double(n), double(n),
                             ta.seconds()));
    WallTimer tb;
    for (index_t i = 0; i < calls; ++i) fb();
    sb.push_back(gemm_gflops(double(n) * double(calls), double(n), double(n),
                             tb.seconds()));
  }
  return {compute_stats(sa).median, compute_stats(sb).median};
}

}  // namespace

int main() {
  const int reps = bench_reps();
  const index_t calls = env_long("FTGEMM_BENCH_CALLS", 200);
  std::printf("# plan cache + small-GEMM fast path, repeated ft_dgemm\n");
  std::printf("# uncached = re-plan every call + general path; "
              "cached = PlanCache hit + single-macro-tile path\n");
  std::printf("# calls=%lld reps=%d threads=1\n", (long long)calls, reps);
  std::printf("%-8s%14s%14s%14s\n", "size", "uncached_GF", "cached_GF",
              "speedup");

  for (const index_t n : {index_t(64), index_t(96), index_t(128)}) {
    SquareWorkload<double> w(n);
    GemmContext<double> ctx;

    Options uncached_opts;
    uncached_opts.threads = 1;
    uncached_opts.small_fast_path = false;
    Options cached_opts;
    cached_opts.threads = 1;
    PlanCache<double>& plans = ctx.plans();
    const auto [uncached, cached] = interleaved_burst_gflops(
        n, calls, reps,
        [&] {
          // Full per-call planning, exactly what the pre-refactor driver
          // paid, plus the general cooperative-packing path.
          const GemmPlan<double> plan = build_plan<double>(
              Trans::kNoTrans, Trans::kNoTrans, n, n, n, uncached_opts,
              true);
          detail::execute<double, true>(plan, 1.0, w.a.data(), n,
                                        w.b.data(), n, 0.0, w.c.data(), n,
                                        nullptr, nullptr, ctx);
        },
        [&] {
          const auto plan = plans.get_or_build(
              Trans::kNoTrans, Trans::kNoTrans, n, n, n, cached_opts, true);
          detail::execute<double, true>(*plan, 1.0, w.a.data(), n,
                                        w.b.data(), n, 0.0, w.c.data(), n,
                                        nullptr, nullptr, ctx);
        });

    std::printf("%-8lld%14.2f%14.2f%13.2fx\n", (long long)n, uncached,
                cached, uncached > 0 ? cached / uncached : 0.0);
    std::fflush(stdout);
  }
  return 0;
}
