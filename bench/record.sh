#!/bin/sh
# Run a benchmark binary and record its table output as BENCH_<name>.json
# in the current directory (see bench/README.md for the convention).
#
#   bench/record.sh build/bench/bench_fig2a_serial [args...]
set -eu

[ $# -ge 1 ] || { echo "usage: $0 <bench-binary> [args...]" >&2; exit 2; }
bin=$1
shift
[ -x "$bin" ] || { echo "error: $bin is not an executable benchmark" >&2; exit 2; }
name=$(basename "$bin" | sed 's/^bench_//')
out="BENCH_${name}.json"

"$bin" "$@" | awk -v name="$name" '
  BEGIN {
    printf "{\n  \"bench\": \"%s\",\n", name
    "date -u +%Y-%m-%dT%H:%M:%SZ" | getline d
    printf "  \"date\": \"%s\",\n", d
    ncomments = 0; have_cols = 0; nrows = 0
    hwc = ""; backend = ""; sha = ""; feats = ""
  }
  # bench_common print_header stamps "# hardware_concurrency=N
  # team_backend=..." so every record says what machine/runtime produced
  # it; lift that into the env block (emitted in END, once comments are
  # parsed).
  /^#/ {
    sub(/^# ?/, "")
    if (match($0, /hardware_concurrency=[0-9]+/))
      hwc = substr($0, RSTART + 21, RLENGTH - 21)
    if (match($0, /team_backend=[a-z]+/))
      backend = substr($0, RSTART + 13, RLENGTH - 13)
    # bench_common also stamps "# git_sha=<rev> isa_features=<bits...>"
    # (build provenance); lift both alongside the machine context.
    if (match($0, /git_sha=[^ ]+/))
      sha = substr($0, RSTART + 8, RLENGTH - 8)
    if (match($0, /isa_features=.*$/))
      feats = substr($0, RSTART + 13, RLENGTH - 13)
    comments[ncomments++] = $0; next
  }
  NF == 0 { next }
  !have_cols {
    for (i = 1; i <= NF; i++) cols[i] = $i
    ncols = NF; have_cols = 1; next
  }
  { for (i = 1; i <= NF; i++) rows[nrows, i] = $i; rowlen[nrows] = NF; nrows++ }
  END {
    printf "  \"env\": {"
    sep = ""
    split("FTGEMM_BENCH_MAX FTGEMM_BENCH_REPS FTGEMM_BENCH_THREADS " \
          "FTGEMM_BENCH_BATCH FTGEMM_BENCH_SIZE FTGEMM_BENCH_CALLS " \
          "FTGEMM_BENCH_BIG FTGEMM_BENCH_WINDOW " \
          "FTGEMM_BENCH_SERVICE_THREADS FTGEMM_SERVICE_SHARDS " \
          "FTGEMM_ISA FTGEMM_MC FTGEMM_NC FTGEMM_KC FTGEMM_RUNTIME " \
          "FTGEMM_THREADS OMP_NUM_THREADS", knobs, " ")
    for (i in knobs) if (knobs[i] in ENVIRON) {
      printf "%s\"%s\": \"%s\"", sep, knobs[i], ENVIRON[knobs[i]]
      sep = ", "
    }
    if (hwc == "") {
      "getconf _NPROCESSORS_ONLN 2>/dev/null" | getline hwc
    }
    if (hwc != "") {
      printf "%s\"hardware_concurrency\": %s", sep, hwc
      sep = ", "
    }
    if (backend != "") {
      printf "%s\"team_backend\": \"%s\"", sep, backend
      sep = ", "
    }
    if (sha != "") {
      printf "%s\"git_sha\": \"%s\"", sep, sha
      sep = ", "
    }
    if (feats != "") {
      gsub(/"/, "\\\"", feats)
      printf "%s\"isa_features\": \"%s\"", sep, feats
      sep = ", "
    }
    printf "},\n"
    printf "  \"comments\": ["
    for (i = 0; i < ncomments; i++) {
      gsub(/"/, "\\\"", comments[i])
      printf "%s\"%s\"", (i ? ", " : ""), comments[i]
    }
    printf "],\n  \"columns\": ["
    for (i = 1; i <= ncols; i++) printf "%s\"%s\"", (i > 1 ? ", " : ""), cols[i]
    printf "],\n  \"rows\": [\n"
    for (r = 0; r < nrows; r++) {
      printf "    ["
      for (i = 1; i <= rowlen[r]; i++) {
        v = rows[r, i]
        if (v ~ /^-?[0-9]+\.?[0-9]*x?$/) { sub(/x$/, "", v); printf "%s%s", (i > 1 ? ", " : ""), v }
        else { gsub(/"/, "\\\"", v); printf "%s\"%s\"", (i > 1 ? ", " : ""), v }
      }
      printf "]%s\n", (r < nrows - 1 ? "," : "")
    }
    printf "  ]\n}\n"
  }
' > "$out"
echo "wrote $out"
