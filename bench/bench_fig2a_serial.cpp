// Fig 2(a): serial FT-DGEMM vs baseline libraries.
//
// Paper series: MKL, BLIS, OpenBLAS, FT-BLAS:Ori, FT-BLAS:FT on sizes
// 1024^2..10240^2.  MKL/OpenBLAS/BLIS are unavailable offline, so the
// stand-in baselines are (see docs/DESIGN.md §4): the naive triple loop, the
// cache-blocked portable GEMM, and the *unfused* classic-ABFT GEMM; the
// in-repo Ori and FT columns correspond directly to the paper's.
//
// Expected shape: ori >= blocked >> naive; ft within a few percent of ori;
// unfused-ABFT pays roughly an extra memory pass per checksum stage.
#include "bench_common.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

int main() {
  const int reps = bench_reps();
  print_header("serial DGEMM, GFLOPS (median)", "Fig 2(a)",
               {"naive", "blocked", "unfused_ft", "ori", "ft",
                "ft_ovr_%"});

  GemmEngine<double> engine;
  engine.options().threads = 1;

  for (const index_t n : square_sizes(256)) {
    SquareWorkload<double> w(n);

    const double naive =
        n > 512 ? 0.0 : median_gflops(n, n, n, 1, [&] {
          baseline::naive_dgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n,
                                1.0, w.a.data(), n, w.b.data(), n, 0.0,
                                w.c.data(), n);
        });
    const double blocked = median_gflops(n, n, n, reps, [&] {
      baseline::blocked_dgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
                              w.a.data(), n, w.b.data(), n, 0.0, w.c.data(),
                              n);
    });
    Options serial_opts;
    serial_opts.threads = 1;
    const double unfused = median_gflops(n, n, n, reps, [&] {
      baseline::unfused_ft_dgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n,
                                 1.0, w.a.data(), n, w.b.data(), n, 0.0,
                                 w.c.data(), n, serial_opts);
    });
    const double ori = median_gflops(n, n, n, reps, [&] {
      engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n,
                  n, 1.0, w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n);
    });
    const double ft = median_gflops(n, n, n, reps, [&] {
      engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
                     n, n, 1.0, w.a.data(), n, w.b.data(), n, 0.0,
                     w.c.data(), n);
    });
    const double overhead = ori > 0.0 ? 100.0 * (ori - ft) / ori : 0.0;
    std::printf("%-8lld%14.2f%14.2f%14.2f%14.2f%14.2f%14.2f\n",
                static_cast<long long>(n), naive, blocked, unfused, ori, ft,
                overhead);
    std::fflush(stdout);
  }
  return 0;
}
