// Micro-benchmarks (google-benchmark): micro-kernel throughput, base vs FT,
// and the packing routines with/without checksum fusion.
//
// These quantify the two ingredients of the paper's fusion argument:
//  (1) the FT kernel epilogue adds only register arithmetic — its GFLOPS
//      should track the base kernel within a few percent;
//  (2) the fused packing variants touch the same memory as the plain ones —
//      their bandwidth should be nearly identical, whereas classic ABFT
//      pays whole extra passes (see bench_overhead).
#include <benchmark/benchmark.h>

#include <vector>

#include "arch/cpu_features.hpp"
#include "kernels/macro_kernel.hpp"
#include "kernels/microkernel.hpp"
#include "kernels/packing.hpp"
#include "util/aligned_buffer.hpp"
#include "util/matrix.hpp"

namespace ftgemm {
namespace {

template <typename T>
KernelSet<T> best_kernels() {
  return get_kernel_set<T>(select_isa());
}

template <typename T>
void BM_microkernel_base(benchmark::State& state) {
  const KernelSet<T> ks = best_kernels<T>();
  const index_t kc = state.range(0);
  AlignedBuffer<T> a(std::size_t(ks.mr * kc));
  AlignedBuffer<T> b(std::size_t(ks.nr * kc));
  AlignedBuffer<T> c(std::size_t(ks.mr * ks.nr));
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = T(0.001) * T(i % 97);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = T(0.002) * T(i % 89);
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = T(0);

  for (auto _ : state) {
    ks.base(kc, a.data(), b.data(), c.data(), ks.mr);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * double(ks.mr) * double(ks.nr) * double(kc) *
          double(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

template <typename T>
void BM_microkernel_ft(benchmark::State& state) {
  const KernelSet<T> ks = best_kernels<T>();
  const index_t kc = state.range(0);
  AlignedBuffer<T> a(std::size_t(ks.mr * kc));
  AlignedBuffer<T> b(std::size_t(ks.nr * kc));
  AlignedBuffer<T> c(std::size_t(ks.mr * ks.nr));
  AlignedBuffer<T> cr(std::size_t(ks.nr * ks.cr_lanes));
  AlignedBuffer<T> cc(std::size_t(ks.mr));
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = T(0.001) * T(i % 97);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = T(0.002) * T(i % 89);
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = T(0);
  for (std::size_t i = 0; i < cr.size(); ++i) cr[i] = T(0);
  for (std::size_t i = 0; i < cc.size(); ++i) cc[i] = T(0);

  for (auto _ : state) {
    ks.ft(kc, a.data(), b.data(), c.data(), ks.mr, cr.data(), cc.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * double(ks.mr) * double(ks.nr) * double(kc) *
          double(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

BENCHMARK_TEMPLATE(BM_microkernel_base, double)->Arg(64)->Arg(256)->Arg(384);
BENCHMARK_TEMPLATE(BM_microkernel_ft, double)->Arg(64)->Arg(256)->Arg(384);
BENCHMARK_TEMPLATE(BM_microkernel_base, float)->Arg(256);
BENCHMARK_TEMPLATE(BM_microkernel_ft, float)->Arg(256);

// ---------------------------------------------------------------------------
// Packing: plain vs checksum-fused, bytes/second.
// ---------------------------------------------------------------------------

void BM_pack_a_plain(benchmark::State& state) {
  const index_t m = 512, kc = 256, mr = 16;
  Matrix<double> src(m, kc);
  src.fill_random(1);
  const OperandView<double> view{src.data(), src.ld(), false};
  AlignedBuffer<double> dst(std::size_t(m * kc));
  for (auto _ : state) {
    pack_a(view, 0, 0, m, kc, mr, 1.0, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * m * kc * 8);
}

void BM_pack_a_ft(benchmark::State& state) {
  const index_t m = 512, kc = 256, mr = 16;
  Matrix<double> src(m, kc);
  src.fill_random(1);
  const OperandView<double> view{src.data(), src.ld(), false};
  AlignedBuffer<double> dst(std::size_t(m * kc));
  std::vector<double> bc(std::size_t(kc), 0.5);
  std::vector<double> cc(std::size_t(m), 0.0);
  for (auto _ : state) {
    pack_a_ft(view, 0, 0, m, kc, mr, 1.0, dst.data(), bc.data(), cc.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * m * kc * 8);
}

void BM_pack_b_plain(benchmark::State& state) {
  const index_t kc = 256, n = 1024, nr = 8;
  Matrix<double> src(kc, n);
  src.fill_random(2);
  const OperandView<double> view{src.data(), src.ld(), false};
  AlignedBuffer<double> dst(std::size_t(kc * n));
  for (auto _ : state) {
    pack_b(view, 0, 0, kc, n, nr, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * kc * n * 8);
}

void BM_pack_b_ft(benchmark::State& state) {
  const index_t kc = 256, n = 1024, nr = 8;
  Matrix<double> src(kc, n);
  src.fill_random(2);
  const OperandView<double> view{src.data(), src.ld(), false};
  AlignedBuffer<double> dst(std::size_t(kc * n));
  std::vector<double> ar(std::size_t(kc), 0.25);
  std::vector<double> cr(std::size_t(n), 0.0);
  for (auto _ : state) {
    pack_b_ft(view, 0, 0, kc, n, nr, dst.data(), ar.data(), cr.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * kc * n * 8);
}

void BM_reduce_bc(benchmark::State& state) {
  const index_t kc = 256, n = 1024, nr = 8;
  Matrix<double> src(kc, n);
  src.fill_random(3);
  const OperandView<double> view{src.data(), src.ld(), false};
  AlignedBuffer<double> packed(std::size_t(kc * n));
  pack_b(view, 0, 0, kc, n, nr, packed.data());
  std::vector<double> bc(static_cast<std::size_t>(kc));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reduce_bc_from_panel(packed.data(), kc, n, nr, 0, kc, bc.data(),
                             0.0));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * kc * n * 8);
}

BENCHMARK(BM_pack_a_plain);
BENCHMARK(BM_pack_a_ft);
BENCHMARK(BM_pack_b_plain);
BENCHMARK(BM_pack_b_ft);
BENCHMARK(BM_reduce_bc);

}  // namespace
}  // namespace ftgemm
