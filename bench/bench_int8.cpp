// int8-quantized FT-GEMM vs plain fp32 (docs/DESIGN.md §11).
//
// s8 operands are 4x smaller than fp32, so on a bytes-per-GFLOP basis the
// quantized path amplifies effective memory bandwidth by
//
//     eff_bw = (i8 GFLOPS / fp32 GFLOPS) * (fp32 bytes / i8 bytes)
//            = 4 * i8_GF / f32_GF
//
// (GFLOPS counts the same 2*m*n*k multiply-adds on both paths; the int8
// "FLOPs" are integer MACs — vpdpbusd on VNNI hardware.)
//
// Acceptance (ISSUE 9): eff_bw >= 3x at 1024^3 serial, fused integer-ABFT
// overhead <= 6%, and zero verification false positives across the sweep
// at tolerance 0 — the `falsepos` column is the running errors_detected
// total of every timed FT repetition and must read 0 on every row.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/gemm_i8.hpp"
#include "util/rng.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

namespace {

/// Square workload with full-range s8 operands and fp32 C.  The generic
/// Matrix::fill_random draws doubles in [-1, 1) — useless lanes for int8 —
/// so the operands are drawn directly.
struct I8Workload {
  index_t n;
  Matrix<std::int8_t> a, b;
  Matrix<float> c;

  explicit I8Workload(index_t size, std::uint64_t seed = 42)
      : n(size), a(size, size), b(size, size), c(size, size) {
    Xoshiro256 rng(seed);
    for (index_t j = 0; j < size; ++j) {
      for (index_t i = 0; i < size; ++i) {
        a(i, j) = std::int8_t(std::int32_t(rng.bounded(256)) - 128);
        b(i, j) = std::int8_t(std::int32_t(rng.bounded(256)) - 128);
      }
    }
    c.fill(0.0f);
  }
};

}  // namespace

int main() {
  const int reps = bench_reps();

  print_header(
      "int8 storage + integer checksums vs fp32: serial square GEMM "
      "(median GFLOPS)",
      "DESIGN.md section 11 (int8 quantization; bytes-per-GFLOP basis)",
      {"f32_GF", "i8_GF", "i8ft_GF", "eff_bw", "ft_ovh_%", "falsepos"});

  GemmEngine<float> f32_engine;
  f32_engine.options().threads = 1;
  GemmEngineI8 i8_engine;
  i8_engine.options().threads = 1;
  const QuantParams qp{0.05f, 0.05f, 3, -5};

  std::int64_t false_positives = 0;
  for (const index_t n : square_sizes(256)) {
    SquareWorkload<float> wf(n);
    I8Workload wi(n);

    const double f32_gf = median_gflops(n, n, n, reps, [&] {
      f32_engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
                      n, n, 1.0f, wf.a.data(), n, wf.b.data(), n, 0.0f,
                      wf.c.data(), n);
    });
    const double i8_gf = median_gflops(n, n, n, reps, [&] {
      i8_engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
                     n, n, 1.0f, wi.a.data(), n, wi.b.data(), n, 0.0f,
                     wi.c.data(), n, qp);
    });
    const double i8_ft_gf = median_gflops(n, n, n, reps, [&] {
      const FtReport rep = i8_engine.ft_gemm(
          Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0f,
          wi.a.data(), n, wi.b.data(), n, 0.0f, wi.c.data(), n, qp);
      false_positives += rep.errors_detected;
    });

    const double eff_bw = f32_gf > 0 ? 4.0 * i8_gf / f32_gf : 0.0;
    const double ft_ovh =
        i8_gf > 0 ? 100.0 * (i8_gf - i8_ft_gf) / i8_gf : 0.0;
    std::printf("%-8lld%14.2f%14.2f%14.2f%14.2f%14.2f%14lld\n",
                static_cast<long long>(n), f32_gf, i8_gf, i8_ft_gf, eff_bw,
                ft_ovh, static_cast<long long>(false_positives));
    std::fflush(stdout);
  }
  return 0;
}
