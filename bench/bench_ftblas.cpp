// FT-BLAS substrate (experiment E8): DMR overhead on the memory-bound
// Level-1/2 routines.  The FT-BLAS argument: because these routines are
// bandwidth-bound, duplicating the *computation* in registers costs little.
#include <benchmark/benchmark.h>

#include <vector>

#include "ftblas/level1.hpp"
#include "ftblas/level2.hpp"
#include "util/matrix.hpp"

namespace ftgemm::ftblas {
namespace {

std::vector<double> make_vec(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

void BM_dscal(benchmark::State& state) {
  const index_t n = state.range(0);
  auto x = make_vec(n, 1);
  for (auto _ : state) {
    dscal(n, 1.0000001, x.data(), 1);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * 16);
}

void BM_ft_dscal(benchmark::State& state) {
  const index_t n = state.range(0);
  auto x = make_vec(n, 1);
  for (auto _ : state) {
    ft_dscal(n, 1.0000001, x.data(), 1);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * 16);
}

void BM_daxpy(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto x = make_vec(n, 2);
  auto y = make_vec(n, 3);
  for (auto _ : state) {
    daxpy(n, 1e-9, x.data(), 1, y.data(), 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * 24);
}

void BM_ft_daxpy(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto x = make_vec(n, 2);
  auto y = make_vec(n, 3);
  for (auto _ : state) {
    ft_daxpy(n, 1e-9, x.data(), 1, y.data(), 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * 24);
}

void BM_ddot(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto x = make_vec(n, 4);
  const auto y = make_vec(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddot(n, x.data(), 1, y.data(), 1));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * 16);
}

void BM_ft_ddot(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto x = make_vec(n, 4);
  const auto y = make_vec(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ft_ddot(n, x.data(), 1, y.data(), 1));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * 16);
}

void BM_dnrm2(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto x = make_vec(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnrm2(n, x.data(), 1));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * 8);
}

void BM_ft_dnrm2(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto x = make_vec(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ft_dnrm2(n, x.data(), 1));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * 8);
}

void BM_dgemv(benchmark::State& state) {
  const index_t n = state.range(0);
  Matrix<double> a(n, n);
  a.fill_random(7);
  const auto x = make_vec(n, 8);
  auto y = make_vec(n, 9);
  for (auto _ : state) {
    dgemv(Trans::kNoTrans, n, n, 1.0, a.data(), a.ld(), x.data(), 1, 0.0,
          y.data(), 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * n * 8);
}

void BM_ft_dgemv(benchmark::State& state) {
  const index_t n = state.range(0);
  Matrix<double> a(n, n);
  a.fill_random(7);
  const auto x = make_vec(n, 8);
  auto y = make_vec(n, 9);
  for (auto _ : state) {
    ft_dgemv(Trans::kNoTrans, n, n, 1.0, a.data(), a.ld(), x.data(), 1, 0.0,
             y.data(), 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * n * 8);
}

BENCHMARK(BM_dscal)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_ft_dscal)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_daxpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_ft_daxpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_ddot)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_ft_ddot)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_dnrm2)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_ft_dnrm2)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_dgemv)->Arg(512)->Arg(1024);
BENCHMARK(BM_ft_dgemv)->Arg(512)->Arg(1024);

}  // namespace
}  // namespace ftgemm::ftblas
