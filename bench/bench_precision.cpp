// Mixed precision: bf16/fp16 storage with fp32 accumulation vs plain fp32
// (docs/DESIGN.md §10).
//
// Narrow storage halves the bytes per operand element, so at
// bandwidth-bound sizes the same GFLOPS costs half the memory traffic.
// The headline metric is the *effective bandwidth amplification* on a
// bytes-per-GFLOP basis:
//
//     eff_bw = (bf16 GFLOPS / fp32 GFLOPS) * (fp32 bytes / bf16 bytes)
//            = 2 * bf16_GF / f32_GF
//
// Acceptance (ISSUE 8): eff_bw >= 1.5x at 1024^3 with fused-FT overhead
// on the bf16 path <= 6%, and convert-on-pack throughput >= 1.8x fp32 on
// the same bytes basis (the pack comments above the table).
//
// The pack comparison runs the fused FT packers (pack_a_ft) on one
// L2-resident macro-tile: the fp32 packer moves 4 bytes per element, the
// widening bf16/fp16 packers 2, so equal element rates mean 2x the panel
// elements per operand byte.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

namespace {

/// Median million-elements-per-second over reps of fn() packing `elems`.
template <typename Fn>
double median_melems(double elems, int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(std::size_t(reps));
  fn();  // warm-up
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    const double s = t.seconds();
    samples.push_back(s > 0 ? elems / s / 1e6 : 0.0);
  }
  return compute_stats(samples).median;
}

/// Element rate of the fused FT A-packer for one (StorageT -> fp32) pair
/// on an mc x kc tile (<float, float> is the classic fp32 packer).
template <typename S>
double pack_a_ft_melems(Isa isa, index_t mc, index_t kc, int reps) {
  const KernelSet<S, float> ks = get_kernel_set<S, float>(isa);
  Matrix<S> a(mc, kc);
  a.fill_random(7);
  const OperandView<S> view{a.data(), a.ld(), false};
  const index_t panels = (mc + ks.mr - 1) / ks.mr;
  std::vector<float> dst(std::size_t(panels * ks.mr * kc));
  std::vector<float> bc(std::size_t(kc), 0.5f);
  std::vector<float> cc(static_cast<std::size_t>(mc));
  return median_melems(double(mc) * double(kc), reps, [&] {
    std::fill(cc.begin(), cc.end(), 0.0f);
    ks.pack.pack_a_ft(view, 0, 0, mc, kc, ks.mr, 1.25f, dst.data(),
                      bc.data(), cc.data());
  });
}

/// Square workload with narrow operands and fp32 C.
template <typename S>
struct MixedWorkload {
  index_t n;
  Matrix<S> a, b;
  Matrix<float> c;

  explicit MixedWorkload(index_t size, std::uint64_t seed = 42)
      : n(size), a(size, size), b(size, size), c(size, size) {
    a.fill_random(seed);
    b.fill_random(seed + 1);
    c.fill(0.0f);
  }
};

}  // namespace

int main() {
  const int reps = bench_reps();
  const Isa isa = select_isa();

  // Pack-engine comparison on one L2-resident macro-tile (bytes basis).
  {
    const index_t edge = env_long("FTGEMM_BENCH_SIZE", 192);
    const double f32 = pack_a_ft_melems<float>(isa, edge, edge, reps);
    const double bf16 = pack_a_ft_melems<bf16_t>(isa, edge, edge, reps);
    const double f16 = pack_a_ft_melems<fp16_t>(isa, edge, edge, reps);
    std::printf("# pack_a_ft %lldx%lld Melem/s: f32=%.0f bf16=%.0f f16=%.0f"
                " bytes_basis_bf16=%.2fx bytes_basis_f16=%.2fx\n",
                static_cast<long long>(edge), static_cast<long long>(edge),
                f32, bf16, f16, f32 > 0 ? 2.0 * bf16 / f32 : 0.0,
                f32 > 0 ? 2.0 * f16 / f32 : 0.0);
  }

  print_header(
      "bf16/fp16 storage vs fp32: serial square GEMM (median GFLOPS)",
      "DESIGN.md section 10 (mixed precision; bytes-per-GFLOP basis)",
      {"f32_GF", "bf16_GF", "bf16ft_GF", "f16ft_GF", "eff_bw", "ft_ovh_%"});

  GemmEngine<float> f32_engine;
  f32_engine.options().threads = 1;
  GemmEngine<bf16_t, float> bf16_engine;
  bf16_engine.options().threads = 1;
  GemmEngine<fp16_t, float> f16_engine;
  f16_engine.options().threads = 1;

  for (const index_t n : square_sizes(256)) {
    SquareWorkload<float> wf(n);
    MixedWorkload<bf16_t> wb(n);
    MixedWorkload<fp16_t> wh(n);

    const double f32_gf = median_gflops(n, n, n, reps, [&] {
      f32_engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
                      n, n, 1.0f, wf.a.data(), n, wf.b.data(), n, 0.0f,
                      wf.c.data(), n);
    });
    const double bf16_gf = median_gflops(n, n, n, reps, [&] {
      bf16_engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                       n, n, n, 1.0f, wb.a.data(), n, wb.b.data(), n, 0.0f,
                       wb.c.data(), n);
    });
    const double bf16_ft_gf = median_gflops(n, n, n, reps, [&] {
      bf16_engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans,
                          Trans::kNoTrans, n, n, n, 1.0f, wb.a.data(), n,
                          wb.b.data(), n, 0.0f, wb.c.data(), n);
    });
    const double f16_ft_gf = median_gflops(n, n, n, reps, [&] {
      f16_engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                         n, n, n, 1.0f, wh.a.data(), n, wh.b.data(), n, 0.0f,
                         wh.c.data(), n);
    });

    const double eff_bw = f32_gf > 0 ? 2.0 * bf16_gf / f32_gf : 0.0;
    const double ft_ovh =
        bf16_gf > 0 ? 100.0 * (bf16_gf - bf16_ft_gf) / bf16_gf : 0.0;
    std::printf("%-8lld%14.2f%14.2f%14.2f%14.2f%14.2f%14.2f\n",
                static_cast<long long>(n), f32_gf, bf16_gf, bf16_ft_gf,
                f16_ft_gf, eff_bw, ft_ovh);
    std::fflush(stdout);
  }
  return 0;
}
