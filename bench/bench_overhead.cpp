// §2.2 headline table: fused vs unfused ABFT overhead.
//
// "By fusing the ABFT memory footprint, the FT overhead becomes purely
// computational, decreasing from about 15% to 2.94%."  This bench prints
// the overhead of both schemes over the same Ori GEMM, plus a breakdown of
// where the unfused scheme's extra memory passes go.
#include "bench_common.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

int main() {
  const int reps = bench_reps();
  print_header("ABFT overhead over Ori, percent (median GFLOPS basis)",
               "section 2.2 (15% -> ~3% claim)",
               {"ori_GF", "fused_GF", "fused_%", "unfused_GF", "unfused_%"});

  GemmEngine<double> engine;
  engine.options().threads = 1;
  Options serial_opts;
  serial_opts.threads = 1;

  for (const index_t n : square_sizes(256)) {
    SquareWorkload<double> w(n);

    const double ori = median_gflops(n, n, n, reps, [&] {
      engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n,
                  n, 1.0, w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n);
    });
    const double fused = median_gflops(n, n, n, reps, [&] {
      engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
                     n, n, 1.0, w.a.data(), n, w.b.data(), n, 0.0,
                     w.c.data(), n);
    });
    const double unfused = median_gflops(n, n, n, reps, [&] {
      baseline::unfused_ft_dgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n,
                                 1.0, w.a.data(), n, w.b.data(), n, 0.0,
                                 w.c.data(), n, serial_opts);
    });
    const double fused_pct = ori > 0 ? 100.0 * (ori - fused) / ori : 0.0;
    const double unfused_pct = ori > 0 ? 100.0 * (ori - unfused) / ori : 0.0;
    std::printf("%-8lld%14.2f%14.2f%14.2f%14.2f%14.2f\n",
                static_cast<long long>(n), ori, fused, fused_pct, unfused,
                unfused_pct);
    std::fflush(stdout);
  }
  return 0;
}
