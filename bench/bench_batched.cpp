// Batched dispatch vs. looped-serial dispatch (the new subsystem's claim).
//
// Workload: BATCH independent problems of one size (default 64 x 256^3, the
// ml-inference regime), run four ways per mode (Ori / FT):
//
//   loop      — one ft_gemm/gemm call per problem, back to back (what
//               examples/ml_inference.cpp did before the batched API),
//   intra     — one batched call, forced serial-over-problems scheduling
//               (isolates the fork/join amortization),
//   inter     — one batched call, forced one-worker-per-problem scheduling,
//   auto      — one batched call, the production decision rule.
//
// Environment knobs:
//   FTGEMM_BENCH_BATCH   problems per batch          (default 64)
//   FTGEMM_BENCH_SIZE    square per-problem size     (default 256)
//   FTGEMM_BENCH_REPS    timed repetitions           (default 5)
//   FTGEMM_BENCH_THREADS worker cap                  (default all cores)
//
// Output: whole-batch GFLOPS per strategy plus the batched/loop speedup.
#include "bench_common.hpp"
#include "core/gemm_batched.hpp"

namespace ftgemm::bench {
namespace {

struct BatchWorkload {
  index_t n, batch, stride;
  Matrix<double> a, b, c;

  BatchWorkload(index_t size, index_t count)
      : n(size), batch(count), stride(size * size), a(size, size * count),
        b(size, size * count), c(size, size * count) {
    a.fill_random(42);
    b.fill_random(43);
    c.fill(0.0);
  }
};

template <typename Fn>
double batch_gflops(const BatchWorkload& w, int reps, Fn&& fn) {
  return median_gflops(w.n * w.batch, w.n, w.n, reps, fn);
}

void run(bool ft) {
  const index_t size = env_long("FTGEMM_BENCH_SIZE", 256);
  const index_t batch = env_long("FTGEMM_BENCH_BATCH", 64);
  const int reps = bench_reps();
  const int threads = bench_threads();
  BatchWorkload w(size, batch);

  Options single;
  single.threads = threads;

  const auto batched = [&](BatchSchedule sched) {
    BatchOptions opts;
    opts.base.threads = threads;
    opts.schedule = sched;
    if (ft) {
      ft_gemm_strided_batched<double>(
          Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, w.n, w.n, w.n,
          1.0, w.a.data(), w.n, w.stride, w.b.data(), w.n, w.stride, 0.0,
          w.c.data(), w.n, w.stride, w.batch, opts);
    } else {
      gemm_strided_batched<double>(
          Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, w.n, w.n, w.n,
          1.0, w.a.data(), w.n, w.stride, w.b.data(), w.n, w.stride, 0.0,
          w.c.data(), w.n, w.stride, w.batch, opts);
    }
  };

  const double loop = batch_gflops(w, reps, [&] {
    for (index_t p = 0; p < w.batch; ++p) {
      const index_t off = p * w.stride;
      if (ft) {
        ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, w.n,
                 w.n, w.n, 1.0, w.a.data() + off, w.n, w.b.data() + off, w.n,
                 0.0, w.c.data() + off, w.n, single);
      } else {
        dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, w.n, w.n,
              w.n, 1.0, w.a.data() + off, w.n, w.b.data() + off, w.n, 0.0,
              w.c.data() + off, w.n, single);
      }
    }
  });
  const double intra =
      batch_gflops(w, reps, [&] { batched(BatchSchedule::kIntra); });
  const double inter =
      batch_gflops(w, reps, [&] { batched(BatchSchedule::kInter); });
  const double autod =
      batch_gflops(w, reps, [&] { batched(BatchSchedule::kAuto); });

  const double best = std::max({intra, inter, autod});
  std::printf("%-6s%14.2f%14.2f%14.2f%14.2f%13.2fx\n", ft ? "FT" : "Ori",
              loop, intra, inter, autod, best / loop);
}

}  // namespace
}  // namespace ftgemm::bench

int main() {
  using namespace ftgemm::bench;
  const long size = ftgemm::env_long("FTGEMM_BENCH_SIZE", 256);
  const long batch = ftgemm::env_long("FTGEMM_BENCH_BATCH", 64);
  std::printf("# batched vs looped dispatch, %ld x (%ld^3) problems\n", batch,
              size);
  std::printf("# threads=%d reps=%d\n", bench_threads(), bench_reps());
  std::printf("%-6s%14s%14s%14s%14s%14s\n", "mode", "loop", "intra", "inter",
              "auto", "best/loop");
  run(false);
  run(true);
  return 0;
}
