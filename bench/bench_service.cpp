// Serving-layer throughput: GemmService (bounded admission queue,
// dispatcher, coalescing, bounded in-flight concurrency) vs the
// synchronous-loop baseline (each client thread calls ft_dgemm directly),
// at 1/2/4/8 concurrent clients.
//
// Two request profiles, two stories:
//
//   nt=1  — serial fast-path requests (FTGEMM_BENCH_SIZE^3, default 64).
//           Measures the queue tax: admission + future settle + dispatcher
//           hand-off against requests a synchronous loop executes at its
//           cheapest.  The coalescer folds same-shape neighbors into
//           batched calls (one plan fetch + workspace lease per group);
//           async lands within a few percent of sync.
//
//   nt=T  — team requests (FTGEMM_BENCH_BIG^3, default 192, general path,
//           T = FTGEMM_BENCH_SERVICE_THREADS, default 4 — the natural
//           config for a multi-core deployment).  This is the claim: a
//           synchronous loop opens one thread team PER CLIENT concurrently
//           (N clients -> N*T runnable threads, barrier-storming each
//           other), while the service admits cheaply and executes with
//           bounded concurrency.  async/sync >= 1 at >= 4 clients, and the
//           margin grows with the client count.
//
//   sharded_* — the same two profiles against services with an explicit
//           shard count (FTGEMM_SERVICE_SHARDS equivalent swept {1,2,4})
//           at loaded client counts, isolating what sharded admission +
//           work stealing buy once the submit side is no longer the
//           bottleneck.  The serial story additionally rides the inline
//           fast lane: idle-service fast-path requests execute on the
//           submitting thread with no queue round-trip at all.
//
// Clients submit in pipelined windows (FTGEMM_BENCH_WINDOW requests via
// submit_all, drained newest-first) — the shape of real serving traffic.
// Per-client operands are private; each client spot-verifies its last
// window against the oracle so the harness cannot quietly serve garbage.
// Series are interleaved (async, sync, async, ...) per rep; medians over
// FTGEMM_BENCH_REPS are reported.
#include <algorithm>
#include <atomic>
#include <thread>

#include "bench_common.hpp"
#include "runtime/topology.hpp"
#include "serve/service.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

namespace {

struct ClientWorkload {
  Matrix<double> a, b, ref;
  std::vector<Matrix<double>> c;
  index_t n;

  ClientWorkload(index_t size, index_t window, std::uint64_t seed)
      : a(size, size), b(size, size), ref(size, size), n(size) {
    a.fill_random(seed);
    b.fill_random(seed + 1);
    ref.fill(0.0);
    baseline::naive_dgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
                          a.data(), n, b.data(), n, 0.0, ref.data(), n);
    c.reserve(std::size_t(window));
    for (index_t w = 0; w < window; ++w) c.emplace_back(size, size);
  }
};

double run_sync(std::vector<ClientWorkload>& clients, index_t calls,
                index_t window, int nt, std::atomic<int>& failures) {
  const int nclients = int(clients.size());
  WallTimer t;
  std::vector<std::thread> threads;
  threads.reserve(std::size_t(nclients));
  for (int id = 0; id < nclients; ++id) {
    threads.emplace_back([&, id] {
      ClientWorkload& w = clients[std::size_t(id)];
      Options opts;
      opts.threads = nt;
      opts.runtime = RuntimeBackend::kPool;
      for (index_t i = 0; i < calls; ++i) {
        const FtReport rep = ft_dgemm(
            Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, w.n, w.n,
            w.n, 1.0, w.a.data(), w.n, w.b.data(), w.n, 0.0,
            w.c[std::size_t(i % window)].data(), w.n, opts);
        if (!rep.clean()) failures.fetch_add(1);
      }
      if (max_rel_diff(w.c[0], w.ref) > 1e-9) failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  return double(nclients) * double(calls) / t.seconds();
}

double run_async(std::vector<ClientWorkload>& clients, index_t calls,
                 index_t window, int nt, int shards,
                 std::atomic<int>& failures) {
  const int nclients = int(clients.size());
  serve::ServiceConfig cfg;
  cfg.max_inflight = 1;  // bounded concurrency: the admission-control lever
  cfg.max_coalesce = 32;
  cfg.queue_capacity = std::size_t(nclients) * std::size_t(window) * 2;
  cfg.shards = shards;  // 0 = auto (env / hardware concurrency)
  // Every client may ride the inline fast lane concurrently; the
  // max_inflight bound still applies to queued (dispatcher) traffic.
  cfg.inline_inflight_limit = nclients;
  serve::GemmService service(cfg);

  WallTimer t;
  std::vector<std::thread> threads;
  threads.reserve(std::size_t(nclients));
  for (int id = 0; id < nclients; ++id) {
    threads.emplace_back([&, id] {
      ClientWorkload& w = clients[std::size_t(id)];
      Options opts;
      opts.threads = nt;
      opts.runtime = RuntimeBackend::kPool;
      std::vector<serve::GemmRequest> wnd;
      wnd.reserve(std::size_t(window));
      for (index_t i = 0; i < calls; ++i) {
        wnd.push_back(serve::make_gemm_request<double>(
            true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, w.n,
            w.n, w.n, 1.0, w.a.data(), w.n, w.b.data(), w.n, 0.0,
            w.c[std::size_t(i % window)].data(), w.n, opts));
        if (index_t(wnd.size()) == window || i == calls - 1) {
          std::vector<serve::GemmFuture> fl = service.submit_all(wnd);
          // Newest-first drain: one park on the window's last future, the
          // earlier waits return already settled.
          for (auto f = fl.rbegin(); f != fl.rend(); ++f) {
            if (!f->wait().ok()) failures.fetch_add(1);
          }
          wnd.clear();
        }
      }
      if (max_rel_diff(w.c[0], w.ref) > 1e-9) failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  const double rps = double(nclients) * double(calls) / t.seconds();
  service.shutdown(true);
  return rps;
}

/// Symmetric plan-cache warm-up.  The sync loop only ever exercises the
/// direct-path plan, while the service routes windows through the batched
/// coalescer (and the inline lane) — so without an explicit pre-warm the
/// async side pays the batched plan build + workspace growth inside its
/// first timed window and the serial ratio under-reports steady state.
/// Warm every route the timed loops can take before either side runs.
void prewarm(ClientWorkload& w, index_t window, int nt, int shards) {
  Options opts;
  opts.threads = nt;
  opts.runtime = RuntimeBackend::kPool;
  ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, w.n, w.n,
           w.n, 1.0, w.a.data(), w.n, w.b.data(), w.n, 0.0, w.c[0].data(),
           w.n, opts);  // direct-path plan (sync loop, direct dispatch)
  serve::ServiceConfig cfg;
  cfg.shards = shards;
  serve::GemmService service(cfg);
  std::vector<serve::GemmRequest> wnd;
  const index_t k = std::min<index_t>(window, 2);
  for (index_t i = 0; i < k; ++i) {
    wnd.push_back(serve::make_gemm_request<double>(
        true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, w.n, w.n,
        w.n, 1.0, w.a.data(), w.n, w.b.data(), w.n, 0.0,
        w.c[std::size_t(i)].data(), w.n, opts));
  }
  for (auto& f : service.submit_all(wnd)) f.wait();  // batched-path plan
  service.shutdown(true);
}

void run_series(const std::string& label, index_t size, index_t calls,
                index_t window, int nt, int reps, int shards,
                std::initializer_list<int> client_counts,
                std::atomic<int>& failures) {
  for (const int nclients : client_counts) {
    std::vector<ClientWorkload> cw;
    cw.reserve(std::size_t(nclients));
    for (int id = 0; id < nclients; ++id) {
      cw.emplace_back(size, window, std::uint64_t(7 + id));
    }
    prewarm(cw[0], window, nt, shards);
    run_async(cw, calls, window, nt, shards, failures);  // warm-up both sides
    run_sync(cw, calls, window, nt, failures);
    std::vector<double> sync_s, async_s;
    for (int r = 0; r < reps; ++r) {
      async_s.push_back(run_async(cw, calls, window, nt, shards, failures));
      sync_s.push_back(run_sync(cw, calls, window, nt, failures));
    }
    const double s = compute_stats(sync_s).median;
    const double a = compute_stats(async_s).median;
    std::printf("%-16s%8d%14.1f%14.1f%12.2fx\n", label.c_str(), nclients, s,
                a, s > 0 ? a / s : 0.0);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  const index_t small = env_long("FTGEMM_BENCH_SIZE", 64);
  const index_t big = env_long("FTGEMM_BENCH_BIG", 192);
  const int team = int(env_long("FTGEMM_BENCH_SERVICE_THREADS", 4));
  const index_t window = env_long("FTGEMM_BENCH_WINDOW", 8);
  const int reps = bench_reps();
  // Equalize wall time per point across the two series.
  const index_t small_calls = env_long("FTGEMM_BENCH_CALLS", 160);
  const index_t big_calls = std::max<index_t>(small_calls / 8, 8);

  std::printf("# serving-layer throughput: async GemmService vs "
              "synchronous-loop clients\n");
  std::printf("# serial: %lld^3 nt=1 (queue-tax story); team: %lld^3 nt=%d "
              "(admission-control story);\n",
              (long long)small, (long long)big, team);
  std::printf("# window=%lld reps=%d hw_threads=%d — ratio = async/sync; "
              "team ratio >= 1 at >= 4 clients is the claim\n",
              (long long)window, reps, runtime::hardware_concurrency());
  std::printf("# sharded_* series: explicit shard counts (inline lane on), "
              "loaded client counts only\n");
  std::printf("%-16s%8s%14s%14s%13s\n", "series", "clients", "sync_rps",
              "async_rps", "ratio");

  std::atomic<int> failures{0};
  const index_t team_window = std::max(window / 2, index_t(4));
  run_series("serial_nt1", small, small_calls, window, 1, reps, 0,
             {1, 2, 4, 8}, failures);
  run_series("team_nt" + std::to_string(team), big, big_calls, team_window,
             team, reps, 0, {1, 2, 4, 8}, failures);
  // Shard-scaling sweep at loaded client counts: the sync baseline is the
  // same, so comparing async_rps across _s1/_s2/_s4 rows isolates sharding.
  for (const int s : {1, 2, 4}) {
    run_series("sharded_nt1_s" + std::to_string(s), small, small_calls,
               window, 1, reps, s, {4, 8}, failures);
  }
  for (const int s : {1, 2, 4}) {
    run_series("sharded_team_s" + std::to_string(s), big, big_calls,
               team_window, team, reps, s, {4, 8}, failures);
  }
  if (failures.load() != 0) {
    std::printf("# VERIFICATION FAILURES: %d\n", failures.load());
    return 1;
  }
  return 0;
}
