// Ablation: sensitivity of Ori / FT performance to the cache-blocking plan.
//
// §2.1: "the step sizes of these three for loops, MC, NC, and KC ... is
// determined by the size of each layer of the cache."  This bench sweeps KC
// and MC around the cache-derived defaults to show the plan sits at (or
// near) the optimum, and that the FT scheme's overhead is insensitive to
// the plan — the fusion argument is about memory passes, not tile shapes.
#include <cstdlib>

#include "bench_common.hpp"
#include "blocking/plan.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

namespace {

double run_point(index_t n, int reps, bool ft, SquareWorkload<double>& w) {
  // A fresh engine per point: FTGEMM_* knobs are read at plan-build time and
  // a warm PlanCache would mask the override, so start from an empty cache.
  GemmEngine<double> engine;
  engine.options().threads = 1;
  return median_gflops(n, n, n, reps, [&] {
    if (ft) {
      engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
                     n, n, 1.0, w.a.data(), n, w.b.data(), n, 0.0,
                     w.c.data(), n);
    } else {
      engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n,
                  n, 1.0, w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n);
    }
  });
}

}  // namespace

int main() {
  const int reps = bench_reps();
  const index_t n = std::min<index_t>(env_long("FTGEMM_BENCH_MAX", 1024),
                                      1024);
  const BlockingPlan base = make_plan(select_isa(), 8);
  std::printf("# blocking ablation at %lldx%lldx%lld (defaults: MC=%lld "
              "NC=%lld KC=%lld)\n",
              (long long)n, (long long)n, (long long)n, (long long)base.mc,
              (long long)base.nc, (long long)base.kc);
  std::printf("%-12s%-8s%14s%14s%14s\n", "param", "value", "ori_GF", "ft_GF",
              "ft_ovr_%");

  SquareWorkload<double> w(n);

  const auto run_with = [&](const char* var, long value) {
    ::setenv(var, std::to_string(value).c_str(), 1);
    const double ori = run_point(n, reps, false, w);
    const double ft = run_point(n, reps, true, w);
    ::unsetenv(var);
    std::printf("%-12s%-8ld%14.2f%14.2f%14.2f\n", var + 7 /* skip FTGEMM_ */,
                value, ori, ft, ori > 0 ? 100.0 * (ori - ft) / ori : 0.0);
    std::fflush(stdout);
  };

  for (const long kc : {64L, 128L, 256L, 384L, 512L}) run_with("FTGEMM_KC", kc);
  for (const long mc : {32L, 64L, 128L, 256L, 512L}) run_with("FTGEMM_MC", mc);
  for (const long nc : {512L, 1024L, 4096L, 8192L}) run_with("FTGEMM_NC", nc);
  // Register-tile ablation (AVX-512 f64 only): MR=8 halves the accumulator
  // count, MR=24 maximizes reuse per B broadcast at higher register
  // pressure; the FT epilogue cost also scales with the tile shape.
  for (const long mr : {8L, 16L, 24L}) run_with("FTGEMM_KERNEL_MR", mr);
  return 0;
}
