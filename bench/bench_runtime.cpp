// Team-runtime dispatch latency: persistent worker pool vs per-call OpenMP
// region entry, at the serving sizes where region overhead is a visible
// fraction of the call (64^3 .. 256^3).
//
// Two kinds of rows:
//   disp — an empty team body: pure fork/barrier/join cost of one parallel
//          region (µs per dispatch).  This is the quantity the pool's
//          parked-worker wakeup is designed to beat.
//   N    — per-call latency (µs) of an Ori dgemm of size N^3 on the general
//          blocked path (fast path disabled so the team machinery is always
//          under test), same plan on both backends.
//
// Series are interleaved (omp, pool, omp, pool, ...) per rep so noise and
// frequency drift bias neither side; the reported value is the median over
// FTGEMM_BENCH_REPS bursts of FTGEMM_BENCH_CALLS calls.  Teams are
// max(FTGEMM_BENCH_THREADS, 2) wide — dispatch latency is undefined for a
// one-member team (both backends run it inline).
#include <utility>

#include "bench_common.hpp"
#include "runtime/team.hpp"
#include "runtime/topology.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

namespace {

/// Median per-call latency (µs) of two interleaved series.
template <typename FnA, typename FnB>
std::pair<double, double> interleaved_burst_us(index_t calls, int reps,
                                               FnA&& fa, FnB&& fb) {
  std::vector<double> sa, sb;
  sa.reserve(std::size_t(reps));
  sb.reserve(std::size_t(reps));
  fa();  // warm-up: spawn pool workers, touch workspaces, populate caches
  fb();
  for (int r = 0; r < reps; ++r) {
    WallTimer ta;
    for (index_t i = 0; i < calls; ++i) fa();
    sa.push_back(ta.seconds() / double(calls) * 1e6);
    WallTimer tb;
    for (index_t i = 0; i < calls; ++i) fb();
    sb.push_back(tb.seconds() / double(calls) * 1e6);
  }
  return {compute_stats(sa).median, compute_stats(sb).median};
}

void print_row(const char* label, double omp_us, double pool_us) {
  std::printf("%-8s%14.2f%14.2f%13.2fx\n", label, omp_us, pool_us,
              pool_us > 0 ? omp_us / pool_us : 0.0);
  std::fflush(stdout);
}

}  // namespace

int main() {
  const int reps = bench_reps();
  const index_t calls = env_long("FTGEMM_BENCH_CALLS", 200);
  const int nt = std::max(bench_threads(), 2);
  std::printf("# team-runtime dispatch: OpenMP region entry vs persistent "
              "pool wakeup\n");
  std::printf("# nt=%d calls=%lld reps=%d hw_threads=%d (disp = empty team "
              "body, us/dispatch;\n",
              nt, (long long)calls, reps, runtime::hardware_concurrency());
  std::printf("# N = Ori dgemm N^3 us/call, general path, same plan both "
              "backends)\n");
  std::printf("%-8s%14s%14s%13s\n", "size", "omp_us", "pool_us",
              "pool_speedup");

  {
    auto empty = [](runtime::TeamMember& tm) { tm.barrier(); };
    const auto [omp_us, pool_us] = interleaved_burst_us(
        calls, reps,
        [&] { runtime::run_team(RuntimeBackend::kOpenMP, nt, empty); },
        [&] { runtime::run_team(RuntimeBackend::kPool, nt, empty); });
    print_row("disp", omp_us, pool_us);
  }

  for (const index_t n : {index_t(64), index_t(96), index_t(128),
                          index_t(192), index_t(256)}) {
    SquareWorkload<double> w(n);
    Options omp_opts;
    omp_opts.threads = nt;
    omp_opts.runtime = RuntimeBackend::kOpenMP;
    omp_opts.small_fast_path = false;
    Options pool_opts = omp_opts;
    pool_opts.runtime = RuntimeBackend::kPool;
    const auto call = [&](const Options& o) {
      dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n,
            1.0, w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n, o);
    };
    const auto [omp_us, pool_us] = interleaved_burst_us(
        calls, reps, [&] { call(omp_opts); }, [&] { call(pool_opts); });
    print_row(std::to_string(n).c_str(), omp_us, pool_us);
  }
  return 0;
}
