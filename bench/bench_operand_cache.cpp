// Resident-operand cache benchmark: the repeated-weight serving regime the
// cache was built for (one weight matrix, fresh activations per request).
//
// Three interleaved series of repeated calls over one resident-shaped
// weight:
//   ori      — unprotected dgemm, per-call packing: the no-FT ceiling.
//   ft_cold  — fused-FT ft_dgemm, per-call pack + checksum encode: the
//              pre-cache protected cost.
//   ft_res   — fused-FT ft_dgemm with Options::resident_a: cache hits
//              re-using the packed + encoded panels (CHECK_BEFORE
//              re-verification included).
//   ft_resnv — same hits with resident_verify = false: the price of the
//              per-hit CHECK_BEFORE sweep, isolated.
//
// Columns are burst GFLOPS (median of FTGEMM_BENCH_REPS bursts) plus the
// two ratios the acceptance criterion reads: ft_res/ori (protected serving
// vs the unprotected ceiling — the "within a few %" claim) and
// ft_res/ft_cold (what the resident panels buy over cold FT).
// FTGEMM_BENCH_CALLS overrides the burst length.
#include "bench_common.hpp"
#include "core/gemm.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

namespace {

/// One series of burst samples (the three series' bursts run interleaved
/// so machine drift biases none of them).
struct Series {
  std::vector<double> samples;
  [[nodiscard]] double median() const { return compute_stats(samples).median; }
};

}  // namespace

int main() {
  const int reps = bench_reps();
  const index_t calls = env_long("FTGEMM_BENCH_CALLS", 100);
  std::printf("# resident-operand cache, repeated-weight serving\n");
  std::printf("# ori = unprotected dgemm; ft_cold = fused-FT per-call "
              "encode; ft_res = fused-FT resident-A hits (verified); "
              "ft_resnv = hits without CHECK_BEFORE\n");
  std::printf("# calls=%lld reps=%d threads=1\n", (long long)calls, reps);
  std::printf("%-8s%12s%12s%12s%12s%14s%14s\n", "size", "ori_GF",
              "ftcold_GF", "ftres_GF", "ftresnv_GF", "ftres/ori",
              "ftres/ftcold");

  for (const index_t n : {index_t(64), index_t(96), index_t(128),
                          index_t(192), index_t(256)}) {
    SquareWorkload<double> w(n);
    Options ori_opts;
    ori_opts.threads = 1;
    Options ft_opts = ori_opts;
    Options res_opts = ori_opts;
    res_opts.resident_a = true;
    Options resnv_opts = res_opts;
    resnv_opts.resident_verify = false;

    const auto ori = [&] {
      dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n,
            1.0, w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n, ori_opts);
    };
    const auto ft_cold = [&] {
      ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n,
               1.0, w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n,
               ft_opts);
    };
    const auto ft_res = [&] {
      ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n,
               1.0, w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n,
               res_opts);
    };
    const auto ft_resnv = [&] {
      ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n,
               1.0, w.a.data(), n, w.b.data(), n, 0.0, w.c.data(), n,
               resnv_opts);
    };

    // Warm-up: workspaces, plans, and the resident entry (first res call
    // encodes; every measured one must be a verified hit).
    ori();
    ft_cold();
    ft_res();
    ft_res();
    ft_resnv();

    Series s_ori, s_cold, s_res, s_resnv;
    const double flops = double(n) * double(calls);
    for (int r = 0; r < reps; ++r) {
      WallTimer t0;
      for (index_t i = 0; i < calls; ++i) ori();
      s_ori.samples.push_back(
          gemm_gflops(flops, double(n), double(n), t0.seconds()));
      WallTimer t1;
      for (index_t i = 0; i < calls; ++i) ft_cold();
      s_cold.samples.push_back(
          gemm_gflops(flops, double(n), double(n), t1.seconds()));
      WallTimer t2;
      for (index_t i = 0; i < calls; ++i) ft_res();
      s_res.samples.push_back(
          gemm_gflops(flops, double(n), double(n), t2.seconds()));
      WallTimer t3;
      for (index_t i = 0; i < calls; ++i) ft_resnv();
      s_resnv.samples.push_back(
          gemm_gflops(flops, double(n), double(n), t3.seconds()));
    }

    const double g_ori = s_ori.median();
    const double g_cold = s_cold.median();
    const double g_res = s_res.median();
    const double g_resnv = s_resnv.median();
    std::printf("%-8lld%12.2f%12.2f%12.2f%12.2f%13.3fx%13.3fx\n",
                (long long)n, g_ori, g_cold, g_res, g_resnv,
                g_ori > 0 ? g_res / g_ori : 0.0,
                g_cold > 0 ? g_res / g_cold : 0.0);
    std::fflush(stdout);
  }
  return 0;
}
