// Shared infrastructure for the paper-figure benchmark binaries.
//
// Environment knobs (all optional):
//   FTGEMM_BENCH_MAX    largest square size in the sweep   (default 1024)
//   FTGEMM_BENCH_REPS   timed repetitions per point        (default 5;
//                       the paper uses 20 — raise it on quiet machines)
//   FTGEMM_BENCH_THREADS  thread count for the parallel figures
//                         (default: omp_get_max_threads())
//
// The paper sweeps 1024..10240 (serial) and 512..20480 (parallel) on a
// 10-core Xeon W-2255; the default sweep here is scaled to a CI-class
// single-core VM but keeps the same geometry (doubling sizes, same series).
#pragma once

#include <omp.h>

#include <cstdio>
#include <string>
#include <vector>

#include "arch/cpu_features.hpp"
#include "baseline/naive_gemm.hpp"
#include "baseline/unfused_abft.hpp"
#include "core/gemm.hpp"
#include "inject/injectors.hpp"
#include "runtime/topology.hpp"
#include "util/env.hpp"
#include "util/matrix.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

// Source revision the binary was built from; CMake stamps the bench
// targets with the configure-time `git rev-parse --short HEAD` (see
// CMakeLists.txt).  "unknown" covers out-of-tree builds of the header.
#ifndef FTGEMM_GIT_SHA
#define FTGEMM_GIT_SHA "unknown"
#endif

namespace ftgemm::bench {

inline std::vector<index_t> square_sizes(index_t lo = 256) {
  const index_t max = env_long("FTGEMM_BENCH_MAX", 1024);
  std::vector<index_t> sizes;
  for (index_t s = lo; s <= max; s *= 2) {
    sizes.push_back(s);
    const index_t mid = s + s / 2;
    if (mid <= max && mid < s * 2) sizes.push_back(mid);
  }
  return sizes;
}

inline int bench_reps() { return int(env_long("FTGEMM_BENCH_REPS", 5)); }

inline int bench_threads() {
  return int(env_long("FTGEMM_BENCH_THREADS", omp_get_max_threads()));
}

/// Time `fn` (a full GEMM of the given shape) `reps` times; median GFLOPS.
template <typename Fn>
double median_gflops(index_t m, index_t n, index_t k, int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(std::size_t(reps));
  fn();  // warm-up (also first-touch of workspaces)
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    samples.push_back(gemm_gflops(double(m), double(n), double(k),
                                  t.seconds()));
  }
  return compute_stats(samples).median;
}

/// One benchmark workload: square operands, C overwritten every run
/// (beta = 0 keeps runs independent so repetitions are comparable).
template <typename T>
struct SquareWorkload {
  index_t n;
  Matrix<T> a, b, c;

  explicit SquareWorkload(index_t size, std::uint64_t seed = 42)
      : n(size), a(size, size), b(size, size), c(size, size) {
    a.fill_random(seed);
    b.fill_random(seed + 1);
    c.fill(T(0));
  }
};

inline void print_header(const char* title, const char* figure,
                         const std::vector<std::string>& columns) {
  std::printf("# %s\n", title);
  std::printf("# reproduces: %s\n", figure);
  std::printf("# threads=%d reps=%d (paper: 20 reps, Xeon W-2255)\n",
              bench_threads(), bench_reps());
  // Machine context, so a record from a 1-hardware-thread CI container is
  // self-describing next to one from real multi-core hardware (record.sh
  // lifts this line into the JSON env block).
  std::printf("# hardware_concurrency=%d team_backend=%s\n",
              runtime::hardware_concurrency(),
              runtime::resolve_backend(RuntimeBackend::kAuto) ==
                      RuntimeBackend::kPool
                  ? "pool"
                  : "openmp");
  // Provenance: which source revision produced the numbers and which ISA
  // feature bits the dispatch saw — two records of the same bench are only
  // comparable when both match (record.sh lifts these into the JSON env
  // block).
  std::printf("# git_sha=%s isa_features=%s\n", FTGEMM_GIT_SHA,
              cpu_feature_string().c_str());
  std::printf("%-8s", "size");
  for (const std::string& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
}

}  // namespace ftgemm::bench
