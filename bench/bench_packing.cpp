// Packing & checksum engine: scalar templates vs the ISA-dispatched SIMD
// PackSet (pack_a_ft / pack_b_ft / reduce_bc / scale_encode_c / encode_ar),
// NoTrans and Trans, in GB/s of operand traffic.
//
// This is the O(n^2)-per-panel layer the fused-ABFT scheme lives in: its
// acceptance bar is dispatched pack_a_ft / pack_b_ft >= 1.5x scalar on
// AVX2-capable hardware (see ISSUE 3 / docs/DESIGN.md "SIMD packing &
// checksum engine").
//
// Shapes mirror one macro-tile of the f64 AVX-512 plan: an MC x KC A block
// and a KC x NC B panel.  The default edge (192) keeps the tile L2-resident
// so the engine is measured rather than DRAM bandwidth — the regime the
// cache-derived blocking plan puts the real pack calls in.  Override the
// depth/width with FTGEMM_BENCH_SIZE (panel edge); at DRAM-sized edges the
// ratios compress toward the machine's bandwidth ceiling.
// `speedup` = simd_GBs / scalar_GBs.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernels/packing.hpp"

using namespace ftgemm;
using namespace ftgemm::bench;

namespace {

/// Median GB/s over reps of fn() moving `bytes` per call.
template <typename Fn>
double median_gbs(double bytes, int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(std::size_t(reps));
  fn();  // warm-up
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    const double s = t.seconds();
    samples.push_back(s > 0 ? bytes / s / 1e9 : 0.0);
  }
  return compute_stats(samples).median;
}

void print_row(const char* op, const char* trans, double scalar_gbs,
               double simd_gbs) {
  std::printf("%-16s%14s%14.2f%14.2f%14.2fx\n", op, trans, scalar_gbs,
              simd_gbs, scalar_gbs > 0 ? simd_gbs / scalar_gbs : 0.0);
}

}  // namespace

int main() {
  const int reps = bench_reps();
  const index_t edge = env_long("FTGEMM_BENCH_SIZE", 192);
  const index_t kc = edge, mc = edge, nc = 2 * edge;
  const KernelSet<double> ks = get_kernel_set<double>(select_isa());
  const PackSet<double> simd = ks.pack;
  const PackSet<double> scalar = get_pack_set<double>(Isa::kScalar);
  const index_t mr = ks.mr, nr = ks.nr;

  std::printf("# packing & checksum engine, scalar vs dispatched (%s)\n",
              std::string(isa_name(simd.isa)).c_str());
  std::printf("# reproduces: ISSUE 3 acceptance (pack >= 1.5x scalar)\n");
  std::printf("# mc=%lld nc=%lld kc=%lld mr=%lld nr=%lld reps=%d\n",
              (long long)mc, (long long)nc, (long long)kc, (long long)mr,
              (long long)nr, reps);
  std::printf("%-16s%14s%14s%14s%14s\n", "op", "trans", "scalar_GBs",
              "simd_GBs", "speedup");

  Matrix<double> a(mc + 8, kc + 8), b(kc + 8, nc + 8);
  a.fill_random(7);
  b.fill_random(9);

  const index_t apanels = (mc + mr - 1) / mr;
  const index_t bpanels = (nc + nr - 1) / nr;
  std::vector<double> atilde(std::size_t(apanels * mr * kc));
  std::vector<double> btilde(std::size_t(bpanels * nr * kc));
  std::vector<double> bc(std::size_t(kc), 0.5), cc(static_cast<std::size_t>(mc));
  std::vector<double> ar(std::size_t(kc), 0.25), cr(static_cast<std::size_t>(nc));

  for (const bool trans : {false, true}) {
    const char* tname = trans ? "T" : "N";
    // pack_a_ft streams mc*kc doubles in, writes the same out, plus the cc
    // FMA — count the packed traffic both ways.
    const OperandView<double> av{a.data(), a.ld(), trans};
    const double a_bytes = 2.0 * double(mc) * double(kc) * sizeof(double);
    const double sa = median_gbs(a_bytes, reps, [&] {
      scalar.pack_a_ft(av, 0, 0, mc, kc, mr, 1.0, atilde.data(), bc.data(),
                       cc.data());
    });
    const double va = median_gbs(a_bytes, reps, [&] {
      simd.pack_a_ft(av, 0, 0, mc, kc, mr, 1.0, atilde.data(), bc.data(),
                     cc.data());
    });
    print_row("pack_a_ft", tname, sa, va);

    const OperandView<double> bv{b.data(), b.ld(), trans};
    const double b_bytes = 3.0 * double(kc) * double(nc) * sizeof(double);
    const double sb = median_gbs(b_bytes, reps, [&] {
      scalar.pack_b_ft(bv, 0, 0, kc, nc, nr, btilde.data(), ar.data(),
                       cr.data());
    });
    const double vb = median_gbs(b_bytes, reps, [&] {
      simd.pack_b_ft(bv, 0, 0, kc, nc, nr, btilde.data(), ar.data(),
                     cr.data());
    });
    print_row("pack_b_ft", tname, sb, vb);
  }

  {
    const double r_bytes = double(kc) * double(nc) * sizeof(double);
    const double sr = median_gbs(r_bytes, reps, [&] {
      scalar.reduce_bc(btilde.data(), kc, nc, nr, 0, kc, bc.data(), 0.0);
    });
    const double vr = median_gbs(r_bytes, reps, [&] {
      simd.reduce_bc(btilde.data(), kc, nc, nr, 0, kc, bc.data(), 0.0);
    });
    print_row("reduce_bc", "-", sr, vr);
  }

  {
    Matrix<double> c(mc, nc);
    c.fill_random(11);
    std::vector<double> cr_part(static_cast<std::size_t>(nc));
    const double c_bytes = 2.0 * double(mc) * double(nc) * sizeof(double);
    const double sc = median_gbs(c_bytes, reps, [&] {
      scalar.scale_encode_c(c.data(), c.ld(), 0, mc, nc, 0.5, cc.data(),
                            cr_part.data());
    });
    const double vc = median_gbs(c_bytes, reps, [&] {
      simd.scale_encode_c(c.data(), c.ld(), 0, mc, nc, 0.5, cc.data(),
                          cr_part.data());
    });
    print_row("scale_encode_c", "-", sc, vc);
  }

  for (const bool trans : {false, true}) {
    const OperandView<double> av{a.data(), a.ld(), trans};
    std::vector<double> ar_part(static_cast<std::size_t>(kc));
    const double e_bytes = double(mc) * double(kc) * sizeof(double);
    const double se = median_gbs(e_bytes, reps, [&] {
      scalar.encode_ar(av, 0, mc, kc, 1.0, ar_part.data());
    });
    const double ve = median_gbs(e_bytes, reps, [&] {
      simd.encode_ar(av, 0, mc, kc, 1.0, ar_part.data());
    });
    print_row("encode_ar", trans ? "T" : "N", se, ve);
  }

  std::fflush(stdout);
  return 0;
}
