// Memory-fault campaign sweep (DESIGN.md §12): detection / correction rates
// per strike surface as the fault count and burstiness grow.
//
// Every cell runs `run_memory_campaign` over the default grid: surfaces
// {resident, panel_a, panel_b, plan} x faults {1, 4} x burst {1, 3}, with
// the resident surface swept both without ECC (re-encode heal) and with the
// SEC-DED coded payload (in-place correction).  The table is counters, not
// wall time — the record is bit-reproducible under a fixed seed, and the
// claims it backs are the acceptance claims: 100% detection of single-bit
// strikes on every surface, and a `silent` column that is all zeros.
//
// Environment knobs:
//   FTGEMM_BENCH_CALLS    trials per campaign cell (default 20)
//   FTGEMM_BENCH_THREADS  worker threads inside each GEMM (default 2)
#include "bench_common.hpp"
#include "inject/memory_campaign.hpp"

int main() {
  using namespace ftgemm;
  using namespace ftgemm::bench;

  const int trials = int(env_long("FTGEMM_BENCH_CALLS", 20));
  const int threads = int(env_long("FTGEMM_BENCH_THREADS", 2));
  const std::uint64_t seed = 0x5eedu;

  std::printf("# memory-fault campaign: detection/correction vs faults x "
              "burst x surface\n");
  std::printf("# reproduces: DESIGN.md §12 memory-fault model claims\n");
  std::printf("# trials_per_cell=%d threads=%d seed=%llu\n", trials, threads,
              static_cast<unsigned long long>(seed));
  std::printf("# hardware_concurrency=%d team_backend=%s\n",
              runtime::hardware_concurrency(),
              runtime::resolve_backend(RuntimeBackend::kAuto) ==
                      RuntimeBackend::kPool
                  ? "pool"
                  : "openmp");
  std::printf("# git_sha=%s isa_features=%s\n", FTGEMM_GIT_SHA,
              cpu_feature_string().c_str());
  std::printf("%-10s%8s%8s%6s%8s%10s%10s%10s%8s%8s%10s%9s%8s%8s%10s\n",
              "surface", "faults", "burst", "ecc", "trials", "inj_bits",
              "detected", "ecc_fix", "heals", "planfix", "abft_det",
              "abft_fix", "masked", "silent", "det_rate");

  std::vector<MemoryCampaignConfig> grid =
      default_memory_campaign_grid(trials, seed);
  for (MemoryCampaignConfig& cfg : grid) cfg.threads = threads;

  const std::vector<MemoryCampaignResult> results =
      run_memory_campaign_sweep(grid);
  for (const MemoryCampaignResult& r : results) {
    std::printf("%-10s%8d%8d%6s%8d%10lld%10lld%10lld%8lld%8lld%10lld%9lld"
                "%8lld%8lld%10.3f\n",
                memory_surface_name(r.config.surface), r.config.faults,
                r.config.burst, r.config.ecc ? "on" : "off", r.trials,
                static_cast<long long>(r.injected_bits),
                static_cast<long long>(r.detected_trials),
                static_cast<long long>(r.ecc_corrected),
                static_cast<long long>(r.heals),
                static_cast<long long>(r.plan_heals),
                static_cast<long long>(r.abft_detected),
                static_cast<long long>(r.abft_corrected),
                static_cast<long long>(r.masked_trials),
                static_cast<long long>(r.silent_trials), r.detection_rate());
  }
  return 0;
}
