// Example: live error-injection storm — the paper's "hundreds of errors
// injected per minute" regime (§3.2), visualized.
//
// Runs back-to-back protected multiplications while a wall-clock rate
// injector fires continuously, and prints a running log: throughput,
// injected/corrected counts, and verification status per multiplication.
//
//   build/examples/resilience_demo [size] [seconds] [errors_per_minute]
#include <cstdio>
#include <cstdlib>

#include "ftgemm.hpp"

using namespace ftgemm;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 768;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 10.0;
  const double epm = argc > 3 ? std::atof(argv[3]) : 600.0;

  Matrix<double> a(n, n), b(n, n), c(n, n), ref(n, n);
  a.fill_random(1);
  b.fill_random(2);
  c.fill(0.0);
  ref.fill(0.0);

  GemmEngine<double> clean_engine;
  clean_engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
                    n, n, 1.0, a.data(), n, b.data(), n, 0.0, ref.data(), n);

  RateInjector injector(epm, /*seed=*/4096, /*magnitude=*/5.0);
  Options opts;
  opts.injector = &injector;
  GemmEngine<double> engine(opts);

  std::printf("error storm: %.0f errors/minute over %.0fs of back-to-back "
              "%lld^3 FT-DGEMMs\n",
              epm, seconds, (long long)n);
  std::printf("%-6s%10s%12s%12s%12s%10s\n", "call", "GFLOPS", "injected",
              "corrected", "max_rel_er", "status");

  WallTimer wall;
  std::int64_t total_corrected = 0;
  std::size_t last_injected = 0;
  int call = 0;
  int dirty_calls = 0;
  while (wall.seconds() < seconds) {
    ++call;
    c.fill(0.0);
    WallTimer t;
    const FtReport rep = engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans,
                                        Trans::kNoTrans, n, n, n, 1.0,
                                        a.data(), n, b.data(), n, 0.0,
                                        c.data(), n);
    const double gflops =
        gemm_gflops(double(n), double(n), double(n), t.seconds());
    total_corrected += rep.errors_corrected;
    const std::size_t injected_now = injector.injected_count();
    const double err = max_rel_diff(c, ref);
    const bool good = rep.clean() && err < 1e-9;
    dirty_calls += good ? 0 : 1;
    std::printf("%-6d%10.1f%12zu%12lld%12.1e%10s\n", call, gflops,
                injected_now - last_injected,
                (long long)rep.errors_corrected, err,
                good ? "ok" : "UNCORRECTED");
    std::fflush(stdout);
    last_injected = injected_now;
  }

  std::printf("\n%d multiplications, %zu faults injected, %lld corrected, "
              "%d calls with residual faults\n",
              call, injector.injected_count(), (long long)total_corrected,
              dirty_calls);
  std::printf("(a fault landing in a row AND column collision can be "
              "detected-but-uncorrectable; ft_dgemm_reliable re-runs those)\n");
  return 0;
}
