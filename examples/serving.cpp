// Asynchronous serving demo: one GemmService front-end absorbing mixed
// traffic — high-priority protected requests, bulk low-priority work, a
// burst of same-shape small GEMMs that the dispatcher coalesces into one
// batched call, a strided-batched inference request, and a cancellation —
// with completion callbacks and the per-service counters.
//
// Self-checking: exits 0 iff every served result verifies against the
// naive oracle, the coalesced burst actually merged, priorities completed
// ahead of bulk work, and the service accounting balances.
//
//   ./serving [burst] [bulk]     (defaults: burst=12 bulk=6)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ftgemm.hpp"

using namespace ftgemm;

namespace {

struct Workload {
  Matrix<double> a, b, c, ref;
  Workload(index_t m, index_t n, index_t k, std::uint64_t seed)
      : a(m, k), b(k, n), c(m, n), ref(m, n) {
    a.fill_random(seed);
    b.fill_random(seed + 1);
    c.fill(0.0);
    ref.fill(0.0);
    baseline::naive_dgemm(Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.0,
                          a.data(), a.ld(), b.data(), b.ld(), 0.0, ref.data(),
                          ref.ld());
  }
  [[nodiscard]] bool verify(double tol = 1e-9) const {
    return max_rel_diff(c, ref) <= tol;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const int burst = argc > 1 ? std::atoi(argv[1]) : 12;
  const int bulk = argc > 2 ? std::atoi(argv[2]) : 6;
  bool ok = true;
  const auto check = [&](bool cond, const char* what) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };

  std::printf("== FT-GEMM async serving demo ==\n");
  serve::ServiceConfig cfg;
  cfg.max_inflight = 2;
  cfg.start_paused = true;  // stage the whole mix, then open the gate
  serve::GemmService service(cfg);

  // 1. A high-priority protected request (the latency-critical tenant).
  Workload hot(96, 80, 260, 1);
  std::atomic<int> completion_rank{0};
  int hot_rank = -1;
  serve::GemmFuture hot_fut = service.submit(serve::make_gemm_request<double>(
      /*ft=*/true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 96,
      80, 260, 1.0, hot.a.data(), hot.a.ld(), hot.b.data(), hot.b.ld(), 0.0,
      hot.c.data(), hot.c.ld(), {}, serve::Priority::kHigh));
  hot_fut.then([&](const serve::GemmResult&) {
    hot_rank = completion_rank.fetch_add(1);
  });

  // 2. Bulk low-priority Ori work (the batch tenant).
  std::vector<Workload> bulk_work;
  std::vector<serve::GemmFuture> bulk_futs;
  int last_bulk_rank = -1;
  for (int i = 0; i < bulk; ++i) {
    bulk_work.emplace_back(128, 96, 180, std::uint64_t(100 + i));
    Workload& w = bulk_work.back();
    serve::GemmFuture f = service.submit(serve::make_gemm_request<double>(
        /*ft=*/false, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
        128, 96, 180, 1.0, w.a.data(), w.a.ld(), w.b.data(), w.b.ld(), 0.0,
        w.c.data(), w.c.ld(), {}, serve::Priority::kLow));
    f.then([&](const serve::GemmResult&) {
      last_bulk_rank = completion_rank.fetch_add(1);
    });
    bulk_futs.push_back(std::move(f));
  }

  // 3. A burst of same-shape small FT requests — the coalescing regime.
  std::vector<Workload> burst_work;
  std::vector<serve::GemmFuture> burst_futs;
  for (int i = 0; i < burst; ++i) {
    burst_work.emplace_back(48, 40, 64, std::uint64_t(200 + i));
    Workload& w = burst_work.back();
    burst_futs.push_back(service.submit(serve::make_gemm_request<double>(
        /*ft=*/true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 48,
        40, 64, 1.0, w.a.data(), w.a.ld(), w.b.data(), w.b.ld(), 0.0,
        w.c.data(), w.c.ld())));
  }

  // 4. A strided-batched FT request (one ML inference step: shared weights,
  //    stride-0 broadcast A).
  const index_t bn = 32, bbatch = 4;
  Workload inference(bn, bn * bbatch, bn, 300);
  serve::GemmFuture inf_fut =
      service.submit(serve::make_strided_batched_request<double>(
          /*ft=*/true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
          bn, bn, bn, 1.0, inference.a.data(), inference.a.ld(), 0,
          inference.b.data(), inference.b.ld(), bn * inference.b.ld(), 0.0,
          inference.c.data(), inference.c.ld(), bn * inference.c.ld(),
          bbatch));

  // 5. A request we change our mind about.
  Workload doomed(64, 64, 64, 400);
  serve::GemmFuture doomed_fut =
      service.submit(serve::make_gemm_request<double>(
          /*ft=*/true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
          64, 64, 64, 1.0, doomed.a.data(), doomed.a.ld(), doomed.b.data(),
          doomed.b.ld(), 0.0, doomed.c.data(), doomed.c.ld(), {},
          serve::Priority::kLow));
  const bool cancelled = doomed_fut.cancel();

  std::printf("staged: 1 high + %d bulk + %d burst + 1 batched + 1 "
              "cancelled (queue depth %zu)\n",
              bulk, burst, service.queue_depth());
  service.resume();
  service.shutdown(/*drain=*/true);

  // -- Verification ---------------------------------------------------------
  const serve::GemmResult& hot_res = hot_fut.wait();
  check(hot_res.status == serve::RequestStatus::kDone && hot_res.ok() &&
            hot.verify(),
        "high-priority FT request served and verified");
  check(hot_rank == 0, "high-priority request completed first");

  bool bulk_ok = true;
  for (int i = 0; i < bulk; ++i) {
    bulk_ok = bulk_ok &&
              bulk_futs[std::size_t(i)].wait().status ==
                  serve::RequestStatus::kDone &&
              bulk_work[std::size_t(i)].verify();
  }
  check(bulk_ok, "bulk Ori requests served and verified");
  check(last_bulk_rank == completion_rank.load() - 1,
        "low-priority bulk drained last");

  bool burst_ok = true, any_coalesced = false;
  for (int i = 0; i < burst; ++i) {
    const serve::GemmResult& r = burst_futs[std::size_t(i)].wait();
    burst_ok = burst_ok && r.status == serve::RequestStatus::kDone &&
               r.ok() && burst_work[std::size_t(i)].verify();
    any_coalesced = any_coalesced || r.coalesced;
  }
  check(burst_ok, "small-GEMM burst served and verified");
  check(any_coalesced, "burst rode coalesced-into-batched routing");

  const serve::GemmResult& inf_res = inf_fut.wait();
  check(inf_res.status == serve::RequestStatus::kDone &&
            inf_res.batch.problems == bbatch && inference.verify(),
        "strided-batched inference request served and verified");

  check(cancelled &&
            doomed_fut.wait().status == serve::RequestStatus::kCancelled,
        "cancelled request never executed");

  const serve::ServiceStats stats = service.stats();
  std::printf(
      "\nservice counters: submitted=%llu completed=%llu cancelled=%llu "
      "rejected=%llu\n  coalesced: %llu requests in %llu batched calls; "
      "direct=%llu batched=%llu\n  ft: detected=%lld corrected=%lld "
      "dirty=%llu | peak queue=%llu peak inflight=%llu\n",
      (unsigned long long)stats.submitted, (unsigned long long)stats.completed,
      (unsigned long long)stats.cancelled, (unsigned long long)stats.rejected,
      (unsigned long long)stats.coalesced_members,
      (unsigned long long)stats.coalesced_batches,
      (unsigned long long)stats.direct_calls,
      (unsigned long long)stats.batched_calls,
      (long long)stats.errors_detected, (long long)stats.errors_corrected,
      (unsigned long long)stats.dirty_results,
      (unsigned long long)stats.peak_queue_depth,
      (unsigned long long)stats.peak_inflight);
  check(stats.completed + stats.cancelled == stats.submitted,
        "accounting balances: every admitted request settled");

  std::printf("\n%s\n", ok ? "ALL SERVED REQUESTS VERIFIED"
                           : "SERVING DEMO FAILED");
  return ok ? 0 : 1;
}
