// Quickstart: the 60-second tour of the FT-GEMM public API.
//
//   build/examples/quickstart
//
// Computes C = A*B three ways — unprotected high-performance GEMM ("Ori"),
// fault-tolerant GEMM, and fault-tolerant GEMM with a soft error injected —
// and shows that the FT path detects, locates and corrects the error.
#include <cstdio>

#include "ftgemm.hpp"

int main() {
  using namespace ftgemm;
  const index_t n = 512;

  Matrix<double> a(n, n), b(n, n), c(n, n);
  a.fill_random(/*seed=*/1);
  b.fill_random(/*seed=*/2);
  c.fill(0.0);

  std::printf("FT-GEMM quickstart — %lld x %lld x %lld, ISA: %s\n",
              (long long)n, (long long)n, (long long)n,
              std::string(isa_name(select_isa())).c_str());

  // 1. The unprotected high-performance GEMM.
  WallTimer t;
  dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
        a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld());
  std::printf("  ori      : %6.1f GFLOPS\n",
              gemm_gflops(double(n), double(n), double(n), t.seconds()));
  const Matrix<double> reference = c.clone();

  // 2. The same multiplication with online ABFT protection.
  c.fill(0.0);
  t.restart();
  FtReport rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans,
                          Trans::kNoTrans, n, n, n, 1.0, a.data(), a.ld(),
                          b.data(), b.ld(), 0.0, c.data(), c.ld());
  std::printf("  ft       : %6.1f GFLOPS  (%d panels verified, clean=%s)\n",
              gemm_gflops(double(n), double(n), double(n), t.seconds()),
              rep.panels, rep.clean() ? "yes" : "no");

  // 3. Same again, but with a soft error injected into the compute kernel.
  DeterministicInjector injector({{InjectionKind::kAddDelta, /*panel=*/0,
                                   /*i=*/100, /*j=*/200, /*delta=*/42.0,
                                   /*bit=*/0}});
  Options opts;
  opts.injector = &injector;
  c.fill(0.0);
  rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n,
                 n, 1.0, a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(),
                 c.ld(), opts);
  std::printf(
      "  ft+fault : injected %zu, detected %lld, corrected %lld, "
      "result max-rel-err vs ori = %.2e\n",
      injector.injected_count(), (long long)rep.errors_detected,
      (long long)rep.errors_corrected, max_rel_diff(c, reference));

  return rep.clean() ? 0 : 1;
}
