// Example: systematic fault-injection campaign across error densities.
//
// Sweeps the number of injected errors per multiplication and reports, for
// each regime, the detection/correction bookkeeping and whether any run
// produced a silently wrong result — the reproduction of the paper's §3.2
// reliability argument as a one-command experiment.
//
//   build/examples/fault_campaign [size] [runs_per_regime]
#include <cstdio>
#include <cstdlib>

#include "inject/campaign.hpp"

using namespace ftgemm;

int main(int argc, char** argv) {
  const index_t size = argc > 1 ? std::atoll(argv[1]) : 384;
  const int runs = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf("fault campaign: %lld^3 DGEMM, %d runs per regime, "
              "ft_dgemm_reliable\n",
              (long long)size, runs);
  std::printf("%-10s%12s%12s%12s%10s%10s%12s%12s\n", "errs/run", "injected",
              "detected", "corrected", "retries", "dirty", "max_rel_er",
              "GFLOPS");

  bool all_reliable = true;
  for (const int errors : {0, 1, 5, 20, 50, 100}) {
    CampaignConfig config;
    config.size = size;
    config.runs = runs;
    config.errors_per_run = errors;
    config.magnitude = 3.0;
    config.seed = 0xC0FFEE + std::uint64_t(errors);
    config.use_reliable = true;
    const CampaignResult r = run_injection_campaign(config);
    all_reliable &= r.reliable();
    std::printf("%-10d%12zu%12lld%12lld%10d%10d%12.1e%12.1f\n", errors,
                r.injected, (long long)r.detected, (long long)r.corrected,
                r.retries, r.wrong_result_runs, r.max_rel_error,
                r.mean_gflops);
    std::fflush(stdout);
  }

  std::printf("\n%s\n", all_reliable
                            ? "RELIABLE: no regime produced a silently "
                              "wrong result"
                            : "FAILURE: silent corruption observed");
  return all_reliable ? 0 : 1;
}
