// Example: MLP inference with fault-tolerant GEMM layers.
//
// A 4-layer perceptron (GEMM + bias + ReLU per layer) classifies a batch of
// synthetic inputs.  The forward pass runs twice: unprotected under fault
// injection (accuracy collapses on the corrupted samples) and FT-protected
// under the same fault schedule (accuracy preserved, errors corrected).
//
//   build/examples/ml_inference [batch]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ftgemm.hpp"

using namespace ftgemm;

namespace {

struct Mlp {
  // dims: 256 -> 512 -> 256 -> 128 -> 10
  static constexpr index_t kDims[5] = {256, 512, 256, 128, 10};
  std::vector<Matrix<double>> weights;
  std::vector<Matrix<double>> biases;

  Mlp() {
    for (int l = 0; l < 4; ++l) {
      weights.emplace_back(kDims[l + 1], kDims[l]);
      // Xavier-ish scale keeps activations O(1) through the stack.
      weights.back().fill_random(100 + std::uint64_t(l),
                                 -1.0 / std::sqrt(double(kDims[l])),
                                 1.0 / std::sqrt(double(kDims[l])));
      biases.emplace_back(kDims[l + 1], 1);
      biases.back().fill_random(200 + std::uint64_t(l), -0.1, 0.1);
    }
  }

  /// Forward pass; returns argmax class per column.  When `opts` carries an
  /// injector and `protect` is set, every GEMM runs under ft_dgemm.
  std::vector<int> forward(const Matrix<double>& input, bool protect,
                           const Options& opts, FtReport* total) const {
    const index_t batch = input.cols();
    Matrix<double> act = input.clone();
    for (int l = 0; l < 4; ++l) {
      Matrix<double> next(kDims[l + 1], batch);
      next.fill(0.0);
      if (protect) {
        const FtReport rep = ft_dgemm(
            Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
            kDims[l + 1], batch, kDims[l], 1.0, weights[std::size_t(l)].data(),
            weights[std::size_t(l)].ld(), act.data(), act.ld(), 0.0,
            next.data(), next.ld(), opts);
        if (total != nullptr) {
          total->errors_detected += rep.errors_detected;
          total->errors_corrected += rep.errors_corrected;
          total->uncorrectable_panels += rep.uncorrectable_panels;
        }
      } else {
        dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
              kDims[l + 1], batch, kDims[l], 1.0,
              weights[std::size_t(l)].data(), weights[std::size_t(l)].ld(),
              act.data(), act.ld(), 0.0, next.data(), next.ld(), opts);
      }
      // Bias + ReLU (last layer: bias only).
      for (index_t j = 0; j < batch; ++j) {
        for (index_t i = 0; i < kDims[l + 1]; ++i) {
          double v = next(i, j) + biases[std::size_t(l)](i, 0);
          if (l < 3) v = std::max(v, 0.0);
          next(i, j) = v;
        }
      }
      act = std::move(next);
    }
    std::vector<int> labels(static_cast<std::size_t>(batch));
    for (index_t j = 0; j < batch; ++j) {
      int best = 0;
      for (index_t i = 1; i < kDims[4]; ++i)
        if (act(i, j) > act(best, j)) best = int(i);
      labels[std::size_t(j)] = best;
    }
    return labels;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const index_t batch = argc > 1 ? std::atoll(argv[1]) : 128;
  Mlp model;

  Matrix<double> input(Mlp::kDims[0], batch);
  input.fill_random(999, 0.0, 1.0);

  // Ground-truth labels from a clean run.
  Options clean;
  const std::vector<int> truth = model.forward(input, false, clean, nullptr);

  // Unprotected inference under injection.
  CountInjector inj_unprot(3, 31337, 10.0);
  Options unprot;
  unprot.injector = &inj_unprot;
  const std::vector<int> corrupted =
      model.forward(input, false, unprot, nullptr);

  // Protected inference under the same kind of fault pressure.
  CountInjector inj_prot(3, 31337, 10.0);
  Options prot;
  prot.injector = &inj_prot;
  FtReport total;
  const std::vector<int> protected_labels =
      model.forward(input, true, prot, &total);

  auto accuracy = [&](const std::vector<int>& got) {
    int same = 0;
    for (std::size_t i = 0; i < truth.size(); ++i)
      same += (got[i] == truth[i]);
    return 100.0 * double(same) / double(truth.size());
  };

  std::printf("MLP inference, batch=%lld, 3 faults injected per layer GEMM\n",
              (long long)batch);
  std::printf("  unprotected accuracy vs clean run : %6.2f%% (%zu faults)\n",
              accuracy(corrupted), inj_unprot.injected_count());
  std::printf("  FT-protected accuracy             : %6.2f%% (%zu faults, "
              "%lld corrected)\n",
              accuracy(protected_labels), inj_prot.injected_count(),
              (long long)total.errors_corrected);
  const bool ok =
      accuracy(protected_labels) == 100.0 && total.uncorrectable_panels == 0;
  std::printf("  protected run %s\n", ok ? "PRESERVED all predictions"
                                         : "FAILED to preserve predictions");
  return ok ? 0 : 1;
}
