// Example: MLP inference serving with batched fault-tolerant GEMM.
//
// A 4-layer perceptron (GEMM + bias + ReLU per layer) classifies inputs for
// many concurrent *requests*.  Instead of one monolithic GEMM per layer,
// each layer runs one ft_gemm_strided_batched call over the requests: the
// weight matrix is broadcast with stride 0, every request's activation
// block is an independent batch member, and the scheduler spreads members
// across cores (the serving-traffic shape the batched subsystem exists
// for).
//
// The forward pass runs twice under the same fault schedule — unprotected
// (accuracy collapses on the corrupted requests) and FT-protected (faults
// corrected per member, accuracy preserved).  Faults target one randomly
// chosen request per layer, emulating a soft error striking one of many
// in-flight multiplications.
//
// The protected pass serves its weights *resident*: each layer's matrix is
// pre-packed + checksum-encoded once into the process-wide operand cache
// (make_resident_a pins the storage), and every batch member then hits the
// warm entry instead of re-packing the same broadcast weight per request —
// with the panels' integrity sums re-verified on every hit (CHECK_BEFORE).
//
//   build/examples/ml_inference [requests] [cols_per_request]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ftgemm.hpp"

using namespace ftgemm;

namespace {

struct Mlp {
  // dims: 256 -> 512 -> 256 -> 128 -> 10
  static constexpr index_t kDims[5] = {256, 512, 256, 128, 10};
  std::vector<Matrix<double>> weights;
  std::vector<Matrix<double>> biases;

  Mlp() {
    for (int l = 0; l < 4; ++l) {
      weights.emplace_back(kDims[l + 1], kDims[l]);
      // Xavier-ish scale keeps activations O(1) through the stack.
      weights.back().fill_random(100 + std::uint64_t(l),
                                 -1.0 / std::sqrt(double(kDims[l])),
                                 1.0 / std::sqrt(double(kDims[l])));
      biases.emplace_back(kDims[l + 1], 1);
      biases.back().fill_random(200 + std::uint64_t(l), -0.1, 0.1);
    }
  }

  /// Pre-encode every layer's weight into the resident-operand cache for
  /// the per-member shape the batched forward pass will request.  The
  /// batched dispatcher plans inter-batch members at one thread, so the
  /// warm-up plans the same way; the returned handles pin the encoded
  /// panels against LRU eviction for the model's lifetime.
  void pin_weights(index_t cols) {
    Options warm;
    warm.threads = 1;
    pins.clear();
    for (int l = 0; l < 4; ++l)
      pins.push_back(make_resident_a<double>(
          Trans::kNoTrans, Trans::kNoTrans, kDims[l + 1], cols, kDims[l],
          1.0, weights[std::size_t(l)].data(), weights[std::size_t(l)].ld(),
          warm, /*ft=*/true));
  }

  std::vector<ResidentOperand> pins;

  /// Forward pass over `requests` independent activation blocks of
  /// `cols` columns each.  Per layer: one strided-batched GEMM with the
  /// weight broadcast (stride 0).  When `injector` is set, layer l targets
  /// request `targets[l]`.  Returns argmax class per input column.
  std::vector<int> forward(const Matrix<double>& input, index_t requests,
                           index_t cols, bool protect,
                           FaultInjector* injector,
                           const std::vector<index_t>& targets,
                           BatchReport* total) const {
    const index_t batch = requests * cols;
    Matrix<double> act = input.clone();
    for (int l = 0; l < 4; ++l) {
      Matrix<double> next(kDims[l + 1], batch);
      next.fill(0.0);

      BatchOptions opts;
      opts.base.injector = injector;
      opts.base.resident_a = protect;  // weights pinned by pin_weights()
      opts.inject_problem = injector != nullptr ? targets[std::size_t(l)] : 0;
      const index_t stride_in = kDims[l] * cols;
      const index_t stride_out = kDims[l + 1] * cols;
      if (protect) {
        const BatchReport rep = ft_gemm_strided_batched<double>(
            Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
            kDims[l + 1], cols, kDims[l], 1.0, weights[std::size_t(l)].data(),
            weights[std::size_t(l)].ld(), 0, act.data(), kDims[l], stride_in,
            0.0, next.data(), kDims[l + 1], stride_out, requests, opts);
        if (total != nullptr) {
          total->errors_detected += rep.errors_detected;
          total->errors_corrected += rep.errors_corrected;
          total->uncorrectable_panels += rep.uncorrectable_panels;
          total->faulty_problems += rep.faulty_problems;
          total->dirty_problems += rep.dirty_problems;
          total->resident_hits += rep.resident_hits;
          total->resident_heals += rep.resident_heals;
        }
      } else {
        gemm_strided_batched<double>(
            Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
            kDims[l + 1], cols, kDims[l], 1.0, weights[std::size_t(l)].data(),
            weights[std::size_t(l)].ld(), 0, act.data(), kDims[l], stride_in,
            0.0, next.data(), kDims[l + 1], stride_out, requests, opts);
      }
      // Bias + ReLU (last layer: bias only).
      for (index_t j = 0; j < batch; ++j) {
        for (index_t i = 0; i < kDims[l + 1]; ++i) {
          double v = next(i, j) + biases[std::size_t(l)](i, 0);
          if (l < 3) v = std::max(v, 0.0);
          next(i, j) = v;
        }
      }
      act = std::move(next);
    }
    std::vector<int> labels(static_cast<std::size_t>(batch));
    for (index_t j = 0; j < batch; ++j) {
      int best = 0;
      for (index_t i = 1; i < kDims[4]; ++i)
        if (act(i, j) > act(best, j)) best = int(i);
      labels[std::size_t(j)] = best;
    }
    return labels;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const index_t requests = argc > 1 ? std::atoll(argv[1]) : 16;
  const index_t cols = argc > 2 ? std::atoll(argv[2]) : 8;
  if (requests < 1 || cols < 1) {
    std::fprintf(stderr, "usage: ml_inference [requests >= 1] [cols >= 1]\n");
    return 2;
  }
  Mlp model;

  Matrix<double> input(Mlp::kDims[0], requests * cols);
  input.fill_random(999, 0.0, 1.0);

  // One targeted request per layer, fixed across both faulty runs so the
  // protected pass faces the same schedule the unprotected one did.
  Xoshiro256 rng(4242);
  std::vector<index_t> targets;
  for (int l = 0; l < 4; ++l)
    targets.push_back(index_t(rng.bounded(std::uint64_t(requests))));

  // Ground-truth labels from a clean run.
  const std::vector<int> truth =
      model.forward(input, requests, cols, false, nullptr, targets, nullptr);

  // Unprotected inference under injection.
  CountInjector inj_unprot(3, 31337, 10.0);
  const std::vector<int> corrupted = model.forward(
      input, requests, cols, false, &inj_unprot, targets, nullptr);

  // Protected inference under the same fault schedule, weights served from
  // the resident-operand cache (pre-encoded + pinned once, verified hits
  // per member thereafter).
  model.pin_weights(cols);
  std::size_t pinned_bytes = 0;
  for (const ResidentOperand& pin : model.pins) pinned_bytes += pin.bytes();
  CountInjector inj_prot(3, 31337, 10.0);
  BatchReport total;
  const std::vector<int> protected_labels =
      model.forward(input, requests, cols, true, &inj_prot, targets, &total);

  auto accuracy = [&](const std::vector<int>& got) {
    int same = 0;
    for (std::size_t i = 0; i < truth.size(); ++i)
      same += (got[i] == truth[i]);
    return 100.0 * double(same) / double(truth.size());
  };

  std::printf("MLP inference, %lld requests x %lld cols, 3 faults aimed at "
              "one request per layer\n",
              (long long)requests, (long long)cols);
  std::printf("  unprotected accuracy vs clean run : %6.2f%% (%zu faults)\n",
              accuracy(corrupted), inj_unprot.injected_count());
  std::printf("  FT-protected accuracy             : %6.2f%% (%zu faults, "
              "%lld corrected, %lld requests hit)\n",
              accuracy(protected_labels), inj_prot.injected_count(),
              (long long)total.errors_corrected,
              (long long)total.faulty_problems);
  std::printf("  resident weights                  : %zu KiB pinned, %lld "
              "member hits, %lld heals\n",
              pinned_bytes / 1024, (long long)total.resident_hits,
              (long long)total.resident_heals);
  const bool ok = accuracy(protected_labels) == 100.0 &&
                  total.dirty_problems == 0 && total.resident_hits > 0;
  std::printf("  protected run %s\n", ok ? "PRESERVED all predictions"
                                         : "FAILED to preserve predictions");
  return ok ? 0 : 1;
}
