// Example: Jacobi iteration on a diagonally dominant system, with every
// matrix product protected by FT-GEMM while a background fault rate fires.
//
// Iterative solvers are the canonical ABFT motivation: a single silent
// error early in the iteration poisons every subsequent iterate.  Here we
// run the same solve twice — protected and unprotected — under the same
// deterministic fault schedule, and print the residual histories.
//
//   build/examples/iterative_solver [n] [iters]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "ftgemm.hpp"

using namespace ftgemm;

namespace {

/// Residual ||b - A x||_2 computed with the (protected) substrate.
double residual_norm(const Matrix<double>& a, const Matrix<double>& x,
                     const Matrix<double>& b) {
  const index_t n = a.rows();
  Matrix<double> r = b.clone();
  dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, 1, n, -1.0,
        a.data(), a.ld(), x.data(), x.ld(), 1.0, r.data(), r.ld());
  return ftblas::dnrm2(n, r.data(), 1);
}

/// One protected Jacobi sweep: x' = D^{-1} (b - R x), with the R*x product
/// running under ft_dgemm (R = A with zeroed diagonal).
void jacobi_sweep(const Matrix<double>& r_mat, const Matrix<double>& diag,
                  const Matrix<double>& b, Matrix<double>& x,
                  Matrix<double>& scratch, const Options& opts,
                  FtReport* total) {
  const index_t n = r_mat.rows();
  scratch = b.clone();
  const FtReport rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans,
                                Trans::kNoTrans, n, 1, n, -1.0, r_mat.data(),
                                r_mat.ld(), x.data(), x.ld(), 1.0,
                                scratch.data(), scratch.ld(), opts);
  total->errors_detected += rep.errors_detected;
  total->errors_corrected += rep.errors_corrected;
  total->uncorrectable_panels += rep.uncorrectable_panels;
  for (index_t i = 0; i < n; ++i) x(i, 0) = scratch(i, 0) / diag(i, 0);
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 768;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 30;

  // Diagonally dominant A; R = off-diagonal part.
  Matrix<double> a(n, n);
  a.fill_random(11, -1.0, 1.0);
  Matrix<double> diag(n, 1);
  Matrix<double> r_mat = a.clone();
  for (index_t i = 0; i < n; ++i) {
    a(i, i) = double(n);
    diag(i, 0) = a(i, i);
    r_mat(i, i) = 0.0;
  }
  Matrix<double> b(n, 1);
  b.fill_random(12);
  Matrix<double> x(n, 1), scratch(n, 1);
  x.fill(0.0);

  std::printf("Jacobi solve, n=%lld, %d iterations, faults injected "
              "continuously\n", (long long)n, iters);
  std::printf("%-6s%18s%14s%14s\n", "iter", "residual", "detected",
              "corrected");

  CountInjector injector(/*errors per product=*/2, /*seed=*/2718,
                         /*magnitude=*/50.0);
  Options opts;
  opts.injector = &injector;

  FtReport total;
  for (int it = 1; it <= iters; ++it) {
    jacobi_sweep(r_mat, diag, b, x, scratch, opts, &total);
    if (it % 5 == 0 || it == 1) {
      std::printf("%-6d%18.6e%14lld%14lld\n", it, residual_norm(a, x, b),
                  (long long)total.errors_detected,
                  (long long)total.errors_corrected);
    }
  }

  const double final_res = residual_norm(a, x, b);
  std::printf("\nfinal residual %.3e with %lld corrected soft errors "
              "(uncorrectable panels: %d)\n",
              final_res, (long long)total.errors_corrected,
              total.uncorrectable_panels);

  // The punchline: the same iteration without protection, same fault
  // schedule, diverges or stalls.
  injector.clear_log();
  Matrix<double> x_unprot(n, 1);
  x_unprot.fill(0.0);
  for (int it = 1; it <= iters; ++it) {
    scratch = b.clone();
    dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, 1, n, -1.0,
          r_mat.data(), r_mat.ld(), x_unprot.data(), x_unprot.ld(), 1.0,
          scratch.data(), scratch.ld(), opts);
    for (index_t i = 0; i < n; ++i)
      x_unprot(i, 0) = scratch(i, 0) / diag(i, 0);
  }
  std::printf("unprotected run under the same faults: residual %.3e\n",
              residual_norm(a, x_unprot, b));
  return final_res < 1e-6 ? 0 : 1;
}
