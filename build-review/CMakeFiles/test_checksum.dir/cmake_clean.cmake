file(REMOVE_RECURSE
  "CMakeFiles/test_checksum.dir/tests/test_checksum.cpp.o"
  "CMakeFiles/test_checksum.dir/tests/test_checksum.cpp.o.d"
  "test_checksum"
  "test_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
