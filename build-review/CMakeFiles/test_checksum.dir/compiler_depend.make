# Empty compiler generated dependencies file for test_checksum.
# This may be replaced when dependencies are built.
