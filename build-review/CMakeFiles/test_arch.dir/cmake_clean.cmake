file(REMOVE_RECURSE
  "CMakeFiles/test_arch.dir/tests/test_arch.cpp.o"
  "CMakeFiles/test_arch.dir/tests/test_arch.cpp.o.d"
  "test_arch"
  "test_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
