# Empty compiler generated dependencies file for test_arch.
# This may be replaced when dependencies are built.
