file(REMOVE_RECURSE
  "CMakeFiles/test_plan.dir/tests/test_plan.cpp.o"
  "CMakeFiles/test_plan.dir/tests/test_plan.cpp.o.d"
  "test_plan"
  "test_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
