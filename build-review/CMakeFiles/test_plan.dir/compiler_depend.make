# Empty compiler generated dependencies file for test_plan.
# This may be replaced when dependencies are built.
