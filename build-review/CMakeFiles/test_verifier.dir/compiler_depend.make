# Empty compiler generated dependencies file for test_verifier.
# This may be replaced when dependencies are built.
