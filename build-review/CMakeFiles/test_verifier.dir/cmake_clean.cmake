file(REMOVE_RECURSE
  "CMakeFiles/test_verifier.dir/tests/test_verifier.cpp.o"
  "CMakeFiles/test_verifier.dir/tests/test_verifier.cpp.o.d"
  "test_verifier"
  "test_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
