# Empty compiler generated dependencies file for test_packing.
# This may be replaced when dependencies are built.
