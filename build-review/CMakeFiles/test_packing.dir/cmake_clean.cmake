file(REMOVE_RECURSE
  "CMakeFiles/test_packing.dir/tests/test_packing.cpp.o"
  "CMakeFiles/test_packing.dir/tests/test_packing.cpp.o.d"
  "test_packing"
  "test_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
