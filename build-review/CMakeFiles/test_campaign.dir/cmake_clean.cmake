file(REMOVE_RECURSE
  "CMakeFiles/test_campaign.dir/tests/test_campaign.cpp.o"
  "CMakeFiles/test_campaign.dir/tests/test_campaign.cpp.o.d"
  "test_campaign"
  "test_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
