# Empty compiler generated dependencies file for test_campaign.
# This may be replaced when dependencies are built.
