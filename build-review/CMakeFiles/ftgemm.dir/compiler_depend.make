# Empty compiler generated dependencies file for ftgemm.
# This may be replaced when dependencies are built.
