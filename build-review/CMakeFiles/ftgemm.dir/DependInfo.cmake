
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abft/verifier.cpp" "CMakeFiles/ftgemm.dir/src/abft/verifier.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/abft/verifier.cpp.o.d"
  "/root/repo/src/arch/cpu_features.cpp" "CMakeFiles/ftgemm.dir/src/arch/cpu_features.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/arch/cpu_features.cpp.o.d"
  "/root/repo/src/arch/isa.cpp" "CMakeFiles/ftgemm.dir/src/arch/isa.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/arch/isa.cpp.o.d"
  "/root/repo/src/baseline/naive_gemm.cpp" "CMakeFiles/ftgemm.dir/src/baseline/naive_gemm.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/baseline/naive_gemm.cpp.o.d"
  "/root/repo/src/baseline/unfused_abft.cpp" "CMakeFiles/ftgemm.dir/src/baseline/unfused_abft.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/baseline/unfused_abft.cpp.o.d"
  "/root/repo/src/blocking/cache_info.cpp" "CMakeFiles/ftgemm.dir/src/blocking/cache_info.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/blocking/cache_info.cpp.o.d"
  "/root/repo/src/blocking/plan.cpp" "CMakeFiles/ftgemm.dir/src/blocking/plan.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/blocking/plan.cpp.o.d"
  "/root/repo/src/core/gemm.cpp" "CMakeFiles/ftgemm.dir/src/core/gemm.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/core/gemm.cpp.o.d"
  "/root/repo/src/core/gemm_batched.cpp" "CMakeFiles/ftgemm.dir/src/core/gemm_batched.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/core/gemm_batched.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "CMakeFiles/ftgemm.dir/src/core/plan.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/core/plan.cpp.o.d"
  "/root/repo/src/ftblas/level1.cpp" "CMakeFiles/ftgemm.dir/src/ftblas/level1.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/ftblas/level1.cpp.o.d"
  "/root/repo/src/ftblas/level1_ext.cpp" "CMakeFiles/ftgemm.dir/src/ftblas/level1_ext.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/ftblas/level1_ext.cpp.o.d"
  "/root/repo/src/ftblas/level2.cpp" "CMakeFiles/ftgemm.dir/src/ftblas/level2.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/ftblas/level2.cpp.o.d"
  "/root/repo/src/ftblas/level2_ext.cpp" "CMakeFiles/ftgemm.dir/src/ftblas/level2_ext.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/ftblas/level2_ext.cpp.o.d"
  "/root/repo/src/inject/campaign.cpp" "CMakeFiles/ftgemm.dir/src/inject/campaign.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/inject/campaign.cpp.o.d"
  "/root/repo/src/inject/injector.cpp" "CMakeFiles/ftgemm.dir/src/inject/injector.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/inject/injector.cpp.o.d"
  "/root/repo/src/kernels/kernel_avx2.cpp" "CMakeFiles/ftgemm.dir/src/kernels/kernel_avx2.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/kernels/kernel_avx2.cpp.o.d"
  "/root/repo/src/kernels/kernel_avx512.cpp" "CMakeFiles/ftgemm.dir/src/kernels/kernel_avx512.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/kernels/kernel_avx512.cpp.o.d"
  "/root/repo/src/kernels/kernel_scalar.cpp" "CMakeFiles/ftgemm.dir/src/kernels/kernel_scalar.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/kernels/kernel_scalar.cpp.o.d"
  "/root/repo/src/kernels/pack_avx2.cpp" "CMakeFiles/ftgemm.dir/src/kernels/pack_avx2.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/kernels/pack_avx2.cpp.o.d"
  "/root/repo/src/kernels/pack_avx512.cpp" "CMakeFiles/ftgemm.dir/src/kernels/pack_avx512.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/kernels/pack_avx512.cpp.o.d"
  "/root/repo/src/kernels/pack_scalar.cpp" "CMakeFiles/ftgemm.dir/src/kernels/pack_scalar.cpp.o" "gcc" "CMakeFiles/ftgemm.dir/src/kernels/pack_scalar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
