file(REMOVE_RECURSE
  "libftgemm.a"
)
