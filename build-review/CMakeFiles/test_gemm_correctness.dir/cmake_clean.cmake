file(REMOVE_RECURSE
  "CMakeFiles/test_gemm_correctness.dir/tests/test_gemm_correctness.cpp.o"
  "CMakeFiles/test_gemm_correctness.dir/tests/test_gemm_correctness.cpp.o.d"
  "test_gemm_correctness"
  "test_gemm_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemm_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
