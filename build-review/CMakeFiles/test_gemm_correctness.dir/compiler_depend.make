# Empty compiler generated dependencies file for test_gemm_correctness.
# This may be replaced when dependencies are built.
