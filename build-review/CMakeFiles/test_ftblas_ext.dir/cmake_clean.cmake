file(REMOVE_RECURSE
  "CMakeFiles/test_ftblas_ext.dir/tests/test_ftblas_ext.cpp.o"
  "CMakeFiles/test_ftblas_ext.dir/tests/test_ftblas_ext.cpp.o.d"
  "test_ftblas_ext"
  "test_ftblas_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ftblas_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
