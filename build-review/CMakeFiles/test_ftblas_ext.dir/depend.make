# Empty dependencies file for test_ftblas_ext.
# This may be replaced when dependencies are built.
