# Empty compiler generated dependencies file for test_ft_gemm.
# This may be replaced when dependencies are built.
