file(REMOVE_RECURSE
  "CMakeFiles/test_ft_gemm.dir/tests/test_ft_gemm.cpp.o"
  "CMakeFiles/test_ft_gemm.dir/tests/test_ft_gemm.cpp.o.d"
  "test_ft_gemm"
  "test_ft_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ft_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
