file(REMOVE_RECURSE
  "CMakeFiles/test_degenerate.dir/tests/test_degenerate.cpp.o"
  "CMakeFiles/test_degenerate.dir/tests/test_degenerate.cpp.o.d"
  "test_degenerate"
  "test_degenerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_degenerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
