# Empty compiler generated dependencies file for test_degenerate.
# This may be replaced when dependencies are built.
