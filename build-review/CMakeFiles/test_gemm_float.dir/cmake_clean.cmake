file(REMOVE_RECURSE
  "CMakeFiles/test_gemm_float.dir/tests/test_gemm_float.cpp.o"
  "CMakeFiles/test_gemm_float.dir/tests/test_gemm_float.cpp.o.d"
  "test_gemm_float"
  "test_gemm_float.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemm_float.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
