# Empty dependencies file for test_gemm_float.
# This may be replaced when dependencies are built.
