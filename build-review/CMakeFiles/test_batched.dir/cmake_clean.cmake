file(REMOVE_RECURSE
  "CMakeFiles/test_batched.dir/tests/test_batched.cpp.o"
  "CMakeFiles/test_batched.dir/tests/test_batched.cpp.o.d"
  "test_batched"
  "test_batched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
