# Empty compiler generated dependencies file for test_batched.
# This may be replaced when dependencies are built.
