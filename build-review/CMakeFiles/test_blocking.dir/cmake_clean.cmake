file(REMOVE_RECURSE
  "CMakeFiles/test_blocking.dir/tests/test_blocking.cpp.o"
  "CMakeFiles/test_blocking.dir/tests/test_blocking.cpp.o.d"
  "test_blocking"
  "test_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
