# Empty dependencies file for test_blocking.
# This may be replaced when dependencies are built.
