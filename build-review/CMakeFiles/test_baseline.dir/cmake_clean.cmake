file(REMOVE_RECURSE
  "CMakeFiles/test_baseline.dir/tests/test_baseline.cpp.o"
  "CMakeFiles/test_baseline.dir/tests/test_baseline.cpp.o.d"
  "test_baseline"
  "test_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
