# Empty dependencies file for test_baseline.
# This may be replaced when dependencies are built.
