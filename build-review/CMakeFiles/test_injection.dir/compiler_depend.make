# Empty compiler generated dependencies file for test_injection.
# This may be replaced when dependencies are built.
