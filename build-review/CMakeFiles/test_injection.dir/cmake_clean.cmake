file(REMOVE_RECURSE
  "CMakeFiles/test_injection.dir/tests/test_injection.cpp.o"
  "CMakeFiles/test_injection.dir/tests/test_injection.cpp.o.d"
  "test_injection"
  "test_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
