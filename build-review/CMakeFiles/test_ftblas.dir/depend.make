# Empty dependencies file for test_ftblas.
# This may be replaced when dependencies are built.
