file(REMOVE_RECURSE
  "CMakeFiles/test_ftblas.dir/tests/test_ftblas.cpp.o"
  "CMakeFiles/test_ftblas.dir/tests/test_ftblas.cpp.o.d"
  "test_ftblas"
  "test_ftblas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ftblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
