file(REMOVE_RECURSE
  "CMakeFiles/test_kernels.dir/tests/test_kernels.cpp.o"
  "CMakeFiles/test_kernels.dir/tests/test_kernels.cpp.o.d"
  "test_kernels"
  "test_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
