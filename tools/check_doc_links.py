#!/usr/bin/env python3
"""Verify that file references in the markdown docs point at real files.

Two kinds of references are checked, in README.md, docs/*.md and
bench/README.md:

  1. relative markdown link targets: [text](docs/DESIGN.md)
  2. backticked repo paths rooted at a tracked top-level directory:
     `src/core/driver.hpp`, `bench/record.sh`, `tests/` ...

Backticked tokens containing placeholders (<, *, {) or shell fragments are
skipped; `build/...` outputs are not repo files and are not checked.
Exits non-zero listing every dangling reference.
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = [ROOT / "README.md", ROOT / "bench" / "README.md",
        *sorted((ROOT / "docs").glob("*.md"))]
TOP_DIRS = ("src/", "docs/", "bench/", "tests/", "examples/", "tools/")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)\)")
BACKTICK = re.compile(r"`([^`\n]+)`")


def main() -> int:
    failures = []
    for doc in DOCS:
        if not doc.exists():
            failures.append(f"{doc.relative_to(ROOT)}: document itself missing")
            continue
        text = doc.read_text(encoding="utf-8")
        refs = set()
        for target in MD_LINK.findall(text):
            if "://" in target or target.startswith("mailto:"):
                continue
            refs.add((target, "link"))
        for token in BACKTICK.findall(text):
            if any(ch in token for ch in "<>*{} $"):
                continue
            if token.startswith(TOP_DIRS):
                refs.add((token, "path"))
        for target, kind in sorted(refs):
            resolved = (doc.parent / target if kind == "link"
                        else ROOT / target)
            if not resolved.exists():
                failures.append(
                    f"{doc.relative_to(ROOT)}: dangling {kind} -> {target}")
    if failures:
        print("\n".join(failures))
        return 1
    print(f"checked {len(DOCS)} documents, all file references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
