// Resident-operand cache (core/operand_cache.hpp): the fault-injection &
// differential suite behind the serving-weights tentpole.
//
//   1. Cold-vs-hit bit-identity: for shapes x transposes x fp32/fp64 x
//      every executable ISA x FT/Ori, the C delivered from a resident
//      cache hit is bit-identical to the cold (per-call pack+encode) path —
//      on both the fast path and the general blocked path at 2 threads.
//   2. LRU eviction and capacity/byte accounting on a standalone cache.
//   3. Concurrent hit/miss traffic from 6 submitter threads.
//   4. Negative keying cases: stale pointer, mutated (sampled) content,
//      different alpha — all must miss, never alias; plus the documented
//      fingerprint-collision contract for mutations the sampled grid
//      cannot see.
//   5. Memory-fault campaign: PanelBitFlipInjector corrupts the resident
//      panels on hits; the CHECK_BEFORE re-verification detects, heals by
//      re-encoding from the source, and the delivered C matches
//      naive_ref_gemm / the cold path bit-for-bit.  Without verification,
//      the corruption is still not silent (compute-domain ABFT flags it).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "arch/cpu_features.hpp"
#include "arch/isa.hpp"
#include "core/context.hpp"
#include "core/gemm.hpp"
#include "core/gemm_batched.hpp"
#include "core/operand_cache.hpp"
#include "inject/injectors.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::expect_matrix_near;
using testing::GemmCase;
using testing::naive_ref_gemm;
using testing::Problem;
using testing::reference_result;
using testing::seed_note;
using testing::test_seed;

std::vector<Isa> executable_isas() {
  std::vector<Isa> v{Isa::kScalar};
  if (cpu_features().has_avx2_kernel_support()) v.push_back(Isa::kAvx2);
  if (cpu_features().has_avx512_kernel_support()) v.push_back(Isa::kAvx512);
  return v;
}

template <typename T>
FtReport run_gemm(bool ft, const GemmCase& cs, const Problem<T>& p,
                  Matrix<T>& c, const Options& opts) {
  if (ft) {
    if constexpr (sizeof(T) == 8) {
      return ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                      T(cs.alpha), p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                      T(cs.beta), c.data(), c.ld(), opts);
    } else {
      return ft_sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                      T(cs.alpha), p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                      T(cs.beta), c.data(), c.ld(), opts);
    }
  }
  if constexpr (sizeof(T) == 8) {
    dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha),
          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), T(cs.beta), c.data(),
          c.ld(), opts);
  } else {
    sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha),
          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), T(cs.beta), c.data(),
          c.ld(), opts);
  }
  return {};
}

// ---------------------------------------------------------------------------
// 1. Cold vs miss vs hit: bit-identity across the full matrix of paths.
// ---------------------------------------------------------------------------

template <typename T>
void cold_vs_hit_sweep(bool general_path) {
  const std::uint64_t seed = test_seed(1311);
  std::vector<GemmCase> cases;
  for (Trans ta : {Trans::kNoTrans, Trans::kTrans}) {
    for (Trans tb : {Trans::kNoTrans, Trans::kTrans}) {
      cases.push_back({24, 16, 20, ta, tb, 1.25, 0.5});
    }
  }
  cases.push_back({97, 63, 40, Trans::kNoTrans, Trans::kNoTrans, -0.75, 1.0});
  cases.push_back({80, 48, 330, Trans::kTrans, Trans::kNoTrans, 1.0, 0.0});

  // All problems live simultaneously with per-case seeds: distinct operand
  // addresses AND contents, so a freed-and-reused allocation can never
  // alias an earlier case's cache entry (the A-side key ignores tb).
  std::vector<Problem<T>> problems;
  problems.reserve(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    problems.emplace_back(cases[i], seed + i, /*ld_slack=*/3);
  }

  for (const Isa isa : executable_isas()) {
    for (const bool ft : {true, false}) {
      for (std::size_t ci = 0; ci < cases.size(); ++ci) {
        const GemmCase& cs = cases[ci];
        Options opts;
        opts.isa = isa;
        if (general_path) {
          opts.small_fast_path = false;
          opts.threads = 2;
        } else {
          opts.threads = 1;
        }
        const Problem<T>& p = problems[ci];
        const std::string label = std::string(ft ? "ft_" : "ori_") +
                                  std::string(isa_name(isa)) +
                                  (general_path ? "_general_" : "_fast_") +
                                  cs.name();

        Matrix<T> c_cold = p.c.clone();
        run_gemm<T>(ft, cs, p, c_cold, opts);

        opts.resident_a = true;
        Matrix<T> c_miss = p.c.clone();
        const FtReport r_miss = run_gemm<T>(ft, cs, p, c_miss, opts);
        expect_matrix_near(c_miss, c_cold, 0.0, label + " (miss)");

        Matrix<T> c_hit = p.c.clone();
        const FtReport r_hit = run_gemm<T>(ft, cs, p, c_hit, opts);
        expect_matrix_near(c_hit, c_cold, 0.0, label + " (hit)");
        if (ft) {  // Ori entry points return no report to inspect.
          EXPECT_FALSE(r_miss.resident_hit) << label << seed_note(seed);
          EXPECT_TRUE(r_hit.resident_hit) << label << seed_note(seed);
          EXPECT_EQ(r_hit.resident_heals, 0) << label << seed_note(seed);
        }
      }
    }
  }
}

TEST(OperandCacheBitIdentity, FastPathF64) {
  clear_process_caches();
  cold_vs_hit_sweep<double>(/*general_path=*/false);
}

TEST(OperandCacheBitIdentity, FastPathF32) {
  clear_process_caches();
  cold_vs_hit_sweep<float>(/*general_path=*/false);
}

TEST(OperandCacheBitIdentity, GeneralPathF64) {
  clear_process_caches();
  cold_vs_hit_sweep<double>(/*general_path=*/true);
}

TEST(OperandCacheBitIdentity, GeneralPathF32) {
  clear_process_caches();
  cold_vs_hit_sweep<float>(/*general_path=*/true);
}

// FT and Ori requests over the same resident weight share one payload (the
// packed bytes carry no FT state), and results stay correct either way.
TEST(OperandCacheBitIdentity, FtAndOriShareOnePayload) {
  clear_process_caches();
  const std::uint64_t seed = test_seed(1312);
  const GemmCase cs{64, 40, 52, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.0};
  const Problem<double> p(cs, seed);
  Options opts;
  opts.threads = 1;
  opts.resident_a = true;

  OperandCache<double>& cache = process_context_cache<double>().operands();
  const OperandCacheStats before = cache.stats();

  Matrix<double> c_ft = p.c.clone();
  const FtReport r1 = run_gemm<double>(true, cs, p, c_ft, opts);
  EXPECT_FALSE(r1.resident_hit);
  Matrix<double> c_ori = p.c.clone();
  run_gemm<double>(false, cs, p, c_ori, opts);

  const OperandCacheStats after = cache.stats();
  EXPECT_EQ(after.misses - before.misses, 1u) << seed_note(seed);
  EXPECT_EQ(after.hits - before.hits, 1u) << seed_note(seed);
  expect_matrix_near(c_ori, c_ft, 0.0, "ft vs ori over one resident payload");
}

// ---------------------------------------------------------------------------
// 2. LRU eviction & capacity accounting (standalone cache instance).
// ---------------------------------------------------------------------------

TEST(OperandCacheLru, EntryCapEvictsLeastRecentlyUsed) {
  const std::uint64_t seed = test_seed(1313);
  const GemmCase cs{32, 24, 28, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.0};
  Options opts;
  opts.threads = 1;
  const std::shared_ptr<const GemmPlan<double>> plan =
      process_context_cache<double>().plan(cs.ta, cs.tb, cs.m, cs.n, cs.k,
                                           opts, true);

  Matrix<double> a1(cs.m, cs.k), a2(cs.m, cs.k), a3(cs.m, cs.k);
  a1.fill_random(seed);
  a2.fill_random(seed + 1);
  a3.fill_random(seed + 2);

  OperandCache<double> cache(/*capacity=*/2, /*byte_capacity=*/1u << 30);
  const auto acquire = [&](const Matrix<double>& a) {
    return cache.acquire(a.data(), a.ld(), false, 1.0, *plan, nullptr, true);
  };

  EXPECT_FALSE(acquire(a1).hit);
  EXPECT_FALSE(acquire(a2).hit);
  EXPECT_TRUE(acquire(a1).hit);  // a1 now most recent
  EXPECT_FALSE(acquire(a3).hit);  // evicts a2 (LRU)
  EXPECT_TRUE(acquire(a1).hit);
  EXPECT_TRUE(acquire(a3).hit);
  EXPECT_FALSE(acquire(a2).hit) << "evicted entry must re-encode";

  const OperandCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 2u);  // a2 once, then a1 or a3 on a2's return
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.hits, 3u);
  // Byte accounting: exactly two resident payloads of this shape.
  const ResidentAcquisition<double> acq = acquire(a2);
  EXPECT_TRUE(acq.hit);
  EXPECT_EQ(cache.stats().bytes, 2 * acq.payload->bytes());
}

TEST(OperandCacheLru, ByteCapKeepsMostRecentEntry) {
  const std::uint64_t seed = test_seed(1314);
  const GemmCase cs{48, 32, 40, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.0};
  Options opts;
  opts.threads = 1;
  const std::shared_ptr<const GemmPlan<double>> plan =
      process_context_cache<double>().plan(cs.ta, cs.tb, cs.m, cs.n, cs.k,
                                           opts, true);
  Matrix<double> a1(cs.m, cs.k), a2(cs.m, cs.k);
  a1.fill_random(seed);
  a2.fill_random(seed + 1);

  // Byte capacity below a single payload: the cache must still serve (and
  // keep) the most recent entry, evicting everything older.
  OperandCache<double> cache(/*capacity=*/8, /*byte_capacity=*/1);
  EXPECT_FALSE(
      cache.acquire(a1.data(), a1.ld(), false, 1.0, *plan, nullptr, true)
          .hit);
  EXPECT_FALSE(
      cache.acquire(a2.data(), a2.ld(), false, 1.0, *plan, nullptr, true)
          .hit);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(
      cache.acquire(a2.data(), a2.ld(), false, 1.0, *plan, nullptr, true)
          .hit)
      << "most recent entry stays resident";

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// ---------------------------------------------------------------------------
// 3. Concurrent hit/miss traffic: 6 submitter threads, one shared weight
//    plus a private weight each — every result bit-identical to its cold
//    reference, no lost updates in the counters.
// ---------------------------------------------------------------------------

TEST(OperandCacheConcurrent, SixSubmitterThreads) {
  clear_process_caches();
  const std::uint64_t seed = test_seed(1315);
  constexpr int kThreads = 6;
  constexpr int kIters = 8;
  const GemmCase cs{48, 32, 36, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.0};

  // One shared weight hit by every thread + one private weight per thread.
  const Problem<double> shared(cs, seed);
  std::vector<Problem<double>> priv;
  priv.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) priv.emplace_back(cs, seed + 10 + t);

  Options cold;
  cold.threads = 1;
  const Matrix<double> shared_ref = [&] {
    Matrix<double> c = shared.c.clone();
    run_gemm<double>(true, cs, shared, c, cold);
    return c;
  }();
  std::vector<Matrix<double>> priv_ref;
  priv_ref.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Matrix<double> c = priv[std::size_t(t)].c.clone();
    run_gemm<double>(true, cs, priv[std::size_t(t)], c, cold);
    priv_ref.push_back(std::move(c));
  }

  OperandCache<double>& cache = process_context_cache<double>().operands();
  const OperandCacheStats before = cache.stats();

  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Options opts;
      opts.threads = 1;
      opts.resident_a = true;
      for (int it = 0; it < kIters; ++it) {
        const bool use_shared = (it + t) % 2 == 0;
        const Problem<double>& p =
            use_shared ? shared : priv[std::size_t(t)];
        const Matrix<double>& want =
            use_shared ? shared_ref : priv_ref[std::size_t(t)];
        Matrix<double> c = p.c.clone();
        run_gemm<double>(true, cs, p, c, opts);
        if (max_abs_diff(c, want) != 0.0) ++failures[std::size_t(t)];
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[std::size_t(t)], 0)
        << "thread " << t << " saw a non-bit-identical resident result"
        << seed_note(seed);
  }

  const OperandCacheStats after = cache.stats();
  const std::uint64_t calls = std::uint64_t(kThreads) * kIters;
  EXPECT_EQ(after.hits + after.misses - before.hits - before.misses, calls);
  // 7 distinct operands; concurrent first touches may each encode (the
  // race's losers adopt the winner's entry but still count as misses).
  EXPECT_GE(after.misses - before.misses, 7u);
  EXPECT_GE(after.hits - before.hits, calls - 2u * kThreads - 7u);
  EXPECT_EQ(after.heals - before.heals, 0u);
}

// ---------------------------------------------------------------------------
// 4. Negative keying cases.
// ---------------------------------------------------------------------------

TEST(OperandCacheKeying, StalePointerAndContentAndAlphaMiss) {
  clear_process_caches();
  const std::uint64_t seed = test_seed(1316);
  const GemmCase cs{32, 24, 28, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.0};
  Options opts;
  opts.threads = 1;
  opts.resident_a = true;

  Problem<double> p(cs, seed);
  Matrix<double> c = p.c.clone();
  EXPECT_FALSE(run_gemm<double>(true, cs, p, c, opts).resident_hit);
  EXPECT_TRUE(run_gemm<double>(true, cs, p, c, opts).resident_hit);

  // Same content, different buffer (a reloaded weight): the pointer differs
  // so the entry must not alias — a fresh encode, then its own hits.
  Problem<double> p2(cs, seed);
  ASSERT_EQ(max_abs_diff(p.a, p2.a), 0.0);
  c = p2.c.clone();
  EXPECT_FALSE(run_gemm<double>(true, cs, p2, c, opts).resident_hit);
  EXPECT_TRUE(run_gemm<double>(true, cs, p2, c, opts).resident_hit);

  // Mutating a fingerprint-sampled element (corner (0, 0) is always on the
  // sampled grid) must miss and re-encode — and the result must reflect the
  // NEW operand, not the stale panels.
  p.a(0, 0) += 1.0;
  Matrix<double> c_cold = p.c.clone();
  {
    Options cold = opts;
    cold.resident_a = false;
    run_gemm<double>(true, cs, p, c_cold, cold);
  }
  c = p.c.clone();
  EXPECT_FALSE(run_gemm<double>(true, cs, p, c, opts).resident_hit)
      << "sampled-content mutation must change the fingerprint"
      << seed_note(seed);
  expect_matrix_near(c, c_cold, 0.0, "post-mutation resident result");

  // Different alpha bakes different panels: distinct entry, correct result.
  GemmCase cs_alpha = cs;
  cs_alpha.alpha = 2.0;
  c = p.c.clone();
  EXPECT_FALSE(run_gemm<double>(true, cs_alpha, p, c, opts).resident_hit);
  expect_matrix_near(c, reference_result(cs_alpha, p),
                     testing::gemm_tolerance<double>(cs.k), "alpha=2 entry");
}

// The documented fingerprint-collision contract: a mutation the sampled
// grid cannot see leaves the key unchanged, so the hit serves the *stale*
// (still internally consistent) panels — the reason resident_a is strictly
// opt-in for operands the caller promises are stable.  The hit-path
// re-verification is about memory faults in the cached bytes, not source
// drift, so it must NOT heal here.
TEST(OperandCacheKeying, UnsampledMutationServesStalePayloadByContract) {
  clear_process_caches();
  const std::uint64_t seed = test_seed(1317);
  const GemmCase cs{16, 12, 16, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.0};
  Options opts;
  opts.threads = 1;
  opts.resident_a = true;

  Problem<double> p(cs, seed);
  Matrix<double> c_orig = p.c.clone();
  EXPECT_FALSE(run_gemm<double>(true, cs, p, c_orig, opts).resident_hit);

  // The 8x8 grid over a 16x16 operand samples rows/cols {0,2,4,6,8,10,12,15}
  // (floor((dim-1)*s/7)); element (1, 1) is off-grid.
  p.a(1, 1) += 64.0;
  Matrix<double> c_stale = p.c.clone();
  const FtReport rep = run_gemm<double>(true, cs, p, c_stale, opts);
  EXPECT_TRUE(rep.resident_hit) << seed_note(seed);
  EXPECT_EQ(rep.resident_heals, 0) << seed_note(seed);
  expect_matrix_near(c_stale, c_orig, 0.0,
                     "stale payload served on fingerprint collision");
}

// ---------------------------------------------------------------------------
// 5. Memory-fault campaign: inject panel bit flips on hits, assert
//    detection + self-healing + a correct final result.
// ---------------------------------------------------------------------------

template <typename T>
void heal_campaign(const GemmCase& cs, const Options& base, int flip_bit) {
  const std::uint64_t seed = test_seed(1318);
  const Problem<T> p(cs, seed);
  Options opts = base;
  opts.resident_a = true;

  Matrix<T> c_cold = p.c.clone();
  {
    Options cold = base;
    run_gemm<T>(true, cs, p, c_cold, cold);
  }
  expect_matrix_near(c_cold, reference_result(cs, p),
                     testing::gemm_tolerance<T>(cs.k), "cold sanity");

  Matrix<T> c = p.c.clone();
  EXPECT_FALSE(run_gemm<T>(true, cs, p, c, opts).resident_hit);

  // Corrupt the resident panels on every hit: a high exponent bit, so a
  // silently consumed flip could not hide inside checksum rounding.
  PanelBitFlipInjector injector(/*flips=*/1, seed, flip_bit);
  opts.memory_injector = &injector;
  for (int round = 0; round < 3; ++round) {
    c = p.c.clone();
    const FtReport rep = run_gemm<T>(true, cs, p, c, opts);
    EXPECT_TRUE(rep.resident_hit) << seed_note(seed);
    if (env_long("FTGEMM_OPERAND_ECC", 0) != 0) {
      // ECC leg (CI sanitize matrix): the single flipped bit is corrected
      // in place by the SEC-DED sweep — no re-encode heal needed.
      EXPECT_EQ(rep.resident_ecc_corrected, 1)
          << "round " << round << ": flip must be swept by ECC"
          << seed_note(seed);
      EXPECT_EQ(rep.resident_heals, 0) << seed_note(seed);
    } else {
      EXPECT_EQ(rep.resident_heals, 1)
          << "round " << round << ": flip must be detected and healed"
          << seed_note(seed);
    }
    EXPECT_EQ(rep.errors_detected, 0)
        << "healed before compute: no downstream ABFT noise"
        << seed_note(seed);
    expect_matrix_near(c, c_cold, 0.0, "healed hit, round " +
                                           std::to_string(round));
  }
  EXPECT_EQ(injector.applied_count(), 3u);

  // The healed payload is what stays resident: a clean hit afterwards.
  opts.memory_injector = nullptr;
  c = p.c.clone();
  const FtReport rep = run_gemm<T>(true, cs, p, c, opts);
  EXPECT_TRUE(rep.resident_hit);
  EXPECT_EQ(rep.resident_heals, 0);
  expect_matrix_near(c, c_cold, 0.0, "post-heal clean hit");
}

TEST(OperandCacheFaults, PanelFlipHealedF64FastPath) {
  clear_process_caches();
  Options base;
  base.threads = 1;
  heal_campaign<double>({48, 32, 40}, base, /*flip_bit=*/62);
}

TEST(OperandCacheFaults, PanelFlipHealedF64GeneralPath) {
  clear_process_caches();
  Options base;
  base.threads = 2;
  base.small_fast_path = false;
  heal_campaign<double>({96, 56, 330, Trans::kTrans, Trans::kNoTrans}, base,
                        /*flip_bit=*/62);
}

TEST(OperandCacheFaults, PanelFlipHealedF32) {
  clear_process_caches();
  Options base;
  base.threads = 1;
  heal_campaign<float>({48, 32, 40}, base, /*flip_bit=*/30);
}

// With hit-verification off, a corrupted resident panel flows into the
// compute — but not silently: the clean operand checksum Ar (carried beside
// the panels) makes the fused compute-domain verification flag the panel.
TEST(OperandCacheFaults, VerifyOffIsNotSilent) {
  clear_process_caches();
  const std::uint64_t seed = test_seed(1319);
  const GemmCase cs{48, 32, 40, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.0};
  const Problem<double> p(cs, seed);
  Options opts;
  opts.threads = 1;
  opts.resident_a = true;
  opts.resident_verify = false;

  Matrix<double> c = p.c.clone();
  EXPECT_FALSE(run_gemm<double>(true, cs, p, c, opts).resident_hit);

  PanelBitFlipInjector injector(/*flips=*/1, seed, /*bit=*/62);
  opts.memory_injector = &injector;
  c = p.c.clone();
  const FtReport rep = run_gemm<double>(true, cs, p, c, opts);
  EXPECT_TRUE(rep.resident_hit);
  EXPECT_EQ(rep.resident_heals, 0) << "verification was off";
  EXPECT_GT(injector.applied_count(), 0u);
  if (env_long("FTGEMM_OPERAND_ECC", 0) != 0) {
    // The SEC-DED scrub is hardware-ECC-like: it runs on every hit even
    // with the integrity re-verification off, so the flip never reaches
    // the compute and there is nothing left for ABFT to flag.
    EXPECT_EQ(rep.resident_ecc_corrected, 1) << seed_note(seed);
    EXPECT_TRUE(rep.clean()) << seed_note(seed);
  } else {
    EXPECT_TRUE(rep.errors_detected > 0 || !rep.clean())
        << "a consumed panel corruption must be flagged by compute-domain "
           "ABFT, never silent"
        << seed_note(seed);
  }
}

// ---------------------------------------------------------------------------
// Public handle & batched broadcast.
// ---------------------------------------------------------------------------

TEST(ResidentOperandHandle, PinWarmsAndHolds) {
  clear_process_caches();
  const std::uint64_t seed = test_seed(1320);
  const GemmCase cs{40, 28, 32, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.0};
  const Problem<double> p(cs, seed);
  Options opts;
  opts.threads = 1;

  ResidentOperand pin = make_resident_a<double>(
      cs.ta, cs.tb, cs.m, cs.n, cs.k, 1.0, p.a.data(), p.a.ld(), opts);
  ASSERT_TRUE(pin.valid());
  EXPECT_FALSE(pin.hit()) << "first acquire encodes";
  EXPECT_GT(pin.bytes(), 0u);

  // The pre-warmed entry serves the very first GEMM call as a hit.
  opts.resident_a = true;
  Matrix<double> c = p.c.clone();
  EXPECT_TRUE(run_gemm<double>(true, cs, p, c, opts).resident_hit);
  expect_matrix_near(c, reference_result(cs, p),
                     testing::gemm_tolerance<double>(cs.k), "pre-warmed hit");

  ResidentOperand again = make_resident_a<double>(
      cs.ta, cs.tb, cs.m, cs.n, cs.k, 1.0, p.a.data(), p.a.ld(), opts);
  EXPECT_TRUE(again.hit());
  pin.release();
  EXPECT_FALSE(pin.valid());

  // Degenerate problems yield an invalid handle, not a cache entry.
  EXPECT_FALSE(make_resident_a<double>(cs.ta, cs.tb, 0, cs.n, cs.k, 1.0,
                                       p.a.data(), p.a.ld(), opts)
                   .valid());
  EXPECT_FALSE(make_resident_a<double>(cs.ta, cs.tb, cs.m, cs.n, cs.k, 0.0,
                                       p.a.data(), p.a.ld(), opts)
                   .valid());
}

TEST(ResidentOperandHandle, StrideZeroBatchBroadcastHitsOneEntry) {
  clear_process_caches();
  const std::uint64_t seed = test_seed(1321);
  const index_t m = 40, n = 24, k = 32, batch = 5;
  Matrix<double> a(m, k);
  a.fill_random(seed);
  Matrix<double> b(k, n * batch);
  b.fill_random(seed + 1);
  Matrix<double> c(m, n * batch), c_cold(m, n * batch);
  c.fill(0.0);
  c_cold.fill(0.0);

  BatchOptions bopts;
  bopts.base.threads = 2;
  ft_gemm_strided_batched<double>(Layout::kColMajor, Trans::kNoTrans,
                                  Trans::kNoTrans, m, n, k, 1.0, a.data(),
                                  a.ld(), 0, b.data(), b.ld(), k * n, 0.0,
                                  c_cold.data(), c_cold.ld(), m * n, batch,
                                  bopts);

  bopts.base.resident_a = true;
  const BatchReport rep = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.0,
      a.data(), a.ld(), 0, b.data(), b.ld(), k * n, 0.0, c.data(), c.ld(),
      m * n, batch, bopts);
  // Stride-0 broadcast A: one member encodes (or a few race to), the rest
  // hit the same entry — and every member is bit-identical to the cold run.
  EXPECT_GE(rep.resident_hits, 1) << seed_note(seed);
  EXPECT_EQ(rep.resident_heals, 0);
  expect_matrix_near(c, c_cold, 0.0, "resident broadcast batch");

  const BatchReport rep2 = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.0,
      a.data(), a.ld(), 0, b.data(), b.ld(), k * n, 0.0, c.data(), c.ld(),
      m * n, batch, bopts);
  EXPECT_EQ(rep2.resident_hits, batch) << "fully warm batch" << seed_note(seed);
}

}  // namespace
}  // namespace ftgemm
