// Unit tests: cache discovery and blocking-plan derivation.
#include <gtest/gtest.h>

#include <cstdlib>

#include "blocking/cache_info.hpp"
#include "blocking/plan.hpp"
#include "kernels/microkernel.hpp"

namespace ftgemm {
namespace {

TEST(CacheInfo, SizesArePlausible) {
  const CacheInfo& c = cache_info();
  EXPECT_GE(c.l1d_bytes, 8u * 1024);
  EXPECT_LE(c.l1d_bytes, 1u * 1024 * 1024);
  EXPECT_GE(c.l2_bytes, c.l1d_bytes);
  EXPECT_GE(c.l3_bytes, c.l2_bytes);
}

class PlanTest : public ::testing::TestWithParam<std::tuple<Isa, int>> {};

TEST_P(PlanTest, InvariantsHold) {
  const auto [isa, bytes] = GetParam();
  const BlockingPlan p = make_plan(isa, bytes);
  EXPECT_GT(p.mr, 0);
  EXPECT_GT(p.nr, 0);
  EXPECT_GE(p.kc, 1);
  EXPECT_GE(p.mc, p.mr);
  EXPECT_GE(p.nc, p.nr);
  EXPECT_EQ(p.mc % p.mr, 0) << "MC must tile exactly into MR rows";
  EXPECT_EQ(p.nc % p.nr, 0) << "NC must tile exactly into NR columns";
}

TEST_P(PlanTest, PackedPanelsFitTheirCacheLevels) {
  const auto [isa, bytes] = GetParam();
  const BlockingPlan p = make_plan(isa, bytes);
  const CacheInfo& c = cache_info();
  EXPECT_LE(static_cast<std::size_t>(p.mc * p.kc * bytes), c.l2_bytes)
      << "packed A block must fit in L2";
  EXPECT_LE(static_cast<std::size_t>(p.kc * p.nc * bytes), c.l3_bytes)
      << "packed B panel must fit in L3";
}

INSTANTIATE_TEST_SUITE_P(
    AllIsaAndWidths, PlanTest,
    ::testing::Combine(::testing::Values(Isa::kScalar, Isa::kAvx2,
                                         Isa::kAvx512),
                       ::testing::Values(4, 8)),
    [](const auto& info) {
      return std::string(isa_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) == 8 ? "_f64" : "_f32");
    });

TEST(Plan, RegisterTileMatchesKernelSets) {
  // The plan and the dispatched kernels must agree on MR/NR, or packing and
  // the micro-kernel would disagree about panel layout.
  const KernelSet<double> d_avx512 = avx512_kernels_f64();
  const KernelSet<double> d_avx2 = avx2_kernels_f64();
  const KernelSet<double> d_scalar = scalar_kernels_f64();
  const KernelSet<float> s_avx512 = avx512_kernels_f32();
  const KernelSet<float> s_avx2 = avx2_kernels_f32();
  const KernelSet<float> s_scalar = scalar_kernels_f32();

  index_t mr = 0, nr = 0;
  register_tile(Isa::kAvx512, 8, mr, nr);
  EXPECT_EQ(mr, d_avx512.mr);
  EXPECT_EQ(nr, d_avx512.nr);
  register_tile(Isa::kAvx2, 8, mr, nr);
  EXPECT_EQ(mr, d_avx2.mr);
  EXPECT_EQ(nr, d_avx2.nr);
  register_tile(Isa::kScalar, 8, mr, nr);
  EXPECT_EQ(mr, d_scalar.mr);
  EXPECT_EQ(nr, d_scalar.nr);
  register_tile(Isa::kAvx512, 4, mr, nr);
  EXPECT_EQ(mr, s_avx512.mr);
  EXPECT_EQ(nr, s_avx512.nr);
  register_tile(Isa::kAvx2, 4, mr, nr);
  EXPECT_EQ(mr, s_avx2.mr);
  EXPECT_EQ(nr, s_avx2.nr);
  register_tile(Isa::kScalar, 4, mr, nr);
  EXPECT_EQ(mr, s_scalar.mr);
  EXPECT_EQ(nr, s_scalar.nr);
}

TEST(Plan, EnvOverridesAreHonoredAndSanitized) {
  ::setenv("FTGEMM_KC", "128", 1);
  ::setenv("FTGEMM_MC", "99", 1);  // not a multiple of MR -> rounded down
  ::setenv("FTGEMM_NC", "640", 1);
  const BlockingPlan p = make_plan(Isa::kAvx512, 8);
  EXPECT_EQ(p.kc, 128);
  EXPECT_EQ(p.mc % p.mr, 0);
  EXPECT_LE(p.mc, 99);
  EXPECT_EQ(p.nc, 640);
  ::unsetenv("FTGEMM_KC");
  ::unsetenv("FTGEMM_MC");
  ::unsetenv("FTGEMM_NC");
}

TEST(Plan, MaxTileBoundsCoverAllKernels) {
  // macro_kernel's scratch tile is sized by these constants; every kernel
  // set must fit.
  EXPECT_LE(avx512_kernels_f32().mr, 32);
  EXPECT_LE(avx512_kernels_f32().nr, 8);
  EXPECT_LE(avx512_kernels_f64().mr, 32);
  EXPECT_LE(avx2_kernels_f32().mr, 32);
  EXPECT_LE(avx2_kernels_f64().mr, 32);
}

}  // namespace
}  // namespace ftgemm
