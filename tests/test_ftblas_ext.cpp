// Tests for the extended FT-BLAS substrate: asum/iamax/copy/swap/rot,
// ger/trmv/trsv, and the TMR dot extension.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ftblas/level1_ext.hpp"
#include "ftblas/level2_ext.hpp"
#include "util/matrix.hpp"

namespace ftgemm::ftblas {
namespace {

std::vector<double> random_vec(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

// ---------------------------------------------------------------------------
// asum / iamax
// ---------------------------------------------------------------------------

TEST(Dasum, MatchesManual) {
  const auto x = random_vec(1333, 1);
  double want = 0.0;
  for (double v : x) want += std::abs(v);
  EXPECT_NEAR(dasum(1333, x.data(), 1), want, 1e-10);
  DmrReport rep;
  EXPECT_NEAR(ft_dasum(1333, x.data(), 1, &rep), want, 1e-10);
  EXPECT_TRUE(rep.clean());
}

TEST(Dasum, InjectionDetectedAndHealed) {
  const auto x = random_vec(2048, 2);
  const double want = dasum(2048, x.data(), 1);
  const StreamFaultHook hook = [](double* partial, index_t start, index_t) {
    if (start == 512) *partial += 100.0;
  };
  DmrReport rep;
  const double got = ft_dasum(2048, x.data(), 1, &rep, hook);
  EXPECT_EQ(rep.faults_detected, 1);
  EXPECT_DOUBLE_EQ(got, want);
}

TEST(Idamax, FindsFirstMaximum) {
  std::vector<double> x = {1.0, -5.0, 3.0, 5.0, -2.0};
  EXPECT_EQ(idamax(5, x.data(), 1), 1) << "first occurrence of |5|";
  EXPECT_EQ(ft_idamax(5, x.data(), 1), 1);
  EXPECT_EQ(idamax(0, x.data(), 1), -1);
  EXPECT_EQ(ft_idamax(-3, x.data(), 1), -1);
}

TEST(Idamax, StrideRespected) {
  std::vector<double> x = {1.0, 99.0, 3.0, 99.0, -7.0, 99.0};
  EXPECT_EQ(idamax(3, x.data(), 2), 2) << "elements 1, 3, -7";
}

// ---------------------------------------------------------------------------
// copy / swap
// ---------------------------------------------------------------------------

TEST(Dcopy, CopiesWithStrides) {
  const auto x = random_vec(777, 3);
  std::vector<double> y(777, 0.0);
  const DmrReport rep = ft_dcopy(777, x.data(), 1, y.data(), 1);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(x, y);
}

TEST(Dcopy, InjectionOnDestinationHealed) {
  const auto x = random_vec(1200, 4);
  std::vector<double> y(1200, 0.0);
  const StreamFaultHook hook = [](double* block, index_t start, index_t len) {
    if (start == 512 && len > 5) block[5] = -1e9;
  };
  const DmrReport rep = ft_dcopy(1200, x.data(), 1, y.data(), 1, hook);
  EXPECT_EQ(rep.faults_detected, 1);
  EXPECT_EQ(x, y);
}

TEST(Dswap, SwapsAndVerifies) {
  auto x = random_vec(600, 5);
  auto y = random_vec(600, 6);
  const auto x0 = x;
  const auto y0 = y;
  const DmrReport rep = ft_dswap(600, x.data(), 1, y.data(), 1);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(x, y0);
  EXPECT_EQ(y, x0);
}

// ---------------------------------------------------------------------------
// rot
// ---------------------------------------------------------------------------

TEST(Drot, MatchesManualRotation) {
  const double c = std::cos(0.7), s = std::sin(0.7);
  auto x = random_vec(555, 7);
  auto y = random_vec(555, 8);
  auto wx = x;
  auto wy = y;
  for (std::size_t i = 0; i < wx.size(); ++i) {
    const double xv = wx[i], yv = wy[i];
    wx[i] = c * xv + s * yv;
    wy[i] = c * yv - s * xv;
  }
  const DmrReport rep = ft_drot(555, x.data(), 1, y.data(), 1, c, s);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(x, wx);
  EXPECT_EQ(y, wy);
}

TEST(Drot, PreservesNormProperty) {
  // A rotation preserves sqrt(x_i^2 + y_i^2) element-wise.
  const double c = std::cos(1.1), s = std::sin(1.1);
  auto x = random_vec(256, 9);
  auto y = random_vec(256, 10);
  std::vector<double> norms(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    norms[i] = std::hypot(x[i], y[i]);
  ft_drot(256, x.data(), 1, y.data(), 1, c, s);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::hypot(x[i], y[i]), norms[i], 1e-12);
}

TEST(Drot, InjectionHealed) {
  const double c = 0.6, s = 0.8;
  auto x = random_vec(1111, 11);
  auto y = random_vec(1111, 12);
  auto wx = x;
  auto wy = y;
  drot(1111, wx.data(), 1, wy.data(), 1, c, s);
  const StreamFaultHook hook = [](double* block, index_t start, index_t) {
    if (start == 0) block[0] += 3.0;
  };
  const DmrReport rep = ft_drot(1111, x.data(), 1, y.data(), 1, c, s, hook);
  EXPECT_EQ(rep.faults_detected, 1);
  EXPECT_EQ(x, wx);
  EXPECT_EQ(y, wy);
}

// ---------------------------------------------------------------------------
// TMR dot
// ---------------------------------------------------------------------------

TEST(TmrDdot, MatchesDdotClean) {
  const auto x = random_vec(3000, 13);
  const auto y = random_vec(3000, 14);
  DmrReport rep;
  const double got = tmr_ddot(3000, x.data(), 1, y.data(), 1, &rep);
  const double want = ddot(3000, x.data(), 1, y.data(), 1);
  EXPECT_NEAR(got, want, 1e-10 * (1.0 + std::abs(want)));
  EXPECT_TRUE(rep.clean());
}

TEST(TmrDdot, MasksFaultWithoutRecomputation) {
  const auto x = random_vec(1024, 15);
  const auto y = random_vec(1024, 16);
  const double want = tmr_ddot(1024, x.data(), 1, y.data(), 1);
  const StreamFaultHook hook = [](double* s1, index_t start, index_t) {
    if (start == 0) *s1 += 9.0;  // corrupt the first copy only
  };
  DmrReport rep;
  const double got = tmr_ddot(1024, x.data(), 1, y.data(), 1, &rep, hook);
  EXPECT_EQ(rep.faults_detected, 1);
  EXPECT_EQ(rep.recomputations, 0) << "majority vote masks without recompute";
  EXPECT_DOUBLE_EQ(got, want);
}

// ---------------------------------------------------------------------------
// ger
// ---------------------------------------------------------------------------

TEST(Dger, MatchesManualRank1Update) {
  const index_t m = 70, n = 40;
  Matrix<double> a(m, n);
  a.fill_random(20);
  Matrix<double> want = a.clone();
  const auto x = random_vec(m, 21);
  const auto y = random_vec(n, 22);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      want(i, j) += 1.5 * x[std::size_t(i)] * y[std::size_t(j)];

  const DmrReport rep =
      ft_dger(m, n, 1.5, x.data(), 1, y.data(), 1, a.data(), a.ld());
  EXPECT_TRUE(rep.clean());
  // The oracle rounds 1.5*x*y; the routine rounds x*(1.5*y) — one ulp apart.
  EXPECT_LE(max_abs_diff(a, want), 1e-14);
}

TEST(Dger, InjectionHealed) {
  const index_t m = 600, n = 3;
  Matrix<double> a(m, n);
  a.fill_random(23);
  Matrix<double> want = a.clone();
  const auto x = random_vec(m, 24);
  const auto y = random_vec(n, 25);
  dger(m, n, -2.0, x.data(), 1, y.data(), 1, want.data(), want.ld());

  const StreamFaultHook hook = [](double* block, index_t key, index_t) {
    if (key == 512) block[0] *= 2.0;  // column 0, second block
  };
  const DmrReport rep = ft_dger(m, n, -2.0, x.data(), 1, y.data(), 1,
                                a.data(), a.ld(), hook);
  EXPECT_GE(rep.faults_detected, 1);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, want), 0.0);
}

// ---------------------------------------------------------------------------
// trmv / trsv
// ---------------------------------------------------------------------------

class TriangularSweep
    : public ::testing::TestWithParam<std::tuple<Uplo, Trans, index_t>> {};

TEST_P(TriangularSweep, TrmvMatchesDenseOracle) {
  const auto [uplo, trans, n] = GetParam();
  Matrix<double> t(n, n);
  t.fill_random(30);
  // Zero the dead triangle so the dense oracle sees the same operator.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      if ((uplo == Uplo::kUpper && i > j) || (uplo == Uplo::kLower && i < j))
        t(i, j) = 0.0;

  auto x = random_vec(n, 31);
  std::vector<double> want(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      const double aval = trans == Trans::kTrans ? t(j, i) : t(i, j);
      want[std::size_t(i)] += aval * x[std::size_t(j)];
    }

  const DmrReport rep =
      ft_dtrmv(uplo, trans, n, t.data(), t.ld(), x.data(), 1);
  EXPECT_TRUE(rep.clean());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[std::size_t(i)], want[std::size_t(i)],
                1e-11 * std::max(1.0, std::abs(want[std::size_t(i)])));
}

TEST_P(TriangularSweep, TrsvInvertsTrmv) {
  const auto [uplo, trans, n] = GetParam();
  Matrix<double> t(n, n);
  t.fill_random(32, 0.1, 1.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i)
      if ((uplo == Uplo::kUpper && i > j) || (uplo == Uplo::kLower && i < j))
        t(i, j) = 0.0;
    t(j, j) += 2.0;  // well-conditioned diagonal
  }

  const auto x0 = random_vec(n, 33);
  auto x = x0;
  dtrmv(uplo, trans, n, t.data(), t.ld(), x.data(), 1);   // x = T x0
  const DmrReport rep =
      ft_dtrsv(uplo, trans, n, t.data(), t.ld(), x.data(), 1);  // solve back
  EXPECT_TRUE(rep.clean());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[std::size_t(i)], x0[std::size_t(i)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TriangularSweep,
    ::testing::Combine(::testing::Values(Uplo::kUpper, Uplo::kLower),
                       ::testing::Values(Trans::kNoTrans, Trans::kTrans),
                       ::testing::Values<index_t>(1, 17, 128)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == Uplo::kUpper ? "U" : "L") +
             (std::get<1>(info.param) == Trans::kTrans ? "T" : "N") + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Dtrsv, InjectionHealed) {
  const index_t n = 200;
  Matrix<double> t(n, n);
  t.fill_random(34, 0.1, 1.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) t(i, j) = 0.0;  // keep lower triangle
    t(j, j) += 3.0;
  }
  auto x = random_vec(n, 35);
  auto want = x;
  dtrsv(Uplo::kLower, Trans::kNoTrans, n, t.data(), t.ld(), want.data(), 1);

  const StreamFaultHook hook = [](double* sol, index_t, index_t len) {
    if (len > 50) sol[50] += 1.0;
  };
  const DmrReport rep = ft_dtrsv(Uplo::kLower, Trans::kNoTrans, n, t.data(),
                                 t.ld(), x.data(), 1, hook);
  EXPECT_EQ(rep.faults_detected, 1);
  EXPECT_EQ(x, want);
}

}  // namespace
}  // namespace ftgemm::ftblas
