// Unit tests: mismatch scanning and the error-assignment solver.
#include <gtest/gtest.h>

#include <vector>

#include "abft/verifier.hpp"

namespace ftgemm {
namespace {

constexpr double kSlack = 1e-9;

std::vector<Mismatch> mm(std::initializer_list<Mismatch> list) {
  return std::vector<Mismatch>(list);
}

TEST(FindMismatches, ThresholdAndBaseOffset) {
  const double pred[5] = {1.0, 2.0, 3.0, 4.0, 5.0};
  const double ref[5] = {1.0, 2.5, 3.0, 3.2, 5.0 + 1e-12};
  std::vector<Mismatch> out;
  find_mismatches(pred, ref, 5, 1e-6, 100, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].idx, 101);
  EXPECT_DOUBLE_EQ(out[0].delta, 0.5);
  EXPECT_EQ(out[1].idx, 103);
  EXPECT_NEAR(out[1].delta, -0.8, 1e-12);
}

TEST(Solver, CleanPanelSolvesTrivially) {
  const SolveOutcome o = solve_error_assignment({}, {}, kSlack);
  EXPECT_TRUE(o.solved);
  EXPECT_TRUE(o.errors.empty());
}

TEST(Solver, SingleError) {
  const SolveOutcome o = solve_error_assignment(mm({{5, 2.5}}),
                                                mm({{9, 2.5}}), kSlack);
  ASSERT_TRUE(o.solved);
  ASSERT_EQ(o.errors.size(), 1u);
  EXPECT_EQ(o.errors[0].row, 5);
  EXPECT_EQ(o.errors[0].col, 9);
  EXPECT_DOUBLE_EQ(o.errors[0].delta, 2.5);
}

TEST(Solver, OneSidedMismatchIsUncorrectable) {
  EXPECT_FALSE(solve_error_assignment(mm({{5, 2.5}}), {}, kSlack).solved);
  EXPECT_FALSE(solve_error_assignment({}, mm({{9, 2.5}}), kSlack).solved);
}

TEST(Solver, DistinctRowsAndColumns) {
  // Errors at (1, 10)=+2, (3, 12)=-5, (7, 19)=+0.5.
  const SolveOutcome o = solve_error_assignment(
      mm({{1, 2.0}, {3, -5.0}, {7, 0.5}}),
      mm({{10, 2.0}, {12, -5.0}, {19, 0.5}}), kSlack);
  ASSERT_TRUE(o.solved);
  ASSERT_EQ(o.errors.size(), 3u);
  for (const LocatedError& e : o.errors) {
    // Each located error pairs the row and column carrying the same delta.
    if (e.row == 1) { EXPECT_EQ(e.col, 10); EXPECT_NEAR(e.delta, 2.0, kSlack); }
    if (e.row == 3) { EXPECT_EQ(e.col, 12); EXPECT_NEAR(e.delta, -5.0, kSlack); }
    if (e.row == 7) { EXPECT_EQ(e.col, 19); EXPECT_NEAR(e.delta, 0.5, kSlack); }
  }
}

TEST(Solver, TwoErrorsSharingARow) {
  // Errors at (4, 10)=+1 and (4, 11)=+2: row 4 shows +3, columns show +1,+2.
  const SolveOutcome o = solve_error_assignment(
      mm({{4, 3.0}}), mm({{10, 1.0}, {11, 2.0}}), kSlack);
  ASSERT_TRUE(o.solved);
  ASSERT_EQ(o.errors.size(), 2u);
  EXPECT_EQ(o.errors[0].row, 4);
  EXPECT_EQ(o.errors[1].row, 4);
  EXPECT_NEAR(o.errors[0].delta + o.errors[1].delta, 3.0, kSlack);
}

TEST(Solver, TwoErrorsSharingAColumn) {
  // Errors at (4, 10)=+1 and (6, 10)=+2.
  const SolveOutcome o = solve_error_assignment(
      mm({{4, 1.0}, {6, 2.0}}), mm({{10, 3.0}}), kSlack);
  ASSERT_TRUE(o.solved);
  ASSERT_EQ(o.errors.size(), 2u);
  EXPECT_EQ(o.errors[0].col, 10);
  EXPECT_EQ(o.errors[1].col, 10);
  EXPECT_NEAR(o.errors[0].delta + o.errors[1].delta, 3.0, kSlack);
}

TEST(Solver, MixedBurst) {
  // (2, 7)=+1, (2, 8)=+4, (5, 9)=-2: rows {2:+5, 5:-2}, cols {7:+1, 8:+4,
  // 9:-2}; column-individual hypothesis must hold.
  const SolveOutcome o = solve_error_assignment(
      mm({{2, 5.0}, {5, -2.0}}), mm({{7, 1.0}, {8, 4.0}, {9, -2.0}}),
      kSlack);
  ASSERT_TRUE(o.solved);
  EXPECT_EQ(o.errors.size(), 3u);
}

TEST(Solver, NoisyDeltasWithinSlackStillMatch) {
  const SolveOutcome o = solve_error_assignment(
      mm({{1, 2.0 + 3e-10}}), mm({{9, 2.0 - 3e-10}}), kSlack);
  EXPECT_TRUE(o.solved);
}

TEST(Solver, InconsistentDeltasFail) {
  // Row says +2 but column says +5: no assignment explains both.
  const SolveOutcome o =
      solve_error_assignment(mm({{1, 2.0}}), mm({{9, 5.0}}), kSlack);
  EXPECT_FALSE(o.solved);
}

TEST(Solver, AmbiguousCrossPatternFails) {
  // Rows {+1, +1}, cols {+1, +1} is solvable (either pairing works).  But a
  // genuinely contradictory sum pattern is not: rows {1, 2}, cols {2.5,
  // 0.5}: col-individual needs a row summing to 2.5 from {2.5|0.5}, and
  // row-individual needs cols summing from {1,2} — neither closes.
  const SolveOutcome o = solve_error_assignment(
      mm({{1, 1.0}, {2, 2.0}}), mm({{5, 2.5}, {6, 0.5}}), kSlack);
  EXPECT_FALSE(o.solved);
}

TEST(Solver, SymmetricPairingIsSolvable) {
  const SolveOutcome o = solve_error_assignment(
      mm({{1, 1.0}, {2, 1.0}}), mm({{5, 1.0}, {6, 1.0}}), kSlack);
  EXPECT_TRUE(o.solved);
  EXPECT_EQ(o.errors.size(), 2u);
}

TEST(Solver, OversizedDfsRemainderBailsOut) {
  // 30 rows/cols all carrying the SAME delta: nothing peels (no unique
  // match) and the remainder exceeds the DFS bound -> refuse, don't blow up.
  std::vector<Mismatch> rows, cols;
  for (int i = 0; i < 30; ++i) {
    rows.push_back({i, 1.0});
    cols.push_back({i + 100, 1.0});
  }
  EXPECT_FALSE(solve_error_assignment(rows, cols, kSlack).solved);
}

TEST(Solver, ManyDistinctErrorsStillSolve) {
  std::vector<Mismatch> rows, cols;
  for (int i = 0; i < 12; ++i) {
    const double d = 1.0 + i;
    rows.push_back({i, d});
    cols.push_back({i + 50, d});
  }
  const SolveOutcome o = solve_error_assignment(rows, cols, kSlack);
  ASSERT_TRUE(o.solved);
  ASSERT_EQ(o.errors.size(), 12u);
  for (const LocatedError& e : o.errors)
    EXPECT_EQ(e.col, e.row + 50) << "distinct deltas pin each pairing";
}

TEST(Solver, CoexistingRowAndColumnBursts) {
  // A row burst at (2, {7,8}) = {+1, +4} AND a column burst at ({5,6}, 9)
  // = {-2, -3}: no single global hypothesis fits, but burst peeling
  // resolves each cluster independently.
  const SolveOutcome o = solve_error_assignment(
      mm({{2, 5.0}, {5, -2.0}, {6, -3.0}}),
      mm({{7, 1.0}, {8, 4.0}, {9, -5.0}}), kSlack);
  ASSERT_TRUE(o.solved);
  ASSERT_EQ(o.errors.size(), 4u);
  int row2 = 0, col9 = 0;
  for (const LocatedError& e : o.errors) {
    row2 += (e.row == 2);
    col9 += (e.col == 9);
  }
  EXPECT_EQ(row2, 2) << "two errors in the row burst";
  EXPECT_EQ(col9, 2) << "two errors in the column burst";
}

TEST(Solver, BurstsPlusScatteredSingles) {
  // Mixed panel: one isolated error, one row burst, one isolated error.
  const SolveOutcome o = solve_error_assignment(
      mm({{1, 7.0}, {4, 3.0}, {9, -1.25}}),
      mm({{10, 7.0}, {20, 1.0}, {21, 2.0}, {30, -1.25}}), kSlack);
  ASSERT_TRUE(o.solved);
  EXPECT_EQ(o.errors.size(), 4u);
  for (const LocatedError& e : o.errors) {
    if (e.col == 10) {
      EXPECT_EQ(e.row, 1);
    }
    if (e.col == 20 || e.col == 21) {
      EXPECT_EQ(e.row, 4);
    }
    if (e.col == 30) {
      EXPECT_EQ(e.row, 9);
    }
  }
}

TEST(Solver, AmbiguousBurstSubsetLeftToDfs) {
  // Row delta 3 could be {1,2} or {1.5,1.5}: two candidate subsets -> the
  // burst peel must not guess; the DFS hypothesis stage still solves it
  // (cols individual, all assigned to the single row).
  const SolveOutcome o = solve_error_assignment(
      mm({{3, 6.0}}), mm({{1, 1.0}, {2, 2.0}, {4, 1.5}, {5, 1.5}}), kSlack);
  ASSERT_TRUE(o.solved);
  EXPECT_EQ(o.errors.size(), 4u);
  for (const LocatedError& e : o.errors) EXPECT_EQ(e.row, 3);
}

TEST(Solver, ZeroSumRowBurstAcrossColumns) {
  // (3, 5)=+2 and (3, 6)=-2 cancel in the row checksum: row list is empty,
  // columns show +2/-2.  Detected but not locatable -> unsolved.
  const SolveOutcome o = solve_error_assignment(
      {}, mm({{5, 2.0}, {6, -2.0}}), kSlack);
  EXPECT_FALSE(o.solved);
}

}  // namespace
}  // namespace ftgemm
