// Unit tests: util module (aligned buffers, matrices, RNG, stats) and the
// driver's partition helper.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "core/driver.hpp"
#include "util/aligned_buffer.hpp"
#include "util/env.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace ftgemm {
namespace {

TEST(AlignedBuffer, AllocatesCacheLineAligned) {
  for (std::size_t count : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer<double> buf(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
    EXPECT_EQ(buf.size(), count);
  }
}

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer<float> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(AlignedBuffer, EnsureGrowsButNeverShrinks) {
  AlignedBuffer<double> buf(16);
  double* old = buf.data();
  buf.ensure(8);
  EXPECT_EQ(buf.data(), old);
  EXPECT_EQ(buf.size(), 16u);
  buf.ensure(1024);
  EXPECT_GE(buf.size(), 1024u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(32);
  a[0] = 42;
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b[0], 42);
  EXPECT_EQ(a.data(), nullptr);
  AlignedBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c[0], 42);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(Matrix, IndexingIsColumnMajor) {
  Matrix<double> m(3, 2);
  m.fill(0.0);
  m(2, 1) = 5.0;
  EXPECT_EQ(m.data()[2 + 1 * m.ld()], 5.0);
}

TEST(Matrix, LeadingDimensionRespected) {
  Matrix<double> m(3, 2, 10);
  EXPECT_EQ(m.ld(), 10);
  m.fill(1.0);
  m(0, 1) = 2.0;
  EXPECT_EQ(m.data()[10], 2.0);
}

TEST(Matrix, RandomFillIsDeterministic) {
  Matrix<double> a(17, 13), b(17, 13);
  a.fill_random(99);
  b.fill_random(99);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  b.fill_random(100);
  EXPECT_GT(max_abs_diff(a, b), 0.0);
}

TEST(Matrix, CloneIsDeepCopy) {
  Matrix<double> a(4, 4);
  a.fill_random(1);
  Matrix<double> b = a.clone();
  b(0, 0) += 1.0;
  EXPECT_NE(a(0, 0), b(0, 0));
}

TEST(Matrix, RejectsBadDimensions) {
  EXPECT_THROW(Matrix<double>(-1, 2), std::invalid_argument);
  EXPECT_THROW(Matrix<double>(4, 2, 2), std::invalid_argument);
}

TEST(Matrix, DiffHelpers) {
  Matrix<double> a(2, 2), b(2, 2);
  a.fill(1.0);
  b.fill(1.0);
  b(1, 1) = 1.5;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_DOUBLE_EQ(max_rel_diff(a, b), 0.5 / 1.5);
}

TEST(Xoshiro, UniformIsInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro, BoundedRespectsBound) {
  Xoshiro256 rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.bounded(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u) << "all residues should appear in 1000 draws";
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro, SeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Stats, BasicMoments) {
  const SampleStats s = compute_stats({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, EvenCountMedianAverages) {
  const SampleStats s = compute_stats({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(compute_stats({}).mean, 0.0);
  const SampleStats s = compute_stats({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Timer, GflopsFormula) {
  EXPECT_DOUBLE_EQ(gemm_gflops(1000, 1000, 1000, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(gemm_gflops(1000, 1000, 1000, 0.0), 0.0);
}

TEST(Env, ParsesNumbers) {
  ::setenv("FTGEMM_TEST_ENV_L", "42", 1);
  EXPECT_EQ(env_long("FTGEMM_TEST_ENV_L", 7), 42);
  ::setenv("FTGEMM_TEST_ENV_L", "bogus", 1);
  EXPECT_EQ(env_long("FTGEMM_TEST_ENV_L", 7), 7);
  ::unsetenv("FTGEMM_TEST_ENV_L");
  EXPECT_EQ(env_long("FTGEMM_TEST_ENV_L", 7), 7);
  ::setenv("FTGEMM_TEST_ENV_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("FTGEMM_TEST_ENV_D", 1.0), 2.5);
  ::unsetenv("FTGEMM_TEST_ENV_D");
}

// ---------------------------------------------------------------------------
// partition_units: the load-balancing primitive every parallel phase uses.
// ---------------------------------------------------------------------------

TEST(PartitionUnits, CoversRangeExactlyAndInOrder) {
  for (index_t total : {0, 1, 7, 16, 100, 1023}) {
    for (index_t unit : {1, 4, 8, 16}) {
      for (int parts : {1, 2, 3, 7, 16}) {
        index_t covered = 0;
        index_t expected_off = 0;
        for (int idx = 0; idx < parts; ++idx) {
          index_t off = -1, len = -1;
          detail::partition_units(total, unit, parts, idx, off, len);
          EXPECT_GE(len, 0);
          if (len > 0) {
            EXPECT_EQ(off, expected_off);
            EXPECT_EQ(off % unit, 0) << "chunk must start on a unit boundary";
            expected_off = off + len;
          }
          covered += len;
        }
        EXPECT_EQ(covered, total)
            << "total=" << total << " unit=" << unit << " parts=" << parts;
      }
    }
  }
}

TEST(PartitionUnits, BalancedWithinOneUnit) {
  index_t off0, len0, off1, len1;
  detail::partition_units(100, 4, 2, 0, off0, len0);
  detail::partition_units(100, 4, 2, 1, off1, len1);
  EXPECT_LE(std::abs(len0 - len1), 4);
}

TEST(PartitionUnits, SinglePartTakesAll) {
  index_t off, len;
  detail::partition_units(37, 8, 1, 0, off, len);
  EXPECT_EQ(off, 0);
  EXPECT_EQ(len, 37);
}

TEST(PartitionUnits, MorePartsThanBlocks) {
  // 2 blocks of 4 split 5 ways: the first two workers get one block each
  // (the second truncated at total), the rest must be empty with offsets
  // clamped into [0, total] — the driver indexes buffers at `off` even when
  // len == 0, so an out-of-range offset would be UB under inter-batch
  // parallelism with more workers than work.
  for (int idx = 0; idx < 5; ++idx) {
    index_t off = -1, len = -1;
    detail::partition_units(5, 4, 5, idx, off, len);
    EXPECT_GE(off, 0) << "idx=" << idx;
    EXPECT_LE(off, 5) << "idx=" << idx;
    EXPECT_GE(len, 0) << "idx=" << idx;
    EXPECT_LE(off + len, 5) << "idx=" << idx;
  }
  index_t off, len;
  detail::partition_units(5, 4, 5, 0, off, len);
  EXPECT_EQ(len, 4);
  detail::partition_units(5, 4, 5, 1, off, len);
  EXPECT_EQ(off, 4);
  EXPECT_EQ(len, 1);
  detail::partition_units(5, 4, 5, 2, off, len);
  EXPECT_EQ(len, 0);
}

}  // namespace
}  // namespace ftgemm
