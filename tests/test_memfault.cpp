// Memory-fault model unit tests (DESIGN.md §12): the SEC-DED (72,64) code,
// the memory-injector canonicalization contract (net-bit ground truth), the
// ECC-coded resident-operand path, the transient packed-panel strike
// surfaces on the exact int8 path, and the plan-cache self-check heal.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/context.hpp"
#include "core/gemm.hpp"
#include "core/gemm_i8.hpp"
#include "core/secded.hpp"
#include "inject/injectors.hpp"
#include "inject/memory_campaign.hpp"
#include "test_common.hpp"
#include "util/env.hpp"

namespace ftgemm {
namespace {

using testing::seed_note;
using testing::test_seed;

// ---------------------------------------------------------------------------
// SEC-DED codec
// ---------------------------------------------------------------------------

TEST(SecDed, CleanWordsRoundTrip) {
  const std::uint64_t words[] = {0ull, ~0ull, 0x0123456789abcdefull,
                                 0x8000000000000001ull, 42ull};
  for (std::uint64_t orig : words) {
    std::uint64_t w = orig;
    std::uint8_t par = secded::encode(w);
    EXPECT_EQ(secded::check_correct(w, par), secded::Outcome::kClean);
    EXPECT_EQ(w, orig);
    EXPECT_EQ(par, secded::encode(orig));
  }
}

TEST(SecDed, EverySingleDataBitIsCorrected) {
  const std::uint64_t orig = 0xfeedfacecafe1234ull;
  for (int bit = 0; bit < 64; ++bit) {
    std::uint64_t w = orig ^ (std::uint64_t(1) << bit);
    std::uint8_t par = secded::encode(orig);
    EXPECT_EQ(secded::check_correct(w, par), secded::Outcome::kCorrectedData)
        << "bit " << bit;
    EXPECT_EQ(w, orig) << "bit " << bit;
    EXPECT_EQ(par, secded::encode(orig)) << "bit " << bit;
  }
}

TEST(SecDed, EveryParityByteBitIsCorrectedWithoutTouchingData) {
  const std::uint64_t orig = 0x0123456789abcdefull;
  for (int bit = 0; bit < 8; ++bit) {
    std::uint64_t w = orig;
    std::uint8_t par = std::uint8_t(secded::encode(orig) ^ (1u << bit));
    EXPECT_EQ(secded::check_correct(w, par),
              secded::Outcome::kCorrectedParity)
        << "parity bit " << bit;
    EXPECT_EQ(w, orig) << "parity bit " << bit;
    EXPECT_EQ(par, secded::encode(orig)) << "parity bit " << bit;
  }
}

TEST(SecDed, DoubleBitFlipsAreDetectedNotMiscorrected) {
  const std::uint64_t orig = 0xdeadbeefdeadbeefull;
  const std::uint8_t good_par = secded::encode(orig);
  // Data-data doubles across a spread of bit pairs.
  for (int lo = 0; lo < 64; lo += 7) {
    for (int hi = lo + 1; hi < 64; hi += 13) {
      std::uint64_t w =
          orig ^ (std::uint64_t(1) << lo) ^ (std::uint64_t(1) << hi);
      std::uint8_t par = good_par;
      EXPECT_EQ(secded::check_correct(w, par),
                secded::Outcome::kDetectedDouble)
          << "bits " << lo << "," << hi;
      // The word is left for the caller's re-encode heal, untouched.
      EXPECT_EQ(w, orig ^ (std::uint64_t(1) << lo) ^ (std::uint64_t(1) << hi));
    }
  }
  // Data + parity double.
  std::uint64_t w = orig ^ (std::uint64_t(1) << 17);
  std::uint8_t par = std::uint8_t(good_par ^ 0x04u);
  EXPECT_EQ(secded::check_correct(w, par), secded::Outcome::kDetectedDouble);
}

TEST(SecDed, BufferScrubCorrectsSinglesCountsDoublesAndCoversTail) {
  // 37 bytes = 4 full words + a 5-byte zero-padded tail word.
  constexpr std::size_t kBytes = 37;
  std::vector<unsigned char> buf(kBytes);
  for (std::size_t i = 0; i < kBytes; ++i)
    buf[i] = (unsigned char)(i * 37 + 11);
  const std::vector<unsigned char> orig = buf;
  std::vector<std::uint8_t> par(secded::parity_bytes(kBytes));
  ASSERT_EQ(par.size(), 5u);
  secded::encode_buffer(buf.data(), kBytes, par.data());

  buf[3] ^= 0x10;   // single in word 0
  buf[17] ^= 0x01;  // single in word 2
  buf[36] ^= 0x80;  // single in the partial tail word
  buf[8] ^= 0x03;   // double inside word 1

  const secded::ScrubResult res =
      secded::scrub_buffer(buf.data(), kBytes, par.data());
  EXPECT_EQ(res.corrected, 3u);
  EXPECT_EQ(res.uncorrectable, 1u);
  // The three single-struck words were restored bit-exactly.
  EXPECT_EQ(buf[3], orig[3]);
  EXPECT_EQ(buf[17], orig[17]);
  EXPECT_EQ(buf[36], orig[36]);
  // The double-struck word is exactly as corrupted (heal is the caller's).
  EXPECT_EQ(buf[8], (unsigned char)(orig[8] ^ 0x03));
}

TEST(SecDed, FlipValueBitXorsExactlyOneBit) {
  double d = 1.0;
  std::uint64_t before, after;
  std::memcpy(&before, &d, sizeof(d));
  flip_value_bit(d, 52);
  std::memcpy(&after, &d, sizeof(d));
  EXPECT_EQ(before ^ after, std::uint64_t(1) << 52);
  flip_value_bit(d, 52);
  EXPECT_EQ(d, 1.0);  // an XOR flip is its own inverse

  std::int8_t b = 5;
  flip_value_bit(b, 7);
  EXPECT_EQ(std::uint8_t(b), std::uint8_t(5u ^ 0x80u));
}

// ---------------------------------------------------------------------------
// Injector canonicalization contract (the ground-truth bugfixes)
// ---------------------------------------------------------------------------

/// Regression: drawing far more flips than the surface holds distinct
/// (elem, bit) slots used to emit duplicate pairs whose XORs self-cancel,
/// so applied_count() overstated the net corruption.  The canonicalized
/// plan must equal the set of bits that actually change.
TEST(MemInjectorContract, DuplicateDrawsNeverSelfCancel) {
  const std::uint64_t seed = test_seed(404);
  PanelBitFlipInjector injector(/*flips=*/64, seed, /*bit=*/61);
  const MemoryStrikeContext ctx{MemorySurface::kResidentPanel, /*elems=*/4,
                                /*elem_bits=*/64};
  std::vector<PanelFlip> flips;
  injector.plan_flips(ctx, flips);

  // All 64 draws target bit 61 of one of 4 elements: at most 4 unique pairs
  // can survive, and with 64 draws all 4 almost surely do.
  ASSERT_FALSE(flips.empty()) << seed_note(seed);
  EXPECT_LE(flips.size(), 4u) << seed_note(seed);
  for (std::size_t i = 0; i < flips.size(); ++i) {
    EXPECT_LT(flips[i].elem, 4u) << seed_note(seed);
    EXPECT_EQ(flips[i].bit, 61) << seed_note(seed);
    if (i > 0) {
      EXPECT_TRUE(flips[i - 1].elem < flips[i].elem ||
                  (flips[i - 1].elem == flips[i].elem &&
                   flips[i - 1].bit < flips[i].bit))
          << "not sorted/unique" << seed_note(seed);
    }
  }

  // Ground truth check: applying the plan changes exactly plan-size bits.
  std::uint64_t buf[4] = {1, 2, 3, 4};
  const std::uint64_t orig[4] = {1, 2, 3, 4};
  for (const PanelFlip& f : flips) flip_value_bit(buf[f.elem], f.bit);
  int changed = 0;
  for (int e = 0; e < 4; ++e)
    changed += __builtin_popcountll(buf[e] ^ orig[e]);
  EXPECT_EQ(std::size_t(changed), flips.size()) << seed_note(seed);
}

/// Regression: the historical default of bit 52 (fp64 exponent LSB) was
/// never validated against the element width, so an 8-bit surface was asked
/// to flip bit 52 of a byte.  The contract clamps into [0, elem_bits).
TEST(MemInjectorContract, RequestedBitIsClampedToElementWidth) {
  const std::uint64_t seed = test_seed(405);
  PanelBitFlipInjector injector(/*flips=*/8, seed, /*bit=*/52);
  const MemoryStrikeContext ctx{MemorySurface::kResidentPanel, /*elems=*/16,
                                /*elem_bits=*/8};
  std::vector<PanelFlip> flips;
  injector.plan_flips(ctx, flips);
  ASSERT_FALSE(flips.empty()) << seed_note(seed);
  for (const PanelFlip& f : flips) {
    EXPECT_LT(f.elem, 16u) << seed_note(seed);
    EXPECT_GE(f.bit, 0) << seed_note(seed);
    EXPECT_LT(f.bit, 8) << seed_note(seed);
  }
}

TEST(MemInjectorContract, BurstRunsAreContiguousAcrossElementBoundaries) {
  const std::uint64_t seed = test_seed(406);
  PanelBitFlipInjector injector(/*flips=*/1, seed, /*bit=*/0, /*every=*/1,
                                /*burst=*/16);
  const MemoryStrikeContext ctx{MemorySurface::kResidentPanel, /*elems=*/8,
                                /*elem_bits=*/8};
  std::vector<PanelFlip> flips;
  injector.plan_flips(ctx, flips);
  ASSERT_EQ(flips.size(), 16u) << seed_note(seed);
  // Canonicalized output is sorted, so global bit indices are consecutive —
  // a 16-bit run over 8-bit elements necessarily spans >= 2 elements.
  for (std::size_t i = 1; i < flips.size(); ++i) {
    const std::size_t prev = flips[i - 1].elem * 8 + std::size_t(flips[i - 1].bit);
    const std::size_t cur = flips[i].elem * 8 + std::size_t(flips[i].bit);
    EXPECT_EQ(cur, prev + 1) << seed_note(seed);
  }
  EXPECT_GT(flips.back().elem, flips.front().elem) << seed_note(seed);
}

TEST(MemInjectorContract, SurfaceInjectorIsOneShotAndSurfaceFiltered) {
  const std::uint64_t seed = test_seed(407);
  SurfaceBitFlipInjector injector(MemorySurface::kPanelB, /*faults=*/2,
                                  /*burst=*/3, seed);
  const MemoryStrikeContext wrong{MemorySurface::kPanelA, 256, 8};
  const MemoryStrikeContext right{MemorySurface::kPanelB, 256, 8};
  std::vector<PanelFlip> flips;

  // Non-matching surfaces neither fire nor count as opportunities.
  injector.arm();
  injector.plan_flips(wrong, flips);
  EXPECT_TRUE(flips.empty());
  EXPECT_EQ(injector.opportunities(), 0u);

  // First matching opportunity fires the armed strike...
  injector.plan_flips(right, flips);
  EXPECT_FALSE(flips.empty()) << seed_note(seed);
  EXPECT_LE(flips.size(), 6u) << seed_note(seed);  // 2 runs x 3 bits, deduped
  EXPECT_EQ(injector.opportunities(), 1u);

  // ...and the next one is disarmed (but still counted).
  flips.clear();
  injector.plan_flips(right, flips);
  EXPECT_TRUE(flips.empty());
  EXPECT_EQ(injector.opportunities(), 2u);
}

// ---------------------------------------------------------------------------
// ECC-coded resident operands
// ---------------------------------------------------------------------------

struct ResidentFixture {
  testing::GemmCase cs{96, 64, 160};
  std::uint64_t seed;
  testing::Problem<double> p;
  Matrix<double> c_cold;

  explicit ResidentFixture(std::uint64_t s) : seed(s), p(cs, s) {
    clear_process_caches();
    c_cold = p.c.clone();
    Options cold;
    cold.threads = 2;
    ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
             p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
             c_cold.data(), c_cold.ld(), cold);
  }

  FtReport run(Matrix<double>& c, const Options& opts) const {
    return ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                    cs.alpha, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                    cs.beta, c.data(), c.ld(), opts);
  }
};

/// With FTGEMM_OPERAND_ECC on, a single flipped payload bit per hit is
/// corrected in place by the syndrome sweep: no re-encode heal, exact
/// ground-truth match between injected and corrected bits, bit-exact
/// results.
TEST(ResidentEcc, SingleBitStrikesCorrectedInPlaceWithoutHeal) {
  const std::uint64_t seed = test_seed(2027);
  ResidentFixture fx(seed);
  auto& cache = process_context_cache<double>();
  cache.operands().set_ecc(true);

  Options opts;
  opts.threads = 2;
  opts.resident_a = true;
  Matrix<double> c = fx.p.c.clone();
  FtReport rep = fx.run(c, opts);  // warm miss: encodes panels + parity
  ASSERT_FALSE(rep.resident_hit) << seed_note(seed);

  constexpr int kRounds = 10;
  PanelBitFlipInjector injector(/*flips=*/1, seed, /*bit=*/61);
  opts.memory_injector = &injector;
  std::int64_t ecc_total = 0;
  for (int round = 0; round < kRounds; ++round) {
    c = fx.p.c.clone();
    rep = fx.run(c, opts);
    ASSERT_TRUE(rep.resident_hit) << "round " << round << seed_note(seed);
    EXPECT_EQ(rep.resident_ecc_corrected, 1)
        << "round " << round << seed_note(seed);
    EXPECT_EQ(rep.resident_heals, 0) << "round " << round << seed_note(seed);
    EXPECT_TRUE(rep.clean()) << "round " << round << seed_note(seed);
    ecc_total += rep.resident_ecc_corrected;
    testing::expect_matrix_near(c, fx.c_cold, 0.0,
                                "ecc round " + std::to_string(round));
  }
  // Injector ground truth matches the observed corrections exactly.
  EXPECT_EQ(injector.applied_count(), std::size_t(kRounds)) << seed_note(seed);
  EXPECT_EQ(ecc_total, kRounds) << seed_note(seed);

  cache.operands().set_ecc(env_long("FTGEMM_OPERAND_ECC", 0) != 0);
  clear_process_caches();
}

/// Burst strikes exceed the code's single-bit correction capability inside a
/// word: a 2-bit burst in one 64-bit word is double-detected and must fall
/// through to the re-encode heal; a burst straddling a word boundary splits
/// into two correctable singles.  Either way the result stays bit-exact.
TEST(ResidentEcc, BurstStrikesDetectedAndHealedNeverSilent) {
  const std::uint64_t seed = test_seed(2028);
  ResidentFixture fx(seed);
  auto& cache = process_context_cache<double>();
  cache.operands().set_ecc(true);

  Options opts;
  opts.threads = 2;
  opts.resident_a = true;
  Matrix<double> c = fx.p.c.clone();
  FtReport rep = fx.run(c, opts);
  ASSERT_FALSE(rep.resident_hit) << seed_note(seed);

  constexpr int kRounds = 12;
  PanelBitFlipInjector injector(/*flips=*/1, seed, /*bit=*/61, /*every=*/1,
                                /*burst=*/2);
  opts.memory_injector = &injector;
  std::int64_t heals = 0;
  for (int round = 0; round < kRounds; ++round) {
    c = fx.p.c.clone();
    rep = fx.run(c, opts);
    ASSERT_TRUE(rep.resident_hit) << "round " << round << seed_note(seed);
    // Same-word burst: double-detect, zero sweeps, one heal.  Boundary
    // burst: two independent singles, both swept, no heal.  Never neither.
    EXPECT_TRUE(rep.resident_heals > 0 || rep.resident_ecc_corrected == 2)
        << "round " << round << seed_note(seed);
    EXPECT_TRUE(rep.clean()) << "round " << round << seed_note(seed);
    heals += rep.resident_heals;
    testing::expect_matrix_near(c, fx.c_cold, 0.0,
                                "burst round " + std::to_string(round));
  }
  // A 2-bit run lands inside one word for 63 of every 64 start positions;
  // over 12 rounds at least one double-detect heal is certain in practice.
  EXPECT_GE(heals, 1) << seed_note(seed);
  EXPECT_EQ(injector.applied_count(), std::size_t(kRounds) * 2)
      << seed_note(seed);

  cache.operands().set_ecc(env_long("FTGEMM_OPERAND_ECC", 0) != 0);
  clear_process_caches();
}

// ---------------------------------------------------------------------------
// Plan-cache strike surface
// ---------------------------------------------------------------------------

TEST(PlanSurface, CachedPlanStrikeIsHealedAndResultUnchanged) {
  const std::uint64_t seed = test_seed(2029);
  ResidentFixture fx(seed);
  auto& cache = process_context_cache<double>();

  Options opts;
  opts.threads = 2;
  Matrix<double> c = fx.p.c.clone();
  (void)fx.run(c, opts);  // plan-cache miss: builds + stamps self_check

  SurfaceBitFlipInjector injector(MemorySurface::kPlan, /*faults=*/1,
                                  /*burst=*/1, seed);
  opts.memory_injector = &injector;
  const std::uint64_t heals_before = cache.plan_heals();
  for (int round = 0; round < 4; ++round) {
    injector.arm();
    c = fx.p.c.clone();
    const FtReport rep = fx.run(c, opts);
    EXPECT_TRUE(rep.clean()) << "round " << round << seed_note(seed);
    testing::expect_matrix_near(c, fx.c_cold, 0.0,
                                "plan round " + std::to_string(round));
  }
  // Every struck lookup self-check-mismatched and rebuilt from the key:
  // plan_self_check covers every byte of the struck BlockingPlan surface.
  EXPECT_EQ(cache.plan_heals() - heals_before, 4u) << seed_note(seed);
  EXPECT_EQ(injector.applied_count(), 4u) << seed_note(seed);
  EXPECT_GE(injector.opportunities(), 4u) << seed_note(seed);
  clear_process_caches();
}

// ---------------------------------------------------------------------------
// Transient packed panels (exact int8 path: every live-byte flip detected)
// ---------------------------------------------------------------------------

struct I8Case {
  index_t m, n, k;
  int threads;
};

void run_i8_transient_case(const I8Case& cs, MemorySurface surface,
                           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::int8_t> a(std::size_t(cs.m * cs.k));
  std::vector<std::int8_t> b(std::size_t(cs.k * cs.n));
  // Nonzero positive operands: every packed byte feeds products with
  // nonzero multipliers, so any live-byte flip perturbs the exact checksums.
  for (auto& x : a) x = std::int8_t(1 + rng.bounded(7));
  for (auto& x : b) x = std::int8_t(1 + rng.bounded(7));
  std::vector<float> ref(std::size_t(cs.m * cs.n), 0.0f);
  std::vector<float> c(std::size_t(cs.m * cs.n), 0.0f);

  Options opts;
  opts.threads = cs.threads;
  const QuantParams qp;  // unit scales, zero offsets: exact dequantize
  const auto run = [&](std::vector<float>& out, const Options& o) {
    return ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                      cs.m, cs.n, cs.k, 1.0f, a.data(), cs.m, b.data(), cs.k,
                      0.0f, out.data(), cs.m, qp, o);
  };
  (void)run(ref, opts);

  SurfaceBitFlipInjector injector(surface, /*faults=*/1, /*burst=*/1, seed);
  Options strike = opts;
  strike.memory_injector = &injector;
  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    injector.arm();
    std::fill(c.begin(), c.end(), 0.0f);
    const FtReport rep = run(c, strike);
    // Single live-byte bit flip between pack and consume: the exact integer
    // panel checksums must attribute it — detected, and if the report is
    // clean the delivered result is the clean result, bit for bit.
    EXPECT_GT(rep.errors_detected, 0)
        << memory_surface_name(surface) << " round " << round
        << seed_note(seed);
    if (rep.clean()) {
      EXPECT_EQ(std::memcmp(c.data(), ref.data(), c.size() * sizeof(float)),
                0)
          << memory_surface_name(surface) << " round " << round
          << seed_note(seed);
    }
  }
  EXPECT_EQ(injector.applied_count(), std::size_t(kRounds)) << seed_note(seed);
  EXPECT_GE(injector.opportunities(), std::size_t(kRounds)) << seed_note(seed);
}

TEST(TransientPanels, I8PanelBStrikesAlwaysDetectedGeneralPath) {
  run_i8_transient_case({128, 96, 384, 2}, MemorySurface::kPanelB,
                        test_seed(3001));
}

TEST(TransientPanels, I8PanelAStrikesAlwaysDetectedGeneralPath) {
  run_i8_transient_case({128, 96, 384, 2}, MemorySurface::kPanelA,
                        test_seed(3002));
}

TEST(TransientPanels, I8PanelBStrikesAlwaysDetectedFastPath) {
  run_i8_transient_case({64, 48, 64, 1}, MemorySurface::kPanelB,
                        test_seed(3003));
}

TEST(TransientPanels, I8PanelAStrikesAlwaysDetectedFastPath) {
  run_i8_transient_case({64, 48, 64, 1}, MemorySurface::kPanelA,
                        test_seed(3004));
}

}  // namespace
}  // namespace ftgemm
