// Integration tests: fault-tolerant dgemm in fault-free operation.
//
// Key invariants: (1) the FT path computes bit-identical results to the Ori
// path (its kernels run the same FMA sequence); (2) no false positives on
// clean runs across shapes, scalars and data distributions; (3) reports are
// well-formed.
#include <gtest/gtest.h>

#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::GemmCase;
using testing::Problem;
using testing::expect_matrix_near;
using testing::gemm_tolerance;
using testing::naive_ref_gemm;
using testing::reference_result;

class FtDgemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(FtDgemmSweep, BitwiseEqualToOriAndClean) {
  const GemmCase cs = GetParam();
  Problem<double> p(cs);

  Matrix<double> c_ori = p.c.clone();
  dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c_ori.data(),
        c_ori.ld());

  Matrix<double> c_ft = p.c.clone();
  const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                                cs.k, cs.alpha, p.a.data(), p.a.ld(),
                                p.b.data(), p.b.ld(), cs.beta, c_ft.data(),
                                c_ft.ld());

  expect_matrix_near(c_ft, c_ori, 0.0, "FT vs Ori " + cs.name());
  EXPECT_TRUE(rep.clean()) << cs;
  EXPECT_EQ(rep.errors_detected, 0) << cs;
  EXPECT_EQ(rep.errors_corrected, 0) << cs;
  EXPECT_GE(rep.elapsed_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FtDgemmSweep,
    ::testing::Values(
        GemmCase{1, 1, 1}, GemmCase{16, 8, 64}, GemmCase{17, 9, 65},
        GemmCase{129, 127, 300}, GemmCase{97, 101, 103},
        GemmCase{64, 300, 512}, GemmCase{300, 64, 600},
        GemmCase{65, 43, 87, Trans::kTrans, Trans::kNoTrans},
        GemmCase{65, 43, 87, Trans::kNoTrans, Trans::kTrans},
        GemmCase{65, 43, 87, Trans::kTrans, Trans::kTrans},
        GemmCase{60, 60, 60, Trans::kNoTrans, Trans::kNoTrans, -1.5, 0.5},
        GemmCase{60, 60, 60, Trans::kNoTrans, Trans::kNoTrans, 2.0, 1.0},
        GemmCase{60, 60, 60, Trans::kNoTrans, Trans::kNoTrans, 0.0, 0.5},
        GemmCase{60, 60, 60, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.0}),
    [](const auto& info) { return GemmCase(info.param).name(); });

TEST(FtDgemm, PanelCountMatchesBlockingPlan) {
  const index_t k = 1000;
  const BlockingPlan plan = make_plan(select_isa(), 8);
  const index_t want_panels = (k + plan.kc - 1) / plan.kc;

  Matrix<double> a(32, k), b(k, 32), c(32, 32);
  a.fill_random(1);
  b.fill_random(2);
  c.fill(0.0);
  const FtReport rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans,
                                Trans::kNoTrans, 32, 32, k, 1.0, a.data(), 32,
                                b.data(), k, 0.0, c.data(), 32);
  EXPECT_EQ(rep.panels, int(want_panels))
      << "one verification interval per KC panel";
}

TEST(FtDgemm, NoFalsePositivesOnAdversarialData) {
  // All-positive data maximizes checksum magnitudes (no cancellation), the
  // worst case for the tolerance model.
  const index_t sz = 160;
  Matrix<double> a(sz, sz), b(sz, sz), c(sz, sz);
  a.fill_random(7, 0.5, 1.0);
  b.fill_random(8, 0.5, 1.0);
  c.fill_random(9, 100.0, 200.0);
  const FtReport rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans,
                                Trans::kNoTrans, sz, sz, sz, 3.0, a.data(),
                                sz, b.data(), sz, -2.0, c.data(), sz);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.errors_detected, 0);
}

TEST(FtDgemm, NoFalsePositivesOnTinyMagnitudes) {
  const index_t sz = 64;
  Matrix<double> a(sz, sz), b(sz, sz), c(sz, sz);
  a.fill_random(7, -1e-8, 1e-8);
  b.fill_random(8, -1e-8, 1e-8);
  c.fill(0.0);
  const FtReport rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans,
                                Trans::kNoTrans, sz, sz, sz, 1.0, a.data(),
                                sz, b.data(), sz, 0.0, c.data(), sz);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.errors_detected, 0);
}

TEST(FtDgemm, AlphaZeroSkipsPanelsButScalesC) {
  const index_t sz = 32;
  Matrix<double> a(sz, sz), b(sz, sz), c(sz, sz);
  a.fill_random(1);
  b.fill_random(2);
  c.fill(4.0);
  const FtReport rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans,
                                Trans::kNoTrans, sz, sz, sz, 0.0, a.data(),
                                sz, b.data(), sz, 0.25, c.data(), sz);
  EXPECT_EQ(rep.panels, 0);
  for (index_t j = 0; j < sz; ++j)
    for (index_t i = 0; i < sz; ++i) EXPECT_DOUBLE_EQ(c(i, j), 1.0);
}

TEST(FtDgemm, RowMajorLayoutSupported) {
  const index_t m = 33, n = 27, k = 40;
  Matrix<double> a_rm(k, m), b_rm(n, k), c_rm(n, m);
  a_rm.fill_random(61);
  b_rm.fill_random(62);
  c_rm.fill_random(63);

  Matrix<double> c_ft = c_rm.clone();
  const FtReport rep = ft_dgemm(Layout::kRowMajor, Trans::kNoTrans,
                                Trans::kNoTrans, m, n, k, 1.0, a_rm.data(),
                                a_rm.ld(), b_rm.data(), b_rm.ld(), 0.0,
                                c_ft.data(), c_ft.ld());
  EXPECT_TRUE(rep.clean());

  Matrix<double> ref = c_rm.clone();
  naive_ref_gemm<double>(Trans::kNoTrans, Trans::kNoTrans, n, m, k, 1.0,
                         b_rm.data(), b_rm.ld(), a_rm.data(), a_rm.ld(), 0.0,
                         ref.data(), ref.ld());
  expect_matrix_near(c_ft, ref, gemm_tolerance<double>(k), "row-major FT");
}

TEST(FtDgemm, EngineReusesWorkspaceAcrossCalls) {
  GemmEngine<double> engine;
  for (index_t sz : {64, 96, 48, 96}) {
    Matrix<double> a(sz, sz), b(sz, sz), c(sz, sz);
    a.fill_random(std::uint64_t(sz));
    b.fill_random(std::uint64_t(sz) + 1);
    c.fill(0.0);
    const FtReport rep = engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans,
                                        Trans::kNoTrans, sz, sz, sz, 1.0,
                                        a.data(), sz, b.data(), sz, 0.0,
                                        c.data(), sz);
    EXPECT_TRUE(rep.clean()) << "size " << sz;

    Matrix<double> ref(sz, sz);
    ref.fill(0.0);
    naive_ref_gemm<double>(Trans::kNoTrans, Trans::kNoTrans, sz, sz, sz, 1.0,
                           a.data(), sz, b.data(), sz, 0.0, ref.data(), sz);
    expect_matrix_near(c, ref, gemm_tolerance<double>(sz),
                       "engine size " + std::to_string(sz));
  }
}

TEST(FtDgemm, ToleranceFactorOptionRespected) {
  // An absurdly small factor turns rounding noise into "errors": the run
  // must detect mismatches (and may or may not manage to pair them), proving
  // the option reaches the verifier.  We only require it not to crash and to
  // flag something on a problem large enough to have visible noise.
  const index_t sz = 256;
  Matrix<double> a(sz, sz), b(sz, sz), c(sz, sz);
  a.fill_random(3, 0.0, 1.0);
  b.fill_random(4, 0.0, 1.0);
  c.fill(0.0);
  Options opts;
  opts.tolerance_factor = 1e-9;
  const FtReport rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans,
                                Trans::kNoTrans, sz, sz, sz, 1.0, a.data(),
                                sz, b.data(), sz, 0.0, c.data(), sz, opts);
  EXPECT_GT(rep.errors_detected + rep.uncorrectable_panels, 0)
      << "a near-zero tolerance must flag rounding noise";
}

}  // namespace
}  // namespace ftgemm
